#!/bin/sh
# Full pre-merge check: vet, build, test, then race-test the concurrent
# packages (pipelined datalet client, rpc, transports, controlet, client
# router). Mirrors `make check` for environments without make.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race \
	./internal/datalet/... \
	./internal/rpc/... \
	./internal/transport/... \
	./internal/controlet/... \
	./internal/client/...
