#!/bin/sh
# Full pre-merge check: vet, build, test, then race-test the concurrent
# packages (pipelined datalet client, rpc, transports, controlet, client
# router). Mirrors `make check` for environments without make.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race \
	./internal/datalet/... \
	./internal/rpc/... \
	./internal/transport/... \
	./internal/controlet/... \
	./internal/client/...

# Observability stack: race the registry/tracer/HTTP endpoints, enforce the
# zero-alloc hot-path contract, and surface per-op allocation numbers.
go test -race ./internal/metrics/... ./internal/trace/... ./internal/obs/...
go test -run TestHotPathZeroAlloc ./internal/metrics/
go test -run NONE -bench 'CounterAdd|HistogramObserve' -benchmem ./internal/metrics/

# Cluster telemetry plane: windowing/sketch/SLO/aggregator units, the
# metrics label-cardinality guard, the cluster e2e (hot-shard detection
# plus the SLO alert lifecycle under a faultnet delay rule), and the
# zero-alloc recording contract with its per-op numbers.
go test -race ./internal/telemetry/...
go test -race -run 'TestLabelCardinality' ./internal/metrics/
go test -race -run 'TestTelemetryEndToEnd' ./internal/cluster/
go test -run TestRecordZeroAllocTelemetry ./internal/telemetry/
go test -run NONE -bench 'TelemetryRecord|SketchTouch' -benchmem ./internal/telemetry/

# Online shard migration: planner/mover units plus the cluster
# join/drain/AA+EC-floor scenarios under client load, race-detected.
go test -race ./internal/migrate/...
go test -race -run 'TestJoinNodeUnderLoad|TestDrainNodeUnderLoad|TestJoinNodeAAEC' ./internal/cluster/

# Wire-speed read path: multi-op wire frames (fuzz seeds), the client
# batch scheduler and lease cache, then the cluster direct-read, batching,
# hedging and linearizability-under-direct-reads suites, race-detected.
go test -race -run 'Multi|Fuzz' ./internal/wire/
go test -race -run 'TestDirectRead|TestHotKeyShadow|TestMultiGet|TestMultiPut|TestHedged|TestMSSCLinearizableWithDirectReads' ./internal/cluster/

# Nemesis fault injection: faultnet fabric/schedule units, the
# linearizability and convergence checkers, then every deployment mode
# under seeded fault schedules. Failing runs log their seed — replay with
# BESPOKV_NEMESIS_SEED=<seed>.
go test -race ./internal/faultnet/... ./internal/histcheck/...
go test -race -run 'TestNemesis' ./internal/cluster/

# Crash-restart durability: WAL and faultfs units, durable engine recovery
# suites, then the cluster crash/restart and incremental-rejoin scenarios.
# Same seed-replay convention as the nemesis suites.
go test -race ./internal/store/wal/... ./internal/store/faultfs/...
go test -race -run 'Durable|Crash|Torn|WAL|Recover|Snapshot|Persist|CleanClose' \
	./internal/store/ht/ ./internal/store/lsm/ ./internal/store/applog/
go test -race -run 'TestCrashRestart|TestRejoin' ./internal/cluster/

# Replicated control plane: the Raft-style RSM core (fuzz seeds included),
# the replicated coordinator/DLM/sequencer suites, the cluster
# control-plane nemesis scenarios (leader kill + partition under MS+SC
# load), and the allocation-free apply-path contract.
go test -race ./internal/rsm/...
go test -race -run 'Replicated|Sequencer|Follower|TestLockTableClock|TestTakeDeltaCap|TestClientBackoff|TestSplitAddrs|TestCloseAborts' \
	./internal/coordinator/ ./internal/dlm/ ./internal/sharedlog/
go test -race -run 'TestControlPlane' ./internal/cluster/
go test -run TestApplyZeroAlloc ./internal/rsm/

# Overload control: admission-gate/retry-budget/breaker units, the
# deadline wire-field fuzz seeds, client failure classification and retry
# discipline, controlet/datalet shed paths, then the cluster surge
# acceptance (goodput >= 80% of plateau at 4x load, bounded tail, no
# spurious failover, linearizable history). Same seed-replay convention.
go test -race ./internal/overload/...
go test -race -run 'Fuzz' ./internal/wire/
go test -race -run 'TestClassifyFailure|TestOverloaded|TestRetryBudget|TestBreaker|TestOpBudget|TestSustainedOverload' ./internal/client/
go test -race -run 'Shed|Deadline|Overload' ./internal/controlet/ ./internal/datalet/
go test -race -run 'TestOverload' ./internal/cluster/
