// Package bespokv's root benchmark file wires every table and figure of
// the paper's evaluation (§VIII, Appendices D and E) to a testing.B
// target, one per experiment, via the shared harness in internal/bench:
//
//	go test -bench=. -benchmem                    # all experiments, smoke scale
//	go test -bench=BenchmarkFig7 -benchtime=1x    # one figure
//
// Benchmarks intentionally run each experiment once per b.N at smoke
// scale; the cmd/bespokv-bench binary is the full-scale driver (see
// EXPERIMENTS.md for recorded paper-vs-measured results). The reported
// metric per iteration is wall time for the whole experiment; throughput
// rows are printed to the benchmark log on -v.
package main

import (
	"io"
	"testing"
	"time"

	"bespokv/internal/bench"
)

// benchParams scales an experiment for the testing.B loop: short windows,
// small keyspaces, smallest node sweep.
func benchParams(b *testing.B) bench.Params {
	var out io.Writer
	if testing.Verbose() {
		out = benchWriter{b}
	}
	return bench.Params{
		Out:        out,
		MeasureFor: 200 * time.Millisecond,
		Clients:    2,
		Keys:       2000,
		Preload:    500,
		NodeCounts: []int{3},
	}
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Logf("%s", p)
	return len(p), nil
}

func runExperiment(b *testing.B, fn func(bench.Params) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(benchParams(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1FeatureMatrix probes every Table I capability live.
func BenchmarkTable1FeatureMatrix(b *testing.B) {
	runExperiment(b, bench.Table1FeatureMatrix)
}

// BenchmarkFig6DataAbstractions regenerates Fig. 6 (LSM vs B+-tree vs log
// under monitoring and analytics workloads).
func BenchmarkFig6DataAbstractions(b *testing.B) {
	runExperiment(b, bench.Fig6DataAbstractions)
}

// BenchmarkFig7ScalabilityHT regenerates Fig. 7 (tHT scalability across
// the four modes, two mixes, two key distributions).
func BenchmarkFig7ScalabilityHT(b *testing.B) {
	runExperiment(b, bench.Fig7ScalabilityHT)
}

// BenchmarkFig7MultiGet95 measures the wire-speed read path against the
// fig7 95% GET baseline: controlet-routed single GETs vs direct-routed
// MultiGet batches at 64 callers.
func BenchmarkFig7MultiGet95(b *testing.B) {
	runExperiment(b, bench.Fig7MultiGet95)
}

// BenchmarkFig8HPCWorkloads regenerates Fig. 8 (job-launch and
// I/O-forwarding traces across modes and node counts).
func BenchmarkFig8HPCWorkloads(b *testing.B) {
	runExperiment(b, bench.Fig8HPCWorkloads)
}

// BenchmarkFig9OtherDatalets regenerates Fig. 9 (tSSDB, tLog and tMT
// datalets under MS+EC, including the 95% SCAN series).
func BenchmarkFig9OtherDatalets(b *testing.B) {
	runExperiment(b, bench.Fig9OtherDatalets)
}

// BenchmarkFig10Transitions regenerates Fig. 10 (live MS+EC→{MS+SC,
// AA+EC, AA+SC} transition timelines under load).
func BenchmarkFig10Transitions(b *testing.B) {
	runExperiment(b, bench.Fig10Transitions)
}

// BenchmarkFig11ProxyComparison regenerates Fig. 11 (bespokv fronting
// text-protocol tRedis datalets vs twemproxy and dynomite).
func BenchmarkFig11ProxyComparison(b *testing.B) {
	runExperiment(b, bench.Fig11ProxyComparison)
}

// BenchmarkFig12NativeComparison regenerates Fig. 12 (latency-vs-
// throughput against cassandra- and voldemort-style native stores).
func BenchmarkFig12NativeComparison(b *testing.B) {
	runExperiment(b, bench.Fig12NativeComparison)
}

// BenchmarkPerRequestConsistency regenerates the §VIII-D per-request
// consistency measurements (25:75 SC:EC read split).
func BenchmarkPerRequestConsistency(b *testing.B) {
	runExperiment(b, bench.PerRequestConsistency)
}

// BenchmarkPolyglotPersistence regenerates the §VIII-D polyglot
// persistence measurements (tHT+tLog+tMT replicas in one shard).
func BenchmarkPolyglotPersistence(b *testing.B) {
	runExperiment(b, bench.PolyglotPersistence)
}

// BenchmarkFig16Failover regenerates Fig. 16 / Appendix D (node-kill
// failover timelines for MS and AA, with standby recovery).
func BenchmarkFig16Failover(b *testing.B) {
	runExperiment(b, bench.Fig16Failover)
}

// BenchmarkFig17TransportBypass regenerates Fig. 17 / Appendix E (kernel
// TCP vs the DPDK-style in-process bypass transport).
func BenchmarkFig17TransportBypass(b *testing.B) {
	runExperiment(b, bench.Fig17TransportBypass)
}

// BenchmarkDLCache regenerates the §VI-B DL-ingestion-cache result
// (simulated PFS vs bespokv cache, images per second).
func BenchmarkDLCache(b *testing.B) {
	runExperiment(b, bench.DLCache)
}

// BenchmarkAblations measures the design choices DESIGN.md calls out:
// chain length vs write cost, DLM-lock vs shared-log AA ordering, LSM
// memtable size vs write amplification, ring vnodes vs balance.
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, bench.Ablations)
}
