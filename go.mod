module bespokv

go 1.22
