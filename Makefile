GO ?= go

# Packages whose concurrency is stress-tested under the race detector:
# the pipelined datalet client, the RPC layer, transports, controlet
# replication paths, and the client router.
RACE_PKGS = ./internal/datalet/... ./internal/rpc/... ./internal/transport/... ./internal/controlet/... ./internal/client/...

.PHONY: all check vet build test race bench bench-pipeline clean

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

bench-pipeline:
	$(GO) test -run NONE -bench 'Pipelined|Lockstep' -benchtime 2s ./internal/datalet/

clean:
	$(GO) clean ./...
