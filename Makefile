GO ?= go

# Packages whose concurrency is stress-tested under the race detector:
# the pipelined datalet client, the RPC layer, transports, controlet
# replication paths, and the client router.
RACE_PKGS = ./internal/datalet/... ./internal/rpc/... ./internal/transport/... ./internal/controlet/... ./internal/client/...

# Observability packages: the metrics registry, trace recorder, and the
# HTTP introspection endpoints (including the end-to-end cluster test).
OBS_PKGS = ./internal/metrics/... ./internal/trace/... ./internal/obs/...

.PHONY: all check vet build test race obs telemetry migrate nemesis crash wirespeed rsm overload bench bench-pipeline clean

all: check

check: vet build test race obs telemetry migrate nemesis crash wirespeed rsm overload

# overload race-tests the end-to-end overload-control plane: the
# admission-gate/retry-budget/breaker units and the deadline wire-field
# fuzz seeds, the client failure-classification and retry-discipline
# suites, the controlet/datalet shed paths, and the cluster overload
# nemesis acceptance — a 4x surge against slowed engines must hold
# goodput at >= 80% of the pre-overload plateau with a bounded success
# tail, zero spurious failovers, and a linearizable history (Overloaded
# answers recorded as non-acked). A failing run logs its seed; replay
# with BESPOKV_NEMESIS_SEED=<seed>.
overload:
	$(GO) test -race ./internal/overload/...
	$(GO) test -race -run 'Fuzz' ./internal/wire/
	$(GO) test -race -run 'TestClassifyFailure|TestOverloaded|TestRetryBudget|TestBreaker|TestOpBudget|TestSustainedOverload' ./internal/client/
	$(GO) test -race -run 'Shed|Deadline|Overload' ./internal/controlet/ ./internal/datalet/
	$(GO) test -race -run 'TestOverload' ./internal/cluster/

# rsm race-tests the replicated control plane end to end: the Raft-style
# core (election, replication, persistence, snapshots — fuzz seeds
# included), the replicated coordinator/DLM/sequencer services, and the
# cluster control-plane nemesis suites (leader kill and partition under
# MS+SC load, checked for zero acked-write loss and linearizability).
# The apply path must stay allocation-free (TestApplyZeroAlloc). A failing
# nemesis run logs its seed; replay with BESPOKV_NEMESIS_SEED=<seed>.
rsm:
	$(GO) test -race ./internal/rsm/...
	$(GO) test -race -run 'Replicated|Sequencer|Follower|TestLockTableClock|TestTakeDeltaCap|TestClientBackoff|TestSplitAddrs|TestCloseAborts' ./internal/coordinator/ ./internal/dlm/ ./internal/sharedlog/
	$(GO) test -race -run 'TestControlPlane' ./internal/cluster/
	$(GO) test -run TestApplyZeroAlloc ./internal/rsm/

# crash race-tests the storage fault story end to end: the WAL and faultfs
# units, the durable ht/lsm/applog engine recovery suites, and the cluster
# crash-restart/incremental-rejoin scenarios. A failing run logs its seed;
# replay it with BESPOKV_NEMESIS_SEED=<seed>.
crash:
	$(GO) test -race ./internal/store/wal/... ./internal/store/faultfs/...
	$(GO) test -race -run 'Durable|Crash|Torn|WAL|Recover|Snapshot|Persist|CleanClose' ./internal/store/ht/ ./internal/store/lsm/ ./internal/store/applog/
	$(GO) test -race -run 'TestCrashRestart|TestRejoin' ./internal/cluster/

# wirespeed race-tests the direct-read data path end to end: the multi-op
# wire frames (fuzz seeds included), the client batch scheduler and lease
# cache units, and the cluster suites covering direct reads under epoch
# churn, shard-coalesced MultiGet/MultiPut in every mode, hedged reads
# under injected delay, and MS+SC linearizability with direct readers.
wirespeed:
	$(GO) test -race -run 'Multi|Fuzz' ./internal/wire/
	$(GO) test -race ./internal/client/
	$(GO) test -race -run 'TestDirectRead|TestHotKeyShadow|TestMultiGet|TestMultiPut|TestHedged|TestMSSCLinearizableWithDirectReads' ./internal/cluster/

# nemesis race-tests the fault plane end to end: the faultnet fabric and
# schedule units, the linearizability/convergence checker units, and the
# cluster chaos suites that run every mode under seeded fault schedules.
# A failing run logs its seed; replay it with BESPOKV_NEMESIS_SEED=<seed>.
nemesis:
	$(GO) test -race ./internal/faultnet/... ./internal/histcheck/...
	$(GO) test -race -run 'TestNemesis' ./internal/cluster/

# migrate race-tests the online-resize path end to end: the migrate
# package's planner/mover units plus the cluster join/drain/AA+EC-floor
# scenarios under client load.
migrate:
	$(GO) test -race ./internal/migrate/...
	$(GO) test -race -run 'TestJoinNodeUnderLoad|TestDrainNodeUnderLoad|TestJoinNodeAAEC' ./internal/cluster/

# obs race-tests the observability stack and guards the hot-path contract:
# Counter.Add and Histogram.Observe must stay allocation-free (the zero
# allocs/op assertion lives in TestHotPathZeroAlloc; the -benchmem run
# makes regressions visible in review output too).
obs:
	$(GO) test -race $(OBS_PKGS)
	$(GO) test -run TestHotPathZeroAlloc ./internal/metrics/
	$(GO) test -run NONE -bench 'CounterAdd|HistogramObserve' -benchmem ./internal/metrics/

# telemetry race-tests the cluster telemetry plane end to end: the
# telemetry package units (windowing, hot-key sketch, SLO burn-rate state
# machine, aggregator merge/staleness), the label-cardinality guard, the
# cluster e2e (skewed workload → hot shard + hot keys in /clusterz;
# faultnet delay → SLO pending→firing→resolved without flapping), and the
# hot-path contract: Record/Touch must stay allocation-free (asserted in
# TestRecordZeroAllocTelemetry; the -benchmem run keeps the per-op numbers
# visible in review output).
telemetry:
	$(GO) test -race ./internal/telemetry/...
	$(GO) test -race -run 'TestLabelCardinality' ./internal/metrics/
	$(GO) test -race -run 'TestTelemetryEndToEnd' ./internal/cluster/
	$(GO) test -run TestRecordZeroAllocTelemetry ./internal/telemetry/
	$(GO) test -run NONE -bench 'TelemetryRecord|SketchTouch' -benchmem ./internal/telemetry/

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

bench-pipeline:
	$(GO) test -run NONE -bench 'Pipelined|Lockstep' -benchtime 2s ./internal/datalet/

clean:
	$(GO) clean ./...
