package controlet

import (
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// P2P-style topology (§IV-E): with Config.P2PRouting enabled, a client may
// send any request to any controlet; a controlet that does not own the key
// routes it to the owning shard's appropriate node — the one-hop
// equivalent of a Chord finger table, using the cluster map as the routing
// map — and relays the answer. Combined with per-shard MS chains this also
// yields the paper's AA-MS hybrid: active-active entry points over
// master-slave shards.
//
// Forwarded point requests carry a hop count in the (otherwise unused for
// point ops) Limit field so stale maps cannot loop a request forever;
// after maxP2PHops the request falls back to a redirect.
const maxP2PHops = 3

// routeForeign handles requests for keys this controlet's shard does not
// own: under P2PRouting it forwards to the owning shard and relays;
// otherwise it redirects the client (a misrouted write must never land in
// the wrong shard, where fresh clients would not find it). Reports whether
// it handled the request.
func (s *Server) routeForeign(req *wire.Request, resp *wire.Response) bool {
	switch req.Op {
	case wire.OpPut, wire.OpGet, wire.OpDel:
	default:
		return false // scans fan out client-side; internal ops are pre-routed
	}
	m, ring := s.mapAndRing()
	if m == nil || len(m.Shards) < 2 {
		return false
	}
	if m.Partitioner == topology.HashPartitioner && ring == nil {
		return false
	}
	owner := m.Shards[m.ShardFor(req.Key, ring)]
	mine, _ := s.myShard(m)
	if owner.ID == mine.ID || mine.ID == "" {
		return false
	}
	if !s.cfg.P2PRouting || req.Limit >= maxP2PHops {
		resp.Status = wire.StatusRedirect
		resp.Err = s.p2pTarget(m, owner, req).ControletAddr
		return true
	}
	target := s.p2pTarget(m, owner, req)
	pool, err := s.peerPool(target.ControletAddr)
	if err != nil {
		resp.Status = wire.StatusUnavailable
		resp.Err = "p2p: " + err.Error()
		return true
	}
	fwd := *req
	fwd.Limit++
	if err := pool.Do(&fwd, resp); err != nil {
		s.dropPeer(target.ControletAddr)
		resp.Reset()
		resp.ID = req.ID
		resp.Status = wire.StatusUnavailable
		resp.Err = "p2p: " + err.Error()
		return true
	}
	resp.ID = req.ID
	return true
}

// p2pTarget picks the node in the owning shard that should see req.
func (s *Server) p2pTarget(m *topology.Map, owner topology.Shard, req *wire.Request) topology.Node {
	if req.Op == wire.OpGet {
		if m.Mode.Topology == topology.MS && m.Mode.Consistency == topology.Strong {
			return owner.ReadTail()
		}
		readable := owner.ReadReplicas()
		return readable[int(s.clock.Load())%len(readable)]
	}
	if m.Mode.Topology == topology.AA {
		return owner.Replicas[int(s.clock.Load())%len(owner.Replicas)]
	}
	return owner.Head()
}

// relayTo forwards req verbatim to a peer controlet and copies back its
// answer — the in-shard hop P2P mode uses when this node is in the owning
// shard but not the role (head/tail) the request needs.
func (s *Server) relayTo(addr string, req *wire.Request, resp *wire.Response) {
	pool, err := s.peerPool(addr)
	if err != nil {
		resp.Status = wire.StatusUnavailable
		resp.Err = "p2p: " + err.Error()
		return
	}
	fwd := *req
	fwd.Limit++
	if err := pool.Do(&fwd, resp); err != nil {
		s.dropPeer(addr)
		resp.Reset()
		resp.ID = req.ID
		resp.Status = wire.StatusUnavailable
		resp.Err = "p2p: " + err.Error()
		return
	}
	resp.ID = req.ID
}

// mapAndRing returns the current map with its cached consistent-hash ring.
func (s *Server) mapAndRing() (*topology.Map, *topology.Ring) {
	s.mapMu.RLock()
	defer s.mapMu.RUnlock()
	return s.curMap, s.curRing
}
