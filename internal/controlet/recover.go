package controlet

import (
	"fmt"

	"bespokv/internal/datalet"
	"bespokv/internal/wire"
)

// recoverFrom clones a surviving datalet's state into the local datalet —
// the standby-promotion path the coordinator drives after a node failure
// ("the new controlet then recovers the data from one of the datalets",
// §IV-A). Tables are discovered via OpStats and streamed via OpExport;
// versions ride along, so any replication that races with recovery
// resolves by LWW.
func (s *Server) recoverFrom(args RecoverArgs) error {
	codec := s.cfg.DataletCodec
	if args.Codec != "" {
		c, err := wire.LookupCodec(args.Codec)
		if err != nil {
			return err
		}
		codec = c
	}
	src, err := datalet.Dial(s.cfg.DataletNetwork, args.SourceDatalet, codec)
	if err != nil {
		return fmt.Errorf("recover: dial source: %w", err)
	}
	defer src.Close()

	// Discover the source's tables.
	var stats wire.Response
	if err := src.Do(&wire.Request{Op: wire.OpStats}, &stats); err != nil {
		return fmt.Errorf("recover: stats: %w", err)
	}
	if err := stats.ErrValue(); err != nil {
		return fmt.Errorf("recover: stats: %w", err)
	}
	tables := make([]string, 0, len(stats.Pairs))
	for _, p := range stats.Pairs {
		tables = append(tables, string(p.Key))
	}
	if len(tables) == 0 {
		tables = []string{""}
	}

	local := s.local.Get()
	for _, table := range tables {
		if table != "" {
			var resp wire.Response
			if err := local.Do(&wire.Request{Op: wire.OpCreateTable, Table: table}, &resp); err != nil {
				return fmt.Errorf("recover: create table %q: %w", table, err)
			}
		}
		count := 0
		err := src.Export(table, func(kv wire.KV) error {
			s.observeVersion(kv.Version)
			var resp wire.Response
			req := wire.Request{
				Op:      wire.OpPut,
				Table:   table,
				Key:     kv.Key,
				Value:   kv.Value,
				Version: kv.Version,
			}
			if err := local.Do(&req, &resp); err != nil {
				return err
			}
			count++
			return resp.ErrValue()
		})
		if err != nil {
			return fmt.Errorf("recover: export table %q: %w", table, err)
		}
		s.cfg.Logf("controlet %s: recovered %d pairs of table %q from %s",
			s.cfg.NodeID, count, table, args.SourceDatalet)
	}
	return nil
}
