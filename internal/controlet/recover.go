package controlet

import (
	"errors"
	"fmt"

	"bespokv/internal/datalet"
	"bespokv/internal/wire"
)

// RecoverReply reports what a recovery transferred; the coordinator logs
// it and the rejoin tests assert on it.
type RecoverReply struct {
	// Pairs is the number of records (live pairs plus tombstones) pulled
	// from the source.
	Pairs int `json:"pairs"`
	// Delta is true when every table was recovered incrementally from the
	// local watermark rather than by a full export.
	Delta bool `json:"delta"`
}

// recoverFrom clones a surviving datalet's state into the local datalet —
// the standby-promotion path the coordinator drives after a node failure
// ("the new controlet then recovers the data from one of the datalets",
// §IV-A), and the rejoin path after a crash-restart. Tables are discovered
// via OpStats; versions ride along, so any replication that races with
// recovery resolves by LWW.
//
// A restarted node does not start empty: its engine recovered a durable
// prefix, and its recovered watermark (carried per table in the local
// datalet's OpStats) bounds what it can be missing. When the watermark is
// non-zero the source is asked for an incremental delta (OpExportDelta) —
// only records newer than the watermark, tombstones included — and only
// if the source cannot serve a complete delta does recovery fall back to
// the full OpExport stream.
func (s *Server) recoverFrom(args RecoverArgs) (RecoverReply, error) {
	var reply RecoverReply
	codec := s.cfg.DataletCodec
	if args.Codec != "" {
		c, err := wire.LookupCodec(args.Codec)
		if err != nil {
			return reply, err
		}
		codec = c
	}
	src, err := datalet.Dial(s.cfg.DataletNetwork, args.SourceDatalet, codec)
	if err != nil {
		return reply, fmt.Errorf("recover: dial source: %w", err)
	}
	defer src.Close()

	// Discover the source's tables.
	var stats wire.Response
	if err := src.Do(&wire.Request{Op: wire.OpStats}, &stats); err != nil {
		return reply, fmt.Errorf("recover: stats: %w", err)
	}
	if err := stats.ErrValue(); err != nil {
		return reply, fmt.Errorf("recover: stats: %w", err)
	}
	tables := make([]string, 0, len(stats.Pairs))
	for _, p := range stats.Pairs {
		tables = append(tables, string(p.Key))
	}
	if len(tables) == 0 {
		tables = []string{""}
	}

	local := s.local.Get()

	// The local datalet's per-table recovered watermarks decide between
	// incremental and full recovery.
	watermarks := map[string]uint64{}
	var localStats wire.Response
	if err := local.Do(&wire.Request{Op: wire.OpStats}, &localStats); err == nil && localStats.ErrValue() == nil {
		for _, p := range localStats.Pairs {
			watermarks[string(p.Key)] = p.Version
		}
	}

	reply.Delta = true
	for _, table := range tables {
		if table != "" {
			var resp wire.Response
			if err := local.Do(&wire.Request{Op: wire.OpCreateTable, Table: table}, &resp); err != nil {
				return reply, fmt.Errorf("recover: create table %q: %w", table, err)
			}
		}
		apply := func(kv wire.KV, tombstone bool) error {
			s.observeVersion(kv.Version)
			var resp wire.Response
			req := wire.Request{
				Op:      wire.OpPut,
				Table:   table,
				Key:     kv.Key,
				Value:   kv.Value,
				Version: kv.Version,
			}
			if tombstone {
				req.Op = wire.OpDel
				req.Value = nil
			}
			if err := local.Do(&req, &resp); err != nil {
				return err
			}
			reply.Pairs++
			if resp.Status == wire.StatusErr {
				return resp.ErrValue()
			}
			return nil
		}

		usedDelta := false
		if since := watermarks[table]; since > 0 {
			err := src.ExportSince(table, since, apply)
			switch {
			case err == nil:
				usedDelta = true
				s.cfg.Logf("controlet %s: rejoined table %q from %s with an incremental delta since v%d",
					s.cfg.NodeID, table, args.SourceDatalet, since)
			case errors.Is(err, datalet.ErrDeltaUnavailable):
				s.cfg.Logf("controlet %s: table %q: delta since v%d unavailable at %s, falling back to full export",
					s.cfg.NodeID, table, since, args.SourceDatalet)
			default:
				return reply, fmt.Errorf("recover: delta export table %q: %w", table, err)
			}
		}
		if !usedDelta {
			reply.Delta = false
			err := src.Export(table, func(kv wire.KV) error {
				return apply(kv, false)
			})
			if err != nil {
				return reply, fmt.Errorf("recover: export table %q: %w", table, err)
			}
		}
		s.cfg.Logf("controlet %s: recovered %d records of table %q from %s (delta=%v)",
			s.cfg.NodeID, reply.Pairs, table, args.SourceDatalet, usedDelta)
	}
	return reply, nil
}
