package controlet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/store"
	"bespokv/internal/store/ht"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// slowPutEngine stretches every Put to a fixed service time so a tiny
// inflight cap saturates under a handful of concurrent writers.
type slowPutEngine struct {
	store.Engine
	delay time.Duration
}

func (s slowPutEngine) Put(key, value []byte, version uint64) (uint64, error) {
	time.Sleep(s.delay)
	return s.Engine.Put(key, value, version)
}

// TestControletShedsUnderOverload saturates a MaxInflight=1 controlet
// fronting a slow datalet: part of the write storm must be shed with the
// retryable StatusOverloaded at the entry edge, admitted work must still
// land, and control-lane ops must bypass the saturated gate entirely.
func TestControletShedsUnderOverload(t *testing.T) {
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	d, err := datalet.Serve(datalet.Config{
		Name:    "shed-datalet",
		Network: net,
		Codec:   codec,
		NewEngine: func(string) (store.Engine, error) {
			return slowPutEngine{Engine: ht.New(), delay: 5 * time.Millisecond}, nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	s, err := Serve(Config{
		NodeID:       "shed-node",
		ShardID:      "shed-shard",
		Network:      net,
		Codec:        codec,
		DataletAddr:  d.Addr(),
		DataletCodec: codec,
		Mode:         topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		// One slot against a 5ms datalet put, 4ms max queue wait: any op
		// queueing behind another is shed at the controlet's front door.
		MaxInflight: 1,
		ShedTarget:  time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	var acked, shed, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		cli, err := datalet.Dial(net, s.DataAddr(), codec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, cli *datalet.Client) {
			defer wg.Done()
			defer cli.Close()
			for i := 0; i < 30; i++ {
				var resp wire.Response
				req := wire.Request{
					Op:    wire.OpPut,
					Key:   []byte(fmt.Sprintf("k-%d-%d", w, i)),
					Value: []byte("v"),
				}
				if err := cli.Do(&req, &resp); err != nil {
					other.Add(1)
					continue
				}
				switch resp.Status {
				case wire.StatusOK:
					acked.Add(1)
				case wire.StatusOverloaded:
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(w, cli)
	}

	// Control-lane traffic must never wait behind the data storm.
	ctl, err := datalet.Dial(net, s.DataAddr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	for i := 0; i < 20; i++ {
		var resp wire.Response
		if err := ctl.Do(&wire.Request{Op: wire.OpNop}, &resp); err != nil {
			t.Fatalf("nop %d during overload: %v", i, err)
		}
		if resp.Status == wire.StatusOverloaded {
			t.Fatalf("nop %d shed: control lane must bypass the gate", i)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	t.Logf("storm: %d acked, %d shed, %d other", acked.Load(), shed.Load(), other.Load())
	if acked.Load() == 0 {
		t.Fatal("an overloaded controlet must still complete admitted work")
	}
	if shed.Load() == 0 {
		t.Fatal("six writers against one 5ms slot must trip the shedder")
	}
	if other.Load() != 0 {
		t.Fatalf("%d ops failed with something other than OK/Overloaded", other.Load())
	}
}

// TestControletDropsExpiredDeadline: a data op whose propagated budget is
// already spent on arrival is dropped at the front door with
// StatusOverloaded; a roomy budget is honored end to end.
func TestControletDropsExpiredDeadline(t *testing.T) {
	s, _ := startControlet(t, topology.Mode{Topology: topology.MS, Consistency: topology.Strong})
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	cli, err := datalet.Dial(net, s.DataAddr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	before := ctlDeadlineExpired.Value()
	var resp wire.Response
	req := wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("v"), Deadline: 1}
	if err := cli.Do(&req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOverloaded {
		t.Fatalf("expired-deadline put: status %v, want Overloaded", resp.Status)
	}
	if ctlDeadlineExpired.Value() <= before {
		t.Fatal("deadline_expired counter did not move")
	}
	resp.Reset()
	req = wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("v"), Deadline: uint64(time.Minute)}
	if err := cli.Do(&req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("roomy-deadline put: %+v", resp)
	}
}
