// Package controlet implements the bespokv control plane's per-node proxy:
// the component that takes a distribution-unaware datalet and gives it
// sharding, replication, a topology (master-slave or active-active), a
// consistency model (strong or eventual), failover recovery, and seamless
// online mode transitions. One controlet fronts one datalet (the paper's
// one-to-one mapping); a set of controlets plus the coordinator, DLM and
// shared log form a complete distributed KV store.
//
// The four pre-built modes follow §IV and Appendix C of the paper:
//
//   - MS+SC: chain replication (CRAQ-style head ack after tail ack);
//     strong reads at the tail.
//   - MS+EC: master commits locally, acks, propagates asynchronously.
//   - AA+SC: per-key DLM leases, write-all under the lock; fencing tokens
//     double as LWW versions.
//   - AA+EC: every write is sequenced through the shared log; replicas
//     apply in log order, so concurrent multi-master writes converge.
package controlet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/coordinator"
	"bespokv/internal/datalet"
	"bespokv/internal/metrics"
	"bespokv/internal/migrate"
	"bespokv/internal/overload"
	"bespokv/internal/rpc"
	"bespokv/internal/telemetry"
	"bespokv/internal/topology"
	"bespokv/internal/trace"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// Config configures one controlet.
type Config struct {
	// NodeID and ShardID locate this controlet in the cluster map.
	NodeID  string
	ShardID string
	// Network carries this controlet's client/peer/control traffic.
	Network transport.Network
	// DataletNetwork carries traffic to datalets (local and peer); nil
	// uses Network. Deployments that collocate each controlet with its
	// datalet set this to the in-process transport, modeling the paper's
	// one-pair-per-machine layout where the local hop is nearly free.
	DataletNetwork transport.Network
	// DataAddr and CtlAddr are the listen addresses for the data path
	// and the control RPC endpoint.
	DataAddr string
	CtlAddr  string
	// Codec is the data-path protocol toward clients and peer
	// controlets (normally binary).
	Codec wire.Codec
	// DataletAddr and DataletCodec reach the local datalet; the codec
	// may differ from the client-facing one (e.g. a text-protocol
	// tRedis-style datalet behind a binary front).
	DataletAddr  string
	DataletCodec wire.Codec
	// Mode is the initial topology+consistency pair this controlet
	// implements.
	Mode topology.Mode
	// CoordinatorAddr, DLMAddr and SharedLogAddr locate the control
	// services. The coordinator is optional for static single-shard
	// setups; the DLM is required for AA+SC; the shared log for AA+EC.
	CoordinatorAddr string
	DLMAddr         string
	SharedLogAddr   string
	// HeartbeatInterval paces liveness reports (default 250ms; the
	// paper's testbed used 5s — scaled down for single-box runs).
	HeartbeatInterval time.Duration
	// FenceTimeout, when > 0 (and CoordinatorAddr is set), makes the
	// controlet self-fence: if no heartbeat has been acknowledged for this
	// long, MS-mode writes and strong reads answer StatusUnavailable until
	// contact resumes. Set it to the coordinator's failure-detection
	// timeout and a partitioned head/tail stops serving at the same moment
	// the coordinator starts promoting its replacement — closing the
	// window where an isolated tail keeps answering strong reads that no
	// longer reflect the surviving chain.
	FenceTimeout time.Duration
	// PeerCallTimeout bounds every datalet/peer pipeline call (default 2s;
	// 0 keeps the default — the watchdog is what turns a blackholed peer
	// into an error instead of a hung chain holding the inflight lock).
	PeerCallTimeout time.Duration
	// PeerPoolSize is connections per peer controlet/datalet (default 2).
	PeerPoolSize int
	// LockTTL bounds AA+SC leases (default 2s).
	LockTTL time.Duration
	// P2PRouting enables the §IV-E P2P-style topology: this controlet
	// accepts requests for keys it does not own and routes them to the
	// owning shard via the cluster map (see p2p.go).
	P2PRouting bool
	// TelemetryInterval is the workload-stats window width (default 1s).
	// Snapshots (including the local datalet's, pulled over OpTelemetry)
	// ride every heartbeat tick to the coordinator's aggregator.
	TelemetryInterval time.Duration
	// MaxInflight caps concurrently executing client data ops (admission
	// control); requests beyond it queue briefly and are shed with
	// StatusOverloaded once the queue delay betrays overload. Control
	// traffic (heartbeat plumbing, epoch leases, stats) and internal
	// replication ops are never gated — a hot data path cannot starve the
	// control plane into a false failover. Default 1024; < 0 disables.
	MaxInflight int
	// ShedTarget is the CoDel queue-delay target for the shedder: data
	// ops that wait longer than this for an execution slot, persistently
	// over a control interval, start being shed. Default 5ms.
	ShedTarget time.Duration
	// Logf receives diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// connBufSize sizes per-connection read/write buffers; matched to the
// datalet client so one flush there fits in one read here.
const connBufSize = 64 << 10

// Server is a running controlet.
type Server struct {
	cfg Config

	dataListener transport.Listener
	ctl          *rpc.Server
	ctlAddr      string

	local *datalet.Pool // to the local datalet

	clock atomic.Uint64 // Lamport clock for LWW versions

	mapMu   sync.RWMutex
	curMap  *topology.Map
	curRing *topology.Ring

	peersMu sync.Mutex
	peers   map[string]*datalet.Pool // peer controlet data addr → pool

	dPeersMu sync.Mutex
	dPeers   map[string]*datalet.Pool // peer DATALET addr → pool

	// MS+EC asynchronous propagation (see async.go).
	prop *propagator

	// AA+EC shared-log plumbing (see aaec.go).
	aaec *logApplier

	// AA+SC lock client (see aasc.go).
	locks *lockClient

	// draining is set while a transition drain is in flight; new writes
	// are forwarded to the new-mode controlet.
	draining atomic.Bool

	// mig is the active shard migration, nil when idle (see migrate.go).
	mig atomic.Pointer[migrationState]

	// inflight tracks executing client writes: handlers hold the read
	// side; Quiesce takes the write side to wait for all of them — the
	// barrier the coordinator needs between installing a new chain and
	// snapshotting for standby backfill.
	inflight sync.RWMutex

	// lastBeat is the wall time (UnixNano) of the last heartbeat the
	// coordinator acknowledged; fenced() compares it against FenceTimeout.
	lastBeat atomic.Int64

	// tele accumulates this node's workload stats (client-entry ops only;
	// internal replication traffic lands in ClassOther so shard merges
	// never double-count).
	tele *telemetry.Recorder

	// gate admits client data ops (nil = admission control disabled);
	// control and internal replication lanes bypass it. See dispatchAdmit.
	gate *overload.Gate

	connsMu sync.Mutex
	conns   map[transport.Conn]struct{}
	wg      sync.WaitGroup
	stopCh  chan struct{}
	stopped atomic.Bool
}

// Serve starts a controlet and returns once both listeners are up.
func Serve(cfg Config) (*Server, error) {
	if cfg.Network == nil || cfg.Codec == nil {
		return nil, errors.New("controlet: Network and Codec are required")
	}
	if cfg.DataletCodec == nil {
		cfg.DataletCodec = cfg.Codec
	}
	if cfg.DataletNetwork == nil {
		cfg.DataletNetwork = cfg.Network
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 250 * time.Millisecond
	}
	if cfg.PeerPoolSize <= 0 {
		cfg.PeerPoolSize = 2
	}
	if cfg.PeerCallTimeout <= 0 {
		cfg.PeerCallTimeout = 2 * time.Second
	}
	if cfg.LockTTL <= 0 {
		cfg.LockTTL = 2 * time.Second
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 1024
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if !cfg.Mode.Valid() {
		return nil, fmt.Errorf("controlet: invalid mode %s", cfg.Mode)
	}
	local, err := datalet.DialPool(cfg.DataletNetwork, cfg.DataletAddr, cfg.DataletCodec, cfg.PeerPoolSize)
	if err != nil {
		return nil, fmt.Errorf("controlet: dial local datalet: %w", err)
	}
	local.SetCallTimeout(cfg.PeerCallTimeout)
	s := &Server{
		cfg:    cfg,
		local:  local,
		peers:  map[string]*datalet.Pool{},
		dPeers: map[string]*datalet.Pool{},
		conns:  map[transport.Conn]struct{}{},
		stopCh: make(chan struct{}),
		tele:   telemetry.NewRecorder(telemetry.Options{Interval: cfg.TelemetryInterval}),
		gate:   overload.NewGate(overload.Config{MaxInflight: cfg.MaxInflight, Target: cfg.ShedTarget}),
	}
	// Seed the clock so fresh controlets never reissue old versions
	// after recovery (coarse wall-clock epoch in the high bits, Lamport
	// counter in the low 32).
	s.clock.Store(uint64(time.Now().Unix()) << 32)
	// A fresh controlet starts unfenced; it has a full FenceTimeout to
	// land its first heartbeat.
	s.lastBeat.Store(time.Now().UnixNano())

	if cfg.Mode == (topology.Mode{Topology: topology.MS, Consistency: topology.Eventual}) {
		s.prop = newPropagator(s)
	}
	if cfg.Mode.Topology == topology.AA && cfg.Mode.Consistency == topology.Eventual {
		if cfg.SharedLogAddr == "" {
			return nil, errors.New("controlet: AA+EC requires SharedLogAddr")
		}
		s.aaec = newLogApplier(s)
		if err := s.aaec.start(); err != nil {
			return nil, err
		}
	}
	if cfg.Mode.Topology == topology.AA && cfg.Mode.Consistency == topology.Strong {
		if cfg.DLMAddr == "" {
			return nil, errors.New("controlet: AA+SC requires DLMAddr")
		}
		s.locks, err = newLockClient(cfg)
		if err != nil {
			return nil, err
		}
	}

	// Control RPC endpoint.
	s.ctl = rpc.NewServer()
	rpc.HandleFunc(s.ctl, "UpdateMap", s.handleUpdateMap)
	rpc.HandleFunc(s.ctl, "Recover", s.handleRecover)
	rpc.HandleFunc(s.ctl, "Drain", s.handleDrain)
	rpc.HandleFunc(s.ctl, "Quiesce", s.handleQuiesce)
	rpc.HandleFunc(s.ctl, "Reconcile", s.handleReconcile)
	rpc.HandleFunc(s.ctl, "Stats", s.handleStats)
	rpc.HandleFunc(s.ctl, "MigrateOut", s.handleMigrateOut)
	rpc.HandleFunc(s.ctl, "MigrateStream", s.handleMigrateStream)
	rpc.HandleFunc(s.ctl, "MigrateCutover", s.handleMigrateCutover)
	rpc.HandleFunc(s.ctl, "MigrateFloor", s.handleMigrateFloor)
	rpc.HandleFunc(s.ctl, "MigrateGC", s.handleMigrateGC)
	rpc.HandleFunc(s.ctl, "MigrateAbort", s.handleMigrateAbort)
	rpc.HandleFunc(s.ctl, "MigrateStatus", s.handleMigrateStatus)
	ctlAddr, err := s.ctl.Serve(cfg.Network, cfg.CtlAddr)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.ctlAddr = ctlAddr

	// Data-path listener.
	l, err := cfg.Network.Listen(cfg.DataAddr)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.dataListener = l
	s.wg.Add(1)
	go s.acceptLoop()

	if cfg.CoordinatorAddr != "" {
		// Fetch the initial map synchronously (best effort) so a
		// just-booted controlet can serve before its first heartbeat.
		if cc, err := coordinator.DialCoordinator(cfg.Network, cfg.CoordinatorAddr); err == nil {
			if m, err := cc.GetMap(); err == nil {
				s.SetMap(m)
			}
			cc.Close()
		}
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return s, nil
}

// DataAddr returns the bound data-path address.
func (s *Server) DataAddr() string { return s.dataListener.Addr() }

// CtlAddr returns the bound control-RPC address.
func (s *Server) CtlAddr() string { return s.ctlAddr }

// Node describes this controlet for cluster maps.
func (s *Server) Node() topology.Node {
	return topology.Node{
		ID:            s.cfg.NodeID,
		ControletAddr: s.DataAddr(),
		ControlAddr:   s.CtlAddr(),
		DataletAddr:   s.cfg.DataletAddr,
	}
}

// Close shuts the controlet down.
func (s *Server) Close() error {
	if s.stopped.Swap(true) {
		return nil
	}
	close(s.stopCh)
	if s.dataListener != nil {
		_ = s.dataListener.Close()
	}
	s.connsMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connsMu.Unlock()
	if s.ctl != nil {
		_ = s.ctl.Close()
	}
	if s.prop != nil {
		s.prop.stop()
	}
	if s.aaec != nil {
		s.aaec.stop()
	}
	if s.locks != nil {
		s.locks.close()
	}
	if ms := s.mig.Load(); ms != nil {
		ms.mover.Stop()
	}
	s.wg.Wait()
	s.peersMu.Lock()
	for _, p := range s.peers {
		_ = p.Close()
	}
	s.peersMu.Unlock()
	s.dPeersMu.Lock()
	for _, p := range s.dPeers {
		_ = p.Close()
	}
	s.dPeersMu.Unlock()
	if s.local != nil {
		_ = s.local.Close()
	}
	return nil
}

// nextVersion advances the Lamport clock.
func (s *Server) nextVersion() uint64 { return s.clock.Add(1) }

// observeVersion keeps the clock ahead of versions seen from peers.
func (s *Server) observeVersion(v uint64) {
	for {
		cur := s.clock.Load()
		if v <= cur || s.clock.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SetMap installs a cluster map directly (used by static setups, tests and
// the in-process harness; coordinated clusters receive pushes instead).
func (s *Server) SetMap(m *topology.Map) {
	clone := m.Clone()
	ring := topology.BuildRing(clone)
	s.mapMu.Lock()
	installed := s.curMap == nil || m.Epoch >= s.curMap.Epoch
	if installed {
		s.curMap = clone
		s.curRing = ring
	}
	s.mapMu.Unlock()
	if installed {
		// Grant the local datalet its epoch lease so it can fence direct
		// client reads against the map that just took effect.
		s.pushEpochLease(clone.Epoch)
	}
}

// Map returns the controlet's current cluster map (may be nil).
func (s *Server) Map() *topology.Map {
	s.mapMu.RLock()
	defer s.mapMu.RUnlock()
	return s.curMap
}

// myShard returns the shard containing this controlet and its position in
// the replica list. Membership is found by node ID so a standby promoted
// into any shard (whose identity it could not know at startup) resolves
// correctly; position is -1 when the node is in no shard (e.g. right after
// being failed over).
func (s *Server) myShard(m *topology.Map) (topology.Shard, int) {
	if m == nil {
		return topology.Shard{}, -1
	}
	for _, shard := range m.Shards {
		for i, n := range shard.Replicas {
			if n.ID == s.cfg.NodeID {
				return shard, i
			}
		}
	}
	if m.Transition != nil {
		// New-mode controlets live in the transition's shards until the
		// switch completes; they serve handoffs under the NEW replica
		// set (same datalets, new chain).
		for _, shard := range m.Transition.NewShards {
			for i, n := range shard.Replicas {
				if n.ID == s.cfg.NodeID {
					return shard, i
				}
			}
		}
	}
	for _, shard := range m.Shards {
		if shard.ID == s.cfg.ShardID {
			return shard, -1
		}
	}
	return topology.Shard{}, -1
}

// shardID returns the shard this controlet currently belongs to (by map
// membership, falling back to the configured shard).
func (s *Server) shardID() string {
	if shard, pos := s.myShard(s.Map()); pos >= 0 {
		return shard.ID
	}
	return s.cfg.ShardID
}

// transitionPeer returns the new-mode counterpart for this shard while a
// transition is in flight (the node writes are forwarded to).
func (s *Server) transitionPeer(m *topology.Map) (topology.Node, bool) {
	if m == nil || m.Transition == nil {
		return topology.Node{}, false
	}
	myShard, _ := s.myShard(m)
	shardID := myShard.ID
	if shardID == "" {
		shardID = s.cfg.ShardID
	}
	for _, shard := range m.Transition.NewShards {
		if shard.ID == shardID && len(shard.Replicas) > 0 {
			// Writes go to the new head/master; under AA any active
			// node works, and the head is one of them.
			return shard.Replicas[0], true
		}
	}
	return topology.Node{}, false
}

// peerPool returns (dialing lazily) a pool to a peer data-path address.
func (s *Server) peerPool(addr string) (*datalet.Pool, error) {
	s.peersMu.Lock()
	defer s.peersMu.Unlock()
	if p, ok := s.peers[addr]; ok {
		return p, nil
	}
	p, err := datalet.DialPool(s.cfg.Network, addr, s.cfg.Codec, s.cfg.PeerPoolSize)
	if err != nil {
		return nil, err
	}
	p.SetCallTimeout(s.cfg.PeerCallTimeout)
	s.peers[addr] = p
	return p, nil
}

// dropPeer discards a failed pool so the next use re-dials.
func (s *Server) dropPeer(addr string) {
	s.peersMu.Lock()
	if p, ok := s.peers[addr]; ok {
		delete(s.peers, addr)
		_ = p.Close()
	}
	s.peersMu.Unlock()
}

// dataletCodecFor resolves the wire codec a peer datalet speaks.
func (s *Server) dataletCodecFor(n topology.Node) wire.Codec {
	if n.DataletCodec != "" {
		if c, err := wire.LookupCodec(n.DataletCodec); err == nil {
			return c
		}
	}
	return s.cfg.DataletCodec
}

// dataletPool returns (dialing lazily) a pool to a peer datalet, over the
// datalet network and in the datalet's own protocol.
func (s *Server) dataletPool(n topology.Node) (*datalet.Pool, error) {
	s.dPeersMu.Lock()
	defer s.dPeersMu.Unlock()
	if p, ok := s.dPeers[n.DataletAddr]; ok {
		return p, nil
	}
	p, err := datalet.DialPool(s.cfg.DataletNetwork, n.DataletAddr, s.dataletCodecFor(n), s.cfg.PeerPoolSize)
	if err != nil {
		return nil, err
	}
	p.SetCallTimeout(s.cfg.PeerCallTimeout)
	s.dPeers[n.DataletAddr] = p
	return p, nil
}

// dropDataletPeer discards a failed datalet pool.
func (s *Server) dropDataletPeer(addr string) {
	s.dPeersMu.Lock()
	if p, ok := s.dPeers[addr]; ok {
		delete(s.dPeers, addr)
		_ = p.Close()
	}
	s.dPeersMu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.dataListener.Accept()
		if err != nil {
			return
		}
		s.connsMu.Lock()
		if s.stopped.Load() {
			s.connsMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connsMu.Lock()
				delete(s.conns, conn)
				s.connsMu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn transport.Conn) {
	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	bcd, _ := s.cfg.Codec.(wire.BufferedCodec)
	var req wire.Request
	var resp wire.Response
	for {
		req.Reset()
		if err := s.cfg.Codec.ReadRequest(br, &req); err != nil {
			if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) && !s.stopped.Load() {
				s.cfg.Logf("controlet %s: read: %v", s.cfg.NodeID, err)
			}
			return
		}
		resp.Reset()
		req.ArmDeadline(time.Now())
		timed := req.TraceID != 0 || metrics.SampleLatency()
		var start time.Time
		if timed {
			start = time.Now()
		}
		s.dispatchAdmit(&req, &resp)
		dur := time.Duration(-1)
		if timed {
			dur = time.Since(start)
			recordCtlOp(req.Op, dur)
			if req.TraceID != 0 {
				trace.Record(req.TraceID, s.cfg.NodeID, "controlet."+req.Op.String(), start, dur, resp.Err)
			}
		} else {
			countCtlOp(req.Op)
		}
		s.recordTelemetry(&req, &resp, dur)
		// dispatch may have decoded nested peer/datalet responses into
		// resp, overwriting its ID; stamp it after the fact so the reply
		// always echoes the request it answers.
		resp.ID = req.ID
		// Tell lagging clients the current epoch so they refresh.
		if m := s.Map(); m != nil && req.Epoch != 0 && req.Epoch < m.Epoch {
			resp.Epoch = m.Epoch
		}
		// Coalesce response flushes while more pipelined requests wait.
		if bcd != nil && br.Buffered() > 0 {
			if err := bcd.EncodeResponse(bw, &resp); err != nil {
				return
			}
			continue
		}
		if err := s.cfg.Codec.WriteResponse(bw, &resp); err != nil {
			return
		}
	}
}

// fenced reports whether this controlet has lost coordinator contact for a
// full FenceTimeout and must stop acknowledging MS writes and strong reads.
// The hazard it closes: a node isolated from clients' view of the cluster —
// coordinator unreachable but data path still up — would otherwise keep
// serving from a chain the coordinator is in the middle of replacing
// (double-acked writes at an old head, stale strong reads at an old tail).
func (s *Server) fenced() bool {
	if s.cfg.FenceTimeout <= 0 || s.cfg.CoordinatorAddr == "" {
		return false
	}
	return time.Since(time.Unix(0, s.lastBeat.Load())) > s.cfg.FenceTimeout
}

// heartbeatLoop reports liveness (including the local datalet's) to the
// coordinator and pulls fresher maps when the epoch moves. The connection
// is re-dialed whenever it goes bad — a controlet that survives a partition
// must be able to resume heartbeating (and unfence) after the heal, which a
// dial-once loop cannot do.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	// A heartbeat that outlives its interval is useless; cap how long the
	// loop can hang on a partitioned coordinator so fencing is detected on
	// time and the loop keeps its cadence.
	callTimeout := 2 * s.cfg.HeartbeatInterval
	if s.cfg.FenceTimeout > 0 && callTimeout > s.cfg.FenceTimeout/2 {
		callTimeout = s.cfg.FenceTimeout / 2
	}
	var coordClient *coordinator.Client
	defer func() {
		if coordClient != nil {
			coordClient.Close()
		}
	}()
	fails := 0
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
		}
		if coordClient == nil {
			cc, err := coordinator.DialCoordinator(s.cfg.Network, s.cfg.CoordinatorAddr)
			if err != nil {
				ctlHeartbeatErrs.Inc()
				continue
			}
			cc.SetCallTimeout(callTimeout)
			coordClient = cc
			fails = 0
		}
		dataletOK := s.local.Get().Ping() == nil
		ctlHeartbeats.Inc()
		epoch, err := coordClient.Heartbeat(s.cfg.NodeID, dataletOK)
		if err != nil {
			ctlHeartbeatErrs.Inc()
			if fails++; fails >= 2 {
				// The conn is likely dead (partition, coordinator
				// restart); drop it and re-dial next tick.
				coordClient.Close()
				coordClient = nil
			}
			continue
		}
		fails = 0
		s.lastBeat.Store(time.Now().UnixNano())
		cur := s.Map()
		if cur == nil || epoch > cur.Epoch {
			if m, err := coordClient.GetMap(); err == nil {
				s.SetMap(m)
			}
		} else {
			// Same epoch: refresh the datalet's lease TTL so direct reads
			// keep flowing exactly as long as this controlet is unfenced.
			s.pushEpochLease(cur.Epoch)
		}
		// Telemetry rides the already-open heartbeat connection; a failed
		// report costs nothing but this tick's freshness at the aggregator.
		if err := coordClient.TelemetryReport(s.telemetrySnapshots()); err != nil {
			ctlTelemetryErrs.Inc()
		} else {
			ctlTelemetryReports.Inc()
		}
	}
}

// telemetrySnapshots assembles this tick's report: the controlet's own
// snapshot plus the local datalet's (pulled over OpTelemetry — direct-path
// reads bypass the controlet, so only the datalet can count them). The
// controlet stamps shard/mode/epoch onto the datalet snapshot because the
// datalet is distribution-unaware by design.
func (s *Server) telemetrySnapshots() []telemetry.NodeSnapshot {
	now := time.Now()
	var mode string
	var epoch uint64
	if m := s.Map(); m != nil {
		mode = m.Mode.String()
		epoch = m.Epoch
	}
	snaps := []telemetry.NodeSnapshot{s.tele.Snapshot(now, telemetry.Info{
		Node: s.cfg.NodeID, Shard: s.cfg.ShardID, Role: "controlet",
		Mode: mode, Epoch: epoch,
	})}
	req := wire.GetRequest()
	req.Op = wire.OpTelemetry
	resp := wire.GetResponse()
	if err := s.local.Do(req, resp); err == nil && resp.Status == wire.StatusOK {
		var ds telemetry.NodeSnapshot
		if json.Unmarshal(resp.Value, &ds) == nil && ds.Node != "" {
			ds.Shard = s.cfg.ShardID
			ds.Mode = mode
			ds.Epoch = epoch
			snaps = append(snaps, ds)
		}
	}
	wire.PutRequest(req)
	wire.PutResponse(resp)
	return snaps
}

// --- control RPC handlers -------------------------------------------------

func (s *Server) handleUpdateMap(m *topology.Map) (struct{}, error) {
	if m == nil {
		return struct{}{}, errors.New("controlet: nil map")
	}
	s.SetMap(m)
	return struct{}{}, nil
}

// RecoverArgs names the surviving datalet to clone state from.
type RecoverArgs struct {
	// SourceDatalet is the data address of the surviving datalet.
	SourceDatalet string `json:"source"`
	// Codec optionally overrides the protocol spoken by the source
	// datalet (defaults to this controlet's datalet codec).
	Codec string `json:"codec,omitempty"`
}

func (s *Server) handleRecover(args RecoverArgs) (RecoverReply, error) {
	return s.recoverFrom(args)
}

// handleQuiesce returns once every write that was executing when the call
// arrived has completed. The coordinator pairs it with a synchronous
// UpdateMap: afterwards, every write this node acknowledges has traversed
// the new replica set, so a backfill snapshot taken next misses nothing.
func (s *Server) handleQuiesce(struct{}) (struct{}, error) {
	s.inflight.Lock()
	s.inflight.Unlock() //nolint:staticcheck // immediate handover is the point
	return struct{}{}, nil
}

// handleDrain flushes any asynchronous replication state so a transition
// can complete; it returns only when everything acked is fully propagated.
// Order matters: first install the transition map (it rides in the call —
// the broadcast push is asynchronous and may not have landed yet, and a
// draining controlet without the transition map could not know where to
// forward), then divert new writes (draining flag), then wait out writes
// already executing (they may still be about to enqueue propagation), and
// only then drain the propagation state — sampling the queues before the
// quiesce would miss an acked write racing its enqueue.
func (s *Server) handleDrain(m *topology.Map) (struct{}, error) {
	if m != nil {
		s.SetMap(m)
	}
	s.draining.Store(true)
	s.inflight.Lock()
	s.inflight.Unlock() //nolint:staticcheck // barrier handover
	if s.prop != nil {
		s.prop.drain()
	}
	if s.aaec != nil {
		s.aaec.drain()
	}
	return struct{}{}, nil
}

// StatsReply summarizes the controlet for tooling.
type StatsReply struct {
	NodeID  string `json:"node"`
	ShardID string `json:"shard"`
	Mode    string `json:"mode"`
	Epoch   uint64 `json:"epoch"`
	Role    string `json:"role"`
	Clock   uint64 `json:"clock"`
	// Migration is the active mover's progress, nil when idle.
	Migration *migrate.Status `json:"migration,omitempty"`
}

func (s *Server) handleStats(struct{}) (StatsReply, error) {
	m := s.Map()
	reply := StatsReply{
		NodeID:  s.cfg.NodeID,
		ShardID: s.cfg.ShardID,
		Mode:    s.cfg.Mode.String(),
		Clock:   s.clock.Load(),
	}
	if m != nil {
		reply.Epoch = m.Epoch
		_, pos := s.myShard(m)
		reply.Role = s.roleName(m, pos)
	}
	if ms := s.mig.Load(); ms != nil {
		st := ms.mover.Status()
		reply.Migration = &st
	}
	return reply, nil
}

func (s *Server) roleName(m *topology.Map, pos int) string {
	shard, _ := s.myShard(m)
	switch {
	case pos < 0:
		return "detached"
	case s.cfg.Mode.Topology == topology.AA:
		return "active"
	case pos == 0:
		return "head"
	case pos == len(shard.Replicas)-1:
		return "tail"
	default:
		return "mid"
	}
}
