package controlet

import (
	"errors"
	"fmt"
	"time"

	"bespokv/internal/overload"
	"bespokv/internal/wire"
)

// errShed marks failures that must surface to the client as
// StatusOverloaded: the op was rejected under load (shed, replication
// backlog, or a spent deadline budget) without being acknowledged, and
// retrying after backoff is the right response. Everything else on the
// write paths keeps its existing StatusErr/StatusUnavailable mapping.
var errShed = errors.New("overloaded")

// errDeadlineSpent is the errShed flavor for a request whose propagated
// deadline budget ran out at this hop — executing it would be wasted work
// the client has already given up on.
var errDeadlineSpent = fmt.Errorf("%w: deadline expired", errShed)

// dispatchAdmit runs the per-request overload checks in front of dispatch:
//
//   - control-lane ops (heartbeat plumbing, epoch leases, stats,
//     telemetry) pass straight through — the control plane is never
//     queued behind data traffic, so a data-path spike cannot delay the
//     liveness signals the coordinator's failure detector watches;
//   - every other lane drops work whose propagated deadline has already
//     expired (the client gave up; executing it helps no one);
//   - data-lane ops additionally pass admission control, and are shed
//     with the retryable StatusOverloaded when the gate says the node is
//     queueing beyond its delay target.
//
// Internal replication ops (chain forwards, async repl, handoffs) bypass
// the gate: they are the continuation of work already admitted at the
// entry edge, and re-gating them would shed the middle of a chain write
// more often than its head.
func (s *Server) dispatchAdmit(req *wire.Request, resp *wire.Response) {
	lane := overload.LaneOf(req.Op)
	if lane != overload.LaneControl && req.DeadlineExpired(time.Now()) {
		ctlDeadlineExpired.Inc()
		resp.Status = wire.StatusOverloaded
		resp.Err = "controlet: deadline expired"
		return
	}
	if lane == overload.LaneData {
		release, ok := s.gate.Admit()
		if !ok {
			ctlShedTotal.Inc()
			resp.Status = wire.StatusOverloaded
			resp.Err = "controlet: overloaded"
			return
		}
		defer release()
	}
	s.dispatch(req, resp)
}

// failWrite maps a write-path error onto the response: shed/deadline
// failures become the retryable StatusOverloaded (the op was never
// acked), everything else keeps the legacy StatusErr.
func failWrite(resp *wire.Response, err error) {
	if errors.Is(err, errShed) {
		resp.Status = wire.StatusOverloaded
	} else {
		resp.Status = wire.StatusErr
	}
	resp.Err = err.Error()
}

// peerErrValue folds a completed peer exchange into an error, preserving
// the overload classification across the hop: a downstream Overloaded
// becomes errShed here so the entry node answers its client with
// StatusOverloaded instead of a generic chain failure.
func peerErrValue(resp *wire.Response) error {
	if resp.Status == wire.StatusOverloaded {
		return fmt.Errorf("%w: %s", errShed, resp.Err)
	}
	return resp.ErrValue()
}
