package controlet

import (
	"errors"
	"time"

	"bespokv/internal/dlm"
	"bespokv/internal/topology"
	"bespokv/internal/trace"
	"bespokv/internal/wire"
)

// lockClient wraps the DLM connection for the AA+SC mode.
type lockClient struct {
	c   *dlm.Client
	ttl time.Duration
}

func newLockClient(cfg Config) (*lockClient, error) {
	c, err := dlm.DialClient(cfg.Network, cfg.DLMAddr, cfg.NodeID)
	if err != nil {
		return nil, err
	}
	return &lockClient{c: c, ttl: cfg.LockTTL}, nil
}

func (l *lockClient) close() { _ = l.c.Close() }

// acquire wraps the DLM lock call with the lock-wait histogram and, for
// sampled requests, a "dlm.wait" span.
func (s *Server) acquire(tid uint64, key string, mode dlm.Mode) (uint64, error) {
	start := time.Now()
	token, err := s.locks.c.LockTraced(tid, key, mode, s.locks.ttl, s.locks.ttl)
	dur := time.Since(start)
	ctlLockWait.Observe(dur)
	if tid != 0 {
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		trace.Record(tid, s.cfg.NodeID, "dlm.wait", start, dur, errStr)
	}
	return token, err
}

// lockedWrite implements the AA+SC put path (§C-B): acquire the per-key
// write lease, apply to every replica's datalet, release, acknowledge. The
// monotonically increasing fencing token doubles as the LWW version, so a
// slow writer whose lease expired can never clobber a newer value.
func (s *Server) lockedWrite(m *topology.Map, shard topology.Shard, req *wire.Request, resp *wire.Response) {
	lockKey := req.Table + "\x00" + string(req.Key)
	if _, err := s.acquire(req.TraceID, lockKey, dlm.Write); err != nil {
		resp.Status = wire.StatusUnavailable
		resp.Err = "dlm: " + err.Error()
		return
	}
	defer func() {
		if err := s.locks.c.Unlock(lockKey, dlm.Write); err != nil {
			s.cfg.Logf("controlet %s: unlock %q: %v (lease will expire)", s.cfg.NodeID, lockKey, err)
		}
	}()
	localOp := wire.OpPut
	replOp := wire.OpReplPut
	if req.Op == wire.OpDel {
		localOp = wire.OpDel
		replOp = wire.OpReplDel
	}
	// Lamport versions are safe here: the synchronous write-all under the
	// exclusive lease delivers this version to every peer before the
	// lease is released, so the next writer of this key (whoever it is)
	// has observed it and will assign a strictly larger version.
	version, err := s.writeLocalAssigned(localOp, req.Table, req.Key, req.Value, req.TraceID, req.DeadlineAt)
	if err != nil {
		failWrite(resp, err)
		return
	}
	if m != nil {
		if err := s.replicateAll(shard, replOp, req, version); err != nil {
			// Under write-all a dead peer fails the write; the
			// coordinator will remove it and the client retries. A peer
			// shed keeps its overload classification so the client backs
			// off rather than retrying immediately.
			if errors.Is(err, errShed) {
				resp.Status = wire.StatusOverloaded
			} else {
				resp.Status = wire.StatusUnavailable
			}
			resp.Err = "replicate: " + err.Error()
			return
		}
	}
	s.mirrorWrite(localOp == wire.OpDel, req.Table, req.Key, req.Value, version)
	resp.Status = wire.StatusOK
	resp.Version = version
}

// replicateAll applies the write at every peer replica concurrently — the
// fan-out rides the pipelined peer connections so the write-all costs one
// round-trip to the slowest peer, not the sum. It always waits for every
// peer (in-flight requests alias req's buffers); the first error wins.
func (s *Server) replicateAll(shard topology.Shard, op wire.Op, req *wire.Request, version uint64) error {
	type flight struct {
		addr  string
		fwd   *wire.Request
		presp *wire.Response
		errc  <-chan error
	}
	var flights []flight
	var firstErr error
	now := time.Now()
	for _, n := range shard.Replicas {
		if n.ID == s.cfg.NodeID {
			continue
		}
		pool, err := s.peerPool(n.ControletAddr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fwd := wire.GetRequest()
		fwd.Op = op
		fwd.Table = req.Table
		fwd.Key = req.Key
		fwd.Value = req.Value
		fwd.Version = version
		fwd.TraceID = req.TraceID
		// Peers get the remaining deadline budget; a budget spent before
		// the fan-out even launches fails the write-all up front (the
		// lease holder still owns the key, so nothing is half-committed
		// from the client's point of view — the op is simply not acked).
		fwd.DeadlineAt = req.DeadlineAt
		if !fwd.RestampDeadline(now) {
			wire.PutRequest(fwd)
			ctlDeadlineExpired.Inc()
			if firstErr == nil {
				firstErr = errDeadlineSpent
			}
			break
		}
		presp := wire.GetResponse()
		ctlReplicateAll.Inc()
		flights = append(flights, flight{n.ControletAddr, fwd, presp, pool.DoAsync(fwd, presp)})
	}
	for _, f := range flights {
		err := <-f.errc
		if err != nil {
			s.dropPeer(f.addr)
		} else {
			err = peerErrValue(f.presp)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		wire.PutRequest(f.fwd)
		wire.PutResponse(f.presp)
	}
	return firstErr
}

// lockedGet implements the AA+SC read path: a shared lease on the key,
// then a local read — any active node serves linearizable reads because
// writes hold the exclusive lease across all replicas.
func (s *Server) lockedGet(req *wire.Request, resp *wire.Response) {
	lockKey := req.Table + "\x00" + string(req.Key)
	if _, err := s.acquire(req.TraceID, lockKey, dlm.Read); err != nil {
		resp.Status = wire.StatusUnavailable
		resp.Err = "dlm: " + err.Error()
		return
	}
	defer func() {
		_ = s.locks.c.Unlock(lockKey, dlm.Read)
	}()
	s.localCall(req, resp)
}
