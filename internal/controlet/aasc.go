package controlet

import (
	"time"

	"bespokv/internal/dlm"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// lockClient wraps the DLM connection for the AA+SC mode.
type lockClient struct {
	c   *dlm.Client
	ttl time.Duration
}

func newLockClient(cfg Config) (*lockClient, error) {
	c, err := dlm.DialClient(cfg.Network, cfg.DLMAddr, cfg.NodeID)
	if err != nil {
		return nil, err
	}
	return &lockClient{c: c, ttl: cfg.LockTTL}, nil
}

func (l *lockClient) close() { _ = l.c.Close() }

// lockedWrite implements the AA+SC put path (§C-B): acquire the per-key
// write lease, apply to every replica's datalet, release, acknowledge. The
// monotonically increasing fencing token doubles as the LWW version, so a
// slow writer whose lease expired can never clobber a newer value.
func (s *Server) lockedWrite(m *topology.Map, shard topology.Shard, req *wire.Request, resp *wire.Response) {
	lockKey := req.Table + "\x00" + string(req.Key)
	if _, err := s.locks.c.Lock(lockKey, dlm.Write, s.locks.ttl, s.locks.ttl); err != nil {
		resp.Status = wire.StatusUnavailable
		resp.Err = "dlm: " + err.Error()
		return
	}
	defer func() {
		if err := s.locks.c.Unlock(lockKey, dlm.Write); err != nil {
			s.cfg.Logf("controlet %s: unlock %q: %v (lease will expire)", s.cfg.NodeID, lockKey, err)
		}
	}()
	localOp := wire.OpPut
	replOp := wire.OpReplPut
	if req.Op == wire.OpDel {
		localOp = wire.OpDel
		replOp = wire.OpReplDel
	}
	// Lamport versions are safe here: the synchronous write-all under the
	// exclusive lease delivers this version to every peer before the
	// lease is released, so the next writer of this key (whoever it is)
	// has observed it and will assign a strictly larger version.
	version, err := s.writeLocalAssigned(localOp, req.Table, req.Key, req.Value)
	if err != nil {
		resp.Status = wire.StatusErr
		resp.Err = err.Error()
		return
	}
	if m != nil {
		for _, n := range shard.Replicas {
			if n.ID == s.cfg.NodeID {
				continue
			}
			if err := s.replicateTo(n, replOp, req, version); err != nil {
				// Under write-all a dead peer fails the write; the
				// coordinator will remove it and the client retries.
				resp.Status = wire.StatusUnavailable
				resp.Err = "replicate: " + err.Error()
				return
			}
		}
	}
	resp.Status = wire.StatusOK
	resp.Version = version
}

// replicateTo synchronously applies the write at a peer controlet.
func (s *Server) replicateTo(n topology.Node, op wire.Op, req *wire.Request, version uint64) error {
	pool, err := s.peerPool(n.ControletAddr)
	if err != nil {
		return err
	}
	fwd := wire.Request{
		Op:      op,
		Table:   req.Table,
		Key:     req.Key,
		Value:   req.Value,
		Version: version,
	}
	var peerResp wire.Response
	if err := pool.Do(&fwd, &peerResp); err != nil {
		s.dropPeer(n.ControletAddr)
		return err
	}
	return peerResp.ErrValue()
}

// lockedGet implements the AA+SC read path: a shared lease on the key,
// then a local read — any active node serves linearizable reads because
// writes hold the exclusive lease across all replicas.
func (s *Server) lockedGet(req *wire.Request, resp *wire.Response) {
	lockKey := req.Table + "\x00" + string(req.Key)
	if _, err := s.locks.c.Lock(lockKey, dlm.Read, s.locks.ttl, s.locks.ttl); err != nil {
		resp.Status = wire.StatusUnavailable
		resp.Err = "dlm: " + err.Error()
		return
	}
	defer func() {
		_ = s.locks.c.Unlock(lockKey, dlm.Read)
	}()
	s.localCall(req, resp)
}
