package controlet

import (
	"errors"
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// Shard-coalesced multi-operations. The client library buckets keys by
// destination shard and ships one frame per shard; this file is the
// controlet side: route the whole frame under the same mode rules as the
// single-key paths, touch the local datalet once, and report per-key
// outcomes in Response.Statuses (index-aligned with Request.Pairs).

// handleMGet is the client-facing multi-read path. Routing mirrors
// handleGet exactly — the batch stands or falls as one unit, because every
// key in it was bucketed to this shard by the sender.
func (s *Server) handleMGet(req *wire.Request, resp *wire.Response) {
	m := s.Map()
	shard, pos := s.myShard(m)

	level := req.Level
	if level == wire.LevelDefault {
		if s.cfg.Mode.Consistency == topology.Strong {
			level = wire.LevelStrong
		} else {
			level = wire.LevelEventual
		}
	}

	if m == nil {
		s.localCall(req, resp)
		return
	}
	if m.Transition != nil {
		// Reads observe EC during a transition, as §V-A describes.
		s.localCall(req, resp)
		return
	}
	if pos < 0 {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: node not in current map"
		return
	}

	switch {
	case level == wire.LevelEventual:
		s.localCall(req, resp)
	case s.cfg.Mode.Topology == topology.AA && s.cfg.Mode.Consistency == topology.Strong:
		s.lockedMGet(req, resp)
	case s.cfg.Mode.Topology == topology.AA:
		s.localCall(req, resp)
	default:
		owner := shard.ReadTail()
		if s.cfg.Mode.Consistency == topology.Eventual {
			owner = shard.Head()
		}
		if owner.ID != s.cfg.NodeID {
			resp.Status = wire.StatusRedirect
			resp.Err = owner.ControletAddr
			return
		}
		if s.fenced() {
			ctlFencedRejects.Inc()
			resp.Status = wire.StatusUnavailable
			resp.Err = "controlet: fenced (no coordinator contact)"
			return
		}
		s.localCall(req, resp)
	}
}

// lockedMGet serves an AA+SC batch read key by key under the DLM (strong
// reads there must win the per-key lock; there is no batched lock
// primitive), merging the answers back into one frame.
func (s *Server) lockedMGet(req *wire.Request, resp *wire.Response) {
	kreq := wire.GetRequest()
	kresp := wire.GetResponse()
	defer wire.PutRequest(kreq)
	defer wire.PutResponse(kresp)
	resp.Status = wire.StatusOK
	for i := range req.Pairs {
		kreq.Reset()
		kreq.Op = wire.OpGet
		kreq.Table = req.Table
		kreq.Key = req.Pairs[i].Key
		kreq.Level = req.Level
		kreq.TraceID = req.TraceID
		kreq.DeadlineAt = req.DeadlineAt
		kresp.Reset()
		s.lockedGet(kreq, kresp)
		switch kresp.Status {
		case wire.StatusOK:
			resp.Pairs = append(resp.Pairs, wire.KV{
				Value:   append([]byte(nil), kresp.Value...),
				Version: kresp.Version,
			})
		default:
			resp.Pairs = append(resp.Pairs, wire.KV{})
		}
		resp.Statuses = append(resp.Statuses, kresp.Status)
	}
}

// handleMPut is the client-facing multi-write path. Mode guards mirror
// handleWrite; the MS modes then apply the whole frame to the local datalet
// in one pass, while the AA modes (per-key DLM locks, per-record shared-log
// sequencing) degrade to a per-pair loop over their single-key paths.
func (s *Server) handleMPut(req *wire.Request, resp *wire.Response) {
	s.inflight.RLock()
	defer s.inflight.RUnlock()
	m := s.Map()

	if m == nil && s.cfg.CoordinatorAddr != "" {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: no cluster map yet"
		return
	}
	shard, pos := s.myShard(m)

	if s.draining.Load() || (m != nil && m.Transition != nil && pos >= 0) {
		// Single-key writes are forwarded to the new-mode controlet one
		// by one; a batch is simply bounced — the client retries after
		// the transition's epoch bump and re-buckets under the new map.
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: transition in progress"
		return
	}
	if m != nil && pos < 0 {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: node not in current map"
		return
	}
	if ms := s.migration(); ms != nil {
		for i := range req.Pairs {
			if ms.mover.Blocks(req.Pairs[i].Key) {
				resp.Status = wire.StatusUnavailable
				resp.Err = "controlet: shard migration cutover in progress"
				return
			}
		}
	}
	if s.cfg.Mode.Topology == topology.MS && s.fenced() {
		ctlFencedRejects.Inc()
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: fenced (no coordinator contact)"
		return
	}

	switch {
	case s.cfg.Mode.Topology == topology.MS && s.cfg.Mode.Consistency == topology.Strong:
		s.chainMPut(m, shard, pos, req, resp)
	case s.cfg.Mode.Topology == topology.MS:
		s.asyncMPut(m, shard, pos, req, resp)
	default:
		s.pairLoopWrite(m, shard, req, resp)
	}
}

// multiWriteLocal assigns fresh LWW versions to every pair, applies the
// whole frame to the local datalet at once, and retries any pair that lost
// a version race (possible right after a transition out of AA+EC, whose
// log-derived versions live above the Lamport range). It returns the
// per-pair assigned versions and statuses, index-aligned with pairs.
func (s *Server) multiWriteLocal(table string, pairs []wire.KV, tid uint64, dlAt int64) ([]uint64, []wire.Status, error) {
	versions := make([]uint64, len(pairs))
	statuses := make([]wire.Status, len(pairs))
	pending := make([]int, len(pairs))
	for i := range pending {
		pending[i] = i
	}
	lreq := wire.GetRequest()
	lresp := wire.GetResponse()
	defer wire.PutRequest(lreq)
	defer wire.PutResponse(lresp)
	for attempt := 0; attempt < 8 && len(pending) > 0; attempt++ {
		lreq.Reset()
		lreq.Op = wire.OpMPut
		lreq.Table = table
		lreq.TraceID = tid
		lreq.DeadlineAt = dlAt
		if !lreq.RestampDeadline(time.Now()) {
			ctlDeadlineExpired.Inc()
			return nil, nil, errDeadlineSpent
		}
		for _, idx := range pending {
			versions[idx] = s.nextVersion()
			lreq.Pairs = append(lreq.Pairs, wire.KV{
				Key:     pairs[idx].Key,
				Value:   pairs[idx].Value,
				Version: versions[idx],
			})
		}
		lresp.Reset()
		if err := s.local.Do(lreq, lresp); err != nil {
			return nil, nil, err
		}
		if lresp.Status != wire.StatusOK {
			return nil, nil, peerErrValue(lresp)
		}
		var racing []int
		for j, idx := range pending {
			if j < len(lresp.Statuses) && lresp.Statuses[j] != wire.StatusOK {
				statuses[idx] = wire.StatusErr
				continue
			}
			if j < len(lresp.Pairs) && lresp.Pairs[j].Version > versions[idx] {
				s.observeVersion(lresp.Pairs[j].Version)
				racing = append(racing, idx)
				continue
			}
			statuses[idx] = wire.StatusOK
		}
		pending = racing
	}
	if len(pending) > 0 {
		return nil, nil, errors.New("controlet: local write kept losing version races")
	}
	return versions, statuses, nil
}

// chainMPut is the MS+SC batch write: the head applies the whole frame
// locally with assigned versions, then forwards one OpChainMPut frame down
// the chain and answers only after the tail's ack — per-key semantics
// identical to N chainWrites, at one frame per hop.
func (s *Server) chainMPut(m *topology.Map, shard topology.Shard, pos int, req *wire.Request, resp *wire.Response) {
	if m != nil && pos != 0 {
		resp.Status = wire.StatusRedirect
		resp.Err = shard.Head().ControletAddr
		return
	}
	versions, statuses, err := s.multiWriteLocal(req.Table, req.Pairs, req.TraceID, req.DeadlineAt)
	if err != nil {
		failWrite(resp, err)
		return
	}
	fwd := wire.GetRequest()
	defer wire.PutRequest(fwd)
	fwd.Op = wire.OpChainMPut
	fwd.Table = req.Table
	fwd.Epoch = epochOf(m)
	fwd.TraceID = req.TraceID
	fwd.DeadlineAt = req.DeadlineAt
	for i := range req.Pairs {
		if statuses[i] != wire.StatusOK {
			continue // pairs the local engine rejected are not replicated
		}
		fwd.Pairs = append(fwd.Pairs, wire.KV{
			Key:     req.Pairs[i].Key,
			Value:   req.Pairs[i].Value,
			Version: versions[i],
		})
	}
	if len(fwd.Pairs) > 0 && m != nil && pos+1 < len(shard.Replicas) {
		next := shard.Replicas[pos+1]
		var err error
		if !fwd.RestampDeadline(time.Now()) {
			ctlDeadlineExpired.Inc()
			err = errDeadlineSpent
		} else {
			var pool *datalet.Pool
			pool, err = s.peerPool(next.ControletAddr)
			if err == nil {
				presp := wire.GetResponse()
				err = pool.Do(fwd, presp)
				if err == nil {
					err = peerErrValue(presp)
				} else {
					s.dropPeer(next.ControletAddr)
				}
				wire.PutResponse(presp)
			}
		}
		if err != nil {
			// A broken chain fails the whole batch; the coordinator
			// repairs the chain and the client retries (LWW re-apply is
			// idempotent). Downstream sheds keep their overload class.
			if errors.Is(err, errShed) {
				resp.Status = wire.StatusOverloaded
			} else {
				resp.Status = wire.StatusUnavailable
			}
			resp.Err = "chain: " + err.Error()
			return
		}
	}
	for i := range req.Pairs {
		if statuses[i] == wire.StatusOK {
			s.mirrorWrite(false, req.Table, req.Pairs[i].Key, req.Pairs[i].Value, versions[i])
		}
		resp.Pairs = append(resp.Pairs, wire.KV{Version: versions[i]})
	}
	resp.Statuses = append(resp.Statuses[:0], statuses...)
	resp.Status = wire.StatusOK
}

// handleChainMPut is the mid/tail side: forward the frame downstream,
// apply the whole frame locally while it travels (same overlap as
// handleChain), ack upstream only after both complete.
func (s *Server) handleChainMPut(req *wire.Request, resp *wire.Response) {
	for i := range req.Pairs {
		s.observeVersion(req.Pairs[i].Version)
	}
	m := s.Map()
	shard, pos := s.myShard(m)
	if m != nil && pos < 0 {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: node not in current map"
		return
	}
	var ack *chainAck
	if m != nil && pos+1 < len(shard.Replicas) {
		next := shard.Replicas[pos+1]
		ack = &chainAck{addr: next.ControletAddr}
		pool, err := s.peerPool(next.ControletAddr)
		if err != nil {
			ack.err = err
		} else {
			fwd := wire.GetRequest()
			fwd.Op = wire.OpChainMPut
			fwd.Table = req.Table
			fwd.Epoch = req.Epoch
			fwd.TraceID = req.TraceID
			fwd.Pairs = append(fwd.Pairs, req.Pairs...)
			fwd.DeadlineAt = req.DeadlineAt
			if !fwd.RestampDeadline(time.Now()) {
				wire.PutRequest(fwd)
				ctlDeadlineExpired.Inc()
				ack.err = errDeadlineSpent
			} else {
				ack.fwd = fwd
				ctlChainForwards.Inc()
				ack.presp = wire.GetResponse()
				ack.errc = pool.DoAsync(fwd, ack.presp)
			}
		}
	}
	err := s.applyLocalM(req)
	if err != nil {
		_ = ack.wait(s) // drain; the write still fails upstream
		failWrite(resp, err)
		return
	}
	if err := ack.wait(s); err != nil {
		if errors.Is(err, errShed) {
			resp.Status = wire.StatusOverloaded
		} else {
			resp.Status = wire.StatusUnavailable
		}
		resp.Err = "chain: " + err.Error()
		return
	}
	resp.Status = wire.StatusOK
}

// applyLocalM applies a version-carrying multi-put frame to the local
// datalet verbatim; any per-pair engine failure fails the frame (chain
// replication cannot ack a write a replica did not store).
func (s *Server) applyLocalM(req *wire.Request) error {
	lreq := wire.GetRequest()
	lresp := wire.GetResponse()
	defer wire.PutRequest(lreq)
	defer wire.PutResponse(lresp)
	lreq.Op = wire.OpMPut
	lreq.Table = req.Table
	lreq.TraceID = req.TraceID
	lreq.Pairs = append(lreq.Pairs, req.Pairs...)
	lreq.DeadlineAt = req.DeadlineAt
	if !lreq.RestampDeadline(time.Now()) {
		ctlDeadlineExpired.Inc()
		return errDeadlineSpent
	}
	if err := s.local.Do(lreq, lresp); err != nil {
		return err
	}
	if lresp.Status != wire.StatusOK {
		return peerErrValue(lresp)
	}
	for _, st := range lresp.Statuses {
		if st != wire.StatusOK {
			return errors.New("controlet: replica rejected a chained pair")
		}
	}
	return nil
}

// asyncMPut is the MS+EC batch write: the master applies the frame locally
// in one pass, acks, and enqueues per-pair asynchronous propagation (the
// propagator's per-slave FIFO queues keep convergence).
func (s *Server) asyncMPut(m *topology.Map, shard topology.Shard, pos int, req *wire.Request, resp *wire.Response) {
	if m != nil && pos != 0 {
		resp.Status = wire.StatusRedirect
		resp.Err = shard.Head().ControletAddr
		return
	}
	versions, statuses, err := s.multiWriteLocal(req.Table, req.Pairs, req.TraceID, req.DeadlineAt)
	if err != nil {
		failWrite(resp, err)
		return
	}
	for i := range req.Pairs {
		if statuses[i] != wire.StatusOK {
			resp.Pairs = append(resp.Pairs, wire.KV{})
			continue
		}
		if s.prop != nil && m != nil {
			if !s.prop.enqueue(shard, propRecord{
				op:      wire.OpReplPut,
				table:   req.Table,
				key:     append([]byte(nil), req.Pairs[i].Key...),
				value:   append([]byte(nil), req.Pairs[i].Value...),
				version: versions[i],
				traceID: req.TraceID,
			}) {
				// Replication backlog: this pair applied locally but is
				// not acked — per-pair Overloaded, like the single-key
				// path's shed.
				ctlShedTotal.Inc()
				statuses[i] = wire.StatusOverloaded
				resp.Pairs = append(resp.Pairs, wire.KV{})
				continue
			}
		}
		s.mirrorWrite(false, req.Table, req.Pairs[i].Key, req.Pairs[i].Value, versions[i])
		resp.Pairs = append(resp.Pairs, wire.KV{Version: versions[i]})
	}
	resp.Statuses = append(resp.Statuses[:0], statuses...)
	resp.Status = wire.StatusOK
}

// pairLoopWrite degrades an AA-mode batch to its single-key write path per
// pair (AA+SC must win one DLM lease per key; AA+EC sequences one shared-log
// record per write), still saving the client the per-op framing and
// round-trips.
func (s *Server) pairLoopWrite(m *topology.Map, shard topology.Shard, req *wire.Request, resp *wire.Response) {
	kreq := wire.GetRequest()
	kresp := wire.GetResponse()
	defer wire.PutRequest(kreq)
	defer wire.PutResponse(kresp)
	resp.Status = wire.StatusOK
	for i := range req.Pairs {
		kreq.Reset()
		kreq.Op = wire.OpPut
		kreq.Table = req.Table
		kreq.Key = req.Pairs[i].Key
		kreq.Value = req.Pairs[i].Value
		kreq.TraceID = req.TraceID
		kreq.DeadlineAt = req.DeadlineAt
		kresp.Reset()
		if s.cfg.Mode.Consistency == topology.Strong {
			s.lockedWrite(m, shard, kreq, kresp)
		} else {
			s.loggedWrite(kreq, kresp)
		}
		resp.Pairs = append(resp.Pairs, wire.KV{Version: kresp.Version})
		resp.Statuses = append(resp.Statuses, kresp.Status)
	}
}

// pushEpochLease grants (or refreshes) the local datalet's epoch lease so
// it can fence direct client reads. The TTL is tied to FenceTimeout: a
// partitioned pair's datalet stops serving direct reads in the same window
// its controlet self-fences. Coordinator-less static setups get a
// non-expiring lease — their epoch never moves.
func (s *Server) pushEpochLease(epoch uint64) {
	var ttl uint64
	if s.cfg.FenceTimeout > 0 && s.cfg.CoordinatorAddr != "" {
		ttl = uint64(s.cfg.FenceTimeout)
	}
	req := wire.GetRequest()
	resp := wire.GetResponse()
	defer wire.PutRequest(req)
	defer wire.PutResponse(resp)
	req.Op = wire.OpEpochSet
	req.Epoch = epoch
	req.Version = ttl
	_ = s.local.Do(req, resp) // best effort; refreshed every heartbeat
}
