package controlet

import (
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// asyncWrite implements the MS+EC put path (§C-A): the master assigns a
// version, commits locally, acknowledges the client, and propagates to the
// slaves asynchronously on dedicated per-slave connections.
func (s *Server) asyncWrite(m *topology.Map, shard topology.Shard, pos int, req *wire.Request, resp *wire.Response) {
	if m != nil && pos != 0 {
		if s.cfg.P2PRouting && req.Limit < maxP2PHops {
			s.relayTo(shard.Head().ControletAddr, req, resp)
			return
		}
		resp.Status = wire.StatusRedirect
		resp.Err = shard.Head().ControletAddr
		return
	}
	localOp := wire.OpPut
	replOp := wire.OpReplPut
	if req.Op == wire.OpDel {
		localOp = wire.OpDel
		replOp = wire.OpReplDel
	}
	version, err := s.writeLocalAssigned(localOp, req.Table, req.Key, req.Value, req.TraceID, req.DeadlineAt)
	if err != nil {
		failWrite(resp, err)
		return
	}
	if s.prop != nil && m != nil {
		if !s.prop.enqueue(shard, propRecord{
			op:      replOp,
			table:   req.Table,
			key:     append([]byte(nil), req.Key...),
			value:   append([]byte(nil), req.Value...),
			version: version,
			traceID: req.TraceID,
		}) {
			// Bounded backpressure: the slave backlog is full and stayed
			// full past the enqueue grace. The write applied locally but
			// is NOT acknowledged — the client sees a retryable shed, and
			// a later retry re-applies idempotently under LWW. The
			// alternative (blocking here until the queue drains) is how
			// one slow slave turns into an unbounded master-side pileup.
			ctlShedTotal.Inc()
			resp.Status = wire.StatusOverloaded
			resp.Err = "controlet: replication backlog"
			return
		}
	}
	s.mirrorWrite(localOp == wire.OpDel, req.Table, req.Key, req.Value, version)
	resp.Status = wire.StatusOK
	resp.Version = version
}

// propRecord is one pending asynchronous replication write.
type propRecord struct {
	op      wire.Op
	table   string
	key     []byte
	value   []byte
	version uint64
	traceID uint64
}

// propagator fans master writes out to slaves in the background. One
// goroutine and one queue per slave keep per-slave FIFO order (which,
// combined with LWW versions, yields convergence), while the master's
// client path never blocks on replication.
type propagator struct {
	s       *Server
	mu      sync.Mutex
	queues  map[string]chan propRecord // slave controlet addr → queue
	pending sync.WaitGroup
	// pendingN mirrors the WaitGroup count for /statusz and the
	// replication-lag gauge (WaitGroup has no readable counter).
	pendingN atomic.Int64
	stopped  bool
}

// propQueueDepth bounds each slave's backlog; a full queue applies
// backpressure to the master's write path, which is preferable to
// unbounded memory growth during slave hiccups.
const propQueueDepth = 4096

// propEnqueueWait bounds how long a full slave queue may stall the write
// path before the write is shed with StatusOverloaded. The old behavior —
// blocking until space appeared — let one slow slave queue up every
// master write behind it, which is exactly the unbounded pileup overload
// control exists to prevent.
const propEnqueueWait = 50 * time.Millisecond

func newPropagator(s *Server) *propagator {
	return &propagator{s: s, queues: map[string]chan propRecord{}}
}

// enqueue queues rec for every slave, waiting at most propEnqueueWait per
// full queue. It reports false when any slave's backlog refused the
// record in time — the caller must NOT ack the write (records already
// queued for other slaves are harmless: the client's retry re-applies
// idempotently under LWW).
func (p *propagator) enqueue(shard topology.Shard, rec propRecord) bool {
	ok := true
	for _, n := range shard.Replicas {
		if n.ID == p.s.cfg.NodeID {
			continue
		}
		p.mu.Lock()
		if p.stopped {
			p.mu.Unlock()
			return false
		}
		q, qok := p.queues[n.ControletAddr]
		if !qok {
			q = make(chan propRecord, propQueueDepth)
			p.queues[n.ControletAddr] = q
			p.s.wg.Add(1)
			go p.slaveLoop(n.ControletAddr, q)
		}
		p.pending.Add(1)
		p.pendingN.Add(1)
		ctlPropPending.Add(1)
		p.mu.Unlock()
		select {
		case q <- rec:
			ctlPropEnqueued.Inc()
			continue
		default:
		}
		timer := time.NewTimer(propEnqueueWait)
		select {
		case q <- rec:
			timer.Stop()
			ctlPropEnqueued.Inc()
		case <-timer.C:
			p.pending.Done()
			p.pendingN.Add(-1)
			ctlPropPending.Add(-1)
			ok = false
		case <-p.s.stopCh:
			timer.Stop()
			p.pending.Done()
			p.pendingN.Add(-1)
			ctlPropPending.Add(-1)
			return false
		}
	}
	return ok
}

// propPipelineDepth caps how many records one delivery round keeps in
// flight on the slave connection.
const propPipelineDepth = 32

// slaveLoop drains one slave's queue, retrying transient failures and
// dropping records destined for a dead slave (recovery re-syncs it).
// Backlogged records are gathered into windows of propPipelineDepth and
// kept in flight together on the pipelined peer connection, so a slave a
// round-trip away no longer bounds propagation throughput to 1/RTT.
func (p *propagator) slaveLoop(addr string, q chan propRecord) {
	defer p.s.wg.Done()
	batch := make([]propRecord, 0, propPipelineDepth)
	for {
		select {
		case <-p.s.stopCh:
			// Fail remaining records so drain() cannot hang on stop.
			for {
				select {
				case <-q:
					p.pending.Done()
					p.pendingN.Add(-1)
					ctlPropPending.Add(-1)
				default:
					return
				}
			}
		case rec := <-q:
			batch = append(batch[:0], rec)
			for len(batch) < propPipelineDepth {
				select {
				case more := <-q:
					batch = append(batch, more)
				default:
					goto full
				}
			}
		full:
			p.deliverBatch(addr, batch)
			for range batch {
				p.pending.Done()
			}
			p.pendingN.Add(-int64(len(batch)))
			ctlPropPending.Add(-int64(len(batch)))
		}
	}
}

// deliverBatch pushes a window of records to one slave, all in flight at
// once, retrying whichever ones hit transport errors. Retries can reorder a
// failed record behind a later success, which is safe: slaves apply with
// LWW versions, so replays and reorderings converge.
func (p *propagator) deliverBatch(addr string, batch []propRecord) {
	type flight struct {
		rec  propRecord
		req  *wire.Request
		resp *wire.Response
		errc <-chan error
	}
	outstanding := batch
	for attempt := 0; attempt < 3; attempt++ {
		pool, err := p.s.peerPool(addr)
		if err == nil {
			flights := make([]flight, 0, len(outstanding))
			for _, rec := range outstanding {
				req := wire.GetRequest()
				req.Op = rec.op
				req.Table = rec.table
				req.Key = rec.key
				req.Value = rec.value
				req.Version = rec.version
				req.TraceID = rec.traceID
				resp := wire.GetResponse()
				flights = append(flights, flight{rec, req, resp, pool.DoAsync(req, resp)})
			}
			var failed []propRecord
			for _, f := range flights {
				if err := <-f.errc; err != nil {
					failed = append(failed, f.rec)
				}
				wire.PutRequest(f.req)
				wire.PutResponse(f.resp)
			}
			if len(failed) == 0 {
				return
			}
			p.s.dropPeer(addr)
			outstanding = failed
		}
		select {
		case <-p.s.stopCh:
			return
		case <-time.After(time.Duration(attempt+1) * 10 * time.Millisecond):
		}
	}
	ctlPropDropped.Add(int64(len(outstanding)))
	p.s.cfg.Logf("controlet %s: dropping %d propagation record(s) to %s (first key %q v%d): slave unreachable",
		p.s.cfg.NodeID, len(outstanding), addr, outstanding[0].key, outstanding[0].version)
}

// drain blocks until every enqueued record has been delivered or given up
// on — the MS+EC transition guarantee ("the old master keeps flushing out
// any pending propagation", §V-A).
func (p *propagator) drain() {
	p.pending.Wait()
}

func (p *propagator) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
}
