package controlet

import (
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/metrics"
	"bespokv/internal/telemetry"
	"bespokv/internal/wire"
)

// Hot-path metrics are resolved once at init (see the registry contract in
// internal/metrics): counting an op is one atomic add; latency timing is
// sampled (metrics.SampleLatency) because the clock pair dominates the
// bookkeeping cost. Control-path metrics (heartbeats, failover,
// propagation give-ups) may use labeled lookups freely.
var (
	ctlOpCount [wire.OpMax + 1]*metrics.Counter
	ctlOpLat   [wire.OpMax + 1]*metrics.Histogram

	// Replication fan-out, by mechanism: chain forwards launched (MS+SC),
	// async records enqueued/dropped (MS+EC), write-all peer applies
	// (AA+SC), shared-log appends (AA+EC).
	ctlChainForwards = metrics.Default.Counter("bespokv_controlet_chain_forwards_total")
	ctlPropEnqueued  = metrics.Default.Counter("bespokv_controlet_prop_enqueued_total")
	ctlPropDropped   = metrics.Default.Counter("bespokv_controlet_prop_dropped_total")
	ctlPropPending   = metrics.Default.Gauge("bespokv_controlet_prop_pending")
	ctlReplicateAll  = metrics.Default.Counter("bespokv_controlet_replicate_all_total")
	ctlLogAppendLat  = metrics.Default.Histogram("bespokv_controlet_log_append_seconds")
	ctlAAECApplied   = metrics.Default.Gauge("bespokv_controlet_aaec_applied_offset")

	// AA+SC lease acquisition: the DLM wait is the paper's SC overhead.
	ctlLockWait = metrics.Default.Histogram("bespokv_controlet_lock_wait_seconds")

	// Coordinator liveness reporting.
	ctlHeartbeats    = metrics.Default.Counter("bespokv_controlet_heartbeats_total")
	ctlHeartbeatErrs = metrics.Default.Counter("bespokv_controlet_heartbeat_errors_total")

	// Requests rejected because the node self-fenced (lost coordinator
	// contact past FenceTimeout).
	ctlFencedRejects = metrics.Default.Counter("bespokv_controlet_fenced_rejects_total")

	// Overload control: requests shed by admission control (including
	// replication-backlog backpressure) and requests dropped because
	// their propagated deadline budget was already spent at this hop.
	// Both answer the retryable StatusOverloaded; neither is acked.
	ctlShedTotal       = metrics.Default.Counter("bespokv_overload_shed_total", "layer", "controlet")
	ctlDeadlineExpired = metrics.Default.Counter("bespokv_deadline_expired_total", "layer", "controlet")

	// Telemetry reports shipped to (or lost on the way to) the aggregator.
	ctlTelemetryReports = metrics.Default.Counter("bespokv_controlet_telemetry_reports_total")
	ctlTelemetryErrs    = metrics.Default.Counter("bespokv_controlet_telemetry_errors_total")
)

func init() {
	for op := wire.OpNop; op <= wire.OpMax; op++ {
		ctlOpCount[op] = metrics.Default.Counter("bespokv_controlet_ops_total", "op", op.String())
		ctlOpLat[op] = metrics.Default.Histogram("bespokv_controlet_op_seconds", "op", op.String())
	}
}

func clampCtlOp(op wire.Op) wire.Op {
	if op > wire.OpMax {
		return wire.OpNop
	}
	return op
}

// countCtlOp is the unsampled path: op accounting without the clock.
func countCtlOp(op wire.Op) { ctlOpCount[clampCtlOp(op)].Inc() }

func recordCtlOp(op wire.Op, d time.Duration) {
	op = clampCtlOp(op)
	ctlOpCount[op].Inc()
	ctlOpLat[op].Observe(d)
}

// recordTelemetry accounts one dispatched frame into the workload recorder:
// class counters always (internal replication ops collapse to ClassOther),
// per-key sizes and sketch touches for client-entry classes only, latency
// when the op was timed (d >= 0). All of it is atomics plus a sampled
// sketch touch — safe on the hot path.
func (s *Server) recordTelemetry(req *wire.Request, resp *wire.Response, d time.Duration) {
	class := telemetry.ClassOf(req.Op)
	// Overloaded sheds spend the availability budget too: the SLO burn
	// engine must see an overloaded shard as burning, not healthy.
	isErr := resp.Status == wire.StatusErr || resp.Status == wire.StatusUnavailable ||
		resp.Status == wire.StatusOverloaded
	switch class {
	case telemetry.ClassGet:
		s.tele.Record(class, len(req.Key), len(resp.Value), d, isErr)
		s.tele.Touch(req.Key)
	case telemetry.ClassPut:
		s.tele.Record(class, len(req.Key), len(req.Value), d, isErr)
		s.tele.Touch(req.Key)
	case telemetry.ClassDel:
		s.tele.Record(class, len(req.Key), -1, d, isErr)
		s.tele.Touch(req.Key)
	case telemetry.ClassScan:
		s.tele.Record(class, len(req.Key), -1, d, isErr)
	case telemetry.ClassMGet:
		s.tele.Record(class, -1, -1, d, isErr)
		for i := range req.Pairs {
			s.tele.RecordKV(len(req.Pairs[i].Key), -1)
			s.tele.Touch(req.Pairs[i].Key)
		}
	case telemetry.ClassMPut:
		s.tele.Record(class, -1, -1, d, isErr)
		for i := range req.Pairs {
			s.tele.RecordKV(len(req.Pairs[i].Key), len(req.Pairs[i].Value))
			s.tele.Touch(req.Pairs[i].Key)
		}
	default:
		s.tele.Record(class, -1, -1, d, isErr)
	}
}

// poolStats sums Stats over a pool map under its lock.
func poolStats(pools map[string]*datalet.Pool) (conns, load int) {
	for _, p := range pools {
		c, l := p.Stats()
		conns += c
		load += l
	}
	return
}

// Status reports this controlet's role, map epoch, replication lag and
// connection-pool stats for /statusz.
func (s *Server) Status() any {
	m := s.Map()
	st := map[string]any{
		"role":       "detached",
		"node":       s.cfg.NodeID,
		"shard":      s.shardID(),
		"mode":       s.cfg.Mode.String(),
		"epoch":      uint64(0),
		"clock":      s.clock.Load(),
		"draining":   s.draining.Load(),
		"transition": false,
		"uptime_sec": int64(metrics.ProcessUptime().Seconds()),
	}
	if m != nil {
		st["epoch"] = m.Epoch
		st["transition"] = m.Transition != nil
		_, pos := s.myShard(m)
		st["role"] = s.roleName(m, pos)
	}
	localConns, localLoad := s.local.Stats()
	s.peersMu.Lock()
	peerConns, peerLoad := poolStats(s.peers)
	peerCount := len(s.peers)
	s.peersMu.Unlock()
	s.dPeersMu.Lock()
	dConns, dLoad := poolStats(s.dPeers)
	dCount := len(s.dPeers)
	s.dPeersMu.Unlock()
	st["pools"] = map[string]any{
		"local_conns":        localConns,
		"local_load":         localLoad,
		"peers":              peerCount,
		"peer_conns":         peerConns,
		"peer_load":          peerLoad,
		"peer_datalets":      dCount,
		"peer_datalet_conns": dConns,
		"peer_datalet_load":  dLoad,
	}
	// The /overloadz section: admission-gate state plus the process-wide
	// shed/deadline counters for this layer.
	st["overloadz"] = map[string]any{
		"gate":             s.gate.Snapshot(),
		"shed_total":       ctlShedTotal.Value(),
		"deadline_expired": ctlDeadlineExpired.Value(),
	}
	if s.prop != nil {
		st["prop_pending"] = s.prop.pendingN.Load()
	}
	if ms := s.mig.Load(); ms != nil {
		st["migration"] = ms.mover.Status()
	}
	if s.aaec != nil {
		st["aaec_applied_offset"] = s.aaec.applied.Load()
	}
	return st
}
