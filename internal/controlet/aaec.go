package controlet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"bespokv/internal/sharedlog"
	"bespokv/internal/trace"
	"bespokv/internal/wire"
)

// errStopped is returned for appends racing a controlet shutdown.
var errStopped = errors.New("controlet: shutting down")

// aaecVersionBase lifts log-derived versions above every Lamport version
// the other modes can issue (wall-clock seconds << 32 stays below 1<<63
// for the next few centuries), so a transition into AA+EC can never lose
// writes to stale pre-transition versions.
const aaecVersionBase = uint64(1) << 63

// logApplier implements AA+EC (§C-C): every write is appended to the
// shared log first; the writer applies it locally and acks, and every
// replica's applier consumes the log in order. Because all replicas apply
// the same totally ordered sequence with offset-derived versions,
// concurrent multi-master writes to the same key converge on every node —
// the conflict case Dynomite gets wrong (§C-C).
type logApplier struct {
	s       *Server
	client  *sharedlog.Client
	reader  *sharedlog.Client
	applied atomic.Uint64 // next offset to apply
	adj     atomic.Uint64 // version-floor adjustment (see floor records)
	appends chan appendReq
	stopCh  chan struct{}
}

// appendReq is one write waiting for the group-commit batcher.
type appendReq struct {
	stream string
	data   []byte
	resp   chan appendResult
}

type appendResult struct {
	offset uint64
	err    error
}

func newLogApplier(s *Server) *logApplier {
	return &logApplier{
		s:       s,
		appends: make(chan appendReq, 256),
		stopCh:  make(chan struct{}),
	}
}

func (a *logApplier) start() error {
	c, err := sharedlog.DialClient(a.s.cfg.Network, a.s.cfg.SharedLogAddr)
	if err != nil {
		return err
	}
	a.client = c
	// The applier gets its own connection so long-polls never block
	// appends.
	reader, err := sharedlog.DialClient(a.s.cfg.Network, a.s.cfg.SharedLogAddr)
	if err != nil {
		c.Close()
		return err
	}
	a.reader = reader
	a.s.wg.Add(2)
	go a.applyLoop(reader)
	go a.batchLoop()
	return nil
}

// batchLoop group-commits concurrent appends (CORFU-style): writes that
// arrive within the batching window share one Append RPC, and the log's
// contiguous offset assignment hands each its own offset.
func (a *logApplier) batchLoop() {
	defer a.s.wg.Done()
	const maxBatch = 128
	for {
		var first appendReq
		select {
		case <-a.stopCh:
			return
		case first = <-a.appends:
		}
		batch := []appendReq{first}
	gather:
		for len(batch) < maxBatch {
			select {
			case r := <-a.appends:
				if r.stream != first.stream {
					// Stream changed mid-batch (promotion); flush what
					// we have and let the odd one lead the next batch.
					go func(r appendReq) {
						select {
						case a.appends <- r:
						case <-a.stopCh:
							r.resp <- appendResult{err: errStopped}
						}
					}(r)
					break gather
				}
				batch = append(batch, r)
			default:
				break gather
			}
		}
		datas := make([][]byte, len(batch))
		for i, r := range batch {
			datas[i] = r.data
		}
		firstOff, err := a.client.Stream(first.stream).Append(datas...)
		for i, r := range batch {
			if err != nil {
				r.resp <- appendResult{err: err}
				continue
			}
			r.resp <- appendResult{offset: firstOff + uint64(i)}
		}
	}
}

// append sequences one record through the batcher on the shard's stream.
func (a *logApplier) append(stream string, data []byte) (uint64, error) {
	req := appendReq{stream: stream, data: data, resp: make(chan appendResult, 1)}
	select {
	case a.appends <- req:
	case <-a.stopCh:
		return 0, errStopped
	}
	select {
	case res := <-req.resp:
		return res.offset, res.err
	case <-a.stopCh:
		return 0, errStopped
	}
}

func (a *logApplier) stop() {
	close(a.stopCh)
	if a.client != nil {
		_ = a.client.Close()
	}
	if a.reader != nil {
		_ = a.reader.Close() // abort any in-flight long-poll read
	}
}

func (a *logApplier) applyLoop(reader *sharedlog.Client) {
	defer a.s.wg.Done()
	defer reader.Close()
	next := uint64(0)
	stream := a.s.shardID()
	for {
		select {
		case <-a.stopCh:
			return
		default:
		}
		// A standby promoted into a shard starts following that shard's
		// stream from the beginning (idempotent under LWW versions). The
		// floor adjustment replays with it: floor records are part of the
		// stream, so adj follows the same trajectory on every replay.
		if cur := a.s.shardID(); cur != stream {
			stream = cur
			next = 0
			a.adj.Store(0)
		}
		entries, n, err := reader.Stream(stream).Read(next, 4096, 500*time.Millisecond)
		if err != nil {
			select {
			case <-a.stopCh:
				return
			case <-time.After(50 * time.Millisecond):
				continue
			}
		}
		for _, e := range entries {
			a.applyEntry(e)
		}
		next = n
		a.applied.Store(next)
		ctlAAECApplied.Set(int64(next))
		if len(entries) > 0 {
			// Pace the long-poll so sustained appends coalesce into
			// batched reads instead of one wake per entry (the paper's
			// "scale the Shared Log setup" concern); costs ≤1ms of EC
			// propagation lag.
			select {
			case <-a.stopCh:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}
}

func (a *logApplier) applyEntry(e sharedlog.Entry) {
	if len(e.Data) > 0 && e.Data[0] == recFloor {
		a.applyFloor(e)
		return
	}
	rec, err := decodeLogRecord(e.Data)
	if err != nil {
		a.s.cfg.Logf("controlet %s: corrupt log entry at %d: %v", a.s.cfg.NodeID, e.Offset, err)
		return
	}
	adj := a.adj.Load()
	version := aaecVersionBase + adj + e.Offset + 1
	a.s.observeVersion(version)
	if rec.origin == a.s.cfg.NodeID && rec.adj == adj {
		// Already applied synchronously at append time with this exact
		// version. If the adjustments differ, the origin acked with a stale
		// floor and we fall through to reapply at the deterministic version
		// — idempotent under LWW (same value, version >= the stale one).
		return
	}
	if rec.shard != "" && rec.shard != a.s.shardID() {
		return // another shard's stream
	}
	op := wire.OpPut
	if rec.del {
		op = wire.OpDel
	}
	// Log records carry no trace ID: the sampled writer's own apply is
	// traced synchronously at append time; replica applies are untraced.
	if err := a.s.applyLocal(op, rec.table, rec.key, rec.value, version, 0, 0); err != nil {
		a.s.cfg.Logf("controlet %s: apply log entry %d: %v", a.s.cfg.NodeID, e.Offset, err)
	}
}

// applyFloor raises the stream's version-floor adjustment so that every
// subsequent offset-derived version lands strictly above the floor. A
// migration that moves keys into this shard carries versions minted on the
// SOURCE's stream, which can sit far above this stream's current offsets;
// without the floor, post-cutover writes here would silently lose the LWW
// race to migrated history. The record lives in the log itself, so every
// replica (and every future replay from offset 0) computes the identical
// adjustment at the identical point in the sequence.
func (a *logApplier) applyFloor(e sharedlog.Entry) {
	shard, floor, err := decodeFloorRecord(e.Data)
	if err != nil {
		a.s.cfg.Logf("controlet %s: corrupt floor record at %d: %v", a.s.cfg.NodeID, e.Offset, err)
		return
	}
	if shard != "" && shard != a.s.shardID() {
		return
	}
	base := aaecVersionBase + e.Offset + 1
	if floor <= base {
		return
	}
	if cand := floor - base; cand > a.adj.Load() {
		a.adj.Store(cand) // only the applyLoop goroutine writes adj
	}
	a.s.observeVersion(floor)
}

// appendFloor sequences a version-floor record through the shard's stream
// and waits until the local applier has consumed it, so writes acked by
// this node after appendFloor returns carry post-floor versions.
func (a *logApplier) appendFloor(floor uint64) error {
	off, err := a.append(a.s.shardID(), encodeFloorRecord(a.s.shardID(), floor))
	if err != nil {
		return err
	}
	for a.applied.Load() <= off {
		select {
		case <-a.stopCh:
			return errStopped
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// drain blocks until the applier has consumed everything appended before
// the drain began — the AA+EC side of the transition protocol (§V-B).
func (a *logApplier) drain() {
	target, err := a.client.Stream(a.s.shardID()).Tail()
	if err != nil {
		return
	}
	for a.applied.Load() < target {
		select {
		case <-a.stopCh:
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// loggedWrite implements the AA+EC client write path: sequence through the
// shared log, apply locally with the offset-derived version, acknowledge.
func (s *Server) loggedWrite(req *wire.Request, resp *wire.Response) {
	adj := s.aaec.adj.Load()
	rec := logRecord{
		origin: s.cfg.NodeID,
		shard:  s.shardID(),
		adj:    adj,
		del:    req.Op == wire.OpDel,
		table:  req.Table,
		key:    req.Key,
		value:  req.Value,
	}
	start := time.Now()
	offset, err := s.aaec.append(rec.shard, encodeLogRecord(rec))
	dur := time.Since(start)
	ctlLogAppendLat.Observe(dur)
	if req.TraceID != 0 {
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		trace.Record(req.TraceID, s.cfg.NodeID, "log.append", start, dur, errStr)
	}
	if err != nil {
		resp.Status = wire.StatusUnavailable
		resp.Err = "sharedlog: " + err.Error()
		return
	}
	version := aaecVersionBase + adj + offset + 1
	s.observeVersion(version)
	op := wire.OpPut
	if rec.del {
		op = wire.OpDel
	}
	if err := s.applyLocal(op, req.Table, req.Key, req.Value, version, req.TraceID, req.DeadlineAt); err != nil {
		// The record is already sequenced — every replica's applier will
		// land it regardless — so a failure here (including a spent
		// deadline) only means the client is not told "acked": the
		// outcome is indeterminate, like any unacknowledged write.
		failWrite(resp, err)
		return
	}
	s.mirrorWrite(rec.del, req.Table, req.Key, req.Value, version)
	resp.Status = wire.StatusOK
	resp.Version = version
}

// logRecord is the payload sequenced through the shared log. The shard tag
// makes one physical log carry every shard's stream, Tango-style: each
// applier consumes the total order but applies only its own shard's
// entries.
type logRecord struct {
	origin string
	shard  string
	adj    uint64 // floor adjustment the origin used for its synchronous apply
	del    bool
	table  string
	key    []byte
	value  []byte
}

// recFloor tags a version-floor record (see applyFloor); 0/1 tag ordinary
// put/del records.
const recFloor = 2

func encodeLogRecord(r logRecord) []byte {
	out := make([]byte, 0, 30+len(r.origin)+len(r.shard)+len(r.table)+len(r.key)+len(r.value))
	if r.del {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = appendBytes(out, []byte(r.origin))
	out = appendBytes(out, []byte(r.shard))
	out = binary.AppendUvarint(out, r.adj)
	out = appendBytes(out, []byte(r.table))
	out = appendBytes(out, r.key)
	out = appendBytes(out, r.value)
	return out
}

func decodeLogRecord(b []byte) (logRecord, error) {
	var r logRecord
	if len(b) < 1 {
		return r, fmt.Errorf("short record")
	}
	r.del = b[0] == 1
	b = b[1:]
	var f []byte
	var err error
	if f, b, err = takeBytes(b); err != nil {
		return r, err
	}
	r.origin = string(f)
	if f, b, err = takeBytes(b); err != nil {
		return r, err
	}
	r.shard = string(f)
	adj, w := binary.Uvarint(b)
	if w <= 0 {
		return r, fmt.Errorf("corrupt field")
	}
	r.adj = adj
	b = b[w:]
	if f, b, err = takeBytes(b); err != nil {
		return r, err
	}
	r.table = string(f)
	if r.key, b, err = takeBytes(b); err != nil {
		return r, err
	}
	if r.value, _, err = takeBytes(b); err != nil {
		return r, err
	}
	return r, nil
}

func encodeFloorRecord(shard string, floor uint64) []byte {
	out := make([]byte, 0, 12+len(shard))
	out = append(out, recFloor)
	out = appendBytes(out, []byte(shard))
	out = binary.AppendUvarint(out, floor)
	return out
}

func decodeFloorRecord(b []byte) (shard string, floor uint64, err error) {
	if len(b) < 1 || b[0] != recFloor {
		return "", 0, fmt.Errorf("not a floor record")
	}
	f, rest, err := takeBytes(b[1:])
	if err != nil {
		return "", 0, err
	}
	floor, w := binary.Uvarint(rest)
	if w <= 0 {
		return "", 0, fmt.Errorf("corrupt floor")
	}
	return string(f), floor, nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func takeBytes(b []byte) (field, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return nil, nil, fmt.Errorf("corrupt field")
	}
	return b[w : w+int(n)], b[w+int(n):], nil
}
