package controlet

import (
	"errors"
	"time"

	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// dispatch routes one data-path request through the mode-specific logic.
func (s *Server) dispatch(req *wire.Request, resp *wire.Response) {
	switch req.Op {
	case wire.OpNop:
		resp.Status = wire.StatusOK
	case wire.OpPut, wire.OpDel:
		if s.routeForeign(req, resp) {
			return
		}
		s.handleWrite(req, resp)
	case wire.OpGet:
		if s.routeForeign(req, resp) {
			return
		}
		s.handleGet(req, resp)
	case wire.OpScan:
		// Scans serve locally, like eventual reads: the client library
		// fans sub-ranges out to the right shards.
		s.localCall(req, resp)
	case wire.OpCreateTable, wire.OpDeleteTable:
		s.handleTableOp(req, resp)
	case wire.OpMGet:
		s.handleMGet(req, resp)
	case wire.OpMPut:
		s.handleMPut(req, resp)
	case wire.OpChainMPut:
		s.handleChainMPut(req, resp)
	case wire.OpChainPut, wire.OpChainDel:
		s.handleChain(req, resp)
	case wire.OpReplPut, wire.OpReplDel:
		s.handleRepl(req, resp)
	case wire.OpHandoff:
		// A peer's old-mode controlet handed us a client write during a
		// transition: treat it as a fresh client write in our mode.
		inner := *req
		inner.Op = wire.Op(req.Limit) // original op is carried in Limit
		inner.Limit = 0
		s.handleWrite(&inner, resp)
	default:
		resp.Status = wire.StatusErr
		resp.Err = "controlet: unsupported op " + req.Op.String()
	}
}

// localCall forwards a request verbatim to the local datalet, handing it
// whatever remains of the propagated deadline budget.
func (s *Server) localCall(req *wire.Request, resp *wire.Response) {
	fwd := wire.GetRequest()
	*fwd = *req
	if !fwd.RestampDeadline(time.Now()) {
		wire.PutRequest(fwd)
		ctlDeadlineExpired.Inc()
		resp.Status = wire.StatusOverloaded
		resp.Err = "controlet: deadline expired"
		return
	}
	err := s.local.Do(fwd, resp)
	wire.PutRequest(fwd)
	if err != nil {
		resp.Reset()
		resp.ID = req.ID
		resp.Status = wire.StatusUnavailable
		resp.Err = "local datalet: " + err.Error()
	}
}

// writeLocalAssigned assigns a fresh version, applies the write locally,
// and verifies it won the LWW race. If the datalet reports a newer
// governing version — possible right after a transition out of AA+EC,
// whose log-derived versions live above the Lamport range — the clock
// jumps past it and the write retries, so no acknowledged write is ever
// silently shadowed by pre-transition history.
// dlAt carries the client's armed deadline instant (0 = none); the local
// datalet is handed the shrinking remainder, and a spent budget fails the
// write with errShed before touching the engine.
func (s *Server) writeLocalAssigned(op wire.Op, table string, key, value []byte, tid uint64, dlAt int64) (uint64, error) {
	req := wire.GetRequest()
	resp := wire.GetResponse()
	defer wire.PutRequest(req)
	defer wire.PutResponse(resp)
	req.Op = op
	req.Table = table
	req.Key = key
	req.Value = value
	req.TraceID = tid
	for attempt := 0; attempt < 8; attempt++ {
		req.DeadlineAt = dlAt
		if !req.RestampDeadline(time.Now()) {
			ctlDeadlineExpired.Inc()
			return 0, errDeadlineSpent
		}
		version := s.nextVersion()
		req.Version = version
		if err := s.local.Do(req, resp); err != nil {
			return 0, err
		}
		if resp.Status == wire.StatusErr || resp.Status == wire.StatusUnavailable ||
			resp.Status == wire.StatusOverloaded {
			return 0, peerErrValue(resp)
		}
		if resp.Version <= version {
			return version, nil
		}
		s.observeVersion(resp.Version)
	}
	return 0, errors.New("controlet: local write kept losing version races")
}

// applyLocal writes to the local datalet with an explicit version. dlAt is
// the propagated deadline instant for pre-ack applies (chain hops); the
// post-ack paths — async repl records, shared-log replica applies — pass 0,
// because an acknowledged write must reach every replica no matter how
// late it runs.
func (s *Server) applyLocal(op wire.Op, table string, key, value []byte, version, tid uint64, dlAt int64) error {
	req := wire.GetRequest()
	resp := wire.GetResponse()
	defer wire.PutRequest(req)
	defer wire.PutResponse(resp)
	req.Op = op
	req.Table = table
	req.Key = key
	req.Value = value
	req.Version = version
	req.TraceID = tid
	req.DeadlineAt = dlAt
	if !req.RestampDeadline(time.Now()) {
		ctlDeadlineExpired.Inc()
		return errDeadlineSpent
	}
	if err := s.local.Do(req, resp); err != nil {
		return err
	}
	if resp.Status == wire.StatusErr || resp.Status == wire.StatusUnavailable ||
		resp.Status == wire.StatusOverloaded {
		return peerErrValue(resp)
	}
	return nil
}

// handleWrite is the client-facing Put/Del path.
func (s *Server) handleWrite(req *wire.Request, resp *wire.Response) {
	s.inflight.RLock()
	defer s.inflight.RUnlock()
	m := s.Map()

	// A coordinator-attached controlet without a map yet must not ack
	// anything: it cannot know its replica set, and a "standalone" apply
	// would be an ack no other replica ever sees (a freshly booted
	// new-mode controlet can receive transition handoffs before its
	// first map push lands). Standalone mode remains for
	// coordinator-less setups.
	if m == nil && s.cfg.CoordinatorAddr != "" {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: no cluster map yet"
		return
	}
	shard, pos := s.myShard(m)

	// Mid-transition, old-mode controlets forward client writes to their
	// new-mode replacement (§V): zero downtime, and the new controlet
	// replicates under the new mode.
	if s.draining.Load() || (m != nil && m.Transition != nil && pos >= 0) {
		if peer, ok := s.transitionPeer(m); ok && peer.ID != s.cfg.NodeID {
			s.forwardWrite(peer, req, resp)
			return
		}
		if s.draining.Load() {
			// Draining but the transition map hasn't landed yet, so the
			// forward target is unknown. Acking through the old path
			// would race the drain (the ack's propagation would never
			// be waited for); make the client retry instead.
			resp.Status = wire.StatusUnavailable
			resp.Err = "controlet: transition in progress"
			return
		}
	}

	if m != nil && pos < 0 {
		// We were failed out of the map (or never in it).
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: node not in current map"
		return
	}

	// Migration cutover barrier: once the mover's barrier is up, writes to
	// keys that are moving away must not be acknowledged here — the delta
	// queue is draining and the epoch bump is imminent. The client backs
	// off, refreshes its map and lands on the new owner.
	if ms := s.migration(); ms != nil && ms.mover.Blocks(req.Key) {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: shard migration cutover in progress"
		return
	}

	// Self-fencing (MS only): a node out of coordinator contact cannot know
	// whether it is still in the chain — the coordinator may be promoting
	// its replacement right now, and an ack issued here would exist only on
	// the deposed chain. AA modes don't need this: AA+SC writes must win a
	// DLM lease (unreachable under the same partition) and AA+EC acks are
	// sequenced through the shared log.
	if s.cfg.Mode.Topology == topology.MS && s.fenced() {
		ctlFencedRejects.Inc()
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: fenced (no coordinator contact)"
		return
	}

	switch {
	case s.cfg.Mode.Topology == topology.MS && s.cfg.Mode.Consistency == topology.Strong:
		s.chainWrite(m, shard, pos, req, resp)
	case s.cfg.Mode.Topology == topology.MS:
		s.asyncWrite(m, shard, pos, req, resp)
	case s.cfg.Mode.Consistency == topology.Strong:
		s.lockedWrite(m, shard, req, resp)
	default:
		s.loggedWrite(req, resp)
	}
}

// forwardWrite relays a client write to a peer controlet as an OpHandoff
// (the original op rides in Limit) and copies the peer's answer back.
func (s *Server) forwardWrite(peer topology.Node, req *wire.Request, resp *wire.Response) {
	pool, err := s.peerPool(peer.ControletAddr)
	if err != nil {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: transition peer unreachable: " + err.Error()
		return
	}
	fwd := *req
	fwd.Op = wire.OpHandoff
	fwd.Limit = uint32(req.Op)
	if !fwd.RestampDeadline(time.Now()) {
		ctlDeadlineExpired.Inc()
		resp.Status = wire.StatusOverloaded
		resp.Err = "controlet: deadline expired"
		return
	}
	if err := pool.Do(&fwd, resp); err != nil {
		s.dropPeer(peer.ControletAddr)
		resp.Reset()
		resp.ID = req.ID
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: transition forward failed: " + err.Error()
	}
	resp.ID = req.ID
}

// handleGet is the client-facing read path; per-request consistency
// (§IV-C) picks between local serves and redirects.
func (s *Server) handleGet(req *wire.Request, resp *wire.Response) {
	m := s.Map()
	shard, pos := s.myShard(m)

	level := req.Level
	if level == wire.LevelDefault {
		if s.cfg.Mode.Consistency == topology.Strong {
			level = wire.LevelStrong
		} else {
			level = wire.LevelEventual
		}
	}

	// Standalone controlets (no map installed) serve locally.
	if m == nil {
		s.localCall(req, resp)
		return
	}

	// During a transition reads stay on the old replicas and observe EC,
	// exactly as §V-A describes.
	if m.Transition != nil {
		s.localCall(req, resp)
		return
	}

	// A node failed out of the map (or drained away) must not serve even
	// eventual reads: its state stops being repaired, so its answers can
	// be arbitrarily stale rather than merely eventually consistent.
	if pos < 0 {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: node not in current map"
		return
	}

	switch {
	case level == wire.LevelEventual:
		s.localCall(req, resp)
	case s.cfg.Mode.Topology == topology.AA && s.cfg.Mode.Consistency == topology.Strong:
		s.lockedGet(req, resp)
	case s.cfg.Mode.Topology == topology.AA:
		// Strong read on AA+EC: best effort, serve locally (the paper's
		// AA+EC offers no strong reads either).
		s.localCall(req, resp)
	default:
		// MS: strong reads are owned by the chain tail (MS+SC) / the
		// master's tail equivalent. Redirect when we are not it.
		if pos < 0 {
			resp.Status = wire.StatusUnavailable
			resp.Err = "controlet: node not in current map"
			return
		}
		owner := shard.ReadTail() // recovering tails don't serve reads
		if s.cfg.Mode.Consistency == topology.Eventual {
			owner = shard.Head() // master holds the freshest state
		}
		if owner.ID == s.cfg.NodeID {
			// A fenced owner must not serve strong reads: the coordinator
			// may have already promoted a new chain that has acked writes
			// this isolated node never saw.
			if s.fenced() {
				ctlFencedRejects.Inc()
				resp.Status = wire.StatusUnavailable
				resp.Err = "controlet: fenced (no coordinator contact)"
				return
			}
			s.localCall(req, resp)
			return
		}
		if s.cfg.P2PRouting && req.Limit < maxP2PHops {
			s.relayTo(owner.ControletAddr, req, resp)
			return
		}
		resp.Status = wire.StatusRedirect
		resp.Err = owner.ControletAddr
	}
}

func (s *Server) handleTableOp(req *wire.Request, resp *wire.Response) {
	// Table DDL fans out to every replica's datalet synchronously; it is
	// rare and idempotent.
	m := s.Map()
	shard, pos := s.myShard(m)
	if m == nil || pos < 0 {
		s.localCall(req, resp)
		return
	}
	for _, n := range shard.Replicas {
		if n.ID == s.cfg.NodeID {
			if err := s.ddlLocal(req); err != nil {
				resp.Status = wire.StatusErr
				resp.Err = err.Error()
				return
			}
			continue
		}
		pool, err := s.dataletPool(n)
		if err != nil {
			resp.Status = wire.StatusUnavailable
			resp.Err = err.Error()
			return
		}
		fwd := wire.GetRequest()
		*fwd = *req
		peerResp := wire.GetResponse()
		err = pool.Do(fwd, peerResp)
		wire.PutRequest(fwd)
		wire.PutResponse(peerResp)
		if err != nil {
			s.dropDataletPeer(n.DataletAddr)
			resp.Status = wire.StatusUnavailable
			resp.Err = err.Error()
			return
		}
	}
	resp.Status = wire.StatusOK
}

func (s *Server) ddlLocal(req *wire.Request) error {
	fwd := wire.GetRequest()
	*fwd = *req
	resp := wire.GetResponse()
	err := s.local.Do(fwd, resp)
	wire.PutRequest(fwd)
	if err == nil {
		err = resp.ErrValue()
	}
	wire.PutResponse(resp)
	return err
}

// handleRepl applies an asynchronous replication record from a peer. The
// record is post-ack — the master already answered its client — so no
// deadline applies: dropping it would lose an acknowledged write.
func (s *Server) handleRepl(req *wire.Request, resp *wire.Response) {
	s.observeVersion(req.Version)
	op := wire.OpPut
	if req.Op == wire.OpReplDel {
		op = wire.OpDel
	}
	if err := s.applyLocal(op, req.Table, req.Key, req.Value, req.Version, req.TraceID, 0); err != nil {
		resp.Status = wire.StatusErr
		resp.Err = err.Error()
		return
	}
	resp.Status = wire.StatusOK
	resp.Version = req.Version
}
