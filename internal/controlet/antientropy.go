package controlet

import (
	"fmt"

	"bespokv/internal/datalet"
	"bespokv/internal/wire"
)

// Anti-entropy (§C-C discussion): asynchronous propagation can drop writes
// when a slave is unreachable past the retry budget, and AA gossip systems
// repair such divergence with background reconciliation. bespokv exposes
// the same repair as an explicit control-RPC — the coordinator (or an
// operator) invokes Reconcile on a shard member after suspected
// divergence, typically when a slave rejoins after a long partition.
//
// The protocol is one-directional push: the invoked controlet streams its
// local datalet's snapshot and applies every pair at each peer datalet
// with its original version. LWW versioning makes this safe in both
// directions — pairs where the peer is newer are ignored by the peer's
// engine, pairs where the peer is stale are repaired.

// ReconcileReply reports how much state was examined and pushed.
type ReconcileReply struct {
	// Pairs is the number of snapshot pairs pushed.
	Pairs int `json:"pairs"`
	// Accepted is the number of pairs every peer now governs at this
	// node's version (repaired, or already in sync).
	Accepted int `json:"accepted"`
	// PeerNewer is the number of pairs some peer held at a newer version
	// than this node (this node is the stale one for those keys).
	PeerNewer int `json:"peer_newer"`
	// Peers is the number of replicas reconciled against.
	Peers int `json:"peers"`
}

func (s *Server) handleReconcile(struct{}) (ReconcileReply, error) {
	m := s.Map()
	if m == nil {
		return ReconcileReply{}, fmt.Errorf("controlet: no map installed")
	}
	shard, pos := s.myShard(m)
	if pos < 0 {
		return ReconcileReply{}, fmt.Errorf("controlet: node not in current map")
	}
	var reply ReconcileReply

	// Snapshot every table of the local datalet and push to peers.
	local := s.local.Get()
	var stats wire.Response
	if err := local.Do(&wire.Request{Op: wire.OpStats}, &stats); err != nil {
		return ReconcileReply{}, err
	}
	var peers []*datalet.Client
	defer func() {
		for _, p := range peers {
			_ = p.Close()
		}
	}()
	for _, n := range shard.Replicas {
		if n.ID == s.cfg.NodeID {
			continue
		}
		p, err := datalet.Dial(s.cfg.DataletNetwork, n.DataletAddr, s.dataletCodecFor(n))
		if err != nil {
			return ReconcileReply{}, fmt.Errorf("controlet: reconcile dial %s: %w", n.ID, err)
		}
		peers = append(peers, p)
	}
	reply.Peers = len(peers)

	for _, tablePair := range stats.Pairs {
		table := string(tablePair.Key)
		// Create the table at peers (idempotent) before pushing.
		if table != "" {
			for _, p := range peers {
				var resp wire.Response
				if err := p.Do(&wire.Request{Op: wire.OpCreateTable, Table: table}, &resp); err != nil {
					return reply, err
				}
			}
		}
		src, err := datalet.Dial(s.cfg.DataletNetwork, s.cfg.DataletAddr, s.cfg.DataletCodec)
		if err != nil {
			return reply, err
		}
		err = src.Export(table, func(kv wire.KV) error {
			reply.Pairs++
			req := wire.Request{
				Op:      wire.OpPut,
				Table:   table,
				Key:     kv.Key,
				Value:   kv.Value,
				Version: kv.Version,
			}
			accepted := true
			peerNewer := false
			for _, p := range peers {
				var resp wire.Response
				if err := p.Do(&req, &resp); err != nil {
					return err
				}
				if resp.Version > kv.Version {
					peerNewer = true // the peer's LWW kept its newer value
					accepted = false
				}
			}
			if accepted {
				reply.Accepted++
			}
			if peerNewer {
				reply.PeerNewer++
			}
			return nil
		})
		src.Close()
		if err != nil {
			return reply, fmt.Errorf("controlet: reconcile table %q: %w", table, err)
		}
	}
	s.cfg.Logf("controlet %s: reconciled %d pairs across %d peers", s.cfg.NodeID, reply.Pairs, reply.Peers)
	return reply, nil
}
