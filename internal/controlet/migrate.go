package controlet

import (
	"fmt"
	"time"

	"bespokv/internal/migrate"
	"bespokv/internal/topology"
)

// migrationState is the controlet's side of one shard migration: the spec
// the coordinator sent and the mover executing it. At most one migration
// is active per controlet; the pointer lives in Server.mig so the write
// hot path can check for it with a single atomic load.
type migrationState struct {
	spec  migrate.Spec
	mover *migrate.Mover
}

// migration returns the active migration, or nil.
func (s *Server) migration() *migrationState {
	return s.mig.Load()
}

// migrationFor returns the active migration if it matches id.
func (s *Server) migrationFor(id string) (*migrationState, error) {
	ms := s.mig.Load()
	if ms == nil {
		return nil, fmt.Errorf("controlet: no active migration (want %s)", id)
	}
	if ms.spec.ID != id {
		return nil, fmt.Errorf("controlet: active migration is %s, not %s", ms.spec.ID, id)
	}
	return ms, nil
}

// mirrorWrite dual-applies one acknowledged write to its post-cutover
// owner. Called at every mode's ack point, under the inflight read lock;
// when no migration is active it costs one atomic load.
func (s *Server) mirrorWrite(del bool, table string, key, value []byte, version uint64) {
	if ms := s.mig.Load(); ms != nil {
		ms.mover.Mirror(del, table, key, value, version)
	}
}

// MigrateRef names an active migration in the per-step RPCs.
type MigrateRef struct {
	ID string `json:"id"`
}

// MigrateStreamReply reports the snapshot leg's volume.
type MigrateStreamReply struct {
	Keys       uint64 `json:"keys"`
	Bytes      uint64 `json:"bytes"`
	MaxVersion uint64 `json:"max_version"`
}

// MigrateCutoverReply reports the highest version this replica shipped,
// across both the snapshot and every dual-write — the input to the
// destination version floor.
type MigrateCutoverReply struct {
	MaxVersion uint64 `json:"max_version"`
}

// MigrateGCReply reports how many keys the source deleted.
type MigrateGCReply struct {
	Keys uint64 `json:"keys"`
}

// MigrateFloorArgs floors a DESTINATION replica's version domain above
// every migrated version, before the epoch bump makes it an owner.
type MigrateFloorArgs struct {
	Floor uint64 `json:"floor"`
}

// MigrateStatusReply is the controlet-local migration status.
type MigrateStatusReply struct {
	Active bool           `json:"active"`
	Status migrate.Status `json:"status,omitempty"`
}

// handleMigrateOut arms the dual-write window: it builds the mover and
// publishes it to the write path. Idempotent per migration ID, so the
// coordinator can safely retry.
func (s *Server) handleMigrateOut(spec migrate.Spec) (struct{}, error) {
	if cur := s.mig.Load(); cur != nil {
		if cur.spec.ID == spec.ID {
			return struct{}{}, nil
		}
		return struct{}{}, fmt.Errorf("controlet: migration %s already active", cur.spec.ID)
	}
	mv, err := migrate.New(migrate.Config{
		Spec:  spec,
		Local: s.local,
		Dest: func(n topology.Node) (migrate.Backend, error) {
			return s.dataletPool(n)
		},
		Logf: s.cfg.Logf,
	})
	if err != nil {
		return struct{}{}, err
	}
	if !s.mig.CompareAndSwap(nil, &migrationState{spec: spec, mover: mv}) {
		mv.Stop()
		return struct{}{}, fmt.Errorf("controlet: migration raced another MigrateOut")
	}
	s.cfg.Logf("controlet %s: migration %s armed (source %s)", s.cfg.NodeID, spec.ID, spec.SourceShard)
	return struct{}{}, nil
}

// handleMigrateStream runs the snapshot leg on this replica. The
// coordinator elects exactly one replica per source shard to stream; the
// others only dual-write. On AA+EC the applier drains first so the local
// datalet reflects every entry sequenced before the dual-write window
// armed — anything later is mirrored at ack time.
func (s *Server) handleMigrateStream(ref MigrateRef) (MigrateStreamReply, error) {
	ms, err := s.migrationFor(ref.ID)
	if err != nil {
		return MigrateStreamReply{}, err
	}
	if s.aaec != nil {
		s.aaec.drain()
	}
	keys, bytes, err := ms.mover.Stream()
	return MigrateStreamReply{Keys: keys, Bytes: bytes, MaxVersion: ms.mover.MaxVersion()}, err
}

// handleMigrateCutover runs the cutover barrier on this replica: refuse
// new writes to moving keys, wait out the writes already executing (they
// hold the inflight read lock and mirror at ack), then drain the catch-up
// queue to zero. When this returns on every source replica, the
// destinations hold every acknowledged write — the invariant that makes
// the coordinator's epoch bump safe.
func (s *Server) handleMigrateCutover(ref MigrateRef) (MigrateCutoverReply, error) {
	ms, err := s.migrationFor(ref.ID)
	if err != nil {
		return MigrateCutoverReply{}, err
	}
	start := time.Now()
	ms.mover.BeginCutover()
	s.inflight.Lock()
	//lint:ignore SA2001 empty critical section is the quiesce barrier
	s.inflight.Unlock()
	quiesced := time.Now()
	depth := ms.mover.QueueDepth()
	ms.mover.DrainQueue()
	s.cfg.Logf("controlet %s: %s cutover: quiesce %v, drain %v (depth %d at barrier)",
		s.cfg.NodeID, ref.ID, quiesced.Sub(start), time.Since(quiesced), depth)
	return MigrateCutoverReply{MaxVersion: ms.mover.MaxVersion()}, nil
}

// handleMigrateFloor runs on DESTINATION replicas before the epoch bump.
// It lifts the Lamport clock past every migrated version and, on AA+EC,
// sequences a floor record through the shard's log stream so offset-derived
// versions jump above the floor deterministically on every replica.
func (s *Server) handleMigrateFloor(args MigrateFloorArgs) (struct{}, error) {
	s.observeVersion(args.Floor)
	if s.aaec != nil {
		if err := s.aaec.appendFloor(args.Floor); err != nil {
			return struct{}{}, err
		}
	}
	return struct{}{}, nil
}

// handleMigrateGC deletes the moved range at the source and retires the
// mover. Runs after the epoch bump: clients have already been redirected
// away, so the deletes race nothing.
func (s *Server) handleMigrateGC(ref MigrateRef) (MigrateGCReply, error) {
	ms, err := s.migrationFor(ref.ID)
	if err != nil {
		return MigrateGCReply{}, err
	}
	keys, err := ms.mover.GC()
	ms.mover.Stop()
	s.mig.CompareAndSwap(ms, nil)
	return MigrateGCReply{Keys: keys}, err
}

// handleMigrateAbort tears the migration down and lifts the barrier; the
// source serves exactly as before. Stray copies at the destinations are
// harmless — they own nothing until an epoch bump that now never comes.
// Idempotent: aborting an unknown or already-cleared ID is a no-op.
func (s *Server) handleMigrateAbort(ref MigrateRef) (struct{}, error) {
	ms := s.mig.Load()
	if ms == nil || ms.spec.ID != ref.ID {
		return struct{}{}, nil
	}
	ms.mover.Stop()
	s.mig.CompareAndSwap(ms, nil)
	s.cfg.Logf("controlet %s: migration %s aborted", s.cfg.NodeID, ref.ID)
	return struct{}{}, nil
}

// handleMigrateStatus reports the local mover's progress.
func (s *Server) handleMigrateStatus(struct{}) (MigrateStatusReply, error) {
	ms := s.mig.Load()
	if ms == nil {
		return MigrateStatusReply{}, nil
	}
	return MigrateStatusReply{Active: true, Status: ms.mover.Status()}, nil
}
