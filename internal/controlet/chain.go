package controlet

import (
	"errors"
	"time"

	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// chainWrite implements the MS+SC put path with chain replication (§IV-A):
// the head assigns the version, applies locally, forwards down the chain;
// each node applies then forwards; the tail's ack travels back up and the
// head answers the client (CRAQ-style single client connection).
func (s *Server) chainWrite(m *topology.Map, shard topology.Shard, pos int, req *wire.Request, resp *wire.Response) {
	if m != nil && pos != 0 {
		// Only the head accepts client writes; relay under P2P routing,
		// otherwise send the client there.
		if s.cfg.P2PRouting && req.Limit < maxP2PHops {
			s.relayTo(shard.Head().ControletAddr, req, resp)
			return
		}
		resp.Status = wire.StatusRedirect
		resp.Err = shard.Head().ControletAddr
		return
	}
	op := wire.OpChainPut
	localOp := wire.OpPut
	if req.Op == wire.OpDel {
		op = wire.OpChainDel
		localOp = wire.OpDel
	}
	version, err := s.writeLocalAssigned(localOp, req.Table, req.Key, req.Value, req.TraceID, req.DeadlineAt)
	if err != nil {
		failWrite(resp, err)
		return
	}
	if err := s.startForwardChain(shard, 0, op, req, version).wait(s); err != nil {
		// A broken chain fails the write; the coordinator repairs the
		// chain and the client retries against the new topology. A
		// downstream shed keeps its overload classification so the
		// client backs off instead of hammering the repaired chain.
		if errors.Is(err, errShed) {
			resp.Status = wire.StatusOverloaded
		} else {
			resp.Status = wire.StatusUnavailable
		}
		resp.Err = "chain: " + err.Error()
		return
	}
	s.mirrorWrite(localOp == wire.OpDel, req.Table, req.Key, req.Value, version)
	resp.Status = wire.StatusOK
	resp.Version = version
}

// chainAck is an in-flight downstream forward. Its request/response pair
// comes from the wire message pools and is recycled by wait.
type chainAck struct {
	addr  string
	fwd   *wire.Request
	presp *wire.Response
	errc  <-chan error
	err   error // setup failure; set instead of errc
}

// startForwardChain launches the write toward the successor of position pos
// on a pipelined peer connection and returns immediately; the caller
// overlaps its local apply with the downstream network hop and then waits.
// A nil ack (this node is the tail) waits as an immediate success.
func (s *Server) startForwardChain(shard topology.Shard, pos int, op wire.Op, req *wire.Request, version uint64) *chainAck {
	if pos+1 >= len(shard.Replicas) {
		return nil // we are the tail
	}
	next := shard.Replicas[pos+1]
	ack := &chainAck{addr: next.ControletAddr}
	pool, err := s.peerPool(next.ControletAddr)
	if err != nil {
		ack.err = err
		return ack
	}
	fwd := wire.GetRequest()
	fwd.Op = op
	fwd.Table = req.Table
	fwd.Key = req.Key
	fwd.Value = req.Value
	fwd.Version = version
	fwd.Epoch = epochOf(s.Map())
	fwd.TraceID = req.TraceID
	// The downstream hop inherits whatever remains of the client's
	// deadline budget; a budget already spent fails the forward before it
	// leaves this node (the client has given up on the write anyway).
	fwd.DeadlineAt = req.DeadlineAt
	if !fwd.RestampDeadline(time.Now()) {
		wire.PutRequest(fwd)
		ctlDeadlineExpired.Inc()
		ack.err = errDeadlineSpent
		return ack
	}
	ack.fwd = fwd
	ctlChainForwards.Inc()
	ack.presp = wire.GetResponse()
	ack.errc = pool.DoAsync(fwd, ack.presp)
	return ack
}

// wait blocks until the downstream ack (meaning every node through the tail
// has applied the write) and recycles the pooled messages.
func (a *chainAck) wait(s *Server) error {
	if a == nil {
		return nil
	}
	if a.err != nil {
		return a.err
	}
	err := <-a.errc
	if err != nil {
		s.dropPeer(a.addr)
	} else {
		err = peerErrValue(a.presp)
	}
	wire.PutRequest(a.fwd)
	wire.PutResponse(a.presp)
	return err
}

// forwardChain is the synchronous start+wait pair, kept for callers with no
// work to overlap.
func (s *Server) forwardChain(shard topology.Shard, pos int, op wire.Op, req *wire.Request, version uint64) error {
	return s.startForwardChain(shard, pos, op, req, version).wait(s)
}

// handleChain is the mid/tail side of chain replication: launch the forward
// to the successor, apply locally while it travels, ack upstream only after
// both the local apply and the downstream ack. Overlapping the two halves
// pipelines the chain — the per-hop latency is max(apply, hop) instead of
// their sum — and is safe because the upstream ack (what the head's client
// observes, and what tail reads serve) still implies every node applied.
func (s *Server) handleChain(req *wire.Request, resp *wire.Response) {
	s.observeVersion(req.Version)
	m := s.Map()
	shard, pos := s.myShard(m)
	if m != nil && pos < 0 {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: node not in current map"
		return
	}
	localOp := wire.OpPut
	if req.Op == wire.OpChainDel {
		localOp = wire.OpDel
	}
	var ack *chainAck
	if m != nil {
		ack = s.startForwardChain(shard, pos, req.Op, req, req.Version)
	}
	if err := s.applyLocal(localOp, req.Table, req.Key, req.Value, req.Version, req.TraceID, req.DeadlineAt); err != nil {
		_ = ack.wait(s) // drain; the write still fails upstream
		failWrite(resp, err)
		return
	}
	if err := ack.wait(s); err != nil {
		if errors.Is(err, errShed) {
			resp.Status = wire.StatusOverloaded
		} else {
			resp.Status = wire.StatusUnavailable
		}
		resp.Err = "chain: " + err.Error()
		return
	}
	resp.Status = wire.StatusOK
	resp.Version = req.Version
}

func epochOf(m *topology.Map) uint64 {
	if m == nil {
		return 0
	}
	return m.Epoch
}
