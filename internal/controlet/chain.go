package controlet

import (
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// chainWrite implements the MS+SC put path with chain replication (§IV-A):
// the head assigns the version, applies locally, forwards down the chain;
// each node applies then forwards; the tail's ack travels back up and the
// head answers the client (CRAQ-style single client connection).
func (s *Server) chainWrite(m *topology.Map, shard topology.Shard, pos int, req *wire.Request, resp *wire.Response) {
	if m != nil && pos != 0 {
		// Only the head accepts client writes; relay under P2P routing,
		// otherwise send the client there.
		if s.cfg.P2PRouting && req.Limit < maxP2PHops {
			s.relayTo(shard.Head().ControletAddr, req, resp)
			return
		}
		resp.Status = wire.StatusRedirect
		resp.Err = shard.Head().ControletAddr
		return
	}
	op := wire.OpChainPut
	localOp := wire.OpPut
	if req.Op == wire.OpDel {
		op = wire.OpChainDel
		localOp = wire.OpDel
	}
	version, err := s.writeLocalAssigned(localOp, req.Table, req.Key, req.Value)
	if err != nil {
		resp.Status = wire.StatusErr
		resp.Err = err.Error()
		return
	}
	if err := s.forwardChain(shard, 0, op, req, version); err != nil {
		// A broken chain fails the write; the coordinator repairs the
		// chain and the client retries against the new topology.
		resp.Status = wire.StatusUnavailable
		resp.Err = "chain: " + err.Error()
		return
	}
	resp.Status = wire.StatusOK
	resp.Version = version
}

// forwardChain sends the write to the successor of position pos and waits
// for the ack that means every node through the tail has applied it.
func (s *Server) forwardChain(shard topology.Shard, pos int, op wire.Op, req *wire.Request, version uint64) error {
	if pos+1 >= len(shard.Replicas) {
		return nil // we are the tail
	}
	next := shard.Replicas[pos+1]
	pool, err := s.peerPool(next.ControletAddr)
	if err != nil {
		return err
	}
	fwd := wire.Request{
		Op:      op,
		Table:   req.Table,
		Key:     req.Key,
		Value:   req.Value,
		Version: version,
		Epoch:   epochOf(s.Map()),
	}
	var peerResp wire.Response
	if err := pool.Do(&fwd, &peerResp); err != nil {
		s.dropPeer(next.ControletAddr)
		return err
	}
	return peerResp.ErrValue()
}

// handleChain is the mid/tail side of chain replication: apply locally,
// forward to the successor, ack upstream after the downstream ack.
func (s *Server) handleChain(req *wire.Request, resp *wire.Response) {
	s.observeVersion(req.Version)
	m := s.Map()
	shard, pos := s.myShard(m)
	if m != nil && pos < 0 {
		resp.Status = wire.StatusUnavailable
		resp.Err = "controlet: node not in current map"
		return
	}
	localOp := wire.OpPut
	if req.Op == wire.OpChainDel {
		localOp = wire.OpDel
	}
	if err := s.applyLocal(localOp, req.Table, req.Key, req.Value, req.Version); err != nil {
		resp.Status = wire.StatusErr
		resp.Err = err.Error()
		return
	}
	if m != nil {
		if err := s.forwardChain(shard, pos, req.Op, req, req.Version); err != nil {
			resp.Status = wire.StatusUnavailable
			resp.Err = "chain: " + err.Error()
			return
		}
	}
	resp.Status = wire.StatusOK
	resp.Version = req.Version
}

func epochOf(m *topology.Map) uint64 {
	if m == nil {
		return 0
	}
	return m.Epoch
}
