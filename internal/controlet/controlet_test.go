package controlet

import (
	"bytes"
	"testing"
	"testing/quick"

	"bespokv/internal/datalet"
	"bespokv/internal/store"
	"bespokv/internal/store/ht"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

func TestLogRecordRoundtrip(t *testing.T) {
	in := logRecord{
		origin: "s0-r1",
		shard:  "shard-0",
		del:    true,
		table:  "jobs",
		key:    []byte("key-1"),
		value:  []byte("value-1"),
	}
	out, err := decodeLogRecord(encodeLogRecord(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.origin != in.origin || out.shard != in.shard || out.del != in.del || out.table != in.table ||
		!bytes.Equal(out.key, in.key) || !bytes.Equal(out.value, in.value) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", in, out)
	}
}

func TestLogRecordRoundtripQuick(t *testing.T) {
	f := func(origin, shard, table string, key, value []byte, del bool) bool {
		in := logRecord{origin: origin, shard: shard, del: del, table: table, key: key, value: value}
		out, err := decodeLogRecord(encodeLogRecord(in))
		if err != nil {
			return false
		}
		return out.origin == in.origin && out.shard == in.shard && out.del == in.del && out.table == in.table &&
			bytes.Equal(out.key, in.key) && bytes.Equal(out.value, in.value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLogRecordDecodeRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{nil, {}, {1}, {0, 0xff}, {1, 5, 'a'}} {
		if _, err := decodeLogRecord(raw); err == nil && len(raw) > 0 && raw[0] > 1 {
			t.Fatalf("garbage %v decoded", raw)
		}
	}
	// A truncated valid record must error, not panic.
	full := encodeLogRecord(logRecord{origin: "o", shard: "s", table: "t", key: []byte("k"), value: []byte("v")})
	for cut := 1; cut < len(full); cut++ {
		if _, err := decodeLogRecord(full[:cut]); err == nil {
			t.Fatalf("truncated record at %d decoded", cut)
		}
	}
}

// startControlet boots a minimal single-node MS+SC controlet (no
// coordinator) over an ht datalet for white-box tests.
func startControlet(t *testing.T, mode topology.Mode) (*Server, *datalet.Server) {
	t.Helper()
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	d, err := datalet.Serve(datalet.Config{
		Name:      "ut-datalet",
		Network:   net,
		Codec:     codec,
		NewEngine: func(string) (store.Engine, error) { return ht.New(), nil },
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	s, err := Serve(Config{
		NodeID:       "ut-node",
		ShardID:      "ut-shard",
		Network:      net,
		Codec:        codec,
		DataletAddr:  d.Addr(),
		DataletCodec: codec,
		Mode:         mode,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, d
}

func TestStandaloneControletServesWithoutMap(t *testing.T) {
	s, _ := startControlet(t, topology.Mode{Topology: topology.MS, Consistency: topology.Strong})
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	cli, err := datalet.Dial(net, s.DataAddr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var resp wire.Response
	if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("v")}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v", resp)
	}
	if err := cli.Do(&wire.Request{Op: wire.OpGet, Key: []byte("k")}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || string(resp.Value) != "v" {
		t.Fatalf("get: %+v", resp)
	}
}

func TestWriteLocalAssignedBumpsPastNewerVersions(t *testing.T) {
	s, d := startControlet(t, topology.Mode{Topology: topology.MS, Consistency: topology.Eventual})
	// Plant a value with a version far above the controlet's clock, as a
	// prior AA+EC era would leave behind.
	planted := uint64(1)<<63 + 42
	if _, err := d.Engine("").Put([]byte("k"), []byte("old-era"), planted); err != nil {
		t.Fatal(err)
	}
	ver, err := s.writeLocalAssigned(wire.OpPut, "", []byte("k"), []byte("new-era"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ver <= planted {
		t.Fatalf("assigned version %d did not pass planted %d", ver, planted)
	}
	v, gotVer, ok, _ := d.Engine("").Get([]byte("k"))
	if !ok || string(v) != "new-era" || gotVer != ver {
		t.Fatalf("write shadowed by old era: (%q,%d,%v)", v, gotVer, ok)
	}
}

func TestVersionClockObserves(t *testing.T) {
	s, _ := startControlet(t, topology.Mode{Topology: topology.MS, Consistency: topology.Eventual})
	base := s.clock.Load()
	s.observeVersion(base + 1000)
	if got := s.nextVersion(); got != base+1001 {
		t.Fatalf("nextVersion=%d, want %d", got, base+1001)
	}
	// Observing a lower version must not move the clock backwards.
	s.observeVersion(base)
	if got := s.nextVersion(); got <= base+1001 {
		t.Fatalf("clock went backwards: %d", got)
	}
}

func TestSetMapIgnoresStaleEpochs(t *testing.T) {
	s, _ := startControlet(t, topology.Mode{Topology: topology.MS, Consistency: topology.Strong})
	m5 := &topology.Map{Epoch: 5, Mode: topology.Mode{Topology: topology.MS, Consistency: topology.Strong}}
	m3 := &topology.Map{Epoch: 3, Mode: topology.Mode{Topology: topology.AA, Consistency: topology.Eventual}}
	s.SetMap(m5)
	s.SetMap(m3)
	if got := s.Map().Epoch; got != 5 {
		t.Fatalf("stale map installed: epoch %d", got)
	}
}

func TestRoleNames(t *testing.T) {
	s, _ := startControlet(t, topology.Mode{Topology: topology.MS, Consistency: topology.Strong})
	m := &topology.Map{
		Epoch: 1,
		Mode:  topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards: []topology.Shard{{
			ID: "ut-shard",
			Replicas: []topology.Node{
				{ID: "other-head"}, {ID: "ut-node"}, {ID: "other-tail"},
			},
		}},
	}
	s.SetMap(m)
	shard, pos := s.myShard(s.Map())
	if shard.ID != "ut-shard" || pos != 1 {
		t.Fatalf("myShard = (%s,%d)", shard.ID, pos)
	}
	if role := s.roleName(s.Map(), pos); role != "mid" {
		t.Fatalf("role=%s", role)
	}
}
