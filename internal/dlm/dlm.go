// Package dlm is a lease-based distributed lock manager — the
// reproduction's stand-in for the paper's Redlock/ZooKeeper lock service,
// used by the AA+SC controlet. Locks are per-key, shared (read) or
// exclusive (write), carry a TTL so a crashed controlet cannot wedge the
// cluster (the paper's "locks are released after a configurable period"),
// and return monotonically increasing fencing tokens.
//
// Lease expiry is tracked on a monotonic clock that never reads wall time:
// the table keeps a nanosecond counter that only moves forward, advanced by
// bounded deltas measured with the runtime's monotonic clock. Wall-clock
// jumps (NTP steps, VM suspends) therefore cannot expire a lease early. In
// replicated mode the counter is itself replicated state — only the leader
// stamps advances, so the clock pauses across a failover and a lease held
// when the old leader died stretches rather than double-granting.
package dlm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"bespokv/internal/rpc"
	"bespokv/internal/rsm"
	"bespokv/internal/transport"
)

// Mode selects shared or exclusive locking.
type Mode string

const (
	// Read locks are shared.
	Read Mode = "r"
	// Write locks are exclusive.
	Write Mode = "w"
)

// Config configures a lock server.
type Config struct {
	Network transport.Network
	Addr    string
	// DefaultTTL bounds a lease when the client does not specify one
	// (default 5s).
	DefaultTTL time.Duration
	// SweepInterval is how often expired leases are reclaimed and the
	// lease clock advanced (default DefaultTTL/4); expiry is also checked
	// lazily on every request.
	SweepInterval time.Duration
	// Replication, when set, runs the lease table on a replicated state
	// machine: every member serves Lock/Unlock on its Peers[ID] address,
	// but only the leader grants; elsewhere calls fail with the
	// rsm.NotLeaderError redirect that clients follow.
	Replication *rsm.GroupConfig
	Logf        func(format string, args ...any)
}

// leaseState is one key's lease record. Expiries are offsets on the
// table's monotonic clock (nanoseconds since the table was created), never
// wall-clock readings. The JSON form is the replicated snapshot encoding.
type leaseState struct {
	Writer    string           `json:"w,omitempty"`  // exclusive owner, "" if none
	WriterExp int64            `json:"we,omitempty"` // writer lease expiry (clock nanos)
	Readers   map[string]int64 `json:"r,omitempty"`  // shared holders → expiry
	Token     uint64           `json:"t,omitempty"`  // fencing token of newest grant
}

// lockTable is the deterministic core of the lock manager: a pure lease
// table on a monotonic nanosecond clock. It never reads wall time and has
// no randomness, so replicas applying the same command stream converge.
type lockTable struct {
	Locks     map[string]*leaseState `json:"locks"`
	NextToken uint64                 `json:"next_token"`
	// Clock is the lease clock in nanoseconds. It only moves forward, by
	// the deltas carried in commands; it is never compared to wall time.
	Clock int64 `json:"clock"`
}

func newLockTable() lockTable {
	return lockTable{Locks: map[string]*leaseState{}}
}

// advance moves the lease clock forward; negative deltas are ignored so
// the clock can never regress.
func (t *lockTable) advance(delta int64) {
	if delta > 0 {
		t.Clock += delta
	}
}

// expire drops leases past the clock; reports whether anything was freed.
func (t *lockTable) expire(st *leaseState) bool {
	freed := false
	if st.Writer != "" && t.Clock > st.WriterExp {
		st.Writer = ""
		freed = true
	}
	for owner, exp := range st.Readers {
		if t.Clock > exp {
			delete(st.Readers, owner)
			freed = true
		}
	}
	return freed
}

// tryGrant grants key to owner if compatible, returning the fencing token
// (0 = not granted). ttl is in clock nanoseconds.
func (t *lockTable) tryGrant(key, owner string, mode Mode, ttl int64) uint64 {
	st := t.Locks[key]
	if st == nil {
		st = &leaseState{Readers: map[string]int64{}}
		t.Locks[key] = st
	}
	t.expire(st)
	switch mode {
	case Read:
		// Shared: compatible with other readers and with a re-entrant
		// writer of the same owner.
		if st.Writer != "" && st.Writer != owner {
			return 0
		}
		st.Readers[owner] = t.Clock + ttl
	case Write:
		otherReaders := len(st.Readers)
		if _, selfReads := st.Readers[owner]; selfReads {
			otherReaders--
		}
		if (st.Writer != "" && st.Writer != owner) || otherReaders > 0 {
			return 0
		}
		st.Writer = owner
		st.WriterExp = t.Clock + ttl
	default:
		return 0
	}
	t.NextToken++
	st.Token = t.NextToken
	return t.NextToken
}

// release drops owner's lease on key; reports whether waiters should wake.
func (t *lockTable) release(key, owner string, mode Mode) bool {
	st := t.Locks[key]
	if st == nil {
		return false // already expired and reclaimed
	}
	switch mode {
	case Write:
		if st.Writer == owner {
			st.Writer = ""
		}
	case Read:
		delete(st.Readers, owner)
	}
	if st.Writer == "" && len(st.Readers) == 0 {
		delete(t.Locks, key)
	}
	return true
}

// sweep expires every key and reclaims empty entries, returning the keys
// that freed capacity (their waiters should wake).
func (t *lockTable) sweep() []string {
	var freed []string
	for key, st := range t.Locks {
		if t.expire(st) {
			freed = append(freed, key)
		}
		if st.Writer == "" && len(st.Readers) == 0 {
			delete(t.Locks, key)
		}
	}
	return freed
}

// Replicated command stream. Every command carries a leader-stamped clock
// delta so the lease clock advances exactly once per committed entry, in
// log order, identically on every member.
const (
	opLock   = "lock"
	opUnlock = "unlock"
	opSweep  = "sweep"
)

type dlmCmd struct {
	Op    string `json:"op"`
	Key   string `json:"key,omitempty"`
	Owner string `json:"owner,omitempty"`
	Mode  Mode   `json:"mode,omitempty"`
	TTL   int64  `json:"ttl,omitempty"`   // lease length, nanoseconds
	Delta int64  `json:"delta,omitempty"` // leader-observed monotonic advance
}

// proposeTimeout bounds one replicated lock operation.
const proposeTimeout = 5 * time.Second

// Server is a running lock manager.
type Server struct {
	cfg  Config
	rpc  *rpc.Server
	addr string
	node *rsm.Node // nil in standalone mode
	base time.Time // monotonic anchor; all deltas are measured against it

	mu       sync.Mutex
	tbl      lockTable
	lastMono int64 // monotonic reading at the last stamped delta
	// waiters are leader-local: channels cannot replicate, so blocked
	// Lock calls queue on the member that accepted them and re-propose
	// when a committed release/expiry frees their key.
	waiters map[string][]chan struct{}
	stopCh  chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// LockArgs requests a lease.
type LockArgs struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
	Mode  Mode   `json:"mode"`
	// TTLMs bounds the lease; 0 uses the server default.
	TTLMs int `json:"ttl_ms,omitempty"`
	// WaitMs bounds how long to queue for a contended lock; 0 means
	// fail immediately.
	WaitMs int `json:"wait_ms,omitempty"`
}

// LockReply carries the fencing token of the granted lease.
type LockReply struct {
	Token uint64 `json:"token"`
}

// UnlockArgs releases a lease.
type UnlockArgs struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
	Mode  Mode   `json:"mode"`
}

// ErrLockHeld is the error message returned when a lock cannot be granted
// within the wait budget.
const ErrLockHeld = "dlm: lock held"

// Serve starts a lock server.
func Serve(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("dlm: Network is required")
	}
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = 5 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.DefaultTTL / 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:     cfg,
		rpc:     rpc.NewServer(),
		base:    time.Now(),
		tbl:     newLockTable(),
		waiters: map[string][]chan struct{}{},
		stopCh:  make(chan struct{}),
	}
	s.rpc.Name = "dlm"
	rpc.HandleFunc(s.rpc, "Lock", s.handleLock)
	rpc.HandleFunc(s.rpc, "Unlock", s.handleUnlock)
	addr, err := s.rpc.Serve(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.addr = addr
	if rc := cfg.Replication; rc != nil {
		node, err := rsm.StartGroup(*rc, s.rpc, cfg.Network, dlmSM{s}, s.onLeaderChange, cfg.Logf)
		if err != nil {
			s.rpc.Close()
			return nil, err
		}
		s.node = node
	}
	s.wg.Add(1)
	go s.sweeper()
	return s, nil
}

// Addr returns the server's RPC address.
func (s *Server) Addr() string { return s.addr }

// IsLeader reports whether this member currently grants leases (always
// true in standalone mode).
func (s *Server) IsLeader() bool {
	return s.node == nil || s.node.IsLeader()
}

// RSMStatus reports the replication group's state (nil in standalone mode).
func (s *Server) RSMStatus() *rsm.Status {
	if s.node == nil {
		return nil
	}
	st := s.node.Status()
	return &st
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	close(s.stopCh)
	s.mu.Unlock()
	if s.node != nil {
		s.node.Close()
	}
	err := s.rpc.Close()
	s.wg.Wait()
	return err
}

// mono reads the process monotonic clock as nanoseconds since Serve.
func (s *Server) mono() int64 { return int64(time.Since(s.base)) }

// takeDelta stamps the monotonic advance since the last stamped command,
// capped at 2×SweepInterval. The cap bounds how far any single command can
// move the lease clock: a member that spent an hour as a follower (or a
// process resumed from a long suspend) cannot jump the clock by its idle
// time and mass-expire leases — under-advancing only stretches leases,
// which is the safe direction.
func (s *Server) takeDelta() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.mono()
	d := now - s.lastMono
	s.lastMono = now
	if d < 0 {
		d = 0
	}
	if cap := 2 * int64(s.cfg.SweepInterval); d > cap {
		d = cap
	}
	return d
}

// leaderCheck gates grants: in replicated mode only the leader's lease
// clock is live, everyone else redirects. Callers must not hold s.mu.
func (s *Server) leaderCheck() error {
	if s.node == nil || s.node.IsLeader() {
		return nil
	}
	return s.node.NotLeaderErr()
}

// onLeaderChange resets the delta baseline when this member takes over:
// the follower's lastMono is stale by the whole previous reign, and
// without the reset (plus the takeDelta cap as a backstop) the first
// stamped command would advance the lease clock by that entire gap.
func (s *Server) onLeaderChange(term uint64, isLeader bool) {
	s.mu.Lock()
	s.lastMono = s.mono()
	s.mu.Unlock()
	if isLeader {
		s.cfg.Logf("dlm: leading lease table at term %d", term)
	}
}

// applyCmd runs cmd through the lease table — directly in standalone mode,
// through the replicated log otherwise — returning the fencing token for
// lock commands (0 = not granted).
func (s *Server) applyCmd(cmd dlmCmd) (uint64, error) {
	if s.node == nil {
		s.mu.Lock()
		tok := s.applyLocked(cmd)
		s.mu.Unlock()
		return tok, nil
	}
	b, err := json.Marshal(cmd)
	if err != nil {
		return 0, err
	}
	res, err := s.node.Propose(b, proposeTimeout)
	if err != nil {
		return 0, err
	}
	tok, _ := res.(uint64)
	return tok, nil
}

// applyLocked is the deterministic apply body shared by the standalone
// path and dlmSM.Apply, so the two modes cannot drift. Caller holds s.mu.
func (s *Server) applyLocked(cmd dlmCmd) uint64 {
	s.tbl.advance(cmd.Delta)
	switch cmd.Op {
	case opLock:
		return s.tbl.tryGrant(cmd.Key, cmd.Owner, cmd.Mode, cmd.TTL)
	case opUnlock:
		if s.tbl.release(cmd.Key, cmd.Owner, cmd.Mode) {
			s.wakeLocked(cmd.Key)
		}
	case opSweep:
		for _, key := range s.tbl.sweep() {
			s.wakeLocked(key)
		}
	}
	return 0
}

// dlmSM adapts the lease table to the rsm.StateMachine interface. Apply
// runs on every member with the RSM internals locked, so it only touches
// s.mu-guarded state and never calls back into the RSM node.
type dlmSM struct{ s *Server }

func (m dlmSM) Apply(index uint64, cmd []byte) any {
	var op dlmCmd
	if err := json.Unmarshal(cmd, &op); err != nil {
		m.s.cfg.Logf("dlm: rsm entry %d undecodable: %v", index, err)
		return uint64(0)
	}
	m.s.mu.Lock()
	tok := m.s.applyLocked(op)
	m.s.mu.Unlock()
	return tok
}

func (m dlmSM) Snapshot() []byte {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	b, err := json.Marshal(m.s.tbl)
	if err != nil {
		m.s.cfg.Logf("dlm: rsm snapshot: %v", err)
		return nil
	}
	return b
}

func (m dlmSM) Restore(data []byte) {
	tbl := newLockTable()
	if len(data) > 0 {
		if err := json.Unmarshal(data, &tbl); err != nil {
			m.s.cfg.Logf("dlm: rsm restore: %v", err)
			return
		}
		if tbl.Locks == nil {
			tbl.Locks = map[string]*leaseState{}
		}
	}
	m.s.mu.Lock()
	m.s.tbl = tbl
	m.s.mu.Unlock()
}

func (s *Server) wakeLocked(key string) {
	for _, ch := range s.waiters[key] {
		close(ch)
	}
	delete(s.waiters, key)
}

// sweeper periodically advances the lease clock and reclaims expired
// leases. In replicated mode only the leader sweeps — its proposals are
// what keep the replicated clock moving, which is exactly why leases
// stretch rather than expire while the group has no leader.
func (s *Server) sweeper() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			if s.node != nil && !s.node.IsLeader() {
				continue
			}
			if _, err := s.applyCmd(dlmCmd{Op: opSweep, Delta: s.takeDelta()}); err != nil {
				// Lost leadership mid-propose; the new leader sweeps.
				continue
			}
		}
	}
}

func (s *Server) handleLock(args LockArgs) (LockReply, error) {
	if args.Key == "" || args.Owner == "" {
		return LockReply{}, errors.New("dlm: key and owner required")
	}
	if args.Mode != Read && args.Mode != Write {
		return LockReply{}, fmt.Errorf("dlm: bad mode %q", args.Mode)
	}
	ttl := time.Duration(args.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = s.cfg.DefaultTTL
	}
	var deadline time.Time
	if args.WaitMs > 0 {
		deadline = time.Now().Add(time.Duration(args.WaitMs) * time.Millisecond)
	}
	for {
		if err := s.leaderCheck(); err != nil {
			return LockReply{}, err
		}
		tok, err := s.applyCmd(dlmCmd{
			Op:    opLock,
			Key:   args.Key,
			Owner: args.Owner,
			Mode:  args.Mode,
			TTL:   int64(ttl),
			Delta: s.takeDelta(),
		})
		if err != nil {
			return LockReply{}, err
		}
		if tok != 0 {
			return LockReply{Token: tok}, nil
		}
		if deadline.IsZero() || !time.Now().Before(deadline) {
			return LockReply{}, errors.New(ErrLockHeld)
		}
		ch := make(chan struct{})
		s.mu.Lock()
		s.waiters[args.Key] = append(s.waiters[args.Key], ch)
		s.mu.Unlock()
		// Chunk the wait at a sweep interval: wakes cover releases, but
		// expiry timing and leadership moves are only observed by
		// re-proposing.
		wait := time.Until(deadline)
		if wait > s.cfg.SweepInterval {
			wait = s.cfg.SweepInterval
		}
		select {
		case <-ch:
		case <-time.After(wait):
			s.dropWaiter(args.Key, ch)
		case <-s.stopCh:
			s.dropWaiter(args.Key, ch)
			return LockReply{}, errors.New("dlm: shutting down")
		}
	}
}

// dropWaiter removes a timed-out waiter so abandoned channels do not pile
// up on a long-held key.
func (s *Server) dropWaiter(key string, ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.waiters[key]
	for i, w := range ws {
		if w == ch {
			s.waiters[key] = append(ws[:i:i], ws[i+1:]...)
			break
		}
	}
	if len(s.waiters[key]) == 0 {
		delete(s.waiters, key)
	}
}

func (s *Server) handleUnlock(args UnlockArgs) (struct{}, error) {
	if args.Mode != Read && args.Mode != Write {
		return struct{}{}, fmt.Errorf("dlm: bad mode %q", args.Mode)
	}
	if err := s.leaderCheck(); err != nil {
		return struct{}{}, err
	}
	_, err := s.applyCmd(dlmCmd{
		Op:    opUnlock,
		Key:   args.Key,
		Owner: args.Owner,
		Mode:  args.Mode,
		Delta: s.takeDelta(),
	})
	return struct{}{}, err
}

// Client is a typed connection to the lock service. It accepts a
// comma-separated address list and rotates on dial failure, connection
// errors, and NotLeader redirects, so callers survive lease-table
// failovers transparently.
type Client struct {
	network transport.Network
	owner   string

	mu       sync.Mutex
	addrs    []string
	cur      int
	redirect string // one-shot leader hint outside addrs
	conn     *rpc.Client
	closed   bool
}

// ErrClientClosed fails calls on a closed client, so Close aborts an
// in-flight lock wait instead of the call re-dialing and waiting again.
var ErrClientClosed = errors.New("dlm: client closed")

// DialClient connects with the given owner identity. addr may be a single
// address or a comma-separated list of lease-table members.
func DialClient(network transport.Network, addr, owner string) (*Client, error) {
	addrs := splitAddrs(addr)
	if len(addrs) == 0 {
		return nil, errors.New("dlm: no addresses")
	}
	c := &Client{network: network, owner: owner, addrs: addrs}
	for range addrs {
		if _, err := c.connect(); err == nil {
			return c, nil
		}
		c.mu.Lock()
		c.cur = (c.cur + 1) % len(c.addrs)
		c.mu.Unlock()
	}
	return nil, fmt.Errorf("dlm: no reachable server in %v", addrs)
}

func splitAddrs(addr string) []string {
	var out []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// connect returns the live connection, dialing the current target if
// needed. The dial happens outside the lock; a racing winner is reused.
func (c *Client) connect() (*rpc.Client, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		conn := c.conn
		c.mu.Unlock()
		return conn, nil
	}
	target := c.addrs[c.cur]
	if c.redirect != "" {
		target = c.redirect
		c.redirect = ""
	}
	c.mu.Unlock()
	conn, err := rpc.DialClient(c.network, target)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		existing := c.conn
		c.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	c.conn = conn
	c.mu.Unlock()
	return conn, nil
}

func (c *Client) drop(conn *rpc.Client) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
	conn.Close()
}

// rotate advances to the next configured address, or jumps straight to a
// NotLeader hint when the redirect names a known (or dialable) member.
func (c *Client) rotate(hint string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hint != "" {
		for i, a := range c.addrs {
			if a == hint {
				c.cur = i
				return
			}
		}
		c.redirect = hint
		return
	}
	c.cur = (c.cur + 1) % len(c.addrs)
}

func isConnErr(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, transport.ErrClosed) ||
		strings.Contains(err.Error(), "rpc: connection failed")
}

// call runs one RPC with rotation: NotLeader redirects re-target, dead
// connections rotate, and application errors (including ErrLockHeld and
// call timeouts) return immediately — the call may have executed.
func (c *Client) call(tid uint64, method string, args, reply any, timeout time.Duration) error {
	attempts := 3 * len(c.addrs)
	if attempts < 4 {
		attempts = 4
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(time.Duration(i) * 10 * time.Millisecond)
		}
		var conn *rpc.Client
		conn, err = c.connect()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return err
			}
			c.rotate("")
			continue
		}
		err = conn.CallTimeoutTraced(tid, method, args, reply, timeout)
		switch {
		case err == nil:
			return nil
		case rsm.IsNotLeader(err):
			c.drop(conn)
			c.rotate(rsm.LeaderHint(err))
		case isConnErr(err):
			c.drop(conn)
			c.rotate("")
		case errors.Is(err, rpc.ErrCallTimeout):
			// Silent member (blackholed or wedged): return the ambiguity,
			// but rotate first so the next call tries someone else.
			c.drop(conn)
			c.rotate("")
			return err
		default:
			return err
		}
	}
	return err
}

// Lock acquires key in the given mode, waiting up to wait; it returns the
// fencing token. The RPC deadline stretches past wait, since the server
// legitimately holds the call open that long.
func (c *Client) Lock(key string, mode Mode, ttl, wait time.Duration) (uint64, error) {
	return c.LockTraced(0, key, mode, ttl, wait)
}

// LockTraced is Lock carrying a trace ID, so the DLM hop shows up as a span
// of the sampled request that needed the lease.
func (c *Client) LockTraced(tid uint64, key string, mode Mode, ttl, wait time.Duration) (uint64, error) {
	var reply LockReply
	err := c.call(tid, "Lock", LockArgs{
		Key:    key,
		Owner:  c.owner,
		Mode:   mode,
		TTLMs:  int(ttl / time.Millisecond),
		WaitMs: int(wait / time.Millisecond),
	}, &reply, wait+rpc.DefaultCallTimeout)
	if err != nil {
		return 0, err
	}
	return reply.Token, nil
}

// Unlock releases key in the given mode.
func (c *Client) Unlock(key string, mode Mode) error {
	return c.call(0, "Unlock", UnlockArgs{Key: key, Owner: c.owner, Mode: mode}, nil, rpc.DefaultCallTimeout)
}

// Close tears down the connection (held leases expire via TTL).
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
