// Package dlm is a lease-based distributed lock manager — the
// reproduction's stand-in for the paper's Redlock/ZooKeeper lock service,
// used by the AA+SC controlet. Locks are per-key, shared (read) or
// exclusive (write), carry a TTL so a crashed controlet cannot wedge the
// cluster (the paper's "locks are released after a configurable period"),
// and return monotonically increasing fencing tokens.
package dlm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bespokv/internal/rpc"
	"bespokv/internal/transport"
)

// Mode selects shared or exclusive locking.
type Mode string

const (
	// Read locks are shared.
	Read Mode = "r"
	// Write locks are exclusive.
	Write Mode = "w"
)

// Config configures a lock server.
type Config struct {
	Network transport.Network
	Addr    string
	// DefaultTTL bounds a lease when the client does not specify one
	// (default 5s).
	DefaultTTL time.Duration
	// SweepInterval is how often expired leases are reclaimed (default
	// DefaultTTL/4); expiry is also checked lazily on every request.
	SweepInterval time.Duration
}

type lockState struct {
	writer    string               // owner holding exclusive, "" if none
	writerExp time.Time            // writer lease expiry
	readers   map[string]time.Time // shared holders → lease expiry
	token     uint64               // fencing token of the newest grant
	waiters   []chan struct{}      // woken on any release
}

// Server is a running lock manager.
type Server struct {
	cfg  Config
	rpc  *rpc.Server
	addr string

	mu        sync.Mutex
	locks     map[string]*lockState
	nextToken uint64
	stopCh    chan struct{}
	stopped   bool
	wg        sync.WaitGroup
}

// LockArgs requests a lease.
type LockArgs struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
	Mode  Mode   `json:"mode"`
	// TTLMs bounds the lease; 0 uses the server default.
	TTLMs int `json:"ttl_ms,omitempty"`
	// WaitMs bounds how long to queue for a contended lock; 0 means
	// fail immediately.
	WaitMs int `json:"wait_ms,omitempty"`
}

// LockReply carries the fencing token of the granted lease.
type LockReply struct {
	Token uint64 `json:"token"`
}

// UnlockArgs releases a lease.
type UnlockArgs struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
	Mode  Mode   `json:"mode"`
}

// ErrLockHeld is the error message returned when a lock cannot be granted
// within the wait budget.
const ErrLockHeld = "dlm: lock held"

// Serve starts a lock server.
func Serve(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("dlm: Network is required")
	}
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = 5 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.DefaultTTL / 4
	}
	s := &Server{
		cfg:    cfg,
		rpc:    rpc.NewServer(),
		locks:  map[string]*lockState{},
		stopCh: make(chan struct{}),
	}
	s.rpc.Name = "dlm"
	rpc.HandleFunc(s.rpc, "Lock", s.handleLock)
	rpc.HandleFunc(s.rpc, "Unlock", s.handleUnlock)
	addr, err := s.rpc.Serve(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.addr = addr
	s.wg.Add(1)
	go s.sweeper()
	return s, nil
}

// Addr returns the server's RPC address.
func (s *Server) Addr() string { return s.addr }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	close(s.stopCh)
	s.mu.Unlock()
	err := s.rpc.Close()
	s.wg.Wait()
	return err
}

func (s *Server) sweeper() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			s.mu.Lock()
			now := time.Now()
			for key, st := range s.locks {
				if s.expireLocked(st, now) {
					s.wakeLocked(st)
				}
				if st.writer == "" && len(st.readers) == 0 && len(st.waiters) == 0 {
					delete(s.locks, key)
				}
			}
			s.mu.Unlock()
		}
	}
}

// expireLocked drops expired leases; reports whether anything was freed.
func (s *Server) expireLocked(st *lockState, now time.Time) bool {
	freed := false
	if st.writer != "" && now.After(st.writerExp) {
		st.writer = ""
		freed = true
	}
	for owner, exp := range st.readers {
		if now.After(exp) {
			delete(st.readers, owner)
			freed = true
		}
	}
	return freed
}

func (s *Server) wakeLocked(st *lockState) {
	for _, ch := range st.waiters {
		close(ch)
	}
	st.waiters = nil
}

func (s *Server) handleLock(args LockArgs) (LockReply, error) {
	if args.Key == "" || args.Owner == "" {
		return LockReply{}, errors.New("dlm: key and owner required")
	}
	if args.Mode != Read && args.Mode != Write {
		return LockReply{}, fmt.Errorf("dlm: bad mode %q", args.Mode)
	}
	ttl := time.Duration(args.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = s.cfg.DefaultTTL
	}
	var deadline time.Time
	if args.WaitMs > 0 {
		deadline = time.Now().Add(time.Duration(args.WaitMs) * time.Millisecond)
	}
	for {
		s.mu.Lock()
		st := s.locks[args.Key]
		if st == nil {
			st = &lockState{readers: map[string]time.Time{}}
			s.locks[args.Key] = st
		}
		now := time.Now()
		s.expireLocked(st, now)
		if granted := s.tryGrantLocked(st, args, now, ttl); granted != 0 {
			s.mu.Unlock()
			return LockReply{Token: granted}, nil
		}
		if deadline.IsZero() || now.After(deadline) {
			s.mu.Unlock()
			return LockReply{}, errors.New(ErrLockHeld)
		}
		ch := make(chan struct{})
		st.waiters = append(st.waiters, ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
		case <-s.stopCh:
			return LockReply{}, errors.New("dlm: shutting down")
		}
	}
}

// tryGrantLocked grants the lock if compatible, returning the fencing
// token (0 = not granted).
func (s *Server) tryGrantLocked(st *lockState, args LockArgs, now time.Time, ttl time.Duration) uint64 {
	switch args.Mode {
	case Read:
		// Shared: compatible with other readers and with a re-entrant
		// writer of the same owner.
		if st.writer != "" && st.writer != args.Owner {
			return 0
		}
		st.readers[args.Owner] = now.Add(ttl)
	case Write:
		otherReaders := len(st.readers)
		if _, selfReads := st.readers[args.Owner]; selfReads {
			otherReaders--
		}
		if (st.writer != "" && st.writer != args.Owner) || otherReaders > 0 {
			return 0
		}
		st.writer = args.Owner
		st.writerExp = now.Add(ttl)
	}
	s.nextToken++
	st.token = s.nextToken
	return s.nextToken
}

func (s *Server) handleUnlock(args UnlockArgs) (struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.locks[args.Key]
	if st == nil {
		return struct{}{}, nil // already expired and reclaimed
	}
	switch args.Mode {
	case Write:
		if st.writer == args.Owner {
			st.writer = ""
		}
	case Read:
		delete(st.readers, args.Owner)
	default:
		return struct{}{}, fmt.Errorf("dlm: bad mode %q", args.Mode)
	}
	s.wakeLocked(st)
	if st.writer == "" && len(st.readers) == 0 {
		delete(s.locks, args.Key)
	}
	return struct{}{}, nil
}

// Client is a typed connection to the lock server.
type Client struct {
	c     *rpc.Client
	owner string
}

// DialClient connects with the given owner identity.
func DialClient(network transport.Network, addr, owner string) (*Client, error) {
	c, err := rpc.DialClient(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, owner: owner}, nil
}

// Lock acquires key in the given mode, waiting up to wait; it returns the
// fencing token. The RPC deadline stretches past wait, since the server
// legitimately holds the call open that long.
func (c *Client) Lock(key string, mode Mode, ttl, wait time.Duration) (uint64, error) {
	return c.LockTraced(0, key, mode, ttl, wait)
}

// LockTraced is Lock carrying a trace ID, so the DLM hop shows up as a span
// of the sampled request that needed the lease.
func (c *Client) LockTraced(tid uint64, key string, mode Mode, ttl, wait time.Duration) (uint64, error) {
	var reply LockReply
	err := c.c.CallTimeoutTraced(tid, "Lock", LockArgs{
		Key:    key,
		Owner:  c.owner,
		Mode:   mode,
		TTLMs:  int(ttl / time.Millisecond),
		WaitMs: int(wait / time.Millisecond),
	}, &reply, wait+rpc.DefaultCallTimeout)
	if err != nil {
		return 0, err
	}
	return reply.Token, nil
}

// Unlock releases key in the given mode.
func (c *Client) Unlock(key string, mode Mode) error {
	return c.c.Call("Unlock", UnlockArgs{Key: key, Owner: c.owner, Mode: mode}, nil)
}

// Close tears down the connection (held leases expire via TTL).
func (c *Client) Close() error { return c.c.Close() }
