package dlm

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/rsm"
	"bespokv/internal/store/wal"
	"bespokv/internal/transport"
)

var dlmAddrSeq atomic.Uint64

// dlmGroup is a replicated lease-table test harness: n DLM members over
// inproc, each with its own MemFS-backed replicated log.
type dlmGroup struct {
	t     *testing.T
	net   transport.Network
	ids   []string
	peers map[string]string
	fss   map[string]*wal.MemFS
	srvs  map[string]*Server
	ttl   time.Duration
	sweep time.Duration
}

func newDLMGroup(t *testing.T, n int, ttl, sweep time.Duration) *dlmGroup {
	t.Helper()
	net, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	seq := dlmAddrSeq.Add(1)
	g := &dlmGroup{
		t:     t,
		net:   net,
		peers: map[string]string{},
		fss:   map[string]*wal.MemFS{},
		srvs:  map[string]*Server{},
		ttl:   ttl,
		sweep: sweep,
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("dlm-%d", i)
		g.ids = append(g.ids, id)
		g.peers[id] = fmt.Sprintf("dlmrep-%d-%d", seq, i)
		g.fss[id] = wal.NewMemFS()
	}
	for _, id := range g.ids {
		g.start(id)
	}
	t.Cleanup(func() {
		for _, s := range g.srvs {
			s.Close()
		}
	})
	return g
}

func (g *dlmGroup) start(id string) {
	g.t.Helper()
	s, err := Serve(Config{
		Network:       g.net,
		Addr:          g.peers[id],
		DefaultTTL:    g.ttl,
		SweepInterval: g.sweep,
		Replication: &rsm.GroupConfig{
			ID:              id,
			Peers:           g.peers,
			Dir:             "dlm",
			FS:              g.fss[id],
			ElectionTimeout: 60 * time.Millisecond,
		},
		Logf: g.t.Logf,
	})
	if err != nil {
		g.t.Fatalf("start %s: %v", id, err)
	}
	g.srvs[id] = s
}

func (g *dlmGroup) stop(id string) {
	g.t.Helper()
	if s := g.srvs[id]; s != nil {
		s.Close()
		delete(g.srvs, id)
	}
}

func (g *dlmGroup) waitLeader() string {
	g.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for id, s := range g.srvs {
			if s.IsLeader() {
				return id
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.t.Fatal("no dlm leader elected")
	return ""
}

// client dials the whole member list (comma-joined) as one rotating client.
func (g *dlmGroup) client(owner string) *Client {
	g.t.Helper()
	var addrs []string
	for _, id := range g.ids {
		addrs = append(addrs, g.peers[id])
	}
	c, err := DialClient(g.net, strings.Join(addrs, ","), owner)
	if err != nil {
		g.t.Fatal(err)
	}
	g.t.Cleanup(func() { c.Close() })
	return c
}

// lockRetry keeps calling Lock through leadership churn until the call
// reaches a leader (granted or cleanly refused with ErrLockHeld).
func lockRetry(t *testing.T, c *Client, key string, mode Mode, ttl, wait time.Duration) (uint64, error) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tok, err := c.Lock(key, mode, ttl, wait)
		if err == nil || strings.Contains(err.Error(), "held") || time.Now().After(deadline) {
			return tok, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicatedNoDoubleGrant is the drive-by regression: a write lease
// granted by the old leader must survive killing that leader. The lease
// clock is replicated state that only the leader advances, so it pauses
// across the failover — the new leader still sees the lease live and must
// refuse a conflicting grant, no matter how its wall clock or process
// uptime differ from the old leader's.
func TestReplicatedNoDoubleGrant(t *testing.T) {
	g := newDLMGroup(t, 3, time.Second, 25*time.Millisecond)
	lead := g.waitLeader()
	a, b := g.client("a"), g.client("b")

	tok, err := a.Lock("k", Write, time.Second, 0)
	if err != nil || tok == 0 {
		t.Fatalf("initial grant: tok=%d err=%v", tok, err)
	}
	g.stop(lead)
	next := g.waitLeader()
	if next == lead {
		t.Fatalf("dead member %s still leads", lead)
	}

	// Immediately after the failover the lease must still be held: the
	// replicated clock barely moved while the group had no leader.
	if _, err := lockRetry(t, b, "k", Write, time.Second, 0); err == nil {
		t.Fatal("conflicting lock granted right after leader failover: lease double-granted")
	} else if !strings.Contains(err.Error(), "held") {
		t.Fatalf("post-failover lock: %v", err)
	}

	// Once the new leader's sweeps advance the clock past the TTL, the
	// lease expires and b wins — with a larger fencing token, because the
	// token counter is replicated too.
	tok2, err := lockRetry(t, b, "k", Write, time.Second, 5*time.Second)
	if err != nil {
		t.Fatalf("lease never expired under new leader: %v", err)
	}
	if tok2 <= tok {
		t.Fatalf("fencing tokens regressed across failover: %d then %d", tok, tok2)
	}
}

// TestReplicatedFollowerRedirect pins the redirect contract: followers
// refuse to grant, and the multi-address client rotates onto the leader
// without the caller noticing.
func TestReplicatedFollowerRedirect(t *testing.T) {
	g := newDLMGroup(t, 3, time.Second, 25*time.Millisecond)
	lead := g.waitLeader()
	for _, id := range g.ids {
		if id == lead {
			continue
		}
		if err := g.srvs[id].leaderCheck(); err == nil {
			t.Fatalf("follower %s would grant leases", id)
		} else if !rsm.IsNotLeader(err) {
			t.Fatalf("follower %s returns %v, want NotLeader", id, err)
		}
		// A client dialed at just this follower still acquires: the
		// NotLeader hint re-targets it.
		c, err := DialClient(g.net, g.peers[id], "solo-"+id)
		if err != nil {
			t.Fatal(err)
		}
		if tok, err := c.Lock("redir-"+id, Write, time.Second, 0); err != nil || tok == 0 {
			t.Fatalf("lock via follower %s: tok=%d err=%v", id, tok, err)
		}
		c.Close()
	}
}

// TestReplicatedRestartRecovers restarts every member from its durable
// log: a lease granted before the restart is still held after it (the
// clock paused for the whole outage, stretching the lease).
func TestReplicatedRestartRecovers(t *testing.T) {
	g := newDLMGroup(t, 3, time.Second, 25*time.Millisecond)
	g.waitLeader()
	a := g.client("a")
	if tok, err := a.Lock("k", Write, 10*time.Second, 0); err != nil || tok == 0 {
		t.Fatalf("grant: tok=%d err=%v", tok, err)
	}
	for _, id := range g.ids {
		g.stop(id)
	}
	for _, id := range g.ids {
		g.start(id)
	}
	g.waitLeader()
	b := g.client("b")
	if _, err := lockRetry(t, b, "k", Write, time.Second, 0); err == nil {
		t.Fatal("lease lost over full restart")
	} else if !strings.Contains(err.Error(), "held") {
		t.Fatalf("post-restart lock: %v", err)
	}
	// The original owner can still release it.
	deadline := time.Now().Add(5 * time.Second)
	var err error
	for time.Now().Before(deadline) {
		if err = a.Unlock("k", Write); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("unlock after restart: %v", err)
	}
	if tok, err := lockRetry(t, b, "k", Write, time.Second, 2*time.Second); err != nil || tok == 0 {
		t.Fatalf("lock after release: tok=%d err=%v", tok, err)
	}
}

// TestLockTableClock pins the monotonic-clock semantics the replication
// design rests on: the clock never regresses, single advances are what
// expire leases, and expiry compares clock readings only.
func TestLockTableClock(t *testing.T) {
	tbl := newLockTable()
	if tok := tbl.tryGrant("k", "a", Write, 100); tok == 0 {
		t.Fatal("grant refused on empty table")
	}
	tbl.advance(-50) // regression attempt: ignored
	if tbl.Clock != 0 {
		t.Fatalf("clock regressed to %d", tbl.Clock)
	}
	tbl.advance(100) // exactly at expiry: lease still valid (now == exp)
	if tok := tbl.tryGrant("k", "b", Write, 100); tok != 0 {
		t.Fatal("conflicting grant at exact expiry instant")
	}
	tbl.advance(1) // past expiry
	if tok := tbl.tryGrant("k", "b", Write, 100); tok == 0 {
		t.Fatal("grant refused after lease expiry")
	}
	if tbl.NextToken != 2 {
		t.Fatalf("fencing tokens not monotonic: %d", tbl.NextToken)
	}
}

// TestTakeDeltaCap pins the failover-safety cap: one stamped delta can
// never advance the lease clock by more than 2×SweepInterval, so a member
// whose monotonic baseline is stale (it just took over leadership, or the
// process was suspended) cannot mass-expire leases in one step.
func TestTakeDeltaCap(t *testing.T) {
	s := &Server{cfg: Config{SweepInterval: 10 * time.Millisecond}, base: time.Now()}
	s.lastMono = -int64(time.Hour) // simulate an hour-stale baseline
	if d := s.takeDelta(); d > 2*int64(10*time.Millisecond) {
		t.Fatalf("delta %d exceeds cap after stale baseline", d)
	}
	// The baseline is consumed: the next delta is small again.
	if d := s.takeDelta(); d > 2*int64(10*time.Millisecond) {
		t.Fatalf("second delta %d exceeds cap", d)
	}
}
