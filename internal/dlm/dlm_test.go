package dlm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bespokv/internal/transport"
)

func newDLM(t *testing.T, cfg Config) (*Server, func(owner string) *Client) {
	t.Helper()
	net, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Network = net
	s, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, func(owner string) *Client {
		c, err := DialClient(net, s.Addr(), owner)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
}

func TestExclusiveLock(t *testing.T) {
	_, dial := newDLM(t, Config{})
	a, b := dial("a"), dial("b")
	tok, err := a.Lock("k", Write, time.Second, 0)
	if err != nil || tok == 0 {
		t.Fatalf("tok=%d err=%v", tok, err)
	}
	if _, err := b.Lock("k", Write, time.Second, 0); err == nil || !strings.Contains(err.Error(), "held") {
		t.Fatalf("contended lock: %v", err)
	}
	if err := a.Unlock("k", Write); err != nil {
		t.Fatal(err)
	}
	tok2, err := b.Lock("k", Write, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tok2 <= tok {
		t.Fatalf("fencing token not monotonic: %d then %d", tok, tok2)
	}
}

func TestSharedReaders(t *testing.T) {
	_, dial := newDLM(t, Config{})
	a, b, w := dial("a"), dial("b"), dial("w")
	if _, err := a.Lock("k", Read, time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Lock("k", Read, time.Second, 0); err != nil {
		t.Fatalf("second reader blocked: %v", err)
	}
	if _, err := w.Lock("k", Write, time.Second, 0); err == nil {
		t.Fatal("writer must wait for readers")
	}
	a.Unlock("k", Read)
	b.Unlock("k", Read)
	if _, err := w.Lock("k", Write, time.Second, 0); err != nil {
		t.Fatalf("writer after readers released: %v", err)
	}
	// Readers blocked by writer.
	if _, err := a.Lock("k", Read, time.Second, 0); err == nil {
		t.Fatal("reader must wait for writer")
	}
}

func TestWaitQueue(t *testing.T) {
	_, dial := newDLM(t, Config{})
	a, b := dial("a"), dial("b")
	if _, err := a.Lock("k", Write, 10*time.Second, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Lock("k", Write, time.Second, 2*time.Second)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	a.Unlock("k", Write)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter not granted: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("waiter hung")
	}
}

func TestLeaseExpiry(t *testing.T) {
	_, dial := newDLM(t, Config{DefaultTTL: 100 * time.Millisecond, SweepInterval: 20 * time.Millisecond})
	a, b := dial("a"), dial("b")
	if _, err := a.Lock("k", Write, 80*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	// b waits; a never unlocks (simulating a crashed controlet); the
	// lease must expire and b proceed.
	start := time.Now()
	if _, err := b.Lock("k", Write, time.Second, 2*time.Second); err != nil {
		t.Fatalf("lease never expired: %v", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("lock granted before lease expiry")
	}
}

func TestReentrantOwner(t *testing.T) {
	_, dial := newDLM(t, Config{})
	a := dial("a")
	if _, err := a.Lock("k", Write, time.Second, 0); err != nil {
		t.Fatal(err)
	}
	// Same owner may re-acquire (lease refresh).
	if _, err := a.Lock("k", Write, time.Second, 0); err != nil {
		t.Fatalf("re-entrant write denied: %v", err)
	}
	// Owner holding write may also read.
	if _, err := a.Lock("k", Read, time.Second, 0); err != nil {
		t.Fatalf("read under own write denied: %v", err)
	}
}

func TestUnlockIdempotent(t *testing.T) {
	_, dial := newDLM(t, Config{})
	a := dial("a")
	if err := a.Unlock("never-locked", Write); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	_, dial := newDLM(t, Config{})
	a := dial("a")
	if _, err := a.Lock("", Write, time.Second, 0); err == nil {
		t.Fatal("empty key must be rejected")
	}
	if _, err := a.Lock("k", Mode("x"), time.Second, 0); err == nil {
		t.Fatal("bad mode must be rejected")
	}
}

func TestManyKeysConcurrently(t *testing.T) {
	s, _ := newDLM(t, Config{})
	net, _ := transport.Lookup("inproc")
	const workers = 8
	counters := make([]int, 16)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := DialClient(net, s.Addr(), string(rune('A'+w)))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				key := string(rune('a' + (w+i)%16))
				if _, err := c.Lock(key, Write, time.Second, 5*time.Second); err != nil {
					errCh <- err
					return
				}
				counters[(w+i)%16]++ // protected by the distributed lock
				if err := c.Unlock(key, Write); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != workers*50 {
		t.Fatalf("lost updates under lock: %d", total)
	}
}
