package transport

import (
	"errors"
	"net"
)

// TCP is the kernel socket network. It disables Nagle's algorithm on every
// connection, as latency-sensitive KV stores do.
type TCP struct{}

// Name reports "tcp".
func (TCP) Name() string { return "tcp" }

// Listen binds a TCP listener on addr ("host:port"; port 0 picks a free one).
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to a TCP address.
func (TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return tcpConn{c}, nil
}

type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return tcpConn{c}, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	net.Conn
}

func (c tcpConn) LocalAddr() string  { return c.Conn.LocalAddr().String() }
func (c tcpConn) RemoteAddr() string { return c.Conn.RemoteAddr().String() }

func init() {
	Register(TCP{})
}
