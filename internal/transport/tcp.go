package transport

import (
	"errors"
	"net"
	"time"
)

// TCP is the kernel socket network. It disables Nagle's algorithm on every
// connection, as latency-sensitive KV stores do.
type TCP struct{}

// Name reports "tcp".
func (TCP) Name() string { return "tcp" }

const (
	// DialTimeout bounds connection establishment: an unreachable peer
	// must fail fast so the caller can drop it and repair the topology,
	// not sit in the kernel's SYN retry schedule for minutes.
	DialTimeout = 5 * time.Second
	// KeepAlivePeriod turns on TCP keep-alive probes so half-open
	// connections to crashed peers are detected even when idle.
	KeepAlivePeriod = 30 * time.Second
)

// Listen binds a TCP listener on addr ("host:port"; port 0 picks a free one).
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to a TCP address, bounded by DialTimeout and with
// keep-alive probes enabled.
func (TCP) Dial(addr string) (Conn, error) {
	d := net.Dialer{Timeout: DialTimeout, KeepAlive: KeepAlivePeriod}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return tcpConn{c}, nil
}

type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(KeepAlivePeriod)
	}
	return tcpConn{c}, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	net.Conn
}

func (c tcpConn) LocalAddr() string  { return c.Conn.LocalAddr().String() }
func (c tcpConn) RemoteAddr() string { return c.Conn.RemoteAddr().String() }

func init() {
	Register(TCP{})
}
