// Package transport abstracts the byte-stream fabric underneath the wire
// protocol so the same servers and clients run over kernel TCP sockets or
// over in-process shared-memory rings. The in-process network is this
// reproduction's stand-in for the paper's DPDK kernel-bypass path (§E):
// both remove the syscall and copy costs of the socket path while keeping
// the stream semantics identical.
package transport

import (
	"fmt"
	"io"
	"sync"
)

// Conn is a reliable, ordered, full-duplex byte stream.
type Conn interface {
	io.Reader
	io.Writer
	io.Closer
	// LocalAddr and RemoteAddr return transport-specific endpoint names.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks until a connection arrives or the listener closes.
	Accept() (Conn, error)
	// Close stops the listener; blocked Accepts return ErrClosed.
	Close() error
	// Addr returns the bound address, usable with Network.Dial.
	Addr() string
}

// Network creates listeners and dials connections.
type Network interface {
	// Name identifies the network ("tcp" or "inproc").
	Name() string
	// Listen binds addr. For tcp, "host:0" picks a free port (see Addr).
	Listen(addr string) (Listener, error)
	// Dial connects to a listener's address.
	Dial(addr string) (Conn, error)
}

// ErrClosed is returned by operations on closed listeners and connections.
var ErrClosed = fmt.Errorf("transport: use of closed connection")

var (
	regMu    sync.RWMutex
	networks = map[string]Network{}
)

// Register adds a network implementation; duplicate names panic at init.
func Register(n Network) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := networks[n.Name()]; dup {
		panic("transport: duplicate network " + n.Name())
	}
	networks[n.Name()] = n
}

// Lookup returns the network registered under name.
func Lookup(name string) (Network, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	n, ok := networks[name]
	if !ok {
		return nil, fmt.Errorf("transport: unknown network %q", name)
	}
	return n, nil
}
