package transport

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func networksUnderTest(t *testing.T) []Network {
	t.Helper()
	var nets []Network
	for _, name := range []string{"tcp", "inproc"} {
		n, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, n)
	}
	return nets
}

func listenAddr(n Network) string {
	if n.Name() == "tcp" {
		return "127.0.0.1:0"
	}
	return ""
}

func TestEchoRoundtrip(t *testing.T) {
	for _, n := range networksUnderTest(t) {
		n := n
		t.Run(n.Name(), func(t *testing.T) {
			l, err := n.Listen(listenAddr(n))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				io.Copy(c, c)
			}()
			c, err := n.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			msg := []byte("hello bespokv")
			if _, err := c.Write(msg); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(c, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("echo mismatch: %q", got)
			}
		})
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	for _, n := range networksUnderTest(t) {
		n := n
		t.Run(n.Name(), func(t *testing.T) {
			l, err := n.Listen(listenAddr(n))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			const total = 4 << 20 // 4 MiB, several ring wraps
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				buf := make([]byte, total)
				for i := range buf {
					buf[i] = byte(i * 31)
				}
				c.Write(buf)
			}()
			c, err := n.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			got := make([]byte, total)
			if _, err := io.ReadFull(c, got); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != byte(i*31) {
					t.Fatalf("corruption at byte %d", i)
				}
			}
		})
	}
}

func TestDialUnboundAddressFails(t *testing.T) {
	for _, n := range networksUnderTest(t) {
		addr := "127.0.0.1:1" // reserved port, nothing listens
		if n.Name() == "inproc" {
			addr = "no-such-endpoint"
		}
		if _, err := n.Dial(addr); err == nil {
			t.Fatalf("%s: dialing unbound address must fail", n.Name())
		}
	}
}

func TestAcceptAfterCloseReturnsErrClosed(t *testing.T) {
	for _, n := range networksUnderTest(t) {
		l, err := n.Listen(listenAddr(n))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := l.Accept()
			done <- err
		}()
		l.Close()
		if err := <-done; err != ErrClosed {
			t.Fatalf("%s: got %v, want ErrClosed", n.Name(), err)
		}
	}
}

func TestReadAfterPeerCloseSeesEOF(t *testing.T) {
	for _, n := range networksUnderTest(t) {
		n := n
		t.Run(n.Name(), func(t *testing.T) {
			l, err := n.Listen(listenAddr(n))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				c.Write([]byte("bye"))
				c.Close()
			}()
			c, err := n.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			got, err := io.ReadAll(c)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "bye" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestConcurrentConnections(t *testing.T) {
	for _, n := range networksUnderTest(t) {
		n := n
		t.Run(n.Name(), func(t *testing.T) {
			l, err := n.Listen(listenAddr(n))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go func() {
				for {
					c, err := l.Accept()
					if err != nil {
						return
					}
					go func(c Conn) {
						defer c.Close()
						io.Copy(c, c)
					}(c)
				}
			}()
			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c, err := n.Dial(l.Addr())
					if err != nil {
						errs <- err
						return
					}
					defer c.Close()
					msg := []byte(fmt.Sprintf("worker-%d-payload", w))
					for i := 0; i < 50; i++ {
						if _, err := c.Write(msg); err != nil {
							errs <- err
							return
						}
						got := make([]byte, len(msg))
						if _, err := io.ReadFull(c, got); err != nil {
							errs <- err
							return
						}
						if !bytes.Equal(got, msg) {
							errs <- fmt.Errorf("worker %d echo mismatch", w)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestInprocDuplicateBind(t *testing.T) {
	n, _ := Lookup("inproc")
	l, err := n.Listen("dup-bind")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Listen("dup-bind"); err == nil {
		t.Fatal("duplicate bind must fail")
	}
}

func TestInprocAddrReusableAfterClose(t *testing.T) {
	n, _ := Lookup("inproc")
	l, err := n.Listen("reuse-me")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := n.Listen("reuse-me")
	if err != nil {
		t.Fatalf("address not released on close: %v", err)
	}
	l2.Close()
}

func TestLookupUnknownNetwork(t *testing.T) {
	if _, err := Lookup("rdma"); err == nil {
		t.Fatal("unknown network must error")
	}
}

// TestRingPropertyBytesPreserved drives the raw ring with random chunk
// boundaries and checks the stream is preserved byte for byte.
func TestRingPropertyBytesPreserved(t *testing.T) {
	f := func(chunks [][]byte) bool {
		r := newRing()
		var want, got bytes.Buffer
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 1024)
			for {
				n, err := r.read(buf)
				got.Write(buf[:n])
				if err != nil {
					return
				}
			}
		}()
		for _, c := range chunks {
			want.Write(c)
			if _, err := r.write(c); err != nil {
				return false
			}
		}
		r.close()
		<-done
		return bytes.Equal(want.Bytes(), got.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestInprocCloseTearsDownBacklog: conns dialed but not yet accepted when
// the listener closes must be torn down, not abandoned — an abandoned conn
// leaves its dialer blocked in its first read forever (servers that see
// their stop flag right after Accept close that one conn and stop
// accepting, so nobody else would ever touch the queue).
func TestInprocCloseTearsDownBacklog(t *testing.T) {
	n, err := Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	l, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	var conns []Conn
	for i := 0; i < 3; i++ {
		c, err := n.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		if _, err := c.Write([]byte("req")); err == nil {
			// A write that raced the teardown into the ring is fine; the
			// read below is the call a real client blocks in.
			t.Logf("conn %d write after close succeeded (buffered)", i)
		}
		errc := make(chan error, 1)
		go func() {
			_, err := c.Read(make([]byte, 16))
			errc <- err
		}()
		select {
		case err := <-errc:
			if err == nil {
				t.Fatalf("conn %d: read after listener close returned data, want error", i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("conn %d: read blocked after listener close — backlog conn abandoned", i)
		}
	}
}

// TestInprocDialCloseRace hammers Dial against Close: a dial must either
// succeed or report connection refused — never panic on the closed backlog.
func TestInprocDialCloseRace(t *testing.T) {
	n, err := Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 200; round++ {
		l, err := n.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if c, err := n.Dial(l.Addr()); err == nil {
					c.Close()
				}
			}()
		}
		l.Close()
		wg.Wait()
	}
}
