package transport

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Inproc is the kernel-bypass network: connections are pairs of in-process
// ring buffers, so a round trip costs two buffer copies and two futex-free
// condition-variable handoffs instead of four syscalls and the loopback
// stack. It is the DPDK stand-in for the Fig. 17 experiment and also makes
// large in-process cluster tests cheap.
type Inproc struct{}

// Name reports "inproc".
func (Inproc) Name() string { return "inproc" }

// ringSize is each direction's buffer capacity. 256 KiB comfortably holds
// many pipelined requests, emulating a DPDK ring of 2k descriptors.
const ringSize = 256 << 10

var (
	inprocMu        sync.Mutex
	inprocListeners = map[string]*inprocListener{}
	inprocSeq       atomic.Uint64
)

// Listen binds a named in-process endpoint. Empty addr or an addr with a
// ":0" suffix allocates a unique name, reported by Listener.Addr.
func (Inproc) Listen(addr string) (Listener, error) {
	inprocMu.Lock()
	defer inprocMu.Unlock()
	if addr == "" || addr == ":0" {
		addr = fmt.Sprintf("inproc-%d", inprocSeq.Add(1))
	}
	if _, dup := inprocListeners[addr]; dup {
		return nil, fmt.Errorf("transport: inproc address %q already bound", addr)
	}
	l := &inprocListener{addr: addr, backlog: make(chan Conn, 128)}
	inprocListeners[addr] = l
	return l, nil
}

// Dial connects to a bound in-process endpoint.
func (Inproc) Dial(addr string) (Conn, error) {
	inprocMu.Lock()
	l, ok := inprocListeners[addr]
	inprocMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: inproc address %q not bound (connection refused)", addr)
	}
	a2b := newRing()
	b2a := newRing()
	client := &inprocConn{rd: b2a, wr: a2b, local: "client", remote: addr}
	server := &inprocConn{rd: a2b, wr: b2a, local: addr, remote: "client"}
	// The enqueue happens under l.mu, the same lock Close holds while it
	// closes the backlog — otherwise a dial racing Close could send on a
	// closed channel and panic.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("transport: inproc address %q not bound (connection refused)", addr)
	}
	select {
	case l.backlog <- server:
		l.mu.Unlock()
		return client, nil
	default:
		l.mu.Unlock()
		return nil, fmt.Errorf("transport: inproc backlog full for %q", addr)
	}
}

type inprocListener struct {
	addr    string
	backlog chan Conn
	mu      sync.Mutex
	closed  bool
}

func (l *inprocListener) Accept() (Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

func (l *inprocListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.backlog)
	l.mu.Unlock()
	inprocMu.Lock()
	delete(inprocListeners, l.addr)
	inprocMu.Unlock()
	// Tear down conns still queued for accept, as TCP resets its SYN
	// backlog when a listener closes. Abandoning them would leave each
	// dialer blocked in its first read forever: servers that observe
	// their stop flag right after Accept close that one conn and exit
	// their accept loop, so nothing else would ever serve or close the
	// rest of the queue. Accept may be draining concurrently; a conn
	// goes to exactly one receiver and closing is idempotent.
	for c := range l.backlog {
		_ = c.Close()
	}
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// ring is a single-direction byte ring buffer with blocking reads and
// writes, the software analogue of a NIC descriptor ring.
type ring struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      [ringSize]byte
	r, w     int // read and write cursors
	n        int // bytes buffered
	closed   bool
}

func newRing() *ring {
	r := &ring{}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

func (q *ring) read(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		if q.closed {
			return 0, io.EOF
		}
		q.notEmpty.Wait()
	}
	total := 0
	for total < len(p) && q.n > 0 {
		chunk := ringSize - q.r
		if chunk > q.n {
			chunk = q.n
		}
		if chunk > len(p)-total {
			chunk = len(p) - total
		}
		copy(p[total:], q.buf[q.r:q.r+chunk])
		q.r = (q.r + chunk) % ringSize
		q.n -= chunk
		total += chunk
	}
	q.notFull.Broadcast()
	return total, nil
}

func (q *ring) write(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	total := 0
	for total < len(p) {
		for q.n == ringSize {
			if q.closed {
				return total, ErrClosed
			}
			q.notFull.Wait()
		}
		if q.closed {
			return total, ErrClosed
		}
		chunk := ringSize - q.w
		if chunk > ringSize-q.n {
			chunk = ringSize - q.n
		}
		if chunk > len(p)-total {
			chunk = len(p) - total
		}
		copy(q.buf[q.w:q.w+chunk], p[total:total+chunk])
		q.w = (q.w + chunk) % ringSize
		q.n += chunk
		total += chunk
		q.notEmpty.Broadcast()
	}
	return total, nil
}

func (q *ring) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

type inprocConn struct {
	rd, wr        *ring
	local, remote string
	closeOnce     sync.Once
}

func (c *inprocConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *inprocConn) Write(p []byte) (int, error) { return c.wr.write(p) }

func (c *inprocConn) Close() error {
	c.closeOnce.Do(func() {
		c.rd.close()
		c.wr.close()
	})
	return nil
}

func (c *inprocConn) LocalAddr() string  { return c.local }
func (c *inprocConn) RemoteAddr() string { return c.remote }

func init() {
	Register(Inproc{})
}
