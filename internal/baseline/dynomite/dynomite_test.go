package dynomite

import (
	"fmt"
	"testing"
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/store"
	"bespokv/internal/store/ht"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// ring deploys n dynomite nodes, each with its own backend datalet, fully
// peered.
func ring(t *testing.T, n int) (transport.Network, wire.Codec, []*Server, []*datalet.Server) {
	t.Helper()
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	var proxies []*Server
	var backends []*datalet.Server
	for i := 0; i < n; i++ {
		d, err := datalet.Serve(datalet.Config{
			Name:      fmt.Sprintf("dyn-backend-%d", i),
			Network:   net,
			Codec:     codec,
			NewEngine: func(string) (store.Engine, error) { return ht.New(), nil },
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		backends = append(backends, d)
		p, err := Serve(Config{Network: net, Codec: codec, BackendAddr: d.Addr()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
	}
	for i, p := range proxies {
		var peers []string
		for j, q := range proxies {
			if j != i {
				peers = append(peers, q.Addr())
			}
		}
		p.SetPeers(peers)
	}
	return net, codec, proxies, backends
}

func TestWriteAnywhereReplicatesEverywhere(t *testing.T) {
	net, codec, proxies, backends := ring(t, 3)
	cli, err := datalet.Dial(net, proxies[1].Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var resp wire.Response
	if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("v")}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("put: %+v", resp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, b := range backends {
			if _, _, ok, _ := b.Engine("").Get([]byte("k")); !ok {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write never replicated to all backends")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Reads serve from the local backend of whichever proxy is asked.
	cli2, err := datalet.Dial(net, proxies[2].Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if err := cli2.Do(&wire.Request{Op: wire.OpGet, Key: []byte("k")}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || string(resp.Value) != "v" {
		t.Fatalf("get from peer: %+v", resp)
	}
}

func TestDeleteReplicates(t *testing.T) {
	net, codec, proxies, backends := ring(t, 3)
	cli, err := datalet.Dial(net, proxies[0].Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var resp wire.Response
	cli.Do(&wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("v")}, &resp)
	time.Sleep(100 * time.Millisecond)
	cli.Do(&wire.Request{Op: wire.OpDel, Key: []byte("k")}, &resp)
	deadline := time.Now().Add(5 * time.Second)
	for {
		gone := true
		for _, b := range backends {
			if _, _, ok, _ := b.Engine("").Get([]byte("k")); ok {
				gone = false
			}
		}
		if gone {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("delete never replicated")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConflictWindowExists documents the divergence bespokv's shared log
// fixes: when two proxies accept conflicting writes to the same key
// concurrently, Dynomite-style peer propagation (no global order, local
// versioning) can leave replicas permanently disagreeing. The test demands
// divergence at least once across many attempts — if this ever becomes
// impossible, the baseline has silently gained ordering and no longer
// models Dynomite.
func TestConflictWindowExists(t *testing.T) {
	net, codec, proxies, backends := ring(t, 2)
	cli0, _ := datalet.Dial(net, proxies[0].Addr(), codec)
	defer cli0.Close()
	cli1, _ := datalet.Dial(net, proxies[1].Addr(), codec)
	defer cli1.Close()

	diverged := false
	for attempt := 0; attempt < 200 && !diverged; attempt++ {
		key := []byte(fmt.Sprintf("conflict-%03d", attempt))
		done := make(chan struct{}, 2)
		go func() {
			var r wire.Response
			cli0.Do(&wire.Request{Op: wire.OpPut, Key: key, Value: []byte("from-0")}, &r)
			done <- struct{}{}
		}()
		go func() {
			var r wire.Response
			cli1.Do(&wire.Request{Op: wire.OpPut, Key: key, Value: []byte("from-1")}, &r)
			done <- struct{}{}
		}()
		<-done
		<-done
		time.Sleep(30 * time.Millisecond) // let propagation settle
		v0, _, ok0, _ := backends[0].Engine("").Get(key)
		v1, _, ok1, _ := backends[1].Engine("").Get(key)
		if ok0 && ok1 && string(v0) != string(v1) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("dynomite baseline never diverged under conflicting writes; it must model the missing global order")
	}
}
