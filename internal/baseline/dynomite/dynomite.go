// Package dynomite reimplements the Netflix Dynomite baseline (Figs. 11
// and 16): an AA+EC proxy layer where every proxy node owns one backend
// datalet, applies client writes locally, and propagates them to its peer
// proxies asynchronously — peer to peer, with NO global ordering service.
// That last property is the paper's point of comparison: when conflicting
// writes to the same key land on different proxies within the replication
// latency window, Dynomite's replicas can disagree permanently (§C-C),
// which bespokv's shared-log AA+EC fixes. The reproduction preserves the
// flaw faithfully: propagated writes carry no version, so each replica
// versions them locally in arrival order.
package dynomite

import (
	"bufio"
	"errors"
	"io"
	"sync"
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// Config configures one dynomite proxy node.
type Config struct {
	// Network, Addr and Codec shape the listening endpoint.
	Network transport.Network
	Addr    string
	Codec   wire.Codec
	// BackendAddr is this node's local datalet.
	BackendAddr string
	// PoolSize is connections per target (default 2).
	PoolSize int
}

// Server is one running proxy node.
type Server struct {
	cfg      Config
	listener transport.Listener
	local    *datalet.Pool

	peersMu sync.Mutex
	peers   map[string]*datalet.Pool

	queue   chan wire.Request
	stopCh  chan struct{}
	mu      sync.Mutex
	conns   map[transport.Conn]struct{}
	stopped bool
	wg      sync.WaitGroup

	peerAddrsMu sync.RWMutex
	peerAddrs   []string
}

// Serve starts one proxy node; peers are wired up afterwards with SetPeers
// (matching Dynomite's seed-file bootstrap).
func Serve(cfg Config) (*Server, error) {
	if cfg.Network == nil || cfg.Codec == nil || cfg.BackendAddr == "" {
		return nil, errors.New("dynomite: Network, Codec and BackendAddr are required")
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	local, err := datalet.DialPool(cfg.Network, cfg.BackendAddr, cfg.Codec, cfg.PoolSize)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		local:  local,
		peers:  map[string]*datalet.Pool{},
		queue:  make(chan wire.Request, 4096),
		stopCh: make(chan struct{}),
		conns:  map[transport.Conn]struct{}{},
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		local.Close()
		return nil, err
	}
	s.listener = l
	s.wg.Add(2)
	go s.acceptLoop()
	go s.replicationPump()
	return s, nil
}

// Addr returns this node's address.
func (s *Server) Addr() string { return s.listener.Addr() }

// SetPeers installs the peer proxy addresses (excluding self).
func (s *Server) SetPeers(addrs []string) {
	s.peerAddrsMu.Lock()
	s.peerAddrs = append([]string(nil), addrs...)
	s.peerAddrsMu.Unlock()
}

// Close stops the node.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	close(s.stopCh)
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	_ = s.listener.Close()
	s.wg.Wait()
	s.peersMu.Lock()
	for _, p := range s.peers {
		_ = p.Close()
	}
	s.peersMu.Unlock()
	return s.local.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn transport.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var req wire.Request
	var resp wire.Response
	for {
		req.Reset()
		if err := s.cfg.Codec.ReadRequest(br, &req); err != nil {
			if err != io.EOF {
				return
			}
			return
		}
		resp.Reset()
		resp.ID = req.ID
		s.handle(&req, &resp)
		resp.ID = req.ID
		if err := s.cfg.Codec.WriteResponse(bw, &resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *wire.Request, resp *wire.Response) {
	switch req.Op {
	case wire.OpPut, wire.OpDel:
		// Apply locally (local version assignment), ack, replicate async.
		fwd := *req
		fwd.Version = 0
		if err := s.local.Do(&fwd, resp); err != nil {
			resp.Reset()
			resp.ID = req.ID
			resp.Status = wire.StatusUnavailable
			resp.Err = "dynomite: backend: " + err.Error()
			return
		}
		rec := *req
		rec.Key = append([]byte(nil), req.Key...)
		rec.Value = append([]byte(nil), req.Value...)
		select {
		case s.queue <- rec:
		default:
			// Queue overflow drops the propagation, exactly the
			// at-most-once weakness anti-entropy papers point at.
		}
	case wire.OpReplPut, wire.OpReplDel:
		// Peer propagation: apply with LOCAL version assignment — this
		// is Dynomite's conflict window in action.
		fwd := *req
		if fwd.Op == wire.OpReplPut {
			fwd.Op = wire.OpPut
		} else {
			fwd.Op = wire.OpDel
		}
		fwd.Version = 0
		if err := s.local.Do(&fwd, resp); err != nil {
			resp.Reset()
			resp.ID = req.ID
			resp.Status = wire.StatusUnavailable
			resp.Err = err.Error()
		}
	default:
		// Reads and everything else serve from the local backend.
		fwd := *req
		if err := s.local.Do(&fwd, resp); err != nil {
			resp.Reset()
			resp.ID = req.ID
			resp.Status = wire.StatusUnavailable
			resp.Err = "dynomite: backend: " + err.Error()
		}
	}
}

// replicationPump forwards queued writes to every peer proxy.
func (s *Server) replicationPump() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case rec := <-s.queue:
			s.peerAddrsMu.RLock()
			peers := s.peerAddrs
			s.peerAddrsMu.RUnlock()
			for _, addr := range peers {
				s.sendToPeer(addr, rec)
			}
		}
	}
}

func (s *Server) sendToPeer(addr string, rec wire.Request) {
	fwd := rec
	if fwd.Op == wire.OpPut {
		fwd.Op = wire.OpReplPut
	} else if fwd.Op == wire.OpDel {
		fwd.Op = wire.OpReplDel
	}
	var resp wire.Response
	for attempt := 0; attempt < 3; attempt++ {
		pool, err := s.peerPool(addr)
		if err == nil {
			if err = pool.Do(&fwd, &resp); err == nil {
				return
			}
			s.dropPeer(addr)
		}
		select {
		case <-s.stopCh:
			return
		case <-time.After(time.Duration(attempt+1) * 10 * time.Millisecond):
		}
	}
}

func (s *Server) peerPool(addr string) (*datalet.Pool, error) {
	s.peersMu.Lock()
	defer s.peersMu.Unlock()
	if p, ok := s.peers[addr]; ok {
		return p, nil
	}
	p, err := datalet.DialPool(s.cfg.Network, addr, s.cfg.Codec, s.cfg.PoolSize)
	if err != nil {
		return nil, err
	}
	s.peers[addr] = p
	return p, nil
}

func (s *Server) dropPeer(addr string) {
	s.peersMu.Lock()
	if p, ok := s.peers[addr]; ok {
		delete(s.peers, addr)
		_ = p.Close()
	}
	s.peersMu.Unlock()
}
