package twemproxy

import (
	"fmt"
	"testing"

	"bespokv/internal/datalet"
	"bespokv/internal/store"
	"bespokv/internal/store/ht"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

func startBackends(t *testing.T, n int) (transport.Network, wire.Codec, []*datalet.Server, []string) {
	t.Helper()
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	var servers []*datalet.Server
	var addrs []string
	for i := 0; i < n; i++ {
		s, err := datalet.Serve(datalet.Config{
			Name:      fmt.Sprintf("backend-%d", i),
			Network:   net,
			Codec:     codec,
			NewEngine: func(string) (store.Engine, error) { return ht.New(), nil },
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	return net, codec, servers, addrs
}

func TestShardingProxy(t *testing.T) {
	net, codec, servers, addrs := startBackends(t, 4)
	p, err := Serve(Config{Network: net, Codec: codec, Backends: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cli, err := datalet.Dial(net, p.Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 200
	var resp wire.Response
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: k, Value: k}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("put: %+v", resp)
		}
	}
	// Reads come back through the same sharding.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := cli.Do(&wire.Request{Op: wire.OpGet, Key: k}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusOK || string(resp.Value) != string(k) {
			t.Fatalf("get(%s): %+v", k, resp)
		}
	}
	// Keys actually spread over the backends (sharding, no replication).
	total := 0
	populated := 0
	for _, s := range servers {
		l := s.Engine("").Len()
		total += l
		if l > 0 {
			populated++
		}
	}
	if total != n {
		t.Fatalf("backends hold %d keys total, want %d (no replication)", total, n)
	}
	if populated < 3 {
		t.Fatalf("only %d/4 backends populated", populated)
	}
}

func TestProxyStableRouting(t *testing.T) {
	net, codec, _, addrs := startBackends(t, 4)
	p, err := Serve(Config{Network: net, Codec: codec, Backends: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cli, err := datalet.Dial(net, p.Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var resp wire.Response
	// Overwrite the same key repeatedly; it must always route to the
	// same backend, so the final read sees the last value.
	for i := 0; i < 20; i++ {
		v := []byte(fmt.Sprintf("v%02d", i))
		if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: []byte("stable"), Value: v}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Do(&wire.Request{Op: wire.OpGet, Key: []byte("stable")}, &resp); err != nil {
		t.Fatal(err)
	}
	if string(resp.Value) != "v19" {
		t.Fatalf("got %q", resp.Value)
	}
}

func TestProxyValidation(t *testing.T) {
	net, codec, _, _ := startBackends(t, 1)
	if _, err := Serve(Config{Network: net, Codec: codec}); err == nil {
		t.Fatal("no backends must be rejected")
	}
}
