// Package twemproxy reimplements the Twitter twemproxy baseline used in
// Fig. 11: a stateless sharding-only proxy (Table I: sharding yes,
// replication no, single topology/consistency). Requests are consistent-
// hashed to one backend datalet and relayed verbatim; because the proxy
// adds no replication or consistency work, it sets the upper bound that
// bespokv's MS+EC should land slightly below — exactly the paper's
// observation.
package twemproxy

import (
	"bufio"
	"errors"
	"io"
	"sync"

	"bespokv/internal/datalet"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// Config configures a proxy.
type Config struct {
	// Network and Addr select the listening endpoint.
	Network transport.Network
	Addr    string
	// Codec is spoken on both sides (twemproxy speaks the backend's
	// protocol natively).
	Codec wire.Codec
	// Backends are the datalet addresses to shard across.
	Backends []string
	// PoolSize is connections per backend (default 2).
	PoolSize int
}

// Server is a running proxy.
type Server struct {
	cfg      Config
	ring     *topology.Ring
	listener transport.Listener
	pools    []*datalet.Pool

	mu      sync.Mutex
	conns   map[transport.Conn]struct{}
	stopped bool
	wg      sync.WaitGroup
}

// Serve starts a proxy.
func Serve(cfg Config) (*Server, error) {
	if cfg.Network == nil || cfg.Codec == nil || len(cfg.Backends) == 0 {
		return nil, errors.New("twemproxy: Network, Codec and Backends are required")
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	s := &Server{
		cfg:   cfg,
		ring:  topology.BuildRingFromIDs(cfg.Backends, 160),
		conns: map[transport.Conn]struct{}{},
	}
	for _, addr := range cfg.Backends {
		p, err := datalet.DialPool(cfg.Network, addr, cfg.Codec, cfg.PoolSize)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.pools = append(s.pools, p)
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the proxy's address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Close stops the proxy.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	if s.listener != nil {
		_ = s.listener.Close()
	}
	s.wg.Wait()
	for _, p := range s.pools {
		if p != nil {
			_ = p.Close()
		}
	}
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn transport.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var req wire.Request
	var resp wire.Response
	for {
		req.Reset()
		if err := s.cfg.Codec.ReadRequest(br, &req); err != nil {
			if err != io.EOF {
				return
			}
			return
		}
		resp.Reset()
		resp.ID = req.ID
		backend := s.ring.Lookup(req.Key)
		fwd := req
		fwd.Epoch = 0
		if err := s.pools[backend].Do(&fwd, &resp); err != nil {
			resp.Reset()
			resp.ID = req.ID
			resp.Status = wire.StatusUnavailable
			resp.Err = "twemproxy: backend: " + err.Error()
		}
		resp.ID = req.ID
		if err := s.cfg.Codec.WriteResponse(bw, &resp); err != nil {
			return
		}
	}
}
