package dynamo

import (
	"fmt"
	"testing"
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/store/lsm"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

func startCluster(t *testing.T, profile Profile, nodes int) (*Cluster, transport.Network, wire.Codec) {
	t.Helper()
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	c, err := Start(Options{Network: net, Codec: codec, Nodes: nodes, ReplicationFactor: 3, Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, net, codec
}

func TestPutGetThroughAnyNode(t *testing.T) {
	for _, profile := range []Profile{VoldemortProfile(), CassandraProfile()} {
		profile := profile
		t.Run(profile.Name, func(t *testing.T) {
			c, net, codec := startCluster(t, profile, 6)
			addrs := c.Addrs()
			// Write via node 0, read via every node.
			cli, err := datalet.Dial(net, addrs[0], codec)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			var resp wire.Response
			for i := 0; i < 100; i++ {
				k := []byte(fmt.Sprintf("key-%04d", i))
				if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: k, Value: k}, &resp); err != nil {
					t.Fatal(err)
				}
				if resp.Status != wire.StatusOK {
					t.Fatalf("put: %+v", resp)
				}
			}
			// CL=ONE: secondary copies land asynchronously, so reads
			// from arbitrary nodes are eventually consistent — poll.
			for ni, addr := range addrs {
				rcli, err := datalet.Dial(net, addr, codec)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 100; i += 17 {
					k := []byte(fmt.Sprintf("key-%04d", i))
					deadline := time.Now().Add(5 * time.Second)
					for {
						if err := rcli.Do(&wire.Request{Op: wire.OpGet, Key: k}, &resp); err != nil {
							t.Fatal(err)
						}
						if resp.Status == wire.StatusOK && string(resp.Value) == string(k) {
							break
						}
						if time.Now().After(deadline) {
							t.Fatalf("node %d get(%s): %+v", ni, k, resp)
						}
						time.Sleep(5 * time.Millisecond)
					}
				}
				rcli.Close()
			}
		})
	}
}

func TestReplicationFactorHonored(t *testing.T) {
	c, net, codec := startCluster(t, VoldemortProfile(), 6)
	cli, err := datalet.Dial(net, c.Addrs()[0], codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var resp wire.Response
	const n = 300
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: k, Value: k}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	// Total copies across nodes ≈ n × RF.
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := 0
		for i := 0; i < 6; i++ {
			total += c.Engine(i).Len()
		}
		if total == n*3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("total copies %d, want %d", total, n*3)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDeleteVisibleEverywhere(t *testing.T) {
	c, net, codec := startCluster(t, VoldemortProfile(), 4)
	addrs := c.Addrs()
	cli, err := datalet.Dial(net, addrs[0], codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var resp wire.Response
	cli.Do(&wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("v")}, &resp)
	cli.Do(&wire.Request{Op: wire.OpDel, Key: []byte("k")}, &resp)
	deadline := time.Now().Add(5 * time.Second)
	for {
		visible := false
		for _, addr := range addrs {
			rcli, err := datalet.Dial(net, addr, codec)
			if err != nil {
				continue
			}
			rcli.Do(&wire.Request{Op: wire.OpGet, Key: []byte("k")}, &resp)
			if resp.Status == wire.StatusOK {
				visible = true
			}
			rcli.Close()
		}
		if !visible {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("deleted key still visible somewhere")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCassandraProfilePaysCompaction(t *testing.T) {
	c, net, codec := startCluster(t, CassandraProfile(), 3)
	cli, err := datalet.Dial(net, c.Addrs()[0], codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var resp wire.Response
	val := make([]byte, 256)
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: k, Value: val}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	// The cassandra profile must actually be paying flush/compaction;
	// flushing is a background activity, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		flushes := int64(0)
		for i := 0; i < 3; i++ {
			if s, ok := c.Engine(i).(interface{ Stats() lsm.Stats }); ok {
				flushes += s.Stats().Flushes
			} else {
				t.Fatalf("node %d engine is %s, want lsm-backed", i, c.Engine(i).Name())
			}
		}
		if flushes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cassandra profile never flushed; compaction cost not modeled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And data survives the flush churn (poll: replicas converge
	// asynchronously under CL=ONE).
	for i := 0; i < 5000; i += 997 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		getDeadline := time.Now().Add(5 * time.Second)
		for {
			if err := cli.Do(&wire.Request{Op: wire.OpGet, Key: k}, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Status == wire.StatusOK {
				break
			}
			if time.Now().After(getDeadline) {
				t.Fatalf("get(%s) after compaction churn: %+v", k, resp)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
