// Package dynamo reimplements the natively-distributed baseline of
// Fig. 12: a Dynamo-descendant quorum store in the style of Cassandra and
// LinkedIn Voldemort. Unlike bespokv — where the client library routes
// straight to the owning controlet — every request lands on an arbitrary
// node that acts as coordinator and forwards to the key's replica set
// (Voldemort's "all-routing" server-side routing, consistency level ONE),
// paying an extra network hop per operation. Two profiles mirror the
// paper's comparison targets:
//
//   - "cassandra": LSM-backed with a small memtable, so flushes and
//     compaction charge the write path — the paper blames exactly this
//     for Cassandra's numbers;
//   - "voldemort": in-memory hash-table backed (the paper configured
//     Voldemort's storage to memory).
package dynamo

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/store"
	"bespokv/internal/store/ht"
	"bespokv/internal/store/lsm"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// Profile selects the engine/behaviour of every node.
type Profile struct {
	// Name labels the profile ("cassandra", "voldemort").
	Name string
	// NewEngine builds one node's storage.
	NewEngine func() (store.Engine, error)
}

// CassandraProfile is the LSM-with-compaction configuration. Tables are
// disk-backed (Cassandra persists everything), so flushes and compactions
// pay real I/O, and the small memtable keeps that churn on the hot path —
// the cost the paper blames for Cassandra's numbers.
func CassandraProfile() Profile {
	return Profile{
		Name: "cassandra",
		NewEngine: func() (store.Engine, error) {
			dir, err := os.MkdirTemp("", "dynamo-cassandra-*")
			if err != nil {
				return nil, err
			}
			s, err := lsm.New(lsm.Options{Dir: dir, MemtableBytes: 256 << 10, FanoutLimit: 3})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			return diskEngine{Store: s, dir: dir}, nil
		},
	}
}

// diskEngine removes its scratch directory when closed.
type diskEngine struct {
	*lsm.Store
	dir string
}

func (d diskEngine) Close() error {
	err := d.Store.Close()
	_ = os.RemoveAll(d.dir)
	return err
}

// VoldemortProfile is the in-memory configuration.
func VoldemortProfile() Profile {
	return Profile{
		Name:      "voldemort",
		NewEngine: func() (store.Engine, error) { return ht.New(), nil },
	}
}

// Options configure a cluster.
type Options struct {
	Network transport.Network
	Codec   wire.Codec
	// Nodes and ReplicationFactor shape the ring (defaults 6 and 3).
	Nodes             int
	ReplicationFactor int
	Profile           Profile
	PoolSize          int
}

// Cluster is a running dynamo-style store.
type Cluster struct {
	opts  Options
	nodes []*node
}

// node is one storage server: engine + wire listener + ring routing.
type node struct {
	idx      int
	cluster  *Cluster
	engine   store.Engine
	listener transport.Listener

	clock atomic.Uint64

	peersMu sync.Mutex
	peers   map[string]*datalet.Pool

	mu      sync.Mutex
	conns   map[transport.Conn]struct{}
	stopped bool
	wg      sync.WaitGroup

	ring  *topology.Ring
	addrs []string

	// replQ decouples replication from the request handler: with CL=ONE
	// the coordinator acks after the primary applies, and the remaining
	// copies happen asynchronously. (It also keeps nested synchronous
	// RPCs out of the FIFO connection handlers, which would otherwise
	// deadlock head-of-line around the ring under load.)
	replQ  chan replRecord
	stopCh chan struct{}
}

type replRecord struct {
	owner   int
	op      wire.Op
	table   string
	key     []byte
	value   []byte
	version uint64
}

// Start boots the cluster.
func Start(opts Options) (*Cluster, error) {
	if opts.Network == nil || opts.Codec == nil || opts.Profile.NewEngine == nil {
		return nil, errors.New("dynamo: Network, Codec and Profile are required")
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 6
	}
	if opts.ReplicationFactor <= 0 {
		opts.ReplicationFactor = 3
	}
	if opts.ReplicationFactor > opts.Nodes {
		opts.ReplicationFactor = opts.Nodes
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 2
	}
	c := &Cluster{opts: opts}
	for i := 0; i < opts.Nodes; i++ {
		engine, err := opts.Profile.NewEngine()
		if err != nil {
			c.Close()
			return nil, err
		}
		addr := ""
		if _, ok := opts.Network.(transport.TCP); ok {
			addr = "127.0.0.1:0"
		}
		l, err := opts.Network.Listen(addr)
		if err != nil {
			engine.Close()
			c.Close()
			return nil, err
		}
		n := &node{
			idx:      i,
			cluster:  c,
			engine:   engine,
			listener: l,
			peers:    map[string]*datalet.Pool{},
			conns:    map[transport.Conn]struct{}{},
			replQ:    make(chan replRecord, 4096),
			stopCh:   make(chan struct{}),
		}
		n.clock.Store(uint64(time.Now().Unix()) << 32)
		c.nodes = append(c.nodes, n)
	}
	ids := make([]string, opts.Nodes)
	addrs := make([]string, opts.Nodes)
	for i, n := range c.nodes {
		ids[i] = fmt.Sprintf("dynamo-%d", i)
		addrs[i] = n.listener.Addr()
	}
	ring := topology.BuildRingFromIDs(ids, 160)
	for _, n := range c.nodes {
		n.ring = ring
		n.addrs = addrs
		// Several pumps so replication keeps up with the write rate: a
		// baseline that silently drops its RF-1 copies under load would
		// be paying less than the real system does.
		const pumps = 4
		n.wg.Add(1 + pumps)
		go n.acceptLoop()
		for i := 0; i < pumps; i++ {
			go n.replicationPump()
		}
	}
	return c, nil
}

// Addrs returns every node's address; clients may target any of them.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.listener.Addr()
	}
	return out
}

// Engine exposes node i's storage for white-box assertions.
func (c *Cluster) Engine(i int) store.Engine { return c.nodes[i].engine }

// Close stops every node.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		if n != nil {
			n.close()
		}
	}
}

func (n *node) close() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	close(n.stopCh)
	for c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	_ = n.listener.Close()
	n.wg.Wait()
	n.peersMu.Lock()
	for _, p := range n.peers {
		_ = p.Close()
	}
	n.peersMu.Unlock()
	_ = n.engine.Close()
}

func (n *node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				n.mu.Lock()
				delete(n.conns, conn)
				n.mu.Unlock()
				conn.Close()
			}()
			n.serveConn(conn)
		}()
	}
}

func (n *node) serveConn(conn transport.Conn) {
	codec := n.cluster.opts.Codec
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	bcd, _ := codec.(wire.BufferedCodec)
	var req wire.Request
	var resp wire.Response
	for {
		req.Reset()
		if err := codec.ReadRequest(br, &req); err != nil {
			if err != io.EOF {
				return
			}
			return
		}
		resp.Reset()
		resp.ID = req.ID
		n.handle(&req, &resp)
		resp.ID = req.ID
		// Coalesce response flushes while more pipelined requests wait.
		if bcd != nil && br.Buffered() > 0 {
			if err := bcd.EncodeResponse(bw, &resp); err != nil {
				return
			}
			continue
		}
		if err := codec.WriteResponse(bw, &resp); err != nil {
			return
		}
	}
}

// owners returns the RF ring successors for a key.
func (n *node) owners(key []byte) []int {
	rf := n.cluster.opts.ReplicationFactor
	first := n.ring.Lookup(key)
	out := make([]int, 0, rf)
	for i := 0; i < rf; i++ {
		out = append(out, (first+i)%len(n.addrs))
	}
	return out
}

func (n *node) handle(req *wire.Request, resp *wire.Response) {
	switch req.Op {
	case wire.OpNop:
		resp.Status = wire.StatusOK
	case wire.OpPut, wire.OpDel:
		owners := n.owners(req.Key)
		if owners[0] != n.idx {
			// Coordinator hop: forward to the primary owner and relay —
			// the server-side routing cost bespokv's client-side
			// routing avoids.
			n.forward(owners[0], req, resp)
			return
		}
		version := n.clock.Add(1)
		n.applyLocal(req, resp, version)
		if resp.Status == wire.StatusOK || resp.Status == wire.StatusNotFound {
			// CL=ONE: the primary ack suffices; the other copies are
			// made asynchronously by the replication pump.
			rec := replRecord{
				op:      req.Op,
				table:   req.Table,
				key:     append([]byte(nil), req.Key...),
				value:   append([]byte(nil), req.Value...),
				version: version,
			}
			for _, o := range owners[1:] {
				rec.owner = o
				select {
				case n.replQ <- rec:
				default: // overflow drops the copy; anti-entropy territory
				}
			}
		}
	case wire.OpGet, wire.OpScan:
		owners := n.owners(req.Key)
		mine := false
		for _, o := range owners {
			if o == n.idx {
				mine = true
				break
			}
		}
		if !mine {
			n.forward(owners[0], req, resp)
			return
		}
		n.applyLocal(req, resp, 0)
	case wire.OpReplPut, wire.OpReplDel:
		inner := *req
		if inner.Op == wire.OpReplPut {
			inner.Op = wire.OpPut
		} else {
			inner.Op = wire.OpDel
		}
		n.observe(req.Version)
		n.applyLocal(&inner, resp, req.Version)
	default:
		resp.Status = wire.StatusErr
		resp.Err = "dynamo: unsupported op " + req.Op.String()
	}
}

func (n *node) observe(v uint64) {
	for {
		cur := n.clock.Load()
		if v <= cur || n.clock.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (n *node) applyLocal(req *wire.Request, resp *wire.Response, version uint64) {
	switch req.Op {
	case wire.OpPut:
		ver, err := n.engine.Put(req.Key, req.Value, version)
		if err != nil {
			resp.Status = wire.StatusErr
			resp.Err = err.Error()
			return
		}
		resp.Status = wire.StatusOK
		resp.Version = ver
	case wire.OpDel:
		existed, winner, err := n.engine.Delete(req.Key, version)
		if err != nil {
			resp.Status = wire.StatusErr
			resp.Err = err.Error()
			return
		}
		resp.Version = winner
		if existed {
			resp.Status = wire.StatusOK
		} else {
			resp.Status = wire.StatusNotFound
		}
	case wire.OpGet:
		v, ver, ok, err := n.engine.Get(req.Key)
		if err != nil {
			resp.Status = wire.StatusErr
			resp.Err = err.Error()
			return
		}
		if !ok {
			resp.Status = wire.StatusNotFound
			return
		}
		resp.Status = wire.StatusOK
		resp.Value = append(resp.Value[:0], v...)
		resp.Version = ver
	case wire.OpScan:
		kvs, err := n.engine.Scan(req.Key, req.EndKey, int(req.Limit))
		if err != nil {
			resp.Status = wire.StatusErr
			resp.Err = err.Error()
			return
		}
		resp.Status = wire.StatusOK
		for _, kv := range kvs {
			resp.Pairs = append(resp.Pairs, wire.KV{Key: kv.Key, Value: kv.Value, Version: kv.Version})
		}
	}
}

func (n *node) forward(owner int, req *wire.Request, resp *wire.Response) {
	pool, err := n.peerPool(n.addrs[owner])
	if err != nil {
		resp.Status = wire.StatusUnavailable
		resp.Err = err.Error()
		return
	}
	fwd := *req
	if err := pool.Do(&fwd, resp); err != nil {
		n.dropPeer(n.addrs[owner])
		resp.Reset()
		resp.ID = req.ID
		resp.Status = wire.StatusUnavailable
		resp.Err = err.Error()
	}
}

// replPipelineDepth caps how many replica copies one pump round keeps in
// flight on its peer connections.
const replPipelineDepth = 32

// replicationPump drains the node's replication queue, gathering backlog
// into windows and keeping every copy in the window in flight at once on
// the pipelined peer connections.
func (n *node) replicationPump() {
	defer n.wg.Done()
	batch := make([]replRecord, 0, replPipelineDepth)
	for {
		select {
		case <-n.stopCh:
			return
		case rec := <-n.replQ:
			batch = append(batch[:0], rec)
			for len(batch) < replPipelineDepth {
				select {
				case more := <-n.replQ:
					batch = append(batch, more)
				default:
					goto full
				}
			}
		full:
			n.replicateBatch(batch)
		}
	}
}

func (n *node) replicateBatch(batch []replRecord) {
	type flight struct {
		addr string
		req  *wire.Request
		resp *wire.Response
		errc <-chan error
	}
	flights := make([]flight, 0, len(batch))
	for _, rec := range batch {
		addr := n.addrs[rec.owner]
		pool, err := n.peerPool(addr)
		if err != nil {
			continue // copy dropped; anti-entropy territory
		}
		req := wire.GetRequest()
		req.Op = wire.OpReplPut
		if rec.op == wire.OpDel {
			req.Op = wire.OpReplDel
		}
		req.Table = rec.table
		req.Key = rec.key
		req.Value = rec.value
		req.Version = rec.version
		resp := wire.GetResponse()
		flights = append(flights, flight{addr, req, resp, pool.DoAsync(req, resp)})
	}
	for _, f := range flights {
		if err := <-f.errc; err != nil {
			n.dropPeer(f.addr)
		}
		wire.PutRequest(f.req)
		wire.PutResponse(f.resp)
	}
}

func (n *node) peerPool(addr string) (*datalet.Pool, error) {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if p, ok := n.peers[addr]; ok {
		return p, nil
	}
	p, err := datalet.DialPool(n.cluster.opts.Network, addr, n.cluster.opts.Codec, n.cluster.opts.PoolSize)
	if err != nil {
		return nil, err
	}
	n.peers[addr] = p
	return p, nil
}

func (n *node) dropPeer(addr string) {
	n.peersMu.Lock()
	if p, ok := n.peers[addr]; ok {
		delete(n.peers, addr)
		_ = p.Close()
	}
	n.peersMu.Unlock()
}
