package coordinator

import (
	"encoding/json"
	"errors"
	"time"

	"bespokv/internal/rsm"
	"bespokv/internal/topology"
)

// ReplicationConfig runs the coordinator's metadata — the cluster map and
// the standby pool — on a replicated state machine instead of a single
// process's memory. Every member serves the same RPC surface on its
// Peers[ID] address: reads (GetMap/WatchMap/LeaseMap) answer anywhere from
// the locally applied map, while mutations and heartbeats are accepted
// only on the leader; elsewhere they fail with the rsm.NotLeaderError
// redirect, which clients follow by re-dialing another address.
type ReplicationConfig = rsm.GroupConfig

// proposeTimeout bounds one replicated mutation; control-plane ops are
// rare and small, so anything slower means the group has no quorum.
const proposeTimeout = 5 * time.Second

// errMapChanged reports a lost install race: the map moved past the epoch
// this mutation was computed against. Callers simply retry against the
// fresh map; under proposeMu it can only happen across leadership changes.
var errMapChanged = errors.New("coordinator: map changed concurrently; retry")

const (
	opInstall = "install"
	opStandby = "standby"
)

// coordCmd is one replicated log entry: install a full map (optionally
// claiming the head of the standby pool in the same atomic step, the
// failover path) or append a standby pair.
type coordCmd struct {
	Op          string         `json:"op"`
	Map         *topology.Map  `json:"map,omitempty"`
	TakeStandby bool           `json:"take_standby,omitempty"`
	Standby     *topology.Node `json:"standby,omitempty"`
}

// installResult is handed back to the local proposer by coordSM.Apply.
type installResult struct {
	stale   bool
	standby *topology.Node
}

// coordSnapshot is the checkpoint image: the full replicated state.
type coordSnapshot struct {
	Map      *topology.Map   `json:"map,omitempty"`
	Standbys []topology.Node `json:"standbys,omitempty"`
}

// coordSM adapts the Server's replicated state (cur + standbys) to the
// rsm.StateMachine interface. Apply runs on every member with the RSM
// internals locked, so it only touches s.mu-guarded state and never calls
// back into the RSM node.
type coordSM struct{ s *Server }

func (c coordSM) Apply(index uint64, cmd []byte) any {
	var op coordCmd
	if err := json.Unmarshal(cmd, &op); err != nil {
		c.s.cfg.Logf("coordinator: rsm entry %d undecodable: %v", index, err)
		return installResult{stale: true}
	}
	switch op.Op {
	case opStandby:
		if op.Standby != nil {
			c.s.mu.Lock()
			c.s.standbys = append(c.s.standbys, *op.Standby)
			c.s.mu.Unlock()
		}
		return installResult{}
	case opInstall:
		sb, err := c.s.applyInstall(op.Map, op.TakeStandby)
		if err != nil {
			return installResult{stale: true}
		}
		return installResult{standby: sb}
	default:
		c.s.cfg.Logf("coordinator: rsm entry %d has unknown op %q", index, op.Op)
		return installResult{stale: true}
	}
}

func (c coordSM) Snapshot() []byte {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	b, err := json.Marshal(coordSnapshot{Map: c.s.cur, Standbys: c.s.standbys})
	if err != nil {
		c.s.cfg.Logf("coordinator: rsm snapshot: %v", err)
		return nil
	}
	return b
}

func (c coordSM) Restore(data []byte) {
	var snap coordSnapshot
	if len(data) > 0 {
		if err := json.Unmarshal(data, &snap); err != nil {
			c.s.cfg.Logf("coordinator: rsm restore: %v", err)
			return
		}
	}
	c.s.mu.Lock()
	c.s.cur = snap.Map
	c.s.standbys = snap.Standbys
	if c.s.cur != nil {
		c.s.bumpLocked()
	}
	c.s.mu.Unlock()
}

// leaderCheck gates mutations and heartbeats: in replicated mode only the
// leader accepts them, everyone else redirects. Callers must not hold
// s.mu (the RSM node has its own lock ordering).
func (s *Server) leaderCheck() error {
	if s.rsm == nil || s.rsm.IsLeader() {
		return nil
	}
	return s.rsm.NotLeaderErr()
}

// installMap makes m the current map — directly in standalone mode,
// through the replicated log otherwise — and, when takeStandby is set,
// claims the head of the standby pool in the same atomic step (so a
// concurrent failover on a different leader can never claim the same
// standby). Callers hold s.proposeMu (serializing mutators, which is what
// keeps the epoch computed against the old map valid) and not s.mu.
func (s *Server) installMap(m *topology.Map, takeStandby bool) (*topology.Node, error) {
	if s.rsm == nil {
		return s.applyInstall(m, takeStandby)
	}
	cmd, err := json.Marshal(coordCmd{Op: opInstall, Map: m, TakeStandby: takeStandby})
	if err != nil {
		return nil, err
	}
	res, err := s.rsm.Propose(cmd, proposeTimeout)
	if err != nil {
		return nil, err
	}
	r, ok := res.(installResult)
	if !ok || r.stale {
		return nil, errMapChanged
	}
	return r.standby, nil
}

// applyInstall is the deterministic core of an install: adopt m iff it is
// newer than the current map, optionally popping the standby pool. It is
// both the standalone install path and coordSM.Apply's body, so the two
// modes cannot drift.
func (s *Server) applyInstall(m *topology.Map, takeStandby bool) (*topology.Node, error) {
	if m == nil {
		return nil, errors.New("coordinator: install of nil map")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil && m.Epoch <= s.cur.Epoch {
		return nil, errMapChanged
	}
	s.cur = m
	var sb *topology.Node
	if takeStandby && len(s.standbys) > 0 {
		v := s.standbys[0]
		s.standbys = append([]topology.Node(nil), s.standbys[1:]...)
		sb = &v
	}
	s.bumpLocked()
	return sb, nil
}

// returnStandby puts an unused standby back into the pool, replicated in
// RSM mode so a later failover — on any leader — still finds it.
func (s *Server) returnStandby(n topology.Node) {
	if s.rsm == nil {
		s.mu.Lock()
		s.standbys = append(s.standbys, n)
		s.mu.Unlock()
		return
	}
	cmd, err := json.Marshal(coordCmd{Op: opStandby, Standby: &n})
	if err == nil {
		_, err = s.rsm.Propose(cmd, proposeTimeout)
	}
	if err != nil {
		s.cfg.Logf("coordinator: return standby %s to pool: %v", n.ID, err)
	}
}

// onLeaderChange runs (on its own goroutine) whenever this member gains
// or loses control-plane leadership. A new leader first barriers so its
// state machine reflects every committed install, then grants the whole
// cluster a heartbeat grace period — its lastSeen view starts empty, and
// without the grace every node would look dead at once — and finally
// resumes any mode transition the old leader left in flight.
func (s *Server) onLeaderChange(term uint64, isLeader bool) {
	if !isLeader {
		s.cfg.Logf("coordinator: %s lost control-plane leadership at term %d", s.cfg.Replication.ID, term)
		return
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	if err := s.rsm.Barrier(proposeTimeout); err != nil {
		s.cfg.Logf("coordinator: leadership barrier at term %d: %v", term, err)
	}
	s.mu.Lock()
	now := time.Now()
	s.suspended = map[string]bool{}
	s.lastSeen = map[string]time.Time{}
	var resume bool
	if s.cur != nil {
		for _, shard := range s.cur.Shards {
			for _, n := range shard.Replicas {
				s.lastSeen[n.ID] = now
			}
		}
		if s.cur.Transition != nil {
			for _, shard := range s.cur.Transition.NewShards {
				for _, n := range shard.Replicas {
					s.lastSeen[n.ID] = now
				}
			}
			resume = true
		}
	}
	s.mu.Unlock()
	s.cfg.Logf("coordinator: %s leading control plane at term %d", s.cfg.Replication.ID, term)
	s.pushMap()
	if resume {
		s.resumeTransition()
	}
}

// resumeTransition picks up a mode transition interrupted by a leader
// failover: the transition descriptor is replicated state, so the new
// leader re-drains the old controlets (Drain is idempotent on an
// already-draining controlet) and completes the switch.
func (s *Server) resumeTransition() {
	s.mu.Lock()
	if s.cur == nil || s.cur.Transition == nil {
		s.mu.Unlock()
		return
	}
	m := s.cur.Clone()
	s.mu.Unlock()
	drains := make([]topology.Node, 0, len(m.Shards))
	for _, shard := range m.Shards {
		drains = append(drains, shard.Replicas...)
	}
	s.cfg.Logf("coordinator: resuming interrupted transition to %s", m.Transition.To)
	s.drainTransition(m, drains)
}

// RSMStatus reports the replication group's state (nil in standalone
// mode); the bespokv-cli rsm verb and tests read it.
func (s *Server) RSMStatus() *rsm.Status {
	if s.rsm == nil {
		return nil
	}
	st := s.rsm.Status()
	return &st
}

// IsLeader reports whether this coordinator currently accepts mutations
// (always true in standalone mode).
func (s *Server) IsLeader() bool {
	return s.rsm == nil || s.rsm.IsLeader()
}
