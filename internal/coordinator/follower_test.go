package coordinator

import (
	"testing"
	"time"

	"bespokv/internal/transport"
)

func TestFollowerMirrorsLeader(t *testing.T) {
	s, c := newCoord(t, Config{DisableFailover: true})
	if _, err := c.SetMap(sampleMap(2, 3)); err != nil {
		t.Fatal(err)
	}
	net, _ := transport.Lookup("inproc")
	f, err := ServeFollower(FollowerConfig{Network: net, LeaderAddr: s.Addr(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := f.Map(); m != nil && m.Epoch == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never synced")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Leader change propagates.
	if _, err := c.SetMap(sampleMap(2, 3)); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if m := f.Map(); m != nil && m.Epoch == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at epoch %d", f.Map().Epoch)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Read-only clients can query the follower directly.
	fc, err := DialCoordinator(net, f.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	m, err := fc.GetMap()
	if err != nil || m.Epoch != 2 {
		t.Fatalf("follower GetMap: epoch=%v err=%v", m, err)
	}
}

func TestFollowerPromotionContinuesEpochs(t *testing.T) {
	s, c := newCoord(t, Config{DisableFailover: true})
	for i := 0; i < 5; i++ { // build up epoch history
		if _, err := c.SetMap(sampleMap(1, 3)); err != nil {
			t.Fatal(err)
		}
	}
	net, _ := transport.Lookup("inproc")
	f, err := ServeFollower(FollowerConfig{Network: net, LeaderAddr: s.Addr(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := f.Map(); m != nil && m.Epoch == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Leader dies; the follower is promoted.
	s.Close()
	promoted, err := f.Promote(Config{Network: net, DisableFailover: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	pc, err := DialCoordinator(net, promoted.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	m, err := pc.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch <= 5 {
		t.Fatalf("promoted epoch %d did not continue past 5", m.Epoch)
	}
	if len(m.Shards) != 1 || len(m.Shards[0].Replicas) != 3 {
		t.Fatalf("promoted map lost state: %+v", m)
	}
	// The promoted coordinator is fully functional.
	if _, err := pc.Heartbeat("s0-r0", true); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.LeaderElect("shard-0", "s0-r0"); err != nil {
		t.Fatal(err)
	}
}

func TestFollowerPromotionBeforeSyncFails(t *testing.T) {
	s, _ := newCoord(t, Config{DisableFailover: true}) // leader has no map
	net, _ := transport.Lookup("inproc")
	f, err := ServeFollower(FollowerConfig{Network: net, LeaderAddr: s.Addr(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Promote(Config{Network: net, DisableFailover: true}); err == nil {
		t.Fatal("promotion before first sync must fail")
	}
}
