package coordinator

import (
	"testing"
	"time"

	"bespokv/internal/topology"
)

// TestFailoverDeferredDuringTransition verifies the failover/transition
// interlock: while a transition is in flight the failure detector and
// FailNode must not mutate the shard lists (a node removed from the old
// shards mid-switch would leave the new shards inconsistent); once the
// transition completes, failover proceeds.
func TestFailoverDeferredDuringTransition(t *testing.T) {
	s, c := newCoord(t, Config{HeartbeatTimeout: 100 * time.Millisecond, CheckInterval: 20 * time.Millisecond})
	if _, err := c.SetMap(sampleMap(1, 3)); err != nil {
		t.Fatal(err)
	}
	// Install a transition directly so it stays in flight.
	to := topology.Mode{Topology: topology.AA, Consistency: topology.Eventual}
	s.mu.Lock()
	m := s.cur.Clone()
	m.Transition = &topology.Transition{To: to, NewShards: m.Shards}
	m.Epoch++
	s.cur = m
	s.mu.Unlock()

	if err := s.FailNode("s0-r1"); err == nil {
		t.Fatal("FailNode during transition must be rejected")
	}
	// No heartbeats flow, yet the detector must not shrink the shard.
	time.Sleep(300 * time.Millisecond)
	cur, err := c.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Shards[0].Replicas) != 3 {
		t.Fatalf("detector failed nodes mid-transition: %d replicas", len(cur.Shards[0].Replicas))
	}

	// Complete the transition; failover works again.
	if _, err := c.CompleteTransition(); err != nil {
		t.Fatal(err)
	}
	if err := s.FailNode("s0-r1"); err != nil {
		t.Fatalf("FailNode after transition: %v", err)
	}
	cur, _ = c.GetMap()
	if len(cur.Shards[0].Replicas) != 2 {
		t.Fatalf("failover after transition did not apply: %d replicas", len(cur.Shards[0].Replicas))
	}
}
