package coordinator

import (
	"errors"
	"log"
	"sync"
	"time"

	"bespokv/internal/rpc"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
)

// Follower is a warm standby for the coordinator — the reproduction's
// analogue of the paper's ZooKeeper-backed resilience ("a single process
// backed up using ZooKeeper with a standby process as follower"). It
// mirrors the leader's map through long-poll watches, answers read-only
// queries (GetMap/WatchMap) so clients can fail over their reads, and can
// be promoted to a full coordinator seeded with the last mirrored map —
// epochs continue, they never restart.
type Follower struct {
	cfg FollowerConfig
	rpc *rpc.Server

	mu      sync.Mutex
	cached  *topology.Map
	epochCh chan struct{}
	addr    string
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// FollowerConfig configures a follower.
type FollowerConfig struct {
	// Network and Addr select the follower's own RPC endpoint.
	Network transport.Network
	Addr    string
	// LeaderAddr is the coordinator to mirror.
	LeaderAddr string
	// Logf receives diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// ServeFollower starts mirroring the leader.
func ServeFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Network == nil || cfg.LeaderAddr == "" {
		return nil, errors.New("coordinator: follower needs Network and LeaderAddr")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	f := &Follower{
		cfg:     cfg,
		rpc:     rpc.NewServer(),
		epochCh: make(chan struct{}),
		stopCh:  make(chan struct{}),
	}
	rpc.HandleFunc(f.rpc, "GetMap", f.handleGetMap)
	rpc.HandleFunc(f.rpc, "WatchMap", f.handleWatchMap)
	addr, err := f.rpc.Serve(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	f.addr = addr
	f.wg.Add(1)
	go f.mirror()
	return f, nil
}

// Addr returns the follower's RPC address.
func (f *Follower) Addr() string { return f.addr }

// Map returns the last mirrored map (nil before the first sync).
func (f *Follower) Map() *topology.Map {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cached.Clone()
}

func (f *Follower) handleGetMap(struct{}) (*topology.Map, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cached == nil {
		return nil, errors.New("coordinator: follower has no map yet")
	}
	return f.cached.Clone(), nil
}

func (f *Follower) handleWatchMap(args WatchArgs) (*topology.Map, error) {
	timeout := time.Duration(args.TimeoutMs) * time.Millisecond
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		f.mu.Lock()
		cur := f.cached
		ch := f.epochCh
		f.mu.Unlock()
		if cur != nil && cur.Epoch > args.Since {
			return cur.Clone(), nil
		}
		select {
		case <-ch:
		case <-deadline.C:
			if cur == nil {
				return nil, errors.New("coordinator: follower has no map yet")
			}
			return cur.Clone(), nil
		case <-f.stopCh:
			return nil, errors.New("coordinator: follower shutting down")
		}
	}
}

// mirror long-polls the leader and installs newer maps.
func (f *Follower) mirror() {
	defer f.wg.Done()
	for {
		select {
		case <-f.stopCh:
			return
		default:
		}
		leader, err := DialCoordinator(f.cfg.Network, f.cfg.LeaderAddr)
		if err != nil {
			select {
			case <-f.stopCh:
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		for {
			since := uint64(0)
			f.mu.Lock()
			if f.cached != nil {
				since = f.cached.Epoch
			}
			f.mu.Unlock()
			m, err := leader.WatchMap(since, time.Second)
			if err != nil {
				break // leader gone; redial (or stop)
			}
			if m != nil && (since == 0 || m.Epoch > since) {
				f.mu.Lock()
				f.cached = m.Clone()
				close(f.epochCh)
				f.epochCh = make(chan struct{})
				f.mu.Unlock()
			}
			select {
			case <-f.stopCh:
				leader.Close()
				return
			default:
			}
		}
		leader.Close()
	}
}

// Promote stops mirroring and starts a full coordinator on a fresh
// endpoint, seeded with the mirrored map so epochs continue. The follower
// keeps serving reads until Close.
func (f *Follower) Promote(cfg Config) (*Server, error) {
	f.mu.Lock()
	seed := f.cached.Clone()
	f.mu.Unlock()
	if seed == nil {
		return nil, errors.New("coordinator: cannot promote before first sync")
	}
	if cfg.Network == nil {
		cfg.Network = f.cfg.Network
	}
	if cfg.Logf == nil {
		cfg.Logf = f.cfg.Logf
	}
	s, err := Serve(cfg)
	if err != nil {
		return nil, err
	}
	// Install the mirrored map; SetMap bumps the epoch past the seed's,
	// so controlets and clients converge on the promoted history.
	if _, err := s.handleSetMap(seed); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Close stops the follower.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return nil
	}
	f.stopped = true
	f.mu.Unlock()
	close(f.stopCh)
	err := f.rpc.Close()
	f.wg.Wait()
	return err
}
