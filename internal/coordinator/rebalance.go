package coordinator

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bespokv/internal/migrate"
	"bespokv/internal/topology"
)

// migrationRun is the coordinator-side record of one rebalance: the plan,
// the source replica set frozen at plan time, and progress for the
// MigrationStatus RPC. Exactly one run may be active; a finished run stays
// around (lastRun) so status is queryable after completion.
type migrationRun struct {
	ID            string              `json:"id"`
	Kind          string              `json:"kind"` // "join" | "drain" | "rebalance"
	Phase         string              `json:"phase"`
	Sources       []string            `json:"sources"`
	Transfers     []topology.Transfer `json:"transfers"`
	MovedFraction float64             `json:"moved_fraction"`
	KeysMoved     uint64              `json:"keys_moved"`
	BytesMoved    uint64              `json:"bytes_moved"`
	KeysGCed      uint64              `json:"keys_gced"`
	Err           string              `json:"err,omitempty"`

	plan      *migrate.Plan
	srcShards []topology.Shard // source shards with their replica lists, from the base map
}

// JoinArgs adds one fully-specified shard (replicas with all addresses).
type JoinArgs struct {
	Shard topology.Shard `json:"shard"`
}

// DrainArgs removes one shard, spreading its keyspace over the survivors.
type DrainArgs struct {
	ShardID string `json:"shard"`
}

// RebalanceArgs installs an arbitrary target shard set.
type RebalanceArgs struct {
	Shards []topology.Shard `json:"shards"`
}

// MigrationStartReply acknowledges a started rebalance; the caller polls
// MigrationStatus until the run reports done or failed.
type MigrationStartReply struct {
	ID            string   `json:"id"`
	Sources       []string `json:"sources"`
	MovedFraction float64  `json:"moved_fraction"`
}

// MigrationStatusReply reports the active (or most recent) run.
type MigrationStatusReply struct {
	Active bool          `json:"active"`
	Run    *migrationRun `json:"run,omitempty"`
}

func (s *Server) handleJoinNode(args JoinArgs) (MigrationStartReply, error) {
	return s.startMigration("join", func(cur *topology.Map) (*migrate.Plan, error) {
		return migrate.PlanJoin(cur, args.Shard)
	})
}

func (s *Server) handleDrainNode(args DrainArgs) (MigrationStartReply, error) {
	return s.startMigration("drain", func(cur *topology.Map) (*migrate.Plan, error) {
		return migrate.PlanDrain(cur, args.ShardID)
	})
}

func (s *Server) handleRebalance(args RebalanceArgs) (MigrationStartReply, error) {
	return s.startMigration("rebalance", func(cur *topology.Map) (*migrate.Plan, error) {
		return migrate.PlanRebalance(cur, args.Shards)
	})
}

func (s *Server) handleMigrationStatus(struct{}) (MigrationStatusReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.migrating != nil {
		run := *s.migrating
		return MigrationStatusReply{Active: true, Run: &run}, nil
	}
	if s.lastRun != nil {
		run := *s.lastRun
		return MigrationStatusReply{Active: false, Run: &run}, nil
	}
	return MigrationStatusReply{}, nil
}

// startMigration plans under the lock, claims the single migration slot,
// and launches the orchestrator in the background.
func (s *Server) startMigration(kind string, planFn func(*topology.Map) (*migrate.Plan, error)) (MigrationStartReply, error) {
	if err := s.leaderCheck(); err != nil {
		return MigrationStartReply{}, err
	}
	s.mu.Lock()
	if s.cur == nil {
		s.mu.Unlock()
		return MigrationStartReply{}, errors.New("coordinator: no map installed")
	}
	if s.cur.Transition != nil {
		s.mu.Unlock()
		return MigrationStartReply{}, errors.New("coordinator: mode transition in flight")
	}
	if s.migrating != nil {
		s.mu.Unlock()
		return MigrationStartReply{}, fmt.Errorf("coordinator: migration %s already in flight", s.migrating.ID)
	}
	plan, err := planFn(s.cur)
	if err != nil {
		s.mu.Unlock()
		return MigrationStartReply{}, err
	}
	s.migSeq++
	run := &migrationRun{
		ID:            fmt.Sprintf("mig-%d-%d", plan.BaseEpoch, s.migSeq),
		Kind:          kind,
		Phase:         "dual-write",
		Sources:       plan.Sources,
		Transfers:     plan.Transfers,
		MovedFraction: plan.MovedFraction,
		plan:          plan,
	}
	for _, id := range plan.Sources {
		for _, shard := range s.cur.Shards {
			if shard.ID == id {
				run.srcShards = append(run.srcShards, shard)
			}
		}
	}
	s.migrating = run
	s.mu.Unlock()

	coordRebalances.Inc()
	s.cfg.Logf("coordinator: %s %s started: sources=%v moved≈%.1f%%",
		kind, run.ID, plan.Sources, plan.MovedFraction*100)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		start := time.Now()
		if err := s.runMigration(run); err != nil {
			coordRebalanceFails.Inc()
			s.cfg.Logf("coordinator: %s %s failed: %v", kind, run.ID, err)
			s.abortMigration(run, err)
		} else {
			coordRebalanceLat.Observe(time.Since(start))
			s.cfg.Logf("coordinator: %s %s complete in %v", kind, run.ID, time.Since(start))
		}
		s.mu.Lock()
		run.plan = nil // drop the map references; keep the summary
		s.lastRun = run
		s.migrating = nil
		s.mu.Unlock()
	}()
	return MigrationStartReply{ID: run.ID, Sources: plan.Sources, MovedFraction: plan.MovedFraction}, nil
}

// callCtl dials addr and runs one control RPC.
func (s *Server) callCtl(addr, method string, args, reply any) error {
	ctl, err := s.dialCtl(addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer ctl.Close()
	if err := ctl.Call(method, args, reply); err != nil {
		return fmt.Errorf("%s at %s: %w", method, addr, err)
	}
	return nil
}

// runMigration drives the handoff protocol end to end:
//
//  1. arm the dual-write window on EVERY replica of every source shard
//  2. stream the snapshot from one replica per source shard, in parallel
//  3. cut over: every source replica blocks writes to moving keys and
//     drains its delta queue to zero (the cutover invariant)
//  4. floor the destination shards' version domains above everything
//     migrated, so post-cutover writes always win LWW races
//  5. install the target map with an epoch bump (clients redirect)
//  6. garbage-collect the moved ranges at the sources
func (s *Server) runMigration(run *migrationRun) error {
	plan := run.plan

	// Phase 1: arm dual-writes everywhere.
	s.setRunPhase(run, "dual-write")
	for _, shard := range run.srcShards {
		spec := migrate.Spec{ID: run.ID, SourceShard: shard.ID, Target: plan.Target}
		for _, n := range shard.Replicas {
			if n.ControlAddr == "" {
				return fmt.Errorf("source node %s has no control address", n.ID)
			}
			if err := s.callCtl(n.ControlAddr, "MigrateOut", spec, nil); err != nil {
				return err
			}
		}
	}

	// Phase 2: snapshot, one elected replica per source shard, in parallel.
	s.setRunPhase(run, "snapshot")
	type streamRes struct {
		reply streamReply
		err   error
	}
	resCh := make(chan streamRes, len(run.srcShards))
	for _, shard := range run.srcShards {
		head := shard.Replicas[0]
		go func(addr string) {
			var reply streamReply
			err := s.callCtl(addr, "MigrateStream", migRef{ID: run.ID}, &reply)
			resCh <- streamRes{reply: reply, err: err}
		}(head.ControlAddr)
	}
	var maxVersion uint64
	var streamErr error
	for range run.srcShards {
		res := <-resCh
		if res.err != nil && streamErr == nil {
			streamErr = res.err
		}
		s.mu.Lock()
		run.KeysMoved += res.reply.Keys
		run.BytesMoved += res.reply.Bytes
		s.mu.Unlock()
		if res.reply.MaxVersion > maxVersion {
			maxVersion = res.reply.MaxVersion
		}
	}
	if streamErr != nil {
		return streamErr
	}

	// Phase 3: cutover barrier on every source replica, in parallel —
	// writes to moving keys are refused from the first barrier until the
	// new map reaches the clients, so this window must stay well inside
	// the client retry budget (sum of serial drains would not).
	s.setRunPhase(run, "cutover")
	cutStart := time.Now()
	type cutRes struct {
		maxVersion uint64
		err        error
	}
	var nCut int
	cutCh := make(chan cutRes, 16)
	for _, shard := range run.srcShards {
		for _, n := range shard.Replicas {
			nCut++
			go func(addr string) {
				var reply struct {
					MaxVersion uint64 `json:"max_version"`
				}
				err := s.callCtl(addr, "MigrateCutover", migRef{ID: run.ID}, &reply)
				cutCh <- cutRes{maxVersion: reply.MaxVersion, err: err}
			}(n.ControlAddr)
		}
	}
	var cutErr error
	for i := 0; i < nCut; i++ {
		res := <-cutCh
		if res.err != nil && cutErr == nil {
			cutErr = res.err
		}
		if res.maxVersion > maxVersion {
			maxVersion = res.maxVersion
		}
	}
	if cutErr != nil {
		return cutErr
	}

	// Phase 4: floor the destination version domains. Destinations are the
	// shards that receive keyspace per the plan's transfers.
	if maxVersion > 0 {
		destIDs := map[string]bool{}
		for _, tr := range run.Transfers {
			destIDs[tr.To] = true
		}
		var floorErr error
		var floorWG sync.WaitGroup
		var floorMu sync.Mutex
		for _, shard := range plan.Target.Shards {
			if !destIDs[shard.ID] {
				continue
			}
			for _, n := range shard.Replicas {
				if n.ControlAddr == "" {
					continue
				}
				floorWG.Add(1)
				go func(addr string) {
					defer floorWG.Done()
					args := struct {
						Floor uint64 `json:"floor"`
					}{Floor: maxVersion}
					if err := s.callCtl(addr, "MigrateFloor", args, nil); err != nil {
						floorMu.Lock()
						if floorErr == nil {
							floorErr = err
						}
						floorMu.Unlock()
					}
				}(n.ControlAddr)
			}
		}
		floorWG.Wait()
		if floorErr != nil {
			return floorErr
		}
	}

	// Phase 5: install the target map. The epoch bump is what makes the
	// cutover permanent: clients with the old map get WrongEpoch/redirects
	// and refresh onto the new owners.
	s.proposeMu.Lock()
	s.mu.Lock()
	if s.cur == nil || s.cur.Epoch != run.plan.BaseEpoch {
		cur := uint64(0)
		if s.cur != nil {
			cur = s.cur.Epoch
		}
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return fmt.Errorf("map changed during migration (epoch %d, planned against %d)", cur, run.plan.BaseEpoch)
	}
	s.mu.Unlock()
	m := plan.Target.Clone()
	m.Epoch = run.plan.BaseEpoch + 1
	if _, err := s.installMap(m, false); err != nil {
		s.proposeMu.Unlock()
		return err
	}
	s.mu.Lock()
	now := time.Now()
	for _, shard := range m.Shards {
		for _, n := range shard.Replicas {
			s.lastSeen[n.ID] = now
			delete(s.suspended, n.ID)
		}
	}
	s.mu.Unlock()
	s.proposeMu.Unlock()
	s.pushMap()
	// Drained shards' controlets are no longer in the map; push the new
	// map to them explicitly so they stop serving stale reads.
	var updWG sync.WaitGroup
	for _, shard := range run.srcShards {
		for _, n := range shard.Replicas {
			updWG.Add(1)
			go func(addr string) {
				defer updWG.Done()
				_ = s.callCtl(addr, "UpdateMap", m, nil)
			}(n.ControlAddr)
		}
	}
	updWG.Wait()
	s.cfg.Logf("coordinator: %s: cutover window %v (barrier to new map pushed)", run.ID, time.Since(cutStart))

	// Phase 6: GC the moved ranges at the sources.
	s.setRunPhase(run, "gc")
	for _, shard := range run.srcShards {
		for _, n := range shard.Replicas {
			var reply struct {
				Keys uint64 `json:"keys"`
			}
			if err := s.callCtl(n.ControlAddr, "MigrateGC", migRef{ID: run.ID}, &reply); err != nil {
				// The handoff itself succeeded; a failed GC leaves garbage
				// that a later migration or restart can sweep. Log, don't
				// abort — aborting now would try to un-cut-over.
				s.cfg.Logf("coordinator: %s: gc at %s: %v", run.ID, n.ID, err)
				continue
			}
			s.mu.Lock()
			run.KeysGCed += reply.Keys
			s.mu.Unlock()
		}
	}
	s.setRunPhase(run, "done")
	return nil
}

// abortMigration best-effort tears down every mover and records the error;
// the cluster keeps serving from the pre-migration map.
func (s *Server) abortMigration(run *migrationRun, cause error) {
	for _, shard := range run.srcShards {
		for _, n := range shard.Replicas {
			if n.ControlAddr == "" {
				continue
			}
			if err := s.callCtl(n.ControlAddr, "MigrateAbort", migRef{ID: run.ID}, nil); err != nil {
				s.cfg.Logf("coordinator: %s: abort at %s: %v", run.ID, n.ID, err)
			}
		}
	}
	s.mu.Lock()
	run.Phase = "failed"
	run.Err = cause.Error()
	s.mu.Unlock()
}

// migRef and streamReply mirror the controlet's MigrateRef and
// MigrateStreamReply wire shapes without importing controlet (which would
// be an import cycle: controlet already imports coordinator).
type migRef struct {
	ID string `json:"id"`
}

type streamReply struct {
	Keys       uint64 `json:"keys"`
	Bytes      uint64 `json:"bytes"`
	MaxVersion uint64 `json:"max_version"`
}

func (s *Server) setRunPhase(run *migrationRun, phase string) {
	s.mu.Lock()
	run.Phase = phase
	s.mu.Unlock()
}
