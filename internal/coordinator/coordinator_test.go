package coordinator

import (
	"fmt"
	"testing"
	"time"

	"bespokv/internal/topology"
	"bespokv/internal/transport"
)

func newCoord(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	net, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Network = net
	cfg.Logf = t.Logf
	s, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := DialCoordinator(net, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func sampleMap(nShards, nReplicas int) *topology.Map {
	m := &topology.Map{
		Mode:        topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Partitioner: topology.HashPartitioner,
	}
	for s := 0; s < nShards; s++ {
		shard := topology.Shard{ID: fmt.Sprintf("shard-%d", s)}
		for r := 0; r < nReplicas; r++ {
			shard.Replicas = append(shard.Replicas, topology.Node{
				ID:            fmt.Sprintf("s%d-r%d", s, r),
				ControletAddr: fmt.Sprintf("c%d-%d", s, r),
				DataletAddr:   fmt.Sprintf("d%d-%d", s, r),
			})
		}
		m.Shards = append(m.Shards, shard)
	}
	return m
}

func TestSetAndGetMap(t *testing.T) {
	_, c := newCoord(t, Config{DisableFailover: true})
	epoch, err := c.SetMap(sampleMap(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first epoch=%d", epoch)
	}
	m, err := c.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 || len(m.Shards) != 2 || len(m.Shards[0].Replicas) != 3 {
		t.Fatalf("got map %+v", m)
	}
	// Re-set bumps the epoch.
	epoch, err = c.SetMap(sampleMap(2, 3))
	if err != nil || epoch != 2 {
		t.Fatalf("epoch=%d err=%v", epoch, err)
	}
}

func TestGetMapBeforeSet(t *testing.T) {
	_, c := newCoord(t, Config{DisableFailover: true})
	if _, err := c.GetMap(); err == nil {
		t.Fatal("GetMap before SetMap must error")
	}
}

func TestSetMapRejectsInvalid(t *testing.T) {
	_, c := newCoord(t, Config{DisableFailover: true})
	if _, err := c.SetMap(&topology.Map{}); err == nil {
		t.Fatal("empty map must be rejected")
	}
	bad := sampleMap(1, 1)
	bad.Mode.Topology = "p2p-mesh"
	if _, err := c.SetMap(bad); err == nil {
		t.Fatal("invalid mode must be rejected")
	}
}

func TestWatchMapWakesOnChange(t *testing.T) {
	s, c := newCoord(t, Config{DisableFailover: true})
	if _, err := c.SetMap(sampleMap(1, 3)); err != nil {
		t.Fatal(err)
	}
	done := make(chan *topology.Map, 1)
	go func() {
		m, err := c.WatchMap(1, 5*time.Second)
		if err != nil {
			done <- nil
			return
		}
		done <- m
	}()
	time.Sleep(30 * time.Millisecond)
	net, _ := transport.Lookup("inproc")
	c2, err := DialCoordinator(net, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.SetMap(sampleMap(1, 3)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if m == nil || m.Epoch != 2 {
			t.Fatalf("watch returned %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never woke")
	}
}

func TestWatchMapTimesOutWithCurrent(t *testing.T) {
	_, c := newCoord(t, Config{DisableFailover: true})
	if _, err := c.SetMap(sampleMap(1, 3)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	m, err := c.WatchMap(1, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 {
		t.Fatalf("timeout watch returned epoch %d", m.Epoch)
	}
	if time.Since(start) < 80*time.Millisecond {
		t.Fatal("watch returned before timeout without a change")
	}
}

func TestHeartbeatReturnsEpoch(t *testing.T) {
	_, c := newCoord(t, Config{DisableFailover: true})
	c.SetMap(sampleMap(1, 3))
	epoch, err := c.Heartbeat("s0-r0", true)
	if err != nil || epoch != 1 {
		t.Fatalf("epoch=%d err=%v", epoch, err)
	}
}

func TestLeaderElect(t *testing.T) {
	_, c := newCoord(t, Config{DisableFailover: true})
	c.SetMap(sampleMap(1, 3))
	n, err := c.LeaderElect("shard-0", "s0-r0")
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != "s0-r1" {
		t.Fatalf("elected %s, want s0-r1", n.ID)
	}
	m, _ := c.GetMap()
	if m.Shards[0].Replicas[0].ID != "s0-r1" {
		t.Fatalf("map head is %s", m.Shards[0].Replicas[0].ID)
	}
	if m.Epoch != 2 {
		t.Fatalf("epoch=%d after election", m.Epoch)
	}
	if _, err := c.LeaderElect("no-such-shard", ""); err == nil {
		t.Fatal("unknown shard must error")
	}
}

func TestFailNodeRepairsChain(t *testing.T) {
	srv, c := newCoord(t, Config{DisableFailover: true})
	c.SetMap(sampleMap(2, 3))
	if err := srv.FailNode("s0-r1"); err != nil { // mid node
		t.Fatal(err)
	}
	m, _ := c.GetMap()
	reps := m.Shards[0].Replicas
	if len(reps) != 2 || reps[0].ID != "s0-r0" || reps[1].ID != "s0-r2" {
		t.Fatalf("chain after mid failure: %+v", reps)
	}
	if len(m.Shards[1].Replicas) != 3 {
		t.Fatal("other shard touched")
	}
	// Head failure promotes the next node.
	if err := srv.FailNode("s0-r0"); err != nil {
		t.Fatal(err)
	}
	m, _ = c.GetMap()
	if m.Shards[0].Replicas[0].ID != "s0-r2" {
		t.Fatalf("head after failure: %+v", m.Shards[0].Replicas)
	}
	// Last replica cannot be failed.
	if err := srv.FailNode("s0-r2"); err == nil {
		t.Fatal("failing the last replica must error")
	}
}

func TestHeartbeatTimeoutTriggersFailover(t *testing.T) {
	_, c := newCoord(t, Config{HeartbeatTimeout: 150 * time.Millisecond, CheckInterval: 25 * time.Millisecond})
	if _, err := c.SetMap(sampleMap(1, 3)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	// Keep r0 and r2 alive; let r1 go silent.
	go func() {
		ticker := time.NewTicker(30 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				c.Heartbeat("s0-r0", true)
				c.Heartbeat("s0-r2", true)
			}
		}
	}()
	deadline := time.After(3 * time.Second)
	for {
		m, err := c.GetMap()
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Shards[0].Replicas) == 2 {
			if m.Shards[0].Replicas[0].ID != "s0-r0" || m.Shards[0].Replicas[1].ID != "s0-r2" {
				t.Fatalf("wrong survivor set: %+v", m.Shards[0].Replicas)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("failover never happened")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestTransitionLifecycle(t *testing.T) {
	_, c := newCoord(t, Config{DisableFailover: true})
	c.SetMap(sampleMap(2, 3))
	newShards := sampleMap(2, 3).Shards
	for si := range newShards {
		for ri := range newShards[si].Replicas {
			newShards[si].Replicas[ri].ID = fmt.Sprintf("new-s%d-r%d", si, ri)
			newShards[si].Replicas[ri].ControletAddr = fmt.Sprintf("nc%d-%d", si, ri)
		}
	}
	to := topology.Mode{Topology: topology.AA, Consistency: topology.Eventual}
	if _, err := c.BeginTransition(to, newShards); err != nil {
		t.Fatal(err)
	}
	// No control addresses → drains are no-ops → auto-complete.
	deadline := time.After(3 * time.Second)
	for {
		m, err := c.GetMap()
		if err != nil {
			t.Fatal(err)
		}
		if m.Transition == nil && m.Mode == to {
			if m.Shards[0].Replicas[0].ID != "new-s0-r0" {
				t.Fatalf("new shards not installed: %+v", m.Shards[0].Replicas[0])
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("transition never completed: %+v", m)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestTransitionRejectsConcurrent(t *testing.T) {
	s, c := newCoord(t, Config{DisableFailover: true})
	c.SetMap(sampleMap(1, 3))
	to := topology.Mode{Topology: topology.MS, Consistency: topology.Eventual}
	// Install a transition directly so it stays in flight (no auto
	// completion because we bypass the drain goroutine).
	s.mu.Lock()
	m := s.cur.Clone()
	m.Transition = &topology.Transition{To: to, NewShards: m.Shards}
	m.Epoch++
	s.cur = m
	s.mu.Unlock()
	if _, err := c.BeginTransition(to, sampleMap(1, 3).Shards); err == nil {
		t.Fatal("concurrent transition must be rejected")
	}
	// Manual completion works.
	if _, err := c.CompleteTransition(); err != nil {
		t.Fatal(err)
	}
	mm, _ := c.GetMap()
	if mm.Transition != nil || mm.Mode != to {
		t.Fatalf("transition not completed: %+v", mm)
	}
}

func TestRegisterStandbyValidation(t *testing.T) {
	_, c := newCoord(t, Config{DisableFailover: true})
	if err := c.RegisterStandby(topology.Node{}); err == nil {
		t.Fatal("empty standby must be rejected")
	}
	err := c.RegisterStandby(topology.Node{ID: "sb", ControletAddr: "x", DataletAddr: "y"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFailoverPromotesStandby(t *testing.T) {
	s, c := newCoord(t, Config{DisableFailover: true})
	c.SetMap(sampleMap(1, 3))
	// Standby without a control address: recovery is skipped, the node
	// joins directly.
	if err := c.RegisterStandby(topology.Node{ID: "sb-1", ControletAddr: "sbc", DataletAddr: "sbd"}); err != nil {
		t.Fatal(err)
	}
	if err := s.FailNode("s0-r2"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for {
		m, _ := c.GetMap()
		reps := m.Shards[0].Replicas
		if len(reps) == 3 && reps[2].ID == "sb-1" {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("standby never joined: %+v", reps)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
