// Package coordinator implements the bespokv control-plane metadata
// service — the reproduction's stand-in for the paper's ZooKeeper-based
// coordinator. It owns the versioned cluster Map, tracks node liveness via
// heartbeats, elects new masters, orchestrates failover onto registered
// standby pairs, and drives topology/consistency transitions. Clients and
// controlets observe changes through long-poll watches and best-effort map
// pushes to every controlet's control endpoint.
package coordinator

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"bespokv/internal/rpc"
	"bespokv/internal/rsm"
	"bespokv/internal/telemetry"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
)

// Config configures a coordinator server.
type Config struct {
	// Network and Addr select the RPC listening endpoint.
	Network transport.Network
	Addr    string
	// HeartbeatTimeout declares a node dead after this silence (default
	// 2s; the paper uses a 5s heartbeat interval on its testbed).
	HeartbeatTimeout time.Duration
	// CheckInterval is the failure-detector sweep period (default
	// HeartbeatTimeout/4).
	CheckInterval time.Duration
	// DisableFailover turns the failure detector off (benchmarks that
	// kill nodes deliberately re-enable it per-experiment).
	DisableFailover bool
	// LeaseTTL is how long a client may trust a map granted via LeaseMap
	// for direct datalet reads without renewing (default HeartbeatTimeout:
	// a client's trust window never outlives the failure detector's).
	LeaseTTL time.Duration
	// SLOs is the alerting policy the telemetry aggregator enforces
	// (nil installs telemetry.DefaultObjectives; empty non-nil disables).
	SLOs []telemetry.Objective
	// TelemetryStaleAfter marks a node's telemetry stale after this
	// silence (default HeartbeatTimeout: telemetry staleness tracks the
	// failure detector's view of liveness).
	TelemetryStaleAfter time.Duration
	// Replication, when set, runs this coordinator as one member of a
	// replicated control-plane group (see ReplicationConfig); nil keeps
	// the single-process standalone mode.
	Replication *ReplicationConfig
	// Logf receives diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Server is a running coordinator.
type Server struct {
	cfg  Config
	rpc  *rpc.Server
	addr string

	// rsm replicates cur and standbys across the group in replicated
	// mode; nil in standalone mode. proposeMu serializes map mutators
	// (build-new-map then install must be atomic against each other,
	// and the install may block on a replicated round trip, so s.mu
	// cannot cover it).
	rsm       *rsm.Node
	proposeMu sync.Mutex

	mu        sync.Mutex
	cur       *topology.Map
	lastSeen  map[string]time.Time
	suspended map[string]bool // nodes already failed over
	standbys  []topology.Node
	epochCh   chan struct{} // closed and replaced on every epoch bump
	migrating *migrationRun // active rebalance, nil when idle (see rebalance.go)
	lastRun   *migrationRun // most recent finished rebalance, for status
	migSeq    uint64
	stopCh    chan struct{}
	stopped   bool
	wg        sync.WaitGroup

	// dialCtl lets tests fake controlet control connections; defaults to
	// rpc.DialClient over cfg.Network.
	dialCtl func(addr string) (ctlConn, error)

	// agg collects node telemetry reports into the cluster-wide view
	// (/clusterz, `bespokv-cli top`) and drives SLO alerting.
	agg *telemetry.Aggregator
}

// ctlConn is the subset of rpc.Client the coordinator needs.
type ctlConn interface {
	Call(method string, args, reply any) error
	Close() error
}

// Heartbeat is the liveness report a controlet sends for its pair.
type Heartbeat struct {
	// NodeID identifies the controlet–datalet pair.
	NodeID string `json:"node"`
	// DataletOK reports the controlet's view of its local datalet.
	DataletOK bool `json:"datalet_ok"`
}

// HeartbeatReply tells the controlet the current epoch so it can refresh.
type HeartbeatReply struct {
	Epoch uint64 `json:"epoch"`
}

// WatchArgs long-polls for a map newer than Since.
type WatchArgs struct {
	Since     uint64 `json:"since"`
	TimeoutMs int    `json:"timeout_ms"`
}

// LeaseReply carries a map plus the window during which the recipient may
// trust it for coordinator-free direct datalet reads.
type LeaseReply struct {
	Map   *topology.Map `json:"map"`
	TTLMs int           `json:"ttl_ms"`
}

// TransitionArgs starts a topology/consistency switch.
type TransitionArgs struct {
	To topology.Mode `json:"to"`
	// NewShards carries the new-mode controlets, parallel to the current
	// shards (same datalets, new controlet/control addresses).
	NewShards []topology.Shard `json:"new_shards"`
}

// Serve starts a coordinator and returns once it is listening.
func Serve(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("coordinator: Network is required")
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = cfg.HeartbeatTimeout / 4
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = cfg.HeartbeatTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.SLOs == nil {
		cfg.SLOs = telemetry.DefaultObjectives()
	}
	if cfg.TelemetryStaleAfter <= 0 {
		cfg.TelemetryStaleAfter = cfg.HeartbeatTimeout
	}
	s := &Server{
		cfg:       cfg,
		rpc:       rpc.NewServer(),
		lastSeen:  map[string]time.Time{},
		suspended: map[string]bool{},
		epochCh:   make(chan struct{}),
		stopCh:    make(chan struct{}),
		agg: telemetry.NewAggregator(telemetry.AggregatorOptions{
			StaleAfter: cfg.TelemetryStaleAfter,
			Objectives: cfg.SLOs,
		}),
	}
	s.dialCtl = func(addr string) (ctlConn, error) {
		return rpc.DialClient(cfg.Network, addr)
	}
	s.rpc.Name = "coordinator"
	rpc.HandleFunc(s.rpc, "GetMap", s.handleGetMap)
	rpc.HandleFunc(s.rpc, "WatchMap", s.handleWatchMap)
	rpc.HandleFunc(s.rpc, "LeaseMap", s.handleLeaseMap)
	rpc.HandleFunc(s.rpc, "SetMap", s.handleSetMap)
	rpc.HandleFunc(s.rpc, "Heartbeat", s.handleHeartbeat)
	rpc.HandleFunc(s.rpc, "RegisterStandby", s.handleRegisterStandby)
	rpc.HandleFunc(s.rpc, "LeaderElect", s.handleLeaderElect)
	rpc.HandleFunc(s.rpc, "BeginTransition", s.handleBeginTransition)
	rpc.HandleFunc(s.rpc, "CompleteTransition", s.handleCompleteTransition)
	rpc.HandleFunc(s.rpc, "Rejoin", s.handleRejoin)
	rpc.HandleFunc(s.rpc, "JoinNode", s.handleJoinNode)
	rpc.HandleFunc(s.rpc, "DrainNode", s.handleDrainNode)
	rpc.HandleFunc(s.rpc, "Rebalance", s.handleRebalance)
	rpc.HandleFunc(s.rpc, "MigrationStatus", s.handleMigrationStatus)
	rpc.HandleFunc(s.rpc, "TelemetryReport", s.handleTelemetryReport)
	rpc.HandleFunc(s.rpc, "Telemetry", s.handleTelemetry)
	addr, err := s.rpc.Serve(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.addr = addr
	if rc := cfg.Replication; rc != nil {
		node, err := rsm.StartGroup(*rc, s.rpc, cfg.Network, coordSM{s}, s.onLeaderChange, cfg.Logf)
		if err != nil {
			s.rpc.Close()
			return nil, err
		}
		s.rsm = node
	}
	if !cfg.DisableFailover {
		s.wg.Add(1)
		go s.failureDetector()
	}
	return s, nil
}

// Addr returns the coordinator's RPC address.
func (s *Server) Addr() string { return s.addr }

// Telemetry exposes the aggregator (obs endpoints, tests).
func (s *Server) Telemetry() *telemetry.Aggregator { return s.agg }

// TelemetryReportArgs carries one controlet's telemetry tick: its own
// snapshot plus (usually) its local datalet's.
type TelemetryReportArgs struct {
	Reports []telemetry.NodeSnapshot `json:"reports"`
}

func (s *Server) handleTelemetryReport(args TelemetryReportArgs) (struct{}, error) {
	// Telemetry rides the heartbeat tick; keep the aggregated view on the
	// leader so /clusterz and SLO alerting see the whole cluster.
	if err := s.leaderCheck(); err != nil {
		return struct{}{}, err
	}
	s.agg.Report(args.Reports...)
	return struct{}{}, nil
}

func (s *Server) handleTelemetry(struct{}) (telemetry.ClusterSnapshot, error) {
	return s.agg.Cluster(), nil
}

// Close stops the coordinator.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	close(s.stopCh)
	s.mu.Unlock()
	if s.rsm != nil {
		if err := s.rsm.Close(); err != nil {
			s.cfg.Logf("coordinator: rsm close: %v", err)
		}
	}
	err := s.rpc.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handleGetMap(struct{}) (*topology.Map, error) {
	s.mu.Lock()
	cur := s.cur
	s.mu.Unlock()
	if cur == nil {
		// A replicated follower that hasn't applied any map yet redirects
		// instead of claiming the cluster is empty — the leader may have
		// committed an install this member hasn't caught up to.
		if err := s.leaderCheck(); err != nil {
			return nil, err
		}
		return nil, errors.New("coordinator: no map installed")
	}
	return cur.Clone(), nil
}

func (s *Server) handleWatchMap(args WatchArgs) (*topology.Map, error) {
	timeout := time.Duration(args.TimeoutMs) * time.Millisecond
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		cur := s.cur
		ch := s.epochCh
		s.mu.Unlock()
		if cur != nil && cur.Epoch > args.Since {
			return cur.Clone(), nil
		}
		select {
		case <-ch:
		case <-deadline.C:
			if cur == nil {
				return nil, errors.New("coordinator: no map installed")
			}
			return cur.Clone(), nil
		case <-s.stopCh:
			return nil, errors.New("coordinator: shutting down")
		}
	}
}

// handleLeaseMap is WatchMap plus a lease grant: the reply's map comes with
// a TTL during which the client may read datalets directly (epoch-fenced at
// the datalet) without consulting the coordinator. Renewal rides the same
// long-poll the watch loop already runs, so leased clients cost the
// coordinator nothing beyond their existing watch.
func (s *Server) handleLeaseMap(args WatchArgs) (LeaseReply, error) {
	m, err := s.handleWatchMap(args)
	if err != nil {
		return LeaseReply{}, err
	}
	return LeaseReply{Map: m, TTLMs: int(s.cfg.LeaseTTL / time.Millisecond)}, nil
}

func (s *Server) handleSetMap(m *topology.Map) (HeartbeatReply, error) {
	if m == nil || len(m.Shards) == 0 {
		return HeartbeatReply{}, errors.New("coordinator: empty map")
	}
	if !m.Mode.Valid() {
		return HeartbeatReply{}, fmt.Errorf("coordinator: invalid mode %s", m.Mode)
	}
	if err := s.leaderCheck(); err != nil {
		return HeartbeatReply{}, err
	}
	s.proposeMu.Lock()
	defer s.proposeMu.Unlock()
	s.mu.Lock()
	// The new epoch continues past both the current history and the
	// submitted map's own epoch, so a promoted follower seeding a
	// mirrored map keeps the cluster's epoch sequence monotonic.
	epoch := m.Epoch + 1
	if s.cur != nil && s.cur.Epoch+1 > epoch {
		epoch = s.cur.Epoch + 1
	}
	s.mu.Unlock()
	m = m.Clone()
	m.Epoch = epoch
	if _, err := s.installMap(m, false); err != nil {
		return HeartbeatReply{}, err
	}
	s.mu.Lock()
	now := time.Now()
	for _, shard := range m.Shards {
		for _, n := range shard.Replicas {
			s.lastSeen[n.ID] = now
			delete(s.suspended, n.ID)
		}
	}
	s.mu.Unlock()
	s.pushMap()
	return HeartbeatReply{Epoch: epoch}, nil
}

// bumpLocked wakes watchers; caller holds mu and has already set cur.
func (s *Server) bumpLocked() {
	coordEpoch.Set(int64(s.cur.Epoch))
	close(s.epochCh)
	s.epochCh = make(chan struct{})
}

func (s *Server) handleHeartbeat(hb Heartbeat) (HeartbeatReply, error) {
	// Heartbeats must land on the leader: it runs the failure detector,
	// and a controlet heartbeating a follower would never self-fence.
	if err := s.leaderCheck(); err != nil {
		return HeartbeatReply{}, err
	}
	coordHeartbeats.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !hb.DataletOK {
		// A controlet reporting a dead datalet is treated as a pair
		// failure: stop refreshing so the detector fails it over.
		s.cfg.Logf("coordinator: node %s reports datalet failure", hb.NodeID)
	} else {
		s.lastSeen[hb.NodeID] = time.Now()
	}
	var epoch uint64
	if s.cur != nil {
		epoch = s.cur.Epoch
	}
	return HeartbeatReply{Epoch: epoch}, nil
}

func (s *Server) handleRegisterStandby(n topology.Node) (struct{}, error) {
	if n.ID == "" || n.ControletAddr == "" || n.DataletAddr == "" {
		return struct{}{}, errors.New("coordinator: standby needs ID, controlet and datalet addresses")
	}
	if err := s.leaderCheck(); err != nil {
		return struct{}{}, err
	}
	if s.rsm == nil {
		s.mu.Lock()
		s.standbys = append(s.standbys, n)
		s.mu.Unlock()
		return struct{}{}, nil
	}
	cmd, err := json.Marshal(coordCmd{Op: opStandby, Standby: &n})
	if err != nil {
		return struct{}{}, err
	}
	_, err = s.rsm.Propose(cmd, proposeTimeout)
	return struct{}{}, err
}

// LeaderElectArgs asks for a new master for a shard (excluding a node).
type LeaderElectArgs struct {
	ShardID string `json:"shard"`
	Exclude string `json:"exclude,omitempty"`
}

// handleLeaderElect promotes the first surviving replica of the shard to
// the head of its replica list and returns the new leader.
func (s *Server) handleLeaderElect(args LeaderElectArgs) (topology.Node, error) {
	if err := s.leaderCheck(); err != nil {
		return topology.Node{}, err
	}
	s.proposeMu.Lock()
	defer s.proposeMu.Unlock()
	s.mu.Lock()
	if s.cur == nil {
		s.mu.Unlock()
		return topology.Node{}, errors.New("coordinator: no map installed")
	}
	m := s.cur.Clone()
	s.mu.Unlock()
	for si := range m.Shards {
		if m.Shards[si].ID != args.ShardID {
			continue
		}
		reps := m.Shards[si].Replicas
		for ri, n := range reps {
			if n.ID == args.Exclude {
				continue
			}
			// Move the winner to the front.
			winner := reps[ri]
			copy(reps[1:ri+1], reps[:ri])
			reps[0] = winner
			m.Epoch++
			if _, err := s.installMap(m, false); err != nil {
				return topology.Node{}, err
			}
			go s.pushMap()
			return winner, nil
		}
		return topology.Node{}, fmt.Errorf("coordinator: shard %s has no electable replica", args.ShardID)
	}
	return topology.Node{}, fmt.Errorf("coordinator: unknown shard %s", args.ShardID)
}
