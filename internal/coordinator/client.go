package coordinator

import (
	"time"

	"bespokv/internal/rpc"
	"bespokv/internal/telemetry"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
)

// Client is a typed connection to the coordinator.
type Client struct {
	c *rpc.Client
}

// DialCoordinator connects to a coordinator.
func DialCoordinator(network transport.Network, addr string) (*Client, error) {
	c, err := rpc.DialClient(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// SetCallTimeout caps how long each RPC may wait for its response. Control
// loops that must notice a partitioned coordinator quickly (heartbeats, map
// refreshes) set this well below the default; note WatchMap long-polls, so
// its timeout must stay under the call timeout.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.c.CallTimeout = d
}

// GetMap fetches the current cluster map.
func (c *Client) GetMap() (*topology.Map, error) {
	var m topology.Map
	if err := c.c.Call("GetMap", struct{}{}, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// WatchMap blocks until a map newer than since exists (or the timeout
// elapses, returning the current map).
func (c *Client) WatchMap(since uint64, timeout time.Duration) (*topology.Map, error) {
	var m topology.Map
	args := WatchArgs{Since: since, TimeoutMs: int(timeout / time.Millisecond)}
	if err := c.c.Call("WatchMap", args, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// LeaseMap is WatchMap plus a lease grant: the returned map may be trusted
// for direct datalet reads for the returned TTL. A zero TTL (or an error —
// e.g. a read-only follower that does not grant leases) means no lease;
// the caller must route reads through controlets.
func (c *Client) LeaseMap(since uint64, timeout time.Duration) (*topology.Map, time.Duration, error) {
	var reply LeaseReply
	args := WatchArgs{Since: since, TimeoutMs: int(timeout / time.Millisecond)}
	if err := c.c.Call("LeaseMap", args, &reply); err != nil {
		return nil, 0, err
	}
	return reply.Map, time.Duration(reply.TTLMs) * time.Millisecond, nil
}

// SetMap installs a map (bootstrap / admin), returning the assigned epoch.
func (c *Client) SetMap(m *topology.Map) (uint64, error) {
	var reply HeartbeatReply
	if err := c.c.Call("SetMap", m, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// Heartbeat reports liveness for a node pair and learns the current epoch.
func (c *Client) Heartbeat(nodeID string, dataletOK bool) (uint64, error) {
	var reply HeartbeatReply
	if err := c.c.Call("Heartbeat", Heartbeat{NodeID: nodeID, DataletOK: dataletOK}, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// RegisterStandby adds a spare controlet–datalet pair to the failover pool.
func (c *Client) RegisterStandby(n topology.Node) error {
	return c.c.Call("RegisterStandby", n, nil)
}

// LeaderElect promotes a new master for the shard, excluding a failed node.
func (c *Client) LeaderElect(shardID, exclude string) (topology.Node, error) {
	var n topology.Node
	err := c.c.Call("LeaderElect", LeaderElectArgs{ShardID: shardID, Exclude: exclude}, &n)
	return n, err
}

// BeginTransition starts a topology/consistency switch to mode to with the
// given new-mode controlets.
func (c *Client) BeginTransition(to topology.Mode, newShards []topology.Shard) (uint64, error) {
	var reply HeartbeatReply
	if err := c.c.Call("BeginTransition", TransitionArgs{To: to, NewShards: newShards}, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// CompleteTransition forces the in-flight transition to finish.
func (c *Client) CompleteTransition() (uint64, error) {
	var reply HeartbeatReply
	if err := c.c.Call("CompleteTransition", struct{}{}, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// Rejoin re-admits a restarted node (with durable state) to its shard; the
// reply reports how many records the catch-up transferred and whether it
// was an incremental delta.
func (c *Client) Rejoin(shardID string, n topology.Node) (RejoinReply, error) {
	var reply RejoinReply
	err := c.c.Call("Rejoin", RejoinArgs{Node: n, ShardID: shardID}, &reply)
	return reply, err
}

// JoinNode starts an online rebalance that adds shard to the ring; its
// share of the keyspace migrates in with zero downtime. Poll
// MigrationStatus for completion.
func (c *Client) JoinNode(shard topology.Shard) (MigrationStartReply, error) {
	var reply MigrationStartReply
	err := c.c.Call("JoinNode", JoinArgs{Shard: shard}, &reply)
	return reply, err
}

// DrainNode starts an online rebalance that removes the shard, spreading
// its keyspace over the survivors.
func (c *Client) DrainNode(shardID string) (MigrationStartReply, error) {
	var reply MigrationStartReply
	err := c.c.Call("DrainNode", DrainArgs{ShardID: shardID}, &reply)
	return reply, err
}

// Rebalance starts an online migration to an arbitrary target shard set.
func (c *Client) Rebalance(shards []topology.Shard) (MigrationStartReply, error) {
	var reply MigrationStartReply
	err := c.c.Call("Rebalance", RebalanceArgs{Shards: shards}, &reply)
	return reply, err
}

// TelemetryReport ships node telemetry snapshots to the aggregator;
// controlets call it on every heartbeat tick over the same connection.
func (c *Client) TelemetryReport(reports []telemetry.NodeSnapshot) error {
	return c.c.Call("TelemetryReport", TelemetryReportArgs{Reports: reports}, nil)
}

// Telemetry fetches the merged cluster-wide view (`bespokv-cli top`).
func (c *Client) Telemetry() (telemetry.ClusterSnapshot, error) {
	var snap telemetry.ClusterSnapshot
	err := c.c.Call("Telemetry", struct{}{}, &snap)
	return snap, err
}

// MigrationStatus reports the active (or most recent) rebalance run.
func (c *Client) MigrationStatus() (MigrationStatusReply, error) {
	var reply MigrationStatusReply
	err := c.c.Call("MigrationStatus", struct{}{}, &reply)
	return reply, err
}

// Close tears down the connection.
func (c *Client) Close() error { return c.c.Close() }
