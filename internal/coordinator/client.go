package coordinator

import (
	"errors"
	"io"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"bespokv/internal/rpc"
	"bespokv/internal/rsm"
	"bespokv/internal/telemetry"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
)

// Client is a typed connection to the coordinator control plane. It may
// be configured with several addresses (a replicated control-plane group):
// calls rotate to the next member on dial or connection failure, follow
// the rsm.NotLeaderError redirect hint when a follower rejects a mutation,
// and back off with capped jitter between attempts. Application errors
// (including rpc.ErrCallTimeout, where the call may have executed) are
// returned to the caller untouched.
type Client struct {
	network transport.Network

	mu          sync.Mutex
	addrs       []string
	cur         int    // index of the member the connection targets
	redirect    string // leader hint to try next, overriding addrs[cur]
	conn        *rpc.Client
	callTimeout time.Duration
	closed      bool
}

// ErrClientClosed fails calls on a closed client. Without it, Close racing
// an in-flight call is useless as an abort: the call sees its connection
// die, treats that as a member failure, and re-dials — turning every
// teardown of a long-poll into a full fresh poll window.
var ErrClientClosed = errors.New("coordinator: client closed")

// Backoff between failed control-plane attempts: exponential from
// clientBackoffBase, capped at clientBackoffMax, jittered to [d/2, d] so a
// cluster of clients re-dialing a failed coordinator doesn't stampede.
const (
	clientBackoffBase = 10 * time.Millisecond
	clientBackoffMax  = 500 * time.Millisecond
)

// clientBackoff returns the delay before retry attempt n (0-based).
func clientBackoff(n int) time.Duration {
	d := clientBackoffBase
	for i := 0; i < n && d < clientBackoffMax; i++ {
		d *= 2
	}
	if d > clientBackoffMax {
		d = clientBackoffMax
	}
	half := d / 2
	return half + rand.N(half+1)
}

// SplitAddrs splits a comma-separated address list, so every single-string
// config surface (flags, Config fields) can carry a replicated control
// plane without changing shape.
func SplitAddrs(addr string) []string {
	var out []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// DialCoordinator connects to a coordinator. addr may be one address or a
// comma-separated list of replicated control-plane members.
func DialCoordinator(network transport.Network, addr string) (*Client, error) {
	return DialCoordinators(network, SplitAddrs(addr))
}

// DialCoordinators connects to the first reachable member of a
// control-plane group; later calls keep rotating as members fail.
func DialCoordinators(network transport.Network, addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("coordinator: no addresses to dial")
	}
	c := &Client{
		network:     network,
		addrs:       append([]string(nil), addrs...),
		callTimeout: rpc.DefaultCallTimeout,
	}
	var err error
	for range addrs {
		if _, err = c.connect(); err == nil {
			return c, nil
		}
		c.rotate("")
	}
	return nil, err
}

// SetCallTimeout caps how long each RPC may wait for its response. Control
// loops that must notice a partitioned coordinator quickly (heartbeats, map
// refreshes) set this well below the default; note WatchMap long-polls, so
// its timeout must stay under the call timeout.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.callTimeout = d
	if c.conn != nil {
		c.conn.CallTimeout = d
	}
	c.mu.Unlock()
}

// Addr reports the member the client currently targets (tests, logs).
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.redirect != "" {
		return c.redirect
	}
	return c.addrs[c.cur]
}

// connect returns the live connection, dialing the current target if
// needed. The dial happens outside the lock; a racing winner is reused.
func (c *Client) connect() (*rpc.Client, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		conn := c.conn
		c.mu.Unlock()
		return conn, nil
	}
	addr := c.addrs[c.cur]
	if c.redirect != "" {
		addr = c.redirect
	}
	timeout := c.callTimeout
	c.mu.Unlock()
	nc, err := rpc.DialClient(c.network, addr)
	if err != nil {
		return nil, err
	}
	nc.CallTimeout = timeout
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		cur := c.conn
		c.mu.Unlock()
		nc.Close()
		return cur, nil
	}
	c.conn = nc
	c.mu.Unlock()
	return nc, nil
}

// drop forgets conn (if still current) so the next call re-dials.
func (c *Client) drop(conn *rpc.Client) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
	conn.Close()
}

// rotate moves to the next member, or straight to the redirect hint when a
// follower named the leader.
func (c *Client) rotate(hint string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.redirect = ""
	if hint != "" {
		for i, a := range c.addrs {
			if a == hint {
				c.cur = i
				return
			}
		}
		// A leader outside the configured list (e.g. a member added after
		// this client was built): trust the hint for the next dial.
		c.redirect = hint
		return
	}
	c.cur = (c.cur + 1) % len(c.addrs)
}

// isConnErr reports errors that mean this member is unreachable (vs.
// application errors, which every member would answer identically).
func isConnErr(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, transport.ErrClosed) {
		return true
	}
	return strings.Contains(err.Error(), "rpc: connection failed")
}

// call runs one RPC with rotation: on an unreachable member or a
// NotLeader redirect it moves on (with capped jittered backoff) until the
// attempt budget is spent. Timeouts and application errors return
// immediately — the call may have executed, so retrying is the caller's
// decision.
func (c *Client) call(method string, args, reply any) error {
	attempts := 3 * len(c.addrs)
	if attempts < 4 {
		attempts = 4
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(clientBackoff(i - 1))
		}
		conn, err := c.connect()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return err
			}
			lastErr = err
			c.rotate("")
			continue
		}
		if err = conn.Call(method, args, reply); err == nil {
			return nil
		}
		lastErr = err
		switch {
		case rsm.IsNotLeader(err):
			c.drop(conn)
			c.rotate(rsm.LeaderHint(err))
		case isConnErr(err):
			c.drop(conn)
			c.rotate("")
		case errors.Is(err, rpc.ErrCallTimeout):
			// The member is silent (blackholed, or wedged): the call may
			// have executed, so surface the ambiguity to the caller — but
			// move off this member first, or a stale redirect hint pointing
			// into a partition would pin every subsequent call there.
			c.drop(conn)
			c.rotate("")
			return err
		default:
			return err
		}
	}
	return lastErr
}

// GetMap fetches the current cluster map.
func (c *Client) GetMap() (*topology.Map, error) {
	var m topology.Map
	if err := c.call("GetMap", struct{}{}, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// WatchMap blocks until a map newer than since exists (or the timeout
// elapses, returning the current map).
func (c *Client) WatchMap(since uint64, timeout time.Duration) (*topology.Map, error) {
	var m topology.Map
	args := WatchArgs{Since: since, TimeoutMs: int(timeout / time.Millisecond)}
	if err := c.call("WatchMap", args, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// LeaseMap is WatchMap plus a lease grant: the returned map may be trusted
// for direct datalet reads for the returned TTL. A zero TTL (or an error —
// e.g. a read-only follower that does not grant leases) means no lease;
// the caller must route reads through controlets.
func (c *Client) LeaseMap(since uint64, timeout time.Duration) (*topology.Map, time.Duration, error) {
	var reply LeaseReply
	args := WatchArgs{Since: since, TimeoutMs: int(timeout / time.Millisecond)}
	if err := c.call("LeaseMap", args, &reply); err != nil {
		return nil, 0, err
	}
	return reply.Map, time.Duration(reply.TTLMs) * time.Millisecond, nil
}

// SetMap installs a map (bootstrap / admin), returning the assigned epoch.
func (c *Client) SetMap(m *topology.Map) (uint64, error) {
	var reply HeartbeatReply
	if err := c.call("SetMap", m, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// Heartbeat reports liveness for a node pair and learns the current epoch.
func (c *Client) Heartbeat(nodeID string, dataletOK bool) (uint64, error) {
	var reply HeartbeatReply
	if err := c.call("Heartbeat", Heartbeat{NodeID: nodeID, DataletOK: dataletOK}, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// RegisterStandby adds a spare controlet–datalet pair to the failover pool.
func (c *Client) RegisterStandby(n topology.Node) error {
	return c.call("RegisterStandby", n, nil)
}

// LeaderElect promotes a new master for the shard, excluding a failed node.
func (c *Client) LeaderElect(shardID, exclude string) (topology.Node, error) {
	var n topology.Node
	err := c.call("LeaderElect", LeaderElectArgs{ShardID: shardID, Exclude: exclude}, &n)
	return n, err
}

// BeginTransition starts a topology/consistency switch to mode to with the
// given new-mode controlets.
func (c *Client) BeginTransition(to topology.Mode, newShards []topology.Shard) (uint64, error) {
	var reply HeartbeatReply
	if err := c.call("BeginTransition", TransitionArgs{To: to, NewShards: newShards}, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// CompleteTransition forces the in-flight transition to finish.
func (c *Client) CompleteTransition() (uint64, error) {
	var reply HeartbeatReply
	if err := c.call("CompleteTransition", struct{}{}, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// Rejoin re-admits a restarted node (with durable state) to its shard; the
// reply reports how many records the catch-up transferred and whether it
// was an incremental delta.
func (c *Client) Rejoin(shardID string, n topology.Node) (RejoinReply, error) {
	var reply RejoinReply
	err := c.call("Rejoin", RejoinArgs{Node: n, ShardID: shardID}, &reply)
	return reply, err
}

// JoinNode starts an online rebalance that adds shard to the ring; its
// share of the keyspace migrates in with zero downtime. Poll
// MigrationStatus for completion.
func (c *Client) JoinNode(shard topology.Shard) (MigrationStartReply, error) {
	var reply MigrationStartReply
	err := c.call("JoinNode", JoinArgs{Shard: shard}, &reply)
	return reply, err
}

// DrainNode starts an online rebalance that removes the shard, spreading
// its keyspace over the survivors.
func (c *Client) DrainNode(shardID string) (MigrationStartReply, error) {
	var reply MigrationStartReply
	err := c.call("DrainNode", DrainArgs{ShardID: shardID}, &reply)
	return reply, err
}

// Rebalance starts an online migration to an arbitrary target shard set.
func (c *Client) Rebalance(shards []topology.Shard) (MigrationStartReply, error) {
	var reply MigrationStartReply
	err := c.call("Rebalance", RebalanceArgs{Shards: shards}, &reply)
	return reply, err
}

// RSMStatus reports the control-plane replication state of the member the
// client currently targets (the bespokv-cli rsm verb).
func (c *Client) RSMStatus() (rsm.Status, error) {
	var st rsm.Status
	err := c.call("RSM.Status", struct{}{}, &st)
	return st, err
}

// TelemetryReport ships node telemetry snapshots to the aggregator;
// controlets call it on every heartbeat tick over the same connection.
func (c *Client) TelemetryReport(reports []telemetry.NodeSnapshot) error {
	return c.call("TelemetryReport", TelemetryReportArgs{Reports: reports}, nil)
}

// Telemetry fetches the merged cluster-wide view (`bespokv-cli top`).
func (c *Client) Telemetry() (telemetry.ClusterSnapshot, error) {
	var snap telemetry.ClusterSnapshot
	err := c.call("Telemetry", struct{}{}, &snap)
	return snap, err
}

// MigrationStatus reports the active (or most recent) rebalance run.
func (c *Client) MigrationStatus() (MigrationStatusReply, error) {
	var reply MigrationStatusReply
	err := c.call("MigrationStatus", struct{}{}, &reply)
	return reply, err
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
