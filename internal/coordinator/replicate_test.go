package coordinator

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/store/wal"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
)

var coordAddrSeq atomic.Uint64

// coordGroup is a replicated control-plane test harness: n coordinator
// members over inproc, each with its own MemFS-backed replicated log.
type coordGroup struct {
	t     *testing.T
	net   transport.Network
	ids   []string
	peers map[string]string
	fss   map[string]*wal.MemFS
	srvs  map[string]*Server
}

func newCoordGroup(t *testing.T, n int) *coordGroup {
	t.Helper()
	net, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	seq := coordAddrSeq.Add(1)
	g := &coordGroup{
		t:     t,
		net:   net,
		peers: map[string]string{},
		fss:   map[string]*wal.MemFS{},
		srvs:  map[string]*Server{},
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("coord-%d", i)
		g.ids = append(g.ids, id)
		g.peers[id] = fmt.Sprintf("coordrep-%d-%d", seq, i)
		g.fss[id] = wal.NewMemFS()
	}
	for _, id := range g.ids {
		g.start(id)
	}
	t.Cleanup(func() {
		for _, s := range g.srvs {
			s.Close()
		}
	})
	return g
}

func (g *coordGroup) start(id string) {
	g.t.Helper()
	s, err := Serve(Config{
		Network:          g.net,
		Addr:             g.peers[id],
		HeartbeatTimeout: 500 * time.Millisecond,
		DisableFailover:  true,
		Replication: &ReplicationConfig{
			ID:              id,
			Peers:           g.peers,
			Dir:             "coord",
			FS:              g.fss[id],
			ElectionTimeout: 60 * time.Millisecond,
		},
		Logf: g.t.Logf,
	})
	if err != nil {
		g.t.Fatalf("start %s: %v", id, err)
	}
	g.srvs[id] = s
}

func (g *coordGroup) stop(id string) {
	g.t.Helper()
	if s := g.srvs[id]; s != nil {
		s.Close()
		delete(g.srvs, id)
	}
}

// waitLeader blocks until exactly one live member leads, returning its ID.
func (g *coordGroup) waitLeader() string {
	g.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for id, s := range g.srvs {
			if s.IsLeader() {
				return id
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.t.Fatal("no coordinator leader elected")
	return ""
}

func (g *coordGroup) addrs() []string {
	var out []string
	for _, id := range g.ids {
		out = append(out, g.peers[id])
	}
	return out
}

func (g *coordGroup) client() *Client {
	g.t.Helper()
	c, err := DialCoordinators(g.net, g.addrs())
	if err != nil {
		g.t.Fatal(err)
	}
	g.t.Cleanup(func() { c.Close() })
	return c
}

// TestReplicatedSetMap proves a map installed through any member lands on
// every member: followers redirect the mutation to the leader, then serve
// the committed map from their own applied state.
func TestReplicatedSetMap(t *testing.T) {
	g := newCoordGroup(t, 3)
	g.waitLeader()
	c := g.client()
	epoch, err := c.SetMap(sampleMap(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first epoch = %d, want 1", epoch)
	}
	// Every member — including followers — serves the replicated map.
	for _, id := range g.ids {
		mc, err := DialCoordinator(g.net, g.peers[id])
		if err != nil {
			t.Fatalf("dial %s: %v", id, err)
		}
		m, err := mc.WatchMap(0, 2*time.Second)
		mc.Close()
		if err != nil {
			t.Fatalf("watch on %s: %v", id, err)
		}
		if m.Epoch != 1 || len(m.Shards) != 2 {
			t.Fatalf("%s serves epoch %d with %d shards", id, m.Epoch, len(m.Shards))
		}
	}
}

// TestReplicatedLeaderKill kills the control-plane leader mid-flight: the
// survivors elect a replacement, the multi-address client rotates onto it,
// and the map history (epochs, standby pool) continues without loss.
func TestReplicatedLeaderKill(t *testing.T) {
	g := newCoordGroup(t, 3)
	lead := g.waitLeader()
	c := g.client()
	if _, err := c.SetMap(sampleMap(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterStandby(topology.Node{
		ID: "spare-0", ControletAddr: "sp-c", DataletAddr: "sp-d",
	}); err != nil {
		t.Fatal(err)
	}

	g.stop(lead)
	next := g.waitLeader()
	if next == lead {
		t.Fatalf("dead member %s still leads", lead)
	}

	// The client rotates to the new leader; the map and the replicated
	// standby pool both survived the kill.
	deadline := time.Now().Add(5 * time.Second)
	var epoch uint64
	var err error
	for time.Now().Before(deadline) {
		if epoch, err = c.SetMap(sampleMap(1, 3)); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("SetMap after leader kill: %v", err)
	}
	if epoch < 2 {
		t.Fatalf("epoch regressed to %d after failover", epoch)
	}
	g.srvs[next].mu.Lock()
	nStandbys := len(g.srvs[next].standbys)
	g.srvs[next].mu.Unlock()
	if nStandbys != 1 {
		t.Fatalf("standby pool lost over failover: %d entries", nStandbys)
	}
}

// TestReplicatedFailoverClaimsStandby runs the data-plane failover path on
// a replicated control plane: FailNode removes the dead node and claims
// the standby in one replicated step, on whichever member currently leads.
func TestReplicatedFailoverClaimsStandby(t *testing.T) {
	g := newCoordGroup(t, 3)
	g.waitLeader()
	c := g.client()
	if _, err := c.SetMap(sampleMap(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterStandby(topology.Node{
		ID: "spare-0", ControletAddr: "sp-c", DataletAddr: "sp-d",
	}); err != nil {
		t.Fatal(err)
	}
	lead := g.waitLeader()
	if err := g.srvs[lead].FailNode("s0-r1"); err != nil {
		t.Fatal(err)
	}
	m, err := c.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Shards[0].Replicas {
		if n.ID == "s0-r1" {
			t.Fatal("failed node still in replicated map")
		}
	}
	// The claim is replicated: no member still holds the standby.
	for id, s := range g.srvs {
		s.mu.Lock()
		free := len(s.standbys)
		s.mu.Unlock()
		if free != 0 {
			// Recovery may return it on error (no real controlets here);
			// either way the claim itself must have emptied the pool at
			// install time on the leader. Followers lag only by apply.
			t.Logf("member %s still sees %d standbys (recovery returned it)", id, free)
		}
	}
}

// TestReplicatedRestartRecovers restarts every member from its durable
// log: the map must come back without any SetMap.
func TestReplicatedRestartRecovers(t *testing.T) {
	g := newCoordGroup(t, 3)
	g.waitLeader()
	c := g.client()
	epoch, err := c.SetMap(sampleMap(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.ids {
		g.stop(id)
	}
	for _, id := range g.ids {
		g.start(id)
	}
	g.waitLeader()
	deadline := time.Now().Add(5 * time.Second)
	var m *topology.Map
	for time.Now().Before(deadline) {
		if m, err = c.GetMap(); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("GetMap after full restart: %v", err)
	}
	if m.Epoch < epoch || len(m.Shards) != 2 {
		t.Fatalf("map regressed after restart: epoch %d (was %d), %d shards", m.Epoch, epoch, len(m.Shards))
	}
}

// TestFollowerRejectsMutations pins the redirect contract: a follower
// answers reads but bounces mutations with the leader's address.
func TestFollowerRejectsMutations(t *testing.T) {
	g := newCoordGroup(t, 3)
	lead := g.waitLeader()
	c := g.client()
	if _, err := c.SetMap(sampleMap(1, 2)); err != nil {
		t.Fatal(err)
	}
	for _, id := range g.ids {
		if id == lead {
			continue
		}
		if g.srvs[id] == nil {
			continue
		}
		if err := g.srvs[id].leaderCheck(); err == nil {
			t.Fatalf("follower %s accepts mutations", id)
		}
		// Reads still answer locally.
		fc, err := DialCoordinator(g.net, g.peers[id])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fc.WatchMap(0, 2*time.Second); err != nil {
			t.Fatalf("follower %s refuses reads: %v", id, err)
		}
		fc.Close()
	}
}

// TestClientBackoff pins the rotation backoff: exponential growth from the
// base, jittered into [d/2, d], hard-capped at clientBackoffMax.
func TestClientBackoff(t *testing.T) {
	for n := 0; n < 12; n++ {
		want := clientBackoffBase
		for i := 0; i < n && want < clientBackoffMax; i++ {
			want *= 2
		}
		if want > clientBackoffMax {
			want = clientBackoffMax
		}
		for trial := 0; trial < 32; trial++ {
			d := clientBackoff(n)
			if d < want/2 || d > want {
				t.Fatalf("clientBackoff(%d) = %v outside [%v, %v]", n, d, want/2, want)
			}
		}
	}
	if clientBackoff(40) > clientBackoffMax {
		t.Fatal("backoff exceeds cap at high attempt counts")
	}
}

// TestSplitAddrs pins the comma-list parsing every config surface uses.
func TestSplitAddrs(t *testing.T) {
	got := SplitAddrs(" a:1, b:2,,c:3 ")
	if len(got) != 3 || got[0] != "a:1" || got[1] != "b:2" || got[2] != "c:3" {
		t.Fatalf("SplitAddrs = %q", got)
	}
	if got := SplitAddrs(""); got != nil {
		t.Fatalf("SplitAddrs(empty) = %q", got)
	}
}

// TestCloseAbortsWatch pins the Close semantics the data-plane client's
// watch teardown depends on: closing a Client mid-long-poll must fail the
// in-flight call promptly with ErrClientClosed instead of the rotation
// loop re-dialing and sitting out a fresh poll window.
func TestCloseAbortsWatch(t *testing.T) {
	g := newCoordGroup(t, 1)
	g.waitLeader()
	c := g.client()
	if _, err := c.SetMap(sampleMap(1, 1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// No epoch-2 map is ever installed, so absent the abort this
		// poll holds for its full window.
		_, err := c.WatchMap(1, 8*time.Second)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the poll reach the server
	start := time.Now()
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("watch survived client close")
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("close took %v to abort the watch", d)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("watch still blocked after close")
	}
}
