package coordinator

import (
	"errors"
	"fmt"
	"time"

	"bespokv/internal/topology"
)

// failureDetector periodically sweeps heartbeat timestamps and fails over
// nodes that went silent.
func (s *Server) failureDetector() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			s.sweep()
		}
	}
}

func (s *Server) sweep() {
	// In replicated mode only the leader receives heartbeats; a follower
	// sweeping its never-refreshed lastSeen view would fail everything.
	if s.rsm != nil && !s.rsm.IsLeader() {
		return
	}
	s.mu.Lock()
	if s.cur == nil {
		s.mu.Unlock()
		return
	}
	if s.cur.Transition != nil || s.migrating != nil {
		// Failover, transition and migration machinery must not
		// interleave: a node removed from the old shards mid-switch would
		// leave the new shards referencing it, and a mid-migration
		// failover would invalidate the plan's replica sets. Defer
		// detection until the operation completes (both run in seconds);
		// truly dead nodes stay silent and are swept on the next pass.
		s.mu.Unlock()
		return
	}
	now := time.Now()
	var dead []string
	for _, shard := range s.cur.Shards {
		for _, n := range shard.Replicas {
			if s.suspended[n.ID] {
				continue
			}
			seen, ok := s.lastSeen[n.ID]
			if !ok || now.Sub(seen) > s.cfg.HeartbeatTimeout {
				dead = append(dead, n.ID)
				s.suspended[n.ID] = true
			}
		}
	}
	s.mu.Unlock()
	for _, id := range dead {
		s.cfg.Logf("coordinator: node %s missed heartbeats, failing over", id)
		if err := s.FailNode(id); err != nil {
			s.cfg.Logf("coordinator: failover of %s: %v", id, err)
		}
	}
}

// FailNode removes a node from its shard immediately (chain repair /
// master promotion happen implicitly through replica order), then — if a
// standby pair is registered — recovers the shard's data onto the standby
// and appends it as the new tail. Exposed for tests and the kill-based
// failover experiments.
func (s *Server) FailNode(nodeID string) error {
	if err := s.leaderCheck(); err != nil {
		return err
	}
	start := time.Now()
	s.proposeMu.Lock()
	s.mu.Lock()
	if s.cur == nil {
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return errors.New("coordinator: no map installed")
	}
	if s.cur.Transition != nil {
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return errors.New("coordinator: transition in flight; failover deferred")
	}
	if s.migrating != nil {
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return errors.New("coordinator: migration in flight; failover deferred")
	}
	m := s.cur.Clone()
	s.mu.Unlock()
	shardIdx := -1
	for si := range m.Shards {
		reps := m.Shards[si].Replicas
		for ri, n := range reps {
			if n.ID != nodeID {
				continue
			}
			m.Shards[si].Replicas = append(reps[:ri:ri], reps[ri+1:]...)
			shardIdx = si
		}
	}
	if shardIdx == -1 {
		s.proposeMu.Unlock()
		return fmt.Errorf("coordinator: node %s not in map", nodeID)
	}
	if len(m.Shards[shardIdx].Replicas) == 0 {
		s.proposeMu.Unlock()
		return fmt.Errorf("coordinator: node %s was the last replica of %s", nodeID, m.Shards[shardIdx].ID)
	}
	m.Epoch++
	// The install claims the standby in the same replicated step, so a
	// failed-over leader can never hand the same standby out twice.
	standby, err := s.installMap(m, true)
	if err != nil {
		s.proposeMu.Unlock()
		return err
	}
	s.mu.Lock()
	s.suspended[nodeID] = true
	s.mu.Unlock()
	s.proposeMu.Unlock()
	shardID := m.Shards[shardIdx].ID
	source := m.Shards[shardIdx].Replicas[len(m.Shards[shardIdx].Replicas)-1]

	s.pushMap()
	coordFailovers.Inc()
	coordFailoverLat.Observe(time.Since(start))
	if standby == nil {
		return nil
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		recStart := time.Now()
		if _, err := s.recoverOnto(*standby, source, shardID); err != nil {
			coordRecoveryFails.Inc()
			s.cfg.Logf("coordinator: recovery of %s onto %s: %v", shardID, standby.ID, err)
			s.returnStandby(*standby)
			return
		}
		coordRecoveries.Inc()
		coordRecoveryLat.Observe(time.Since(recStart))
	}()
	return nil
}

// RejoinReply reports how a joining node caught up: how many records the
// backfill transferred and whether it was an incremental delta (a
// restarted node pulling only what it missed) rather than a full export.
type RejoinReply struct {
	Pairs int  `json:"pairs"`
	Delta bool `json:"delta"`
}

// recoverOnto performs the two-phase standby join. Phase 1 appends the
// standby to the shard marked Recovering: from that epoch on, every new
// write traverses it (chain tail position / EC propagation target), so it
// can miss nothing going forward, while reads skip it. Phase 2 backfills
// history by pulling a surviving datalet's snapshot — last-writer-wins
// versioning makes the concurrent backfill and live writes commute — and
// then clears the Recovering mark, moving reads to the new tail. Without
// phase 1 first, a write acknowledged between the backfill snapshot and
// the join would be missing from the new read tail: an acked-write loss
// under strong consistency (caught by cluster.TestChaosKillsUnderMSSC).
// The backfill itself may be incremental: a restarted node's controlet
// asks the source for a delta above its recovered watermark and falls
// back to the full export only when the source cannot serve one.
func (s *Server) recoverOnto(standby, source topology.Node, shardID string) (RejoinReply, error) {
	var reply RejoinReply
	// Phase 1: join for writes, hidden from reads.
	joining := standby
	joining.Recovering = true
	if err := s.mutateShard(shardID, func(shard *topology.Shard) error {
		shard.Replicas = append(shard.Replicas, joining)
		return nil
	}); err != nil {
		return reply, err
	}
	s.mu.Lock()
	s.lastSeen[standby.ID] = time.Now()
	delete(s.suspended, standby.ID)
	cur := s.cur.Clone()
	s.mu.Unlock()
	s.pushMap()

	// Barrier: hand the new chain to every surviving member synchronously
	// and wait for their in-flight writes to finish, so no write acked
	// under the OLD chain can still be racing the backfill snapshot.
	for si := range cur.Shards {
		if cur.Shards[si].ID != shardID {
			continue
		}
		for _, n := range cur.Shards[si].Replicas {
			if n.ID == standby.ID || n.ControlAddr == "" {
				continue
			}
			ctl, err := s.dialCtl(n.ControlAddr)
			if err != nil {
				continue // node likely dead; it cannot ack writes either
			}
			_ = ctl.Call("UpdateMap", cur, nil)
			_ = ctl.Call("Quiesce", struct{}{}, nil)
			ctl.Close()
		}
	}

	// Phase 2: backfill, then expose to reads.
	if standby.ControlAddr != "" {
		ctl, err := s.dialCtl(standby.ControlAddr)
		if err != nil {
			return reply, err
		}
		defer ctl.Close()
		args := struct {
			SourceDatalet string `json:"source"`
			Codec         string `json:"codec,omitempty"`
		}{SourceDatalet: source.DataletAddr, Codec: source.DataletCodec}
		if err := ctl.Call("Recover", args, &reply); err != nil {
			// Leave the shard functional: drop the half-joined node.
			_ = s.mutateShard(shardID, func(shard *topology.Shard) error {
				kept := shard.Replicas[:0]
				for _, n := range shard.Replicas {
					if n.ID != standby.ID {
						kept = append(kept, n)
					}
				}
				shard.Replicas = kept
				return nil
			})
			s.pushMap()
			return reply, err
		}
	}
	if err := s.mutateShard(shardID, func(shard *topology.Shard) error {
		for i := range shard.Replicas {
			if shard.Replicas[i].ID == standby.ID {
				shard.Replicas[i].Recovering = false
			}
		}
		return nil
	}); err != nil {
		return reply, err
	}
	s.pushMap()
	s.cfg.Logf("coordinator: %s joined shard %s after recovering %d records (delta=%v)",
		standby.ID, shardID, reply.Pairs, reply.Delta)
	return reply, nil
}

// RejoinArgs asks the coordinator to re-admit a restarted node to its
// shard. Node carries the node's fresh addresses (a restart re-listens).
type RejoinArgs struct {
	Node    topology.Node `json:"node"`
	ShardID string        `json:"shard"`
}

// handleRejoin re-admits a node that crashed and restarted with durable
// state. Any stale map entry for the node (present when the failure
// detector had not yet swept it) is dropped first; the node then runs the
// same two-phase join as a standby promotion, except its controlet
// backfills incrementally from its recovered watermark when it can.
func (s *Server) handleRejoin(args RejoinArgs) (RejoinReply, error) {
	if err := s.leaderCheck(); err != nil {
		return RejoinReply{}, err
	}
	s.proposeMu.Lock()
	s.mu.Lock()
	if s.cur == nil {
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return RejoinReply{}, errors.New("coordinator: no map installed")
	}
	if s.cur.Transition != nil || s.migrating != nil {
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return RejoinReply{}, errors.New("coordinator: transition or migration in flight; rejoin deferred")
	}
	m := s.cur.Clone()
	s.mu.Unlock()
	shardIdx := -1
	for si := range m.Shards {
		if m.Shards[si].ID == args.ShardID {
			shardIdx = si
		}
	}
	if shardIdx == -1 {
		s.proposeMu.Unlock()
		return RejoinReply{}, fmt.Errorf("coordinator: unknown shard %s", args.ShardID)
	}
	// Drop the stale pre-crash entry and pick a backfill source among the
	// survivors (prefer the tail, skipping any still-recovering node).
	reps := m.Shards[shardIdx].Replicas[:0]
	for _, n := range m.Shards[shardIdx].Replicas {
		if n.ID != args.Node.ID {
			reps = append(reps, n)
		}
	}
	m.Shards[shardIdx].Replicas = reps
	var source *topology.Node
	for i := len(reps) - 1; i >= 0; i-- {
		if !reps[i].Recovering {
			source = &reps[i]
			break
		}
	}
	if source == nil {
		s.proposeMu.Unlock()
		return RejoinReply{}, fmt.Errorf("coordinator: shard %s has no live source to rejoin from", args.ShardID)
	}
	src := *source
	m.Epoch++
	if _, err := s.installMap(m, false); err != nil {
		s.proposeMu.Unlock()
		return RejoinReply{}, err
	}
	s.mu.Lock()
	delete(s.suspended, args.Node.ID)
	s.lastSeen[args.Node.ID] = time.Now()
	s.mu.Unlock()
	s.proposeMu.Unlock()
	s.pushMap()
	return s.recoverOnto(args.Node, src, args.ShardID)
}

// mutateShard applies fn to one shard, bumping the epoch and installing
// the result (replicated in RSM mode).
func (s *Server) mutateShard(shardID string, fn func(*topology.Shard) error) error {
	s.proposeMu.Lock()
	defer s.proposeMu.Unlock()
	s.mu.Lock()
	if s.cur == nil {
		s.mu.Unlock()
		return errors.New("coordinator: no map installed")
	}
	m := s.cur.Clone()
	s.mu.Unlock()
	for si := range m.Shards {
		if m.Shards[si].ID != shardID {
			continue
		}
		if err := fn(&m.Shards[si]); err != nil {
			return err
		}
		m.Epoch++
		_, err := s.installMap(m, false)
		return err
	}
	return fmt.Errorf("coordinator: unknown shard %s", shardID)
}

// pushMap best-effort delivers the current map to every controlet control
// endpoint (old-mode and, mid-transition, new-mode controlets).
func (s *Server) pushMap() {
	s.mu.Lock()
	if s.cur == nil {
		s.mu.Unlock()
		return
	}
	m := s.cur.Clone()
	s.mu.Unlock()
	targets := map[string]bool{}
	for _, shard := range m.Shards {
		for _, n := range shard.Replicas {
			if n.ControlAddr != "" {
				targets[n.ControlAddr] = true
			}
		}
	}
	if m.Transition != nil {
		for _, shard := range m.Transition.NewShards {
			for _, n := range shard.Replicas {
				if n.ControlAddr != "" {
					targets[n.ControlAddr] = true
				}
			}
		}
	}
	coordMapPushes.Inc()
	for addr := range targets {
		addr := addr
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ctl, err := s.dialCtl(addr)
			if err != nil {
				return
			}
			defer ctl.Close()
			_ = ctl.Call("UpdateMap", m, nil)
		}()
	}
}

// handleBeginTransition installs the transition descriptor and starts the
// drain protocol: old controlets flush pending propagation and forward new
// writes to their new-mode replacements; when every old controlet reports
// drained, the coordinator completes the switch automatically.
func (s *Server) handleBeginTransition(args TransitionArgs) (HeartbeatReply, error) {
	if !args.To.Valid() {
		return HeartbeatReply{}, fmt.Errorf("coordinator: invalid target mode %s", args.To)
	}
	if err := s.leaderCheck(); err != nil {
		return HeartbeatReply{}, err
	}
	s.proposeMu.Lock()
	s.mu.Lock()
	if s.cur == nil {
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return HeartbeatReply{}, errors.New("coordinator: no map installed")
	}
	if s.cur.Transition != nil {
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return HeartbeatReply{}, errors.New("coordinator: transition already in flight")
	}
	if s.migrating != nil {
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return HeartbeatReply{}, errors.New("coordinator: migration in flight; transition deferred")
	}
	if len(args.NewShards) != len(s.cur.Shards) {
		n := len(s.cur.Shards)
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return HeartbeatReply{}, fmt.Errorf("coordinator: %d new shards for %d existing",
			len(args.NewShards), n)
	}
	m := s.cur.Clone()
	s.mu.Unlock()
	m.Transition = &topology.Transition{To: args.To, NewShards: args.NewShards}
	m.Epoch++
	if _, err := s.installMap(m, false); err != nil {
		s.proposeMu.Unlock()
		return HeartbeatReply{}, err
	}
	s.mu.Lock()
	// New-mode nodes begin heartbeating now.
	now := time.Now()
	for _, shard := range args.NewShards {
		for _, n := range shard.Replicas {
			s.lastSeen[n.ID] = now
		}
	}
	s.mu.Unlock()
	s.proposeMu.Unlock()
	epoch := m.Epoch
	drains := make([]topology.Node, 0, len(m.Shards))
	for _, shard := range m.Shards {
		drains = append(drains, shard.Replicas...)
	}
	s.pushMap()

	transitionMap := m.Clone()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.drainTransition(transitionMap, drains)
	}()
	return HeartbeatReply{Epoch: epoch}, nil
}

// drainTransition pushes the Drain command to every old-mode controlet and
// then completes the transition. It runs on the goroutine that owns the
// transition: the begin handler's, or a freshly elected leader resuming
// one a dead leader left in flight.
func (s *Server) drainTransition(transitionMap *topology.Map, drains []topology.Node) {
	for _, n := range drains {
		if n.ControlAddr == "" {
			continue
		}
		ctl, err := s.dialCtl(n.ControlAddr)
		if err != nil {
			s.cfg.Logf("coordinator: drain dial %s: %v", n.ID, err)
			continue
		}
		// The transition map rides in the Drain call: the broadcast
		// push is asynchronous, and a controlet must know its
		// forward target before it starts diverting writes.
		if err := ctl.Call("Drain", transitionMap, nil); err != nil {
			s.cfg.Logf("coordinator: drain %s: %v", n.ID, err)
		}
		ctl.Close()
	}
	if _, err := s.handleCompleteTransition(struct{}{}); err != nil {
		s.cfg.Logf("coordinator: complete transition: %v", err)
	}
}

// handleCompleteTransition promotes the new-mode shards to current.
func (s *Server) handleCompleteTransition(struct{}) (HeartbeatReply, error) {
	if err := s.leaderCheck(); err != nil {
		return HeartbeatReply{}, err
	}
	s.proposeMu.Lock()
	s.mu.Lock()
	if s.cur == nil || s.cur.Transition == nil {
		s.mu.Unlock()
		s.proposeMu.Unlock()
		return HeartbeatReply{}, errors.New("coordinator: no transition in flight")
	}
	m := s.cur.Clone()
	s.mu.Unlock()
	m.Mode = m.Transition.To
	m.Shards = m.Transition.NewShards
	m.Transition = nil
	m.Epoch++
	_, err := s.installMap(m, false)
	s.proposeMu.Unlock()
	if err != nil {
		return HeartbeatReply{}, err
	}
	s.pushMap()
	return HeartbeatReply{Epoch: m.Epoch}, nil
}
