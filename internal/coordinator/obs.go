package coordinator

import (
	"bespokv/internal/metrics"
)

// Control-plane metrics: heartbeat arrivals, failover phases and epoch
// history. All of these are control-path (per-heartbeat or rarer), so the
// labeled registry lookups at init are plenty.
var (
	coordHeartbeats = metrics.Default.Counter("bespokv_coordinator_heartbeats_total")
	coordFailovers  = metrics.Default.Counter("bespokv_coordinator_failovers_total")
	// Failover repair phase: FailNode from detection to the repaired map
	// being pushed (chain repair / master promotion).
	coordFailoverLat = metrics.Default.Histogram("bespokv_coordinator_failover_seconds")
	// Standby recovery phase: recoverOnto from join to read-exposure.
	coordRecoveries    = metrics.Default.Counter("bespokv_coordinator_recoveries_total")
	coordRecoveryFails = metrics.Default.Counter("bespokv_coordinator_recovery_failures_total")
	coordRecoveryLat   = metrics.Default.Histogram("bespokv_coordinator_recovery_seconds")
	coordMapPushes     = metrics.Default.Counter("bespokv_coordinator_map_pushes_total")
	coordEpoch         = metrics.Default.Gauge("bespokv_coordinator_epoch")
	// Elastic membership: rebalance runs (join/drain/rebalance) and their
	// end-to-end latency from plan to GC.
	coordRebalances     = metrics.Default.Counter("bespokv_coordinator_rebalances_total")
	coordRebalanceFails = metrics.Default.Counter("bespokv_coordinator_rebalance_failures_total")
	coordRebalanceLat   = metrics.Default.Histogram("bespokv_coordinator_rebalance_seconds")
)

// Status reports the coordinator's cluster view for /statusz.
func (s *Server) Status() any {
	// Gather replication state before taking s.mu: the RSM node applies
	// committed entries under its own lock and then takes s.mu, so the
	// reverse order here would invert the lock hierarchy.
	rsmStatus := s.RSMStatus()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := map[string]any{
		"role":       "coordinator",
		"epoch":      uint64(0),
		"shards":     0,
		"nodes":      0,
		"standbys":   len(s.standbys),
		"suspended":  len(s.suspended),
		"transition": false,
		"uptime_sec": int64(metrics.ProcessUptime().Seconds()),
	}
	if s.cur != nil {
		st["epoch"] = s.cur.Epoch
		st["mode"] = s.cur.Mode.String()
		st["shards"] = len(s.cur.Shards)
		nodes := 0
		for _, shard := range s.cur.Shards {
			nodes += len(shard.Replicas)
		}
		st["nodes"] = nodes
		st["transition"] = s.cur.Transition != nil
	}
	if s.migrating != nil {
		st["migration"] = *s.migrating
	} else if s.lastRun != nil {
		st["last_migration"] = *s.lastRun
	}
	if rsmStatus != nil {
		st["rsm"] = *rsmStatus
	}
	return st
}
