// Package bench implements the experiment harness that regenerates every
// table and figure in the paper's evaluation (§VIII, Appendices D and E).
// Each experiment builds its clusters through internal/cluster, drives
// them with internal/workload, measures with internal/metrics, and prints
// rows in a uniform "figure series x y" format. The cmd/bespokv-bench
// binary runs experiments at paper-like (scaled) parameters; the
// repository-root bench_test.go wraps the same functions in testing.B.
//
// Absolute numbers will not match the paper (its testbed was a 48-node GCE
// cluster and a 12-machine 10 GbE testbed; this harness runs every node in
// one process), but the comparative shapes — who wins, by what factor,
// where the crossovers sit — are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/cluster"
	"bespokv/internal/datalet"
	"bespokv/internal/metrics"
	"bespokv/internal/wire"
	"bespokv/internal/workload"
)

// Params scale an experiment run.
type Params struct {
	// Out receives result rows.
	Out io.Writer
	// MeasureFor is the measurement window per data point.
	MeasureFor time.Duration
	// Clients is the number of concurrent load generators per point.
	Clients int
	// Keys is the keyspace size; Preload keys are inserted first.
	Keys    int
	Preload int
	// NodeCounts is the cluster-size sweep for the scalability figures
	// (total nodes; shards = nodes/3 at 3 replicas).
	NodeCounts []int
	// NetworkName is "inproc" (default) or "tcp".
	NetworkName string
}

// Quick returns parameters for smoke runs (testing.B, CI).
func Quick(out io.Writer) Params {
	return Params{
		Out:        out,
		MeasureFor: 300 * time.Millisecond,
		Clients:    4,
		Keys:       5000,
		Preload:    2000,
		NodeCounts: []int{3, 6},
	}
}

// Full returns the paper-shaped parameters (scaled to one box).
func Full(out io.Writer) Params {
	return Params{
		Out:        out,
		MeasureFor: 2 * time.Second,
		Clients:    8,
		Keys:       100000,
		Preload:    50000,
		NodeCounts: []int{3, 6, 12, 24},
	}
}

func (p *Params) defaults() {
	if p.MeasureFor <= 0 {
		p.MeasureFor = time.Second
	}
	if p.Clients <= 0 {
		p.Clients = 4
	}
	if p.Keys <= 0 {
		p.Keys = 10000
	}
	if p.Preload < 0 {
		p.Preload = 0
	}
	if len(p.NodeCounts) == 0 {
		p.NodeCounts = []int{3, 6}
	}
	if p.NetworkName == "" {
		p.NetworkName = "inproc"
	}
}

// row prints one result row.
func (p *Params) row(figure, series string, x any, kqps float64, extra string) {
	if p.Out == nil {
		return
	}
	if extra != "" {
		extra = "  " + extra
	}
	fmt.Fprintf(p.Out, "%-8s %-28s x=%-10v kqps=%8.1f%s\n", figure, series, x, kqps, extra)
}

func (p *Params) note(format string, args ...any) {
	if p.Out == nil {
		return
	}
	fmt.Fprintf(p.Out, format+"\n", args...)
}

// KV abstracts the store under test so the same load loop drives bespokv
// clusters and the baseline systems.
type KV interface {
	Put(key, value []byte) error
	Get(key []byte) error
	Scan(start, end []byte, limit int) error
	Close() error
}

// bespoKV adapts client.Client.
type bespoKV struct{ c *client.Client }

func (b bespoKV) Put(key, value []byte) error { return b.c.Put("", key, value) }
func (b bespoKV) Get(key []byte) error {
	_, _, err := b.c.Get("", key)
	return err
}
func (b bespoKV) Scan(start, end []byte, limit int) error {
	_, err := b.c.GetRange("", start, end, limit)
	return err
}
func (b bespoKV) Close() error { return b.c.Close() }

// NewBespoKV wraps a cluster client.
func NewBespoKV(c *cluster.Cluster) (KV, error) {
	cli, err := c.Client()
	if err != nil {
		return nil, err
	}
	return bespoKV{c: cli}, nil
}

// rawKV adapts a raw wire-protocol endpoint (baselines).
type rawKV struct{ pool *datalet.Pool }

// NewRawKV opens a pooled wire client to addr.
func NewRawKV(c *cluster.Cluster, addr string, conns int) (KV, error) {
	pool, err := datalet.DialPool(c.Net, addr, c.Codec, conns)
	if err != nil {
		return nil, err
	}
	return rawKV{pool: pool}, nil
}

func (r rawKV) do(req *wire.Request) error {
	var resp wire.Response
	if err := r.pool.Do(req, &resp); err != nil {
		return err
	}
	return resp.ErrValue()
}

func (r rawKV) Put(key, value []byte) error {
	return r.do(&wire.Request{Op: wire.OpPut, Key: key, Value: value})
}

func (r rawKV) Get(key []byte) error {
	return r.do(&wire.Request{Op: wire.OpGet, Key: key})
}

func (r rawKV) Scan(start, end []byte, limit int) error {
	return r.do(&wire.Request{Op: wire.OpScan, Key: start, EndKey: end, Limit: uint32(limit)})
}

func (r rawKV) Close() error { return r.pool.Close() }

// Result is one measured data point.
type Result struct {
	Ops     int64
	Errors  int64
	KQPS    float64
	Latency *metrics.Histogram
}

// Preload inserts n sequential keys through kv.
func Preload(kv KV, n int) error {
	val := make([]byte, 32)
	for i := 0; i < n; i++ {
		if err := kv.Put(workload.Key(16, i), val); err != nil {
			return fmt.Errorf("preload key %d: %w", i, err)
		}
	}
	return nil
}

// RunLoad drives kvs (one per client goroutine, round-robin) with ops from
// per-client generators for d and returns the aggregate result. gens must
// have the same length as the client count.
func RunLoad(kvs []KV, gens []*workload.Generator, d time.Duration) Result {
	var (
		wg     sync.WaitGroup
		hist   metrics.Histogram
		ops    int64
		errs   int64
		opsMu  sync.Mutex
		stopCh = make(chan struct{})
	)
	timer := time.AfterFunc(d, func() { close(stopCh) })
	defer timer.Stop()
	// Expose the live load histogram on /metrics so a scrape during a run
	// sees the same data the final report prints.
	metrics.Default.SetHistogram("bespokv_bench_op_seconds", &hist)
	start := time.Now()
	for i := range gens {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kv := kvs[i%len(kvs)]
			gen := gens[i]
			localOps, localErrs := int64(0), int64(0)
			for {
				select {
				case <-stopCh:
					opsMu.Lock()
					ops += localOps
					errs += localErrs
					opsMu.Unlock()
					return
				default:
				}
				op := gen.Next()
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.Get:
					err = kv.Get(op.Key)
				case workload.Put:
					err = kv.Put(op.Key, op.Value)
				case workload.Scan:
					err = kv.Scan(op.Key, op.End, op.Limit)
				}
				hist.Observe(time.Since(t0))
				if err != nil {
					localErrs++
				} else {
					localOps++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return Result{
		Ops:     ops,
		Errors:  errs,
		KQPS:    float64(ops) / elapsed / 1000,
		Latency: &hist,
	}
}

// makeGens builds one generator per client with split seeds.
func makeGens(n int, dist func() workload.KeyDist, mix workload.Mix, seed int64) ([]*workload.Generator, error) {
	gens := make([]*workload.Generator, n)
	for i := range gens {
		g, err := workload.NewGenerator(workload.Options{
			Dist: dist(),
			Mix:  mix,
			Seed: workload.SplitRand(seed, i),
		})
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	return gens, nil
}

// measure is the common "open K clients, preload, run mix, report" path
// against a bespokv cluster.
func (p *Params) measure(c *cluster.Cluster, dist func() workload.KeyDist, mix workload.Mix) (Result, error) {
	return p.measureWith(c, dist, mix, 0)
}

// measureWith is measure with an explicit value size (0 = default 32 B).
func (p *Params) measureWith(c *cluster.Cluster, dist func() workload.KeyDist, mix workload.Mix, valueSize int) (Result, error) {
	kvs := make([]KV, p.Clients)
	for i := range kvs {
		kv, err := NewBespoKV(c)
		if err != nil {
			return Result{}, err
		}
		kvs[i] = kv
	}
	defer func() {
		for _, kv := range kvs {
			kv.Close()
		}
	}()
	if err := Preload(kvs[0], p.Preload); err != nil {
		return Result{}, err
	}
	gens := make([]*workload.Generator, p.Clients)
	for i := range gens {
		g, err := workload.NewGenerator(workload.Options{
			Dist:      dist(),
			Mix:       mix,
			ValueSize: valueSize,
			Seed:      workload.SplitRand(42, i),
		})
		if err != nil {
			return Result{}, err
		}
		gens[i] = g
	}
	return RunLoad(kvs, gens, p.MeasureFor), nil
}

// uniformDist and zipfDist are the two key popularity shapes the paper
// sweeps.
func (p *Params) uniformDist() func() workload.KeyDist {
	keys := p.Keys
	return func() workload.KeyDist { return workload.Uniform{Keys: keys} }
}

func (p *Params) zipfDist() func() workload.KeyDist {
	keys := p.Keys
	z := workload.NewZipfian(keys) // share the precomputed tables
	return func() workload.KeyDist { return z }
}
