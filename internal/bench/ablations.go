package bench

import (
	"fmt"

	"bespokv/internal/cluster"
	"bespokv/internal/store/lsm"
	"bespokv/internal/topology"
	"bespokv/internal/workload"
)

// Ablations quantifies the design choices DESIGN.md calls out, beyond the
// paper's figures:
//
//  1. replication factor: chain length vs write throughput under MS+SC
//     (every extra link adds a synchronous hop) and under MS+EC (the
//     master's cost is almost flat — propagation is off the ack path);
//  2. write-ordering mechanism for AA: DLM locking (AA+SC) vs shared-log
//     sequencing (AA+EC) on a write-heavy load — the log batches ordering
//     into one append, the lock pays two round trips per op;
//  3. LSM memtable size vs write amplification: smaller memtables flush
//     and compact more, which is exactly the knob the "cassandra" baseline
//     profile turns;
//  4. consistent-hash virtual nodes vs load balance: why the ring uses
//     160 vnodes rather than 1 or 16.
func Ablations(p Params) error {
	p.defaults()
	if err := p.ablateReplicationFactor(); err != nil {
		return err
	}
	if err := p.ablateAAOrdering(); err != nil {
		return err
	}
	if err := p.ablateLSMMemtable(); err != nil {
		return err
	}
	return p.ablateRingVnodes()
}

func (p *Params) ablateReplicationFactor() error {
	for _, mode := range []topology.Mode{msSC, msEC} {
		for _, replicas := range []int{1, 2, 3, 5} {
			c, err := cluster.Start(cluster.Options{
				NetworkName:     p.NetworkName,
				Shards:          1,
				Replicas:        replicas,
				Mode:            mode,
				Engine:          "ht",
				DisableFailover: true,
			})
			if err != nil {
				return err
			}
			res, err := p.measure(c, p.uniformDist(), workload.Mix{PutPct: 100})
			c.Close()
			if err != nil {
				return err
			}
			p.row("ablate", fmt.Sprintf("replication/%s", mode), replicas, res.KQPS,
				fmt.Sprintf("lat=%v", res.Latency.Mean().Round(1000)))
		}
	}
	return nil
}

func (p *Params) ablateAAOrdering() error {
	for _, mode := range []topology.Mode{aaSC, aaEC} {
		c, err := cluster.Start(cluster.Options{
			NetworkName:     p.NetworkName,
			Shards:          1,
			Replicas:        3,
			Mode:            mode,
			Engine:          "ht",
			DisableFailover: true,
		})
		if err != nil {
			return err
		}
		res, err := p.measure(c, p.zipfDist(), workload.Mix{PutPct: 100})
		c.Close()
		if err != nil {
			return err
		}
		mech := "shared-log"
		if mode.Consistency == topology.Strong {
			mech = "dlm-lock"
		}
		p.row("ablate", "aa-ordering/"+mech, mode.String(), res.KQPS,
			fmt.Sprintf("lat=%v", res.Latency.Mean().Round(1000)))
	}
	return nil
}

func (p *Params) ablateLSMMemtable() error {
	const writes = 20000
	val := make([]byte, 128)
	for _, memtableKiB := range []int{64, 256, 1024, 4096} {
		s, err := lsm.New(lsm.Options{
			MemtableBytes:  int64(memtableKiB) << 10,
			SyncCompaction: true,
		})
		if err != nil {
			return err
		}
		var logical int64
		for i := 0; i < writes; i++ {
			k := workload.Key(16, i%4096)
			if _, err := s.Put(k, val, 0); err != nil {
				s.Close()
				return err
			}
			logical += int64(len(k) + len(val))
		}
		s.Flush()
		st := s.Stats()
		amp := float64(st.CompactionBytes) / float64(logical)
		p.row("ablate", "lsm-memtable-kib", memtableKiB, 0,
			fmt.Sprintf("write-amp=%.2fx flushes=%d compactions=%d", amp, st.Flushes, st.Compactions))
		s.Close()
	}
	return nil
}

func (p *Params) ablateRingVnodes() error {
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard-%d", i)
	}
	const draws = 100000
	for _, vnodes := range []int{1, 16, 160, 640} {
		ring := topology.BuildRingFromIDs(ids, vnodes)
		counts := make([]int, len(ids))
		for i := 0; i < draws; i++ {
			counts[ring.Lookup(workload.Key(16, i))]++
		}
		minC, maxC := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		imbalance := float64(maxC) / (float64(draws) / float64(len(ids)))
		p.row("ablate", "ring-vnodes", vnodes, 0,
			fmt.Sprintf("hottest-shard=%.2fx-fair min=%d max=%d", imbalance, minC, maxC))
	}
	return nil
}
