package bench

import (
	"fmt"
	"sync"
	"time"

	"bespokv/internal/cluster"
	"bespokv/internal/metrics"
	"bespokv/internal/topology"
	"bespokv/internal/workload"
)

// runTimeline drives kvs with gens until stop closes, recording each
// successful completion on tl.
func runTimeline(kvs []KV, gens []*workload.Generator, tl *metrics.Timeline, stop <-chan struct{}) {
	var wg sync.WaitGroup
	for i := range gens {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kv := kvs[i%len(kvs)]
			gen := gens[i]
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				var err error
				switch op.Kind {
				case workload.Get:
					err = kv.Get(op.Key)
				case workload.Put:
					err = kv.Put(op.Key, op.Value)
				case workload.Scan:
					err = kv.Scan(op.Key, op.End, op.Limit)
				}
				if err == nil {
					tl.Record()
				}
			}
		}(i)
	}
	wg.Wait()
}

func (p *Params) printTimeline(figure, series string, tl *metrics.Timeline) {
	marks := tl.Marks()
	for label, at := range marks {
		p.note("%-8s %-28s mark %s at t=%.2fs", figure, series, label, at.Seconds())
	}
	for _, pt := range tl.Series() {
		p.row(figure, series, fmt.Sprintf("t=%.2fs", pt.At.Seconds()), pt.QPS/1000, "")
	}
}

// Fig10Transitions regenerates Fig. 10: throughput over time while the
// cluster transitions live from MS+EC to each of MS+SC, AA+EC and AA+SC
// under a zipfian 95% GET load on 3 shards. Expected shape: steady
// throughput, a dip when clients re-route to the new controlets, recovery
// within a few seconds, and zero downtime (no window of total failure).
func Fig10Transitions(p Params) error {
	p.defaults()
	// The timeline runs 3× the measurement window: before / during /
	// after the transition.
	phase := p.MeasureFor
	for _, to := range []topology.Mode{msSC, aaEC, aaSC} {
		c, err := cluster.Start(cluster.Options{
			NetworkName:     p.NetworkName,
			Shards:          3,
			Replicas:        3,
			Mode:            msEC,
			Engine:          "ht",
			DisableFailover: true,
		})
		if err != nil {
			return err
		}
		kvs := make([]KV, p.Clients)
		for i := range kvs {
			kv, err := NewBespoKV(c)
			if err != nil {
				c.Close()
				return err
			}
			kvs[i] = kv
		}
		if err := Preload(kvs[0], p.Preload); err != nil {
			c.Close()
			return err
		}
		gens, err := makeGens(p.Clients, p.zipfDist(), workload.ReadMostly, 42)
		if err != nil {
			c.Close()
			return err
		}
		tl := metrics.NewTimeline(phase / 10)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			runTimeline(kvs, gens, tl, stop)
		}()
		time.Sleep(phase)
		tl.Mark("transition-start")
		if err := c.Transition(to); err != nil {
			close(stop)
			<-done
			c.Close()
			return err
		}
		tl.Mark("transition-complete")
		time.Sleep(phase)
		close(stop)
		<-done
		for _, kv := range kvs {
			kv.Close()
		}
		c.Close()
		p.printTimeline("fig10", "ms+ec->"+to.String(), tl)
	}
	return nil
}

// Fig16Failover regenerates Fig. 16 (Appendix D): throughput over time
// across a node kill, for the MS cases (head/tail kills under SC,
// master/slave kills under EC) and the AA case, plus the dynomite
// baseline. A standby pair is registered so the coordinator's recovery
// path (launch → recover data → rejoin) is exercised end to end. Expected
// shape: MS drops ~1/3 of one shard's traffic (head or tail loss) then
// recovers once the chain is repaired; EC slave kills barely dent reads
// (~1/9); AA dips only marginally.
func Fig16Failover(p Params) error {
	p.defaults()
	phase := p.MeasureFor
	cases := []struct {
		series string
		mode   topology.Mode
		mix    workload.Mix
		kill   func(c *cluster.Cluster)
	}{
		{"ms+sc/95get/kill-tail", msSC, workload.ReadMostly, func(c *cluster.Cluster) { c.KillNode(0, 2) }},
		{"ms+sc/50get/kill-head", msSC, workload.UpdateIntensive, func(c *cluster.Cluster) { c.KillNode(0, 0) }},
		{"ms+ec/95get/kill-slave", msEC, workload.ReadMostly, func(c *cluster.Cluster) { c.KillNode(0, 1) }},
		{"ms+ec/50get/kill-master", msEC, workload.UpdateIntensive, func(c *cluster.Cluster) { c.KillNode(0, 0) }},
		{"aa+ec/95get/kill-any", aaEC, workload.ReadMostly, func(c *cluster.Cluster) { c.KillNode(0, 1) }},
		{"aa+ec/50get/kill-any", aaEC, workload.UpdateIntensive, func(c *cluster.Cluster) { c.KillNode(0, 1) }},
	}
	// The failure detector must tolerate the harness's heartbeat cadence:
	// a timeout below ~4 heartbeat intervals would fail healthy nodes.
	hbInterval := 50 * time.Millisecond
	hbTimeout := phase / 3
	if hbTimeout < 4*hbInterval {
		hbTimeout = 4 * hbInterval
	}
	// More load workers than usual: a worker stuck retrying the killed
	// shard must not starve the surviving shards (the paper's YCSB client
	// fleet had hundreds of threads), or every kill reads as a total
	// outage instead of a proportional dip.
	clients := p.Clients * 4
	if clients < 12 {
		clients = 12
	}
	for _, cse := range cases {
		c, err := cluster.Start(cluster.Options{
			NetworkName:       p.NetworkName,
			Shards:            3,
			Replicas:          3,
			Mode:              cse.mode,
			Engine:            "ht",
			Standbys:          1,
			HeartbeatInterval: hbInterval,
			HeartbeatTimeout:  hbTimeout,
		})
		if err != nil {
			return err
		}
		kvs := make([]KV, clients)
		for i := range kvs {
			// Fail fast: a request to the killed shard must release its
			// worker in milliseconds so surviving shards keep their
			// throughput (the proportional dip the paper shows).
			cli, err := c.ClientTuned(1, time.Millisecond)
			if err != nil {
				c.Close()
				return err
			}
			kvs[i] = bespoKV{c: cli}
		}
		if err := Preload(kvs[0], p.Preload); err != nil {
			c.Close()
			return err
		}
		gens, err := makeGens(clients, p.zipfDist(), cse.mix, 42)
		if err != nil {
			c.Close()
			return err
		}
		tl := metrics.NewTimeline(phase / 10)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			runTimeline(kvs, gens, tl, stop)
		}()
		time.Sleep(phase)
		tl.Mark("kill")
		cse.kill(c)
		time.Sleep(2 * phase)
		close(stop)
		<-done
		for _, kv := range kvs {
			kv.Close()
		}
		c.Close()
		p.printTimeline("fig16", cse.series, tl)
	}
	return nil
}
