package bench

import (
	"fmt"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/cluster"
	"bespokv/internal/wire"
	"bespokv/internal/workload"
)

// Table1FeatureMatrix regenerates Table I by probing the running system
// for each capability rather than asserting it on paper: sharding,
// replication, multiple backends, multiple consistency models, multiple
// topologies, automatic failover recovery, and programmability.
func Table1FeatureMatrix(p Params) error {
	p.defaults()
	check := func(name string, fn func() error) {
		if err := fn(); err != nil {
			p.note("table1  %-28s FAIL: %v", name, err)
			return
		}
		p.note("table1  %-28s yes (probed live)", name)
	}

	check("S: sharding", func() error {
		c, err := cluster.Start(cluster.Options{NetworkName: p.NetworkName, Shards: 4, Replicas: 1, DisableFailover: true})
		if err != nil {
			return err
		}
		defer c.Close()
		kv, err := NewBespoKV(c)
		if err != nil {
			return err
		}
		defer kv.Close()
		for i := 0; i < 64; i++ {
			if err := kv.Put(workload.Key(16, i), []byte("v")); err != nil {
				return err
			}
		}
		populated := 0
		for _, pairs := range c.Shards {
			if pairs[0].Datalet.Engine("").Len() > 0 {
				populated++
			}
		}
		if populated < 3 {
			return fmt.Errorf("keys landed on %d/4 shards", populated)
		}
		return nil
	})

	check("R: replication", func() error {
		c, err := cluster.Start(cluster.Options{NetworkName: p.NetworkName, Shards: 1, Replicas: 3, DisableFailover: true})
		if err != nil {
			return err
		}
		defer c.Close()
		kv, err := NewBespoKV(c)
		if err != nil {
			return err
		}
		defer kv.Close()
		if err := kv.Put([]byte("k"), []byte("v")); err != nil {
			return err
		}
		for ri, pair := range c.Shards[0] {
			if _, _, ok, _ := pair.Datalet.Engine("").Get([]byte("k")); !ok {
				return fmt.Errorf("replica %d missing the write", ri)
			}
		}
		return nil
	})

	check("MB: multiple backends", func() error {
		c, err := cluster.Start(cluster.Options{
			NetworkName: p.NetworkName, Shards: 1, Replicas: 3,
			EnginesByReplica: []string{"ht", "btree", "lsm"},
			Mode:             msSC, DisableFailover: true,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		names := map[string]bool{}
		for _, pair := range c.Shards[0] {
			names[pair.Datalet.Engine("").Name()] = true
		}
		if len(names) != 3 {
			return fmt.Errorf("got backends %v", names)
		}
		return nil
	})

	check("MC+MT: modes, live switch", func() error {
		c, err := cluster.Start(cluster.Options{NetworkName: p.NetworkName, Shards: 1, Replicas: 3, Mode: msEC, DisableFailover: true})
		if err != nil {
			return err
		}
		defer c.Close()
		kv, err := NewBespoKV(c)
		if err != nil {
			return err
		}
		defer kv.Close()
		if err := kv.Put([]byte("k"), []byte("v")); err != nil {
			return err
		}
		if err := c.Transition(aaEC); err != nil {
			return err
		}
		return kv.Put([]byte("k2"), []byte("v2"))
	})

	check("AR: automatic failover", func() error {
		c, err := cluster.Start(cluster.Options{
			NetworkName: p.NetworkName, Shards: 1, Replicas: 3,
			HeartbeatTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		kv, err := NewBespoKV(c)
		if err != nil {
			return err
		}
		defer kv.Close()
		if err := kv.Put([]byte("k"), []byte("v")); err != nil {
			return err
		}
		c.KillNode(0, 2)
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := kv.Get([]byte("k")); err == nil {
				admin, err := c.Admin()
				if err != nil {
					return err
				}
				m, err := admin.GetMap()
				admin.Close()
				if err != nil {
					return err
				}
				if len(m.Shards[0].Replicas) == 2 {
					return nil // chain repaired, service continued
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("failover never completed")
			}
			time.Sleep(20 * time.Millisecond)
		}
	})

	p.note("table1  %-28s yes (controlets/datalets are user-extensible Go packages; see DESIGN.md)", "P: programmable")
	return nil
}

// PerRequestConsistency regenerates the §VIII-D per-request consistency
// numbers: an MS+SC cluster serving a zipfian load whose GETs ask for
// strong consistency 25% of the time and eventual 75% of the time.
// Expected shape: throughput between pure MS+SC and pure MS+EC; eventual
// GETs measurably faster than strong GETs.
func PerRequestConsistency(p Params) error {
	p.defaults()
	c, err := cluster.Start(cluster.Options{
		NetworkName:     p.NetworkName,
		Shards:          2,
		Replicas:        3,
		Mode:            msSC,
		DisableFailover: true,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	clients := make([]*client.Client, p.Clients)
	for i := range clients {
		cli, err := c.Client()
		if err != nil {
			return err
		}
		defer cli.Close()
		clients[i] = cli
	}
	val := make([]byte, 32)
	for i := 0; i < p.Preload; i++ {
		if err := clients[0].Put("", workload.Key(16, i), val); err != nil {
			return err
		}
	}

	type split struct {
		name  string
		ratio int // percent of strong reads
	}
	for _, sp := range []split{{"sc-only", 100}, {"25sc-75ec", 25}, {"ec-only", 0}} {
		gens, err := makeGens(p.Clients, p.zipfDist(), workload.ReadMostly, 42)
		if err != nil {
			return err
		}
		kvs := make([]KV, p.Clients)
		for i := range kvs {
			kvs[i] = levelKV{c: clients[i], strongPct: sp.ratio, seed: uint64(i)}
		}
		res := RunLoad(kvs, gens, p.MeasureFor)
		p.row("perreq", sp.name, sp.ratio, res.KQPS, res.Latency.Summary())
	}
	return nil
}

// levelKV issues GETs at mixed consistency levels.
type levelKV struct {
	c         *client.Client
	strongPct int
	seed      uint64
}

func (l levelKV) Put(key, value []byte) error { return l.c.Put("", key, value) }

func (l levelKV) Get(key []byte) error {
	// Cheap xorshift; generators own the real randomness.
	h := l.seed*0x9e3779b97f4a7c15 + uint64(key[len(key)-1])
	h ^= h >> 31
	level := wire.LevelEventual
	if int(h%100) < l.strongPct {
		level = wire.LevelStrong
	}
	_, _, err := l.c.GetLevel("", key, level)
	return err
}

func (l levelKV) Scan(start, end []byte, limit int) error {
	_, err := l.c.GetRange("", start, end, limit)
	return err
}

func (l levelKV) Close() error { return nil }

// PolyglotPersistence regenerates the §VIII-D polyglot numbers: one MS+EC
// shard whose three replicas run different engines (tHT, tLog, tMT), under
// the uniform 95% and 50% GET mixes. Expected shape: close to the
// homogeneous tHT numbers, since the master (tHT) absorbs writes and reads
// spread over all three.
func PolyglotPersistence(p Params) error {
	p.defaults()
	c, err := cluster.Start(cluster.Options{
		NetworkName:      p.NetworkName,
		Shards:           2,
		Replicas:         3,
		Mode:             msEC,
		EnginesByReplica: []string{"ht", "applog", "btree"},
		DisableFailover:  true,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	for _, mix := range []mixCase{
		{"95get", workload.ReadMostly},
		{"50get", workload.UpdateIntensive},
	} {
		res, err := p.measure(c, p.uniformDist(), mix.mix)
		if err != nil {
			return err
		}
		p.row("polyglot", "ht+applog+btree/"+mix.name, mix.name, res.KQPS, res.Latency.Summary())
	}
	return nil
}

// Fig17TransportBypass regenerates Fig. 17 (Appendix E): the same single
// shard measured over the kernel TCP path and over the in-process ring
// transport (the DPDK kernel-bypass stand-in). Expected shape: bypass
// latency well under TCP latency and throughput a small-integer multiple,
// with a tighter latency distribution.
func Fig17TransportBypass(p Params) error {
	p.defaults()
	for _, networkName := range []string{"tcp", "inproc"} {
		c, err := cluster.Start(cluster.Options{
			NetworkName:     networkName,
			Shards:          1,
			Replicas:        3,
			Mode:            msEC,
			DisableFailover: true,
		})
		if err != nil {
			return err
		}
		pp := p
		pp.NetworkName = networkName
		res, err := pp.measure(c, pp.uniformDist(), workload.UpdateIntensive)
		c.Close()
		if err != nil {
			return err
		}
		label := "socket"
		if networkName == "inproc" {
			label = "bypass(inproc)"
		}
		p.row("fig17", label, networkName, res.KQPS, res.Latency.Summary())
	}
	return nil
}

// DLCache regenerates the §VI-B deep-learning cache result: ingesting a
// training epoch straight from a simulated parallel file system (per-file
// latency penalty) versus through a bespokv distributed cache. The paper
// reports 4× (40 vs 10 images/s on real hardware); the shape requirement
// is a multiple-fold speedup once the cache is warm.
func DLCache(p Params) error {
	p.defaults()
	const imageBytes = 4096
	images := p.Keys / 10
	if images < 100 {
		images = 100
	}
	// Simulated PFS: every small-file read pays metadata + seek latency
	// (the paper's motivation: PFSes are terrible at many small files).
	pfsRead := func() { time.Sleep(200 * time.Microsecond) }

	// Cold pass: straight from the PFS.
	start := time.Now()
	for i := 0; i < images; i++ {
		pfsRead()
	}
	coldRate := float64(images) / time.Since(start).Seconds()

	// Warm the cache, then read the epoch from it.
	c, err := cluster.Start(cluster.Options{
		NetworkName:     p.NetworkName,
		Shards:          2,
		Replicas:        3,
		Mode:            msEC,
		DisableFailover: true,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	kv, err := NewBespoKV(c)
	if err != nil {
		return err
	}
	defer kv.Close()
	img := make([]byte, imageBytes)
	for i := 0; i < images; i++ {
		pfsRead() // first epoch still pays the PFS once
		if err := kv.Put(workload.Key(16, i), img); err != nil {
			return err
		}
	}
	start = time.Now()
	for i := 0; i < images; i++ {
		if err := kv.Get(workload.Key(16, i)); err != nil {
			return err
		}
	}
	warmRate := float64(images) / time.Since(start).Seconds()
	p.row("dlcache", "pfs-direct", images, coldRate/1000, fmt.Sprintf("%.0f images/s", coldRate))
	p.row("dlcache", "bespokv-cache", images, warmRate/1000, fmt.Sprintf("%.0f images/s (%.1fx)", warmRate, warmRate/coldRate))
	return nil
}
