package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/cluster"
	"bespokv/internal/metrics"
	"bespokv/internal/topology"
	"bespokv/internal/workload"
)

var (
	msSC = topology.Mode{Topology: topology.MS, Consistency: topology.Strong}
	msEC = topology.Mode{Topology: topology.MS, Consistency: topology.Eventual}
	aaSC = topology.Mode{Topology: topology.AA, Consistency: topology.Strong}
	aaEC = topology.Mode{Topology: topology.AA, Consistency: topology.Eventual}
)

// Fig6DataAbstractions regenerates Fig. 6: the HPC monitoring/analytics
// use case run against three data abstractions (LSM, B+-tree, log). The
// paper's shape: LSM beats B+-tree by ~25% on the put-heavy monitoring
// stream; B+-tree beats LSM by ~35% on the read-heavy analytics stream;
// the log trails both on reads (every Get is a random log read).
func Fig6DataAbstractions(p Params) error {
	p.defaults()
	for _, engine := range []string{"lsm", "btree", "applog"} {
		// The persistent abstractions (LSM, log) store on real files, as
		// the paper's do; the B+-tree is the in-memory Masstree stand-in.
		dataDir := ""
		if engine != "btree" {
			dir, err := os.MkdirTemp("", "bespokv-fig6-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			dataDir = dir
		}
		c, err := cluster.Start(cluster.Options{
			NetworkName:     p.NetworkName,
			Shards:          1,
			Replicas:        3,
			Mode:            msEC,
			Engine:          engine,
			DataDir:         dataDir,
			DisableFailover: true,
		})
		if err != nil {
			return err
		}
		// Monitoring is a time-series INSERT stream: mostly fresh keys
		// (a huge keyspace makes overwrites rare) with realistic sample
		// sizes — the pattern where append-only structures shine over
		// in-place trees. Analytics reads uniformly over what exists.
		for _, wl := range []struct {
			name      string
			mix       workload.Mix
			keys      int
			valueSize int
		}{
			{"monitoring", workload.Monitoring, p.Keys * 100, 256},
			{"analytics", workload.Analytics, p.Keys, 32},
		} {
			res, err := p.measureWith(c, func() workload.KeyDist {
				return workload.Uniform{Keys: wl.keys}
			}, wl.mix, wl.valueSize)
			if err != nil {
				c.Close()
				return err
			}
			p.row("fig6", engine+"/"+wl.name, engine, res.KQPS, res.Latency.Summary())
		}
		c.Close()
	}
	return nil
}

// Fig7ScalabilityHT regenerates Fig. 7: tHT scaled from small to large
// node counts under all four mode combinations, read-mostly and
// update-intensive, uniform and zipfian. Expected shape: near-linear
// scaling everywhere; MS+SC the best strong mode; AA+SC capped by lock
// contention; AA+EC ≥ MS+EC on the 50% GET mix.
func Fig7ScalabilityHT(p Params) error {
	p.defaults()
	modes := []topology.Mode{msSC, msEC, aaSC, aaEC}
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"95get", workload.ReadMostly},
		{"50get", workload.UpdateIntensive},
	}
	dists := []struct {
		name string
		dist func() workload.KeyDist
	}{
		{"unif", p.uniformDist()},
		{"zipf", p.zipfDist()},
	}
	for _, nodes := range p.NodeCounts {
		shards := nodes / 3
		if shards < 1 {
			shards = 1
		}
		for _, mode := range modes {
			c, err := cluster.Start(cluster.Options{
				NetworkName:     p.NetworkName,
				Shards:          shards,
				Replicas:        3,
				Mode:            mode,
				Engine:          "ht",
				DisableFailover: true,
			})
			if err != nil {
				return err
			}
			for _, mix := range mixes {
				for _, dist := range dists {
					res, err := p.measure(c, dist.dist, mix.mix)
					if err != nil {
						c.Close()
						return err
					}
					series := fmt.Sprintf("%s/%s/%s", mode, mix.name, dist.name)
					p.row("fig7", series, nodes, res.KQPS, "")
				}
			}
			c.Close()
		}
	}
	return nil
}

// Fig8HPCWorkloads regenerates Fig. 8: the job-launch and I/O-forwarding
// traces across node counts and modes. Expected shape: MS wins under SC,
// AA wins under EC, and I/O forwarding runs slightly ahead of job launch
// (it has 12% more reads).
func Fig8HPCWorkloads(p Params) error {
	p.defaults()
	workloads := []struct {
		name string
		mix  workload.Mix
	}{
		{"job-launch", workload.JobLaunch},
		{"io-forwarding", workload.IOForwarding},
	}
	grid := []struct {
		label string
		mode  topology.Mode
	}{
		{"ms+sc", msSC}, {"aa+sc", aaSC}, {"ms+ec", msEC}, {"aa+ec", aaEC},
	}
	for _, nodes := range p.NodeCounts {
		shards := nodes / 3
		if shards < 1 {
			shards = 1
		}
		for _, g := range grid {
			c, err := cluster.Start(cluster.Options{
				NetworkName:     p.NetworkName,
				Shards:          shards,
				Replicas:        3,
				Mode:            g.mode,
				Engine:          "ht",
				DisableFailover: true,
			})
			if err != nil {
				return err
			}
			for _, wl := range workloads {
				res, err := p.measure(c, p.zipfDist(), wl.mix)
				if err != nil {
					c.Close()
					return err
				}
				p.row("fig8", g.label+"/"+wl.name, nodes, res.KQPS, "")
			}
			c.Close()
		}
	}
	return nil
}

// Fig9OtherDatalets regenerates Fig. 9: the persistent datalets under
// MS+EC — tSSDB (applog behind the text protocol parser), tLog (applog,
// binary), and tMT (B+-tree, including the 95% SCAN series). Expected
// shape: all scale with nodes; the in-memory tree outruns the
// disk-representative log stores; scans run far below point queries.
func Fig9OtherDatalets(p Params) error {
	p.defaults()
	type series struct {
		name         string
		engine       string
		dataletCodec string
		mix          workload.Mix
		dist         func() workload.KeyDist
		partitioner  topology.Partitioner
	}
	var cases []series
	for _, d := range []struct {
		name string
		dist func() workload.KeyDist
	}{{"unif", p.uniformDist()}, {"zipf", p.zipfDist()}} {
		cases = append(cases,
			series{"tssdb/95get/" + d.name, "applog", "text", workload.ReadMostly, d.dist, topology.HashPartitioner},
			series{"tssdb/50get/" + d.name, "applog", "text", workload.UpdateIntensive, d.dist, topology.HashPartitioner},
			series{"tlog/95get/" + d.name, "applog", "binary", workload.ReadMostly, d.dist, topology.HashPartitioner},
			series{"tlog/50get/" + d.name, "applog", "binary", workload.UpdateIntensive, d.dist, topology.HashPartitioner},
			series{"tmt/95get/" + d.name, "btree", "binary", workload.ReadMostly, d.dist, topology.HashPartitioner},
			series{"tmt/50get/" + d.name, "btree", "binary", workload.UpdateIntensive, d.dist, topology.HashPartitioner},
			series{"tmt/95scan/" + d.name, "btree", "binary", workload.ScanIntensive, d.dist, topology.RangePartitioner},
		)
	}
	for _, nodes := range p.NodeCounts {
		shards := nodes / 3
		if shards < 1 {
			shards = 1
		}
		for _, cse := range cases {
			dataDir := ""
			if cse.engine == "applog" || cse.engine == "lsm" {
				dir, err := os.MkdirTemp("", "bespokv-fig9-*")
				if err != nil {
					return err
				}
				dataDir = dir
			}
			c, err := cluster.Start(cluster.Options{
				NetworkName:      p.NetworkName,
				Shards:           shards,
				Replicas:         3,
				Mode:             msEC,
				Engine:           cse.engine,
				DataDir:          dataDir,
				DataletCodecName: cse.dataletCodec,
				Partitioner:      cse.partitioner,
				DisableFailover:  true,
			})
			if err != nil {
				return err
			}
			res, err := p.measure(c, cse.dist, cse.mix)
			c.Close()
			if dataDir != "" {
				os.RemoveAll(dataDir)
			}
			if err != nil {
				return err
			}
			p.row("fig9", cse.name, nodes, res.KQPS, "")
		}
	}
	return nil
}

// Fig7MultiGet95 extends Fig. 7's 95% GET mix with the wire-speed read
// path (ROADMAP open item 3). Same tHT cluster and read-mostly uniform
// load, 64 concurrent callers — measured twice: one controlet-routed GET
// frame per read (the baseline every prior figure used), then the same op
// stream with reads coalesced into direct-routed MultiGet frames of 16
// keys (leased maps, client→datalet, zero metadata hops). The gate:
// batched direct reads sustain ≥2× the baseline op rate; the histogram
// column tracks the latency a caller sees per key.
func Fig7MultiGet95(p Params) error {
	p.defaults()
	const (
		callers = 64 // caller goroutines (the acceptance point)
		conns   = 8  // pipelined clients shared round-robin by the callers
		batch   = 32 // keys coalesced per MultiGet frame
	)
	c, err := cluster.Start(cluster.Options{
		NetworkName:     p.NetworkName,
		Shards:          4,
		Replicas:        3,
		Mode:            msEC,
		Engine:          "ht",
		DisableFailover: true,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	pre, err := c.Client()
	if err != nil {
		return err
	}
	if err := Preload(bespoKV{c: pre}, p.Preload); err != nil {
		pre.Close()
		return err
	}
	pre.Close()

	var baseline float64
	for _, s := range []struct {
		name   string
		direct bool
		batch  int
	}{
		{"95get-multiget/baseline-get", false, 1},
		{"95get-multiget/direct-mget32", true, batch},
	} {
		clis := make([]*client.Client, conns)
		for i := range clis {
			cli, err := c.ClientConfig(client.Config{DirectReads: s.direct})
			if err != nil {
				return err
			}
			clis[i] = cli
		}
		res, err := p.runBatchedReadMostly(clis, callers, s.batch)
		for _, cli := range clis {
			cli.Close()
		}
		if err != nil {
			return err
		}
		p.row("fig7", s.name, callers, res.KQPS, res.Latency.Summary())
		if s.batch == 1 {
			baseline = res.KQPS
		} else if baseline > 0 {
			p.note("fig7-95get-multiget: direct mget = %.2fx baseline (gate: >=2x)", res.KQPS/baseline)
		}
	}
	return nil
}

// runBatchedReadMostly drives the 95/5 mix for the measurement window with
// callers goroutines over the shared clients. PUTs always go one frame per
// op; GET keys accumulate per caller and flush as one MultiGet of batch
// keys (batch=1 degenerates to plain Get). Latency is recorded per key as
// the time its frame took — for a batch, every key in it completes when
// the frame does, so the histograms compare caller-visible waits like for
// like.
func (p *Params) runBatchedReadMostly(clis []*client.Client, callers, batch int) (Result, error) {
	gens := make([]*workload.Generator, callers)
	for i := range gens {
		g, err := workload.NewGenerator(workload.Options{
			Dist: workload.Uniform{Keys: p.Keys},
			Mix:  workload.ReadMostly,
			Seed: workload.SplitRand(97, i),
		})
		if err != nil {
			return Result{}, err
		}
		gens[i] = g
	}
	var (
		wg    sync.WaitGroup
		hist  metrics.Histogram
		ops   int64
		errs  int64
		tally sync.Mutex
		stop  = make(chan struct{})
	)
	timer := time.AfterFunc(p.MeasureFor, func() { close(stop) })
	defer timer.Stop()
	start := time.Now()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli := clis[i%len(clis)]
			gen := gens[i]
			// Per-caller reusable key buffers: the generator recycles its
			// op buffer, so batched keys must be copied out — into the
			// same arrays every round, not fresh allocations.
			bufs := make([][]byte, batch)
			keys := make([][]byte, 0, batch)
			var localOps, localErrs int64
			flush := func() {
				if len(keys) == 0 {
					return
				}
				t0 := time.Now()
				results, err := cli.MultiGet("", keys)
				d := time.Since(t0)
				for range keys {
					hist.Observe(d)
				}
				if err != nil {
					localErrs += int64(len(keys))
				} else {
					for _, r := range results {
						if r.Err != nil {
							localErrs++
						} else {
							localOps++
						}
					}
				}
				keys = keys[:0]
			}
			for {
				select {
				case <-stop:
					flush()
					tally.Lock()
					ops += localOps
					errs += localErrs
					tally.Unlock()
					return
				default:
				}
				op := gen.Next()
				switch op.Kind {
				case workload.Get:
					if batch <= 1 {
						t0 := time.Now()
						_, _, err := cli.Get("", op.Key)
						hist.Observe(time.Since(t0))
						if err != nil {
							localErrs++
						} else {
							localOps++
						}
						continue
					}
					n := len(keys)
					bufs[n] = append(bufs[n][:0], op.Key...)
					keys = append(keys, bufs[n])
					if len(keys) == batch {
						flush()
					}
				case workload.Put:
					t0 := time.Now()
					err := cli.Put("", op.Key, op.Value)
					hist.Observe(time.Since(t0))
					if err != nil {
						localErrs++
					} else {
						localOps++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return Result{
		Ops:     ops,
		Errors:  errs,
		KQPS:    float64(ops) / elapsed / 1000,
		Latency: &hist,
	}, nil
}
