package bench

import (
	"fmt"
	"os"

	"bespokv/internal/cluster"
	"bespokv/internal/topology"
	"bespokv/internal/workload"
)

var (
	msSC = topology.Mode{Topology: topology.MS, Consistency: topology.Strong}
	msEC = topology.Mode{Topology: topology.MS, Consistency: topology.Eventual}
	aaSC = topology.Mode{Topology: topology.AA, Consistency: topology.Strong}
	aaEC = topology.Mode{Topology: topology.AA, Consistency: topology.Eventual}
)

// Fig6DataAbstractions regenerates Fig. 6: the HPC monitoring/analytics
// use case run against three data abstractions (LSM, B+-tree, log). The
// paper's shape: LSM beats B+-tree by ~25% on the put-heavy monitoring
// stream; B+-tree beats LSM by ~35% on the read-heavy analytics stream;
// the log trails both on reads (every Get is a random log read).
func Fig6DataAbstractions(p Params) error {
	p.defaults()
	for _, engine := range []string{"lsm", "btree", "applog"} {
		// The persistent abstractions (LSM, log) store on real files, as
		// the paper's do; the B+-tree is the in-memory Masstree stand-in.
		dataDir := ""
		if engine != "btree" {
			dir, err := os.MkdirTemp("", "bespokv-fig6-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			dataDir = dir
		}
		c, err := cluster.Start(cluster.Options{
			NetworkName:     p.NetworkName,
			Shards:          1,
			Replicas:        3,
			Mode:            msEC,
			Engine:          engine,
			DataDir:         dataDir,
			DisableFailover: true,
		})
		if err != nil {
			return err
		}
		// Monitoring is a time-series INSERT stream: mostly fresh keys
		// (a huge keyspace makes overwrites rare) with realistic sample
		// sizes — the pattern where append-only structures shine over
		// in-place trees. Analytics reads uniformly over what exists.
		for _, wl := range []struct {
			name      string
			mix       workload.Mix
			keys      int
			valueSize int
		}{
			{"monitoring", workload.Monitoring, p.Keys * 100, 256},
			{"analytics", workload.Analytics, p.Keys, 32},
		} {
			res, err := p.measureWith(c, func() workload.KeyDist {
				return workload.Uniform{Keys: wl.keys}
			}, wl.mix, wl.valueSize)
			if err != nil {
				c.Close()
				return err
			}
			p.row("fig6", engine+"/"+wl.name, engine, res.KQPS, res.Latency.Summary())
		}
		c.Close()
	}
	return nil
}

// Fig7ScalabilityHT regenerates Fig. 7: tHT scaled from small to large
// node counts under all four mode combinations, read-mostly and
// update-intensive, uniform and zipfian. Expected shape: near-linear
// scaling everywhere; MS+SC the best strong mode; AA+SC capped by lock
// contention; AA+EC ≥ MS+EC on the 50% GET mix.
func Fig7ScalabilityHT(p Params) error {
	p.defaults()
	modes := []topology.Mode{msSC, msEC, aaSC, aaEC}
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"95get", workload.ReadMostly},
		{"50get", workload.UpdateIntensive},
	}
	dists := []struct {
		name string
		dist func() workload.KeyDist
	}{
		{"unif", p.uniformDist()},
		{"zipf", p.zipfDist()},
	}
	for _, nodes := range p.NodeCounts {
		shards := nodes / 3
		if shards < 1 {
			shards = 1
		}
		for _, mode := range modes {
			c, err := cluster.Start(cluster.Options{
				NetworkName:     p.NetworkName,
				Shards:          shards,
				Replicas:        3,
				Mode:            mode,
				Engine:          "ht",
				DisableFailover: true,
			})
			if err != nil {
				return err
			}
			for _, mix := range mixes {
				for _, dist := range dists {
					res, err := p.measure(c, dist.dist, mix.mix)
					if err != nil {
						c.Close()
						return err
					}
					series := fmt.Sprintf("%s/%s/%s", mode, mix.name, dist.name)
					p.row("fig7", series, nodes, res.KQPS, "")
				}
			}
			c.Close()
		}
	}
	return nil
}

// Fig8HPCWorkloads regenerates Fig. 8: the job-launch and I/O-forwarding
// traces across node counts and modes. Expected shape: MS wins under SC,
// AA wins under EC, and I/O forwarding runs slightly ahead of job launch
// (it has 12% more reads).
func Fig8HPCWorkloads(p Params) error {
	p.defaults()
	workloads := []struct {
		name string
		mix  workload.Mix
	}{
		{"job-launch", workload.JobLaunch},
		{"io-forwarding", workload.IOForwarding},
	}
	grid := []struct {
		label string
		mode  topology.Mode
	}{
		{"ms+sc", msSC}, {"aa+sc", aaSC}, {"ms+ec", msEC}, {"aa+ec", aaEC},
	}
	for _, nodes := range p.NodeCounts {
		shards := nodes / 3
		if shards < 1 {
			shards = 1
		}
		for _, g := range grid {
			c, err := cluster.Start(cluster.Options{
				NetworkName:     p.NetworkName,
				Shards:          shards,
				Replicas:        3,
				Mode:            g.mode,
				Engine:          "ht",
				DisableFailover: true,
			})
			if err != nil {
				return err
			}
			for _, wl := range workloads {
				res, err := p.measure(c, p.zipfDist(), wl.mix)
				if err != nil {
					c.Close()
					return err
				}
				p.row("fig8", g.label+"/"+wl.name, nodes, res.KQPS, "")
			}
			c.Close()
		}
	}
	return nil
}

// Fig9OtherDatalets regenerates Fig. 9: the persistent datalets under
// MS+EC — tSSDB (applog behind the text protocol parser), tLog (applog,
// binary), and tMT (B+-tree, including the 95% SCAN series). Expected
// shape: all scale with nodes; the in-memory tree outruns the
// disk-representative log stores; scans run far below point queries.
func Fig9OtherDatalets(p Params) error {
	p.defaults()
	type series struct {
		name         string
		engine       string
		dataletCodec string
		mix          workload.Mix
		dist         func() workload.KeyDist
		partitioner  topology.Partitioner
	}
	var cases []series
	for _, d := range []struct {
		name string
		dist func() workload.KeyDist
	}{{"unif", p.uniformDist()}, {"zipf", p.zipfDist()}} {
		cases = append(cases,
			series{"tssdb/95get/" + d.name, "applog", "text", workload.ReadMostly, d.dist, topology.HashPartitioner},
			series{"tssdb/50get/" + d.name, "applog", "text", workload.UpdateIntensive, d.dist, topology.HashPartitioner},
			series{"tlog/95get/" + d.name, "applog", "binary", workload.ReadMostly, d.dist, topology.HashPartitioner},
			series{"tlog/50get/" + d.name, "applog", "binary", workload.UpdateIntensive, d.dist, topology.HashPartitioner},
			series{"tmt/95get/" + d.name, "btree", "binary", workload.ReadMostly, d.dist, topology.HashPartitioner},
			series{"tmt/50get/" + d.name, "btree", "binary", workload.UpdateIntensive, d.dist, topology.HashPartitioner},
			series{"tmt/95scan/" + d.name, "btree", "binary", workload.ScanIntensive, d.dist, topology.RangePartitioner},
		)
	}
	for _, nodes := range p.NodeCounts {
		shards := nodes / 3
		if shards < 1 {
			shards = 1
		}
		for _, cse := range cases {
			dataDir := ""
			if cse.engine == "applog" || cse.engine == "lsm" {
				dir, err := os.MkdirTemp("", "bespokv-fig9-*")
				if err != nil {
					return err
				}
				dataDir = dir
			}
			c, err := cluster.Start(cluster.Options{
				NetworkName:      p.NetworkName,
				Shards:           shards,
				Replicas:         3,
				Mode:             msEC,
				Engine:           cse.engine,
				DataDir:          dataDir,
				DataletCodecName: cse.dataletCodec,
				Partitioner:      cse.partitioner,
				DisableFailover:  true,
			})
			if err != nil {
				return err
			}
			res, err := p.measure(c, cse.dist, cse.mix)
			c.Close()
			if dataDir != "" {
				os.RemoveAll(dataDir)
			}
			if err != nil {
				return err
			}
			p.row("fig9", cse.name, nodes, res.KQPS, "")
		}
	}
	return nil
}
