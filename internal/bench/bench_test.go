package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny returns the smallest parameter set that still exercises every code
// path of an experiment.
func tiny(out *bytes.Buffer) Params {
	return Params{
		Out:        out,
		MeasureFor: 100 * time.Millisecond,
		Clients:    2,
		Keys:       500,
		Preload:    200,
		NodeCounts: []int{3},
	}
}

func runExp(t *testing.T, name string, fn func(Params) error, wantSeries ...string) {
	t.Helper()
	var out bytes.Buffer
	if err := fn(tiny(&out)); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	text := out.String()
	if text == "" {
		t.Fatalf("%s produced no output", name)
	}
	for _, s := range wantSeries {
		if !strings.Contains(text, s) {
			t.Fatalf("%s output missing series %q:\n%s", name, s, text)
		}
	}
}

func TestFig6(t *testing.T) {
	runExp(t, "fig6", Fig6DataAbstractions, "lsm/monitoring", "btree/analytics", "applog/analytics")
}

func TestFig7(t *testing.T) {
	runExp(t, "fig7", Fig7ScalabilityHT, "ms+strong/95get/unif", "aa+eventual/50get/zipf")
}

func TestFig7MultiGet(t *testing.T) {
	runExp(t, "fig7-95get-multiget", Fig7MultiGet95,
		"95get-multiget/baseline-get", "95get-multiget/direct-mget32", "x baseline")
}

func TestFig8(t *testing.T) {
	runExp(t, "fig8", Fig8HPCWorkloads, "ms+sc/job-launch", "aa+ec/io-forwarding")
}

func TestFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 sweep in -short mode")
	}
	runExp(t, "fig9", Fig9OtherDatalets, "tssdb/95get/unif", "tlog/50get/zipf", "tmt/95scan/unif")
}

func TestFig10(t *testing.T) {
	runExp(t, "fig10", Fig10Transitions, "ms+ec->ms+strong", "ms+ec->aa+eventual", "transition-start")
}

func TestFig11(t *testing.T) {
	runExp(t, "fig11", Fig11ProxyComparison, "bespokv-tredis/ms+strong", "twemproxy/ms+ec", "dynomite/aa+ec")
}

func TestFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 sweep in -short mode")
	}
	runExp(t, "fig12", Fig12NativeComparison, "bespokv-aa+eventual/95get", "cassandra/95get", "voldemort/50get")
}

func TestFig16(t *testing.T) {
	if testing.Short() {
		t.Skip("fig16 sweep in -short mode")
	}
	runExp(t, "fig16", Fig16Failover, "ms+sc/95get/kill-tail", "aa+ec/50get/kill-any", "mark kill")
}

func TestFig17(t *testing.T) {
	runExp(t, "fig17", Fig17TransportBypass, "socket", "bypass(inproc)")
}

func TestTable1(t *testing.T) {
	runExp(t, "table1", Table1FeatureMatrix, "S: sharding", "AR: automatic failover", "P: programmable")
	// Every probe must have passed.
	var out bytes.Buffer
	if err := Table1FeatureMatrix(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Fatalf("feature probe failed:\n%s", out.String())
	}
}

func TestPerRequest(t *testing.T) {
	runExp(t, "perreq", PerRequestConsistency, "sc-only", "25sc-75ec", "ec-only")
}

func TestPolyglot(t *testing.T) {
	runExp(t, "polyglot", PolyglotPersistence, "ht+applog+btree/95get")
}

func TestDLCache(t *testing.T) {
	var out bytes.Buffer
	if err := DLCache(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "pfs-direct") || !strings.Contains(text, "bespokv-cache") {
		t.Fatalf("dlcache output incomplete:\n%s", text)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	runExp(t, "ablate", Ablations, "replication/ms+strong", "aa-ordering/dlm-lock", "lsm-memtable-kib", "ring-vnodes")
}

func TestPreloadAndRunLoad(t *testing.T) {
	// Smoke the primitives directly against a cluster.
	var out bytes.Buffer
	p := tiny(&out)
	if err := Fig17TransportBypass(p); err != nil {
		t.Fatal(err)
	}
}
