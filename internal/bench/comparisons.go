package bench

import (
	"fmt"

	"bespokv/internal/baseline/dynamo"
	"bespokv/internal/baseline/dynomite"
	"bespokv/internal/baseline/twemproxy"
	"bespokv/internal/cluster"
	"bespokv/internal/datalet"
	"bespokv/internal/store"
	"bespokv/internal/store/ht"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
	"bespokv/internal/workload"
)

// Fig11ProxyComparison regenerates Fig. 11: bespokv fronting tRedis-style
// text-protocol datalets under MS+SC, MS+EC and AA+EC, against the
// twemproxy baseline (sharding only, the paper's Twem+Redis MS+EC column)
// and the dynomite baseline (AA+EC). Expected shape: twemproxy slightly
// above bespokv MS+EC (it does strictly less work), dynomite ≈ bespokv
// AA+EC, and MS+SC the most expensive bespokv column.
func Fig11ProxyComparison(p Params) error {
	p.defaults()
	shards := p.NodeCounts[len(p.NodeCounts)-1] / 3
	if shards < 1 {
		shards = 1
	}
	mixes := []mixCase{
		{"95get", workload.ReadMostly},
		{"50get", workload.UpdateIntensive},
	}
	dists := []distCase{
		{"unif", p.uniformDist()},
		{"zipf", p.zipfDist()},
	}

	// bespokv + tRedis (text protocol datalets).
	for _, mode := range []topology.Mode{msSC, msEC, aaEC} {
		c, err := cluster.Start(cluster.Options{
			NetworkName:      p.NetworkName,
			Shards:           shards,
			Replicas:         3,
			Mode:             mode,
			Engine:           "ht",
			DataletCodecName: "text",
			DisableFailover:  true,
		})
		if err != nil {
			return err
		}
		for _, mix := range mixes {
			for _, dist := range dists {
				res, err := p.measure(c, dist.dist, mix.mix)
				if err != nil {
					c.Close()
					return err
				}
				p.row("fig11", fmt.Sprintf("bespokv-tredis/%s/%s/%s", mode, mix.name, dist.name), shards*3, res.KQPS, "")
			}
		}
		c.Close()
	}

	// Twemproxy: sharding-only over one text datalet per shard.
	if err := p.fig11Twemproxy(shards, mixes, dists); err != nil {
		return err
	}
	// Dynomite: AA+EC over one text datalet per replica.
	return p.fig11Dynomite(mixes, dists)
}

type mixCase struct {
	name string
	mix  workload.Mix
}

type distCase struct {
	name string
	dist func() workload.KeyDist
}

func startTextDatalets(networkName string, n int) (transport.Network, wire.Codec, []*datalet.Server, []string, error) {
	net, err := transport.Lookup(networkName)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	codec, err := wire.LookupCodec("text")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var servers []*datalet.Server
	var addrs []string
	for i := 0; i < n; i++ {
		addr := ""
		if networkName == "tcp" {
			addr = "127.0.0.1:0"
		}
		s, err := datalet.Serve(datalet.Config{
			Name:      fmt.Sprintf("tredis-%d", i),
			Network:   net,
			Addr:      addr,
			Codec:     codec,
			NewEngine: func(string) (store.Engine, error) { return ht.New(), nil },
			Logf:      func(string, ...any) {},
		})
		if err != nil {
			for _, srv := range servers {
				srv.Close()
			}
			return nil, nil, nil, nil, err
		}
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	return net, codec, servers, addrs, nil
}

func (p *Params) fig11Twemproxy(shards int, mixes []mixCase, dists []distCase) error {
	net, codec, servers, addrs, err := startTextDatalets(p.NetworkName, shards)
	if err != nil {
		return err
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	listen := ""
	if p.NetworkName == "tcp" {
		listen = "127.0.0.1:0"
	}
	proxy, err := twemproxy.Serve(twemproxy.Config{Network: net, Addr: listen, Codec: codec, Backends: addrs})
	if err != nil {
		return err
	}
	defer proxy.Close()
	return p.runRawTargets("fig11", "twemproxy/ms+ec", net, codec, []string{proxy.Addr()}, shards, mixes, dists)
}

func (p *Params) fig11Dynomite(mixes []mixCase, dists []distCase) error {
	net, codec, servers, addrs, err := startTextDatalets(p.NetworkName, 3)
	if err != nil {
		return err
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	var proxies []*dynomite.Server
	defer func() {
		for _, pr := range proxies {
			pr.Close()
		}
	}()
	listen := ""
	if p.NetworkName == "tcp" {
		listen = "127.0.0.1:0"
	}
	for i := 0; i < 3; i++ {
		pr, err := dynomite.Serve(dynomite.Config{Network: net, Addr: listen, Codec: codec, BackendAddr: addrs[i]})
		if err != nil {
			return err
		}
		proxies = append(proxies, pr)
	}
	var proxyAddrs []string
	for _, pr := range proxies {
		proxyAddrs = append(proxyAddrs, pr.Addr())
	}
	for i, pr := range proxies {
		var peers []string
		for j, a := range proxyAddrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		pr.SetPeers(peers)
	}
	return p.runRawTargets("fig11", "dynomite/aa+ec", net, codec, proxyAddrs, 3, mixes, dists)
}

// runRawTargets measures raw wire endpoints (baselines) under the mix/dist
// grid, spreading clients across targets.
func (p *Params) runRawTargets(figure, series string, net transport.Network, codec wire.Codec, targets []string, x int, mixes []mixCase, dists []distCase) error {
	kvs := make([]KV, p.Clients)
	for i := range kvs {
		pool, err := datalet.DialPool(net, targets[i%len(targets)], codec, 2)
		if err != nil {
			return err
		}
		kvs[i] = rawKV{pool: pool}
	}
	defer func() {
		for _, kv := range kvs {
			kv.Close()
		}
	}()
	if err := Preload(kvs[0], p.Preload); err != nil {
		return err
	}
	for _, mix := range mixes {
		for _, dist := range dists {
			gens, err := makeGens(p.Clients, dist.dist, mix.mix, 42)
			if err != nil {
				return err
			}
			res := RunLoad(kvs, gens, p.MeasureFor)
			p.row(figure, fmt.Sprintf("%s/%s/%s", series, mix.name, dist.name), x, res.KQPS, "")
		}
	}
	return nil
}

// Fig12NativeComparison regenerates Fig. 12: latency-vs-throughput curves
// for bespokv's four modes against the dynamo-style natively-distributed
// baselines (cassandra and voldemort profiles), swept over client counts.
// Expected shape: bespokv AA+EC in front, voldemort next, cassandra last
// (compaction + the coordinator hop); AA+SC flattest (lock contention);
// MS+EC ≈ AA+EC at 95% GET but behind it at 50% GET.
//
// This experiment deploys over tcp with collocated datalets — the paper's
// physical layout, where the controlet→datalet hop stays on one machine
// and is nearly free while every cross-node hop (including the baselines'
// server-side coordinator forwarding) pays the network. Running it purely
// in-process would price all hops equally and invert the comparison.
func Fig12NativeComparison(p Params) error {
	p.defaults()
	clientSweep := []int{1, 2, 4, 8}
	for _, mix := range []mixCase{
		{"95get", workload.ReadMostly},
		{"50get", workload.UpdateIntensive},
	} {
		// bespokv modes on 2 shards × 3 replicas = 6 nodes, like the
		// paper's six server machines.
		for _, mode := range []topology.Mode{msSC, msEC, aaSC, aaEC} {
			c, err := cluster.Start(cluster.Options{
				NetworkName:        "tcp",
				CollocatedDatalets: true,
				Shards:             2,
				Replicas:           3,
				Mode:               mode,
				Engine:             "ht",
				DisableFailover:    true,
			})
			if err != nil {
				return err
			}
			for _, nc := range clientSweep {
				pp := p
				pp.Clients = nc
				res, err := pp.measure(c, pp.zipfDist(), mix.mix)
				if err != nil {
					c.Close()
					return err
				}
				p.row("fig12", fmt.Sprintf("bespokv-%s/%s", mode, mix.name), nc, res.KQPS,
					fmt.Sprintf("lat=%v", res.Latency.Mean().Round(1000)))
			}
			c.Close()
		}
		// Dynamo-style baselines on 6 nodes, RF=3, also over tcp (their
		// storage is in-process, the real systems' layout).
		for _, profile := range []dynamo.Profile{dynamo.CassandraProfile(), dynamo.VoldemortProfile()} {
			net, err := transport.Lookup("tcp")
			if err != nil {
				return err
			}
			codec, err := wire.LookupCodec("binary")
			if err != nil {
				return err
			}
			dc, err := dynamo.Start(dynamo.Options{
				Network: net, Codec: codec, Nodes: 6, ReplicationFactor: 3, Profile: profile,
			})
			if err != nil {
				return err
			}
			addrs := dc.Addrs()
			for _, nc := range clientSweep {
				kvs := make([]KV, nc)
				ok := true
				for i := range kvs {
					pool, err := datalet.DialPool(net, addrs[i%len(addrs)], codec, 2)
					if err != nil {
						ok = false
						break
					}
					kvs[i] = rawKV{pool: pool}
				}
				if !ok {
					dc.Close()
					return fmt.Errorf("fig12: dial %s baseline", profile.Name)
				}
				if err := Preload(kvs[0], p.Preload); err != nil {
					dc.Close()
					return err
				}
				gens, err := makeGens(nc, p.zipfDist(), mix.mix, 42)
				if err != nil {
					dc.Close()
					return err
				}
				res := RunLoad(kvs, gens, p.MeasureFor)
				p.row("fig12", fmt.Sprintf("%s/%s", profile.Name, mix.name), nc, res.KQPS,
					fmt.Sprintf("lat=%v", res.Latency.Mean().Round(1000)))
				for _, kv := range kvs {
					kv.Close()
				}
			}
			dc.Close()
		}
	}
	return nil
}
