package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"bespokv/internal/cluster"
	"bespokv/internal/obs"
	"bespokv/internal/trace"
)

// promLine matches one Prometheus text-exposition sample:
// name{labels} value — with the label block optional.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$`)

func httpGet(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

// promValue extracts the value of the series line starting with prefix.
func promValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no series with prefix %q in /metrics", prefix)
	return 0
}

// TestEndToEndObservability boots a replicated MS+SC cluster, serves the
// observability endpoints off the head controlet, pushes sampled traffic
// through, and checks /metrics, /statusz and /tracez end to end — including
// that one trace covers every hop of a replicated PUT.
func TestEndToEndObservability(t *testing.T) {
	prev := trace.SampleEvery()
	trace.SetSampleEvery(1) // sample everything for the assertion below
	defer trace.SetSampleEvery(prev)

	c, err := cluster.Start(cluster.Options{}) // MS+SC, 1 shard, 3 replicas
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	head := c.Pair(0, 0)

	o, err := obs.Serve("127.0.0.1:0", obs.Options{Status: head.Controlet.Status})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 32
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%02d", i))
		if err := cli.Put("", key, []byte("value")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cli.Get("", key); err != nil {
			t.Fatal(err)
		}
	}

	// --- /metrics: well-formed Prometheus text with live op counters ---
	body := httpGet(t, o.Addr(), "/metrics")
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	// Every replica's datalet applied each PUT, so the process-wide counter
	// is at least 3n; GETs serve once.
	if v := promValue(t, body, `bespokv_datalet_ops_total{op="PUT"}`); v < 3*n {
		t.Errorf("datalet PUT count = %v, want >= %d", v, 3*n)
	}
	if v := promValue(t, body, `bespokv_datalet_ops_total{op="GET"}`); v < n {
		t.Errorf("datalet GET count = %v, want >= %d", v, n)
	}
	if v := promValue(t, body, `bespokv_client_op_seconds_count{op="PUT"}`); v < n {
		t.Errorf("client PUT latency count = %v, want >= %d", v, n)
	}
	bucketRe := regexp.MustCompile(`bespokv_client_op_seconds_bucket\{[^}]*le="[^"]+"\}`)
	if !bucketRe.MatchString(body) {
		t.Error("no latency histogram buckets in /metrics")
	}
	if v := promValue(t, body, "bespokv_controlet_chain_forwards_total"); v < 2*n {
		t.Errorf("chain forwards = %v, want >= %d (two hops per PUT)", v, 2*n)
	}

	// --- /statusz: role and shard-map version of the head controlet ---
	var st map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, o.Addr(), "/statusz")), &st); err != nil {
		t.Fatalf("statusz: %v", err)
	}
	if st["role"] != "head" {
		t.Errorf("statusz role = %v, want head", st["role"])
	}
	wantEpoch := float64(head.Controlet.Map().Epoch)
	if st["epoch"] != wantEpoch {
		t.Errorf("statusz epoch = %v, want %v", st["epoch"], wantEpoch)
	}
	if st["mode"] != "ms+strong" && st["mode"] != head.Controlet.Map().Mode.String() {
		t.Errorf("statusz mode = %v", st["mode"])
	}

	// --- /tracez: one PUT trace covering every hop ---
	type tracez struct {
		SampleEvery uint64        `json:"sample_every"`
		Total       uint64        `json:"spans_recorded"`
		Recent      []trace.Trace `json:"recent"`
		Slowest     []trace.Span  `json:"slowest"`
	}
	shard := c.Shards[0]
	want := map[string]bool{
		"client/client.PUT":                       false,
		shard[0].Node.ID + "/controlet.PUT":       false,
		shard[1].Node.ID + "/controlet.CHAINPUT":  false,
		shard[2].Node.ID + "/controlet.CHAINPUT":  false,
		shard[0].Node.ID + "-datalet/datalet.PUT": false,
		shard[1].Node.ID + "-datalet/datalet.PUT": false,
		shard[2].Node.ID + "-datalet/datalet.PUT": false,
	}
	// Spans are all recorded before the client call returns (each hop
	// records before acking), but give the HTTP round a moment anyway.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var tz tracez
		if err := json.Unmarshal([]byte(httpGet(t, o.Addr(), "/tracez?max=128")), &tz); err != nil {
			t.Fatalf("tracez: %v", err)
		}
		if tz.SampleEvery != 1 {
			t.Fatalf("tracez sample_every = %d, want 1", tz.SampleEvery)
		}
		for _, tr := range tz.Recent {
			got := map[string]bool{}
			for _, sp := range tr.Spans {
				got[sp.Node+"/"+sp.Stage] = true
			}
			full := true
			for k := range want {
				if !got[k] {
					full = false
					break
				}
			}
			if full {
				if tr.ID == 0 {
					t.Error("trace has zero ID")
				}
				if tr.Dur <= 0 {
					t.Error("trace has non-positive duration")
				}
				return // every hop of one replicated PUT is covered
			}
		}
		if time.Now().After(deadline) {
			for _, tr := range tz.Recent {
				t.Logf("trace %x: %d spans", tr.ID, len(tr.Spans))
				for _, sp := range tr.Spans {
					t.Logf("  %s/%s %v", sp.Node, sp.Stage, sp.Dur)
				}
			}
			t.Fatal("no trace covering every hop of a replicated PUT")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStartDisabled checks the empty-addr convenience contract mains rely on.
func TestStartDisabled(t *testing.T) {
	s, err := obs.Start("", nil)
	if err != nil || s != nil {
		t.Fatalf("Start(\"\") = %v, %v; want nil, nil", s, err)
	}
}

// TestStatuszWithoutStatus serves /statusz with no role callback (bench,
// cli, backup) and checks the generic shell still renders.
func TestStatuszWithoutStatus(t *testing.T) {
	o, err := obs.Serve("127.0.0.1:0", obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	var st map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, o.Addr(), "/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if _, ok := st["uptime_sec"]; !ok {
		t.Error("statusz missing uptime_sec")
	}
	if _, ok := st["sample_every"]; !ok {
		t.Error("statusz missing sample_every")
	}
}
