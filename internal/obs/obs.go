// Package obs serves a node's introspection endpoints over HTTP: /metrics
// in Prometheus text exposition format, /statusz as a JSON role/topology
// snapshot, /tracez with recent and slowest sampled request traces, and the
// standard net/http/pprof profiles. Every bespokv binary mounts it behind
// -obs-addr; it shares nothing with the data path beyond reading the
// process-wide metrics registry and trace recorder.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/telemetry"
	"bespokv/internal/trace"
)

// Options configures an observability server. Zero values fall back to the
// process-wide defaults, which is what every binary wants.
type Options struct {
	// Registry backs /metrics; nil uses metrics.Default.
	Registry *metrics.Registry
	// Recorder backs /tracez; nil uses trace.Default.
	Recorder *trace.Recorder
	// Status, if set, supplies the role-specific half of /statusz (for
	// example controlet.Server.Status). It must be safe for concurrent
	// calls and return something json.Marshal accepts.
	Status func() any
	// Clusterz, if set, backs /clusterz with the cluster-wide telemetry
	// view (coordinator only; other binaries leave it nil and /clusterz
	// answers 404). It must be safe for concurrent calls.
	Clusterz func() telemetry.ClusterSnapshot
	// Alertz, if set, backs /alertz with the SLO alert list.
	Alertz func() []telemetry.Alert
}

// Server is a running observability endpoint.
type Server struct {
	reg      *metrics.Registry
	rec      *trace.Recorder
	status   func() any
	clusterz func() telemetry.ClusterSnapshot
	alertz   func() []telemetry.Alert
	listener net.Listener
	httpSrv  *http.Server
}

// Serve starts the HTTP server on addr ("host:0" picks a free port) and
// returns once it is listening.
func Serve(addr string, opt Options) (*Server, error) {
	s := &Server{
		reg:      opt.Registry,
		rec:      opt.Recorder,
		status:   opt.Status,
		clusterz: opt.Clusterz,
		alertz:   opt.Alertz,
	}
	if s.reg == nil {
		s.reg = metrics.Default
	}
	if s.rec == nil {
		s.rec = trace.Default
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/clusterz", s.handleClusterz)
	mux.HandleFunc("/alertz", s.handleAlertz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.handleIndex)
	s.listener = l
	s.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.httpSrv.Serve(l) }()
	return s, nil
}

// Start is the one-line -obs-addr wiring for the binaries: empty addr
// means disabled and returns (nil, nil); Close on the returned server is
// the caller's job when it is non-nil.
func Start(addr string, status func() any) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	return Serve(addr, Options{Status: status})
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the HTTP server.
func (s *Server) Close() error { return s.httpSrv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><body><h1>bespokv</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/statusz">/statusz</a> — role and topology snapshot</li>
<li><a href="/tracez">/tracez</a> — recent and slowest request traces</li>
<li><a href="/clusterz">/clusterz</a> — cluster telemetry (coordinator; ?format=text)</li>
<li><a href="/alertz">/alertz</a> — SLO alert states (coordinator)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiles</li>
</ul></body></html>`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteProm(w)
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	st := map[string]any{
		"uptime_sec":   int64(metrics.ProcessUptime().Seconds()),
		"sample_every": trace.SampleEvery(),
		"traces_seen":  s.rec.Total(),
	}
	if s.status != nil {
		if role := s.status(); role != nil {
			// The role-specific map wins on key collisions: it knows the
			// node better than the generic shell does.
			if m, ok := role.(map[string]any); ok {
				for k, v := range m {
					st[k] = v
				}
			} else {
				st["role_detail"] = role
			}
		}
	}
	writeJSON(w, st)
}

// tracezPayload is the /tracez response shape.
type tracezPayload struct {
	SampleEvery uint64        `json:"sample_every"`
	Total       uint64        `json:"spans_recorded"`
	MinDur      time.Duration `json:"min_dur_ns,omitempty"`
	Recent      []trace.Trace `json:"recent"`
	Slowest     []trace.Span  `json:"slowest"`
}

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	max := 32
	if q := r.URL.Query().Get("max"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &max); err != nil || max <= 0 {
			max = 32
		}
	}
	// ?min_dur= keeps only traces/spans at or above the threshold — the
	// slow-request filter (e.g. /tracez?min_dur=10ms).
	var minDur time.Duration
	if q := r.URL.Query().Get("min_dur"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad min_dur %q: %v", q, err), http.StatusBadRequest)
			return
		}
		minDur = d
	}
	p := tracezPayload{
		SampleEvery: trace.SampleEvery(),
		Total:       s.rec.Total(),
		MinDur:      minDur,
		Recent:      s.rec.Traces(max),
		Slowest:     s.rec.Slowest(max),
	}
	if minDur > 0 {
		recent := p.Recent[:0]
		for _, tr := range p.Recent {
			if tr.Dur >= minDur {
				recent = append(recent, tr)
			}
		}
		p.Recent = recent
		slowest := p.Slowest[:0]
		for _, sp := range p.Slowest {
			if sp.Dur >= minDur {
				slowest = append(slowest, sp)
			}
		}
		p.Slowest = slowest
	}
	// Deterministic span ordering inside each trace simplifies both eyeballs
	// and tests (Traces already sorts by start; keep it explicit here).
	for i := range p.Recent {
		spans := p.Recent[i].Spans
		sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start.Before(spans[b].Start) })
	}
	writeJSON(w, p)
}

// handleClusterz serves the merged cluster telemetry view; ?format=text
// renders the same table `bespokv-cli top` prints.
func (s *Server) handleClusterz(w http.ResponseWriter, r *http.Request) {
	if s.clusterz == nil {
		http.Error(w, "clusterz: not a coordinator", http.StatusNotFound)
		return
	}
	snap := s.clusterz()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.Text())
		return
	}
	writeJSON(w, snap)
}

func (s *Server) handleAlertz(w http.ResponseWriter, _ *http.Request) {
	if s.alertz == nil {
		http.Error(w, "alertz: not a coordinator", http.StatusNotFound)
		return
	}
	alerts := s.alertz()
	if alerts == nil {
		alerts = []telemetry.Alert{}
	}
	writeJSON(w, map[string]any{"alerts": alerts})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
