// Package histcheck verifies recorded operation histories against the
// consistency contracts the paper's controlets claim to preserve (§IV,
// Appendix C). It is stdlib-only.
//
// The core is a per-key linearizability checker for register histories
// (read / write / delete on a single key) in the style of Porcupine and
// Knossos: the Wing & Gong tree search with Lowe's entry-list formulation
// and memoization on (set of linearized ops, register state). Keys are
// independent registers — bespokv offers per-key ordering, no cross-key
// transactions — so a history checks as the conjunction of its per-key
// sub-histories, which keeps the (NP-hard) search tractable.
//
// Operations that never received a definite answer (client timeout during a
// partition, ambiguous error) are kept as writes that MAY take effect at
// any point from their invocation onward (End = Inf): acked-by-nobody
// writes legally surface later, and a checker that dropped them would flag
// such surfacing as a phantom. Failed reads constrain nothing and are
// dropped at record time.
//
// For EC modes linearizability is deliberately not the contract; see
// converge.go for the convergence checker.
package histcheck

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// Kind is the operation type.
type Kind uint8

const (
	// OpRead observes the register (Value/Found hold the result).
	OpRead Kind = iota
	// OpWrite sets the register to Value.
	OpWrite
	// OpDelete clears the register.
	OpDelete
)

func (k Kind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "delete"
	}
}

// Inf marks an operation whose completion was never observed: it may take
// effect at any time after its invocation.
const Inf int64 = math.MaxInt64

// Op is one invocation/response pair in a history. Times are nanoseconds on
// one monotonic clock (the Recorder's).
type Op struct {
	// Client identifies the issuing client (diagnostics only; the checker
	// does not assume per-client ordering).
	Client int
	Kind   Kind
	Key    string
	// Value is the written value (writes) or the observed value (reads).
	Value string
	// Found is the read's presence result (false = key absent).
	Found bool
	// Start and End bound the operation's real-time window. End == Inf
	// (with OK == false) marks an outcome never observed.
	Start, End int64
	// OK reports a definite, acknowledged completion.
	OK bool
}

func (o Op) String() string {
	end := "inf"
	if o.End != Inf {
		end = fmt.Sprint(o.End)
	}
	switch o.Kind {
	case OpRead:
		v := "∅"
		if o.Found {
			v = o.Value
		}
		return fmt.Sprintf("c%d read(%s)=%s [%d,%s]", o.Client, o.Key, v, o.Start, end)
	case OpWrite:
		return fmt.Sprintf("c%d write(%s,%s) [%d,%s] ok=%v", o.Client, o.Key, o.Value, o.Start, end, o.OK)
	default:
		return fmt.Sprintf("c%d delete(%s) [%d,%s] ok=%v", o.Client, o.Key, o.Start, end, o.OK)
	}
}

// Outcome is a per-key verdict.
type Outcome uint8

const (
	// Linearizable: a witness ordering exists.
	Linearizable Outcome = iota
	// NonLinearizable: the search exhausted every ordering.
	NonLinearizable
	// Unknown: the state budget ran out before a verdict.
	Unknown
)

func (o Outcome) String() string {
	switch o {
	case Linearizable:
		return "linearizable"
	case NonLinearizable:
		return "NON-LINEARIZABLE"
	default:
		return "unknown (budget exhausted)"
	}
}

// Options tunes the search.
type Options struct {
	// MaxStates bounds distinct (linearized-set, state) configurations
	// explored per key before giving up with Unknown (default 500_000).
	MaxStates int
}

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return 500_000
}

// KeyResult is the verdict for one key's sub-history.
type KeyResult struct {
	Key     string
	Outcome Outcome
	Ops     int
	States  int // configurations explored
	// Bad, on NonLinearizable, is the completed operation at which every
	// candidate ordering was exhausted — usually the anomalous read.
	Bad *Op
}

// Report aggregates per-key results.
type Report struct {
	Keys []KeyResult
}

// Ok reports whether every key checked linearizable.
func (r Report) Ok() bool {
	for _, k := range r.Keys {
		if k.Outcome != Linearizable {
			return false
		}
	}
	return true
}

// TotalOps sums the checked operation count across keys.
func (r Report) TotalOps() int {
	n := 0
	for _, k := range r.Keys {
		n += k.Ops
	}
	return n
}

// String summarizes the report, leading with failures.
func (r Report) String() string {
	var bad, unknown []string
	ops := 0
	for _, k := range r.Keys {
		ops += k.Ops
		switch k.Outcome {
		case NonLinearizable:
			detail := ""
			if k.Bad != nil {
				detail = ": stuck at " + k.Bad.String()
			}
			bad = append(bad, fmt.Sprintf("key %q (%d ops)%s", k.Key, k.Ops, detail))
		case Unknown:
			unknown = append(unknown, fmt.Sprintf("key %q (%d ops)", k.Key, k.Ops))
		}
	}
	if len(bad) == 0 && len(unknown) == 0 {
		return fmt.Sprintf("linearizable: %d keys, %d ops", len(r.Keys), ops)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d keys, %d ops:", len(r.Keys), ops)
	if len(bad) > 0 {
		fmt.Fprintf(&b, " NON-LINEARIZABLE %s;", strings.Join(bad, ", "))
	}
	if len(unknown) > 0 {
		fmt.Fprintf(&b, " unknown %s", strings.Join(unknown, ", "))
	}
	return b.String()
}

// Check partitions ops by key and checks each key's register history.
func Check(ops []Op, opt Options) Report {
	byKey := map[string][]Op{}
	var order []string
	for _, o := range ops {
		if _, seen := byKey[o.Key]; !seen {
			order = append(order, o.Key)
		}
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	sort.Strings(order)
	var rep Report
	for _, k := range order {
		rep.Keys = append(rep.Keys, CheckKey(k, byKey[k], opt))
	}
	return rep
}

// CheckKey decides whether one key's history is linearizable as an
// initially-absent register.
func CheckKey(key string, ops []Op, opt Options) KeyResult {
	res := KeyResult{Key: key, Outcome: Linearizable, Ops: len(ops)}
	kept := make([]Op, 0, len(ops))
	for _, o := range ops {
		if o.Key != key {
			res.Outcome = NonLinearizable
			bad := o
			res.Bad = &bad
			return res
		}
		if o.Kind == OpRead && !o.OK {
			continue // unobserved reads constrain nothing
		}
		kept = append(kept, o)
	}
	res.Ops = len(kept)
	if len(kept) == 0 {
		return res
	}
	res.Outcome, res.States, res.Bad = searchRegister(kept, opt.maxStates())
	return res
}

// regState is the register's value state.
type regState struct {
	present bool
	value   string
}

// apply steps the register through op; ok=false means op's observed result
// is impossible in this state (reads only — writes and deletes always
// apply).
func apply(op *Op, s regState) (regState, bool) {
	switch op.Kind {
	case OpWrite:
		return regState{present: true, value: op.Value}, true
	case OpDelete:
		return regState{}, true
	default:
		if op.Found != s.present {
			return s, false
		}
		if op.Found && op.Value != s.value {
			return s, false
		}
		return s, true
	}
}

// entry is one event (invocation or response) in Lowe's doubly-linked
// entry list. Invocation entries carry match (their response entry);
// response entries have match == nil.
type entry struct {
	op         *Op
	idx        int
	match      *entry
	prev, next *entry
}

// buildList lays out invocation/response events in time order behind a
// sentinel head. Ties sort invocations first: two ops touching at a single
// instant count as concurrent, which is the permissive (sound-for-
// rejection) choice under coarse clocks.
func buildList(ops []Op) *entry {
	type ev struct {
		t    int64
		call bool
		idx  int
	}
	evs := make([]ev, 0, 2*len(ops))
	for i := range ops {
		evs = append(evs, ev{t: ops[i].Start, call: true, idx: i})
		evs = append(evs, ev{t: ops[i].End, call: false, idx: i})
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].call && !evs[b].call
	})
	head := &entry{}
	cur := head
	calls := make(map[int]*entry, len(ops))
	for _, e := range evs {
		n := &entry{op: &ops[e.idx], idx: e.idx, prev: cur}
		cur.next = n
		cur = n
		if e.call {
			calls[e.idx] = n
		} else {
			calls[e.idx].match = n
		}
	}
	return head
}

// lift removes e (an invocation) and its response from the list.
func lift(e *entry) {
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	}
	m := e.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

// unlift reverses lift (response first, then invocation — LIFO order keeps
// the stashed prev/next pointers valid).
func unlift(e *entry) {
	m := e.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	e.prev.next = e
	if e.next != nil {
		e.next.prev = e
	}
}

// bitset tracks the linearized-op set.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }

// cacheEnt is one memoized configuration.
type cacheEnt struct {
	bits  string // bitset words, raw
	state regState
}

func cacheKey(b bitset, s regState) (uint64, cacheEnt) {
	h := fnv.New64a()
	var raw strings.Builder
	raw.Grow(len(b) * 8)
	for _, w := range b {
		var wb [8]byte
		for i := 0; i < 8; i++ {
			wb[i] = byte(w >> (8 * i))
		}
		raw.Write(wb[:])
		h.Write(wb[:])
	}
	if s.present {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write([]byte(s.value))
	return h.Sum64(), cacheEnt{bits: raw.String(), state: s}
}

// searchRegister runs the Wing & Gong / Lowe search over one key's events.
func searchRegister(ops []Op, maxStates int) (Outcome, int, *Op) {
	head := buildList(ops)
	type frame struct {
		e     *entry
		prev  regState
	}
	var stack []frame
	linearized := newBitset(len(ops))
	cache := map[uint64][]cacheEnt{}
	state := regState{}
	states := 0
	e := head.next
	for head.next != nil {
		if e == nil {
			// Walked off the end without linearizing anything new:
			// behave like hitting an unlinearizable response.
			if len(stack) == 0 {
				return NonLinearizable, states, lastPending(head)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = top.prev
			linearized.clear(top.e.idx)
			unlift(top.e)
			e = top.e.next
			continue
		}
		if e.match != nil { // invocation: try to linearize e.op here
			next, ok := apply(e.op, state)
			advanced := false
			if ok {
				linearized.set(e.idx)
				h, ent := cacheKey(linearized, next)
				if !cacheHas(cache, h, ent) {
					cache[h] = append(cache[h], ent)
					states++
					if states > maxStates {
						return Unknown, states, nil
					}
					stack = append(stack, frame{e: e, prev: state})
					state = next
					lift(e)
					e = head.next
					advanced = true
				} else {
					linearized.clear(e.idx)
				}
			}
			if !advanced {
				e = e.next
			}
			continue
		}
		// Response of an op not yet linearized: every op that must come
		// first has been tried; backtrack.
		if len(stack) == 0 {
			return NonLinearizable, states, e.op
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		state = top.prev
		linearized.clear(top.e.idx)
		unlift(top.e)
		e = top.e.next
	}
	return Linearizable, states, nil
}

func cacheHas(cache map[uint64][]cacheEnt, h uint64, ent cacheEnt) bool {
	for _, c := range cache[h] {
		if c.bits == ent.bits && c.state == ent.state {
			return true
		}
	}
	return false
}

func lastPending(head *entry) *Op {
	var op *Op
	for e := head.next; e != nil; e = e.next {
		op = e.op
	}
	return op
}
