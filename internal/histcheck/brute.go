package histcheck

// bruteForce decides linearizability of one key's history by trying every
// permutation consistent with real-time order. Exponential — usable only
// for tiny histories (the fuzz cross-check caps at 8 ops) — but its
// correctness is self-evident, which is the point: it is the oracle the
// search is validated against.
func bruteForce(ops []Op) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	used := make([]bool, n)
	var rec func(remaining int, s regState) bool
	rec = func(remaining int, s regState) bool {
		if remaining == 0 {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// ops[i] may be next only if no other pending op finished
			// before it began (that op would have to precede it).
			eligible := true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && ops[j].End < ops[i].Start {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			next, ok := apply(&ops[i], s)
			if !ok {
				continue
			}
			used[i] = true
			if rec(remaining-1, next) {
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(n, regState{})
}
