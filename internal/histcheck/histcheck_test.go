package histcheck

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func w(client int, key, val string, start, end int64) Op {
	return Op{Client: client, Kind: OpWrite, Key: key, Value: val, Start: start, End: end, OK: true}
}

func rd(client int, key, val string, found bool, start, end int64) Op {
	return Op{Client: client, Kind: OpRead, Key: key, Value: val, Found: found, Start: start, End: end, OK: true}
}

func del(client int, key string, start, end int64) Op {
	return Op{Client: client, Kind: OpDelete, Key: key, Start: start, End: end, OK: true}
}

func checkOne(t *testing.T, ops []Op, want Outcome) KeyResult {
	t.Helper()
	res := CheckKey("k", ops, Options{})
	if res.Outcome != want {
		t.Fatalf("outcome = %s, want %s (states=%d, bad=%v)\nhistory:\n%s",
			res.Outcome, want, res.States, res.Bad, dump(ops))
	}
	return res
}

func dump(ops []Op) string {
	s := ""
	for _, o := range ops {
		s += "  " + o.String() + "\n"
	}
	return s
}

func TestSequentialLinearizable(t *testing.T) {
	checkOne(t, []Op{
		w(0, "k", "1", 0, 10),
		rd(1, "k", "1", true, 20, 30),
		w(0, "k", "2", 40, 50),
		rd(1, "k", "2", true, 60, 70),
		del(0, "k", 80, 90),
		rd(1, "k", "", false, 100, 110),
	}, Linearizable)
}

// The classic stale read: a read that begins after a write's ack must not
// observe the pre-write state.
func TestStaleReadRejected(t *testing.T) {
	checkOne(t, []Op{
		w(0, "k", "1", 0, 10),
		w(0, "k", "2", 20, 30),
		rd(1, "k", "1", true, 40, 50), // stale: write "2" was acked at 30
	}, NonLinearizable)
	// Not-found after an acked write is stale too.
	checkOne(t, []Op{
		w(0, "k", "1", 0, 10),
		rd(1, "k", "", false, 20, 30),
	}, NonLinearizable)
}

// The classic lost update: two sequential acked writes, then reads that
// flip back to the overwritten value.
func TestLostUpdateRejected(t *testing.T) {
	checkOne(t, []Op{
		w(0, "k", "1", 0, 10),
		w(1, "k", "2", 20, 30),
		rd(2, "k", "2", true, 40, 50),
		rd(2, "k", "1", true, 60, 70), // "1" resurfaced: "2" was lost
	}, NonLinearizable)
}

// Concurrent ops may linearize in either order — both observations are
// legal while the windows overlap.
func TestConcurrentWritesEitherOrder(t *testing.T) {
	checkOne(t, []Op{
		w(0, "k", "1", 0, 100),
		w(1, "k", "2", 0, 100),
		rd(2, "k", "2", true, 0, 100),
		rd(2, "k", "1", true, 150, 160), // final order: 2 then 1
	}, Linearizable)
	// A read overlapping a write may see either side of it.
	checkOne(t, []Op{
		w(0, "k", "1", 0, 100),
		rd(1, "k", "", false, 10, 20),
		rd(1, "k", "1", true, 30, 40),
	}, Linearizable)
	// ...but real-time order between the reads still binds: once a read
	// saw the write, a later read cannot unsee it.
	checkOne(t, []Op{
		w(0, "k", "1", 0, 100),
		rd(1, "k", "1", true, 10, 20),
		rd(1, "k", "", false, 30, 40),
	}, NonLinearizable)
}

// An uncertain write (client timeout — End=Inf, OK=false) may take effect
// at any later point, or never.
func TestUncertainWrite(t *testing.T) {
	unc := Op{Client: 0, Kind: OpWrite, Key: "k", Value: "1", Start: 0, End: Inf}
	// Surfacing later is legal...
	checkOne(t, []Op{unc, rd(1, "k", "1", true, 50, 60)}, Linearizable)
	// ...as is never surfacing...
	checkOne(t, []Op{unc, rd(1, "k", "", false, 50, 60)}, Linearizable)
	// ...even surfacing, disappearing under a delete, for a while:
	checkOne(t, []Op{
		unc,
		rd(1, "k", "1", true, 50, 60),
		del(1, "k", 70, 80),
		rd(1, "k", "", false, 90, 100),
	}, Linearizable)
	// But it cannot make a *never-written* value appear.
	checkOne(t, []Op{unc, rd(1, "k", "2", true, 50, 60)}, NonLinearizable)
}

func TestDeleteSemantics(t *testing.T) {
	checkOne(t, []Op{
		w(0, "k", "1", 0, 10),
		del(1, "k", 20, 30),
		rd(2, "k", "1", true, 40, 50), // deleted value resurfaced
	}, NonLinearizable)
}

func TestUnknownOnTinyBudget(t *testing.T) {
	// Many fully-concurrent writes explode the search; a one-state budget
	// must give up rather than mislabel.
	var ops []Op
	for i := 0; i < 8; i++ {
		ops = append(ops, w(i, "k", fmt.Sprint(i), 0, 1000))
	}
	ops = append(ops, rd(9, "k", "3", true, 2000, 2001))
	res := CheckKey("k", ops, Options{MaxStates: 1})
	if res.Outcome != Unknown {
		t.Fatalf("outcome = %s, want unknown", res.Outcome)
	}
}

func TestCheckGroupsByKey(t *testing.T) {
	rep := Check([]Op{
		w(0, "a", "1", 0, 10),
		rd(1, "a", "1", true, 20, 30),
		w(0, "b", "1", 0, 10),
		rd(1, "b", "2", true, 20, 30), // bad key b
	}, Options{})
	if rep.Ok() {
		t.Fatal("report Ok despite nonlinearizable key")
	}
	if rep.TotalOps() != 4 {
		t.Fatalf("TotalOps = %d, want 4", rep.TotalOps())
	}
	var badKeys []string
	for _, k := range rep.Keys {
		if k.Outcome == NonLinearizable {
			badKeys = append(badKeys, k.Key)
		}
	}
	if len(badKeys) != 1 || badKeys[0] != "b" {
		t.Fatalf("bad keys = %v, want [b]", badKeys)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	ref := r.BeginWrite(0, "k", "1")
	r.EndWrite(ref, nil)
	ref = r.BeginRead(1, "k")
	r.EndRead(ref, "1", true, nil)
	ref = r.BeginWrite(0, "k", "2")
	r.EndWrite(ref, errors.New("timeout")) // uncertain
	ref = r.BeginRead(1, "k")
	r.EndRead(ref, "", false, errors.New("timeout")) // dropped
	ops := r.Ops()
	if len(ops) != 4 {
		t.Fatalf("recorded %d ops, want 4", len(ops))
	}
	if !ops[0].OK || ops[0].End == Inf {
		t.Fatalf("acked write not definite: %+v", ops[0])
	}
	if ops[2].OK || ops[2].End != Inf {
		t.Fatalf("timed-out write not uncertain: %+v", ops[2])
	}
	res := CheckKey("k", ops, Options{})
	if res.Outcome != Linearizable {
		t.Fatalf("recorded history: %s", res.Outcome)
	}
	if res.Ops != 3 {
		t.Fatalf("checked %d ops, want 3 (failed read dropped)", res.Ops)
	}
	acked := r.AckedWrites()
	if !acked["k"]["1"] || acked["k"]["2"] {
		t.Fatalf("AckedWrites = %v", acked)
	}
}

func TestCheckConvergence(t *testing.T) {
	ops := []Op{
		w(0, "a", "1", 0, 10),
		w(1, "a", "2", 0, 10),
		w(0, "b", "9", 0, 10),
	}
	ok := map[string]map[string]string{
		"r0": {"a": "2", "b": "9"},
		"r1": {"a": "2", "b": "9"},
	}
	if p := CheckConvergence(ok, ops); len(p) != 0 {
		t.Fatalf("converged state flagged: %v", p)
	}
	diverged := map[string]map[string]string{
		"r0": {"a": "1"},
		"r1": {"a": "2"},
	}
	if p := CheckConvergence(diverged, ops); len(p) == 0 {
		t.Fatal("diverged replicas not flagged")
	}
	phantom := map[string]map[string]string{
		"r0": {"a": "7"},
		"r1": {"a": "7"},
	}
	if p := CheckConvergence(phantom, ops); len(p) == 0 {
		t.Fatal("phantom value not flagged")
	}
}

// genHistory builds a small random single-key history from a seed: a mix of
// overlapping reads/writes/deletes with occasional uncertain writes. Used
// by both the cross-check test and the fuzz target.
func genHistory(rng *rand.Rand, n int) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		start := int64(rng.Intn(60))
		end := start + 1 + int64(rng.Intn(40))
		o := Op{Client: i, Key: "k", Start: start, End: end, OK: true}
		switch rng.Intn(4) {
		case 0:
			o.Kind = OpRead
			o.Found = rng.Intn(3) > 0
			if o.Found {
				o.Value = fmt.Sprint(rng.Intn(3))
			}
		case 1, 2:
			o.Kind = OpWrite
			o.Value = fmt.Sprint(rng.Intn(3))
			if rng.Intn(8) == 0 {
				o.End, o.OK = Inf, false // uncertain
			}
		default:
			o.Kind = OpDelete
		}
		ops = append(ops, o)
	}
	return ops
}

// TestCrossCheckBruteForce validates the search against the brute-force
// oracle on thousands of random histories ≤ 8 ops.
func TestCrossCheckBruteForce(t *testing.T) {
	for seed := int64(0); seed < 3000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := genHistory(rng, 2+rng.Intn(7))
		res := CheckKey("k", ops, Options{})
		if res.Outcome == Unknown {
			t.Fatalf("seed %d: budget exhausted on %d ops", seed, len(ops))
		}
		want := bruteForce(ops)
		got := res.Outcome == Linearizable
		if got != want {
			t.Fatalf("seed %d: search=%v brute=%v\nhistory:\n%s", seed, got, want, dump(ops))
		}
	}
}

// FuzzCheckKey drives the same cross-check from fuzzer-chosen seeds.
func FuzzCheckKey(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		f.Add(seed, uint8(6))
	}
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		size := 2 + int(n%7) // ≤ 8 ops keeps brute force instant
		rng := rand.New(rand.NewSource(seed))
		ops := genHistory(rng, size)
		res := CheckKey("k", ops, Options{})
		if res.Outcome == Unknown {
			t.Skip("budget exhausted")
		}
		if got, want := res.Outcome == Linearizable, bruteForce(ops); got != want {
			t.Fatalf("seed %d: search=%v brute=%v\nhistory:\n%s", seed, got, want, dump(ops))
		}
	})
}
