package histcheck

import (
	"sync"
	"time"
)

// Recorder collects a concurrent history on one monotonic clock. Workers
// call Begin* immediately before issuing an operation and End* with its
// outcome; the recorder timestamps both sides. Safe for concurrent use.
//
// Outcome policy (what makes the recorded history checkable):
//   - a write/delete that errored or timed out is kept as *uncertain*
//     (End = Inf): it may have taken effect server-side, so a later read
//     observing it is legal, and a checker unaware of it would flag that
//     read as a phantom;
//   - a read that errored is dropped — an unobserved read constrains
//     nothing.
type Recorder struct {
	t0 time.Time

	mu  sync.Mutex
	ops []Op
}

// OpRef identifies a begun operation until its End* call.
type OpRef int

// NewRecorder starts a recorder; its clock zero is now.
func NewRecorder() *Recorder {
	return &Recorder{t0: time.Now()}
}

func (r *Recorder) now() int64 { return time.Since(r.t0).Nanoseconds() }

func (r *Recorder) begin(client int, kind Kind, key, value string) OpRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, Op{
		Client: client,
		Kind:   kind,
		Key:    key,
		Value:  value,
		Start:  r.now(),
		End:    Inf,
	})
	return OpRef(len(r.ops) - 1)
}

// BeginWrite records the invocation of write(key)=value.
func (r *Recorder) BeginWrite(client int, key, value string) OpRef {
	return r.begin(client, OpWrite, key, value)
}

// BeginDelete records the invocation of delete(key).
func (r *Recorder) BeginDelete(client int, key string) OpRef {
	return r.begin(client, OpDelete, key, "")
}

// BeginRead records the invocation of read(key).
func (r *Recorder) BeginRead(client int, key string) OpRef {
	return r.begin(client, OpRead, key, "")
}

// EndWrite (also used for deletes) records the outcome: err == nil is a
// definite acknowledgment; anything else leaves the op uncertain.
func (r *Recorder) EndWrite(ref OpRef, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		return // stays End=Inf, OK=false: may take effect any time
	}
	r.ops[ref].End = r.now()
	r.ops[ref].OK = true
}

// EndRead records a successful read's observation; a non-nil err drops the
// operation from the history.
func (r *Recorder) EndRead(ref OpRef, value string, found bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.ops[ref].Kind = OpRead
		r.ops[ref].OK = false
		// Marked dropped by staying End=Inf with Kind==OpRead; CheckKey
		// discards unobserved reads.
		return
	}
	r.ops[ref].End = r.now()
	r.ops[ref].OK = true
	r.ops[ref].Value = value
	r.ops[ref].Found = found
}

// Ops returns a copy of the history recorded so far.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

// Len reports the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// AckedWrites returns, per key, the set of values whose write was
// definitely acknowledged — the convergence checker's ground truth.
func (r *Recorder) AckedWrites() map[string]map[string]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]map[string]bool{}
	for _, o := range r.ops {
		if o.Kind == OpWrite && o.OK {
			if out[o.Key] == nil {
				out[o.Key] = map[string]bool{}
			}
			out[o.Key][o.Value] = true
		}
	}
	return out
}
