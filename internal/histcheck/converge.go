package histcheck

import (
	"fmt"
	"sort"
)

// CheckConvergence verifies the eventual-consistency contract for one
// shard's replicas after the system has quiesced and healed:
//
//  1. agreement — every replica holds the identical key→value state for
//     the keys under test, and
//  2. provenance — every present value was actually written to that key at
//     some point in the history (no invented or cross-key values).
//
// It deliberately does NOT require every acked write to survive: under
// MS+EC a master crash legally loses acked-but-unpropagated writes
// (paper Appendix C), and any write may be superseded by a later one. What
// EC promises is that the replicas converge on *some* written value.
//
// replicas maps replica name → its final key/value state (absent key =
// deleted/never present). ops is the full recorded history. Returns a list
// of human-readable violations, empty when the contract holds.
func CheckConvergence(replicas map[string]map[string]string, ops []Op) []string {
	var problems []string
	names := make([]string, 0, len(replicas))
	for n := range replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil
	}

	// Agreement: all replicas equal, compared against the first.
	ref := replicas[names[0]]
	for _, n := range names[1:] {
		st := replicas[n]
		for k, v := range ref {
			if ov, ok := st[k]; !ok {
				problems = append(problems, fmt.Sprintf("divergence: %s has %q=%q, %s misses it", names[0], k, v, n))
			} else if ov != v {
				problems = append(problems, fmt.Sprintf("divergence: key %q is %q on %s but %q on %s", k, v, names[0], ov, n))
			}
		}
		for k, v := range st {
			if _, ok := ref[k]; !ok {
				problems = append(problems, fmt.Sprintf("divergence: %s has %q=%q, %s misses it", n, k, v, names[0]))
			}
		}
	}

	// Provenance: every surviving value traces back to a write of that key
	// (acked or uncertain — an uncertain write taking effect is legal).
	written := map[string]map[string]bool{}
	for _, o := range ops {
		if o.Kind == OpWrite {
			if written[o.Key] == nil {
				written[o.Key] = map[string]bool{}
			}
			written[o.Key][o.Value] = true
		}
	}
	for _, n := range names {
		for k, v := range replicas[n] {
			if !written[k][v] {
				problems = append(problems, fmt.Sprintf("provenance: %s holds %q=%q, never written to that key", n, k, v))
			}
		}
	}
	return problems
}
