package workload

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func TestUniformCoversKeyspace(t *testing.T) {
	u := Uniform{Keys: 100}
	r := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		k := u.Next(r)
		if k < 0 || k >= 100 {
			t.Fatalf("index %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 100 {
		t.Fatalf("uniform draw covered %d/100 keys", len(seen))
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(10000)
	r := rand.New(rand.NewSource(42))
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		k := z.Next(r)
		if k < 0 || k >= 10000 {
			t.Fatalf("index %d out of range", k)
		}
		counts[k]++
	}
	// Sort key frequencies; the hottest keys should dominate.
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	topShare := 0
	for i := 0; i < 100 && i < len(freqs); i++ {
		topShare += freqs[i]
	}
	share := float64(topShare) / n
	// With theta=0.99 over 10k items, the hottest 1% of keys draw well
	// over a third of accesses.
	if share < 0.35 {
		t.Fatalf("zipfian not skewed enough: top-100 share %.2f", share)
	}
	// And it must not collapse to a handful of keys.
	if len(counts) < 1000 {
		t.Fatalf("zipfian visited only %d distinct keys", len(counts))
	}
}

func TestZipfianDeterministicAcrossInstances(t *testing.T) {
	z1 := NewZipfian(1000)
	z2 := NewZipfian(1000)
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if z1.Next(r1) != z2.Next(r2) {
			t.Fatal("zipfian draws diverge for identical seeds")
		}
	}
}

func TestMixRatios(t *testing.T) {
	g, err := NewGenerator(Options{
		Dist: Uniform{Keys: 1000},
		Mix:  Mix{GetPct: 60, PutPct: 30, ScanPct: 10},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var gets, puts, scans int
	const n = 100000
	for i := 0; i < n; i++ {
		switch g.Next().Kind {
		case Get:
			gets++
		case Put:
			puts++
		case Scan:
			scans++
		}
	}
	if gets < n*55/100 || gets > n*65/100 {
		t.Fatalf("gets=%d, want ~60%%", gets)
	}
	if puts < n*25/100 || puts > n*35/100 {
		t.Fatalf("puts=%d, want ~30%%", puts)
	}
	if scans < n*7/100 || scans > n*13/100 {
		t.Fatalf("scans=%d, want ~10%%", scans)
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := NewGenerator(Options{Dist: Uniform{Keys: 10}, Mix: Mix{GetPct: 50}}); err == nil {
		t.Fatal("mix not summing to 100 must be rejected")
	}
	if _, err := NewGenerator(Options{Mix: ReadMostly}); err == nil {
		t.Fatal("missing dist must be rejected")
	}
}

func TestStandardMixesSum(t *testing.T) {
	for _, m := range []Mix{ReadMostly, UpdateIntensive, ScanIntensive, JobLaunch, IOForwarding, Monitoring, Analytics} {
		if m.GetPct+m.PutPct+m.ScanPct != 100 {
			t.Fatalf("mix %+v does not sum to 100", m)
		}
	}
}

func TestKeysSortByIndex(t *testing.T) {
	prev := Key(16, 0)
	for i := 1; i < 2000; i += 17 {
		k := Key(16, i)
		if len(k) != 16 {
			t.Fatalf("key length %d", len(k))
		}
		if bytes.Compare(prev, k) >= 0 {
			t.Fatalf("keys not ordered: %q >= %q", prev, k)
		}
		prev = k
	}
}

func TestGeneratorKeySizesAndValues(t *testing.T) {
	g, err := NewGenerator(Options{Dist: Uniform{Keys: 100}, Mix: UpdateIntensive, KeySize: 20, ValueSize: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if len(op.Key) != 20 {
			t.Fatalf("key size %d", len(op.Key))
		}
		if op.Kind == Put && len(op.Value) != 64 {
			t.Fatalf("value size %d", len(op.Value))
		}
	}
}

func TestScanOps(t *testing.T) {
	g, err := NewGenerator(Options{Dist: Uniform{Keys: 10000}, Mix: ScanIntensive, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sawScan := false
	for i := 0; i < 100; i++ {
		op := g.Next()
		if op.Kind != Scan {
			continue
		}
		sawScan = true
		if bytes.Compare(op.Key, op.End) >= 0 && string(op.Key) < string(Key(16, 9999)) {
			t.Fatalf("scan range inverted: [%q,%q)", op.Key, op.End)
		}
		if op.Limit <= 0 {
			t.Fatal("scan without limit")
		}
	}
	if !sawScan {
		t.Fatal("scan-intensive mix produced no scans")
	}
}

func TestSplitRandDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for w := 0; w < 64; w++ {
		s := SplitRand(1, w)
		if seen[s] {
			t.Fatal("duplicate worker seed")
		}
		seen[s] = true
	}
}
