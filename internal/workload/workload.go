// Package workload generates the request streams the paper evaluates
// with: YCSB-style mixes (update-intensive 50% GET, read-mostly 95% GET,
// scan-intensive 95% SCAN) over uniform and zipfian(0.99) key popularity
// with 16-byte keys and 32-byte values, plus the four HPC-derived traces
// §VIII-A describes — job launch (50:50 get:put), I/O forwarding (62:38),
// Lustre monitoring (put-dominated time series) and analytics (pure
// uniform reads).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind is the operation type of one generated request.
type Kind uint8

const (
	// Get reads one key.
	Get Kind = iota
	// Put writes one key.
	Put
	// Scan reads a short ordered range.
	Scan
)

// Op is one generated request.
type Op struct {
	Kind  Kind
	Key   []byte
	Value []byte
	// End and Limit shape Scan requests.
	End   []byte
	Limit int
}

// KeyDist draws key indexes in [0, N).
type KeyDist interface {
	// Next returns the next key index using r.
	Next(r *rand.Rand) int
	// N is the keyspace size.
	N() int
}

// Uniform draws keys uniformly.
type Uniform struct{ Keys int }

// Next returns a uniform index.
func (u Uniform) Next(r *rand.Rand) int { return r.Intn(u.Keys) }

// N returns the keyspace size.
func (u Uniform) N() int { return u.Keys }

// Zipfian draws keys with the YCSB zipfian distribution (constant 0.99):
// item ranks are scrambled so popular keys scatter across the keyspace,
// as YCSB's ScrambledZipfian does.
type Zipfian struct {
	keys  int
	theta float64
	zetan float64
	alpha float64
	eta   float64
	zeta2 float64
}

// NewZipfian precomputes the distribution for n keys with the YCSB
// constant 0.99.
func NewZipfian(n int) *Zipfian {
	return NewZipfianTheta(n, 0.99)
}

// NewZipfianTheta precomputes the distribution with an explicit constant.
func NewZipfianTheta(n int, theta float64) *Zipfian {
	z := &Zipfian{keys: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next zipfian-ranked key index, scrambled.
func (z *Zipfian) Next(r *rand.Rand) int {
	u := r.Float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int(float64(z.keys) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.keys {
		rank = z.keys - 1
	}
	// Scramble so hot keys spread over the keyspace (FNV-style hash).
	h := uint64(rank) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return int(h % uint64(z.keys))
}

// N returns the keyspace size.
func (z *Zipfian) N() int { return z.keys }

// Mix is an operation ratio in percent; the three fields must sum to 100.
type Mix struct {
	GetPct  int
	PutPct  int
	ScanPct int
}

// The paper's standard mixes.
var (
	// ReadMostly is YCSB 95% GET / 5% PUT.
	ReadMostly = Mix{GetPct: 95, PutPct: 5}
	// UpdateIntensive is YCSB 50% GET / 50% PUT.
	UpdateIntensive = Mix{GetPct: 50, PutPct: 50}
	// ScanIntensive is YCSB 95% SCAN / 5% PUT.
	ScanIntensive = Mix{PutPct: 5, ScanPct: 95}
	// JobLaunch mirrors the MPI job-launch trace: 50:50 get:put.
	JobLaunch = Mix{GetPct: 50, PutPct: 50}
	// IOForwarding mirrors the SeaweedFS metadata trace: 62:38 get:put.
	IOForwarding = Mix{GetPct: 62, PutPct: 38}
	// Monitoring is the put-dominated Lustre statistics stream.
	Monitoring = Mix{GetPct: 5, PutPct: 95}
	// Analytics is the read-only model-driving workload.
	Analytics = Mix{GetPct: 100}
)

// Generator produces ops for one workload configuration. It is not safe
// for concurrent use; give each load goroutine its own (SplitRand helps).
type Generator struct {
	dist      KeyDist
	mix       Mix
	keySize   int
	valueSize int
	scanSpan  int
	rnd       *rand.Rand
	keyBuf    []byte
	endBuf    []byte
	valBuf    []byte
}

// Options configure a Generator.
type Options struct {
	// Dist is the key popularity distribution (required).
	Dist KeyDist
	// Mix is the operation ratio (required, must sum to 100).
	Mix Mix
	// KeySize and ValueSize default to the paper's 16 B and 32 B.
	KeySize   int
	ValueSize int
	// ScanSpan is the key span of one Scan (default 64).
	ScanSpan int
	// Seed makes the stream reproducible.
	Seed int64
}

// NewGenerator builds a generator.
func NewGenerator(opts Options) (*Generator, error) {
	if opts.Dist == nil {
		return nil, fmt.Errorf("workload: Dist is required")
	}
	if opts.Mix.GetPct+opts.Mix.PutPct+opts.Mix.ScanPct != 100 {
		return nil, fmt.Errorf("workload: mix %+v does not sum to 100", opts.Mix)
	}
	if opts.KeySize <= 0 {
		opts.KeySize = 16
	}
	if opts.KeySize < 12 {
		return nil, fmt.Errorf("workload: KeySize %d too small (min 12)", opts.KeySize)
	}
	if opts.ValueSize <= 0 {
		opts.ValueSize = 32
	}
	if opts.ScanSpan <= 0 {
		opts.ScanSpan = 64
	}
	g := &Generator{
		dist:      opts.Dist,
		mix:       opts.Mix,
		keySize:   opts.KeySize,
		valueSize: opts.ValueSize,
		scanSpan:  opts.ScanSpan,
		rnd:       rand.New(rand.NewSource(opts.Seed)),
		keyBuf:    make([]byte, opts.KeySize),
		endBuf:    make([]byte, opts.KeySize),
		valBuf:    make([]byte, opts.ValueSize),
	}
	for i := range g.valBuf {
		g.valBuf[i] = byte('a' + i%26)
	}
	return g, nil
}

// KeyAt renders key index i into buf (len = keySize): "k" + zero-padded
// decimal, so keys sort by index — which range partitioning relies on.
func keyAt(buf []byte, i int) {
	buf[0] = 'k'
	for p := len(buf) - 1; p >= 1; p-- {
		buf[p] = byte('0' + i%10)
		i /= 10
	}
}

// Key materializes key index i (for preloading).
func Key(size, i int) []byte {
	if size <= 0 {
		size = 16
	}
	buf := make([]byte, size)
	keyAt(buf, i)
	return buf
}

// Next produces the next operation. The returned slices are owned by the
// generator and invalid after the next call.
func (g *Generator) Next() Op {
	i := g.dist.Next(g.rnd)
	keyAt(g.keyBuf, i)
	p := g.rnd.Intn(100)
	switch {
	case p < g.mix.GetPct:
		return Op{Kind: Get, Key: g.keyBuf}
	case p < g.mix.GetPct+g.mix.PutPct:
		// Perturb the value slightly so writes are distinguishable.
		g.valBuf[0] = byte('A' + i%26)
		return Op{Kind: Put, Key: g.keyBuf, Value: g.valBuf}
	default:
		end := i + g.scanSpan
		if end > g.dist.N() {
			end = g.dist.N()
		}
		keyAt(g.endBuf, end)
		return Op{Kind: Scan, Key: g.keyBuf, End: g.endBuf, Limit: g.scanSpan}
	}
}

// SplitRand derives a distinct seed for worker w from a base seed.
func SplitRand(seed int64, w int) int64 {
	return seed*1_000_003 + int64(w)*7919
}
