// Package core is the top-level embedding API for bespokv — the paper's
// primary contribution assembled into one handle. Launch deploys a
// complete distributed KV service (coordinator, lock manager, shared log,
// and N shards × R replicas of controlet+datalet pairs) from a
// single-server datalet choice, and the returned Service exposes the
// Table II client API plus the framework's distinguishing operations:
// per-request consistency, range queries, live topology/consistency
// transitions, and node-failure injection for chaos testing.
//
// The packages underneath remain usable à la carte — internal/controlet
// wraps an existing datalet process, internal/cluster gives fine-grained
// deployment control — but applications that just want "a datalet, scaled
// out" start here:
//
//	svc, _ := core.Launch(core.Options{Shards: 4, Replicas: 3,
//	        Engine: "btree", Mode: core.ModeMSStrong})
//	defer svc.Close()
//	svc.Put("t", []byte("k"), []byte("v"))
//	v, ok, _ := svc.Get("t", []byte("k"))
//	svc.Transition(core.ModeAAEventual) // live, zero downtime
package core

import (
	"time"

	"bespokv/internal/client"
	"bespokv/internal/cluster"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// The four pre-built topology+consistency modes (§IV).
var (
	// ModeMSStrong is master-slave with chain-replicated strong
	// consistency (MS+SC).
	ModeMSStrong = topology.Mode{Topology: topology.MS, Consistency: topology.Strong}
	// ModeMSEventual is master-slave with asynchronous propagation
	// (MS+EC).
	ModeMSEventual = topology.Mode{Topology: topology.MS, Consistency: topology.Eventual}
	// ModeAAStrong is active-active with DLM-locked strong consistency
	// (AA+SC).
	ModeAAStrong = topology.Mode{Topology: topology.AA, Consistency: topology.Strong}
	// ModeAAEventual is active-active with shared-log-ordered eventual
	// consistency (AA+EC).
	ModeAAEventual = topology.Mode{Topology: topology.AA, Consistency: topology.Eventual}
)

// Consistency levels for per-request reads (§IV-C).
const (
	// LevelDefault uses the service's configured consistency.
	LevelDefault = wire.LevelDefault
	// LevelStrong demands a linearizable read.
	LevelStrong = wire.LevelStrong
	// LevelEventual allows any replica to answer.
	LevelEventual = wire.LevelEventual
)

// Options shape a Launch. The zero value is a 1-shard, 3-replica MS+SC
// hash-table store on the in-process transport.
type Options struct {
	// Shards and Replicas shape the data plane (defaults 1 and 3).
	Shards   int
	Replicas int
	// Mode is the topology+consistency pair (default ModeMSStrong).
	Mode topology.Mode
	// Engine selects the datalet: "ht", "btree", "applog", "lsm"
	// (default "ht"). EnginesByReplica configures polyglot persistence
	// (§IV-D), one engine name per replica.
	Engine           string
	EnginesByReplica []string
	// RangePartitioned selects range partitioning (enables cross-shard
	// GetRange on ordered engines); default is consistent hashing.
	RangePartitioned bool
	// P2PRouting lets any controlet accept any key (§IV-E).
	P2PRouting bool
	// TCP deploys over loopback sockets instead of the in-process
	// transport.
	TCP bool
	// DataDir persists applog/lsm engines under per-node directories.
	DataDir string
	// Standbys pre-provisions spare pairs for automatic failover.
	Standbys int
	// HeartbeatTimeout tunes failure detection (default 800ms).
	HeartbeatTimeout time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Service is a running bespokv deployment plus a connected client.
type Service struct {
	cluster *cluster.Cluster
	cli     *client.Client
}

// Launch deploys a service per opts and connects a client to it.
func Launch(opts Options) (*Service, error) {
	copts := cluster.Options{
		Shards:           opts.Shards,
		Replicas:         opts.Replicas,
		Mode:             opts.Mode,
		Engine:           opts.Engine,
		EnginesByReplica: opts.EnginesByReplica,
		P2PRouting:       opts.P2PRouting,
		DataDir:          opts.DataDir,
		Standbys:         opts.Standbys,
		HeartbeatTimeout: opts.HeartbeatTimeout,
		Logf:             opts.Logf,
	}
	if opts.RangePartitioned {
		copts.Partitioner = topology.RangePartitioner
	}
	if opts.TCP {
		copts.NetworkName = "tcp"
	}
	c, err := cluster.Start(copts)
	if err != nil {
		return nil, err
	}
	cli, err := c.Client()
	if err != nil {
		c.Close()
		return nil, err
	}
	return &Service{cluster: c, cli: cli}, nil
}

// Put writes key=value into table ("" = default table).
func (s *Service) Put(table string, key, value []byte) error {
	return s.cli.Put(table, key, value)
}

// Get reads key at the service's default consistency.
func (s *Service) Get(table string, key []byte) ([]byte, bool, error) {
	return s.cli.Get(table, key)
}

// GetLevel reads key at an explicit consistency level (§IV-C).
func (s *Service) GetLevel(table string, key []byte, level wire.Level) ([]byte, bool, error) {
	return s.cli.GetLevel(table, key, level)
}

// Del deletes key; found reports whether it existed.
func (s *Service) Del(table string, key []byte) (bool, error) {
	return s.cli.Del(table, key)
}

// GetRange returns live pairs with start <= key < end in key order
// (§IV-B); requires ordered engines, and range partitioning for
// cross-shard efficiency.
func (s *Service) GetRange(table string, start, end []byte, limit int) ([]wire.KV, error) {
	return s.cli.GetRange(table, start, end, limit)
}

// CreateTable creates a table on every shard.
func (s *Service) CreateTable(table string) error { return s.cli.CreateTable(table) }

// DeleteTable drops a table on every shard.
func (s *Service) DeleteTable(table string) error { return s.cli.DeleteTable(table) }

// Transition switches the service's topology/consistency mode live (§V):
// no downtime, no data migration. It returns once the new mode serves.
func (s *Service) Transition(to topology.Mode) error {
	return s.cluster.Transition(to)
}

// Mode returns the service's current topology+consistency mode.
func (s *Service) Mode() topology.Mode {
	return s.cluster.Opts.Mode
}

// NewClient opens an additional independent client (e.g. one per worker).
func (s *Service) NewClient() (*client.Client, error) {
	return s.cluster.Client()
}

// Cluster exposes the underlying deployment for advanced control
// (node kills, admin access, white-box inspection).
func (s *Service) Cluster() *cluster.Cluster { return s.cluster }

// Close stops the client and tears the whole deployment down.
func (s *Service) Close() error {
	err := s.cli.Close()
	s.cluster.Close()
	return err
}
