package core

import (
	"fmt"
	"testing"
	"time"
)

func TestLaunchDefaults(t *testing.T) {
	svc, err := Launch(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Mode() != ModeMSStrong {
		t.Fatalf("default mode = %s", svc.Mode())
	}
	if err := svc.Put("", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := svc.Get("", []byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("(%q,%v,%v)", v, ok, err)
	}
	found, err := svc.Del("", []byte("k"))
	if err != nil || !found {
		t.Fatalf("del: %v %v", found, err)
	}
}

func TestLaunchTablesAndLevels(t *testing.T) {
	svc, err := Launch(Options{Shards: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.CreateTable("jobs"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Put("jobs", []byte("j1"), []byte("running")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := svc.GetLevel("jobs", []byte("j1"), LevelEventual)
	if err != nil || !ok || string(v) != "running" {
		t.Fatalf("(%q,%v,%v)", v, ok, err)
	}
	if err := svc.DeleteTable("jobs"); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchRangePartitionedScan(t *testing.T) {
	svc, err := Launch(Options{
		Shards:           2,
		Engine:           "btree",
		RangePartitioned: true,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("%c-key", 'a'+i))
		if err := svc.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := svc.GetRange("", []byte("c"), []byte("h"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 {
		t.Fatalf("range returned %d keys", len(kvs))
	}
}

func TestLaunchTransition(t *testing.T) {
	svc, err := Launch(Options{Mode: ModeMSEventual, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Put("", []byte("durable"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := svc.Transition(ModeAAEventual); err != nil {
		t.Fatal(err)
	}
	if svc.Mode() != ModeAAEventual {
		t.Fatalf("mode after transition = %s", svc.Mode())
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok, err := svc.Get("", []byte("durable"))
		if err == nil && ok && string(v) == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("durable key lost: (%q,%v,%v)", v, ok, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := svc.Put("", []byte("post"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchPolyglot(t *testing.T) {
	svc, err := Launch(Options{
		Mode:             ModeMSEventual,
		EnginesByReplica: []string{"ht", "btree", "applog"},
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Put("", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, pair := range svc.Cluster().Shards[0] {
		names[pair.Datalet.Engine("").Name()] = true
	}
	if len(names) != 3 {
		t.Fatalf("polyglot engines = %v", names)
	}
}

func TestLaunchRejectsBadEngine(t *testing.T) {
	if _, err := Launch(Options{Engine: "rocksdb", Logf: t.Logf}); err == nil {
		t.Fatal("unknown engine must be rejected")
	}
}
