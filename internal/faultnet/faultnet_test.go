package faultnet

import (
	"bytes"
	"testing"
	"time"

	"bespokv/internal/transport"
)

// fabricPair builds a fabric over the inproc network with host "a" dialed
// into a listener owned by host "b", returning both connection ends.
func fabricPair(t *testing.T, seed int64) (*Fabric, transport.Conn, transport.Conn) {
	t.Helper()
	inner, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	f := New(inner, seed)
	l, err := f.Host("b").Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type res struct {
		c   transport.Conn
		err error
	}
	acc := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		acc <- res{c, err}
	}()
	ca, err := f.Host("a").Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ca.Close() })
	r := <-acc
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { r.c.Close() })
	return f, ca, r.c
}

// roundtrip pushes one byte a→b and back so the accepted side learns the
// dialer's identity from the preamble before a test installs faults.
func roundtrip(t *testing.T, ca, cb transport.Conn) {
	t.Helper()
	buf := make([]byte, 1)
	if _, err := ca.Write([]byte{'!'}); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Read(buf); err != nil || buf[0] != '!' {
		t.Fatalf("ping: %v %q", err, buf)
	}
	if _, err := cb.Write([]byte{'?'}); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Read(buf); err != nil || buf[0] != '?' {
		t.Fatalf("pong: %v %q", err, buf)
	}
}

// readAsync starts a read and reports its result on a channel, so tests can
// assert both arrival and (bounded-wait) non-arrival.
func readAsync(c transport.Conn) <-chan []byte {
	ch := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if err == nil {
			ch <- append([]byte(nil), buf[:n]...)
		}
	}()
	return ch
}

func expectNothing(t *testing.T, ch <-chan []byte, why string) {
	t.Helper()
	select {
	case b := <-ch:
		t.Fatalf("%s: unexpectedly received %q", why, b)
	case <-time.After(100 * time.Millisecond):
	}
}

func expect(t *testing.T, ch <-chan []byte, want string, why string) {
	t.Helper()
	select {
	case b := <-ch:
		if string(b) != want {
			t.Fatalf("%s: got %q, want %q", why, b, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("%s: timed out waiting for %q", why, want)
	}
}

// deliverySeq records the exact byte order delivered across a lossy,
// duplicating, reordering link for a fixed submission sequence. The link is
// blocked during submission so queue occupancy — and therefore every
// reorder's effect — is independent of sender-goroutine timing.
func deliverySeq(t *testing.T, seed int64) []byte {
	t.Helper()
	f, ca, cb := fabricPair(t, seed)
	f.Block("a", "b")
	f.SetLink("a", "b", Rule{Drop: 0.3, Dup: 0.2, Reorder: 0.3})
	for i := 0; i < 200; i++ {
		if _, err := ca.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	f.ClearLinks()
	if _, err := ca.Write([]byte{0xFF}); err != nil { // pristine terminator
		t.Fatal(err)
	}
	f.Heal()
	var got []byte
	buf := make([]byte, 512)
	for len(got) == 0 || got[len(got)-1] != 0xFF {
		n, err := cb.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	return got[:len(got)-1]
}

// TestDeterministicReplay is the fabric's core contract: identical seeds
// reproduce the identical fault sequence, byte for byte.
func TestDeterministicReplay(t *testing.T) {
	first := deliverySeq(t, 42)
	second := deliverySeq(t, 42)
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed, different delivery:\n  %v\n  %v", first, second)
	}
	if len(first) == 200 {
		t.Fatal("no faults injected at all")
	}
	other := deliverySeq(t, 43)
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestPartitionAsymmetry(t *testing.T) {
	f, ca, cb := fabricPair(t, 1)
	roundtrip(t, ca, cb)

	// One-way block: a→b blackholes, b→a keeps flowing.
	f.Block("a", "b")
	if _, err := ca.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	fromA := readAsync(cb)
	expectNothing(t, fromA, "a→b blocked")
	if !f.Blocked("a", "b") || f.Blocked("b", "a") {
		t.Fatal("Blocked() disagrees with installed one-way block")
	}
	if _, err := cb.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	expect(t, readAsync(ca), "back", "b→a open during one-way block")

	// Unblock delivers the queued message.
	f.Unblock("a", "b")
	expect(t, fromA, "lost", "unblock drains queue")

	// Symmetric partition cuts both directions.
	f.Partition([]string{"a"}, []string{"b"})
	if _, err := ca.Write([]byte("p1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Write([]byte("p2")); err != nil {
		t.Fatal(err)
	}
	fromA, fromB := readAsync(cb), readAsync(ca)
	expectNothing(t, fromA, "a→b partitioned")
	expectNothing(t, fromB, "b→a partitioned")
	f.Heal()
	expect(t, fromA, "p1", "heal drains a→b")
	expect(t, fromB, "p2", "heal drains b→a")
}

func TestHealDrainsQueuedInOrder(t *testing.T) {
	f, ca, cb := fabricPair(t, 1)
	roundtrip(t, ca, cb)
	f.Block("a", "b")
	for _, m := range []string{"one", "two", "three"} {
		if _, err := ca.Write([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	got := readAsync(cb)
	expectNothing(t, got, "blocked link")
	f.Heal()
	// Stream semantics: all three frames arrive, in order, possibly
	// coalesced into fewer reads.
	var all []byte
	select {
	case b := <-got:
		all = append(all, b...)
	case <-time.After(2 * time.Second):
		t.Fatal("heal did not drain the queue")
	}
	deadline := time.Now().Add(2 * time.Second)
	for string(all) != "onetwothree" {
		if time.Now().After(deadline) {
			t.Fatalf("drained %q, want %q", all, "onetwothree")
		}
		select {
		case b := <-readAsync(cb):
			all = append(all, b...)
		case <-time.After(200 * time.Millisecond):
			t.Fatalf("drained %q then stalled, want %q", all, "onetwothree")
		}
	}
}

// TestDupReorderCombo pins the exact interleaving of certain duplication
// plus certain reordering: dup copies are appended after the reorder swap,
// and the swap never crosses a queued preamble.
func TestDupReorderCombo(t *testing.T) {
	f, ca, cb := fabricPair(t, 1)
	roundtrip(t, ca, cb) // flush the preamble out of the queue
	f.Block("a", "b")
	f.SetLink("a", "b", Rule{Dup: 1, Reorder: 1})
	for _, m := range []string{"1", "2", "3"} {
		if _, err := ca.Write([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	f.ClearLinks()
	if _, err := ca.Write([]byte("T")); err != nil {
		t.Fatal(err)
	}
	f.Heal()
	var all []byte
	buf := make([]byte, 64)
	for len(all) == 0 || all[len(all)-1] != 'T' {
		n, err := cb.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, buf[:n]...)
	}
	// Trace: [1 1'] → append 2, swap, dup → [1 2 1' 2'] → append 3, swap,
	// dup → [1 2 1' 3 2' 3'].
	if want := "121323T"; string(all) != want {
		t.Fatalf("delivery = %q, want %q", all, want)
	}
}

// TestPreambleSurvivesReorderWhileBlocked dials through an
// already-reordering, blocked link: the queued preamble must still be
// delivered first or the accepted side cannot parse the stream.
func TestPreambleSurvivesReorderWhileBlocked(t *testing.T) {
	inner, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	f := New(inner, 5)
	l, err := f.Host("b").Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acc := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acc <- c
		}
	}()
	f.Block("a", "b")
	f.SetLink("a", "b", Rule{Reorder: 1})
	ca, err := f.Host("a").Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if _, err := ca.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	cb := <-acc
	defer cb.Close()
	got := readAsync(cb)
	expectNothing(t, got, "blocked link")
	f.Heal()
	expect(t, got, "hi", "payload after queued preamble")
}

// TestDirectedRules verifies the accepted side attributes its writes to the
// dialer learned from the preamble: a drop-all rule on b→a eats responses
// while a→b stays clean.
func TestDirectedRules(t *testing.T) {
	f, ca, cb := fabricPair(t, 1)
	roundtrip(t, ca, cb)
	f.SetLink("b", "a", Rule{Drop: 1})
	if _, err := ca.Write([]byte("req")); err != nil {
		t.Fatal(err)
	}
	expect(t, readAsync(cb), "req", "a→b unaffected")
	if _, err := cb.Write([]byte("resp")); err != nil {
		t.Fatal(err)
	}
	// Keep one reader for both assertions: a second readAsync would race
	// the first (still parked in Read) for the post-clear delivery.
	ra := readAsync(ca)
	expectNothing(t, ra, "b→a drop-all")
	f.ClearLinks()
	if _, err := cb.Write([]byte("resp2")); err != nil {
		t.Fatal(err)
	}
	expect(t, ra, "resp2", "b→a after clearing rules")
}

// TestIsolateSparesLoopback: an isolated host still reaches itself
// (collocated controlet↔datalet traffic must survive node isolation).
func TestIsolateSparesLoopback(t *testing.T) {
	inner, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	f := New(inner, 1)
	l, err := f.Host("a").Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acc := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acc <- c
		}
	}()
	f.Isolate("a")
	if !f.Blocked("a", "b") || !f.Blocked("b", "a") {
		t.Fatal("isolate did not cut a↔b")
	}
	ca, err := f.Host("a").Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if _, err := ca.Write([]byte("self")); err != nil {
		t.Fatal(err)
	}
	cb := <-acc
	defer cb.Close()
	expect(t, readAsync(cb), "self", "loopback during isolation")
}

func TestDelayRule(t *testing.T) {
	f, ca, cb := fabricPair(t, 1)
	roundtrip(t, ca, cb)
	f.SetLink("a", "b", Rule{Delay: 60 * time.Millisecond})
	start := time.Now()
	if _, err := ca.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	expect(t, readAsync(cb), "slow", "delayed delivery")
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("delivered after %v, want ≥ 50ms", el)
	}
}

// --- nemesis ---------------------------------------------------------------

func TestGenerateDeterministic(t *testing.T) {
	hosts := []string{"s0-r0", "s0-r1", "s0-r2", "coord", "client"}
	a := Generate(42, hosts, GenOptions{Rounds: 6})
	b := Generate(42, hosts, GenOptions{Rounds: 6})
	if a.String() != b.String() {
		t.Fatalf("same seed, different schedules:\n  %s\n  %s", a, b)
	}
	// Host order must not matter.
	rev := []string{"client", "coord", "s0-r2", "s0-r1", "s0-r0"}
	c := Generate(42, rev, GenOptions{Rounds: 6})
	if a.String() != c.String() {
		t.Fatalf("host order changed the schedule:\n  %s\n  %s", a, c)
	}
	d := Generate(43, hosts, GenOptions{Rounds: 6})
	if a.String() == d.String() {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a.Steps) != 12 { // fault + heal per round
		t.Fatalf("len(Steps) = %d, want 12", len(a.Steps))
	}
}

func TestScheduleRunAppliesAndHeals(t *testing.T) {
	inner, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	f := New(inner, 9)
	s := Schedule{Seed: 9, Steps: []Step{
		{At: 0, Desc: "isolate x", Apply: func(f *Fabric) { f.Isolate("x") }},
		{At: 20 * time.Millisecond, Desc: "flaky", Apply: func(f *Fabric) {
			f.SetLinkBoth("x", "y", Rule{Drop: 0.5})
		}},
	}}
	s.Run(f, nil, t.Logf)
	if f.Blocked("x", "y") {
		t.Fatal("Run returned with partitions still installed")
	}
	f.mu.Lock()
	nrules := len(f.rules)
	f.mu.Unlock()
	if nrules != 0 {
		t.Fatalf("Run returned with %d link rules installed", nrules)
	}
}

func TestScheduleRunStopsEarlyAndHeals(t *testing.T) {
	inner, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	f := New(inner, 9)
	stop := make(chan struct{})
	done := make(chan struct{})
	s := Schedule{Seed: 9, Steps: []Step{
		{At: 0, Desc: "isolate x", Apply: func(f *Fabric) { f.Isolate("x") }},
		{At: time.Minute, Desc: "never reached", Apply: func(f *Fabric) { f.Isolate("y") }},
	}}
	go func() {
		s.Run(f, stop, t.Logf)
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !f.Blocked("x", "z") {
		if time.Now().After(deadline) {
			t.Fatal("first step never applied")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after stop")
	}
	if f.Blocked("x", "z") || f.Blocked("y", "z") {
		t.Fatal("early stop left partitions installed")
	}
}
