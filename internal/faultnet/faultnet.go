// Package faultnet is the cluster's programmable fault plane: a wrapper
// around any transport.Network (inproc or tcp) that injects network faults
// between *named hosts* — message drop, duplication, reordering, added
// latency, bandwidth caps, and asymmetric link-level partitions. Every
// probabilistic decision is drawn from a per-link PRNG derived from one
// fabric seed, so a fault sequence reproduces exactly from its seed (see
// nemesis.go for seeded schedules).
//
// Topology model: a Fabric wraps one inner network. Each component of the
// system obtains its own transport.Network view via Fabric.Host(name);
// everything that view dials or serves is attributed to that host. The
// dialing host's name travels in-band as a tiny connection preamble, so the
// accept side knows who is on the other end and can apply directed rules to
// its responses. Faults are applied per *message* — one Write call is one
// quantum — which matches the repo's wire/rpc codecs: both flush whole
// frames, so a dropped quantum is a dropped frame, never a torn one.
//
// Partition semantics are blackhole, not refusal: a blocked link queues
// outbound messages (bounded, with backpressure) and Heal delivers them,
// exactly like a switch port coming back. Same-host traffic (src == dst,
// e.g. a controlet talking to its collocated datalet) is never partitioned.
package faultnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"

	"bespokv/internal/transport"
)

// Rule describes the fault behavior of one directed link (src → dst).
// The zero Rule is a perfect link.
type Rule struct {
	// Drop, Dup and Reorder are per-message probabilities in [0,1).
	// Reorder swaps the message with the previous still-queued one.
	Drop    float64
	Dup     float64
	Reorder float64
	// Delay (+ a uniform random Jitter) is added store-and-forward
	// latency per message.
	Delay  time.Duration
	Jitter time.Duration
	// BandwidthBps throttles the link to this many bytes/second (0 =
	// unlimited).
	BandwidthBps int
}

// faulty reports whether the rule needs PRNG draws at enqueue time.
func (r Rule) faulty() bool {
	return r.Drop > 0 || r.Dup > 0 || r.Reorder > 0 || r.Delay > 0 || r.Jitter > 0 || r.BandwidthBps > 0
}

// linkKey identifies a directed host pair; "*" matches any host.
type linkKey struct{ src, dst string }

// maxQueuedBytes bounds each connection's outbound queue; writers beyond it
// block (backpressure) so a long partition cannot eat unbounded memory.
const maxQueuedBytes = 4 << 20

// preambleMagic opens every fabric connection, followed by a length-prefixed
// dialer host name. It rides the normal fault pipeline (so a blackholed dial
// stalls like a SYN would) but is exempt from drop/dup/reorder — losing it
// would desynchronize the framing for the whole connection.
var preambleMagic = [4]byte{'b', 'k', 'f', 'n'}

// Fabric is a fault-injecting overlay over one inner transport network.
// All methods are safe for concurrent use.
type Fabric struct {
	inner transport.Network
	seed  int64

	mu      sync.Mutex
	cond    *sync.Cond            // broadcast on any state change
	owners  map[string]string     // inner listener addr → host name
	rules   map[linkKey]Rule      // directed fault rules
	blocked map[linkKey]bool      // directed blackholes ("*" wildcards)
	rngs    map[linkKey]*rand.Rand
}

// New wraps inner with a fault plane; seed determines every probabilistic
// fault decision the fabric will ever make.
func New(inner transport.Network, seed int64) *Fabric {
	f := &Fabric{
		inner:   inner,
		seed:    seed,
		owners:  map[string]string{},
		rules:   map[linkKey]Rule{},
		blocked: map[linkKey]bool{},
		rngs:    map[linkKey]*rand.Rand{},
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Seed returns the fabric's seed (for failure logs).
func (f *Fabric) Seed() int64 { return f.seed }

// Inner returns the wrapped network.
func (f *Fabric) Inner() transport.Network { return f.inner }

// Host returns the transport view of one named host. Listeners opened
// through it attribute inbound connections to name; dials attribute
// outbound traffic to name.
func (f *Fabric) Host(name string) transport.Network {
	return &hostNet{f: f, host: name}
}

// SetLink installs a directed fault rule; "*" in either position wildcards.
// Exact (src,dst) rules win over (src,*), then (*,dst), then (*,*).
func (f *Fabric) SetLink(src, dst string, r Rule) {
	f.mu.Lock()
	f.rules[linkKey{src, dst}] = r
	f.cond.Broadcast()
	f.mu.Unlock()
}

// SetLinkBoth installs r in both directions between a and b.
func (f *Fabric) SetLinkBoth(a, b string, r Rule) {
	f.mu.Lock()
	f.rules[linkKey{a, b}] = r
	f.rules[linkKey{b, a}] = r
	f.cond.Broadcast()
	f.mu.Unlock()
}

// ClearLinks removes every fault rule (partitions are separate; see Heal).
func (f *Fabric) ClearLinks() {
	f.mu.Lock()
	f.rules = map[linkKey]Rule{}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Block blackholes the directed link src → dst ("*" wildcards allowed).
// Messages queue and are delivered on Heal/Unblock.
func (f *Fabric) Block(src, dst string) {
	f.mu.Lock()
	f.blocked[linkKey{src, dst}] = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Unblock removes one directed blackhole, draining its queued messages.
func (f *Fabric) Unblock(src, dst string) {
	f.mu.Lock()
	delete(f.blocked, linkKey{src, dst})
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Partition blackholes every link between group a and group b, both ways.
func (f *Fabric) Partition(a, b []string) {
	f.mu.Lock()
	for _, ha := range a {
		for _, hb := range b {
			f.blocked[linkKey{ha, hb}] = true
			f.blocked[linkKey{hb, ha}] = true
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Isolate blackholes every link to and from host (its loopback stays up).
func (f *Fabric) Isolate(host string) {
	f.mu.Lock()
	f.blocked[linkKey{host, "*"}] = true
	f.blocked[linkKey{"*", host}] = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Heal removes every partition; blocked queues drain in order.
func (f *Fabric) Heal() {
	f.mu.Lock()
	f.blocked = map[linkKey]bool{}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Blocked reports whether src → dst is currently blackholed.
func (f *Fabric) Blocked(src, dst string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.blockedLocked(src, dst)
}

func (f *Fabric) blockedLocked(src, dst string) bool {
	if src == dst {
		return false // same-host traffic never partitions
	}
	return f.blocked[linkKey{src, dst}] ||
		f.blocked[linkKey{src, "*"}] ||
		f.blocked[linkKey{"*", dst}]
}

// ruleLocked resolves the effective rule for src → dst.
func (f *Fabric) ruleLocked(src, dst string) Rule {
	if src == dst {
		return Rule{}
	}
	if r, ok := f.rules[linkKey{src, dst}]; ok {
		return r
	}
	if r, ok := f.rules[linkKey{src, "*"}]; ok {
		return r
	}
	if r, ok := f.rules[linkKey{"*", dst}]; ok {
		return r
	}
	return f.rules[linkKey{"*", "*"}]
}

// rngLocked returns the deterministic PRNG for one directed link. Each link
// gets its own stream (seed ⊕ hash(src→dst)) so goroutine scheduling across
// links cannot perturb any single link's fault sequence.
func (f *Fabric) rngLocked(src, dst string) *rand.Rand {
	k := linkKey{src, dst}
	if r, ok := f.rngs[k]; ok {
		return r
	}
	h := fnv.New64a()
	io.WriteString(h, src)
	io.WriteString(h, "\x00→\x00")
	io.WriteString(h, dst)
	r := rand.New(rand.NewSource(f.seed ^ int64(h.Sum64())))
	f.rngs[k] = r
	return r
}

// ownerOf resolves the host name serving an inner address ("" if the
// listener was not opened through this fabric).
func (f *Fabric) ownerOf(addr string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.owners[addr]
}

// --- per-host network view ------------------------------------------------

type hostNet struct {
	f    *Fabric
	host string
}

func (n *hostNet) Name() string { return n.f.inner.Name() }

func (n *hostNet) Listen(addr string) (transport.Listener, error) {
	l, err := n.f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	n.f.mu.Lock()
	n.f.owners[l.Addr()] = n.host
	n.f.mu.Unlock()
	return &listener{f: n.f, host: n.host, inner: l}, nil
}

func (n *hostNet) Dial(addr string) (transport.Conn, error) {
	inner, err := n.f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := newConn(n.f, inner, n.host, n.f.ownerOf(addr))
	// Announce who is dialing. The preamble goes through the fault
	// pipeline (a partitioned dial blackholes like a SYN) but is pristine:
	// never dropped, duplicated or reordered.
	pre := make([]byte, 0, len(preambleMagic)+1+len(n.host))
	pre = append(pre, preambleMagic[:]...)
	pre = append(pre, byte(len(n.host)))
	pre = append(pre, n.host...)
	if err := c.enqueue(pre, true); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

type listener struct {
	f     *Fabric
	host  string
	inner transport.Listener
}

func (l *listener) Accept() (transport.Conn, error) {
	inner, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	// The dialer's identity arrives in-band; it is consumed lazily on the
	// first Read so a blackholed preamble cannot wedge the accept loop.
	c := newConn(l.f, inner, l.host, "")
	c.needPreamble = true
	return c, nil
}

func (l *listener) Close() error {
	l.f.mu.Lock()
	delete(l.f.owners, l.inner.Addr())
	l.f.mu.Unlock()
	return l.inner.Close()
}

func (l *listener) Addr() string { return l.inner.Addr() }

// --- connection -----------------------------------------------------------

type msg struct {
	data     []byte
	delay    time.Duration // store-and-forward latency before delivery
	pace     time.Duration // bandwidth pacing after delivery
	pristine bool          // preamble: must stay first, never reordered past
}

// conn wraps one inner connection. Writes are enqueued (with fault
// decisions drawn under the fabric lock, in submission order — that is what
// makes a seed reproduce) and delivered by a dedicated sender goroutine
// that honors partitions, delays and bandwidth. Reads delegate to the inner
// connection; the peer's sender already injected that direction's faults.
type conn struct {
	f     *Fabric
	inner transport.Conn
	src   string

	// dst is the remote host name: set at Dial for outbound connections,
	// learned from the preamble for accepted ones. Guarded by f.mu.
	dst          string
	needPreamble bool // accepted side: strip the preamble on first Read
	preErr       error
	preOnce      sync.Once

	// Guarded by f.mu.
	q      []msg
	qBytes int
	closed bool
	werr   error // sticky sender-side write error

	senderDone chan struct{}
}

func newConn(f *Fabric, inner transport.Conn, src, dst string) *conn {
	c := &conn{f: f, inner: inner, src: src, dst: dst, senderDone: make(chan struct{})}
	go c.sender()
	return c
}

func (c *conn) Read(p []byte) (int, error) {
	if c.needPreamble {
		c.preOnce.Do(c.readPreamble)
		if c.preErr != nil {
			return 0, c.preErr
		}
	}
	return c.inner.Read(p)
}

// readPreamble consumes the dialer's identity announcement and records the
// remote host so this connection's responses obey directed rules.
func (c *conn) readPreamble() {
	var hdr [5]byte
	if _, err := io.ReadFull(c.inner, hdr[:]); err != nil {
		c.preErr = err
		return
	}
	if [4]byte(hdr[:4]) != preambleMagic {
		c.preErr = errors.New("faultnet: connection without fabric preamble")
		return
	}
	name := make([]byte, hdr[4])
	if _, err := io.ReadFull(c.inner, name); err != nil {
		c.preErr = err
		return
	}
	c.f.mu.Lock()
	c.dst = string(name)
	c.f.mu.Unlock()
}

func (c *conn) Write(p []byte) (int, error) {
	if err := c.enqueue(p, false); err != nil {
		return 0, err
	}
	return len(p), nil
}

// enqueue applies fault decisions to one outbound message and hands it to
// the sender. Decisions are drawn under the fabric lock in enqueue order,
// from the link's own PRNG stream.
func (c *conn) enqueue(p []byte, pristine bool) error {
	f := c.f
	f.mu.Lock()
	if c.closed {
		f.mu.Unlock()
		return transport.ErrClosed
	}
	if c.werr != nil {
		err := c.werr
		f.mu.Unlock()
		return err
	}
	m := msg{data: append([]byte(nil), p...), pristine: pristine}
	dup, reorder := false, false
	if !pristine {
		r := f.ruleLocked(c.src, c.dst)
		if r.faulty() {
			rng := f.rngLocked(c.src, c.dst)
			if r.Drop > 0 && rng.Float64() < r.Drop {
				f.mu.Unlock()
				return nil // silently eaten
			}
			dup = r.Dup > 0 && rng.Float64() < r.Dup
			reorder = r.Reorder > 0 && rng.Float64() < r.Reorder
			m.delay = r.Delay
			if r.Jitter > 0 {
				m.delay += time.Duration(rng.Int63n(int64(r.Jitter)))
			}
			if r.BandwidthBps > 0 {
				m.pace = time.Duration(len(p)) * time.Second / time.Duration(r.BandwidthBps)
			}
		}
	}
	for c.qBytes >= maxQueuedBytes && !c.closed && c.werr == nil {
		f.cond.Wait()
	}
	if c.closed || c.werr != nil {
		err := c.werr
		if err == nil {
			err = transport.ErrClosed
		}
		f.mu.Unlock()
		return err
	}
	c.q = append(c.q, m)
	c.qBytes += len(m.data)
	if reorder && len(c.q) >= 2 && !c.q[len(c.q)-2].pristine {
		// Deliver this message before the previous still-queued one — but
		// never ahead of a queued preamble, which must arrive first.
		c.q[len(c.q)-1], c.q[len(c.q)-2] = c.q[len(c.q)-2], c.q[len(c.q)-1]
	}
	if dup {
		d := msg{data: append([]byte(nil), m.data...), delay: m.delay, pace: m.pace}
		c.q = append(c.q, d)
		c.qBytes += len(d.data)
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	return nil
}

// sender delivers queued messages in order, parking while the link is
// partitioned (heal drains the backlog) and sleeping out per-message delay
// and bandwidth pacing.
func (c *conn) sender() {
	defer close(c.senderDone)
	f := c.f
	for {
		f.mu.Lock()
		for {
			if c.closed {
				f.mu.Unlock()
				return
			}
			if len(c.q) > 0 && !f.blockedLocked(c.src, c.dst) {
				break
			}
			f.cond.Wait()
		}
		m := c.q[0]
		c.q[0] = msg{}
		c.q = c.q[1:]
		c.qBytes -= len(m.data)
		if len(c.q) == 0 {
			c.q = nil // release the drifting backing array
		}
		f.cond.Broadcast()
		f.mu.Unlock()

		if m.delay > 0 {
			time.Sleep(m.delay)
		}
		if _, err := c.inner.Write(m.data); err != nil {
			f.mu.Lock()
			c.werr = fmt.Errorf("faultnet: %w", err)
			c.q = nil
			c.qBytes = 0
			f.cond.Broadcast()
			f.mu.Unlock()
			return
		}
		if m.pace > 0 {
			time.Sleep(m.pace)
		}
	}
}

func (c *conn) Close() error {
	c.f.mu.Lock()
	if c.closed {
		c.f.mu.Unlock()
		return nil
	}
	c.closed = true
	c.q = nil
	c.qBytes = 0
	c.f.cond.Broadcast()
	c.f.mu.Unlock()
	return c.inner.Close()
}

func (c *conn) LocalAddr() string  { return c.inner.LocalAddr() }
func (c *conn) RemoteAddr() string { return c.inner.RemoteAddr() }
