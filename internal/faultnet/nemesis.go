// Nemesis: seeded, deterministic fault schedules. A Schedule is generated
// entirely up front from (seed, hosts) — every victim choice, partition
// split and fault rule is drawn at generation time — so a failing run's
// logged seed replays the exact same fault sequence. Runtime only applies
// the prebuilt steps at their offsets.
package faultnet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Step is one scheduled fault-plane mutation.
type Step struct {
	// At is the step's offset from schedule start.
	At time.Duration
	// Desc names the step for logs ("isolate s0-r1", "heal").
	Desc string
	// Apply mutates the fabric.
	Apply func(f *Fabric)
}

// Schedule is a reproducible sequence of fault steps.
type Schedule struct {
	Seed  int64
	Steps []Step
}

// String summarizes the schedule for logs.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nemesis(seed=%d)", s.Seed)
	for _, st := range s.Steps {
		fmt.Fprintf(&b, " [%s %s]", st.At.Round(time.Millisecond), st.Desc)
	}
	return b.String()
}

// Run applies the schedule against f, sleeping between steps, until every
// step ran or stop closes. It always leaves the fabric fully healed (all
// partitions and rules cleared), even on early stop. logf may be nil.
func (s Schedule) Run(f *Fabric, stop <-chan struct{}, logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	defer func() {
		f.Heal()
		f.ClearLinks()
	}()
	start := time.Now()
	for _, st := range s.Steps {
		wait := st.At - time.Since(start)
		if wait > 0 {
			select {
			case <-stop:
				logf("nemesis[seed=%d]: stopped early, healing", s.Seed)
				return
			case <-time.After(wait):
			}
		} else {
			select {
			case <-stop:
				logf("nemesis[seed=%d]: stopped early, healing", s.Seed)
				return
			default:
			}
		}
		logf("nemesis[seed=%d] t=%s: %s", s.Seed, st.At.Round(time.Millisecond), st.Desc)
		st.Apply(f)
	}
}

// Kind selects a fault family for generated schedules.
type Kind int

const (
	// KindIsolate cuts one host off from everyone (both directions).
	KindIsolate Kind = iota
	// KindSplit partitions the hosts into two random halves.
	KindSplit
	// KindOneWay blocks a single direction of one random link — the
	// asymmetric partition classic (A hears B, B never hears A).
	KindOneWay
	// KindFlaky makes random links lossy: drop, duplicate, reorder.
	KindFlaky
	// KindSlow adds latency jitter and a bandwidth cap to random links.
	KindSlow
)

var kindNames = map[Kind]string{
	KindIsolate: "isolate",
	KindSplit:   "split",
	KindOneWay:  "oneway",
	KindFlaky:   "flaky",
	KindSlow:    "slow",
}

// GenOptions shapes Generate's output.
type GenOptions struct {
	// Rounds is the number of fault→heal cycles (default 3).
	Rounds int
	// Dwell is how long each fault stays applied (default 600ms).
	Dwell time.Duration
	// Pause is the healthy gap after each heal (default 400ms).
	Pause time.Duration
	// Kinds restricts the fault families drawn (default: all).
	Kinds []Kind
}

// Generate builds a deterministic schedule over hosts: Rounds cycles of a
// randomly drawn fault followed by a full heal. Identical (seed, hosts,
// opts) always produce the identical schedule; hosts are sorted first so
// callers need not worry about map iteration order.
func Generate(seed int64, hosts []string, o GenOptions) Schedule {
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.Dwell <= 0 {
		o.Dwell = 600 * time.Millisecond
	}
	if o.Pause <= 0 {
		o.Pause = 400 * time.Millisecond
	}
	if len(o.Kinds) == 0 {
		o.Kinds = []Kind{KindIsolate, KindSplit, KindOneWay, KindFlaky, KindSlow}
	}
	sorted := append([]string(nil), hosts...)
	sort.Strings(sorted)
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	at := o.Pause // let the cluster breathe before the first fault
	for round := 0; round < o.Rounds; round++ {
		kind := o.Kinds[rng.Intn(len(o.Kinds))]
		step := genStep(rng, kind, sorted)
		step.At = at
		s.Steps = append(s.Steps, step)
		at += o.Dwell
		s.Steps = append(s.Steps, Step{
			At:   at,
			Desc: "heal",
			Apply: func(f *Fabric) {
				f.Heal()
				f.ClearLinks()
			},
		})
		at += o.Pause
	}
	return s
}

// genStep draws one fault step; all randomness happens here, at generation
// time.
func genStep(rng *rand.Rand, kind Kind, hosts []string) Step {
	if len(hosts) < 2 {
		// Degenerate topology: nothing to cut; emit a no-op.
		return Step{Desc: "noop (fewer than 2 hosts)", Apply: func(*Fabric) {}}
	}
	switch kind {
	case KindSplit:
		shuffled := append([]string(nil), hosts...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		cut := 1 + rng.Intn(len(shuffled)-1)
		a := append([]string(nil), shuffled[:cut]...)
		b := append([]string(nil), shuffled[cut:]...)
		return Step{
			Desc:  fmt.Sprintf("split %v | %v", a, b),
			Apply: func(f *Fabric) { f.Partition(a, b) },
		}
	case KindOneWay:
		src := hosts[rng.Intn(len(hosts))]
		dst := src
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		return Step{
			Desc:  fmt.Sprintf("oneway block %s→%s", src, dst),
			Apply: func(f *Fabric) { f.Block(src, dst) },
		}
	case KindFlaky:
		pairs := drawPairs(rng, hosts)
		rule := Rule{Drop: 0.25, Dup: 0.15, Reorder: 0.25, Delay: time.Millisecond, Jitter: 2 * time.Millisecond}
		return Step{
			Desc:  fmt.Sprintf("flaky links %v", pairs),
			Apply: func(f *Fabric) { applyPairs(f, pairs, rule) },
		}
	case KindSlow:
		pairs := drawPairs(rng, hosts)
		rule := Rule{Delay: 3 * time.Millisecond, Jitter: 5 * time.Millisecond, BandwidthBps: 1 << 20}
		return Step{
			Desc:  fmt.Sprintf("slow links %v", pairs),
			Apply: func(f *Fabric) { applyPairs(f, pairs, rule) },
		}
	default: // KindIsolate
		victim := hosts[rng.Intn(len(hosts))]
		return Step{
			Desc:  "isolate " + victim,
			Apply: func(f *Fabric) { f.Isolate(victim) },
		}
	}
}

// drawPairs picks a random non-empty subset of host pairs (~40% of links).
func drawPairs(rng *rand.Rand, hosts []string) [][2]string {
	var pairs [][2]string
	for i := 0; i < len(hosts); i++ {
		for j := i + 1; j < len(hosts); j++ {
			if rng.Float64() < 0.4 {
				pairs = append(pairs, [2]string{hosts[i], hosts[j]})
			}
		}
	}
	if len(pairs) == 0 {
		i := rng.Intn(len(hosts))
		j := i
		for j == i {
			j = rng.Intn(len(hosts))
		}
		pairs = append(pairs, [2]string{hosts[i], hosts[j]})
	}
	return pairs
}

func applyPairs(f *Fabric, pairs [][2]string, r Rule) {
	for _, p := range pairs {
		f.SetLinkBoth(p[0], p[1], r)
	}
}
