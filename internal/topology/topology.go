// Package topology models the cluster layout shared by the coordinator,
// controlets and clients: shards, replica chains, the topology+consistency
// mode, and the two partitioning schemes (consistent hashing and range
// partitioning). A Map is versioned by an Epoch; any change — failover,
// mode transition, membership — bumps the epoch, and servers reject
// stale-epoch requests so clients refresh their view.
package topology

import (
	"bytes"
	"fmt"
	"sort"
)

// Topology is the replica-graph shape.
type Topology string

const (
	// MS is master-slave: one writer per shard.
	MS Topology = "ms"
	// AA is active-active (multi-master): every replica accepts writes.
	AA Topology = "aa"
)

// Consistency is the replication contract.
type Consistency string

const (
	// Strong gives linearizable reads and writes.
	Strong Consistency = "strong"
	// Eventual acknowledges writes before full propagation.
	Eventual Consistency = "eventual"
)

// Mode pairs a topology with a consistency model, e.g. MS+SC.
type Mode struct {
	Topology    Topology    `json:"topology"`
	Consistency Consistency `json:"consistency"`
}

// String renders "ms+strong" style.
func (m Mode) String() string { return fmt.Sprintf("%s+%s", m.Topology, m.Consistency) }

// Valid reports whether both fields hold known values.
func (m Mode) Valid() bool {
	return (m.Topology == MS || m.Topology == AA) &&
		(m.Consistency == Strong || m.Consistency == Eventual)
}

// Node is one controlet–datalet pair.
type Node struct {
	// ID is unique across the cluster (e.g. "shard0-r1").
	ID string `json:"id"`
	// ControletAddr is the data-path address clients and peers talk to.
	ControletAddr string `json:"controlet"`
	// ControlAddr is the controlet's control-RPC endpoint, used by the
	// coordinator for map pushes, recovery and transition commands.
	ControlAddr string `json:"control,omitempty"`
	// DataletAddr is the backing datalet, used during recovery.
	DataletAddr string `json:"datalet"`
	// DataletCodec names the wire codec the datalet speaks ("binary" by
	// default, "text" for tRedis/tSSDB-style backends).
	DataletCodec string `json:"datalet_codec,omitempty"`
	// Recovering marks a node that has joined the replica group for
	// writes (so it misses nothing new) but is still backfilling history
	// and must not serve reads yet — the two-phase standby join.
	Recovering bool `json:"recovering,omitempty"`
}

// Shard is one replica group. Replica order is meaningful: under MS the
// first node is the master/chain head and the last is the chain tail;
// under AA all nodes are active peers.
type Shard struct {
	ID       string `json:"id"`
	Replicas []Node `json:"replicas"`
}

// Head returns the first replica (master / chain head).
func (s Shard) Head() Node { return s.Replicas[0] }

// Tail returns the last replica (chain tail), including one still
// recovering; writes must traverse it so it misses nothing.
func (s Shard) Tail() Node { return s.Replicas[len(s.Replicas)-1] }

// ReadTail returns the last replica eligible to serve reads: recovering
// nodes are skipped because their backfill is incomplete.
func (s Shard) ReadTail() Node {
	for i := len(s.Replicas) - 1; i >= 0; i-- {
		if !s.Replicas[i].Recovering {
			return s.Replicas[i]
		}
	}
	return s.Tail()
}

// ReadReplicas returns the replicas eligible to serve reads (recovering
// nodes excluded; falls back to all replicas if every node is recovering).
func (s Shard) ReadReplicas() []Node {
	out := make([]Node, 0, len(s.Replicas))
	for _, n := range s.Replicas {
		if !n.Recovering {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return s.Replicas
	}
	return out
}

// Partitioner names the key→shard scheme.
type Partitioner string

const (
	// HashPartitioner routes by consistent hashing.
	HashPartitioner Partitioner = "hash"
	// RangePartitioner routes by sorted key ranges.
	RangePartitioner Partitioner = "range"
)

// Map is the versioned cluster layout.
type Map struct {
	// Epoch increases on every change.
	Epoch uint64 `json:"epoch"`
	// Mode is the current topology+consistency pair.
	Mode Mode `json:"mode"`
	// Partitioner selects hash or range routing.
	Partitioner Partitioner `json:"partitioner"`
	// Shards lists every replica group.
	Shards []Shard `json:"shards"`
	// RangeSplits are the len(Shards)-1 sorted boundaries for range
	// partitioning: shard i owns [splits[i-1], splits[i]).
	RangeSplits [][]byte `json:"range_splits,omitempty"`
	// Transition is non-nil while a mode switch is in flight; it carries
	// the new-mode controlets (parallel to Shards) and the target mode.
	Transition *Transition `json:"transition,omitempty"`
}

// Transition describes an in-flight topology/consistency switch (§V).
type Transition struct {
	To Mode `json:"to"`
	// NewShards holds the new-mode controlets, parallel to Map.Shards.
	NewShards []Shard `json:"new_shards"`
}

// Clone deep-copies the map so mutations never race with readers.
func (m *Map) Clone() *Map {
	if m == nil {
		return nil
	}
	out := *m
	out.Shards = cloneShards(m.Shards)
	out.RangeSplits = make([][]byte, len(m.RangeSplits))
	for i, s := range m.RangeSplits {
		out.RangeSplits[i] = append([]byte(nil), s...)
	}
	if m.Transition != nil {
		tr := *m.Transition
		tr.NewShards = cloneShards(m.Transition.NewShards)
		out.Transition = &tr
	}
	return &out
}

func cloneShards(in []Shard) []Shard {
	out := make([]Shard, len(in))
	for i, s := range in {
		out[i] = Shard{ID: s.ID, Replicas: append([]Node(nil), s.Replicas...)}
	}
	return out
}

// ShardFor routes key to a shard index under the map's partitioner. The
// ring argument must have been built from this map (BuildRing); it may be
// nil for range partitioning.
func (m *Map) ShardFor(key []byte, ring *Ring) int {
	if m.Partitioner == RangePartitioner {
		return rangeShard(m.RangeSplits, key)
	}
	return ring.Lookup(key)
}

// rangeShard binary-searches the split points: shard i owns keys in
// [splits[i-1], splits[i]).
func rangeShard(splits [][]byte, key []byte) int {
	return sort.Search(len(splits), func(i int) bool {
		return bytes.Compare(key, splits[i]) < 0
	})
}

// ShardsForRange returns the shard indexes, in order, that a scan over
// [start, end) must visit under range partitioning.
func (m *Map) ShardsForRange(start, end []byte) []int {
	if m.Partitioner != RangePartitioner {
		// Hash partitioning scatters ranges everywhere.
		out := make([]int, len(m.Shards))
		for i := range out {
			out[i] = i
		}
		return out
	}
	first := rangeShard(m.RangeSplits, start)
	last := len(m.Shards) - 1
	if len(end) != 0 {
		// end is exclusive, so the owning shard of end-epsilon is the
		// shard owning end unless end is exactly a split boundary.
		last = rangeShard(m.RangeSplits, end)
		if last > 0 && last <= len(m.RangeSplits) && bytes.Equal(end, m.RangeSplits[last-1]) {
			last--
		}
	}
	var out []int
	for i := first; i <= last && i < len(m.Shards); i++ {
		out = append(out, i)
	}
	return out
}

// UniformSplits builds n-1 evenly spaced single-byte-prefix split points
// for range partitioning over a uniformly distributed keyspace.
func UniformSplits(n int) [][]byte {
	splits := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		splits = append(splits, []byte{byte(i * 256 / n)})
	}
	return splits
}
