package topology

import "sort"

// Transfer records that Fraction of the whole keyspace changes owner from
// shard From to shard To when the ring is rebuilt over a new shard set.
type Transfer struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Fraction float64 `json:"fraction"`
}

// OwnershipDiff compares the consistent-hash rings built over oldIDs and
// newIDs and returns the keyspace fractions that change hands, one Transfer
// per (from, to) pair, largest first. The computation is exact over the
// ring geometry rather than sampled: both rings' points are merged into one
// sorted boundary list, and between consecutive boundaries each ring's
// owner is constant, so every interval lands in exactly one bucket. The
// migration planner uses this both to pick sources and to estimate moved
// data. A vnodes value <= 0 uses the default ring density.
func OwnershipDiff(oldIDs, newIDs []string, vnodes int) []Transfer {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	oldRing := BuildRingFromIDs(oldIDs, vnodes)
	newRing := BuildRingFromIDs(newIDs, vnodes)
	if len(oldRing.hashes) == 0 || len(newRing.hashes) == 0 {
		return nil
	}
	bounds := make([]uint64, 0, len(oldRing.hashes)+len(newRing.hashes))
	bounds = append(bounds, oldRing.hashes...)
	bounds = append(bounds, newRing.hashes...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, h := range bounds[1:] {
		if h != uniq[len(uniq)-1] {
			uniq = append(uniq, h)
		}
	}
	bounds = uniq

	const keyspace = float64(1<<63) * 2 // 2^64, not representable as uint64
	moved := map[[2]string]float64{}
	prev := bounds[len(bounds)-1]
	for _, cur := range bounds {
		// The interval (prev, cur] has no ring point strictly inside it, so
		// its owner in each ring is the owner of the first point >= cur.
		// Width is modular: the first iteration covers the wrap interval.
		width := float64(cur - prev)
		if len(bounds) == 1 {
			width = keyspace
		}
		prev = cur
		from := oldIDs[oldRing.lookupHash(cur)]
		to := newIDs[newRing.lookupHash(cur)]
		if from != to {
			moved[[2]string{from, to}] += width / keyspace
		}
	}

	out := make([]Transfer, 0, len(moved))
	for pair, frac := range moved {
		out = append(out, Transfer{From: pair[0], To: pair[1], Fraction: frac})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// MovedFraction sums the keyspace fraction a diff moves.
func MovedFraction(diff []Transfer) float64 {
	total := 0.0
	for _, t := range diff {
		total += t.Fraction
	}
	return total
}
