package topology

import (
	"fmt"
	"math/rand"
	"testing"
)

func shardIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard-%d", i)
	}
	return ids
}

// TestOwnershipDiffOneOverN checks the consistent-hashing claim in ring.go:
// adding one shard to n moves only ~1/(n+1) of the keyspace, and every
// moved interval goes TO the new shard (survivors never trade keys among
// themselves); removing it is symmetric. The hash is deterministic, so the
// generous bounds make this a property test without flakes.
func TestOwnershipDiffOneOverN(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16} {
		ids := shardIDs(n)
		added := fmt.Sprintf("shard-%d", n)
		grown := append(append([]string(nil), ids...), added)

		diff := OwnershipDiff(ids, grown, 0)
		moved := MovedFraction(diff)
		ideal := 1.0 / float64(n+1)
		if moved < 0.5*ideal || moved > 1.9*ideal {
			t.Fatalf("n=%d: adding one shard moved %.4f of the keyspace, want ~%.4f", n, moved, ideal)
		}
		for _, tr := range diff {
			if tr.To != added {
				t.Fatalf("n=%d: keys moved between survivors: %+v", n, tr)
			}
		}

		back := OwnershipDiff(grown, ids, 0)
		if got := MovedFraction(back); got < 0.5*ideal || got > 1.9*ideal {
			t.Fatalf("n=%d: removing one shard moved %.4f of the keyspace, want ~%.4f", n, got, ideal)
		}
		for _, tr := range back {
			if tr.From != added {
				t.Fatalf("n=%d: removal sourced keys from a survivor: %+v", n, tr)
			}
		}
	}
}

func TestOwnershipDiffIdentity(t *testing.T) {
	ids := shardIDs(5)
	if diff := OwnershipDiff(ids, ids, 0); len(diff) != 0 {
		t.Fatalf("identical rings produced transfers: %+v", diff)
	}
}

// TestOwnershipDiffMatchesSampledKeys cross-checks the interval arithmetic
// against brute-force key sampling on both rings.
func TestOwnershipDiffMatchesSampledKeys(t *testing.T) {
	oldIDs := shardIDs(3)
	newIDs := append(append([]string(nil), oldIDs...), "shard-3")
	oldRing := BuildRingFromIDs(oldIDs, defaultVirtualNodes)
	newRing := BuildRingFromIDs(newIDs, defaultVirtualNodes)

	rnd := rand.New(rand.NewSource(42))
	const samples = 20000
	movedKeys := 0
	for i := 0; i < samples; i++ {
		key := []byte(fmt.Sprintf("key-%d-%d", i, rnd.Int63()))
		if oldIDs[oldRing.Lookup(key)] != newIDs[newRing.Lookup(key)] {
			movedKeys++
		}
	}
	sampled := float64(movedKeys) / samples
	exact := MovedFraction(OwnershipDiff(oldIDs, newIDs, defaultVirtualNodes))
	if delta := sampled - exact; delta < -0.02 || delta > 0.02 {
		t.Fatalf("interval diff says %.4f moved, sampling says %.4f", exact, sampled)
	}
}

func TestOwnershipDiffEmptyRings(t *testing.T) {
	if diff := OwnershipDiff(nil, shardIDs(2), 0); diff != nil {
		t.Fatalf("empty old ring produced transfers: %+v", diff)
	}
	if diff := OwnershipDiff(shardIDs(2), nil, 0); diff != nil {
		t.Fatalf("empty new ring produced transfers: %+v", diff)
	}
}
