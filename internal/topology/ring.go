package topology

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVirtualNodes is the number of ring points per shard; 160 matches
// common consistent-hashing deployments (libketama, Cassandra vnodes) and
// keeps the load spread within a few percent.
const defaultVirtualNodes = 160

// Ring is an immutable consistent-hash ring mapping keys to shard indexes.
// Clients build one per Map epoch and reuse it for every lookup.
type Ring struct {
	hashes []uint64
	owners []int
}

// BuildRing constructs a ring over the map's shard IDs with the default
// virtual-node count.
func BuildRing(m *Map) *Ring {
	ids := make([]string, len(m.Shards))
	for i, s := range m.Shards {
		ids[i] = s.ID
	}
	return BuildRingFromIDs(ids, defaultVirtualNodes)
}

// BuildRingFromIDs constructs a ring with vnodes points per shard ID. The
// ring depends only on the IDs, so adding or removing one shard moves only
// ~1/n of the keyspace (the consistent-hashing property).
func BuildRingFromIDs(ids []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{
		hashes: make([]uint64, 0, len(ids)*vnodes),
		owners: make([]int, 0, len(ids)*vnodes),
	}
	type point struct {
		h     uint64
		owner int
	}
	points := make([]point, 0, len(ids)*vnodes)
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{h: hash64(id + "#" + strconv.Itoa(v)), owner: i})
		}
	}
	sort.Slice(points, func(a, b int) bool { return points[a].h < points[b].h })
	for _, p := range points {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.owner)
	}
	return r
}

// Lookup returns the shard index owning key.
func (r *Ring) Lookup(key []byte) int {
	return r.lookupHash(hash64Bytes(key))
}

// lookupHash returns the shard index owning a raw ring position; the diff
// computation walks ring positions directly instead of hashing keys.
func (r *Ring) lookupHash(h uint64) int {
	if len(r.hashes) == 0 {
		return 0
	}
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap around
	}
	return r.owners[i]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func hash64Bytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer; FNV alone clusters on short
// structured keys, and ring balance needs avalanche behaviour.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
