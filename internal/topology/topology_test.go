package topology

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func testMap(nShards, nReplicas int, part Partitioner) *Map {
	m := &Map{
		Epoch:       1,
		Mode:        Mode{Topology: MS, Consistency: Strong},
		Partitioner: part,
	}
	for s := 0; s < nShards; s++ {
		shard := Shard{ID: fmt.Sprintf("shard-%d", s)}
		for r := 0; r < nReplicas; r++ {
			shard.Replicas = append(shard.Replicas, Node{
				ID:            fmt.Sprintf("s%d-r%d", s, r),
				ControletAddr: fmt.Sprintf("c-%d-%d", s, r),
				DataletAddr:   fmt.Sprintf("d-%d-%d", s, r),
			})
		}
		m.Shards = append(m.Shards, shard)
	}
	if part == RangePartitioner {
		m.RangeSplits = UniformSplits(nShards)
	}
	return m
}

func TestModeString(t *testing.T) {
	m := Mode{Topology: MS, Consistency: Strong}
	if m.String() != "ms+strong" {
		t.Fatalf("got %q", m)
	}
	if !m.Valid() {
		t.Fatal("valid mode reported invalid")
	}
	if (Mode{Topology: "p2p", Consistency: Strong}).Valid() {
		t.Fatal("invalid topology accepted")
	}
}

func TestHeadTail(t *testing.T) {
	m := testMap(1, 3, HashPartitioner)
	s := m.Shards[0]
	if s.Head().ID != "s0-r0" || s.Tail().ID != "s0-r2" {
		t.Fatalf("head=%s tail=%s", s.Head().ID, s.Tail().ID)
	}
}

func TestRingDeterministic(t *testing.T) {
	m := testMap(8, 3, HashPartitioner)
	r1 := BuildRing(m)
	r2 := BuildRing(m)
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if r1.Lookup(k) != r2.Lookup(k) {
			t.Fatalf("ring lookup not deterministic for %q", k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	m := testMap(8, 3, HashPartitioner)
	r := BuildRing(m)
	counts := make([]int, 8)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Lookup([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	want := float64(n) / 8
	for s, c := range counts {
		dev := math.Abs(float64(c)-want) / want
		if dev > 0.30 {
			t.Fatalf("shard %d has %d keys (%.0f%% deviation)", s, c, dev*100)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	ids8 := make([]string, 8)
	ids9 := make([]string, 9)
	for i := range ids9 {
		if i < 8 {
			ids8[i] = fmt.Sprintf("shard-%d", i)
		}
		ids9[i] = fmt.Sprintf("shard-%d", i)
	}
	r8 := BuildRingFromIDs(ids8, 160)
	r9 := BuildRingFromIDs(ids9, 160)
	const n = 20000
	moved := 0
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if r8.Lookup(k) != r9.Lookup(k) {
			moved++
		}
	}
	// Adding the 9th shard should move roughly 1/9 of the keys, not 8/9.
	frac := float64(moved) / n
	if frac > 0.25 {
		t.Fatalf("adding one shard moved %.1f%% of keys", frac*100)
	}
	if frac < 0.02 {
		t.Fatalf("suspiciously few keys moved (%.2f%%): new shard not getting load", frac*100)
	}
}

func TestRangeShard(t *testing.T) {
	m := testMap(4, 3, RangePartitioner)
	// Splits at 0x40, 0x80, 0xC0.
	cases := []struct {
		key  byte
		want int
	}{
		{0x00, 0}, {0x3f, 0}, {0x40, 1}, {0x7f, 1}, {0x80, 2}, {0xbf, 2}, {0xc0, 3}, {0xff, 3},
	}
	for _, c := range cases {
		got := m.ShardFor([]byte{c.key}, nil)
		if got != c.want {
			t.Fatalf("key 0x%02x → shard %d, want %d", c.key, got, c.want)
		}
	}
}

func TestShardsForRange(t *testing.T) {
	m := testMap(4, 3, RangePartitioner)
	got := m.ShardsForRange([]byte{0x30}, []byte{0x90})
	want := []int{0, 1, 2}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Exactly on a boundary: end 0x80 excludes shard 2.
	got = m.ShardsForRange([]byte{0x30}, []byte{0x80})
	want = []int{0, 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("boundary: got %v, want %v", got, want)
	}
	// Unbounded end reaches the last shard.
	got = m.ShardsForRange([]byte{0xd0}, nil)
	want = []int{3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("unbounded: got %v, want %v", got, want)
	}
}

func TestShardsForRangeHashScatters(t *testing.T) {
	m := testMap(4, 3, HashPartitioner)
	got := m.ShardsForRange([]byte("a"), []byte("b"))
	if len(got) != 4 {
		t.Fatalf("hash partitioning must visit all shards, got %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := testMap(2, 3, RangePartitioner)
	m.Transition = &Transition{
		To:        Mode{Topology: AA, Consistency: Eventual},
		NewShards: cloneShards(m.Shards),
	}
	c := m.Clone()
	c.Shards[0].Replicas[0].ID = "mutated"
	c.RangeSplits[0][0] = 0xee
	c.Transition.NewShards[0].Replicas[0].ID = "mutated"
	if m.Shards[0].Replicas[0].ID == "mutated" ||
		m.RangeSplits[0][0] == 0xee ||
		m.Transition.NewShards[0].Replicas[0].ID == "mutated" {
		t.Fatal("Clone shares memory with the original")
	}
}

func TestCloneNil(t *testing.T) {
	var m *Map
	if m.Clone() != nil {
		t.Fatal("nil clone must be nil")
	}
}

// TestRangePartitionProperty: every key lands in exactly the shard whose
// range contains it.
func TestRangePartitionProperty(t *testing.T) {
	m := testMap(4, 1, RangePartitioner)
	f := func(key []byte) bool {
		idx := m.ShardFor(key, nil)
		if idx < 0 || idx >= 4 {
			return false
		}
		var lo, hi []byte
		if idx > 0 {
			lo = m.RangeSplits[idx-1]
		}
		if idx < len(m.RangeSplits) {
			hi = m.RangeSplits[idx]
		}
		inLo := lo == nil || string(key) >= string(lo)
		inHi := hi == nil || string(key) < string(hi)
		return inLo && inHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRingLookup(t *testing.T) {
	r := BuildRingFromIDs(nil, 160)
	if r.Lookup([]byte("k")) != 0 {
		t.Fatal("empty ring must return shard 0")
	}
}
