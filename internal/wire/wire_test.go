package wire

import (
	"bufio"
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func normalizeReq(r *Request) {
	if len(r.Key) == 0 {
		r.Key = nil
	}
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.EndKey) == 0 {
		r.EndKey = nil
	}
}

func normalizeResp(r *Response) {
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.Pairs) == 0 {
		r.Pairs = nil
	}
	for i := range r.Pairs {
		if len(r.Pairs[i].Key) == 0 {
			r.Pairs[i].Key = nil
		}
		if len(r.Pairs[i].Value) == 0 {
			r.Pairs[i].Value = nil
		}
	}
}

func roundtripRequest(t *testing.T, c Codec, in Request) Request {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := c.WriteRequest(w, &in); err != nil {
		t.Fatalf("%s WriteRequest: %v", c.Name(), err)
	}
	var out Request
	if err := c.ReadRequest(bufio.NewReader(&buf), &out); err != nil {
		t.Fatalf("%s ReadRequest: %v", c.Name(), err)
	}
	return out
}

func roundtripResponse(t *testing.T, c Codec, in Response) Response {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := c.WriteResponse(w, &in); err != nil {
		t.Fatalf("%s WriteResponse: %v", c.Name(), err)
	}
	var out Response
	if err := c.ReadResponse(bufio.NewReader(&buf), &out); err != nil {
		t.Fatalf("%s ReadResponse: %v", c.Name(), err)
	}
	return out
}

func testCodecs(t *testing.T, fn func(t *testing.T, c Codec)) {
	for _, name := range Codecs() {
		c, err := LookupCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { fn(t, c) })
	}
}

func TestRequestRoundtrip(t *testing.T) {
	testCodecs(t, func(t *testing.T, c Codec) {
		in := Request{
			ID:      42,
			Op:      OpPut,
			Table:   "metrics",
			Key:     []byte("k1"),
			Value:   []byte("v1"),
			EndKey:  []byte("k9"),
			Limit:   100,
			Version: 7,
			Level:   LevelStrong,
			Epoch:   3,
		}
		out := roundtripRequest(t, c, in)
		if c.Name() == "text" {
			in.ID = 0 // text protocol does not carry IDs
		}
		normalizeReq(&in)
		normalizeReq(&out)
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("roundtrip mismatch:\n in=%+v\nout=%+v", in, out)
		}
	})
}

func TestResponseRoundtrip(t *testing.T) {
	testCodecs(t, func(t *testing.T, c Codec) {
		in := Response{
			ID:      42,
			Status:  StatusOK,
			Value:   []byte("hello"),
			Pairs:   []KV{{Key: []byte("a"), Value: []byte("1"), Version: 1}, {Key: []byte("b"), Value: []byte("2"), Version: 2}},
			Version: 9,
			Epoch:   4,
			Err:     "",
		}
		out := roundtripResponse(t, c, in)
		if c.Name() == "text" {
			in.ID = 0
		}
		normalizeResp(&in)
		normalizeResp(&out)
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("roundtrip mismatch:\n in=%+v\nout=%+v", in, out)
		}
	})
}

func TestEmptyFieldsRoundtrip(t *testing.T) {
	testCodecs(t, func(t *testing.T, c Codec) {
		out := roundtripRequest(t, c, Request{Op: OpNop})
		if out.Op != OpNop || len(out.Key) != 0 || len(out.Value) != 0 || out.Table != "" {
			t.Fatalf("empty request mangled: %+v", out)
		}
		resp := roundtripResponse(t, c, Response{Status: StatusNotFound})
		if resp.Status != StatusNotFound || len(resp.Value) != 0 || len(resp.Pairs) != 0 {
			t.Fatalf("empty response mangled: %+v", resp)
		}
	})
}

func TestErrStatusRoundtrip(t *testing.T) {
	testCodecs(t, func(t *testing.T, c Codec) {
		in := Response{Status: StatusErr, Err: "engine: disk full"}
		out := roundtripResponse(t, c, in)
		if out.Status != StatusErr || out.Err != in.Err {
			t.Fatalf("got %+v", out)
		}
		if out.ErrValue() == nil {
			t.Fatal("ErrValue should be non-nil for StatusErr")
		}
	})
}

func TestErrValueNilOnOK(t *testing.T) {
	r := Response{Status: StatusOK}
	if r.ErrValue() != nil {
		t.Fatal("OK response must yield nil error")
	}
	r = Response{Status: StatusNotFound}
	if r.ErrValue() != nil {
		t.Fatal("NotFound is not an error at the wire layer")
	}
}

func TestRequestRoundtripQuick(t *testing.T) {
	testCodecs(t, func(t *testing.T, c Codec) {
		f := func(id uint64, op uint8, table string, key, value, endKey []byte, limit uint32, version uint64, level uint8, epoch uint64) bool {
			in := Request{
				ID:      id,
				Op:      Op(op % uint8(OpMax+1)),
				Table:   table,
				Key:     key,
				Value:   value,
				EndKey:  endKey,
				Limit:   limit,
				Version: version,
				Level:   Level(level % 3),
				Epoch:   epoch,
			}
			out := roundtripRequest(t, c, in)
			if c.Name() == "text" {
				in.ID = 0
			}
			normalizeReq(&in)
			normalizeReq(&out)
			return reflect.DeepEqual(in, out)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestResponseRoundtripQuick(t *testing.T) {
	testCodecs(t, func(t *testing.T, c Codec) {
		f := func(id uint64, status uint8, value []byte, keys [][]byte, version, epoch uint64, errStr string) bool {
			in := Response{
				ID:      id,
				Status:  Status(status % 6),
				Value:   value,
				Version: version,
				Epoch:   epoch,
				Err:     errStr,
			}
			for i, k := range keys {
				in.Pairs = append(in.Pairs, KV{Key: k, Value: []byte{byte(i)}, Version: uint64(i)})
			}
			out := roundtripResponse(t, c, in)
			if c.Name() == "text" {
				in.ID = 0
			}
			normalizeResp(&in)
			normalizeResp(&out)
			return reflect.DeepEqual(in, out)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPipelinedMessages(t *testing.T) {
	testCodecs(t, func(t *testing.T, c Codec) {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		const n = 16
		for i := 0; i < n; i++ {
			req := Request{ID: uint64(i), Op: OpPut, Key: []byte{byte(i)}, Value: []byte{byte(i), byte(i)}}
			if err := c.WriteRequest(w, &req); err != nil {
				t.Fatal(err)
			}
		}
		r := bufio.NewReader(&buf)
		var req Request
		for i := 0; i < n; i++ {
			if err := c.ReadRequest(r, &req); err != nil {
				t.Fatalf("message %d: %v", i, err)
			}
			if len(req.Key) != 1 || req.Key[0] != byte(i) {
				t.Fatalf("message %d out of order: key=%v", i, req.Key)
			}
		}
		if _, err := r.ReadByte(); err != io.EOF {
			t.Fatalf("expected EOF after %d messages, got %v", n, err)
		}
	})
}

func TestBufferReuseDoesNotAlias(t *testing.T) {
	testCodecs(t, func(t *testing.T, c Codec) {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		first := Request{Op: OpPut, Key: []byte("aaaa"), Value: []byte("1111")}
		second := Request{Op: OpPut, Key: []byte("bb"), Value: []byte("22")}
		if err := c.WriteRequest(w, &first); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteRequest(w, &second); err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(&buf)
		var req Request
		if err := c.ReadRequest(r, &req); err != nil {
			t.Fatal(err)
		}
		gotFirst := string(req.Key)
		if err := c.ReadRequest(r, &req); err != nil {
			t.Fatal(err)
		}
		if gotFirst != "aaaa" || string(req.Key) != "bb" {
			t.Fatalf("buffer reuse corrupted keys: %q then %q", gotFirst, req.Key)
		}
	})
}

func TestBinaryRejectsOversizedFrame(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff} // 4 GiB frame header
	var req Request
	err := BinaryCodec{}.ReadRequest(bufio.NewReader(bytes.NewReader(raw)), &req)
	if err != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"+PING\r\n",           // not an array
		"*2\r\n$3\r\nFOO\r\n", // wrong arity
		"*9\r\n$7\r\nBADVERB\r\n$0\r\n\r\n$0\r\n\r\n$0\r\n\r\n$0\r\n\r\n$1\r\n0\r\n$1\r\n0\r\n$1\r\n0\r\n$1\r\n0\r\n",
	}
	for _, in := range cases {
		var req Request
		if err := (TextCodec{}).ReadRequest(bufio.NewReader(strings.NewReader(in)), &req); err == nil {
			t.Fatalf("input %q should not parse", in)
		}
	}
}

func TestLookupCodec(t *testing.T) {
	for _, name := range []string{"binary", "text"} {
		c, err := LookupCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Fatalf("got %q", c.Name())
		}
	}
	if _, err := LookupCodec("nope"); err == nil {
		t.Fatal("unknown codec must error")
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if OpPut.String() != "PUT" || OpScan.String() != "SCAN" || Op(200).String() == "" {
		t.Fatal("Op.String broken")
	}
	if StatusOK.String() != "OK" || Status(99).String() == "" {
		t.Fatal("Status.String broken")
	}
	if LevelStrong.String() != "strong" || Level(7).String() == "" {
		t.Fatal("Level.String broken")
	}
}

func TestRequestReset(t *testing.T) {
	r := Request{ID: 1, Op: OpPut, Table: "t", Key: []byte("k"), Value: []byte("v"), EndKey: []byte("e"), Limit: 1, Version: 2, Level: LevelStrong, Epoch: 3}
	r.Reset()
	if r.ID != 0 || r.Op != OpNop || r.Table != "" || len(r.Key) != 0 || len(r.Value) != 0 || len(r.EndKey) != 0 || r.Limit != 0 || r.Version != 0 || r.Level != LevelDefault || r.Epoch != 0 {
		t.Fatalf("reset left state: %+v", r)
	}
	resp := Response{ID: 1, Status: StatusErr, Value: []byte("v"), Pairs: []KV{{}}, Version: 1, Epoch: 1, Err: "x"}
	resp.Reset()
	if resp.ID != 0 || resp.Status != StatusOK || len(resp.Value) != 0 || len(resp.Pairs) != 0 || resp.Err != "" {
		t.Fatalf("reset left state: %+v", resp)
	}
}
