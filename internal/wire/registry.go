package wire

import (
	"bufio"
	"fmt"
	"sort"
	"sync"
)

// Codec encodes and decodes the data-path message pair. Implementations must
// be safe for use by one reader and one writer goroutine concurrently but
// need not support concurrent writers.
type Codec interface {
	Name() string
	WriteRequest(w *bufio.Writer, req *Request) error
	ReadRequest(r *bufio.Reader, req *Request) error
	WriteResponse(w *bufio.Writer, resp *Response) error
	ReadResponse(r *bufio.Reader, resp *Response) error
}

// BufferedCodec is an optional Codec extension for write coalescing: the
// Encode methods serialize a message into w WITHOUT flushing, so a pipelined
// sender can pack many messages into one syscall and flush once when its
// send queue goes idle (or a batch threshold hits). WriteRequest/WriteResponse
// remain "encode then flush" for lock-step callers. Both in-tree codecs
// implement it; callers type-assert and fall back to the flushing methods.
type BufferedCodec interface {
	Codec
	EncodeRequest(w *bufio.Writer, req *Request) error
	EncodeResponse(w *bufio.Writer, resp *Response) error
}

var (
	codecMu sync.RWMutex
	codecs  = map[string]Codec{}
)

// RegisterCodec adds a codec to the registry; it panics on duplicates, which
// indicate a programming error at init time.
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecs[c.Name()]; dup {
		panic("wire: duplicate codec " + c.Name())
	}
	codecs[c.Name()] = c
}

// LookupCodec returns the codec registered under name.
func LookupCodec(name string) (Codec, error) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecs[name]
	if !ok {
		return nil, fmt.Errorf("wire: unknown codec %q", name)
	}
	return c, nil
}

// Codecs returns the sorted names of all registered codecs.
func Codecs() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	names := make([]string, 0, len(codecs))
	for n := range codecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterCodec(BinaryCodec{})
	RegisterCodec(TextCodec{})
}
