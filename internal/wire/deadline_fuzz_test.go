package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"
)

// legacyDecodeRequest reproduces the pre-deadline binary request decoder:
// base fields, optional TraceID, optional pair set — and, critically,
// nothing after that. The frame is length-delimited, so a real old peer
// discards the unread tail; this stand-in asserts the same frames parse.
func legacyDecodeRequest(frame []byte) (Request, error) {
	var req Request
	if len(frame) < 4 {
		return req, fmt.Errorf("short frame")
	}
	n := binary.LittleEndian.Uint32(frame[:4])
	if int(n) != len(frame)-4 {
		return req, fmt.Errorf("length mismatch")
	}
	f := frameReader{buf: frame[4:]}
	var err error
	if req.ID, err = f.uvarint(); err != nil {
		return req, err
	}
	op, err := f.uvarint()
	if err != nil {
		return req, err
	}
	req.Op = Op(op)
	if req.Table, err = f.string(); err != nil {
		return req, err
	}
	if req.Key, err = f.bytes(nil); err != nil {
		return req, err
	}
	if req.Value, err = f.bytes(nil); err != nil {
		return req, err
	}
	if req.EndKey, err = f.bytes(nil); err != nil {
		return req, err
	}
	limit, err := f.uvarint()
	if err != nil {
		return req, err
	}
	req.Limit = uint32(limit)
	if req.Version, err = f.uvarint(); err != nil {
		return req, err
	}
	lvl, err := f.uvarint()
	if err != nil {
		return req, err
	}
	req.Level = Level(lvl)
	if req.Epoch, err = f.uvarint(); err != nil {
		return req, err
	}
	if f.pos < len(f.buf) {
		if req.TraceID, err = f.uvarint(); err != nil {
			return req, err
		}
	}
	if f.pos < len(f.buf) {
		np, err := f.uvarint()
		if err != nil {
			return req, err
		}
		if np > uint64(len(f.buf)) {
			return req, fmt.Errorf("pair count %d exceeds frame", np)
		}
		req.Pairs = make([]KV, np)
		for i := range req.Pairs {
			if req.Pairs[i].Key, err = f.bytes(nil); err != nil {
				return req, err
			}
			if req.Pairs[i].Value, err = f.bytes(nil); err != nil {
				return req, err
			}
			if req.Pairs[i].Version, err = f.uvarint(); err != nil {
				return req, err
			}
		}
	}
	// An old decoder stops here; the frame delimiter swallows anything
	// later (the Deadline field, or fields added after it).
	return req, nil
}

// FuzzDeadlineHeader exercises the optional trailing deadline field in
// every compatibility direction, through both codecs:
//
//   - new encoder → new decoder: the budget survives, alongside TraceID
//     and the pair set (field-order interactions included);
//   - legacy (pre-deadline) frames → new decoder: absent field reads 0;
//   - new frames → legacy (pre-deadline) decoder: a peer without the
//     field still parses the frame, losing only the deadline;
//   - truncation at every byte boundary errors or yields a valid prefix.
func FuzzDeadlineHeader(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(50_000_000), []byte("k"), []byte("v"), false)
	f.Add(uint64(2), uint64(0xdeadbeef), uint64(1), []byte(""), []byte(nil), true)
	f.Add(uint64(3), uint64(7), uint64(1)<<63, []byte("key"), []byte("val"), true)
	f.Add(uint64(4), uint64(0), uint64(0), []byte("x"), []byte("y"), false)

	f.Fuzz(func(t *testing.T, id, tid, deadline uint64, key, value []byte, withPairs bool) {
		req := Request{ID: id, Op: OpPut, Table: "t", Key: key, Value: value, TraceID: tid, Deadline: deadline}
		if withPairs {
			req.Op = OpMPut
			req.Pairs = []KV{{Key: key, Value: value, Version: 9}}
		}

		for _, name := range Codecs() {
			codec, err := LookupCodec(name)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			bw := bufio.NewWriter(&buf)
			if err := codec.WriteRequest(bw, &req); err != nil {
				t.Fatalf("%s encode: %v", name, err)
			}
			frame := append([]byte(nil), buf.Bytes()...)

			// New → new: deadline, trace and pairs all survive.
			var got Request
			got.Deadline = 0xfeed // stale value must be overwritten
			if err := codec.ReadRequest(bufio.NewReader(bytes.NewReader(frame)), &got); err != nil {
				t.Fatalf("%s decode: %v", name, err)
			}
			if got.Deadline != deadline {
				t.Fatalf("%s Deadline %d -> %d", name, deadline, got.Deadline)
			}
			if got.TraceID != tid {
				t.Fatalf("%s TraceID %x -> %x", name, tid, got.TraceID)
			}
			if name == "binary" && got.ID != req.ID {
				t.Fatalf("%s ID %d -> %d", name, req.ID, got.ID)
			}
			if len(got.Pairs) != len(req.Pairs) {
				t.Fatalf("%s pair count %d, want %d", name, len(got.Pairs), len(req.Pairs))
			}

			// Truncation must error or decode to a valid full prefix,
			// never to a frame with a corrupted deadline.
			for cut := 1; cut < len(frame); cut++ {
				var part Request
				if err := codec.ReadRequest(bufio.NewReader(bytes.NewReader(frame[:cut])), &part); err == nil {
					if part.Deadline != 0 && part.Deadline != deadline {
						t.Fatalf("%s truncated frame (%d of %d bytes) invented deadline %d", name, cut, len(frame), part.Deadline)
					}
				}
			}
		}

		// Legacy encoder → new decoder: frames without the field decode
		// with Deadline 0 and every other field intact.
		legacy := legacyEncodeRequest(&Request{ID: id, Op: OpPut, Table: "t", Key: key, Value: value})
		var old Request
		old.Deadline = 0xfeed
		old.DeadlineAt = 42
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(legacy)), &old); err != nil {
			t.Fatalf("legacy decode: %v", err)
		}
		if old.Deadline != 0 || old.DeadlineAt != 0 {
			t.Fatalf("legacy frame decoded Deadline %d / DeadlineAt %d, want 0", old.Deadline, old.DeadlineAt)
		}
		if old.ID != id || string(old.Key) != string(key) || string(old.Value) != string(value) {
			t.Fatalf("legacy field mismatch: %+v", old)
		}

		// New encoder → legacy decoder: a pre-deadline peer parses the
		// frame (frame delimiting swallows the trailing field) and sees
		// every pre-deadline field unchanged.
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := (BinaryCodec{}).WriteRequest(bw, &req); err != nil {
			t.Fatalf("encode for legacy peer: %v", err)
		}
		oldPeer, err := legacyDecodeRequest(buf.Bytes())
		if err != nil {
			t.Fatalf("legacy peer failed to parse new frame: %v", err)
		}
		if oldPeer.ID != id || oldPeer.TraceID != tid ||
			string(oldPeer.Key) != string(key) || string(oldPeer.Value) != string(value) ||
			len(oldPeer.Pairs) != len(req.Pairs) {
			t.Fatalf("legacy peer mis-parsed new frame: %+v vs %+v", req, oldPeer)
		}
	})
}

// TestDeadlineArmRestamp covers the hop-local deadline arithmetic: arming
// converts the relative budget to an absolute instant, expiry trips once
// that instant passes, and re-stamping hands the *shrunken* remainder to
// the next hop (or refuses when the budget is spent).
func TestDeadlineArmRestamp(t *testing.T) {
	now := time.Unix(1000, 0)
	req := Request{Deadline: uint64(80 * time.Millisecond)}
	req.ArmDeadline(now)
	if req.DeadlineAt != now.UnixNano()+int64(80*time.Millisecond) {
		t.Fatalf("armed DeadlineAt %d", req.DeadlineAt)
	}
	if req.DeadlineExpired(now.Add(79 * time.Millisecond)) {
		t.Fatal("expired before the budget was spent")
	}
	if !req.DeadlineExpired(now.Add(80 * time.Millisecond)) {
		t.Fatal("not expired after the budget was spent")
	}
	if !req.RestampDeadline(now.Add(30 * time.Millisecond)) {
		t.Fatal("restamp refused with budget remaining")
	}
	if req.Deadline != uint64(50*time.Millisecond) {
		t.Fatalf("restamped Deadline %v, want 50ms", time.Duration(req.Deadline))
	}
	if req.RestampDeadline(now.Add(81 * time.Millisecond)) {
		t.Fatal("restamp allowed with budget spent")
	}

	// Copy semantics: forwarding paths copy requests by value; the armed
	// absolute form must ride along.
	fwd := req
	if fwd.DeadlineAt != req.DeadlineAt {
		t.Fatal("DeadlineAt lost in struct copy")
	}

	// Zero deadline clears any stale armed instant and never expires.
	var none Request
	none.DeadlineAt = 7
	none.ArmDeadline(now)
	if none.DeadlineAt != 0 || none.DeadlineExpired(now.Add(time.Hour)) {
		t.Fatal("zero deadline must clear and never expire")
	}
	if !none.RestampDeadline(now.Add(time.Hour)) {
		t.Fatal("zero deadline must restamp freely")
	}

	// Absurd budgets (fuzz input) must clamp, not overflow.
	huge := Request{Deadline: ^uint64(0)}
	huge.ArmDeadline(time.Now())
	if huge.DeadlineAt <= 0 {
		t.Fatalf("overflowed DeadlineAt %d", huge.DeadlineAt)
	}
}
