package wire

import (
	"bufio"
	"fmt"
	"strconv"
)

// TextCodec is a RESP-style text protocol: every message is an array of
// bulk strings ("*N\r\n" then N "$len\r\n<bytes>\r\n" items). It is the
// stand-in for the paper's Redis/SSDB text protocol parsers, used by the
// tRedis/tSSDB-style datalets, and demonstrates that a datalet can be ported
// by supplying a parser rather than adopting the binary protocol.
//
// A request is the 9-element array
//
//	[verb, table, key, value, endkey, limit, version, level, epoch]
//
// optionally followed by a tenth element, the trace ID of a sampled
// request (readers accept 9 or 10 elements, so old and new peers
// interoperate). Multi-op requests (MGET/MPUT/DIRECTGET/CHAINMPUT) append
// the pair set after the trace ID — a count then key/value/version
// triples — making an (11+3n)-element array. A request carrying a
// deadline budget appends it as one final element after the pair set
// (trace ID and pair count then present even when zero), making a
// (12+3n)-element array; (11+3n) and (12+3n) never collide mod 3, so the
// reader tells the forms apart by element count alone,
//
// and a response is the (6+3n)-element array
//
//	[status, value, version, epoch, err, npairs, k1, v1, ver1, ...]
//
// optionally followed by the multi-op per-key outcomes: a count then one
// status element each ((7+3n+s) elements in total).
//
// The text protocol carries no request ID: it relies on FIFO ordering per
// connection, as Redis pipelining does. Servers process each connection
// sequentially, so this holds for both codecs.
type TextCodec struct{}

// Name reports the codec's registry name.
func (TextCodec) Name() string { return "text" }

var crlf = []byte("\r\n")

func writeBulk(w *bufio.Writer, b []byte) error {
	if _, err := w.WriteString("$" + strconv.Itoa(len(b)) + "\r\n"); err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.Write(crlf)
	return err
}

func writeBulkString(w *bufio.Writer, s string) error {
	return writeBulk(w, []byte(s))
}

func writeBulkUint(w *bufio.Writer, v uint64) error {
	return writeBulkString(w, strconv.FormatUint(v, 10))
}

func writeArrayHeader(w *bufio.Writer, n int) error {
	_, err := w.WriteString("*" + strconv.Itoa(n) + "\r\n")
	return err
}

func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("wire: malformed text line %q", line)
	}
	return line[:len(line)-2], nil
}

func readArrayHeader(r *bufio.Reader) (int, error) {
	line, err := readLine(r)
	if err != nil {
		return 0, err
	}
	if len(line) == 0 || line[0] != '*' {
		return 0, fmt.Errorf("wire: expected array header, got %q", line)
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 0 || n > MaxFrame {
		return 0, fmt.Errorf("wire: bad array length %q", line)
	}
	return n, nil
}

func readBulk(r *bufio.Reader, dst []byte) ([]byte, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, fmt.Errorf("wire: expected bulk header, got %q", line)
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 0 || n > MaxFrame {
		return nil, fmt.Errorf("wire: bad bulk length %q", line)
	}
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	if _, err := readFull(r, dst); err != nil {
		return nil, err
	}
	var tail [2]byte
	if _, err := readFull(r, tail[:]); err != nil {
		return nil, err
	}
	if tail[0] != '\r' || tail[1] != '\n' {
		return nil, fmt.Errorf("wire: bulk missing CRLF terminator")
	}
	return dst, nil
}

func readFull(r *bufio.Reader, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := r.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func readBulkUint(r *bufio.Reader) (uint64, error) {
	b, err := readBulk(r, nil)
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(string(b), 10, 64)
}

var opByVerb = func() map[string]Op {
	m := make(map[string]Op)
	for op := OpNop; op <= OpMax; op++ {
		m[op.String()] = op
	}
	return m
}()

// EncodeRequest serializes req into w without flushing (BufferedCodec).
func (TextCodec) EncodeRequest(w *bufio.Writer, req *Request) error {
	elems := 9
	if req.TraceID != 0 {
		elems = 10
	}
	if len(req.Pairs) > 0 {
		// The pair set trails the trace ID, which must then be present
		// (even when zero) to keep the element order fixed.
		elems = 11 + 3*len(req.Pairs)
	}
	if req.Deadline != 0 {
		// The deadline trails the pair set; trace ID and pair count must
		// then both be present (even when zero/empty).
		elems = 12 + 3*len(req.Pairs)
	}
	if err := writeArrayHeader(w, elems); err != nil {
		return err
	}
	if err := writeBulkString(w, req.Op.String()); err != nil {
		return err
	}
	if err := writeBulkString(w, req.Table); err != nil {
		return err
	}
	if err := writeBulk(w, req.Key); err != nil {
		return err
	}
	if err := writeBulk(w, req.Value); err != nil {
		return err
	}
	if err := writeBulk(w, req.EndKey); err != nil {
		return err
	}
	if err := writeBulkUint(w, uint64(req.Limit)); err != nil {
		return err
	}
	if err := writeBulkUint(w, req.Version); err != nil {
		return err
	}
	if err := writeBulkUint(w, uint64(req.Level)); err != nil {
		return err
	}
	if err := writeBulkUint(w, req.Epoch); err != nil {
		return err
	}
	if req.TraceID != 0 || len(req.Pairs) > 0 || req.Deadline != 0 {
		if err := writeBulkUint(w, req.TraceID); err != nil {
			return err
		}
	}
	if len(req.Pairs) > 0 || req.Deadline != 0 {
		if err := writeBulkUint(w, uint64(len(req.Pairs))); err != nil {
			return err
		}
		for i := range req.Pairs {
			if err := writeBulk(w, req.Pairs[i].Key); err != nil {
				return err
			}
			if err := writeBulk(w, req.Pairs[i].Value); err != nil {
				return err
			}
			if err := writeBulkUint(w, req.Pairs[i].Version); err != nil {
				return err
			}
		}
	}
	if req.Deadline != 0 {
		if err := writeBulkUint(w, req.Deadline); err != nil {
			return err
		}
	}
	return nil
}

// WriteRequest encodes req into w and flushes.
func (c TextCodec) WriteRequest(w *bufio.Writer, req *Request) error {
	if err := c.EncodeRequest(w, req); err != nil {
		return err
	}
	return w.Flush()
}

// ReadRequest decodes the next request from r into req.
func (TextCodec) ReadRequest(r *bufio.Reader, req *Request) error {
	n, err := readArrayHeader(r)
	if err != nil {
		return err
	}
	hasPairs := n >= 11 && (n-11)%3 == 0
	hasDeadline := n >= 12 && (n-12)%3 == 0
	if n != 9 && n != 10 && !hasPairs && !hasDeadline {
		return fmt.Errorf("wire: text request has %d elements, want 9, 10, 11+3n or 12+3n", n)
	}
	verb, err := readBulk(r, nil)
	if err != nil {
		return err
	}
	op, ok := opByVerb[string(verb)]
	if !ok {
		return fmt.Errorf("wire: unknown verb %q", verb)
	}
	req.Op = op
	table, err := readBulk(r, nil)
	if err != nil {
		return err
	}
	req.Table = string(table)
	if req.Key, err = readBulk(r, req.Key); err != nil {
		return err
	}
	if req.Value, err = readBulk(r, req.Value); err != nil {
		return err
	}
	if req.EndKey, err = readBulk(r, req.EndKey); err != nil {
		return err
	}
	limit, err := readBulkUint(r)
	if err != nil {
		return err
	}
	req.Limit = uint32(limit)
	if req.Version, err = readBulkUint(r); err != nil {
		return err
	}
	lvl, err := readBulkUint(r)
	if err != nil {
		return err
	}
	req.Level = Level(lvl)
	if req.Epoch, err = readBulkUint(r); err != nil {
		return err
	}
	req.TraceID = 0
	if n >= 10 {
		if req.TraceID, err = readBulkUint(r); err != nil {
			return err
		}
	}
	req.Pairs = req.Pairs[:0]
	if n >= 11 {
		np, err := readBulkUint(r)
		if err != nil {
			return err
		}
		want := (n - 11) / 3
		if hasDeadline {
			want = (n - 12) / 3
		}
		if int(np) != want {
			return fmt.Errorf("wire: pair count %d disagrees with array length %d", np, n)
		}
		if cap(req.Pairs) < int(np) {
			req.Pairs = make([]KV, np)
		}
		req.Pairs = req.Pairs[:np]
		for i := range req.Pairs {
			if req.Pairs[i].Key, err = readBulk(r, req.Pairs[i].Key); err != nil {
				return err
			}
			if req.Pairs[i].Value, err = readBulk(r, req.Pairs[i].Value); err != nil {
				return err
			}
			if req.Pairs[i].Version, err = readBulkUint(r); err != nil {
				return err
			}
		}
	}
	req.Deadline = 0
	req.DeadlineAt = 0
	if hasDeadline {
		if req.Deadline, err = readBulkUint(r); err != nil {
			return err
		}
	}
	req.ID = 0
	return nil
}

// EncodeResponse serializes resp into w without flushing (BufferedCodec).
func (TextCodec) EncodeResponse(w *bufio.Writer, resp *Response) error {
	elems := 6 + 3*len(resp.Pairs)
	if len(resp.Statuses) > 0 {
		elems += 1 + len(resp.Statuses)
	}
	if err := writeArrayHeader(w, elems); err != nil {
		return err
	}
	if err := writeBulkUint(w, uint64(resp.Status)); err != nil {
		return err
	}
	if err := writeBulk(w, resp.Value); err != nil {
		return err
	}
	if err := writeBulkUint(w, resp.Version); err != nil {
		return err
	}
	if err := writeBulkUint(w, resp.Epoch); err != nil {
		return err
	}
	if err := writeBulkString(w, resp.Err); err != nil {
		return err
	}
	if err := writeBulkUint(w, uint64(len(resp.Pairs))); err != nil {
		return err
	}
	for i := range resp.Pairs {
		if err := writeBulk(w, resp.Pairs[i].Key); err != nil {
			return err
		}
		if err := writeBulk(w, resp.Pairs[i].Value); err != nil {
			return err
		}
		if err := writeBulkUint(w, resp.Pairs[i].Version); err != nil {
			return err
		}
	}
	if len(resp.Statuses) > 0 {
		if err := writeBulkUint(w, uint64(len(resp.Statuses))); err != nil {
			return err
		}
		for _, st := range resp.Statuses {
			if err := writeBulkUint(w, uint64(st)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteResponse encodes resp into w and flushes.
func (c TextCodec) WriteResponse(w *bufio.Writer, resp *Response) error {
	if err := c.EncodeResponse(w, resp); err != nil {
		return err
	}
	return w.Flush()
}

// ReadResponse decodes the next response from r into resp.
func (TextCodec) ReadResponse(r *bufio.Reader, resp *Response) error {
	n, err := readArrayHeader(r)
	if err != nil {
		return err
	}
	if n < 6 {
		return fmt.Errorf("wire: text response has %d elements", n)
	}
	st, err := readBulkUint(r)
	if err != nil {
		return err
	}
	resp.Status = Status(st)
	if resp.Value, err = readBulk(r, resp.Value); err != nil {
		return err
	}
	if resp.Version, err = readBulkUint(r); err != nil {
		return err
	}
	if resp.Epoch, err = readBulkUint(r); err != nil {
		return err
	}
	errStr, err := readBulk(r, nil)
	if err != nil {
		return err
	}
	resp.Err = string(errStr)
	np, err := readBulkUint(r)
	if err != nil {
		return err
	}
	// The pairs (3 elements each) and an optional trailing status block
	// (count + one element per status) must exactly fill the array.
	if np > uint64(n) || 3*int(np) > n-6 {
		return fmt.Errorf("wire: pair count %d disagrees with array length %d", np, n)
	}
	if tail := n - 6 - 3*int(np); tail == 1 {
		return fmt.Errorf("wire: text response has %d elements for %d pairs", n, np)
	}
	if cap(resp.Pairs) < int(np) {
		resp.Pairs = make([]KV, np)
	}
	resp.Pairs = resp.Pairs[:np]
	for i := range resp.Pairs {
		if resp.Pairs[i].Key, err = readBulk(r, resp.Pairs[i].Key); err != nil {
			return err
		}
		if resp.Pairs[i].Value, err = readBulk(r, resp.Pairs[i].Value); err != nil {
			return err
		}
		if resp.Pairs[i].Version, err = readBulkUint(r); err != nil {
			return err
		}
	}
	resp.Statuses = resp.Statuses[:0]
	if rest := n - 6 - 3*int(np); rest > 0 {
		ns, err := readBulkUint(r)
		if err != nil {
			return err
		}
		if int(ns) != rest-1 {
			return fmt.Errorf("wire: status count %d disagrees with array length %d", ns, n)
		}
		for i := 0; i < int(ns); i++ {
			st, err := readBulkUint(r)
			if err != nil {
				return err
			}
			if st > 255 {
				return fmt.Errorf("wire: bad status %d", st)
			}
			resp.Statuses = append(resp.Statuses, Status(st))
		}
	}
	resp.ID = 0
	return nil
}
