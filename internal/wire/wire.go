// Package wire defines the bespokv data-path message model and its two
// interchangeable encodings: a compact length-prefixed binary codec (the
// stand-in for the paper's Protocol Buffers option) and a RESP-like text
// codec (the stand-in for the Redis/SSDB protocol parsers). Controlets,
// datalets and clients all exchange Request/Response pairs; the codec in use
// is negotiated out of band (per-listener configuration), exactly as the
// paper's per-datalet protocol parser is.
package wire

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Op identifies a request operation. Client-visible operations come first;
// operations used internally between controlets (chain forwarding,
// propagation, recovery) follow.
type Op uint8

const (
	// OpNop does nothing; used for liveness probes.
	OpNop Op = iota
	// OpPut writes a key/value pair.
	OpPut
	// OpGet reads a value by key.
	OpGet
	// OpDel deletes a key.
	OpDel
	// OpScan returns pairs with Key <= k < EndKey, up to Limit.
	OpScan
	// OpCreateTable creates a table (namespace).
	OpCreateTable
	// OpDeleteTable drops a table and its contents.
	OpDeleteTable

	// OpChainPut forwards a Put down a replication chain (MS+SC).
	OpChainPut
	// OpChainDel forwards a Del down a replication chain (MS+SC).
	OpChainDel
	// OpReplPut asynchronously propagates a Put to a replica (MS+EC, AA+EC).
	OpReplPut
	// OpReplDel asynchronously propagates a Del to a replica.
	OpReplDel
	// OpExport streams every pair a node holds; used for standby recovery.
	OpExport
	// OpStats returns server statistics.
	OpStats
	// OpHandoff transfers an in-flight write from an old-epoch controlet to
	// its new-epoch replacement during a topology/consistency transition.
	OpHandoff
	// OpDelRange deletes every live key with Key <= k < EndKey — the shard
	// migration GC primitive. Each tombstone inherits the record's stored
	// version, so the sweep never clobbers a concurrent newer write.
	OpDelRange
	// OpExportDelta streams every record — live or tombstone — with
	// version > Request.Version; used for incremental rejoin after a
	// restart. Live pairs arrive in StatusOK batches, tombstones in
	// StatusNotFound batches; a server that cannot serve a complete delta
	// answers StatusErr and the caller falls back to a full OpExport.
	OpExportDelta

	// OpMGet reads Request.Pairs[i].Key for every i in one frame. The
	// response carries values in Pairs (index-aligned with the request)
	// and a per-key Status in Statuses.
	OpMGet
	// OpMPut writes every Request.Pairs[i] (Key, Value, and on internal
	// hops an explicit Version) in one frame; the response carries a
	// per-pair Status in Statuses and winner versions in Pairs[i].Version.
	OpMPut
	// OpDirectGet is OpMGet served by a datalet directly (no controlet
	// hop). Unlike OpMGet it validates Request.Epoch strictly against the
	// datalet's controlet-granted epoch lease: a mismatch answers
	// StatusWrongEpoch and an expired lease StatusUnavailable, so a stale
	// client falls back through its controlet and refreshes.
	OpDirectGet
	// OpEpochSet is the internal controlet→datalet lease grant: Epoch
	// carries the cluster-map epoch and Version the lease TTL in
	// nanoseconds (0 = no expiry, for coordinator-less static setups).
	OpEpochSet
	// OpChainMPut forwards a whole OpMPut frame down a replication chain
	// (MS+SC) with head-assigned versions in Pairs[i].Version.
	OpChainMPut
	// OpTelemetry asks a datalet for its telemetry NodeSnapshot (JSON in
	// Response.Value); controlets attach it to their coordinator reports
	// so direct-path reads that bypass the controlet still get counted.
	OpTelemetry
)

// OpMax is the highest defined op code; per-op metric tables and verb
// registries size and iterate off it.
const OpMax = OpTelemetry

// String returns the operation mnemonic.
func (o Op) String() string {
	switch o {
	case OpNop:
		return "NOP"
	case OpPut:
		return "PUT"
	case OpGet:
		return "GET"
	case OpDel:
		return "DEL"
	case OpScan:
		return "SCAN"
	case OpCreateTable:
		return "CREATETABLE"
	case OpDeleteTable:
		return "DELETETABLE"
	case OpChainPut:
		return "CHAINPUT"
	case OpChainDel:
		return "CHAINDEL"
	case OpReplPut:
		return "REPLPUT"
	case OpReplDel:
		return "REPLDEL"
	case OpExport:
		return "EXPORT"
	case OpStats:
		return "STATS"
	case OpHandoff:
		return "HANDOFF"
	case OpDelRange:
		return "DELRANGE"
	case OpExportDelta:
		return "EXPORTDELTA"
	case OpMGet:
		return "MGET"
	case OpMPut:
		return "MPUT"
	case OpDirectGet:
		return "DIRECTGET"
	case OpEpochSet:
		return "EPOCHSET"
	case OpChainMPut:
		return "CHAINMPUT"
	case OpTelemetry:
		return "TELEMETRY"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// Level is the per-request consistency level (§IV-C of the paper).
type Level uint8

const (
	// LevelDefault uses whatever the controlet's configured mode provides.
	LevelDefault Level = iota
	// LevelStrong demands linearizable reads (e.g. tail reads under MS+SC).
	LevelStrong
	// LevelEventual permits reads from any replica.
	LevelEventual
)

// String returns the level mnemonic.
func (l Level) String() string {
	switch l {
	case LevelDefault:
		return "default"
	case LevelStrong:
		return "strong"
	case LevelEventual:
		return "eventual"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Status codes carried by responses.
type Status uint8

const (
	// StatusOK indicates success.
	StatusOK Status = iota
	// StatusNotFound indicates the key (or table) does not exist.
	StatusNotFound
	// StatusErr indicates a server-side failure; Response.Err has detail.
	StatusErr
	// StatusWrongEpoch tells the client its shard map is stale; re-fetch
	// from the coordinator and retry. Response.Epoch carries the current one.
	StatusWrongEpoch
	// StatusRedirect tells the client to retry at Response.Err (an address),
	// used by P2P-style routing and by mid-transition controlets.
	StatusRedirect
	// StatusUnavailable indicates the node cannot serve the request now
	// (e.g. recovering standby); the client should back off and retry.
	StatusUnavailable
	// StatusOverloaded indicates the server shed the request under load
	// (admission control, queue-delay shedding, replication backpressure)
	// or its deadline budget was already spent on arrival. The operation
	// was NOT executed — an Overloaded write is never acked — so the
	// client may safely retry after backing off.
	StatusOverloaded
)

// String returns the status mnemonic.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOTFOUND"
	case StatusErr:
		return "ERR"
	case StatusWrongEpoch:
		return "WRONGEPOCH"
	case StatusRedirect:
		return "REDIRECT"
	case StatusUnavailable:
		return "UNAVAILABLE"
	case StatusOverloaded:
		return "OVERLOADED"
	default:
		return fmt.Sprintf("STATUS(%d)", uint8(s))
	}
}

// KV is one key/value pair with its last-writer-wins version.
type KV struct {
	Key     []byte
	Value   []byte
	Version uint64
}

// Request is the single message type sent toward servers on the data path.
type Request struct {
	// ID is chosen by the sender and echoed in the matching Response.
	ID uint64
	// Op selects the operation.
	Op Op
	// Table namespaces keys; empty means the default table.
	Table string
	// Key is the primary key operand.
	Key []byte
	// Value is the value operand for writes.
	Value []byte
	// EndKey is the exclusive upper bound for OpScan.
	EndKey []byte
	// Limit caps the number of pairs returned by OpScan; 0 means no cap.
	Limit uint32
	// Version carries the LWW version on internal replication ops.
	Version uint64
	// Level is the per-request consistency level for reads.
	Level Level
	// Epoch is the shard-map epoch the sender believes is current.
	Epoch uint64
	// TraceID identifies a sampled request for cross-hop tracing; 0 means
	// untraced. On the wire it is an optional trailing field: old decoders
	// ignore it and old frames decode with TraceID 0.
	TraceID uint64
	// Pairs carries the key set of a multi-op (OpMGet/OpDirectGet use
	// Key only; OpMPut/OpChainMPut use Key+Value, plus Version on
	// internal hops). Like TraceID it is an optional trailing field:
	// absent on single-key frames, so old and new peers interoperate.
	Pairs []KV
	// Deadline is the request's remaining latency budget in nanoseconds at
	// the instant the frame was encoded; 0 means no deadline. Each hop
	// converts it to a local absolute instant on receipt (ArmDeadline),
	// drops work whose budget is already spent, and re-derives the shrunken
	// remainder when forwarding (RestampDeadline) — so the budget decays by
	// elapsed time across hops without requiring synchronized clocks. On
	// the wire it is an optional trailing field like TraceID: old decoders
	// ignore it and old frames decode with Deadline 0.
	Deadline uint64

	// DeadlineAt is the armed local-clock form of Deadline (UnixNano; 0 =
	// none). It is never encoded — servers set it at decode time and
	// forwarding paths that copy a request (*fwd = *req) inherit it.
	DeadlineAt int64
}

// ArmDeadline converts the wire-relative Deadline into an absolute local
// instant, from which this hop's checks and re-stamps derive. A zero
// Deadline clears any stale DeadlineAt.
func (r *Request) ArmDeadline(now time.Time) {
	if r.Deadline == 0 {
		r.DeadlineAt = 0
		return
	}
	n := now.UnixNano()
	if r.Deadline > math.MaxInt64-uint64(n) {
		r.DeadlineAt = math.MaxInt64
		return
	}
	r.DeadlineAt = n + int64(r.Deadline)
}

// DeadlineExpired reports whether the request's armed budget is already
// spent; executing it would be doomed work.
func (r *Request) DeadlineExpired(now time.Time) bool {
	return r.DeadlineAt != 0 && now.UnixNano() >= r.DeadlineAt
}

// RestampDeadline refreshes the wire-relative Deadline from the armed
// DeadlineAt so the next hop receives the budget minus the time spent
// here. It reports false when the budget is already spent (the caller
// should drop the forward instead of sending it).
func (r *Request) RestampDeadline(now time.Time) bool {
	if r.DeadlineAt == 0 {
		return true
	}
	rem := r.DeadlineAt - now.UnixNano()
	if rem <= 0 {
		return false
	}
	r.Deadline = uint64(rem)
	return true
}

// Response is the single message type sent back toward clients.
type Response struct {
	// ID echoes Request.ID.
	ID uint64
	// Status reports the outcome.
	Status Status
	// Value carries the result of a Get.
	Value []byte
	// Pairs carries Scan results and Export batches.
	Pairs []KV
	// Version is the stored version of the affected/read key.
	Version uint64
	// Epoch is the server's current epoch on StatusWrongEpoch.
	Epoch uint64
	// Err carries an error message (StatusErr) or redirect address
	// (StatusRedirect).
	Err string
	// Statuses carries the per-key outcomes of a multi-op, index-aligned
	// with the request's Pairs. An optional trailing field on the wire:
	// absent on single-key responses.
	Statuses []Status
}

// Reset clears a Request for reuse without freeing its backing arrays.
func (r *Request) Reset() {
	r.ID = 0
	r.Op = OpNop
	r.Table = ""
	r.Key = r.Key[:0]
	r.Value = r.Value[:0]
	r.EndKey = r.EndKey[:0]
	r.Limit = 0
	r.Version = 0
	r.Level = LevelDefault
	r.Epoch = 0
	r.TraceID = 0
	r.Pairs = r.Pairs[:0]
	r.Deadline = 0
	r.DeadlineAt = 0
}

// Reset clears a Response for reuse without freeing its backing arrays.
func (r *Response) Reset() {
	r.ID = 0
	r.Status = StatusOK
	r.Value = r.Value[:0]
	r.Pairs = r.Pairs[:0]
	r.Version = 0
	r.Epoch = 0
	r.Err = ""
	r.Statuses = r.Statuses[:0]
}

// ErrValue returns the response's error as a Go error, or nil when OK.
func (r *Response) ErrValue() error {
	switch r.Status {
	case StatusOK, StatusNotFound:
		return nil
	default:
		if r.Err != "" {
			return fmt.Errorf("%s: %s", r.Status, r.Err)
		}
		return errors.New(r.Status.String())
	}
}

// MaxFrame is the largest encoded message either codec will accept, a guard
// against corrupt length prefixes.
const MaxFrame = 64 << 20

// ErrFrameTooLarge is returned when a length prefix exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Message pools. Hot paths that fan requests out (chain forwarding, async
// propagation, quorum replication) allocate a Request/Response per in-flight
// peer op; recycling them keeps the per-op allocation count flat as the
// pipeline depth grows.

var requestPool = sync.Pool{New: func() any { return new(Request) }}

// GetRequest returns a zeroed Request from the pool.
func GetRequest() *Request {
	r := requestPool.Get().(*Request)
	r.Reset()
	return r
}

// PutRequest recycles req. The byte-slice fields are dropped rather than
// retained: pooled requests routinely alias buffers owned by a server
// connection's scratch request (fwd.Key = req.Key), and keeping those
// arrays would let the next pool user append into memory someone else is
// still reading.
func PutRequest(req *Request) {
	req.Key = nil
	req.Value = nil
	req.EndKey = nil
	// Pairs is different from the scalar buffers: its backing array is
	// always owned by the request (grown by its user's append or resized
	// by the codec — never assigned from a foreign slice), only its
	// elements alias outside buffers. Clearing the elements drops those
	// references, so the array itself can be kept and batch frames
	// assemble allocation-free; oversized arrays are dropped like pooled
	// response buffers.
	if cap(req.Pairs) > 1024 {
		req.Pairs = nil
	} else {
		clear(req.Pairs[:cap(req.Pairs)])
		req.Pairs = req.Pairs[:0]
	}
	req.Reset()
	requestPool.Put(req)
}

var responsePool = sync.Pool{New: func() any { return new(Response) }}

// GetResponse returns a zeroed Response from the pool. Unlike requests,
// pooled responses keep their backing arrays across uses: they are filled
// by codec decoding, which copies into the buffers (append(dst[:0], ...)),
// so the arrays are owned by the response and safe to reuse.
func GetResponse() *Response {
	r := responsePool.Get().(*Response)
	r.Reset()
	return r
}

// PutResponse recycles resp. The caller must not touch resp (or slices into
// it) afterwards.
func PutResponse(resp *Response) {
	if cap(resp.Value) > maxPooledBuf {
		resp.Value = nil
	}
	if cap(resp.Pairs) > 1024 {
		resp.Pairs = nil
	}
	if cap(resp.Statuses) > 1024 {
		resp.Statuses = nil
	}
	resp.Reset()
	responsePool.Put(resp)
}
