package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// BinaryCodec is the default, compact encoding: every message is a uvarint
// field stream inside a 4-byte little-endian length frame. It plays the role
// of the paper's Protocol-Buffers-based bespokv protocol.
type BinaryCodec struct{}

// Name reports the codec's registry name.
func (BinaryCodec) Name() string { return "binary" }

type frameWriter struct {
	buf []byte
}

func (f *frameWriter) uvarint(v uint64) {
	f.buf = binary.AppendUvarint(f.buf, v)
}

func (f *frameWriter) bytes(b []byte) {
	f.uvarint(uint64(len(b)))
	f.buf = append(f.buf, b...)
}

func (f *frameWriter) string(s string) {
	f.uvarint(uint64(len(s)))
	f.buf = append(f.buf, s...)
}

func (f *frameWriter) flush(w *bufio.Writer) error {
	if len(f.buf) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(f.buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(f.buf); err != nil {
		return err
	}
	return w.Flush()
}

type frameReader struct {
	buf []byte
	pos int
}

func (f *frameReader) fill(r *bufio.Reader) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	if cap(f.buf) < int(n) {
		f.buf = make([]byte, n)
	}
	f.buf = f.buf[:n]
	f.pos = 0
	_, err := io.ReadFull(r, f.buf)
	return err
}

func (f *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(f.buf[f.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated uvarint at offset %d", f.pos)
	}
	f.pos += n
	return v, nil
}

func (f *frameReader) bytes(dst []byte) ([]byte, error) {
	n, err := f.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(f.buf)-f.pos) {
		return nil, fmt.Errorf("wire: byte field of %d exceeds frame", n)
	}
	dst = append(dst[:0], f.buf[f.pos:f.pos+int(n)]...)
	f.pos += int(n)
	return dst, nil
}

func (f *frameReader) string() (string, error) {
	n, err := f.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(f.buf)-f.pos) {
		return "", fmt.Errorf("wire: string field of %d exceeds frame", n)
	}
	s := string(f.buf[f.pos : f.pos+int(n)])
	f.pos += int(n)
	return s, nil
}

// WriteRequest encodes req into w.
func (BinaryCodec) WriteRequest(w *bufio.Writer, req *Request) error {
	var f frameWriter
	f.buf = make([]byte, 0, 64+len(req.Key)+len(req.Value)+len(req.EndKey))
	f.uvarint(req.ID)
	f.uvarint(uint64(req.Op))
	f.string(req.Table)
	f.bytes(req.Key)
	f.bytes(req.Value)
	f.bytes(req.EndKey)
	f.uvarint(uint64(req.Limit))
	f.uvarint(req.Version)
	f.uvarint(uint64(req.Level))
	f.uvarint(req.Epoch)
	return f.flush(w)
}

// ReadRequest decodes the next request from r into req, reusing its buffers.
func (BinaryCodec) ReadRequest(r *bufio.Reader, req *Request) error {
	var f frameReader
	if err := f.fill(r); err != nil {
		return err
	}
	var err error
	if req.ID, err = f.uvarint(); err != nil {
		return err
	}
	op, err := f.uvarint()
	if err != nil {
		return err
	}
	if op > math.MaxUint8 {
		return fmt.Errorf("wire: bad op %d", op)
	}
	req.Op = Op(op)
	if req.Table, err = f.string(); err != nil {
		return err
	}
	if req.Key, err = f.bytes(req.Key); err != nil {
		return err
	}
	if req.Value, err = f.bytes(req.Value); err != nil {
		return err
	}
	if req.EndKey, err = f.bytes(req.EndKey); err != nil {
		return err
	}
	limit, err := f.uvarint()
	if err != nil {
		return err
	}
	if limit > math.MaxUint32 {
		return fmt.Errorf("wire: bad limit %d", limit)
	}
	req.Limit = uint32(limit)
	if req.Version, err = f.uvarint(); err != nil {
		return err
	}
	lvl, err := f.uvarint()
	if err != nil {
		return err
	}
	if lvl > math.MaxUint8 {
		return fmt.Errorf("wire: bad level %d", lvl)
	}
	req.Level = Level(lvl)
	if req.Epoch, err = f.uvarint(); err != nil {
		return err
	}
	return nil
}

// WriteResponse encodes resp into w.
func (BinaryCodec) WriteResponse(w *bufio.Writer, resp *Response) error {
	var f frameWriter
	n := 64 + len(resp.Value) + len(resp.Err)
	for i := range resp.Pairs {
		n += 20 + len(resp.Pairs[i].Key) + len(resp.Pairs[i].Value)
	}
	f.buf = make([]byte, 0, n)
	f.uvarint(resp.ID)
	f.uvarint(uint64(resp.Status))
	f.bytes(resp.Value)
	f.uvarint(uint64(len(resp.Pairs)))
	for i := range resp.Pairs {
		f.bytes(resp.Pairs[i].Key)
		f.bytes(resp.Pairs[i].Value)
		f.uvarint(resp.Pairs[i].Version)
	}
	f.uvarint(resp.Version)
	f.uvarint(resp.Epoch)
	f.string(resp.Err)
	return f.flush(w)
}

// ReadResponse decodes the next response from r into resp.
func (BinaryCodec) ReadResponse(r *bufio.Reader, resp *Response) error {
	var f frameReader
	if err := f.fill(r); err != nil {
		return err
	}
	var err error
	if resp.ID, err = f.uvarint(); err != nil {
		return err
	}
	st, err := f.uvarint()
	if err != nil {
		return err
	}
	if st > math.MaxUint8 {
		return fmt.Errorf("wire: bad status %d", st)
	}
	resp.Status = Status(st)
	if resp.Value, err = f.bytes(resp.Value); err != nil {
		return err
	}
	np, err := f.uvarint()
	if err != nil {
		return err
	}
	if np > uint64(len(f.buf)) {
		return fmt.Errorf("wire: pair count %d exceeds frame", np)
	}
	if cap(resp.Pairs) < int(np) {
		resp.Pairs = make([]KV, np)
	}
	resp.Pairs = resp.Pairs[:np]
	for i := range resp.Pairs {
		if resp.Pairs[i].Key, err = f.bytes(resp.Pairs[i].Key); err != nil {
			return err
		}
		if resp.Pairs[i].Value, err = f.bytes(resp.Pairs[i].Value); err != nil {
			return err
		}
		if resp.Pairs[i].Version, err = f.uvarint(); err != nil {
			return err
		}
	}
	if resp.Version, err = f.uvarint(); err != nil {
		return err
	}
	if resp.Epoch, err = f.uvarint(); err != nil {
		return err
	}
	if resp.Err, err = f.string(); err != nil {
		return err
	}
	return nil
}
