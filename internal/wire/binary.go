package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// BinaryCodec is the default, compact encoding: every message is a uvarint
// field stream inside a 4-byte little-endian length frame. It plays the role
// of the paper's Protocol-Buffers-based bespokv protocol.
type BinaryCodec struct{}

// Name reports the codec's registry name.
func (BinaryCodec) Name() string { return "binary" }

// maxPooledBuf caps how large a scratch buffer the codec pools will retain;
// an occasional huge scan result should not pin megabytes per pool slot.
const maxPooledBuf = 1 << 20

// scratchPool recycles the encode/decode frame buffers so steady-state
// operation allocates nothing per message.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

func getScratch() *[]byte { return scratchPool.Get().(*[]byte) }

func putScratch(p *[]byte) {
	if cap(*p) > maxPooledBuf {
		return
	}
	scratchPool.Put(p)
}

type frameWriter struct {
	buf []byte
}

func (f *frameWriter) uvarint(v uint64) {
	if v < 0x80 {
		f.buf = append(f.buf, byte(v))
		return
	}
	f.buf = binary.AppendUvarint(f.buf, v)
}

func (f *frameWriter) bytes(b []byte) {
	f.uvarint(uint64(len(b)))
	f.buf = append(f.buf, b...)
}

func (f *frameWriter) string(s string) {
	f.uvarint(uint64(len(s)))
	f.buf = append(f.buf, s...)
}

// emit frames the buffered payload into w without flushing it.
func (f *frameWriter) emit(w *bufio.Writer) error {
	if len(f.buf) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(f.buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.buf)
	return err
}

// emitInPlace finishes a frame whose buffer began as w.AvailableBuffer()
// with 4 bytes reserved for the header. If the fields outgrew the buffer,
// append has already moved f.buf to fresh memory and Write simply copies it.
func (f *frameWriter) emitInPlace(w *bufio.Writer) error {
	if len(f.buf)-4 > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(f.buf[:4], uint32(len(f.buf)-4))
	_, err := w.Write(f.buf)
	return err
}

type frameReader struct {
	buf []byte
	pos int
}

func (f *frameReader) fill(r *bufio.Reader) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	if cap(f.buf) < int(n) {
		f.buf = make([]byte, n)
	}
	f.buf = f.buf[:n]
	f.pos = 0
	_, err := io.ReadFull(r, f.buf)
	return err
}

func (f *frameReader) uvarint() (uint64, error) {
	// Single-byte fast path: nearly every field in a KV message — op,
	// status, lengths, small versions — fits in one varint byte.
	if f.pos < len(f.buf) {
		if b := f.buf[f.pos]; b < 0x80 {
			f.pos++
			return uint64(b), nil
		}
	}
	v, n := binary.Uvarint(f.buf[f.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated uvarint at offset %d", f.pos)
	}
	f.pos += n
	return v, nil
}

func (f *frameReader) bytes(dst []byte) ([]byte, error) {
	n, err := f.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(f.buf)-f.pos) {
		return nil, fmt.Errorf("wire: byte field of %d exceeds frame", n)
	}
	dst = append(dst[:0], f.buf[f.pos:f.pos+int(n)]...)
	f.pos += int(n)
	return dst, nil
}

func (f *frameReader) string() (string, error) {
	n, err := f.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(f.buf)-f.pos) {
		return "", fmt.Errorf("wire: string field of %d exceeds frame", n)
	}
	s := string(f.buf[f.pos : f.pos+int(n)])
	f.pos += int(n)
	return s, nil
}

// encodeRequestFields appends req's field stream to f.
func encodeRequestFields(f *frameWriter, req *Request) {
	f.uvarint(req.ID)
	f.uvarint(uint64(req.Op))
	f.string(req.Table)
	f.bytes(req.Key)
	f.bytes(req.Value)
	f.bytes(req.EndKey)
	f.uvarint(uint64(req.Limit))
	f.uvarint(req.Version)
	f.uvarint(uint64(req.Level))
	f.uvarint(req.Epoch)
	// TraceID is an optional trailing field, emitted only for sampled
	// requests: pre-trace decoders discard unread frame bytes, and its
	// absence decodes as 0 below, so both directions stay compatible.
	// Pairs (multi-op key sets) trail TraceID, and Deadline trails Pairs;
	// a frame carrying a later optional field must emit every earlier one
	// too — even when zero/empty — to keep the field order fixed.
	if req.TraceID != 0 || len(req.Pairs) > 0 || req.Deadline != 0 {
		f.uvarint(req.TraceID)
	}
	if len(req.Pairs) > 0 || req.Deadline != 0 {
		f.uvarint(uint64(len(req.Pairs)))
		for i := range req.Pairs {
			f.bytes(req.Pairs[i].Key)
			f.bytes(req.Pairs[i].Value)
			f.uvarint(req.Pairs[i].Version)
		}
	}
	if req.Deadline != 0 {
		f.uvarint(req.Deadline)
	}
}

// EncodeRequest serializes req into w without flushing (BufferedCodec).
func (BinaryCodec) EncodeRequest(w *bufio.Writer, req *Request) error {
	est := 80 + len(req.Table) + len(req.Key) + len(req.Value) + len(req.EndKey)
	for i := range req.Pairs {
		est += 24 + len(req.Pairs[i].Key) + len(req.Pairs[i].Value)
	}
	if buf := w.AvailableBuffer(); cap(buf) >= 4+est {
		// Frame straight into the writer's own buffer: reserve the
		// 4-byte length header, append the fields behind it, patch the
		// header, and hand the slice back — Write's copy degenerates to
		// a self-copy, so the whole encode touches each byte once and
		// allocates nothing.
		f := frameWriter{buf: buf[:4]}
		encodeRequestFields(&f, req)
		return f.emitInPlace(w)
	}
	p := getScratch()
	f := frameWriter{buf: (*p)[:0]}
	encodeRequestFields(&f, req)
	err := f.emit(w)
	*p = f.buf
	putScratch(p)
	return err
}

// WriteRequest encodes req into w and flushes.
func (c BinaryCodec) WriteRequest(w *bufio.Writer, req *Request) error {
	if err := c.EncodeRequest(w, req); err != nil {
		return err
	}
	return w.Flush()
}

// fillFrame positions a frameReader over the next frame. When the whole
// frame already fits the reader's buffer it parses in place from Peek'd
// bytes — no copy, no scratch — and the caller must Discard 4+len(buf)
// when done. Larger frames fall back to copying through a pooled scratch
// buffer, returned as p for the caller to recycle.
func fillFrame(r *bufio.Reader) (f frameReader, p *[]byte, err error) {
	hdr, err := r.Peek(4)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return frameReader{}, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxFrame {
		return frameReader{}, nil, ErrFrameTooLarge
	}
	if int(4+n) <= r.Size() {
		win, err := r.Peek(int(4 + n))
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return frameReader{}, nil, err
		}
		return frameReader{buf: win[4:]}, nil, nil
	}
	p = getScratch()
	f = frameReader{buf: *p}
	if err := f.fill(r); err != nil {
		*p = f.buf
		putScratch(p)
		return frameReader{}, nil, err
	}
	return f, p, nil
}

// doneFrame releases whatever fillFrame acquired: the scratch buffer, or
// the Peek'd window (by consuming it from the reader).
func doneFrame(r *bufio.Reader, f *frameReader, p *[]byte) {
	if p != nil {
		*p = f.buf
		putScratch(p)
		return
	}
	_, _ = r.Discard(4 + len(f.buf))
}

// ReadRequest decodes the next request from r into req, reusing its buffers.
func (BinaryCodec) ReadRequest(r *bufio.Reader, req *Request) error {
	f, p, err := fillFrame(r)
	if err != nil {
		return err
	}
	err = parseRequestFields(&f, req)
	doneFrame(r, &f, p)
	return err
}

func parseRequestFields(f *frameReader, req *Request) error {
	var err error
	if req.ID, err = f.uvarint(); err != nil {
		return err
	}
	op, err := f.uvarint()
	if err != nil {
		return err
	}
	if op > math.MaxUint8 {
		return fmt.Errorf("wire: bad op %d", op)
	}
	req.Op = Op(op)
	if req.Table, err = f.string(); err != nil {
		return err
	}
	if req.Key, err = f.bytes(req.Key); err != nil {
		return err
	}
	if req.Value, err = f.bytes(req.Value); err != nil {
		return err
	}
	if req.EndKey, err = f.bytes(req.EndKey); err != nil {
		return err
	}
	limit, err := f.uvarint()
	if err != nil {
		return err
	}
	if limit > math.MaxUint32 {
		return fmt.Errorf("wire: bad limit %d", limit)
	}
	req.Limit = uint32(limit)
	if req.Version, err = f.uvarint(); err != nil {
		return err
	}
	lvl, err := f.uvarint()
	if err != nil {
		return err
	}
	if lvl > math.MaxUint8 {
		return fmt.Errorf("wire: bad level %d", lvl)
	}
	req.Level = Level(lvl)
	if req.Epoch, err = f.uvarint(); err != nil {
		return err
	}
	req.TraceID = 0
	req.Pairs = req.Pairs[:0]
	req.Deadline = 0
	req.DeadlineAt = 0
	if f.pos < len(f.buf) {
		if req.TraceID, err = f.uvarint(); err != nil {
			return err
		}
	}
	if f.pos < len(f.buf) {
		np, err := f.uvarint()
		if err != nil {
			return err
		}
		if np > uint64(len(f.buf)) {
			return fmt.Errorf("wire: pair count %d exceeds frame", np)
		}
		if cap(req.Pairs) < int(np) {
			req.Pairs = make([]KV, np)
		}
		req.Pairs = req.Pairs[:np]
		for i := range req.Pairs {
			if req.Pairs[i].Key, err = f.bytes(req.Pairs[i].Key); err != nil {
				return err
			}
			if req.Pairs[i].Value, err = f.bytes(req.Pairs[i].Value); err != nil {
				return err
			}
			if req.Pairs[i].Version, err = f.uvarint(); err != nil {
				return err
			}
		}
	}
	if f.pos < len(f.buf) {
		if req.Deadline, err = f.uvarint(); err != nil {
			return err
		}
	}
	return nil
}

// encodeResponseFields appends resp's field stream to f.
func encodeResponseFields(f *frameWriter, resp *Response) {
	f.uvarint(resp.ID)
	f.uvarint(uint64(resp.Status))
	f.bytes(resp.Value)
	f.uvarint(uint64(len(resp.Pairs)))
	for i := range resp.Pairs {
		f.bytes(resp.Pairs[i].Key)
		f.bytes(resp.Pairs[i].Value)
		f.uvarint(resp.Pairs[i].Version)
	}
	f.uvarint(resp.Version)
	f.uvarint(resp.Epoch)
	f.string(resp.Err)
	// Statuses (per-key multi-op outcomes) are an optional trailing field,
	// emitted only when present; old frames decode with an empty slice.
	if len(resp.Statuses) > 0 {
		f.uvarint(uint64(len(resp.Statuses)))
		for _, st := range resp.Statuses {
			f.uvarint(uint64(st))
		}
	}
}

// EncodeResponse serializes resp into w without flushing (BufferedCodec).
func (BinaryCodec) EncodeResponse(w *bufio.Writer, resp *Response) error {
	est := 64 + len(resp.Value) + len(resp.Err) + 2*len(resp.Statuses)
	for i := range resp.Pairs {
		est += 24 + len(resp.Pairs[i].Key) + len(resp.Pairs[i].Value)
	}
	if buf := w.AvailableBuffer(); cap(buf) >= 4+est {
		f := frameWriter{buf: buf[:4]}
		encodeResponseFields(&f, resp)
		return f.emitInPlace(w)
	}
	p := getScratch()
	f := frameWriter{buf: (*p)[:0]}
	encodeResponseFields(&f, resp)
	err := f.emit(w)
	*p = f.buf
	putScratch(p)
	return err
}

// WriteResponse encodes resp into w and flushes.
func (c BinaryCodec) WriteResponse(w *bufio.Writer, resp *Response) error {
	if err := c.EncodeResponse(w, resp); err != nil {
		return err
	}
	return w.Flush()
}

// ReadResponse decodes the next response from r into resp.
func (BinaryCodec) ReadResponse(r *bufio.Reader, resp *Response) error {
	f, p, err := fillFrame(r)
	if err != nil {
		return err
	}
	err = parseResponseFields(&f, resp)
	doneFrame(r, &f, p)
	return err
}

func parseResponseFields(f *frameReader, resp *Response) error {
	var err error
	if resp.ID, err = f.uvarint(); err != nil {
		return err
	}
	st, err := f.uvarint()
	if err != nil {
		return err
	}
	if st > math.MaxUint8 {
		return fmt.Errorf("wire: bad status %d", st)
	}
	resp.Status = Status(st)
	if resp.Value, err = f.bytes(resp.Value); err != nil {
		return err
	}
	np, err := f.uvarint()
	if err != nil {
		return err
	}
	if np > uint64(len(f.buf)) {
		return fmt.Errorf("wire: pair count %d exceeds frame", np)
	}
	if cap(resp.Pairs) < int(np) {
		resp.Pairs = make([]KV, np)
	}
	resp.Pairs = resp.Pairs[:np]
	for i := range resp.Pairs {
		if resp.Pairs[i].Key, err = f.bytes(resp.Pairs[i].Key); err != nil {
			return err
		}
		if resp.Pairs[i].Value, err = f.bytes(resp.Pairs[i].Value); err != nil {
			return err
		}
		if resp.Pairs[i].Version, err = f.uvarint(); err != nil {
			return err
		}
	}
	if resp.Version, err = f.uvarint(); err != nil {
		return err
	}
	if resp.Epoch, err = f.uvarint(); err != nil {
		return err
	}
	if resp.Err, err = f.string(); err != nil {
		return err
	}
	resp.Statuses = resp.Statuses[:0]
	if f.pos < len(f.buf) {
		ns, err := f.uvarint()
		if err != nil {
			return err
		}
		if ns > uint64(len(f.buf)) {
			return fmt.Errorf("wire: status count %d exceeds frame", ns)
		}
		for i := uint64(0); i < ns; i++ {
			st, err := f.uvarint()
			if err != nil {
				return err
			}
			if st > math.MaxUint8 {
				return fmt.Errorf("wire: bad status %d", st)
			}
			resp.Statuses = append(resp.Statuses, Status(st))
		}
	}
	return nil
}
