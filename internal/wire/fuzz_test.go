package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzBinaryReadRequest feeds arbitrary bytes to the binary request
// decoder: it must never panic, and anything it accepts must re-encode and
// re-decode to the same message (decode∘encode idempotence).
func FuzzBinaryReadRequest(f *testing.F) {
	var seedBuf bytes.Buffer
	w := bufio.NewWriter(&seedBuf)
	seed := Request{ID: 7, Op: OpPut, Table: "t", Key: []byte("k"), Value: []byte("v"), Epoch: 2}
	_ = BinaryCodec{}.WriteRequest(w, &seed)
	f.Add(seedBuf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(data)), &req); err != nil {
			return
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		if err := (BinaryCodec{}).WriteRequest(bw, &req); err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		var again Request
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(&out), &again); err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if again.Op != req.Op || string(again.Key) != string(req.Key) ||
			string(again.Value) != string(req.Value) || again.Version != req.Version {
			t.Fatalf("re-decode mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzBinaryReadResponse is the response-side twin.
func FuzzBinaryReadResponse(f *testing.F) {
	var seedBuf bytes.Buffer
	w := bufio.NewWriter(&seedBuf)
	seed := Response{ID: 7, Status: StatusOK, Value: []byte("v"), Pairs: []KV{{Key: []byte("a"), Value: []byte("1")}}}
	_ = BinaryCodec{}.WriteResponse(w, &seed)
	f.Add(seedBuf.Bytes())
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		var resp Response
		if err := (BinaryCodec{}).ReadResponse(bufio.NewReader(bytes.NewReader(data)), &resp); err != nil {
			return
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		if err := (BinaryCodec{}).WriteResponse(bw, &resp); err != nil {
			t.Fatalf("accepted response failed to re-encode: %v", err)
		}
	})
}

// FuzzTextReadRequest fuzzes the RESP-like parser.
func FuzzTextReadRequest(f *testing.F) {
	var seedBuf bytes.Buffer
	w := bufio.NewWriter(&seedBuf)
	seed := Request{Op: OpGet, Key: []byte("k")}
	_ = TextCodec{}.WriteRequest(w, &seed)
	f.Add(seedBuf.Bytes())
	f.Add([]byte("*9\r\n$3\r\nPUT\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("$$$$\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := (TextCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(data)), &req); err != nil {
			return
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		if err := (TextCodec{}).WriteRequest(bw, &req); err != nil {
			t.Fatalf("accepted text request failed to re-encode: %v", err)
		}
		var again Request
		if err := (TextCodec{}).ReadRequest(bufio.NewReader(&out), &again); err != nil {
			t.Fatalf("re-encoded text request failed to decode: %v", err)
		}
	})
}

// legacyEncodeRequest reproduces the pre-trace binary request encoding
// (field stream without the optional trailing TraceID) so the compat fuzz
// below can feed the current decoder genuine old-format frames.
func legacyEncodeRequest(req *Request) []byte {
	var body []byte
	put := func(v uint64) {
		body = binary.AppendUvarint(body, v)
	}
	putBytes := func(b []byte) {
		put(uint64(len(b)))
		body = append(body, b...)
	}
	put(req.ID)
	put(uint64(req.Op))
	putBytes([]byte(req.Table))
	putBytes(req.Key)
	putBytes(req.Value)
	putBytes(req.EndKey)
	put(uint64(req.Limit))
	put(req.Version)
	put(uint64(req.Level))
	put(req.Epoch)
	frame := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	return append(frame, body...)
}

// FuzzTraceHeader round-trips the optional trailing trace field in both
// directions: new-encoder frames must decode to the same TraceID, and
// legacy (pre-trace) frames must decode with TraceID 0 and all other
// fields intact — backward/forward wire compatibility.
func FuzzTraceHeader(f *testing.F) {
	f.Add(uint64(1), uint64(0xdeadbeef), uint8(OpPut), []byte("k"), []byte("v"), uint64(3))
	f.Add(uint64(2), uint64(0), uint8(OpGet), []byte("key"), []byte(nil), uint64(0))
	f.Add(uint64(0), uint64(1)<<63, uint8(OpChainPut), []byte(""), []byte("x"), uint64(9))

	f.Fuzz(func(t *testing.T, id, tid uint64, opByte uint8, key, value []byte, epoch uint64) {
		op := Op(opByte)
		if op > OpMax {
			op = OpPut
		}
		req := Request{ID: id, Op: op, Table: "t", Key: key, Value: value, Epoch: epoch, TraceID: tid}

		// New encoder → new decoder: TraceID survives.
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := (BinaryCodec{}).WriteRequest(bw, &req); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var got Request
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(&buf), &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.TraceID != tid {
			t.Fatalf("TraceID %x -> %x", tid, got.TraceID)
		}
		if got.ID != id || got.Op != op || string(got.Key) != string(key) ||
			string(got.Value) != string(value) || got.Epoch != epoch {
			t.Fatalf("field mismatch: %+v vs %+v", req, got)
		}

		// Legacy encoder → new decoder: absent field reads as 0, frames
		// must decode byte-for-byte like before the trace field existed.
		legacy := legacyEncodeRequest(&req)
		var old Request
		old.TraceID = 0xfeed // stale value must be overwritten
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(legacy)), &old); err != nil {
			t.Fatalf("legacy decode: %v", err)
		}
		if old.TraceID != 0 {
			t.Fatalf("legacy frame decoded TraceID %x, want 0", old.TraceID)
		}
		if old.ID != id || old.Op != op || string(old.Key) != string(key) ||
			string(old.Value) != string(value) || old.Epoch != epoch {
			t.Fatalf("legacy field mismatch: %+v vs %+v", req, old)
		}

		// New decoder output re-encoded must be stable (idempotence).
		var again bytes.Buffer
		bw2 := bufio.NewWriter(&again)
		if err := (BinaryCodec{}).WriteRequest(bw2, &got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}

		// Text codec: optional tenth element round-trips too.
		var tbuf bytes.Buffer
		tw := bufio.NewWriter(&tbuf)
		treq := req
		if treq.Op == OpNop {
			treq.Op = OpPut
		}
		if err := (TextCodec{}).WriteRequest(tw, &treq); err != nil {
			t.Fatalf("text encode: %v", err)
		}
		var tgot Request
		if err := (TextCodec{}).ReadRequest(bufio.NewReader(&tbuf), &tgot); err != nil {
			t.Fatalf("text decode: %v", err)
		}
		if tgot.TraceID != tid {
			t.Fatalf("text TraceID %x -> %x", tid, tgot.TraceID)
		}
	})
}
