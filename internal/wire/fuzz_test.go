package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzBinaryReadRequest feeds arbitrary bytes to the binary request
// decoder: it must never panic, and anything it accepts must re-encode and
// re-decode to the same message (decode∘encode idempotence).
func FuzzBinaryReadRequest(f *testing.F) {
	var seedBuf bytes.Buffer
	w := bufio.NewWriter(&seedBuf)
	seed := Request{ID: 7, Op: OpPut, Table: "t", Key: []byte("k"), Value: []byte("v"), Epoch: 2}
	_ = BinaryCodec{}.WriteRequest(w, &seed)
	f.Add(seedBuf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(data)), &req); err != nil {
			return
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		if err := (BinaryCodec{}).WriteRequest(bw, &req); err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		var again Request
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(&out), &again); err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if again.Op != req.Op || string(again.Key) != string(req.Key) ||
			string(again.Value) != string(req.Value) || again.Version != req.Version {
			t.Fatalf("re-decode mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzBinaryReadResponse is the response-side twin.
func FuzzBinaryReadResponse(f *testing.F) {
	var seedBuf bytes.Buffer
	w := bufio.NewWriter(&seedBuf)
	seed := Response{ID: 7, Status: StatusOK, Value: []byte("v"), Pairs: []KV{{Key: []byte("a"), Value: []byte("1")}}}
	_ = BinaryCodec{}.WriteResponse(w, &seed)
	f.Add(seedBuf.Bytes())
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		var resp Response
		if err := (BinaryCodec{}).ReadResponse(bufio.NewReader(bytes.NewReader(data)), &resp); err != nil {
			return
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		if err := (BinaryCodec{}).WriteResponse(bw, &resp); err != nil {
			t.Fatalf("accepted response failed to re-encode: %v", err)
		}
	})
}

// FuzzTextReadRequest fuzzes the RESP-like parser.
func FuzzTextReadRequest(f *testing.F) {
	var seedBuf bytes.Buffer
	w := bufio.NewWriter(&seedBuf)
	seed := Request{Op: OpGet, Key: []byte("k")}
	_ = TextCodec{}.WriteRequest(w, &seed)
	f.Add(seedBuf.Bytes())
	f.Add([]byte("*9\r\n$3\r\nPUT\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("$$$$\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := (TextCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(data)), &req); err != nil {
			return
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		if err := (TextCodec{}).WriteRequest(bw, &req); err != nil {
			t.Fatalf("accepted text request failed to re-encode: %v", err)
		}
		var again Request
		if err := (TextCodec{}).ReadRequest(bufio.NewReader(&out), &again); err != nil {
			t.Fatalf("re-encoded text request failed to decode: %v", err)
		}
	})
}

// legacyEncodeRequest reproduces the pre-trace binary request encoding
// (field stream without the optional trailing TraceID) so the compat fuzz
// below can feed the current decoder genuine old-format frames.
func legacyEncodeRequest(req *Request) []byte {
	var body []byte
	put := func(v uint64) {
		body = binary.AppendUvarint(body, v)
	}
	putBytes := func(b []byte) {
		put(uint64(len(b)))
		body = append(body, b...)
	}
	put(req.ID)
	put(uint64(req.Op))
	putBytes([]byte(req.Table))
	putBytes(req.Key)
	putBytes(req.Value)
	putBytes(req.EndKey)
	put(uint64(req.Limit))
	put(req.Version)
	put(uint64(req.Level))
	put(req.Epoch)
	frame := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	return append(frame, body...)
}

// FuzzTraceHeader round-trips the optional trailing trace field in both
// directions: new-encoder frames must decode to the same TraceID, and
// legacy (pre-trace) frames must decode with TraceID 0 and all other
// fields intact — backward/forward wire compatibility.
func FuzzTraceHeader(f *testing.F) {
	f.Add(uint64(1), uint64(0xdeadbeef), uint8(OpPut), []byte("k"), []byte("v"), uint64(3))
	f.Add(uint64(2), uint64(0), uint8(OpGet), []byte("key"), []byte(nil), uint64(0))
	f.Add(uint64(0), uint64(1)<<63, uint8(OpChainPut), []byte(""), []byte("x"), uint64(9))

	f.Fuzz(func(t *testing.T, id, tid uint64, opByte uint8, key, value []byte, epoch uint64) {
		op := Op(opByte)
		if op > OpMax {
			op = OpPut
		}
		req := Request{ID: id, Op: op, Table: "t", Key: key, Value: value, Epoch: epoch, TraceID: tid}

		// New encoder → new decoder: TraceID survives.
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := (BinaryCodec{}).WriteRequest(bw, &req); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var got Request
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(&buf), &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.TraceID != tid {
			t.Fatalf("TraceID %x -> %x", tid, got.TraceID)
		}
		if got.ID != id || got.Op != op || string(got.Key) != string(key) ||
			string(got.Value) != string(value) || got.Epoch != epoch {
			t.Fatalf("field mismatch: %+v vs %+v", req, got)
		}

		// Legacy encoder → new decoder: absent field reads as 0, frames
		// must decode byte-for-byte like before the trace field existed.
		legacy := legacyEncodeRequest(&req)
		var old Request
		old.TraceID = 0xfeed // stale value must be overwritten
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(legacy)), &old); err != nil {
			t.Fatalf("legacy decode: %v", err)
		}
		if old.TraceID != 0 {
			t.Fatalf("legacy frame decoded TraceID %x, want 0", old.TraceID)
		}
		if old.ID != id || old.Op != op || string(old.Key) != string(key) ||
			string(old.Value) != string(value) || old.Epoch != epoch {
			t.Fatalf("legacy field mismatch: %+v vs %+v", req, old)
		}

		// New decoder output re-encoded must be stable (idempotence).
		var again bytes.Buffer
		bw2 := bufio.NewWriter(&again)
		if err := (BinaryCodec{}).WriteRequest(bw2, &got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}

		// Text codec: optional tenth element round-trips too.
		var tbuf bytes.Buffer
		tw := bufio.NewWriter(&tbuf)
		treq := req
		if treq.Op == OpNop {
			treq.Op = OpPut
		}
		if err := (TextCodec{}).WriteRequest(tw, &treq); err != nil {
			t.Fatalf("text encode: %v", err)
		}
		var tgot Request
		if err := (TextCodec{}).ReadRequest(bufio.NewReader(&tbuf), &tgot); err != nil {
			t.Fatalf("text decode: %v", err)
		}
		if tgot.TraceID != tid {
			t.Fatalf("text TraceID %x -> %x", tid, tgot.TraceID)
		}
	})
}

// FuzzMultiOp round-trips the optional trailing Pairs/Statuses fields of
// the multi-op frames through both codecs: whatever pair set the encoder
// writes must decode identically, truncated frames must be rejected (never
// mis-decoded), and oversized pair counts must error instead of
// allocating.
func FuzzMultiOp(f *testing.F) {
	f.Add(uint64(1), []byte("k1"), []byte("v1"), []byte("k2"), []byte("v2"), uint64(7))
	f.Add(uint64(0), []byte(""), []byte(""), []byte("x"), []byte(nil), uint64(0))
	f.Add(uint64(9), []byte("a"), bytes.Repeat([]byte("b"), 300), []byte("c"), []byte("d"), uint64(1)<<62)

	f.Fuzz(func(t *testing.T, epoch uint64, k1, v1, k2, v2 []byte, ver uint64) {
		req := Request{
			ID:    3,
			Op:    OpMPut,
			Table: "t",
			Epoch: epoch,
			Pairs: []KV{
				{Key: k1, Value: v1, Version: ver},
				{Key: k2, Value: v2},
			},
		}
		for _, name := range Codecs() {
			codec, err := LookupCodec(name)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			bw := bufio.NewWriter(&buf)
			if err := codec.WriteRequest(bw, &req); err != nil {
				t.Fatalf("%s encode: %v", name, err)
			}
			frame := append([]byte(nil), buf.Bytes()...)

			var got Request
			if err := codec.ReadRequest(bufio.NewReader(bytes.NewReader(frame)), &got); err != nil {
				t.Fatalf("%s decode: %v", name, err)
			}
			if len(got.Pairs) != len(req.Pairs) {
				t.Fatalf("%s pair count %d, want %d", name, len(got.Pairs), len(req.Pairs))
			}
			for i := range req.Pairs {
				if string(got.Pairs[i].Key) != string(req.Pairs[i].Key) ||
					string(got.Pairs[i].Value) != string(req.Pairs[i].Value) ||
					got.Pairs[i].Version != req.Pairs[i].Version {
					t.Fatalf("%s pair %d mismatch: %+v vs %+v", name, i, req.Pairs[i], got.Pairs[i])
				}
			}
			if got.Epoch != epoch || got.Op != OpMPut {
				t.Fatalf("%s header mismatch: %+v", name, got)
			}

			// Truncation at every boundary must error, never mis-decode
			// into a shorter-but-valid pair set.
			for cut := 1; cut < len(frame); cut++ {
				var part Request
				if err := codec.ReadRequest(bufio.NewReader(bytes.NewReader(frame[:cut])), &part); err == nil {
					if len(part.Pairs) == len(req.Pairs) {
						ok := true
						for i := range req.Pairs {
							if string(part.Pairs[i].Key) != string(req.Pairs[i].Key) ||
								string(part.Pairs[i].Value) != string(req.Pairs[i].Value) {
								ok = false
							}
						}
						if ok {
							continue // a self-delimiting prefix that still decodes fully is fine
						}
					}
					t.Fatalf("%s accepted truncated frame (%d of %d bytes) as %+v", name, cut, len(frame), part)
				}
			}
		}

		// Response side: Statuses must ride along index-aligned.
		resp := Response{
			ID:     3,
			Status: StatusOK,
			Pairs: []KV{
				{Value: v1, Version: ver},
				{Value: v2},
			},
			Statuses: []Status{StatusOK, StatusNotFound},
		}
		for _, name := range Codecs() {
			codec, _ := LookupCodec(name)
			var buf bytes.Buffer
			bw := bufio.NewWriter(&buf)
			if err := codec.WriteResponse(bw, &resp); err != nil {
				t.Fatalf("%s encode response: %v", name, err)
			}
			var got Response
			if err := codec.ReadResponse(bufio.NewReader(&buf), &got); err != nil {
				t.Fatalf("%s decode response: %v", name, err)
			}
			if len(got.Statuses) != 2 || got.Statuses[0] != StatusOK || got.Statuses[1] != StatusNotFound {
				t.Fatalf("%s statuses mismatch: %v", name, got.Statuses)
			}
			if len(got.Pairs) != 2 || string(got.Pairs[0].Value) != string(v1) || got.Pairs[0].Version != ver {
				t.Fatalf("%s response pairs mismatch: %+v", name, got.Pairs)
			}
		}
	})
}

// TestMultiOpOversizedPairCountRejected hand-builds a binary frame whose
// pair count claims more pairs than the frame could hold; the decoder must
// reject it rather than allocate for it.
func TestMultiOpOversizedPairCountRejected(t *testing.T) {
	var body []byte
	put := func(v uint64) { body = binary.AppendUvarint(body, v) }
	putBytes := func(b []byte) { put(uint64(len(b))); body = append(body, b...) }
	put(1)                 // ID
	put(uint64(OpMPut))    // Op
	putBytes([]byte("t"))  // Table
	putBytes(nil)          // Key
	putBytes(nil)          // Value
	putBytes(nil)          // EndKey
	put(0)                 // Limit
	put(0)                 // Version
	put(0)                 // Level
	put(0)                 // Epoch
	put(0)                 // TraceID
	put(uint64(1) << 40)   // pair count: absurd
	frame := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	frame = append(frame, body...)

	var req Request
	if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(frame)), &req); err == nil {
		t.Fatalf("oversized pair count accepted: %+v", req)
	}
}
