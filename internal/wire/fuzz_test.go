package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzBinaryReadRequest feeds arbitrary bytes to the binary request
// decoder: it must never panic, and anything it accepts must re-encode and
// re-decode to the same message (decode∘encode idempotence).
func FuzzBinaryReadRequest(f *testing.F) {
	var seedBuf bytes.Buffer
	w := bufio.NewWriter(&seedBuf)
	seed := Request{ID: 7, Op: OpPut, Table: "t", Key: []byte("k"), Value: []byte("v"), Epoch: 2}
	_ = BinaryCodec{}.WriteRequest(w, &seed)
	f.Add(seedBuf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(data)), &req); err != nil {
			return
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		if err := (BinaryCodec{}).WriteRequest(bw, &req); err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		var again Request
		if err := (BinaryCodec{}).ReadRequest(bufio.NewReader(&out), &again); err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if again.Op != req.Op || string(again.Key) != string(req.Key) ||
			string(again.Value) != string(req.Value) || again.Version != req.Version {
			t.Fatalf("re-decode mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzBinaryReadResponse is the response-side twin.
func FuzzBinaryReadResponse(f *testing.F) {
	var seedBuf bytes.Buffer
	w := bufio.NewWriter(&seedBuf)
	seed := Response{ID: 7, Status: StatusOK, Value: []byte("v"), Pairs: []KV{{Key: []byte("a"), Value: []byte("1")}}}
	_ = BinaryCodec{}.WriteResponse(w, &seed)
	f.Add(seedBuf.Bytes())
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		var resp Response
		if err := (BinaryCodec{}).ReadResponse(bufio.NewReader(bytes.NewReader(data)), &resp); err != nil {
			return
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		if err := (BinaryCodec{}).WriteResponse(bw, &resp); err != nil {
			t.Fatalf("accepted response failed to re-encode: %v", err)
		}
	})
}

// FuzzTextReadRequest fuzzes the RESP-like parser.
func FuzzTextReadRequest(f *testing.F) {
	var seedBuf bytes.Buffer
	w := bufio.NewWriter(&seedBuf)
	seed := Request{Op: OpGet, Key: []byte("k")}
	_ = TextCodec{}.WriteRequest(w, &seed)
	f.Add(seedBuf.Bytes())
	f.Add([]byte("*9\r\n$3\r\nPUT\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("$$$$\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := (TextCodec{}).ReadRequest(bufio.NewReader(bytes.NewReader(data)), &req); err != nil {
			return
		}
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		if err := (TextCodec{}).WriteRequest(bw, &req); err != nil {
			t.Fatalf("accepted text request failed to re-encode: %v", err)
		}
		var again Request
		if err := (TextCodec{}).ReadRequest(bufio.NewReader(&out), &again); err != nil {
			t.Fatalf("re-encoded text request failed to decode: %v", err)
		}
	})
}
