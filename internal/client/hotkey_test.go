package client

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

func TestHotTrackerThreshold(t *testing.T) {
	h := newHotTracker(5)
	k := []byte("popular")
	for i := 1; i <= 4; i++ {
		if h.touch(k) {
			t.Fatalf("hot after %d touches (threshold 5)", i)
		}
	}
	if !h.touch(k) {
		t.Fatal("not hot after 5 touches")
	}
	if !h.hot(k) {
		t.Fatal("hot() disagrees with touch()")
	}
	if h.hot([]byte("cold")) {
		t.Fatal("untouched key reported hot")
	}
}

func TestHotTrackerDecayBoundsTable(t *testing.T) {
	h := newHotTracker(3)
	hot := []byte("keeper")
	for i := 0; i < 100; i++ {
		h.touch(hot)
	}
	// Flood with distinct cold keys to force decay cycles.
	for i := 0; i < hotTableCap*3; i++ {
		h.touch([]byte(fmt.Sprintf("cold-%06d", i)))
	}
	h.mu.Lock()
	size := len(h.counts)
	h.mu.Unlock()
	if size > hotTableCap+1 {
		t.Fatalf("tracker grew to %d entries (cap %d)", size, hotTableCap)
	}
	if !h.hot(hot) {
		t.Fatal("genuinely hot key evicted by decay")
	}
}

func TestShadowKey(t *testing.T) {
	k := []byte("user42")
	sk := shadowKey(k)
	if bytes.Equal(k, sk) {
		t.Fatal("shadow key equals primary key")
	}
	if !isShadowKey(sk) {
		t.Fatal("shadow key not recognized")
	}
	if isShadowKey(k) {
		t.Fatal("primary key misrecognized as shadow")
	}
	if isShadowKey([]byte("x")) {
		t.Fatal("short key misrecognized")
	}
}

// TestHotKeyReadsUseShadow drives a hot key through a fake server and
// verifies: (1) the shadow copy gets written once the key crosses the
// threshold, (2) some eventual reads hit the shadow key, (3) strong reads
// never do, (4) delete removes the shadow.
func TestHotKeyReadsUseShadow(t *testing.T) {
	var mu sync.Mutex
	stored := map[string][]byte{}
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		mu.Lock()
		defer mu.Unlock()
		switch req.Op {
		case wire.OpPut:
			stored[string(req.Key)] = append([]byte(nil), req.Value...)
			resp.Status = wire.StatusOK
		case wire.OpGet:
			v, ok := stored[string(req.Key)]
			if !ok {
				resp.Status = wire.StatusNotFound
				return
			}
			resp.Status = wire.StatusOK
			resp.Value = append([]byte(nil), v...)
		case wire.OpDel:
			delete(stored, string(req.Key))
			resp.Status = wire.StatusOK
		}
	})
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	c, err := New(Config{
		Network:         net,
		Codec:           codec,
		StaticMap:       staticMapTo(addr),
		HotKeyThreshold: 3,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	k := []byte("celebrity")
	for i := 0; i < 5; i++ { // crosses the threshold at the 3rd put
		if err := c.Put("", k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := stored[string(shadowKey(k))]; !ok {
		t.Fatal("shadow copy never written for hot key")
	}
	// Eventual reads keep working (shadow or primary, both hold "v").
	for i := 0; i < 20; i++ {
		v, ok, err := c.GetLevel("", k, wire.LevelEventual)
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("eventual read %d: (%q,%v,%v)", i, v, ok, err)
		}
	}
	// Delete removes primary and shadow.
	if _, err := c.Del("", k); err != nil {
		t.Fatal(err)
	}
	if _, ok := stored[string(k)]; ok {
		t.Fatal("primary survived delete")
	}
	if _, ok := stored[string(shadowKey(k))]; ok {
		t.Fatal("shadow survived delete")
	}
}
