package client

import (
	"errors"
	"fmt"
	"sync"

	"bespokv/internal/wire"
)

// Shard-coalesced batch API: MultiGet/MultiPut bucket keys by destination
// shard under the current map, ship one multi-op frame per shard (decoded
// server-side into a single engine pass), fan the buckets out concurrently
// over the existing pipelined connections, and reassemble answers in the
// caller's key order with per-key error reporting. A batch of N keys
// touching S shards costs S frames instead of N round trips.

// MultiResult is the per-key outcome of a batch operation.
type MultiResult struct {
	// Value is the value read (MultiGet only; nil when !Found).
	Value []byte
	// Found reports whether the key existed.
	Found bool
	// Err is the per-key failure, nil on success. A shard-wide failure
	// (unreachable, out of retries) lands on every key of that bucket.
	Err error
}

// statusErr converts a non-OK per-key status into a per-key error.
func statusErr(st wire.Status) error {
	return fmt.Errorf("client: %s", st)
}

// bucket is one shard's slice of a batch.
type bucket struct {
	keys [][]byte // batch keys, same order as idxs
	idxs []int    // positions in the caller's slice
}

// bucketByShard groups batch positions by owning shard index.
func (c *Client) bucketByShard(keys [][]byte) (map[int]*bucket, error) {
	c.mu.RLock()
	m, ring := c.m, c.ring
	c.mu.RUnlock()
	if m == nil || len(m.Shards) == 0 {
		return nil, errors.New("client: no cluster map")
	}
	buckets := make(map[int]*bucket)
	for i, k := range keys {
		si := m.ShardFor(k, ring)
		b := buckets[si]
		if b == nil {
			b = &bucket{}
			buckets[si] = b
		}
		b.keys = append(b.keys, k)
		b.idxs = append(b.idxs, i)
	}
	return buckets, nil
}

// MultiGet reads every key in one coalesced sweep at the mode's default
// consistency. The returned slice is index-aligned with keys; the error is
// non-nil only when the batch could not be attempted at all.
func (c *Client) MultiGet(table string, keys [][]byte) ([]MultiResult, error) {
	return c.MultiGetLevel(table, keys, wire.LevelDefault)
}

// MultiGetLevel is MultiGet with an explicit consistency level.
func (c *Client) MultiGetLevel(table string, keys [][]byte, level wire.Level) ([]MultiResult, error) {
	out := make([]MultiResult, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	buckets, err := c.bucketByShard(keys)
	if err != nil {
		return nil, err
	}
	// Direct-eligible buckets ride the pipelined DoAsync machinery: every
	// frame is submitted before any response is awaited, so the shard
	// fan-out overlaps on the connections' write loops and costs no
	// goroutine spawns. Ineligible buckets (no lease, AA strong reads,
	// mid-transition) take the retrying controlet path concurrently.
	var (
		pend []pendingMGet
		wg   sync.WaitGroup
	)
	for si, b := range buckets {
		if pd, ok := c.submitDirectMGet(table, level, si, b); ok {
			pend = append(pend, pd)
			continue
		}
		wg.Add(1)
		go func(si int, b *bucket) {
			defer wg.Done()
			c.mgetBucket(table, level, si, b, out)
		}(si, b)
	}
	for _, pd := range pend {
		if !c.awaitDirectMGet(pd, out) {
			// The direct frame failed (stale epoch, dead datalet, short
			// reply): this bucket falls back through the controlet.
			c.mgetBucket(table, level, pd.si, pd.b, out)
		}
	}
	wg.Wait()
	return out, nil
}

// mgetBucket resolves one shard's keys through the ordinary retrying
// controlet path (the fallback when a direct frame is ineligible or
// bounced).
func (c *Client) mgetBucket(table string, level wire.Level, si int, b *bucket, out []MultiResult) {
	req := wire.Request{Op: wire.OpMGet, Table: table, Level: level}
	for _, k := range b.keys {
		req.Pairs = append(req.Pairs, wire.KV{Key: k})
	}
	var resp wire.Response
	err := c.execute(&req, &resp, func() (string, uint64, error) {
		// Re-derive the shard from a member key each attempt so a
		// failover or migration observed mid-retry re-routes the bucket.
		shard, m, err := c.shardFor(b.keys[0])
		if err != nil {
			return "", 0, err
		}
		return c.readTarget(m, shard, level).ControletAddr, m.Epoch, nil
	})
	if err == nil {
		err = resp.ErrValue()
	}
	if err != nil {
		for _, idx := range b.idxs {
			out[idx] = MultiResult{Err: err}
		}
		return
	}
	for i, idx := range b.idxs {
		if i >= len(resp.Statuses) || i >= len(resp.Pairs) {
			out[idx] = MultiResult{Err: errors.New("client: short multi-get response")}
			continue
		}
		switch resp.Statuses[i] {
		case wire.StatusOK:
			out[idx] = MultiResult{Value: append([]byte(nil), resp.Pairs[i].Value...), Found: true}
		case wire.StatusNotFound:
			out[idx] = MultiResult{}
		default:
			out[idx] = MultiResult{Err: statusErr(resp.Statuses[i])}
		}
	}
}

// MultiPut writes every pair in one coalesced sweep. The returned slice is
// index-aligned with pairs: errs[i] is nil when pairs[i] was durably
// accepted. The error is non-nil only when the batch could not be
// attempted at all — per-shard failures (one shard down, the rest healthy)
// surface as per-key errors, and the healthy shards' writes stand.
func (c *Client) MultiPut(table string, pairs []wire.KV) ([]error, error) {
	errs := make([]error, len(pairs))
	if len(pairs) == 0 {
		return errs, nil
	}
	keys := make([][]byte, len(pairs))
	for i := range pairs {
		keys[i] = pairs[i].Key
	}
	buckets, err := c.bucketByShard(keys)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for _, b := range buckets {
		wg.Add(1)
		go func(b *bucket) {
			defer wg.Done()
			c.mputBucket(table, pairs, b, errs)
		}(b)
	}
	wg.Wait()
	if c.hot != nil {
		for i := range pairs {
			if errs[i] == nil && c.hot.touch(pairs[i].Key) {
				c.hotPut(table, pairs[i].Key, pairs[i].Value)
			}
		}
	}
	return errs, nil
}

// mputBucket writes one shard's pairs through the retrying controlet path.
func (c *Client) mputBucket(table string, pairs []wire.KV, b *bucket, errs []error) {
	req := wire.Request{Op: wire.OpMPut, Table: table}
	for _, idx := range b.idxs {
		req.Pairs = append(req.Pairs, wire.KV{Key: pairs[idx].Key, Value: pairs[idx].Value})
	}
	var resp wire.Response
	err := c.execute(&req, &resp, func() (string, uint64, error) {
		shard, m, err := c.shardFor(b.keys[0])
		if err != nil {
			return "", 0, err
		}
		return c.writeTarget(m, shard).ControletAddr, m.Epoch, nil
	})
	if err == nil {
		err = resp.ErrValue()
	}
	if err != nil {
		for _, idx := range b.idxs {
			errs[idx] = err
		}
		return
	}
	for i, idx := range b.idxs {
		if i >= len(resp.Statuses) {
			errs[idx] = errors.New("client: short multi-put response")
			continue
		}
		if resp.Statuses[i] != wire.StatusOK {
			errs[idx] = statusErr(resp.Statuses[i])
		}
	}
}
