package client

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"bespokv/internal/metrics"
)

// promValue extracts one sample's value from a WriteProm dump.
func promValue(t *testing.T, out, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not in output", name)
	return 0
}

func TestHedgeGauges(t *testing.T) {
	h := newHedgeState(2*time.Millisecond, 10)
	defer unregisterHedge(h)

	// Feed a window with a clear tail so the p99 estimate climbs above the
	// floor: 63 fast reads and one 40ms straggler, then past the recompute
	// stride (every 32 observes).
	for i := 0; i < 63; i++ {
		h.observe(500 * time.Microsecond)
	}
	h.observe(40 * time.Millisecond)
	for i := 0; i < 32; i++ {
		h.observe(500 * time.Microsecond)
	}

	var sb strings.Builder
	if err := metrics.Default.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	p99 := promValue(t, out, "bespokv_client_hedge_p99_seconds")
	if p99 < 0.002 {
		t.Fatalf("hedge p99 gauge %.6fs below the 2ms floor", p99)
	}
	// 96 observes at 10%% credit cap the bank quickly; at least the
	// startup token must be visible, never more than the burst cap.
	tokens := promValue(t, out, "bespokv_client_hedge_tokens")
	if tokens < 1 || tokens > hedgeTokenCap/hedgeTokenScale {
		t.Fatalf("hedge token gauge %.2f outside [1, %d]", tokens, hedgeTokenCap/hedgeTokenScale)
	}
	frac := promValue(t, out, "bespokv_client_hedge_budget_frac")
	if frac <= 0 || frac > 1 {
		t.Fatalf("budget fraction %.2f outside (0, 1]", frac)
	}

	// Spending the bank dry shows up as a drained budget.
	for h.allow() {
	}
	sb.Reset()
	if err := metrics.Default.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	drained := promValue(t, sb.String(), "bespokv_client_hedge_tokens")
	if drained >= tokens {
		t.Fatalf("token gauge did not fall after spending: %.2f -> %.2f", tokens, drained)
	}

	// Unregistering (Client.Close) removes the state from the scrape set.
	unregisterHedge(h)
	hedgeMu.Lock()
	_, still := hedgeSet[h]
	hedgeMu.Unlock()
	if still {
		t.Fatal("hedge state still in scrape set after unregister")
	}
}
