package client

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// Hedged reads ("The Tail at Scale" tactic): a read with a replica choice
// that has not answered within the client's running p99 read latency is
// raced against a second replica and the first usable response wins. One
// slow replica — GC pause, overloaded disk, congested link — then costs a
// p99 round trip instead of a timeout. Hedges are capped by a token budget
// so a generally-slow cluster cannot trick every read into doubling load.
//
// The pipelined datalet protocol has no cancel frame, so "cancellation" of
// the losing leg means abandoning it: a goroutine drains the late response
// and recycles its buffers, and the connection stays usable.

const (
	// hedgeTokenScale is the token cost of one hedge; each completed read
	// credits HedgeBudgetPct tokens, so hedges sustain at BudgetPct% of
	// the read rate.
	hedgeTokenScale = 100
	// hedgeTokenCap bounds banked tokens (a burst of 10 hedges).
	hedgeTokenCap = 10 * hedgeTokenScale
	// hedgeWindow is the latency sample reservoir for the p99 estimate.
	hedgeWindow = 64
)

// hedgeState tracks the hedge delay estimate and spend budget.
type hedgeState struct {
	floor  time.Duration
	pct    int
	tokens atomic.Int64
	p99    atomic.Int64 // nanoseconds

	mu     sync.Mutex
	window [hedgeWindow]time.Duration
	filled int
	idx    int
}

func newHedgeState(floor time.Duration, pct int) *hedgeState {
	h := &hedgeState{floor: floor, pct: pct}
	h.tokens.Store(hedgeTokenScale) // one banked hedge at startup
	h.p99.Store(int64(floor))
	registerHedge(h)
	return h
}

// observe records a completed read's latency and credits the budget.
func (h *hedgeState) observe(d time.Duration) {
	for {
		cur := h.tokens.Load()
		if cur >= hedgeTokenCap {
			break
		}
		next := cur + int64(h.pct)
		if next > hedgeTokenCap {
			next = hedgeTokenCap
		}
		if h.tokens.CompareAndSwap(cur, next) {
			break
		}
	}
	h.mu.Lock()
	h.window[h.idx%hedgeWindow] = d
	h.idx++
	if h.filled < hedgeWindow {
		h.filled++
	}
	recompute := h.idx%32 == 0
	var snap []time.Duration
	if recompute {
		snap = append(make([]time.Duration, 0, h.filled), h.window[:h.filled]...)
	}
	h.mu.Unlock()
	if !recompute {
		return
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	p := snap[len(snap)*99/100]
	if p < h.floor {
		p = h.floor
	}
	h.p99.Store(int64(p))
}

// delay is how long to wait before firing the hedge leg.
func (h *hedgeState) delay() time.Duration {
	d := time.Duration(h.p99.Load())
	if d < h.floor {
		d = h.floor
	}
	return d
}

// allow consumes one hedge from the budget, reporting whether it fit.
func (h *hedgeState) allow() bool {
	for {
		cur := h.tokens.Load()
		if cur < hedgeTokenScale {
			return false
		}
		if h.tokens.CompareAndSwap(cur, cur-hedgeTokenScale) {
			return true
		}
	}
}

// hedgedRace issues one request built by build to primary and, if it has
// not answered within the hedge delay (and the budget allows), races an
// identical request against alt. It returns the winning response and a
// release func that recycles it; a non-nil error means no leg produced a
// response. alt may be nil (single-leg call with pooled buffers).
func (c *Client) hedgedRace(primary, alt *datalet.Pool, build func(*wire.Request)) (*wire.Response, func(), error) {
	launch := func(p *datalet.Pool) (*wire.Request, *wire.Response, <-chan error) {
		req := wire.GetRequest()
		build(req)
		resp := wire.GetResponse()
		return req, resp, p.DoAsync(req, resp)
	}
	finish := func(req *wire.Request, resp *wire.Response, err error) (*wire.Response, func(), error) {
		if err != nil {
			wire.PutRequest(req)
			wire.PutResponse(resp)
			return nil, nil, err
		}
		return resp, func() { wire.PutRequest(req); wire.PutResponse(resp) }, nil
	}
	// abandon walks away from an in-flight leg: the drain goroutine
	// recycles its buffers once the late response (or failure) lands.
	abandon := func(req *wire.Request, resp *wire.Response, errc <-chan error) {
		go func() {
			<-errc
			wire.PutRequest(req)
			wire.PutResponse(resp)
		}()
	}

	req1, resp1, errc1 := launch(primary)
	if alt == nil || c.hedge == nil {
		return finish(req1, resp1, <-errc1)
	}
	timer := time.NewTimer(c.hedge.delay())
	defer timer.Stop()
	select {
	case err := <-errc1:
		return finish(req1, resp1, err)
	case <-timer.C:
	}
	if !c.hedge.allow() {
		return finish(req1, resp1, <-errc1)
	}
	clientHedgedReads.Inc()
	req2, resp2, errc2 := launch(alt)
	select {
	case err := <-errc1:
		if err == nil {
			abandon(req2, resp2, errc2)
			return finish(req1, resp1, nil)
		}
		// Primary died after we hedged; the hedge leg is the last hope.
		wire.PutRequest(req1)
		wire.PutResponse(resp1)
		err2 := <-errc2
		if err2 == nil {
			clientHedgeWins.Inc()
		}
		return finish(req2, resp2, err2)
	case err := <-errc2:
		if err == nil && (resp2.Status == wire.StatusOK || resp2.Status == wire.StatusNotFound) {
			clientHedgeWins.Inc()
			abandon(req1, resp1, errc1)
			return finish(req2, resp2, nil)
		}
		// The hedge leg was no better; settle for the primary.
		wire.PutRequest(req2)
		wire.PutResponse(resp2)
		return finish(req1, resp1, <-errc1)
	}
}

// hedgedControletGet serves an eventual-level read with a replica choice as
// a hedged race between two controlets. ok=false means the caller should
// take the ordinary retrying path (ineligible, no second replica, or the
// race produced nothing usable).
func (c *Client) hedgedControletGet(req *wire.Request, level wire.Level) (val []byte, found, ok bool) {
	if c.hedge == nil {
		return nil, false, false
	}
	if c.degraded() {
		// Sustained overload pushback: hedging is the first thing to go.
		// The ordinary retrying path serves the read with one leg.
		clientHedgeSuppressed.Inc()
		return nil, false, false
	}
	shard, m, err := c.shardFor(req.Key)
	if err != nil || !eventualEffective(m, level) {
		return nil, false, false
	}
	readable := shard.ReadReplicas()
	if len(readable) < 2 {
		return nil, false, false
	}
	pi := c.randInt(len(readable))
	ai := (pi + 1 + c.randInt(len(readable)-1)) % len(readable)
	primary, err := c.pool(readable[pi].ControletAddr)
	if err != nil {
		return nil, false, false
	}
	alt, err := c.pool(readable[ai].ControletAddr)
	if err != nil {
		alt = nil // race degrades to a single leg
	}
	start := time.Now()
	resp, release, err := c.hedgedRace(primary, alt, func(r *wire.Request) {
		r.Op = wire.OpGet
		r.Table = req.Table
		r.Key = req.Key
		r.Level = level
		r.Epoch = m.Epoch
		r.TraceID = req.TraceID
		if c.cfg.OpBudget > 0 {
			r.Deadline = uint64(c.cfg.OpBudget)
		}
	})
	if err != nil {
		return nil, false, false
	}
	defer release()
	c.hedge.observe(time.Since(start))
	switch resp.Status {
	case wire.StatusOK:
		recordClientOp(wire.OpGet, time.Since(start))
		return append([]byte(nil), resp.Value...), true, true
	case wire.StatusNotFound:
		recordClientOp(wire.OpGet, time.Since(start))
		return nil, false, true
	case wire.StatusWrongEpoch:
		go c.refreshMap()
	}
	return nil, false, false
}

// eventualEffective reports whether level resolves to an eventual read
// under m's mode — the only reads with a free replica choice.
func eventualEffective(m *topology.Map, level wire.Level) bool {
	if level == wire.LevelDefault {
		return m != nil && m.Mode.Consistency == topology.Eventual
	}
	return level == wire.LevelEventual
}
