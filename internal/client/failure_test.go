package client

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// TestClassifyFailure pins the three-way failure split the overload design
// depends on: Overloaded (alive, shedding — back off inside the retry
// budget), Unavailable/WrongEpoch (failover in progress — refresh and
// re-route), and transport failures (endpoint silent — breaker food).
func TestClassifyFailure(t *testing.T) {
	cases := []struct {
		name   string
		status wire.Status
		err    error
		want   failureKind
	}{
		{"overloaded", wire.StatusOverloaded, nil, failOverloaded},
		{"unavailable", wire.StatusUnavailable, nil, failUnavailable},
		{"wrong-epoch", wire.StatusWrongEpoch, nil, failUnavailable},
		{"refused", wire.StatusOK, errors.New("dial inproc: connection refused"), failTransport},
		// A transport error outranks any status: resp may hold a stale
		// status from a previous attempt when the exchange itself failed.
		{"timeout-over-stale-status", wire.StatusOverloaded, datalet.ErrCallTimeout, failTransport},
		{"breaker-fast-fail", wire.StatusOK, errBreakerOpen, failTransport},
		// StatusErr is terminal (handled before classification in execute);
		// classify treats it as the generic bucket.
		{"server-err", wire.StatusErr, nil, failOther},
	}
	for _, tc := range cases {
		if got := classifyFailure(tc.status, tc.err); got != tc.want {
			t.Errorf("%s: classifyFailure(%v, %v) = %v, want %v", tc.name, tc.status, tc.err, got, tc.want)
		}
	}
}

// TestOverloadedRetriedWithBackoff: Overloaded is retryable — but with
// backoff, never hot, and it must not trip the endpoint's breaker (the
// server answered; it is alive).
func TestOverloadedRetriedWithBackoff(t *testing.T) {
	var calls atomic.Int64
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		calls.Add(1)
		resp.Status = wire.StatusOverloaded
		resp.Err = "controlet: overloaded"
	})
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	c, err := New(Config{
		Network: net, Codec: codec, StaticMap: staticMapTo(addr),
		Retries: 3, RetryBackoff: 4 * time.Millisecond, BreakerThreshold: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Put("", []byte("k"), []byte("v"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("put against an always-overloaded server must eventually fail")
	}
	if !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("error does not surface the shed: %v", err)
	}
	// All 3 attempts must reach the server: every exchange completed, so
	// the breaker (threshold 2) must never have opened.
	if got := calls.Load(); got != 3 {
		t.Fatalf("server called %d times, want 3 (breaker must not trip on Overloaded)", got)
	}
	// Two inter-attempt sleeps with base 4ms draw at least 2+4 = 6ms of
	// jitter floor; a hot-retry regression finishes in microseconds.
	if elapsed < 6*time.Millisecond {
		t.Fatalf("3 attempts finished in %v: Overloaded is being retried hot", elapsed)
	}
}

// TestRetryBudgetBoundsAmplification drains the retry token bucket with an
// always-shedding server and pins the exact attempt arithmetic: 10 banked
// retries at pct=10, so op 1 spends 7 and op 2 is cut off after 3.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	var calls atomic.Int64
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		calls.Add(1)
		resp.Status = wire.StatusOverloaded
		resp.Err = "controlet: overloaded"
	})
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	c, err := New(Config{
		Network: net, Codec: codec, StaticMap: staticMapTo(addr),
		Retries: 8, RetryBackoff: time.Millisecond, RetryBudgetPct: 10, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Op 1: 8 attempts = 7 retries, spending 700 of the 1000 banked
	// tokens; completion credits 10 back (310 left).
	if err := c.Put("", []byte("k"), []byte("v")); err == nil {
		t.Fatal("op 1 must fail")
	}
	if got := calls.Load(); got != 8 {
		t.Fatalf("op 1 made %d calls, want 8", got)
	}
	// Op 2: 310 tokens afford 3 retries; the 4th is denied, so 4 calls.
	err = c.Put("", []byte("k"), []byte("v"))
	if err == nil {
		t.Fatal("op 2 must fail")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("op 2 error does not name the budget: %v", err)
	}
	if got := calls.Load(); got != 12 {
		t.Fatalf("total calls = %d, want 12 (retry budget must cut op 2 at 4 attempts)", got)
	}
}

// TestBreakerFastFails: consecutive transport failures trip the endpoint's
// breaker, and subsequent attempts fail locally without touching the wire.
func TestBreakerFastFails(t *testing.T) {
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	// No server listens at this address: every dial is refused.
	c, err := New(Config{
		Network: net, Codec: codec, StaticMap: staticMapTo("nobody-home"),
		Retries: 6, RetryBackoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: time.Second, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Put("", []byte("k"), []byte("v"))
	if err == nil {
		t.Fatal("put against a dead endpoint must fail")
	}
	// Attempts 1-2 are refused dials (tripping the breaker at threshold
	// 2); the backoffs total far under the 1s cooldown, so the final
	// attempts are breaker fast-fails and the last error names it.
	if !errors.Is(err, errBreakerOpen) {
		t.Fatalf("final error is not the breaker fast-fail: %v", err)
	}
}

// TestOpBudgetBoundsOpTime: an op whose retries would outlive OpBudget is
// failed at the budget's edge instead of sleeping past it.
func TestOpBudgetBoundsOpTime(t *testing.T) {
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		resp.Status = wire.StatusOverloaded
		resp.Err = "controlet: overloaded"
	})
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	c, err := New(Config{
		Network: net, Codec: codec, StaticMap: staticMapTo(addr),
		Retries: 100, RetryBackoff: 30 * time.Millisecond, OpBudget: 50 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Put("", []byte("k"), []byte("v"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("put must fail once the op budget lapses")
	}
	if !strings.Contains(err.Error(), "op budget") {
		t.Fatalf("error does not name the op budget: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("op with a 50ms budget ran %v", elapsed)
	}
}

// TestOpBudgetStampedOnWire: with OpBudget set, every attempt carries the
// remaining budget as its wire deadline; without it, no deadline rides.
func TestOpBudgetStampedOnWire(t *testing.T) {
	var sawDeadline atomic.Uint64
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		sawDeadline.Store(req.Deadline)
		resp.Status = wire.StatusOK
	})
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	budget := 100 * time.Millisecond
	c, err := New(Config{Network: net, Codec: codec, StaticMap: staticMapTo(addr), OpBudget: budget, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if d := sawDeadline.Load(); d == 0 || d > uint64(budget) {
		t.Fatalf("wire deadline = %d, want (0, %d]", d, uint64(budget))
	}
	c2 := newStaticClient(t, staticMapTo(addr))
	if err := c2.Put("", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if d := sawDeadline.Load(); d != 0 {
		t.Fatalf("wire deadline = %d without an op budget, want 0", d)
	}
}

// TestSustainedOverloadDegrades: degraded mode needs overloadMin pushbacks
// inside the window — one shy stays healthy, and the signal decays.
func TestSustainedOverloadDegrades(t *testing.T) {
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		resp.Status = wire.StatusOK
	})
	c := newStaticClient(t, staticMapTo(addr))
	for i := 0; i < overloadMin-1; i++ {
		c.noteOverloaded()
	}
	if c.degraded() {
		t.Fatalf("degraded after %d pushbacks, threshold is %d", overloadMin-1, overloadMin)
	}
	c.noteOverloaded()
	if !c.degraded() {
		t.Fatalf("not degraded after %d pushbacks inside the window", overloadMin)
	}
}
