package client

import (
	"sync"

	"bespokv/internal/wire"
)

// Hot-key load balancing (Appendix C discussion): "load imbalance due to
// hot keys can be solved by integrating a small metadata cache at
// bespokv's client library to keep track of hot keys; once the popularity
// of hot keys exceeds a pre-defined threshold, the client library
// replicates this key on a shadow server that is rehashed by adding a
// suffix to the key."
//
// hotTracker is that small metadata cache: a bounded count table with
// periodic halving (a tiny space-saving counter). When a key's count
// crosses the threshold the client starts writing a shadow copy under
// key+shadowSuffix — which consistent-hashes to a different shard — and
// spreads eventual reads of the key across the primary and the shadow.
// Strong reads always use the primary (the shadow copy is asynchronous by
// construction). Deletes remove both.

const (
	// shadowSuffix rehashes a hot key to its shadow shard.
	shadowSuffix = "\x00#shadow"
	// hotTableCap bounds the tracker; when full, all counts halve and
	// cold entries are evicted (decay keeps the table adaptive).
	hotTableCap = 4096
)

// hotTracker counts key popularity; safe for concurrent use. Besides the
// counts it tracks which shadow copies are fresh — written by this client
// under the current cluster map. A map change (failover, transition,
// migration cutover) invalidates every entry: the shadow's shard placement
// and content can no longer be trusted, so reads use the primary until the
// client re-establishes each shadow with a fresh write.
type hotTracker struct {
	mu        sync.Mutex
	counts    map[string]int
	fresh     map[string]struct{}
	threshold int
}

func newHotTracker(threshold int) *hotTracker {
	return &hotTracker{
		counts:    make(map[string]int),
		fresh:     make(map[string]struct{}),
		threshold: threshold,
	}
}

// markFresh records that key's shadow copy was just written under the
// current map.
func (h *hotTracker) markFresh(key []byte) {
	h.mu.Lock()
	h.fresh[string(key)] = struct{}{}
	h.mu.Unlock()
}

// isFresh reports whether key's shadow copy may serve reads.
func (h *hotTracker) isFresh(key []byte) bool {
	h.mu.Lock()
	_, ok := h.fresh[string(key)]
	h.mu.Unlock()
	return ok
}

// invalidate drops every shadow's freshness (called on map epoch advance);
// popularity counts survive, so re-warming a shadow takes one write, not a
// threshold's worth of accesses.
func (h *hotTracker) invalidate() {
	h.mu.Lock()
	clear(h.fresh)
	h.mu.Unlock()
}

// touch records one access and reports whether the key is now hot.
func (h *hotTracker) touch(key []byte) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.counts[string(key)] + 1
	if len(h.counts) >= hotTableCap {
		if _, tracked := h.counts[string(key)]; !tracked {
			h.decayLocked()
		}
	}
	h.counts[string(key)] = c
	return c >= h.threshold
}

// hot reports whether key is currently above the threshold.
func (h *hotTracker) hot(key []byte) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts[string(key)] >= h.threshold
}

// decayLocked halves every count and evicts zeros, bounding the table
// while keeping genuinely hot keys hot.
func (h *hotTracker) decayLocked() {
	for k, c := range h.counts {
		c /= 2
		if c == 0 {
			delete(h.counts, k)
		} else {
			h.counts[k] = c
		}
	}
}

// shadowKey derives the rehash key for a hot key.
func shadowKey(key []byte) []byte {
	out := make([]byte, 0, len(key)+len(shadowSuffix))
	out = append(out, key...)
	return append(out, shadowSuffix...)
}

// hotPut mirrors a hot key's write to its shadow shard (best effort: the
// shadow is a cache, the primary remains the source of truth).
func (c *Client) hotPut(table string, key, value []byte) {
	sk := shadowKey(key)
	req := wire.Request{Op: wire.OpPut, Table: table, Key: sk, Value: value}
	var resp wire.Response
	if err := c.execute(&req, &resp, c.routeWrite(sk)); err == nil && resp.Status == wire.StatusOK {
		c.hot.markFresh(key)
	}
}

// hotDel removes the shadow copy alongside the primary delete.
func (c *Client) hotDel(table string, key []byte) {
	sk := shadowKey(key)
	req := wire.Request{Op: wire.OpDel, Table: table, Key: sk}
	var resp wire.Response
	_ = c.execute(&req, &resp, c.routeWrite(sk))
	h := c.hot
	h.mu.Lock()
	delete(h.fresh, string(key))
	h.mu.Unlock()
}

// hotGet tries the shadow copy of a hot key; ok reports a usable answer
// (hit or authoritative miss handled by the caller's fallback).
func (c *Client) hotGet(table string, key []byte) ([]byte, bool) {
	sk := shadowKey(key)
	req := wire.Request{Op: wire.OpGet, Table: table, Key: sk, Level: wire.LevelEventual}
	var resp wire.Response
	err := c.execute(&req, &resp, func() (string, uint64, error) {
		shard, m, err := c.shardFor(sk)
		if err != nil {
			return "", 0, err
		}
		return c.readTarget(m, shard, wire.LevelEventual).ControletAddr, m.Epoch, nil
	})
	if err != nil || resp.Status != wire.StatusOK {
		return nil, false
	}
	return append([]byte(nil), resp.Value...), true
}

// isShadowKey reports whether a stored key is a shadow copy (scan results
// must hide them).
func isShadowKey(key []byte) bool {
	if len(key) < len(shadowSuffix) {
		return false
	}
	return string(key[len(key)-len(shadowSuffix):]) == shadowSuffix
}
