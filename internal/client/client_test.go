package client

import (
	"bufio"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// fakeServer answers every request via fn.
func fakeServer(t *testing.T, fn func(req *wire.Request, resp *wire.Response)) string {
	t.Helper()
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	l, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				var req wire.Request
				var resp wire.Response
				for {
					req.Reset()
					if err := codec.ReadRequest(br, &req); err != nil {
						return
					}
					resp.Reset()
					resp.ID = req.ID
					fn(&req, &resp)
					if err := codec.WriteResponse(bw, &resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr()
}

func staticMapTo(addr string) *topology.Map {
	return &topology.Map{
		Epoch:       1,
		Mode:        topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Partitioner: topology.HashPartitioner,
		Shards: []topology.Shard{{
			ID: "s0",
			Replicas: []topology.Node{
				{ID: "n0", ControletAddr: addr, DataletAddr: "d0"},
			},
		}},
	}
}

func newStaticClient(t *testing.T, m *topology.Map) *Client {
	t.Helper()
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	c, err := New(Config{Network: net, Codec: codec, StaticMap: m, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestStaticMapPutGet(t *testing.T) {
	stored := map[string]string{}
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		switch req.Op {
		case wire.OpPut:
			stored[string(req.Key)] = string(req.Value)
			resp.Status = wire.StatusOK
		case wire.OpGet:
			v, ok := stored[string(req.Key)]
			if !ok {
				resp.Status = wire.StatusNotFound
				return
			}
			resp.Status = wire.StatusOK
			resp.Value = []byte(v)
		}
	})
	c := newStaticClient(t, staticMapTo(addr))
	if err := c.Put("", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("", []byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("(%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := c.Get("", []byte("missing")); ok {
		t.Fatal("missing key found")
	}
}

func TestClientFollowsRedirect(t *testing.T) {
	var served atomic.Int64
	right := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		served.Add(1)
		resp.Status = wire.StatusOK
		resp.Value = []byte("from-right")
	})
	wrong := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		resp.Status = wire.StatusRedirect
		resp.Err = right
	})
	c := newStaticClient(t, staticMapTo(wrong))
	v, ok, err := c.Get("", []byte("k"))
	if err != nil || !ok || string(v) != "from-right" {
		t.Fatalf("(%q,%v,%v)", v, ok, err)
	}
	if served.Load() == 0 {
		t.Fatal("redirect target never reached")
	}
}

func TestClientRetriesUnavailableThenFails(t *testing.T) {
	var calls atomic.Int64
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		calls.Add(1)
		resp.Status = wire.StatusUnavailable
		resp.Err = "always down"
	})
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	c, err := New(Config{Network: net, Codec: codec, StaticMap: staticMapTo(addr), Retries: 3, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("", []byte("k"), []byte("v")); err == nil {
		t.Fatal("put against unavailable server must eventually fail")
	}
	if calls.Load() != 3 {
		t.Fatalf("server called %d times, want the retry budget of 3", calls.Load())
	}
}

// TestFlappingEpochBackoff pins the stale-epoch retry loop's backoff: a
// server that always answers WrongEpoch (an epoch flapping faster than the
// client can refresh, e.g. mid-migration) must not be retried hot. With
// Retries=5 and RetryBackoff=8ms the four inter-attempt sleeps draw from
// [4,8) + [8,16) + [16,32) + [32,64) ms, so even the jitter floor sums to
// 60ms — a busy-spin regression finishes orders of magnitude faster.
func TestFlappingEpochBackoff(t *testing.T) {
	var calls atomic.Int64
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		calls.Add(1)
		resp.Status = wire.StatusWrongEpoch
		resp.Epoch = req.Epoch + 1 // always "just moved"
	})
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	c, err := New(Config{
		Network: net, Codec: codec, StaticMap: staticMapTo(addr),
		Retries: 5, RetryBackoff: 8 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Put("", []byte("k"), []byte("v"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("put against a flapping epoch must eventually fail")
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("server called %d times, want the retry budget of 5", got)
	}
	if elapsed < 55*time.Millisecond {
		t.Fatalf("5 attempts finished in %v: retry loop is busy-spinning", elapsed)
	}
}

func TestClientSurfacesServerError(t *testing.T) {
	addr := fakeServer(t, func(req *wire.Request, resp *wire.Response) {
		resp.Status = wire.StatusErr
		resp.Err = "engine exploded"
	})
	c := newStaticClient(t, staticMapTo(addr))
	err := c.Put("", []byte("k"), []byte("v"))
	if err == nil {
		t.Fatal("server error swallowed")
	}
}

func TestConfigValidation(t *testing.T) {
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	if _, err := New(Config{Network: net, Codec: codec}); err == nil {
		t.Fatal("neither coordinator nor static map must be rejected")
	}
	if _, err := New(Config{Network: net, Codec: codec, CoordinatorAddr: "x", StaticMap: staticMapTo("y")}); err == nil {
		t.Fatal("both coordinator and static map must be rejected")
	}
	if _, err := New(Config{Codec: codec, StaticMap: staticMapTo("y")}); err == nil {
		t.Fatal("missing network must be rejected")
	}
}

func routingMap(mode topology.Mode) *topology.Map {
	return &topology.Map{
		Epoch:       1,
		Mode:        mode,
		Partitioner: topology.HashPartitioner,
		Shards: []topology.Shard{{
			ID: "s0",
			Replicas: []topology.Node{
				{ID: "head", ControletAddr: "a-head"},
				{ID: "mid", ControletAddr: "a-mid"},
				{ID: "tail", ControletAddr: "a-tail"},
			},
		}},
	}
}

func TestWriteTargetSelection(t *testing.T) {
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	msMap := routingMap(topology.Mode{Topology: topology.MS, Consistency: topology.Strong})
	c, err := New(Config{Network: net, Codec: codec, StaticMap: msMap, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.writeTarget(msMap, msMap.Shards[0]); got.ID != "head" {
		t.Fatalf("MS write target = %s", got.ID)
	}
	aaMap := routingMap(topology.Mode{Topology: topology.AA, Consistency: topology.Eventual})
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[c.writeTarget(aaMap, aaMap.Shards[0]).ID] = true
	}
	if len(seen) != 3 {
		t.Fatalf("AA writes hit %d replicas, want all 3", len(seen))
	}
}

func TestReadTargetSelection(t *testing.T) {
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	msSC := routingMap(topology.Mode{Topology: topology.MS, Consistency: topology.Strong})
	c, err := New(Config{Network: net, Codec: codec, StaticMap: msSC, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// MS+SC default (strong) reads go to the tail.
	for i := 0; i < 10; i++ {
		if got := c.readTarget(msSC, msSC.Shards[0], wire.LevelDefault); got.ID != "tail" {
			t.Fatalf("strong read target = %s", got.ID)
		}
	}
	// Eventual reads spread over replicas.
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[c.readTarget(msSC, msSC.Shards[0], wire.LevelEventual).ID] = true
	}
	if len(seen) != 3 {
		t.Fatalf("eventual reads hit %d replicas", len(seen))
	}
	// MS+EC strong reads go to the master.
	msEC := routingMap(topology.Mode{Topology: topology.MS, Consistency: topology.Eventual})
	if got := c.readTarget(msEC, msEC.Shards[0], wire.LevelStrong); got.ID != "head" {
		t.Fatalf("MS+EC strong read target = %s", got.ID)
	}
}

func TestShardForRoutesConsistently(t *testing.T) {
	m := &topology.Map{
		Epoch:       1,
		Mode:        topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Partitioner: topology.HashPartitioner,
	}
	for i := 0; i < 4; i++ {
		m.Shards = append(m.Shards, topology.Shard{
			ID:       fmt.Sprintf("s%d", i),
			Replicas: []topology.Node{{ID: fmt.Sprintf("n%d", i), ControletAddr: fmt.Sprintf("a%d", i)}},
		})
	}
	c := newStaticClient(t, m)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		s1, _, err := c.shardFor(k)
		if err != nil {
			t.Fatal(err)
		}
		s2, _, _ := c.shardFor(k)
		if s1.ID != s2.ID {
			t.Fatalf("routing unstable for %q", k)
		}
	}
}

// BenchmarkRandIntParallel exercises the replica-pick path from many
// goroutines at once — the shape of a fan-out MultiGet. math/rand/v2's
// per-P sharded global source keeps this contention-free; the old shared
// *rand.Rand behind a mutex serialized every pick.
func BenchmarkRandIntParallel(b *testing.B) {
	c := &Client{}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = c.randInt(3)
		}
	})
}
