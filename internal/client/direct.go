package client

import (
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// Direct reads: with a live coordinator-granted map lease, SC-safe reads
// skip the controlet and hit the owning datalet itself — zero metadata hops
// on the hot path. Both ends are fenced: the client trusts its map only for
// the lease TTL (renewed over the existing watch long-poll), and the
// datalet checks the request's epoch against its own controlet-granted
// epoch lease, answering StatusWrongEpoch on any mismatch so a stale
// reader falls back through the controlet and refreshes.
//
// SC-safe cases (reads whose answer a datalet can give without the
// controlet's mode logic):
//   - eventual-level reads: any readable replica's datalet
//   - MS+SC strong reads: the chain tail's datalet — the tail stores only
//     fully-replicated writes, so its local answer is the same
//     linearizable answer its controlet would give
//   - MS+EC default reads: the master's datalet (freshest copy)
//
// AA+SC strong reads stay on the controlet path (they must win a DLM
// lease), as does everything during a transition.

// dpoolCooldown is how long a datalet address that failed to dial is left
// alone before direct reads try it again (a collocated in-process datalet
// is permanently unreachable from a remote client; re-dialing it on every
// read would tax the path this feature exists to speed up).
const dpoolCooldown = 2 * time.Second

// dataletPool returns a direct connection pool to n's datalet, or nil when
// the datalet is unreachable/cooling down (the caller falls back).
func (c *Client) dataletPool(n topology.Node) *datalet.Pool {
	if n.DataletAddr == "" {
		return nil
	}
	// Fast path: the pool exists (every read after the first). Kept off
	// the exclusive lock so concurrent bucket fan-outs don't serialize
	// here.
	c.dpoolsMu.RLock()
	p, ok := c.dpools[n.DataletAddr]
	c.dpoolsMu.RUnlock()
	if ok {
		return p
	}
	c.dpoolsMu.Lock()
	defer c.dpoolsMu.Unlock()
	if p, ok := c.dpools[n.DataletAddr]; ok {
		return p
	}
	if until, ok := c.dpoolDown[n.DataletAddr]; ok && time.Now().Before(until) {
		return nil
	}
	codec := c.cfg.Codec
	if n.DataletCodec != "" {
		if dc, err := wire.LookupCodec(n.DataletCodec); err == nil {
			codec = dc
		}
	}
	dialed, err := datalet.DialPool(c.cfg.DataletNetwork, n.DataletAddr, codec, c.cfg.PoolSize)
	if err != nil {
		c.dpoolDown[n.DataletAddr] = time.Now().Add(dpoolCooldown)
		return nil
	}
	p = dialed
	delete(c.dpoolDown, n.DataletAddr)
	if c.cfg.OpTimeout > 0 {
		p.SetCallTimeout(c.cfg.OpTimeout)
	}
	c.dpools[n.DataletAddr] = p
	return p
}

// dropDataletPool discards a direct pool after a transport failure.
func (c *Client) dropDataletPool(addr string) {
	c.dpoolsMu.Lock()
	if p, ok := c.dpools[addr]; ok {
		delete(c.dpools, addr)
		_ = p.Close()
	}
	c.dpoolDown[addr] = time.Now().Add(dpoolCooldown)
	c.dpoolsMu.Unlock()
}

// directCandidates returns the datalet owners that may serve a direct read
// of shard at level, in no particular order; nil means the read is not
// SC-safe to serve directly under m's mode.
func directCandidates(m *topology.Map, shard topology.Shard, level wire.Level) []topology.Node {
	if level == wire.LevelDefault {
		if m.Mode.Consistency == topology.Strong {
			level = wire.LevelStrong
		} else {
			level = wire.LevelEventual
		}
	}
	switch {
	case level == wire.LevelEventual:
		return shard.ReadReplicas()
	case m.Mode.Topology == topology.AA:
		return nil // AA strong reads need the DLM; controlet path only
	case m.Mode.Consistency == topology.Strong:
		return []topology.Node{shard.ReadTail()}
	default:
		return []topology.Node{shard.Head()}
	}
}

// directReadable reports whether direct reads are even on the table right
// now, returning the routing snapshot when they are.
func (c *Client) directReadable(key []byte) (topology.Shard, *topology.Map, bool) {
	if !c.cfg.DirectReads || !c.leaseLive() {
		return topology.Shard{}, nil, false
	}
	shard, m, err := c.shardFor(key)
	if err != nil || m.Transition != nil {
		// Mid-transition routing is the controlet's business (handoffs,
		// draining); direct reads resume after the cutover's epoch bump.
		return topology.Shard{}, nil, false
	}
	return shard, m, true
}

// directGet serves one key straight from the owning datalet. ok=false means
// the caller should take the controlet path (ineligible, unreachable
// datalet, stale epoch, expired datalet lease — all fall back, never fail).
func (c *Client) directGet(table string, key []byte, level wire.Level) (val []byte, found, ok bool) {
	shard, m, eligible := c.directReadable(key)
	if !eligible {
		return nil, false, false
	}
	cands := directCandidates(m, shard, level)
	if len(cands) == 0 {
		return nil, false, false
	}
	primary := c.dataletPool(cands[c.randInt(len(cands))])
	if primary == nil {
		clientDirectFallbacks.Inc()
		return nil, false, false
	}
	// Hedge only reads with a genuine replica choice — and not while the
	// cluster is pushing back (see Client.degraded).
	var alt *datalet.Pool
	if c.hedge != nil && len(cands) > 1 && eventualEffective(m, level) && !c.degraded() {
		alt = c.dataletPool(cands[c.randInt(len(cands))])
		if alt == primary {
			alt = nil
		}
	}
	start := time.Now()
	resp, release, err := c.hedgedRace(primary, alt, func(r *wire.Request) {
		r.Op = wire.OpDirectGet
		r.Table = table
		r.Epoch = m.Epoch
		r.Level = level
		r.Pairs = append(r.Pairs, wire.KV{Key: key})
		if c.cfg.OpBudget > 0 {
			r.Deadline = uint64(c.cfg.OpBudget)
		}
	})
	if err != nil {
		clientDirectFallbacks.Inc()
		return nil, false, false
	}
	defer release()
	if c.hedge != nil {
		c.hedge.observe(time.Since(start))
	}
	if resp.Status != wire.StatusOK || len(resp.Pairs) != 1 || len(resp.Statuses) != 1 {
		if resp.Status == wire.StatusWrongEpoch {
			go c.refreshMap() // the datalet outed our stale map
		}
		clientDirectFallbacks.Inc()
		return nil, false, false
	}
	clientDirectReads.Inc()
	recordClientOp(wire.OpDirectGet, time.Since(start))
	switch resp.Statuses[0] {
	case wire.StatusOK:
		return append([]byte(nil), resp.Pairs[0].Value...), true, true
	case wire.StatusNotFound:
		return nil, false, true
	default:
		return nil, false, false
	}
}

// pendingMGet is one shard's in-flight direct multi-get frame.
type pendingMGet struct {
	si    int
	b     *bucket
	req   *wire.Request
	resp  *wire.Response
	errc  <-chan error
	start time.Time
}

// submitDirectMGet fires one bucket's OpDirectGet frame without waiting for
// the reply, so a MultiGet's shard fan-out pipelines every frame before the
// first response is read. ok=false means the bucket is not direct-eligible
// and should go through the controlet path.
func (c *Client) submitDirectMGet(table string, level wire.Level, si int, b *bucket) (pendingMGet, bool) {
	shard, m, eligible := c.directReadable(b.keys[0])
	if !eligible {
		return pendingMGet{}, false
	}
	cands := directCandidates(m, shard, level)
	if len(cands) == 0 {
		return pendingMGet{}, false
	}
	pool := c.dataletPool(cands[c.randInt(len(cands))])
	if pool == nil {
		clientDirectFallbacks.Inc()
		return pendingMGet{}, false
	}
	req := wire.GetRequest()
	resp := wire.GetResponse()
	req.Op = wire.OpDirectGet
	req.Table = table
	req.Epoch = m.Epoch
	req.Level = level
	if c.cfg.OpBudget > 0 {
		req.Deadline = uint64(c.cfg.OpBudget)
	}
	for _, k := range b.keys {
		req.Pairs = append(req.Pairs, wire.KV{Key: k})
	}
	return pendingMGet{
		si: si, b: b, req: req, resp: resp,
		errc:  pool.Get().DoAsync(req, resp),
		start: time.Now(),
	}, true
}

// awaitDirectMGet collects one in-flight direct frame and fills
// out[b.idxs[i]] for every key it answered. ok=false means the frame was
// bounced (stale epoch, dead datalet) and the bucket needs the controlet
// fallback.
func (c *Client) awaitDirectMGet(pd pendingMGet, out []MultiResult) bool {
	err := <-pd.errc
	defer wire.PutRequest(pd.req)
	defer wire.PutResponse(pd.resp)
	resp, keys := pd.resp, pd.b.keys
	if err != nil {
		clientDirectFallbacks.Inc()
		return false
	}
	if resp.Status != wire.StatusOK || len(resp.Pairs) != len(keys) || len(resp.Statuses) != len(keys) {
		if resp.Status == wire.StatusWrongEpoch {
			go c.refreshMap()
		}
		clientDirectFallbacks.Inc()
		return false
	}
	clientDirectReads.Inc()
	recordClientOp(wire.OpDirectGet, time.Since(pd.start))
	for i, idx := range pd.b.idxs {
		switch resp.Statuses[i] {
		case wire.StatusOK:
			out[idx] = MultiResult{Value: append([]byte(nil), resp.Pairs[i].Value...), Found: true}
		case wire.StatusNotFound:
			out[idx] = MultiResult{}
		default:
			out[idx] = MultiResult{Err: statusErr(resp.Statuses[i])}
		}
	}
	return true
}
