// Package client is the bespokv client library (the paper's Table II API):
// it consults the coordinator for the cluster map, routes requests to the
// right controlet by consistent hashing or range partitioning, follows
// redirects, retries across failovers and transitions, supports
// per-request consistency levels on reads, and fans range queries out
// across shards.
package client

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/coordinator"
	"bespokv/internal/datalet"
	"bespokv/internal/metrics"
	"bespokv/internal/overload"
	"bespokv/internal/rpc"
	"bespokv/internal/topology"
	"bespokv/internal/trace"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// Config configures a client.
type Config struct {
	// Network and Codec must match the controlets'.
	Network transport.Network
	Codec   wire.Codec
	// CoordinatorAddr enables dynamic maps (watch + refresh). Exactly
	// one of CoordinatorAddr and StaticMap must be set.
	CoordinatorAddr string
	// StaticMap pins the topology for coordinator-less deployments.
	StaticMap *topology.Map
	// PoolSize is connections per controlet (default 2).
	PoolSize int
	// Retries bounds attempts per operation (default 8).
	Retries int
	// RetryBackoff is the base backoff between attempts (default 2ms,
	// doubling with jitter, capped at maxRetryBackoff).
	RetryBackoff time.Duration
	// WatchMap keeps a background long-poll for map changes (default on
	// when CoordinatorAddr is set).
	DisableWatch bool
	// OpTimeout arms a pipeline watchdog on every controlet connection: a
	// call with no response within OpTimeout fails with
	// datalet.ErrCallTimeout instead of hanging. This is how the client
	// notices a blackholed (partitioned) controlet — a dead one refuses
	// connections, but a partitioned one just goes silent. 0 disables.
	OpTimeout time.Duration
	// TimeoutRetries caps how many timed-out attempts a single operation
	// may burn (default 3). Timeouts are the expensive failure class —
	// each costs a full OpTimeout — and they signal a partition, which
	// more retries rarely outrun; refused connections and unavailability
	// keep the full Retries budget, since those are the failover-in-
	// progress signatures that retrying is for.
	TimeoutRetries int
	// HotKeyThreshold enables client-side hot-key load balancing
	// (Appendix C): keys accessed at least this many times get a shadow
	// copy on a rehashed shard, and eventual reads spread across primary
	// and shadow. 0 disables it.
	HotKeyThreshold int
	// DirectReads lets SC-safe reads (MS+SC tail reads, MS+EC head reads,
	// eventual-level reads) skip the controlet hop and hit the owning
	// datalet directly, fenced by a coordinator-granted map lease on this
	// side and an epoch lease on the datalet's. Any miss (stale epoch,
	// expired lease, unreachable datalet) falls back through the controlet
	// path transparently.
	DirectReads bool
	// DataletNetwork carries direct-read traffic to datalets; nil uses
	// Network.
	DataletNetwork transport.Network
	// HedgeAfter enables hedged reads: an eventual-level read with a
	// replica choice that has not answered within max(HedgeAfter, the
	// client's running p99 read latency) is raced against a second
	// replica, first response wins. 0 disables hedging.
	HedgeAfter time.Duration
	// HedgeBudgetPct caps hedges at this percentage of reads (default 10;
	// a degenerate cluster where every read hedges would double load and
	// make the tail worse for everyone).
	HedgeBudgetPct int
	// OpBudget is an end-to-end time budget per operation, covering every
	// attempt and backoff. The remaining budget rides each attempt's wire
	// request as a deadline, so every downstream hop (controlet, chain
	// forward, datalet) can drop work the moment this client has stopped
	// waiting instead of finishing it into the void. 0 disables.
	OpBudget time.Duration
	// RetryBudgetPct caps retries at this percentage of primary requests
	// (token bucket, the same arithmetic as HedgeBudgetPct). Unbounded
	// retries amplify offered load exactly when the cluster is drowning;
	// a budget bounds the amplification factor at 1+pct/100. 0 disables
	// (unlimited retries, the pre-overload-control behavior).
	RetryBudgetPct int
	// BreakerThreshold trips a per-endpoint circuit breaker after this
	// many consecutive transport failures (dial errors, call timeouts —
	// never application statuses, which prove the endpoint is talking).
	// A tripped endpoint fast-fails locally until a jittered cooldown
	// admits a half-open probe. Default 8; < 0 disables.
	BreakerThreshold int
	// BreakerCooldown is the breaker's base open period, jittered to
	// [0.5c, 1.5c) so a fleet's probes don't stampede a recovering
	// endpoint. Default 250ms.
	BreakerCooldown time.Duration
	// Logf receives diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Client is a bespokv cluster client; safe for concurrent use.
type Client struct {
	cfg Config

	// coordMu guards the coordinator connection pointer, which refreshMap
	// replaces when the old connection has died (a client that never
	// re-dialed could not route around a failover that outlived its
	// original coordinator conn).
	coordMu sync.Mutex
	coord   *coordinator.Client

	mu   sync.RWMutex
	m    *topology.Map
	ring *topology.Ring

	poolsMu sync.Mutex
	pools   map[string]*datalet.Pool

	watchMu   sync.Mutex
	watchConn *coordinator.Client

	hot *hotTracker // nil unless HotKeyThreshold > 0

	// leaseUntil is the unix-nano instant through which the current map
	// may be trusted for direct datalet reads (math.MaxInt64 for static
	// maps, whose epoch never moves). Renewed by the watch loop's
	// LeaseMap long-polls.
	leaseUntil atomic.Int64
	leaseTTL   atomic.Int64 // last granted TTL (ns); paces watch long-polls

	// dpools are direct connections to datalets, keyed by addr+codec;
	// dpoolDown records per-address dial-failure cooldowns so a
	// collocated (in-process) datalet the client's network cannot reach
	// is not re-dialed on every read.
	dpoolsMu  sync.RWMutex
	dpools    map[string]*datalet.Pool
	dpoolDown map[string]time.Time

	hedge *hedgeState // nil unless HedgeAfter > 0

	// Overload discipline (see overload.go): the retry budget and breaker
	// set are nil when disabled (nil-safe to call); the sustained-overload
	// signal always exists.
	retryBudget *overload.RetryBudget
	breakers    *overload.BreakerSet
	overloadSig *overload.Signal

	refreshing sync.Mutex // serializes map refreshes

	stopCh  chan struct{}
	wg      sync.WaitGroup
	stopped bool
}

// New connects a client.
func New(cfg Config) (*Client, error) {
	if cfg.Network == nil || cfg.Codec == nil {
		return nil, errors.New("client: Network and Codec are required")
	}
	if (cfg.CoordinatorAddr == "") == (cfg.StaticMap == nil) {
		return nil, errors.New("client: exactly one of CoordinatorAddr and StaticMap is required")
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 8
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	if cfg.TimeoutRetries <= 0 {
		cfg.TimeoutRetries = 3
	}
	if cfg.HedgeBudgetPct <= 0 {
		cfg.HedgeBudgetPct = 10
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 8
	}
	if cfg.DataletNetwork == nil {
		cfg.DataletNetwork = cfg.Network
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	c := &Client{
		cfg:       cfg,
		pools:     map[string]*datalet.Pool{},
		dpools:    map[string]*datalet.Pool{},
		dpoolDown: map[string]time.Time{},
		stopCh:    make(chan struct{}),
	}
	if cfg.HotKeyThreshold > 0 {
		c.hot = newHotTracker(cfg.HotKeyThreshold)
	}
	if cfg.HedgeAfter > 0 {
		c.hedge = newHedgeState(cfg.HedgeAfter, cfg.HedgeBudgetPct)
	}
	c.retryBudget = overload.NewRetryBudget(cfg.RetryBudgetPct)
	c.breakers = overload.NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown)
	c.overloadSig = overload.NewSignal(overloadWindow, overloadMin)
	registerOverload(c)
	if cfg.StaticMap != nil {
		// A static map's epoch never moves; the lease is perpetual.
		c.leaseUntil.Store(math.MaxInt64)
		c.installMap(cfg.StaticMap)
		return c, nil
	}
	coordClient, err := coordinator.DialCoordinator(cfg.Network, cfg.CoordinatorAddr)
	if err != nil {
		return nil, err
	}
	if cfg.OpTimeout > 0 {
		coordClient.SetCallTimeout(cfg.OpTimeout)
	}
	c.coord = coordClient
	m, err := coordClient.GetMap()
	if err != nil {
		coordClient.Close()
		return nil, fmt.Errorf("client: fetch map: %w", err)
	}
	c.installMap(m)
	if cfg.DirectReads {
		// Seed the map lease now; the watch loop keeps it renewed.
		if lm, ttl, err := coordClient.LeaseMap(0, time.Second); err == nil && lm != nil {
			c.installMap(lm)
			c.extendLease(ttl)
		}
	}
	if !cfg.DisableWatch {
		c.wg.Add(1)
		go c.watchLoop()
	}
	return c, nil
}

// Close releases all connections.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stopCh)
	if c.hedge != nil {
		unregisterHedge(c.hedge)
	}
	unregisterOverload(c)
	c.coordMu.Lock()
	coord := c.coord
	c.coordMu.Unlock()
	if coord != nil {
		_ = coord.Close() // aborts an in-flight refresh call
	}
	c.watchMu.Lock()
	if c.watchConn != nil {
		_ = c.watchConn.Close() // abort any in-flight long-poll
	}
	c.watchMu.Unlock()
	c.wg.Wait()
	// A refresh racing Close may have re-dialed; wait for it under the
	// refreshing lock and close the replacement too.
	c.refreshing.Lock()
	c.coordMu.Lock()
	if c.coord != nil {
		_ = c.coord.Close()
		c.coord = nil
	}
	c.coordMu.Unlock()
	c.refreshing.Unlock()
	c.poolsMu.Lock()
	for _, p := range c.pools {
		_ = p.Close()
	}
	c.poolsMu.Unlock()
	c.dpoolsMu.Lock()
	for _, p := range c.dpools {
		_ = p.Close()
	}
	c.dpoolsMu.Unlock()
	return nil
}

// Map returns the client's current view of the cluster.
func (c *Client) Map() *topology.Map {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m
}

func (c *Client) installMap(m *topology.Map) {
	clone := m.Clone()
	ring := topology.BuildRing(clone)
	c.mu.Lock()
	advanced := c.m != nil && clone.Epoch > c.m.Epoch
	if c.m == nil || clone.Epoch >= c.m.Epoch {
		c.m = clone
		c.ring = ring
	}
	c.mu.Unlock()
	if advanced && c.hot != nil {
		// The map moved under us (failover, transition, migration
		// cutover): shadow copies written under the old map may now be
		// stale or on the wrong shard, so stop serving reads from them
		// until this client re-establishes each one with a fresh write.
		c.hot.invalidate()
	}
}

// extendLease pushes the direct-read trust window ttl past now; zero or
// negative grants are ignored (no lease). The granted TTL is remembered so
// the watch loop can pace its long-polls faster than the lease expires.
func (c *Client) extendLease(ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	c.leaseTTL.Store(int64(ttl))
	until := time.Now().Add(ttl).UnixNano()
	for {
		cur := c.leaseUntil.Load()
		if until <= cur || c.leaseUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// leaseLive reports whether the current map may still be trusted for
// coordinator-free direct reads.
func (c *Client) leaseLive() bool {
	return time.Now().UnixNano() < c.leaseUntil.Load()
}

// watchLoop keeps the map fresh with long-polls; transitions and failovers
// reach the client within one poll round trip. The watch connection is
// dedicated (long-polls never block foreground calls) and re-dialed when it
// dies — a client must be able to outlive any single coordinator conn.
func (c *Client) watchLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopCh:
			return
		default:
		}
		watch, err := coordinator.DialCoordinator(c.cfg.Network, c.cfg.CoordinatorAddr)
		if err != nil {
			select {
			case <-c.stopCh:
				return
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		c.watchMu.Lock()
		c.watchConn = watch // registered so Close aborts an in-flight poll
		c.watchMu.Unlock()
		c.watchOnce(watch)
		c.watchMu.Lock()
		if c.watchConn == watch {
			c.watchConn = nil
		}
		c.watchMu.Unlock()
		_ = watch.Close()
	}
}

// watchOnce long-polls on one connection until it looks dead (two
// consecutive failures) or the client stops.
func (c *Client) watchOnce(watch *coordinator.Client) {
	fails := 0
	for {
		select {
		case <-c.stopCh:
			return
		default:
		}
		cur := c.Map()
		since := uint64(0)
		if cur != nil {
			since = cur.Epoch
		}
		var m *topology.Map
		var err error
		if c.cfg.DirectReads {
			// Lease renewal rides the watch long-poll: every return —
			// even a timeout handing back the same map — re-arms the
			// direct-read trust window. The poll window stays under half
			// the granted TTL, or renewals on a quiet map (no epoch
			// changes waking the poll) would land after the lease had
			// already lapsed and direct reads would flap.
			poll := 2 * time.Second
			if ttl := time.Duration(c.leaseTTL.Load()); ttl > 0 && ttl/2 < poll {
				poll = ttl / 2
			}
			var ttl time.Duration
			m, ttl, err = watch.LeaseMap(since, poll)
			if err == nil {
				c.extendLease(ttl)
			}
		} else {
			m, err = watch.WatchMap(since, 2*time.Second)
		}
		if err != nil {
			if fails++; fails >= 2 {
				return // hand back for a re-dial
			}
			select {
			case <-c.stopCh:
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		fails = 0
		if m != nil {
			c.installMap(m)
		}
	}
}

// refreshMap synchronously re-fetches the map (used on routing failures),
// re-dialing the coordinator if the cached connection has died.
func (c *Client) refreshMap() {
	if c.cfg.CoordinatorAddr == "" {
		return
	}
	c.refreshing.Lock()
	defer c.refreshing.Unlock()
	c.coordMu.Lock()
	coord := c.coord
	c.coordMu.Unlock()
	if coord != nil {
		if m, err := coord.GetMap(); err == nil {
			c.installMap(m)
			return
		}
		// Broken conn or unreachable coordinator: drop it and re-dial.
		c.coordMu.Lock()
		if c.coord == coord {
			c.coord = nil
		}
		c.coordMu.Unlock()
		_ = coord.Close()
	}
	select {
	case <-c.stopCh:
		return // closing; don't re-dial (Close sweeps any straggler)
	default:
	}
	fresh, err := coordinator.DialCoordinator(c.cfg.Network, c.cfg.CoordinatorAddr)
	if err != nil {
		return
	}
	if c.cfg.OpTimeout > 0 {
		fresh.SetCallTimeout(c.cfg.OpTimeout)
	}
	c.coordMu.Lock()
	c.coord = fresh
	c.coordMu.Unlock()
	if m, err := fresh.GetMap(); err == nil {
		c.installMap(m)
	}
}

func (c *Client) pool(addr string) (*datalet.Pool, error) {
	c.poolsMu.Lock()
	defer c.poolsMu.Unlock()
	if p, ok := c.pools[addr]; ok {
		return p, nil
	}
	p, err := datalet.DialPool(c.cfg.Network, addr, c.cfg.Codec, c.cfg.PoolSize)
	if err != nil {
		return nil, err
	}
	if c.cfg.OpTimeout > 0 {
		p.SetCallTimeout(c.cfg.OpTimeout)
	}
	c.pools[addr] = p
	return p, nil
}

func (c *Client) dropPool(addr string) {
	c.poolsMu.Lock()
	if p, ok := c.pools[addr]; ok {
		delete(c.pools, addr)
		_ = p.Close()
	}
	c.poolsMu.Unlock()
}

// randInt draws from math/rand/v2's per-P sharded global source, so
// replica picks on the read hot path never serialize behind a mutex the
// way a shared *rand.Rand would (see BenchmarkRandIntParallel).
func (c *Client) randInt(n int) int {
	return rand.IntN(n)
}

// shardFor routes a key under the current map.
func (c *Client) shardFor(key []byte) (topology.Shard, *topology.Map, error) {
	c.mu.RLock()
	m, ring := c.m, c.ring
	c.mu.RUnlock()
	if m == nil || len(m.Shards) == 0 {
		return topology.Shard{}, nil, errors.New("client: no cluster map")
	}
	idx := m.ShardFor(key, ring)
	return m.Shards[idx], m, nil
}

// writeTarget picks the node that accepts writes for the shard.
func (c *Client) writeTarget(m *topology.Map, shard topology.Shard) topology.Node {
	if m.Mode.Topology == topology.AA && len(shard.Replicas) > 1 {
		return shard.Replicas[c.randInt(len(shard.Replicas))]
	}
	return shard.Head()
}

// readTarget picks the node to read from, honoring the consistency level.
func (c *Client) readTarget(m *topology.Map, shard topology.Shard, level wire.Level) topology.Node {
	if level == wire.LevelDefault {
		if m.Mode.Consistency == topology.Strong {
			level = wire.LevelStrong
		} else {
			level = wire.LevelEventual
		}
	}
	readable := shard.ReadReplicas() // recovering nodes don't serve reads
	switch {
	case level == wire.LevelEventual:
		return readable[c.randInt(len(readable))]
	case m.Mode.Topology == topology.AA:
		return readable[c.randInt(len(readable))]
	case m.Mode.Consistency == topology.Strong:
		return shard.ReadTail() // chain tail owns strong reads
	default:
		return shard.Head() // MS+EC strong-ish read from the master
	}
}

// do runs one request against addr with retry/redirect handling.
func (c *Client) do(addr string, req *wire.Request, resp *wire.Response) error {
	pool, err := c.pool(addr)
	if err != nil {
		return err
	}
	if err := pool.Do(req, resp); err != nil {
		c.dropPool(addr)
		return err
	}
	return nil
}

// maxRetryBackoff caps the doubling retry backoff.
const maxRetryBackoff = 100 * time.Millisecond

// isTimeout reports whether err is a call timeout — the signature of a
// blackholed (partitioned) peer, as opposed to a dead one.
func isTimeout(err error) bool {
	return errors.Is(err, datalet.ErrCallTimeout) || errors.Is(err, rpc.ErrCallTimeout)
}

// isRefused reports whether err is a connection refusal — the signature of
// a dead or not-yet-started listener (both the tcp and inproc transports
// phrase it this way).
func isRefused(err error) bool {
	return err != nil && strings.Contains(err.Error(), "connection refused")
}

// errOut is returned when the retry budget is exhausted.
type errOut struct {
	op   wire.Op
	last error
}

func (e errOut) Error() string {
	return fmt.Sprintf("client: %s failed after retries: %v", e.op, e.last)
}

func (e errOut) Unwrap() error { return e.last }

// execute retries an operation across redirects, stale epochs, transitions
// and failovers. route picks the target from the current map; it is
// re-evaluated after every refresh.
func (c *Client) execute(req *wire.Request, resp *wire.Response, route func() (string, uint64, error)) (err error) {
	// Head-based sampling starts here: a sampled request carries its trace
	// ID through every hop it touches (controlets, replicas, datalets, DLM,
	// shared log), and the client span brackets the whole operation
	// including retries.
	if req.TraceID == 0 {
		req.TraceID = trace.Sample()
	}
	timed := req.TraceID != 0 || metrics.SampleLatency()
	var start time.Time
	if timed {
		start = time.Now()
	}
	defer func() {
		// Every completed op — success or not — credits the retry budget,
		// so sustained retries converge to RetryBudgetPct% of op rate.
		c.retryBudget.Observe()
		if err != nil {
			clientErrors.Inc()
		}
		if !timed {
			countClientOp(req.Op)
			return
		}
		dur := time.Since(start)
		recordClientOp(req.Op, dur)
		if req.TraceID != 0 {
			errStr := ""
			if err != nil {
				errStr = err.Error()
			}
			trace.Record(req.TraceID, "client", "client."+req.Op.String(), start, dur, errStr)
		}
	}()
	var lastErr error
	backoff := c.cfg.RetryBackoff
	redirect := ""
	timeouts := 0
	var opDeadline time.Time
	if c.cfg.OpBudget > 0 {
		opDeadline = time.Now().Add(c.cfg.OpBudget)
	}
retry:
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		addr, epoch, err := route()
		if err != nil {
			return err
		}
		if redirect != "" {
			addr = redirect
			redirect = ""
		}
		req.Epoch = epoch
		if c.cfg.OpBudget > 0 {
			rem := time.Until(opDeadline)
			if rem <= 0 {
				clientBudgetExpired.Inc()
				lastErr = budgetErr(c.cfg.OpBudget, lastErr)
				break
			}
			// Stamp the remaining budget on the wire so every downstream
			// hop can drop this attempt the moment it becomes doomed.
			req.Deadline = uint64(rem)
		}
		err = c.doGuarded(addr, req, resp)
		if err == nil {
			switch resp.Status {
			case wire.StatusOK, wire.StatusNotFound, wire.StatusErr:
				if resp.Epoch > epoch {
					// The server hinted our map is stale; refresh in
					// the background for next time.
					go c.refreshMap()
				}
				return nil
			case wire.StatusRedirect:
				clientRedirects.Inc()
				redirect = resp.Err
				lastErr = fmt.Errorf("redirected to %s", resp.Err)
				continue // immediate: no backoff, no retry-budget spend
			}
		}
		switch classifyFailure(resp.Status, err) {
		case failOverloaded:
			// The server is alive and explicitly shedding; back off and
			// let the retry budget decide whether trying again is even
			// allowed. No map refresh trigger — routing is not the issue.
			clientOverloaded.Inc()
			c.noteOverloaded()
			lastErr = errors.New(resp.Err)
		case failUnavailable:
			if resp.Status == wire.StatusWrongEpoch {
				lastErr = errors.New("stale epoch")
			} else {
				lastErr = errors.New(resp.Err)
			}
		case failTransport:
			lastErr = err
			if isTimeout(err) {
				// A timeout burned a full OpTimeout and points at a
				// partition; cap how many one op may spend waiting out
				// a blackhole. Refusals keep the full budget — they are
				// cheap and usually mean a failover is replacing the
				// node we just tried.
				if timeouts++; timeouts >= c.cfg.TimeoutRetries {
					lastErr = fmt.Errorf("gave up after %d call timeouts (target partitioned?): %w", timeouts, err)
					break retry
				}
			} else if isRefused(err) {
				clientRefused.Inc()
			}
		default:
			lastErr = fmt.Errorf("unexpected status %s", resp.Status)
		}
		if attempt == c.cfg.Retries-1 {
			break // out of budget: fail now, don't pay refresh+backoff
		}
		if !c.retryBudget.Allow() {
			// Retrying now would amplify load past the configured bound;
			// fail the op instead of feeding the spiral.
			clientRetryDenied.Inc()
			lastErr = fmt.Errorf("retry budget exhausted: %w", lastErr)
			break
		}
		clientRetries.Inc()
		c.refreshMap()
		// Jittered sleep in [backoff/2, backoff): a fleet of clients all
		// kicked by the same epoch bump (cutover, failover) would
		// otherwise retry in lockstep against the coordinator and the new
		// owner. The doubling still bounds how hot a flapping epoch can
		// spin any single client.
		sleep := backoff/2 + time.Duration(c.randInt(int(backoff/2)+1))
		if c.cfg.OpBudget > 0 && time.Until(opDeadline) <= sleep {
			// The backoff would outlive the op budget; fail now rather
			// than sleep past the client's own deadline.
			clientBudgetExpired.Inc()
			lastErr = budgetErr(c.cfg.OpBudget, lastErr)
			break
		}
		select {
		case <-c.stopCh:
			return errOut{op: req.Op, last: lastErr}
		case <-time.After(sleep):
		}
		if backoff < maxRetryBackoff {
			backoff *= 2
		}
	}
	return errOut{op: req.Op, last: lastErr}
}

// routeWrite returns a route function targeting key's write node.
func (c *Client) routeWrite(key []byte) func() (string, uint64, error) {
	return func() (string, uint64, error) {
		shard, m, err := c.shardFor(key)
		if err != nil {
			return "", 0, err
		}
		return c.writeTarget(m, shard).ControletAddr, m.Epoch, nil
	}
}

// Put writes key=value in table (""= default table).
func (c *Client) Put(table string, key, value []byte) error {
	req := wire.Request{Op: wire.OpPut, Table: table, Key: key, Value: value}
	var resp wire.Response
	err := c.execute(&req, &resp, c.routeWrite(key))
	if err != nil {
		return err
	}
	if c.hot != nil && c.hot.touch(key) {
		c.hotPut(table, key, value)
	}
	return resp.ErrValue()
}

// Get reads key from table at the mode's default consistency.
func (c *Client) Get(table string, key []byte) ([]byte, bool, error) {
	return c.GetLevel(table, key, wire.LevelDefault)
}

// GetLevel reads with an explicit per-request consistency level (§IV-C).
func (c *Client) GetLevel(table string, key []byte, level wire.Level) ([]byte, bool, error) {
	// Hot keys spread eventual reads over the shadow shard too. Strong
	// reads always use the primary (shadow copies are asynchronous), and
	// only shadows this client has re-written since the last map change
	// are trusted (see hotTracker.invalidate).
	if c.hot != nil && level != wire.LevelStrong {
		m := c.Map()
		eventualByDefault := m != nil && m.Mode.Consistency == topology.Eventual
		if (level == wire.LevelEventual || eventualByDefault) && c.hot.touch(key) && c.hot.isFresh(key) && c.randInt(2) == 0 {
			if v, ok := c.hotGet(table, key); ok {
				return v, true, nil
			}
		}
	}
	// Wire-speed path: an SC-safe read under a live map lease goes
	// straight to the owning datalet, zero controlet/coordinator hops.
	if v, found, ok := c.directGet(table, key, level); ok {
		return v, found, nil
	}
	req := wire.Request{Op: wire.OpGet, Table: table, Key: key, Level: level}
	var resp wire.Response
	if v, found, ok := c.hedgedControletGet(&req, level); ok {
		return v, found, nil
	}
	err := c.execute(&req, &resp, func() (string, uint64, error) {
		shard, m, err := c.shardFor(key)
		if err != nil {
			return "", 0, err
		}
		return c.readTarget(m, shard, level).ControletAddr, m.Epoch, nil
	})
	if err != nil {
		return nil, false, err
	}
	if resp.Status == wire.StatusNotFound {
		return nil, false, nil
	}
	if err := resp.ErrValue(); err != nil {
		return nil, false, err
	}
	return append([]byte(nil), resp.Value...), true, nil
}

// Del deletes key from table; found reports whether it existed.
func (c *Client) Del(table string, key []byte) (bool, error) {
	req := wire.Request{Op: wire.OpDel, Table: table, Key: key}
	var resp wire.Response
	err := c.execute(&req, &resp, c.routeWrite(key))
	if err != nil {
		return false, err
	}
	if c.hot != nil && c.hot.hot(key) {
		c.hotDel(table, key)
	}
	if resp.Status == wire.StatusNotFound {
		return false, nil
	}
	return true, resp.ErrValue()
}

// GetRange returns live pairs with start <= key < end across all owning
// shards, merged in key order, up to limit (§IV-B).
func (c *Client) GetRange(table string, start, end []byte, limit int) ([]wire.KV, error) {
	c.mu.RLock()
	m := c.m
	c.mu.RUnlock()
	if m == nil {
		return nil, errors.New("client: no cluster map")
	}
	var merged []wire.KV
	for _, si := range m.ShardsForRange(start, end) {
		shard := m.Shards[si]
		req := wire.Request{
			Op:     wire.OpScan,
			Table:  table,
			Key:    start,
			EndKey: end,
			Limit:  uint32(limit),
		}
		var resp wire.Response
		err := c.execute(&req, &resp, func() (string, uint64, error) {
			return c.readTarget(m, shard, wire.LevelDefault).ControletAddr, m.Epoch, nil
		})
		if err != nil {
			return nil, err
		}
		if err := resp.ErrValue(); err != nil {
			return nil, err
		}
		for _, kv := range resp.Pairs {
			if isShadowKey(kv.Key) {
				continue // hot-key shadow copies are invisible to scans
			}
			merged = append(merged, wire.KV{
				Key:     append([]byte(nil), kv.Key...),
				Value:   append([]byte(nil), kv.Value...),
				Version: kv.Version,
			})
		}
	}
	sort.Slice(merged, func(i, j int) bool { return bytes.Compare(merged[i].Key, merged[j].Key) < 0 })
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged, nil
}

// CreateTable creates table on every shard.
func (c *Client) CreateTable(table string) error {
	return c.tableOp(wire.OpCreateTable, table)
}

// DeleteTable drops table on every shard.
func (c *Client) DeleteTable(table string) error {
	return c.tableOp(wire.OpDeleteTable, table)
}

func (c *Client) tableOp(op wire.Op, table string) error {
	c.mu.RLock()
	m := c.m
	c.mu.RUnlock()
	if m == nil {
		return errors.New("client: no cluster map")
	}
	for _, shard := range m.Shards {
		shard := shard
		req := wire.Request{Op: op, Table: table}
		var resp wire.Response
		err := c.execute(&req, &resp, func() (string, uint64, error) {
			return c.writeTarget(m, shard).ControletAddr, m.Epoch, nil
		})
		if err != nil {
			return err
		}
		if resp.Status == wire.StatusErr {
			return resp.ErrValue()
		}
	}
	return nil
}
