package client

import (
	"errors"
	"fmt"
	"time"

	"bespokv/internal/wire"
)

// Client-side overload discipline (see internal/overload for the shared
// primitives). Three rules keep a client from feeding congestion collapse:
//
//  1. Retries are budgeted: sustained retry traffic is capped at
//     RetryBudgetPct% of primary traffic, so a drowning cluster sees a
//     bounded amplification factor instead of an open feedback loop.
//  2. Endpoints that stop *talking* (transport failures, not error
//     statuses) get a circuit breaker: after BreakerThreshold consecutive
//     failures the client fast-fails locally and probes the endpoint with
//     jittered half-open singles instead of hammering it.
//  3. Every attempt carries the op's remaining time budget on the wire,
//     so downstream hops can drop work this client has stopped waiting
//     for — the overload analogue of the trace header.

// failureKind is the three-way split of a failed attempt. Each kind gets
// different medicine, and conflating them is how retry storms start:
// treating Overloaded like Unavailable adds a map refresh to every shed,
// and treating it like a transport failure trips breakers on endpoints
// that are alive and explicitly asking for backoff.
type failureKind int

const (
	// failOther: an unrecognized status; retried generically.
	failOther failureKind = iota
	// failOverloaded: the server shed the request (admission control or an
	// expired deadline) and is alive. Retryable, but only with backoff and
	// only inside the retry budget; never breaker food, never a map
	// refresh trigger by itself.
	failOverloaded
	// failUnavailable: fencing, lease loss, or a stale epoch — the
	// failover-in-progress signatures. The cure is a map refresh and a
	// retry against whatever the new map says.
	failUnavailable
	// failTransport: the endpoint did not answer at all (dial error, call
	// timeout, breaker fast-fail). Counts toward the endpoint's breaker
	// and, for timeouts, toward the TimeoutRetries cap.
	failTransport
)

// classifyFailure buckets one failed attempt. A transport error outranks
// any status — resp may hold a stale status from a previous attempt when
// the exchange itself failed.
func classifyFailure(status wire.Status, err error) failureKind {
	if err != nil {
		return failTransport
	}
	switch status {
	case wire.StatusOverloaded:
		return failOverloaded
	case wire.StatusUnavailable, wire.StatusWrongEpoch:
		return failUnavailable
	default:
		return failOther
	}
}

// errBreakerOpen is the fast-fail for a tripped endpoint breaker.
var errBreakerOpen = errors.New("client: circuit open")

// The sustained-overload signal: overloadMin Overloaded pushbacks inside
// overloadWindow flips the client into degraded mode (hedging suppressed).
// One stray shed does not; a steady stream does.
const (
	overloadWindow = time.Second
	overloadMin    = 8
)

// doGuarded is do behind the endpoint's circuit breaker. Only transport
// failures feed the breaker — any decoded response, even an error status,
// proves the endpoint is alive and closes it.
func (c *Client) doGuarded(addr string, req *wire.Request, resp *wire.Response) error {
	br := c.breakers.For(addr)
	if !br.Allow(time.Now()) {
		clientBreakerDenied.Inc()
		return fmt.Errorf("%w: %s", errBreakerOpen, addr)
	}
	err := c.do(addr, req, resp)
	if err != nil {
		br.Failure(time.Now())
	} else {
		br.Success()
	}
	return err
}

// noteOverloaded records one server pushback toward the sustained signal.
func (c *Client) noteOverloaded() {
	c.overloadSig.Note(time.Now())
}

// degraded reports sustained overload pushback. While it holds, hedging
// is suppressed: a hedge is extra load exactly when the cluster can least
// afford it, and under overload the tail is queueing delay that a second
// replica is suffering too.
func (c *Client) degraded() bool {
	return c.overloadSig.Active(time.Now())
}

// budgetErr wraps the last attempt's error in an op-budget failure.
func budgetErr(budget time.Duration, last error) error {
	if last == nil {
		return fmt.Errorf("op budget %v exhausted", budget)
	}
	return fmt.Errorf("op budget %v exhausted: %w", budget, last)
}
