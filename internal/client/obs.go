package client

import (
	"sync"
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/wire"
)

// Client-side op metrics, pre-resolved per op so execute's hot path never
// takes a registry lookup (see the contract in internal/metrics).
var (
	clientOpCount [wire.OpMax + 1]*metrics.Counter
	clientOpLat   [wire.OpMax + 1]*metrics.Histogram

	clientRetries   = metrics.Default.Counter("bespokv_client_retries_total")
	clientRedirects = metrics.Default.Counter("bespokv_client_redirects_total")
	clientErrors    = metrics.Default.Counter("bespokv_client_errors_total")
	clientRefused   = metrics.Default.Counter("bespokv_client_refused_total")

	// Wire-speed read path: reads served straight from a datalet under a
	// live map lease, and reads that had to fall back to the controlet
	// path (unreachable datalet, stale epoch, expired lease).
	clientDirectReads     = metrics.Default.Counter("bespokv_client_direct_reads_total")
	clientDirectFallbacks = metrics.Default.Counter("bespokv_client_direct_fallbacks_total")

	// Hedging: second legs fired, and races the hedge leg won.
	clientHedgedReads = metrics.Default.Counter("bespokv_client_hedged_reads_total")
	clientHedgeWins   = metrics.Default.Counter("bespokv_client_hedge_wins_total")

	// Overload discipline: Overloaded pushback received, breaker
	// fast-fails, retries denied by the budget, ops that ran out their
	// end-to-end time budget, and hedges suppressed while degraded.
	clientOverloaded      = metrics.Default.Counter("bespokv_client_overloaded_total")
	clientBreakerDenied   = metrics.Default.Counter("bespokv_client_breaker_denied_total")
	clientRetryDenied     = metrics.Default.Counter("bespokv_client_retry_budget_denied_total")
	clientBudgetExpired   = metrics.Default.Counter("bespokv_client_op_budget_expired_total")
	clientHedgeSuppressed = metrics.Default.Counter("bespokv_client_hedge_suppressed_total")
)

func init() {
	for op := wire.OpNop; op <= wire.OpMax; op++ {
		clientOpCount[op] = metrics.Default.Counter("bespokv_client_ops_total", "op", op.String())
		clientOpLat[op] = metrics.Default.Histogram("bespokv_client_op_seconds", "op", op.String())
	}
}

// Live hedge-state registry backing the hedging gauges: the p99 estimate
// and token budget live in each client's hedgeState, so the gauges walk
// the set at scrape time instead of charging reads for scrape-only
// numbers (same tactic as the datalet's pipelined-client gauges).
var (
	hedgeMu  sync.Mutex
	hedgeSet = map[*hedgeState]struct{}{}
)

func registerHedge(h *hedgeState) {
	hedgeMu.Lock()
	hedgeSet[h] = struct{}{}
	hedgeMu.Unlock()
}

func unregisterHedge(h *hedgeState) {
	hedgeMu.Lock()
	delete(hedgeSet, h)
	hedgeMu.Unlock()
}

func init() {
	// The hedge delay IS the observed read p99 (floored at HedgeAfter);
	// across clients the max is the honest merge — hedging is tail-driven.
	metrics.Default.GaugeFunc("bespokv_client_hedge_p99_seconds", func() float64 {
		hedgeMu.Lock()
		defer hedgeMu.Unlock()
		var worst int64
		for h := range hedgeSet {
			if v := h.p99.Load(); v > worst {
				worst = v
			}
		}
		return time.Duration(worst).Seconds()
	})
	// Banked hedges immediately affordable across live clients (tokens
	// are hedgeTokenScale per hedge).
	metrics.Default.GaugeFunc("bespokv_client_hedge_tokens", func() float64 {
		hedgeMu.Lock()
		defer hedgeMu.Unlock()
		var t int64
		for h := range hedgeSet {
			t += h.tokens.Load()
		}
		return float64(t) / hedgeTokenScale
	})
	// Fraction of the total token budget still unspent (1 = idle, 0 =
	// every client exhausted — reads are uniformly slow, not one straggler).
	metrics.Default.GaugeFunc("bespokv_client_hedge_budget_frac", func() float64 {
		hedgeMu.Lock()
		defer hedgeMu.Unlock()
		if len(hedgeSet) == 0 {
			return 1
		}
		var t int64
		for h := range hedgeSet {
			t += h.tokens.Load()
		}
		return float64(t) / float64(int64(len(hedgeSet))*hedgeTokenCap)
	})
}

// Live-client registry backing the overload gauges (breaker positions and
// banked retry tokens live per client; gauges merge at scrape time — the
// same tactic as the hedge-state registry above).
var (
	ovMu      sync.Mutex
	ovClients = map[*Client]struct{}{}
)

func registerOverload(c *Client) {
	ovMu.Lock()
	ovClients[c] = struct{}{}
	ovMu.Unlock()
}

func unregisterOverload(c *Client) {
	ovMu.Lock()
	delete(ovClients, c)
	ovMu.Unlock()
}

func init() {
	// Breaker positions across every live client's endpoint set. A
	// nonzero open count is the "stop hammering it" tell; half-open shows
	// probes in flight against recovering endpoints.
	breakerGauge := func(pick func(closed, open, half int) int) func() float64 {
		return func() float64 {
			ovMu.Lock()
			defer ovMu.Unlock()
			var n int
			for c := range ovClients {
				n += pick(c.breakers.States())
			}
			return float64(n)
		}
	}
	metrics.Default.GaugeFunc("bespokv_client_breaker_closed", breakerGauge(func(closed, _, _ int) int { return closed }))
	metrics.Default.GaugeFunc("bespokv_client_breaker_open", breakerGauge(func(_, open, _ int) int { return open }))
	metrics.Default.GaugeFunc("bespokv_client_breaker_half_open", breakerGauge(func(_, _, half int) int { return half }))
	// Banked retries still affordable across live clients (0 with budgets
	// disabled, or every client pinned at empty — retrying at the cap).
	metrics.Default.GaugeFunc("bespokv_client_retry_budget_tokens", func() float64 {
		ovMu.Lock()
		defer ovMu.Unlock()
		var t float64
		for c := range ovClients {
			t += c.retryBudget.Tokens()
		}
		return t
	})
}

func clampClientOp(op wire.Op) wire.Op {
	if op > wire.OpMax {
		return wire.OpNop
	}
	return op
}

// countClientOp is the unsampled path: op accounting without the clock.
func countClientOp(op wire.Op) { clientOpCount[clampClientOp(op)].Inc() }

func recordClientOp(op wire.Op, d time.Duration) {
	op = clampClientOp(op)
	clientOpCount[op].Inc()
	clientOpLat[op].Observe(d)
}
