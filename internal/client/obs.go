package client

import (
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/wire"
)

// Client-side op metrics, pre-resolved per op so execute's hot path never
// takes a registry lookup (see the contract in internal/metrics).
var (
	clientOpCount [wire.OpMax + 1]*metrics.Counter
	clientOpLat   [wire.OpMax + 1]*metrics.Histogram

	clientRetries   = metrics.Default.Counter("bespokv_client_retries_total")
	clientRedirects = metrics.Default.Counter("bespokv_client_redirects_total")
	clientErrors    = metrics.Default.Counter("bespokv_client_errors_total")
	clientRefused   = metrics.Default.Counter("bespokv_client_refused_total")

	// Wire-speed read path: reads served straight from a datalet under a
	// live map lease, and reads that had to fall back to the controlet
	// path (unreachable datalet, stale epoch, expired lease).
	clientDirectReads     = metrics.Default.Counter("bespokv_client_direct_reads_total")
	clientDirectFallbacks = metrics.Default.Counter("bespokv_client_direct_fallbacks_total")

	// Hedging: second legs fired, and races the hedge leg won.
	clientHedgedReads = metrics.Default.Counter("bespokv_client_hedged_reads_total")
	clientHedgeWins   = metrics.Default.Counter("bespokv_client_hedge_wins_total")
)

func init() {
	for op := wire.OpNop; op <= wire.OpMax; op++ {
		clientOpCount[op] = metrics.Default.Counter("bespokv_client_ops_total", "op", op.String())
		clientOpLat[op] = metrics.Default.Histogram("bespokv_client_op_seconds", "op", op.String())
	}
}

func clampClientOp(op wire.Op) wire.Op {
	if op > wire.OpMax {
		return wire.OpNop
	}
	return op
}

// countClientOp is the unsampled path: op accounting without the clock.
func countClientOp(op wire.Op) { clientOpCount[clampClientOp(op)].Inc() }

func recordClientOp(op wire.Op, d time.Duration) {
	op = clampClientOp(op)
	clientOpCount[op].Inc()
	clientOpLat[op].Observe(d)
}
