package client

import (
	"sync"
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/wire"
)

// Client-side op metrics, pre-resolved per op so execute's hot path never
// takes a registry lookup (see the contract in internal/metrics).
var (
	clientOpCount [wire.OpMax + 1]*metrics.Counter
	clientOpLat   [wire.OpMax + 1]*metrics.Histogram

	clientRetries   = metrics.Default.Counter("bespokv_client_retries_total")
	clientRedirects = metrics.Default.Counter("bespokv_client_redirects_total")
	clientErrors    = metrics.Default.Counter("bespokv_client_errors_total")
	clientRefused   = metrics.Default.Counter("bespokv_client_refused_total")

	// Wire-speed read path: reads served straight from a datalet under a
	// live map lease, and reads that had to fall back to the controlet
	// path (unreachable datalet, stale epoch, expired lease).
	clientDirectReads     = metrics.Default.Counter("bespokv_client_direct_reads_total")
	clientDirectFallbacks = metrics.Default.Counter("bespokv_client_direct_fallbacks_total")

	// Hedging: second legs fired, and races the hedge leg won.
	clientHedgedReads = metrics.Default.Counter("bespokv_client_hedged_reads_total")
	clientHedgeWins   = metrics.Default.Counter("bespokv_client_hedge_wins_total")
)

func init() {
	for op := wire.OpNop; op <= wire.OpMax; op++ {
		clientOpCount[op] = metrics.Default.Counter("bespokv_client_ops_total", "op", op.String())
		clientOpLat[op] = metrics.Default.Histogram("bespokv_client_op_seconds", "op", op.String())
	}
}

// Live hedge-state registry backing the hedging gauges: the p99 estimate
// and token budget live in each client's hedgeState, so the gauges walk
// the set at scrape time instead of charging reads for scrape-only
// numbers (same tactic as the datalet's pipelined-client gauges).
var (
	hedgeMu  sync.Mutex
	hedgeSet = map[*hedgeState]struct{}{}
)

func registerHedge(h *hedgeState) {
	hedgeMu.Lock()
	hedgeSet[h] = struct{}{}
	hedgeMu.Unlock()
}

func unregisterHedge(h *hedgeState) {
	hedgeMu.Lock()
	delete(hedgeSet, h)
	hedgeMu.Unlock()
}

func init() {
	// The hedge delay IS the observed read p99 (floored at HedgeAfter);
	// across clients the max is the honest merge — hedging is tail-driven.
	metrics.Default.GaugeFunc("bespokv_client_hedge_p99_seconds", func() float64 {
		hedgeMu.Lock()
		defer hedgeMu.Unlock()
		var worst int64
		for h := range hedgeSet {
			if v := h.p99.Load(); v > worst {
				worst = v
			}
		}
		return time.Duration(worst).Seconds()
	})
	// Banked hedges immediately affordable across live clients (tokens
	// are hedgeTokenScale per hedge).
	metrics.Default.GaugeFunc("bespokv_client_hedge_tokens", func() float64 {
		hedgeMu.Lock()
		defer hedgeMu.Unlock()
		var t int64
		for h := range hedgeSet {
			t += h.tokens.Load()
		}
		return float64(t) / hedgeTokenScale
	})
	// Fraction of the total token budget still unspent (1 = idle, 0 =
	// every client exhausted — reads are uniformly slow, not one straggler).
	metrics.Default.GaugeFunc("bespokv_client_hedge_budget_frac", func() float64 {
		hedgeMu.Lock()
		defer hedgeMu.Unlock()
		if len(hedgeSet) == 0 {
			return 1
		}
		var t int64
		for h := range hedgeSet {
			t += h.tokens.Load()
		}
		return float64(t) / float64(int64(len(hedgeSet))*hedgeTokenCap)
	})
}

func clampClientOp(op wire.Op) wire.Op {
	if op > wire.OpMax {
		return wire.OpNop
	}
	return op
}

// countClientOp is the unsampled path: op accounting without the clock.
func countClientOp(op wire.Op) { clientOpCount[clampClientOp(op)].Inc() }

func recordClientOp(op wire.Op, d time.Duration) {
	op = clampClientOp(op)
	clientOpCount[op].Inc()
	clientOpLat[op].Observe(d)
}
