package client

import (
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/wire"
)

// Client-side op metrics, pre-resolved per op so execute's hot path never
// takes a registry lookup (see the contract in internal/metrics).
var (
	clientOpCount [wire.OpHandoff + 1]*metrics.Counter
	clientOpLat   [wire.OpHandoff + 1]*metrics.Histogram

	clientRetries   = metrics.Default.Counter("bespokv_client_retries_total")
	clientRedirects = metrics.Default.Counter("bespokv_client_redirects_total")
	clientErrors    = metrics.Default.Counter("bespokv_client_errors_total")
	clientRefused   = metrics.Default.Counter("bespokv_client_refused_total")
)

func init() {
	for op := wire.OpNop; op <= wire.OpHandoff; op++ {
		clientOpCount[op] = metrics.Default.Counter("bespokv_client_ops_total", "op", op.String())
		clientOpLat[op] = metrics.Default.Histogram("bespokv_client_op_seconds", "op", op.String())
	}
}

func clampClientOp(op wire.Op) wire.Op {
	if op > wire.OpHandoff {
		return wire.OpNop
	}
	return op
}

// countClientOp is the unsampled path: op accounting without the clock.
func countClientOp(op wire.Op) { clientOpCount[clampClientOp(op)].Inc() }

func recordClientOp(op wire.Op, d time.Duration) {
	op = clampClientOp(op)
	clientOpCount[op].Inc()
	clientOpLat[op].Observe(d)
}
