package sharedlog

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/rsm"
	"bespokv/internal/store/wal"
	"bespokv/internal/transport"
)

var logAddrSeq atomic.Uint64

// logGroup is a replicated shared-log test harness: n members over
// inproc, each with its own MemFS-backed replicated log.
type logGroup struct {
	t     *testing.T
	net   transport.Network
	ids   []string
	peers map[string]string
	fss   map[string]*wal.MemFS
	srvs  map[string]*Server
}

func newLogGroup(t *testing.T, n int) *logGroup {
	t.Helper()
	net, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	seq := logAddrSeq.Add(1)
	g := &logGroup{
		t:     t,
		net:   net,
		peers: map[string]string{},
		fss:   map[string]*wal.MemFS{},
		srvs:  map[string]*Server{},
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("seq-%d", i)
		g.ids = append(g.ids, id)
		g.peers[id] = fmt.Sprintf("logrep-%d-%d", seq, i)
		g.fss[id] = wal.NewMemFS()
	}
	for _, id := range g.ids {
		g.start(id)
	}
	t.Cleanup(func() {
		for _, s := range g.srvs {
			s.Close()
		}
	})
	return g
}

func (g *logGroup) start(id string) {
	g.t.Helper()
	s, err := Serve(Config{
		Network: g.net,
		Addr:    g.peers[id],
		Replication: &rsm.GroupConfig{
			ID:              id,
			Peers:           g.peers,
			Dir:             "seq",
			FS:              g.fss[id],
			ElectionTimeout: 60 * time.Millisecond,
		},
		Logf: g.t.Logf,
	})
	if err != nil {
		g.t.Fatalf("start %s: %v", id, err)
	}
	g.srvs[id] = s
}

func (g *logGroup) stop(id string) {
	g.t.Helper()
	if s := g.srvs[id]; s != nil {
		s.Close()
		delete(g.srvs, id)
	}
}

func (g *logGroup) waitLeader() string {
	g.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for id, s := range g.srvs {
			if s.IsLeader() {
				return id
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.t.Fatal("no sequencer leader elected")
	return ""
}

func (g *logGroup) client() *Client {
	g.t.Helper()
	var addrs []string
	for _, id := range g.ids {
		addrs = append(addrs, g.peers[id])
	}
	c, err := DialClient(g.net, strings.Join(addrs, ","))
	if err != nil {
		g.t.Fatal(err)
	}
	g.t.Cleanup(func() { c.Close() })
	return c
}

// appendRetry keeps appending through leadership churn until a leader
// sequences the batch.
func appendRetry(t *testing.T, c *Client, entries ...[]byte) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		first, err := c.Append(entries...)
		if err == nil {
			return first
		}
		if time.Now().After(deadline) {
			t.Fatalf("append never sequenced: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicatedSequencer proves offsets are assigned by the replicated
// counter and the ordered entries land on every member.
func TestReplicatedSequencer(t *testing.T) {
	g := newLogGroup(t, 3)
	g.waitLeader()
	c := g.client()
	if first := appendRetry(t, c, []byte("a"), []byte("b")); first != 0 {
		t.Fatalf("first offset = %d, want 0", first)
	}
	if first := appendRetry(t, c, []byte("c")); first != 2 {
		t.Fatalf("second batch offset = %d, want 2", first)
	}
	// Every member — including followers — serves the replicated entries
	// (followers lag only by apply, so poll briefly).
	for _, id := range g.ids {
		mc, err := DialClient(g.net, g.peers[id])
		if err != nil {
			t.Fatalf("dial %s: %v", id, err)
		}
		var entries []Entry
		var next uint64
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if entries, next, err = mc.Read(0, 16, 200*time.Millisecond); err != nil {
				break
			}
			if next == 3 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		mc.Close()
		if err != nil {
			t.Fatalf("read on %s: %v", id, err)
		}
		if next != 3 || len(entries) != 3 || string(entries[2].Data) != "c" {
			t.Fatalf("%s serves %d entries next=%d", id, len(entries), next)
		}
	}
}

// TestSequencerLeaderKill kills the sequencer leader mid-stream: the
// counter continues exactly where it left off (no reused or skipped acked
// offsets) and every acked entry survives — zero acked-write loss.
func TestSequencerLeaderKill(t *testing.T) {
	g := newLogGroup(t, 3)
	lead := g.waitLeader()
	c := g.client()
	var acked []string
	for i := 0; i < 5; i++ {
		payload := fmt.Sprintf("pre-%d", i)
		if first := appendRetry(t, c, []byte(payload)); first != uint64(i) {
			t.Fatalf("offset %d assigned for append %d", first, i)
		}
		acked = append(acked, payload)
	}

	g.stop(lead)
	if next := g.waitLeader(); next == lead {
		t.Fatalf("dead member %s still leads", lead)
	}

	// The client rotates onto the new leader; the counter resumes at 5.
	first := appendRetry(t, c, []byte("post-0"))
	if first != 5 {
		t.Fatalf("post-failover offset = %d, want 5 (counter lost or double-assigned)", first)
	}
	acked = append(acked, "post-0")

	entries, next, err := c.Read(0, 64, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if int(next) != len(acked) || len(entries) != len(acked) {
		t.Fatalf("history has %d entries next=%d, want %d", len(entries), next, len(acked))
	}
	for i, e := range entries {
		if string(e.Data) != acked[i] || e.Offset != uint64(i) {
			t.Fatalf("entry %d = %q@%d, want %q@%d", i, e.Data, e.Offset, acked[i], i)
		}
	}
}

// TestSequencerFollowerRedirect pins the redirect contract: followers
// refuse appends with NotLeader, and a client dialed at a single follower
// still appends via the hint.
func TestSequencerFollowerRedirect(t *testing.T) {
	g := newLogGroup(t, 3)
	lead := g.waitLeader()
	for _, id := range g.ids {
		if id == lead {
			continue
		}
		if err := g.srvs[id].leaderCheck(); err == nil {
			t.Fatalf("follower %s would sequence appends", id)
		} else if !rsm.IsNotLeader(err) {
			t.Fatalf("follower %s returns %v, want NotLeader", id, err)
		}
		c, err := DialClient(g.net, g.peers[id])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Append([]byte("via-" + id)); err != nil {
			t.Fatalf("append via follower %s: %v", id, err)
		}
		c.Close()
	}
}

// TestSequencerRestartRecovers restarts every member from its durable log:
// the counter and entries must come back without any re-append.
func TestSequencerRestartRecovers(t *testing.T) {
	g := newLogGroup(t, 3)
	g.waitLeader()
	c := g.client()
	st := c.Stream("shard-7")
	appendRetry(t, st, []byte("x"), []byte("y"))
	for _, id := range g.ids {
		g.stop(id)
	}
	for _, id := range g.ids {
		g.start(id)
	}
	g.waitLeader()
	if first := appendRetry(t, st, []byte("z")); first != 2 {
		t.Fatalf("post-restart offset = %d, want 2", first)
	}
	entries, next, err := st.Read(0, 16, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if next != 3 || len(entries) != 3 {
		t.Fatalf("restart lost entries: %d next=%d", len(entries), next)
	}
}
