// Package sharedlog is a totally ordered append-only log service — the
// reproduction's stand-in for the paper's ZLog/CORFU shared log. The AA+EC
// controlet appends every write here first, and all replicas apply entries
// in log order, which is how bespoKV resolves concurrent multi-master
// writes that Dynomite cannot (§C of the paper).
//
// The design keeps CORFU's split between a sequencer (offset assignment)
// and storage (segmented entry store), collapsed into one process; readers
// long-poll so propagation latency is one RPC, not a poll interval.
package sharedlog

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/rpc"
	"bespokv/internal/rsm"
	"bespokv/internal/transport"
)

// Append/read traffic counters; the tail gauge lets dashboards derive
// replication lag as tail minus each controlet's applied offset.
var (
	logAppends       = metrics.Default.Counter("bespokv_sharedlog_appends_total")
	logEntriesTotal  = metrics.Default.Counter("bespokv_sharedlog_entries_total")
	logReads         = metrics.Default.Counter("bespokv_sharedlog_reads_total")
	logEntriesServed = metrics.Default.Counter("bespokv_sharedlog_entries_served_total")
	logTail          = metrics.Default.Gauge("bespokv_sharedlog_tail")
)

// Entry is one ordered log record.
type Entry struct {
	// Offset is the global sequence number.
	Offset uint64 `json:"o"`
	// Data is the opaque payload ([]byte marshals as base64 in JSON).
	Data []byte `json:"d"`
}

// Config configures a log server.
type Config struct {
	Network transport.Network
	Addr    string
	// SegmentEntries is the per-segment capacity before a new segment
	// starts (default 4096); Trim drops whole segments.
	SegmentEntries int
	// Replication, when set, replicates the sequencer counters and the
	// entries they order on a replicated state machine: appends and trims
	// commit through the leader (followers redirect with NotLeader),
	// reads and long-polls serve anywhere from locally applied state.
	Replication *rsm.GroupConfig
	Logf        func(format string, args ...any)
}

type segment struct {
	base    uint64
	entries []Entry
}

// logState is one independent stream's segments and sequencer. Streams
// are CORFU-style: one server multiplexes many totally ordered logs (the
// controlets use one stream per shard), which is the paper's noted path
// for scaling the shared log with the cluster.
type logState struct {
	segs    []*segment
	next    uint64 // sequencer: next offset to assign
	trimmed uint64 // offsets below this are gone
	tailCh  chan struct{}
}

// Server is a running shared log.
type Server struct {
	cfg  Config
	rpc  *rpc.Server
	addr string
	node *rsm.Node // nil in standalone mode

	mu      sync.Mutex
	streams map[string]*logState
	stopCh  chan struct{}
	stopped bool
}

// AppendArgs appends a batch atomically (contiguous offsets).
type AppendArgs struct {
	// Stream selects an independent log ("" is the default stream).
	Stream  string   `json:"stream,omitempty"`
	Entries [][]byte `json:"entries"`
}

// AppendReply returns the offset of the first appended entry.
type AppendReply struct {
	First uint64 `json:"first"`
	Next  uint64 `json:"next"`
}

// ReadArgs fetches entries at offsets >= From, up to Max, long-polling up
// to WaitMs when the log has nothing newer.
type ReadArgs struct {
	Stream string `json:"stream,omitempty"`
	From   uint64 `json:"from"`
	Max    int    `json:"max,omitempty"`
	WaitMs int    `json:"wait_ms,omitempty"`
}

// ReadReply carries the entries and the next offset to read from.
type ReadReply struct {
	Entries []Entry `json:"entries,omitempty"`
	Next    uint64  `json:"next"`
}

// TrimArgs discards entries below Before.
type TrimArgs struct {
	Stream string `json:"stream,omitempty"`
	Before uint64 `json:"before"`
}

// TailArgs names the stream to inspect.
type TailArgs struct {
	Stream string `json:"stream,omitempty"`
}

// TailReply reports the next offset the sequencer will assign.
type TailReply struct {
	Next uint64 `json:"next"`
}

// Serve starts a shared log server.
func Serve(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("sharedlog: Network is required")
	}
	if cfg.SegmentEntries <= 0 {
		cfg.SegmentEntries = 4096
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:     cfg,
		rpc:     rpc.NewServer(),
		streams: map[string]*logState{},
		stopCh:  make(chan struct{}),
	}
	s.rpc.Name = "sharedlog"
	rpc.HandleFunc(s.rpc, "Append", s.handleAppend)
	rpc.HandleFunc(s.rpc, "Read", s.handleRead)
	rpc.HandleFunc(s.rpc, "Trim", s.handleTrim)
	rpc.HandleFunc(s.rpc, "Tail", s.handleTail)
	addr, err := s.rpc.Serve(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.addr = addr
	if rc := cfg.Replication; rc != nil {
		node, err := rsm.StartGroup(*rc, s.rpc, cfg.Network, logSM{s}, nil, cfg.Logf)
		if err != nil {
			s.rpc.Close()
			return nil, err
		}
		s.node = node
	}
	return s, nil
}

// Addr returns the server's RPC address.
func (s *Server) Addr() string { return s.addr }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	close(s.stopCh)
	s.mu.Unlock()
	if s.node != nil {
		s.node.Close()
	}
	return s.rpc.Close()
}

// IsLeader reports whether this member currently accepts appends (always
// true in standalone mode).
func (s *Server) IsLeader() bool {
	return s.node == nil || s.node.IsLeader()
}

// RSMStatus reports the replication group's state (nil in standalone mode).
func (s *Server) RSMStatus() *rsm.Status {
	if s.node == nil {
		return nil
	}
	st := s.node.Status()
	return &st
}

// stream returns (creating if needed) the named stream. Caller holds mu.
func (s *Server) streamLocked(name string) *logState {
	st, ok := s.streams[name]
	if !ok {
		st = &logState{tailCh: make(chan struct{})}
		s.streams[name] = st
	}
	return st
}

func (s *Server) handleAppend(args AppendArgs) (AppendReply, error) {
	if len(args.Entries) == 0 {
		return AppendReply{}, errors.New("sharedlog: empty append")
	}
	if err := s.leaderCheck(); err != nil {
		return AppendReply{}, err
	}
	if s.node == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.applyAppendLocked(args.Stream, args.Entries), nil
	}
	return s.proposeAppend(args)
}

// applyAppendLocked assigns offsets from the stream's sequencer counter and
// stores the batch; it is both the standalone append path and the
// replicated apply body, so the two modes cannot drift. Caller holds mu.
func (s *Server) applyAppendLocked(stream string, entries [][]byte) AppendReply {
	st := s.streamLocked(stream)
	first := st.next
	for _, data := range entries {
		if len(st.segs) == 0 || len(st.segs[len(st.segs)-1].entries) >= s.cfg.SegmentEntries {
			st.segs = append(st.segs, &segment{base: st.next})
		}
		seg := st.segs[len(st.segs)-1]
		seg.entries = append(seg.entries, Entry{Offset: st.next, Data: data})
		st.next++
	}
	close(st.tailCh)
	st.tailCh = make(chan struct{})
	logAppends.Inc()
	logEntriesTotal.Add(int64(len(entries)))
	logTail.Set(int64(st.next))
	return AppendReply{First: first, Next: st.next}
}

func (s *Server) handleRead(args ReadArgs) (ReadReply, error) {
	max := args.Max
	if max <= 0 {
		max = 1024
	}
	var deadline <-chan time.Time
	if args.WaitMs > 0 {
		t := time.NewTimer(time.Duration(args.WaitMs) * time.Millisecond)
		defer t.Stop()
		deadline = t.C
	}
	for {
		s.mu.Lock()
		st := s.streamLocked(args.Stream)
		if args.From < st.trimmed {
			from := st.trimmed
			s.mu.Unlock()
			return ReadReply{}, fmt.Errorf("sharedlog: offset %d trimmed (oldest available %d)", args.From, from)
		}
		if args.From < st.next {
			reply := ReadReply{Next: args.From}
			for _, seg := range st.segs {
				if seg.base+uint64(len(seg.entries)) <= args.From {
					continue
				}
				start := 0
				if args.From > seg.base {
					start = int(args.From - seg.base)
				}
				for _, e := range seg.entries[start:] {
					if len(reply.Entries) >= max {
						break
					}
					reply.Entries = append(reply.Entries, e)
				}
				if len(reply.Entries) >= max {
					break
				}
			}
			reply.Next = args.From + uint64(len(reply.Entries))
			s.mu.Unlock()
			logReads.Inc()
			logEntriesServed.Add(int64(len(reply.Entries)))
			return reply, nil
		}
		ch := st.tailCh
		s.mu.Unlock()
		if deadline == nil {
			return ReadReply{Next: args.From}, nil
		}
		select {
		case <-ch:
		case <-deadline:
			return ReadReply{Next: args.From}, nil
		case <-s.stopCh:
			return ReadReply{}, errors.New("sharedlog: shutting down")
		}
	}
}

func (s *Server) handleTrim(args TrimArgs) (struct{}, error) {
	if err := s.leaderCheck(); err != nil {
		return struct{}{}, err
	}
	if s.node == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return struct{}{}, s.applyTrimLocked(args.Stream, args.Before)
	}
	return struct{}{}, s.proposeTrim(args)
}

// applyTrimLocked is the deterministic trim body. Caller holds mu.
func (s *Server) applyTrimLocked(stream string, before uint64) error {
	st := s.streamLocked(stream)
	if before > st.next {
		return fmt.Errorf("sharedlog: trim %d beyond tail %d", before, st.next)
	}
	kept := st.segs[:0]
	for _, seg := range st.segs {
		if seg.base+uint64(len(seg.entries)) <= before {
			continue // whole segment below the trim point
		}
		kept = append(kept, seg)
	}
	st.segs = append([]*segment(nil), kept...)
	// Trim drops whole segments only, so the true floor is the first
	// retained segment's base (or before itself when nothing remains).
	floor := before
	if len(st.segs) > 0 && st.segs[0].base < floor {
		floor = st.segs[0].base
	}
	if floor > st.trimmed {
		st.trimmed = floor
	}
	return nil
}

func (s *Server) handleTail(args TailArgs) (TailReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TailReply{Next: s.streamLocked(args.Stream).next}, nil
}

// Client is a typed connection to the shared log, bound to one stream
// (the zero-value default stream unless Stream is used). It accepts a
// comma-separated address list and rotates on dial failure, connection
// errors, and NotLeader redirects, so appenders survive sequencer
// failovers transparently.
type Client struct {
	core   *clientCore
	stream string
}

// clientCore is the rotating connection shared by all stream views.
type clientCore struct {
	network transport.Network

	mu       sync.Mutex
	addrs    []string
	cur      int
	redirect string // one-shot leader hint outside addrs
	conn     *rpc.Client
	closed   bool
}

// ErrClientClosed fails calls on a closed client, so Close aborts an
// in-flight read wait instead of the call re-dialing and waiting again.
var ErrClientClosed = errors.New("sharedlog: client closed")

// DialClient connects to a shared log server (default stream). addr may be
// a single address or a comma-separated member list.
func DialClient(network transport.Network, addr string) (*Client, error) {
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, errors.New("sharedlog: no addresses")
	}
	core := &clientCore{network: network, addrs: addrs}
	for range addrs {
		if _, err := core.connect(); err == nil {
			return &Client{core: core}, nil
		}
		core.mu.Lock()
		core.cur = (core.cur + 1) % len(core.addrs)
		core.mu.Unlock()
	}
	return nil, fmt.Errorf("sharedlog: no reachable server in %v", addrs)
}

// Stream returns a view of this connection bound to the named stream.
// Views share the underlying connection; Close on any of them closes it.
func (c *Client) Stream(name string) *Client {
	return &Client{core: c.core, stream: name}
}

// connect returns the live connection, dialing the current target if
// needed. The dial happens outside the lock; a racing winner is reused.
func (c *clientCore) connect() (*rpc.Client, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		conn := c.conn
		c.mu.Unlock()
		return conn, nil
	}
	target := c.addrs[c.cur]
	if c.redirect != "" {
		target = c.redirect
		c.redirect = ""
	}
	c.mu.Unlock()
	conn, err := rpc.DialClient(c.network, target)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		existing := c.conn
		c.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	c.conn = conn
	c.mu.Unlock()
	return conn, nil
}

func (c *clientCore) drop(conn *rpc.Client) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
	conn.Close()
}

// rotate advances to the next configured address, or jumps straight to a
// NotLeader hint when one is given.
func (c *clientCore) rotate(hint string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hint != "" {
		for i, a := range c.addrs {
			if a == hint {
				c.cur = i
				return
			}
		}
		c.redirect = hint
		return
	}
	c.cur = (c.cur + 1) % len(c.addrs)
}

func isConnErr(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, transport.ErrClosed) ||
		strings.Contains(err.Error(), "rpc: connection failed")
}

// call runs one RPC with rotation: NotLeader redirects re-target, dead
// connections rotate, and application errors (including call timeouts)
// return immediately — the call may have executed.
func (c *clientCore) call(method string, args, reply any, timeout time.Duration) error {
	attempts := 3 * len(c.addrs)
	if attempts < 4 {
		attempts = 4
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(time.Duration(i) * 10 * time.Millisecond)
		}
		var conn *rpc.Client
		conn, err = c.connect()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return err
			}
			c.rotate("")
			continue
		}
		err = conn.CallTimeoutEx(method, args, reply, timeout)
		switch {
		case err == nil:
			return nil
		case rsm.IsNotLeader(err):
			c.drop(conn)
			c.rotate(rsm.LeaderHint(err))
		case isConnErr(err):
			c.drop(conn)
			c.rotate("")
		case errors.Is(err, rpc.ErrCallTimeout):
			// Silent member (blackholed or wedged): return the ambiguity,
			// but rotate first so the next call tries someone else.
			c.drop(conn)
			c.rotate("")
			return err
		default:
			return err
		}
	}
	return err
}

// Append writes the batch, returning the first assigned offset.
func (c *Client) Append(entries ...[]byte) (uint64, error) {
	var reply AppendReply
	if err := c.core.call("Append", AppendArgs{Stream: c.stream, Entries: entries}, &reply, rpc.DefaultCallTimeout); err != nil {
		return 0, err
	}
	return reply.First, nil
}

// Read fetches entries from offset from, long-polling up to wait.
func (c *Client) Read(from uint64, max int, wait time.Duration) ([]Entry, uint64, error) {
	var reply ReadReply
	args := ReadArgs{Stream: c.stream, From: from, Max: max, WaitMs: int(wait / time.Millisecond)}
	if err := c.core.call("Read", args, &reply, wait+rpc.DefaultCallTimeout); err != nil {
		return nil, 0, err
	}
	return reply.Entries, reply.Next, nil
}

// Trim discards entries below before.
func (c *Client) Trim(before uint64) error {
	return c.core.call("Trim", TrimArgs{Stream: c.stream, Before: before}, nil, rpc.DefaultCallTimeout)
}

// Tail returns the next offset the sequencer will assign.
func (c *Client) Tail() (uint64, error) {
	var reply TailReply
	if err := c.core.call("Tail", TailArgs{Stream: c.stream}, &reply, rpc.DefaultCallTimeout); err != nil {
		return 0, err
	}
	return reply.Next, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.core.mu.Lock()
	c.core.closed = true
	conn := c.core.conn
	c.core.conn = nil
	c.core.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Subscribe starts a background reader that calls fn for every entry from
// offset from onward, in order, until stop is closed or the log dies. It
// opens its own connection so long-polls never block other calls.
func Subscribe(network transport.Network, addr string, from uint64, stop <-chan struct{}, fn func(Entry)) error {
	c, err := DialClient(network, addr)
	if err != nil {
		return err
	}
	go func() {
		defer c.Close()
		next := from
		for {
			select {
			case <-stop:
				return
			default:
			}
			entries, n, err := c.Read(next, 1024, time.Second)
			if err != nil {
				return
			}
			for _, e := range entries {
				fn(e)
			}
			next = n
		}
	}()
	return nil
}
