// Package sharedlog is a totally ordered append-only log service — the
// reproduction's stand-in for the paper's ZLog/CORFU shared log. The AA+EC
// controlet appends every write here first, and all replicas apply entries
// in log order, which is how bespoKV resolves concurrent multi-master
// writes that Dynomite cannot (§C of the paper).
//
// The design keeps CORFU's split between a sequencer (offset assignment)
// and storage (segmented entry store), collapsed into one process; readers
// long-poll so propagation latency is one RPC, not a poll interval.
package sharedlog

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/rpc"
	"bespokv/internal/transport"
)

// Append/read traffic counters; the tail gauge lets dashboards derive
// replication lag as tail minus each controlet's applied offset.
var (
	logAppends       = metrics.Default.Counter("bespokv_sharedlog_appends_total")
	logEntriesTotal  = metrics.Default.Counter("bespokv_sharedlog_entries_total")
	logReads         = metrics.Default.Counter("bespokv_sharedlog_reads_total")
	logEntriesServed = metrics.Default.Counter("bespokv_sharedlog_entries_served_total")
	logTail          = metrics.Default.Gauge("bespokv_sharedlog_tail")
)

// Entry is one ordered log record.
type Entry struct {
	// Offset is the global sequence number.
	Offset uint64 `json:"o"`
	// Data is the opaque payload ([]byte marshals as base64 in JSON).
	Data []byte `json:"d"`
}

// Config configures a log server.
type Config struct {
	Network transport.Network
	Addr    string
	// SegmentEntries is the per-segment capacity before a new segment
	// starts (default 4096); Trim drops whole segments.
	SegmentEntries int
}

type segment struct {
	base    uint64
	entries []Entry
}

// logState is one independent stream's segments and sequencer. Streams
// are CORFU-style: one server multiplexes many totally ordered logs (the
// controlets use one stream per shard), which is the paper's noted path
// for scaling the shared log with the cluster.
type logState struct {
	segs    []*segment
	next    uint64 // sequencer: next offset to assign
	trimmed uint64 // offsets below this are gone
	tailCh  chan struct{}
}

// Server is a running shared log.
type Server struct {
	cfg  Config
	rpc  *rpc.Server
	addr string

	mu      sync.Mutex
	streams map[string]*logState
	stopCh  chan struct{}
	stopped bool
}

// AppendArgs appends a batch atomically (contiguous offsets).
type AppendArgs struct {
	// Stream selects an independent log ("" is the default stream).
	Stream  string   `json:"stream,omitempty"`
	Entries [][]byte `json:"entries"`
}

// AppendReply returns the offset of the first appended entry.
type AppendReply struct {
	First uint64 `json:"first"`
	Next  uint64 `json:"next"`
}

// ReadArgs fetches entries at offsets >= From, up to Max, long-polling up
// to WaitMs when the log has nothing newer.
type ReadArgs struct {
	Stream string `json:"stream,omitempty"`
	From   uint64 `json:"from"`
	Max    int    `json:"max,omitempty"`
	WaitMs int    `json:"wait_ms,omitempty"`
}

// ReadReply carries the entries and the next offset to read from.
type ReadReply struct {
	Entries []Entry `json:"entries,omitempty"`
	Next    uint64  `json:"next"`
}

// TrimArgs discards entries below Before.
type TrimArgs struct {
	Stream string `json:"stream,omitempty"`
	Before uint64 `json:"before"`
}

// TailArgs names the stream to inspect.
type TailArgs struct {
	Stream string `json:"stream,omitempty"`
}

// TailReply reports the next offset the sequencer will assign.
type TailReply struct {
	Next uint64 `json:"next"`
}

// Serve starts a shared log server.
func Serve(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("sharedlog: Network is required")
	}
	if cfg.SegmentEntries <= 0 {
		cfg.SegmentEntries = 4096
	}
	s := &Server{
		cfg:     cfg,
		rpc:     rpc.NewServer(),
		streams: map[string]*logState{},
		stopCh:  make(chan struct{}),
	}
	s.rpc.Name = "sharedlog"
	rpc.HandleFunc(s.rpc, "Append", s.handleAppend)
	rpc.HandleFunc(s.rpc, "Read", s.handleRead)
	rpc.HandleFunc(s.rpc, "Trim", s.handleTrim)
	rpc.HandleFunc(s.rpc, "Tail", s.handleTail)
	addr, err := s.rpc.Serve(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.addr = addr
	return s, nil
}

// Addr returns the server's RPC address.
func (s *Server) Addr() string { return s.addr }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	close(s.stopCh)
	s.mu.Unlock()
	return s.rpc.Close()
}

// stream returns (creating if needed) the named stream. Caller holds mu.
func (s *Server) streamLocked(name string) *logState {
	st, ok := s.streams[name]
	if !ok {
		st = &logState{tailCh: make(chan struct{})}
		s.streams[name] = st
	}
	return st
}

func (s *Server) handleAppend(args AppendArgs) (AppendReply, error) {
	if len(args.Entries) == 0 {
		return AppendReply{}, errors.New("sharedlog: empty append")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streamLocked(args.Stream)
	first := st.next
	for _, data := range args.Entries {
		if len(st.segs) == 0 || len(st.segs[len(st.segs)-1].entries) >= s.cfg.SegmentEntries {
			st.segs = append(st.segs, &segment{base: st.next})
		}
		seg := st.segs[len(st.segs)-1]
		seg.entries = append(seg.entries, Entry{Offset: st.next, Data: data})
		st.next++
	}
	close(st.tailCh)
	st.tailCh = make(chan struct{})
	logAppends.Inc()
	logEntriesTotal.Add(int64(len(args.Entries)))
	logTail.Set(int64(st.next))
	return AppendReply{First: first, Next: st.next}, nil
}

func (s *Server) handleRead(args ReadArgs) (ReadReply, error) {
	max := args.Max
	if max <= 0 {
		max = 1024
	}
	var deadline <-chan time.Time
	if args.WaitMs > 0 {
		t := time.NewTimer(time.Duration(args.WaitMs) * time.Millisecond)
		defer t.Stop()
		deadline = t.C
	}
	for {
		s.mu.Lock()
		st := s.streamLocked(args.Stream)
		if args.From < st.trimmed {
			from := st.trimmed
			s.mu.Unlock()
			return ReadReply{}, fmt.Errorf("sharedlog: offset %d trimmed (oldest available %d)", args.From, from)
		}
		if args.From < st.next {
			reply := ReadReply{Next: args.From}
			for _, seg := range st.segs {
				if seg.base+uint64(len(seg.entries)) <= args.From {
					continue
				}
				start := 0
				if args.From > seg.base {
					start = int(args.From - seg.base)
				}
				for _, e := range seg.entries[start:] {
					if len(reply.Entries) >= max {
						break
					}
					reply.Entries = append(reply.Entries, e)
				}
				if len(reply.Entries) >= max {
					break
				}
			}
			reply.Next = args.From + uint64(len(reply.Entries))
			s.mu.Unlock()
			logReads.Inc()
			logEntriesServed.Add(int64(len(reply.Entries)))
			return reply, nil
		}
		ch := st.tailCh
		s.mu.Unlock()
		if deadline == nil {
			return ReadReply{Next: args.From}, nil
		}
		select {
		case <-ch:
		case <-deadline:
			return ReadReply{Next: args.From}, nil
		case <-s.stopCh:
			return ReadReply{}, errors.New("sharedlog: shutting down")
		}
	}
}

func (s *Server) handleTrim(args TrimArgs) (struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streamLocked(args.Stream)
	if args.Before > st.next {
		return struct{}{}, fmt.Errorf("sharedlog: trim %d beyond tail %d", args.Before, st.next)
	}
	kept := st.segs[:0]
	for _, seg := range st.segs {
		if seg.base+uint64(len(seg.entries)) <= args.Before {
			continue // whole segment below the trim point
		}
		kept = append(kept, seg)
	}
	st.segs = append([]*segment(nil), kept...)
	// Trim drops whole segments only, so the true floor is the first
	// retained segment's base (or Before itself when nothing remains).
	floor := args.Before
	if len(st.segs) > 0 && st.segs[0].base < floor {
		floor = st.segs[0].base
	}
	if floor > st.trimmed {
		st.trimmed = floor
	}
	return struct{}{}, nil
}

func (s *Server) handleTail(args TailArgs) (TailReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TailReply{Next: s.streamLocked(args.Stream).next}, nil
}

// Client is a typed connection to the shared log, bound to one stream
// (the zero-value default stream unless Stream is used).
type Client struct {
	c      *rpc.Client
	stream string
}

// DialClient connects to a shared log server (default stream).
func DialClient(network transport.Network, addr string) (*Client, error) {
	c, err := rpc.DialClient(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Stream returns a view of this connection bound to the named stream.
// Views share the underlying connection; Close on any of them closes it.
func (c *Client) Stream(name string) *Client {
	return &Client{c: c.c, stream: name}
}

// Append writes the batch, returning the first assigned offset.
func (c *Client) Append(entries ...[]byte) (uint64, error) {
	var reply AppendReply
	if err := c.c.Call("Append", AppendArgs{Stream: c.stream, Entries: entries}, &reply); err != nil {
		return 0, err
	}
	return reply.First, nil
}

// Read fetches entries from offset from, long-polling up to wait.
func (c *Client) Read(from uint64, max int, wait time.Duration) ([]Entry, uint64, error) {
	var reply ReadReply
	args := ReadArgs{Stream: c.stream, From: from, Max: max, WaitMs: int(wait / time.Millisecond)}
	if err := c.c.Call("Read", args, &reply); err != nil {
		return nil, 0, err
	}
	return reply.Entries, reply.Next, nil
}

// Trim discards entries below before.
func (c *Client) Trim(before uint64) error {
	return c.c.Call("Trim", TrimArgs{Stream: c.stream, Before: before}, nil)
}

// Tail returns the next offset the sequencer will assign.
func (c *Client) Tail() (uint64, error) {
	var reply TailReply
	if err := c.c.Call("Tail", TailArgs{Stream: c.stream}, &reply); err != nil {
		return 0, err
	}
	return reply.Next, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.c.Close() }

// Subscribe starts a background reader that calls fn for every entry from
// offset from onward, in order, until stop is closed or the log dies. It
// opens its own connection so long-polls never block other calls.
func Subscribe(network transport.Network, addr string, from uint64, stop <-chan struct{}, fn func(Entry)) error {
	c, err := DialClient(network, addr)
	if err != nil {
		return err
	}
	go func() {
		defer c.Close()
		next := from
		for {
			select {
			case <-stop:
				return
			default:
			}
			entries, n, err := c.Read(next, 1024, time.Second)
			if err != nil {
				return
			}
			for _, e := range entries {
				fn(e)
			}
			next = n
		}
	}()
	return nil
}
