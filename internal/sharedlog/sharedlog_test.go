package sharedlog

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bespokv/internal/transport"
)

func newLog(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	net, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Network = net
	s, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := DialClient(net, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestAppendAssignsContiguousOffsets(t *testing.T) {
	_, c := newLog(t, Config{})
	first, err := c.Append([]byte("a"), []byte("b"), []byte("c"))
	if err != nil || first != 0 {
		t.Fatalf("first=%d err=%v", first, err)
	}
	second, err := c.Append([]byte("d"))
	if err != nil || second != 3 {
		t.Fatalf("second=%d err=%v", second, err)
	}
	next, err := c.Tail()
	if err != nil || next != 4 {
		t.Fatalf("tail=%d err=%v", next, err)
	}
}

func TestReadInOrder(t *testing.T) {
	_, c := newLog(t, Config{})
	for i := 0; i < 10; i++ {
		if _, err := c.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, next, err := c.Read(0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 || next != 10 {
		t.Fatalf("got %d entries, next=%d", len(entries), next)
	}
	for i, e := range entries {
		if e.Offset != uint64(i) || e.Data[0] != byte(i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestReadMax(t *testing.T) {
	_, c := newLog(t, Config{})
	for i := 0; i < 10; i++ {
		c.Append([]byte{byte(i)})
	}
	entries, next, err := c.Read(3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || next != 7 || entries[0].Offset != 3 {
		t.Fatalf("entries=%d next=%d first=%d", len(entries), next, entries[0].Offset)
	}
}

func TestReadSpansSegments(t *testing.T) {
	_, c := newLog(t, Config{SegmentEntries: 4})
	for i := 0; i < 20; i++ {
		c.Append([]byte{byte(i)})
	}
	entries, next, err := c.Read(2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 18 || next != 20 {
		t.Fatalf("entries=%d next=%d", len(entries), next)
	}
	for i, e := range entries {
		if e.Offset != uint64(i+2) {
			t.Fatalf("entry %d offset=%d", i, e.Offset)
		}
	}
}

func TestLongPollWakesOnAppend(t *testing.T) {
	s, c := newLog(t, Config{})
	done := make(chan []Entry, 1)
	go func() {
		entries, _, err := c.Read(0, 10, 5*time.Second)
		if err != nil {
			done <- nil
			return
		}
		done <- entries
	}()
	time.Sleep(30 * time.Millisecond)
	net, _ := transport.Lookup("inproc")
	c2, err := DialClient(net, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Append([]byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case entries := <-done:
		if len(entries) != 1 || string(entries[0].Data) != "wake" {
			t.Fatalf("got %+v", entries)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke")
	}
}

func TestLongPollTimesOutEmpty(t *testing.T) {
	_, c := newLog(t, Config{})
	start := time.Now()
	entries, next, err := c.Read(0, 10, 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || next != 0 {
		t.Fatalf("entries=%d next=%d", len(entries), next)
	}
	if time.Since(start) < 60*time.Millisecond {
		t.Fatal("returned before the poll window")
	}
}

func TestTrim(t *testing.T) {
	_, c := newLog(t, Config{SegmentEntries: 4})
	for i := 0; i < 12; i++ {
		c.Append([]byte{byte(i)})
	}
	if err := c.Trim(8); err != nil {
		t.Fatal(err)
	}
	// Offsets in dropped segments error.
	if _, _, err := c.Read(0, 10, 0); err == nil {
		t.Fatal("reading trimmed offsets must error")
	}
	// Offsets at/after the trim floor still work.
	entries, _, err := c.Read(8, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[0].Offset != 8 {
		t.Fatalf("entries=%d first=%d", len(entries), entries[0].Offset)
	}
	// Trimming past the tail errors.
	if err := c.Trim(100); err == nil {
		t.Fatal("trim beyond tail must error")
	}
}

func TestEmptyAppendRejected(t *testing.T) {
	_, c := newLog(t, Config{})
	if _, err := c.Append(); err == nil {
		t.Fatal("empty append must error")
	}
}

func TestConcurrentAppendersGetDistinctOffsets(t *testing.T) {
	s, _ := newLog(t, Config{})
	net, _ := transport.Lookup("inproc")
	const workers = 8
	const perWorker = 100
	offsets := make(chan uint64, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := DialClient(net, s.Addr())
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				off, err := c.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					return
				}
				offsets <- off
			}
		}(w)
	}
	wg.Wait()
	close(offsets)
	seen := map[uint64]bool{}
	n := 0
	for off := range offsets {
		if seen[off] {
			t.Fatalf("duplicate offset %d", off)
		}
		seen[off] = true
		n++
	}
	if n != workers*perWorker {
		t.Fatalf("lost appends: %d", n)
	}
}

func TestSubscribeDeliversInOrder(t *testing.T) {
	s, c := newLog(t, Config{})
	net, _ := transport.Lookup("inproc")
	stop := make(chan struct{})
	defer close(stop)
	var mu sync.Mutex
	var got []uint64
	err := Subscribe(net, s.Addr(), 0, stop, func(e Entry) {
		mu.Lock()
		got = append(got, e.Offset)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 50 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("subscriber saw %d/50 entries", n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, off := range got {
		if off != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, off)
		}
	}
}
