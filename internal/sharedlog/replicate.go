package sharedlog

import (
	"encoding/json"
	"errors"
	"time"
)

// proposeTimeout bounds one replicated append/trim; the shared log's data
// path is the AA+EC write path, so this is generous — anything slower
// means the sequencer group has no quorum.
const proposeTimeout = 5 * time.Second

const (
	opAppend = "append"
	opTrim   = "trim"
)

// logCmd is one replicated log entry: an appended batch (the sequencer
// counter advances exactly by its length, in commit order, identically on
// every member) or a trim.
type logCmd struct {
	Op      string   `json:"op"`
	Stream  string   `json:"stream,omitempty"`
	Entries [][]byte `json:"entries,omitempty"`
	Before  uint64   `json:"before,omitempty"`
}

// trimResult carries a trim's deterministic outcome back to the proposer.
type trimResult struct {
	Err string `json:"err,omitempty"`
}

// streamSnapshot is one stream's checkpoint image: retained entries plus
// the sequencer counter and trim floor.
type streamSnapshot struct {
	Next    uint64  `json:"next"`
	Trimmed uint64  `json:"trimmed"`
	Entries []Entry `json:"entries,omitempty"`
}

// leaderCheck gates appends and trims: in replicated mode only the leader
// sequences, everyone else redirects. Callers must not hold s.mu.
func (s *Server) leaderCheck() error {
	if s.node == nil || s.node.IsLeader() {
		return nil
	}
	return s.node.NotLeaderErr()
}

func (s *Server) proposeAppend(args AppendArgs) (AppendReply, error) {
	b, err := json.Marshal(logCmd{Op: opAppend, Stream: args.Stream, Entries: args.Entries})
	if err != nil {
		return AppendReply{}, err
	}
	res, err := s.node.Propose(b, proposeTimeout)
	if err != nil {
		return AppendReply{}, err
	}
	reply, ok := res.(AppendReply)
	if !ok {
		return AppendReply{}, errors.New("sharedlog: append not applied")
	}
	return reply, nil
}

func (s *Server) proposeTrim(args TrimArgs) error {
	b, err := json.Marshal(logCmd{Op: opTrim, Stream: args.Stream, Before: args.Before})
	if err != nil {
		return err
	}
	res, err := s.node.Propose(b, proposeTimeout)
	if err != nil {
		return err
	}
	if r, ok := res.(trimResult); ok && r.Err != "" {
		return errors.New(r.Err)
	}
	return nil
}

// logSM adapts the stream table to the rsm.StateMachine interface. Apply
// runs on every member with the RSM internals locked, so it only touches
// s.mu-guarded state and never calls back into the RSM node. Each member
// wakes its own long-pollers on apply, which is how followers serve
// subscriptions at one-RPC propagation latency.
type logSM struct{ s *Server }

func (m logSM) Apply(index uint64, cmd []byte) any {
	var op logCmd
	if err := json.Unmarshal(cmd, &op); err != nil {
		m.s.cfg.Logf("sharedlog: rsm entry %d undecodable: %v", index, err)
		return trimResult{Err: "sharedlog: undecodable command"}
	}
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	switch op.Op {
	case opAppend:
		return m.s.applyAppendLocked(op.Stream, op.Entries)
	case opTrim:
		if err := m.s.applyTrimLocked(op.Stream, op.Before); err != nil {
			return trimResult{Err: err.Error()}
		}
		return trimResult{}
	default:
		m.s.cfg.Logf("sharedlog: rsm entry %d has unknown op %q", index, op.Op)
		return trimResult{Err: "sharedlog: unknown command"}
	}
}

func (m logSM) Snapshot() []byte {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	snap := map[string]streamSnapshot{}
	for name, st := range m.s.streams {
		ss := streamSnapshot{Next: st.next, Trimmed: st.trimmed}
		for _, seg := range st.segs {
			ss.Entries = append(ss.Entries, seg.entries...)
		}
		snap[name] = ss
	}
	b, err := json.Marshal(snap)
	if err != nil {
		m.s.cfg.Logf("sharedlog: rsm snapshot: %v", err)
		return nil
	}
	return b
}

func (m logSM) Restore(data []byte) {
	snap := map[string]streamSnapshot{}
	if len(data) > 0 {
		if err := json.Unmarshal(data, &snap); err != nil {
			m.s.cfg.Logf("sharedlog: rsm restore: %v", err)
			return
		}
	}
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	for name, st := range m.s.streams {
		// Wake stranded long-pollers; they re-read the restored state.
		close(st.tailCh)
		st.tailCh = make(chan struct{})
		if _, ok := snap[name]; !ok {
			delete(m.s.streams, name)
		}
	}
	for name, ss := range snap {
		st := m.s.streamLocked(name)
		st.next, st.trimmed, st.segs = ss.Trimmed, ss.Trimmed, nil
		for _, e := range ss.Entries {
			// Rebuild segments with the snapshot's offsets; entries are
			// in order but may start above the trim floor.
			if len(st.segs) == 0 || len(st.segs[len(st.segs)-1].entries) >= m.s.cfg.SegmentEntries {
				st.segs = append(st.segs, &segment{base: e.Offset})
			}
			seg := st.segs[len(st.segs)-1]
			seg.entries = append(seg.entries, e)
		}
		st.next = ss.Next
	}
}
