// Package overload implements the cluster's overload-control primitives:
// admission lanes, a CoDel-style queue-delay shedder behind a per-listener
// inflight cap, a token-bucket retry budget, per-endpoint circuit breakers
// with jittered half-open probes, and a sustained-overload signal that
// drives graceful degradation (hedge suppression, local-replica reads).
//
// The design target is the classic congestion-collapse failure: a traffic
// spike queues unboundedly at datalets, every call blows its timeout, and
// client retries amplify the offered load until goodput collapses. Each
// primitive here cuts one link of that loop — servers shed early with a
// retryable Overloaded status instead of queueing doomed work, clients
// spend a bounded retry budget instead of amplifying, and breakers stop
// hammering endpoints that are refusing everything.
package overload

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/wire"
)

// Lane classifies an op for admission control. The lanes are strict
// priorities: control traffic is never queued behind data ops, so a hot
// data shard cannot starve heartbeats or lease renewals into a false
// failover.
type Lane uint8

const (
	// LaneControl ops keep the cluster alive — liveness probes, epoch
	// lease grants, telemetry and stats collection. Never gated, never
	// deadline-dropped.
	LaneControl Lane = iota
	// LaneInternal ops are the server-to-server continuation of work
	// already admitted at the entry edge: chain forwards, async
	// propagation, transition handoffs, recovery/migration streams.
	// Re-gating them would double-charge admitted work (and shed the
	// middle of a chain write more often than its head), so they bypass
	// the gate; pre-ack forwards still honor their deadline budget.
	LaneInternal
	// LaneData ops are client-entry data operations — the only traffic
	// admission control applies to.
	LaneData
)

// LaneOf maps an op to its admission lane.
func LaneOf(op wire.Op) Lane {
	switch op {
	case wire.OpNop, wire.OpEpochSet, wire.OpTelemetry, wire.OpStats:
		return LaneControl
	case wire.OpChainPut, wire.OpChainDel, wire.OpChainMPut,
		wire.OpReplPut, wire.OpReplDel, wire.OpHandoff,
		wire.OpExport, wire.OpExportDelta, wire.OpDelRange:
		return LaneInternal
	default:
		return LaneData
	}
}

// Config parameterizes a Gate.
type Config struct {
	// MaxInflight caps concurrently executing data ops; requests beyond
	// it wait briefly for a slot and are shed if the wait betrays a
	// standing queue. <= 0 disables the gate (NewGate returns nil; a nil
	// Gate admits everything).
	MaxInflight int
	// Target is the CoDel sojourn target: slot waits persistently above
	// it mean a standing queue, and the shedder engages. Default 5ms.
	Target time.Duration
	// Interval is the CoDel control interval — how long sojourn must stay
	// above Target before the first shed, and the base period of the
	// shedding rate ramp. Default 100ms.
	Interval time.Duration
	// MaxWait hard-caps how long any data op waits for a slot; beyond it
	// the op is shed regardless of CoDel state. Default 4×Target.
	MaxWait time.Duration
}

// Stats is a point-in-time snapshot of a Gate for /overloadz.
type Stats struct {
	MaxInflight int    `json:"max_inflight"`
	Inflight    int    `json:"inflight"`
	Queued      int    `json:"queued"`
	Admitted    uint64 `json:"admitted"`
	ShedCoDel   uint64 `json:"shed_codel"`
	ShedWait    uint64 `json:"shed_wait"`
	Dropping    bool   `json:"dropping"`
}

// Sheds returns the total requests this gate rejected.
func (s Stats) Sheds() uint64 { return s.ShedCoDel + s.ShedWait }

// Gate is a per-listener admission controller: an inflight cap (the
// queue) plus a CoDel-style controller on slot-wait sojourn time (the
// shedder). While the gate is uncontended, Admit costs one channel send;
// only requests that actually wait pay for timers and control law.
type Gate struct {
	slots   chan struct{}
	maxWait time.Duration

	queued    atomic.Int64
	admitted  atomic.Uint64
	shedCoDel atomic.Uint64
	shedWait  atomic.Uint64

	// CoDel controller state (mu-guarded; touched only by waiters).
	mu         sync.Mutex
	target     time.Duration
	interval   time.Duration
	firstAbove time.Time // when sojourn first stayed above target; zero = below
	dropping   bool
	dropNext   time.Time
	dropCount  int
}

// NewGate builds a gate from cfg, or returns nil (admit-everything) when
// the cap is disabled.
func NewGate(cfg Config) *Gate {
	if cfg.MaxInflight <= 0 {
		return nil
	}
	if cfg.Target <= 0 {
		cfg.Target = 5 * time.Millisecond
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 4 * cfg.Target
	}
	return &Gate{
		slots:    make(chan struct{}, cfg.MaxInflight),
		maxWait:  cfg.MaxWait,
		target:   cfg.Target,
		interval: cfg.Interval,
	}
}

var noRelease = func() {}

// Admit asks for an execution slot. ok=true hands back a release func the
// caller must invoke when the op completes; ok=false means the request
// was shed and should be rejected with StatusOverloaded. Nil gates admit
// everything.
func (g *Gate) Admit() (release func(), ok bool) {
	if g == nil {
		return noRelease, true
	}
	select {
	case g.slots <- struct{}{}:
		// No wait: sojourn 0 feeds the controller so a drained queue
		// disengages shedding.
		g.observe(time.Now(), 0)
		g.admitted.Add(1)
		return g.release, true
	default:
	}
	g.queued.Add(1)
	defer g.queued.Add(-1)
	start := time.Now()
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		now := time.Now()
		if g.observe(now, now.Sub(start)) {
			// The CoDel law sheds this request: give the slot back so
			// the shed actually relieves the queue behind it.
			<-g.slots
			g.shedCoDel.Add(1)
			return nil, false
		}
		g.admitted.Add(1)
		return g.release, true
	case <-timer.C:
		g.observe(time.Now(), g.maxWait)
		g.shedWait.Add(1)
		return nil, false
	}
}

func (g *Gate) release() { <-g.slots }

// observe runs the CoDel control law on one measured sojourn and reports
// whether the request should be shed. Sojourns below target reset the
// controller; sojourns above it for a full interval engage dropping, and
// while engaged the drop rate ramps as interval/√dropCount — the standard
// CoDel schedule, which sheds just fast enough to drain a standing queue
// without collapsing throughput.
func (g *Gate) observe(now time.Time, sojourn time.Duration) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if sojourn < g.target {
		g.firstAbove = time.Time{}
		g.dropping = false
		return false
	}
	if g.firstAbove.IsZero() {
		g.firstAbove = now.Add(g.interval)
		return false
	}
	if !g.dropping {
		if now.Before(g.firstAbove) {
			return false
		}
		g.dropping = true
		g.dropCount = 1
		g.dropNext = now.Add(g.interval)
		return true
	}
	if now.Before(g.dropNext) {
		return false
	}
	g.dropCount++
	g.dropNext = now.Add(time.Duration(float64(g.interval) / math.Sqrt(float64(g.dropCount))))
	return true
}

// Snapshot reports the gate's current state; nil gates report zeros.
func (g *Gate) Snapshot() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	dropping := g.dropping
	g.mu.Unlock()
	return Stats{
		MaxInflight: cap(g.slots),
		Inflight:    len(g.slots),
		Queued:      int(g.queued.Load()),
		Admitted:    g.admitted.Load(),
		ShedCoDel:   g.shedCoDel.Load(),
		ShedWait:    g.shedWait.Load(),
		Dropping:    dropping,
	}
}

// budgetTokenScale is the cost of one retry in budget tokens; each
// completed primary request credits RetryBudgetPct tokens, so the
// sustained retry rate converges to pct% of the primary rate (the same
// bucket arithmetic as the client's hedging budget).
const budgetTokenScale = 100

// budgetTokenCap bounds banked retries to a burst of 10.
const budgetTokenCap = 10 * budgetTokenScale

// RetryBudget is a token bucket limiting retries to a fraction of primary
// traffic. A nil budget (pct <= 0) allows every retry — the pre-overload
// behavior.
type RetryBudget struct {
	pct    int64
	tokens atomic.Int64
}

// NewRetryBudget builds a budget crediting pct tokens per completed
// request; pct <= 0 returns nil (unlimited retries).
func NewRetryBudget(pct int) *RetryBudget {
	if pct <= 0 {
		return nil
	}
	b := &RetryBudget{pct: int64(pct)}
	b.tokens.Store(budgetTokenCap) // start with a full burst banked
	return b
}

// Observe credits the budget for one completed primary request.
func (b *RetryBudget) Observe() {
	if b == nil {
		return
	}
	for {
		cur := b.tokens.Load()
		next := cur + b.pct
		if next > budgetTokenCap {
			next = budgetTokenCap
		}
		if next == cur || b.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Allow spends one retry's worth of tokens, reporting false when the
// budget is exhausted — the caller should fail the op instead of
// amplifying load.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	for {
		cur := b.tokens.Load()
		if cur < budgetTokenScale {
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-budgetTokenScale) {
			return true
		}
	}
}

// Tokens reports banked retries (fractional), for gauges.
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	return float64(b.tokens.Load()) / budgetTokenScale
}

// BreakerState is a circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed passes traffic normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails everything until a jittered cooldown ends.
	BreakerOpen
	// BreakerHalfOpen admits a single probe; its outcome closes or
	// re-opens the breaker.
	BreakerHalfOpen
)

// String returns the state mnemonic.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a per-endpoint circuit breaker. It trips after `threshold`
// consecutive transport-level failures, fast-fails while open, and after
// a jittered cooldown admits one half-open probe whose outcome decides
// between closing and another open period. Jitter spreads the probes of
// many clients so a recovering endpoint is not stampeded the instant a
// shared cooldown lapses.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu      sync.Mutex
	state   BreakerState
	fails   int
	until   time.Time // open until (jittered)
	probing bool      // a half-open probe is in flight
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures, with the given base cooldown (jittered to [0.5c, 1.5c)).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 250 * time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent now. While open it returns
// false until the jittered cooldown lapses, then admits exactly one probe
// at a time. Nil breakers always allow.
func (b *Breaker) Allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed exchange (any response, even an error
// status, proves the endpoint is talking) and closes the breaker.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a transport-level failure (dial error, call timeout —
// not an application status). A half-open probe failure re-opens
// immediately; otherwise the breaker opens after threshold consecutive
// failures.
func (b *Breaker) Failure(now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	wasProbe := b.state == BreakerHalfOpen
	b.probing = false
	if wasProbe || b.fails >= b.threshold {
		b.state = BreakerOpen
		// Jittered cooldown in [0.5c, 1.5c): decorrelates the half-open
		// probes of independent clients.
		j := b.cooldown/2 + time.Duration(rand.Int64N(int64(b.cooldown)))
		b.until = now.Add(j)
	}
}

// State reports the breaker's position; nil breakers read closed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSet keys breakers by endpoint address. A nil set (threshold
// <= 0) hands out nil breakers, which always allow.
type BreakerSet struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet builds a set sharing one threshold/cooldown across
// endpoints; threshold <= 0 returns nil (breakers disabled).
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	if threshold <= 0 {
		return nil
	}
	return &BreakerSet{threshold: threshold, cooldown: cooldown, m: map[string]*Breaker{}}
}

// For returns the endpoint's breaker, creating it on first use.
func (s *BreakerSet) For(addr string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[addr]
	if b == nil {
		b = NewBreaker(s.threshold, s.cooldown)
		s.m[addr] = b
	}
	return b
}

// States counts breakers by position, for the state gauges.
func (s *BreakerSet) States() (closed, open, half int) {
	if s == nil {
		return 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.m {
		switch b.State() {
		case BreakerOpen:
			open++
		case BreakerHalfOpen:
			half++
		default:
			closed++
		}
	}
	return
}

// Signal tracks recent overload pushback (Overloaded rejections) and
// reports whether overload is *sustained* — at least `min` events inside
// `window`. Degradation hooks key off it: one stray rejection shouldn't
// disable hedging, a steady stream should.
type Signal struct {
	window time.Duration

	mu    sync.Mutex
	times []time.Time // ring of the last len(times) event instants
	idx   int
	n     int
}

// NewSignal builds a signal that activates after min events within
// window. min < 1 is clamped to 1.
func NewSignal(window time.Duration, min int) *Signal {
	if min < 1 {
		min = 1
	}
	return &Signal{window: window, times: make([]time.Time, min)}
}

// Note records one overload pushback.
func (s *Signal) Note(now time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.times[s.idx] = now
	s.idx = (s.idx + 1) % len(s.times)
	if s.n < len(s.times) {
		s.n++
	}
	s.mu.Unlock()
}

// Active reports whether the min-th most recent pushback is still inside
// the window — i.e. overload is sustained, not a blip.
func (s *Signal) Active(now time.Time) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < len(s.times) {
		return false
	}
	oldest := s.times[s.idx] // next overwrite slot = oldest of the last min
	return now.Sub(oldest) < s.window
}
