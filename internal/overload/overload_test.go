package overload

import (
	"sync"
	"testing"
	"time"

	"bespokv/internal/wire"
)

func TestLaneOf(t *testing.T) {
	cases := []struct {
		op   wire.Op
		want Lane
	}{
		{wire.OpNop, LaneControl},
		{wire.OpEpochSet, LaneControl},
		{wire.OpTelemetry, LaneControl},
		{wire.OpStats, LaneControl},
		{wire.OpChainPut, LaneInternal},
		{wire.OpChainDel, LaneInternal},
		{wire.OpChainMPut, LaneInternal},
		{wire.OpReplPut, LaneInternal},
		{wire.OpReplDel, LaneInternal},
		{wire.OpHandoff, LaneInternal},
		{wire.OpExport, LaneInternal},
		{wire.OpExportDelta, LaneInternal},
		{wire.OpDelRange, LaneInternal},
		{wire.OpPut, LaneData},
		{wire.OpGet, LaneData},
		{wire.OpDel, LaneData},
		{wire.OpScan, LaneData},
		{wire.OpMGet, LaneData},
		{wire.OpMPut, LaneData},
		{wire.OpDirectGet, LaneData},
		{wire.OpCreateTable, LaneData},
		{wire.OpDeleteTable, LaneData},
	}
	for _, c := range cases {
		if got := LaneOf(c.op); got != c.want {
			t.Errorf("LaneOf(%v) = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestGateDisabledAndNil(t *testing.T) {
	if g := NewGate(Config{MaxInflight: 0}); g != nil {
		t.Fatal("MaxInflight 0 should disable the gate")
	}
	var g *Gate
	rel, ok := g.Admit()
	if !ok {
		t.Fatal("nil gate must admit")
	}
	rel() // must not panic
	if s := g.Snapshot(); s.Sheds() != 0 || s.MaxInflight != 0 {
		t.Fatalf("nil gate snapshot %+v", s)
	}
}

func TestGateUncontendedAdmits(t *testing.T) {
	g := NewGate(Config{MaxInflight: 2})
	r1, ok1 := g.Admit()
	r2, ok2 := g.Admit()
	if !ok1 || !ok2 {
		t.Fatal("uncontended admits must succeed")
	}
	if s := g.Snapshot(); s.Inflight != 2 || s.Admitted != 2 {
		t.Fatalf("snapshot %+v", s)
	}
	r1()
	r2()
	if s := g.Snapshot(); s.Inflight != 0 {
		t.Fatalf("slots not released: %+v", s)
	}
}

func TestGateMaxWaitShed(t *testing.T) {
	g := NewGate(Config{MaxInflight: 1, Target: time.Millisecond, MaxWait: 5 * time.Millisecond})
	rel, ok := g.Admit()
	if !ok {
		t.Fatal("first admit")
	}
	defer rel()
	start := time.Now()
	if _, ok := g.Admit(); ok {
		t.Fatal("second admit should shed: slot held past MaxWait")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("shed took %v, expected ~MaxWait", waited)
	}
	s := g.Snapshot()
	if s.ShedWait != 1 {
		t.Fatalf("ShedWait = %d, want 1: %+v", s.ShedWait, s)
	}
}

func TestGateQueuedAdmitAfterRelease(t *testing.T) {
	g := NewGate(Config{MaxInflight: 1, Target: 50 * time.Millisecond, MaxWait: time.Second})
	rel, ok := g.Admit()
	if !ok {
		t.Fatal("first admit")
	}
	done := make(chan bool, 1)
	go func() {
		r2, ok2 := g.Admit()
		if ok2 {
			r2()
		}
		done <- ok2
	}()
	time.Sleep(10 * time.Millisecond) // waiter queues, well under target
	rel()
	if !<-done {
		t.Fatal("queued request should admit once the slot frees (sojourn < target)")
	}
}

// TestGateCoDelLaw drives observe() directly with synthetic clocks to pin
// the control law: below-target resets, the first interval above target
// arms dropping, and the drop rate ramps as interval/sqrt(count).
func TestGateCoDelLaw(t *testing.T) {
	g := NewGate(Config{MaxInflight: 1, Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond})
	base := time.Unix(2000, 0)
	hi := 10 * time.Millisecond // above target
	lo := time.Millisecond      // below target

	if g.observe(base, hi) {
		t.Fatal("first above-target sojourn must not shed (arming)")
	}
	if g.observe(base.Add(50*time.Millisecond), hi) {
		t.Fatal("still inside the arming interval")
	}
	if !g.observe(base.Add(101*time.Millisecond), hi) {
		t.Fatal("a full interval above target must engage dropping")
	}
	if !g.Snapshot().Dropping {
		t.Fatal("gate should report dropping")
	}
	// Next drop is scheduled interval later; before that, admit.
	if g.observe(base.Add(150*time.Millisecond), hi) {
		t.Fatal("shed before dropNext")
	}
	if !g.observe(base.Add(202*time.Millisecond), hi) {
		t.Fatal("second drop after the first interval")
	}
	// dropCount=2 → next gap interval/sqrt(2) ≈ 70.7ms.
	if g.observe(base.Add(260*time.Millisecond), hi) {
		t.Fatal("shed before the sqrt-ramped dropNext")
	}
	if !g.observe(base.Add(275*time.Millisecond), hi) {
		t.Fatal("third drop after interval/sqrt(2)")
	}
	// A below-target sojourn disengages everything.
	if g.observe(base.Add(276*time.Millisecond), lo) {
		t.Fatal("below-target sojourn must never shed")
	}
	if g.Snapshot().Dropping {
		t.Fatal("below-target sojourn must disengage dropping")
	}
	if g.observe(base.Add(277*time.Millisecond), hi) {
		t.Fatal("controller must re-arm from scratch after reset")
	}
}

func TestGateConcurrentStress(t *testing.T) {
	g := NewGate(Config{MaxInflight: 4, Target: time.Millisecond, MaxWait: 2 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if rel, ok := g.Admit(); ok {
					time.Sleep(50 * time.Microsecond)
					rel()
				}
			}
		}()
	}
	wg.Wait()
	s := g.Snapshot()
	if s.Inflight != 0 || s.Queued != 0 {
		t.Fatalf("leaked slots or queue entries: %+v", s)
	}
	if s.Admitted+s.Sheds() != 32*50 {
		t.Fatalf("admitted %d + sheds %d != %d", s.Admitted, s.Sheds(), 32*50)
	}
}

func TestRetryBudget(t *testing.T) {
	if b := NewRetryBudget(0); b != nil {
		t.Fatal("pct 0 should disable the budget")
	}
	var nilB *RetryBudget
	if !nilB.Allow() {
		t.Fatal("nil budget must allow")
	}
	nilB.Observe() // must not panic

	b := NewRetryBudget(10)
	// Starts with a full burst of 10 retries banked.
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("burst retry %d denied", i)
		}
	}
	if b.Allow() {
		t.Fatal("11th retry allowed with empty bucket")
	}
	// 10 completed ops at 10% credit exactly one retry.
	for i := 0; i < 10; i++ {
		b.Observe()
	}
	if !b.Allow() {
		t.Fatal("credited retry denied")
	}
	if b.Allow() {
		t.Fatal("second retry allowed on one credit")
	}
	// The bucket caps at 10 banked retries.
	for i := 0; i < 10_000; i++ {
		b.Observe()
	}
	if got := b.Tokens(); got != 10 {
		t.Fatalf("tokens %v, want capped at 10", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	if b := NewBreaker(0, time.Second); b != nil {
		t.Fatal("threshold 0 should disable the breaker")
	}
	var nilB *Breaker
	if !nilB.Allow(time.Now()) || nilB.State() != BreakerClosed {
		t.Fatal("nil breaker must allow and read closed")
	}
	nilB.Success()
	nilB.Failure(time.Now())

	now := time.Unix(3000, 0)
	b := NewBreaker(3, 100*time.Millisecond)
	// Two failures then a success: counter resets, stays closed.
	b.Failure(now)
	b.Failure(now)
	b.Success()
	b.Failure(now)
	b.Failure(now)
	if b.State() != BreakerClosed || !b.Allow(now) {
		t.Fatal("breaker tripped below threshold")
	}
	// Third consecutive failure trips it.
	b.Failure(now)
	if b.State() != BreakerOpen {
		t.Fatal("breaker should open at threshold")
	}
	if b.Allow(now.Add(49 * time.Millisecond)) {
		t.Fatal("open breaker allowed before min cooldown (0.5c)")
	}
	// Jitter caps the open window at 1.5c: the probe must be allowed then.
	probeAt := now.Add(150 * time.Millisecond)
	if !b.Allow(probeAt) {
		t.Fatal("half-open probe denied after max cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow(probeAt) {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe failure re-opens immediately (no threshold).
	b.Failure(probeAt)
	if b.State() != BreakerOpen {
		t.Fatal("failed probe should re-open")
	}
	// Next probe succeeds → closed, counters reset.
	again := probeAt.Add(200 * time.Millisecond)
	if !b.Allow(again) {
		t.Fatal("probe denied after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe should close")
	}
	b.Failure(again)
	b.Failure(again)
	if b.State() != BreakerClosed {
		t.Fatal("failure count should have reset on close")
	}
}

func TestBreakerSet(t *testing.T) {
	var nilS *BreakerSet
	if nilS.For("a") != nil {
		t.Fatal("nil set must hand out nil breakers")
	}
	if c, o, h := nilS.States(); c+o+h != 0 {
		t.Fatal("nil set states")
	}
	s := NewBreakerSet(1, 100*time.Millisecond)
	now := time.Unix(4000, 0)
	if s.For("a") != s.For("a") {
		t.Fatal("same addr must share one breaker")
	}
	s.For("a").Failure(now)
	s.For("b") // created closed
	closed, open, half := s.States()
	if closed != 1 || open != 1 || half != 0 {
		t.Fatalf("states closed=%d open=%d half=%d", closed, open, half)
	}
}

func TestSignal(t *testing.T) {
	var nilS *Signal
	nilS.Note(time.Now())
	if nilS.Active(time.Now()) {
		t.Fatal("nil signal must be inactive")
	}

	now := time.Unix(5000, 0)
	s := NewSignal(100*time.Millisecond, 3)
	s.Note(now)
	s.Note(now.Add(10 * time.Millisecond))
	if s.Active(now.Add(20 * time.Millisecond)) {
		t.Fatal("two events should not activate a min-3 signal")
	}
	s.Note(now.Add(20 * time.Millisecond))
	if !s.Active(now.Add(30 * time.Millisecond)) {
		t.Fatal("three events inside the window should activate")
	}
	if s.Active(now.Add(150 * time.Millisecond)) {
		t.Fatal("signal should decay once the oldest event leaves the window")
	}
	// A fresh burst reactivates.
	late := now.Add(300 * time.Millisecond)
	s.Note(late)
	s.Note(late)
	s.Note(late)
	if !s.Active(late.Add(time.Millisecond)) {
		t.Fatal("fresh burst should reactivate")
	}
}
