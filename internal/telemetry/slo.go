package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bespokv/internal/metrics"
)

// SLO burn-rate alerting (multi-window, Google SRE workbook style): an
// objective defines an error budget — for a latency objective "p99 GET <
// 5ms" the budget is the 1% of requests allowed over the threshold; for an
// availability objective it is MaxErrRate. The burn rate over a set of
// windows is (bad events / total events) / budget: burn 1.0 spends the
// budget exactly, burn 10 spends it 10x too fast. An alert needs BOTH a
// fast window (recent, catches regressions quickly) and a slow window
// (smooths blips) burning above the threshold, and transitions through
// pending → firing → resolved with hysteresis: firing needs HoldWindows
// consecutive burning evaluations, resolving needs ClearWindows consecutive
// evaluations below ClearFraction×threshold, and the band in between
// changes nothing — that dead zone is what prevents flapping.

// Objective is one declarative SLO. Exactly one of Threshold (latency
// objective) or MaxErrRate (availability objective) should be set.
type Objective struct {
	// Name identifies the objective in /alertz and metric labels.
	Name string `json:"name"`
	// Class is the op class the objective measures.
	Class Class `json:"class"`
	// Quantile is the latency target quantile (e.g. 0.99); the error
	// budget is 1-Quantile. Used when Threshold > 0.
	Quantile float64 `json:"quantile,omitempty"`
	// Threshold is the latency bound; fractions of ops at or above it are
	// budget spend. Resolution is one histogram sub-bucket (~25%).
	Threshold time.Duration `json:"threshold,omitempty"`
	// MaxErrRate makes this an availability objective: the budget is this
	// error-rate bound (e.g. 0.01 for 99% availability).
	MaxErrRate float64 `json:"max_err_rate,omitempty"`
	// FastWindows and SlowWindows are the two burn-rate horizons, in
	// sealed windows (defaults 3 and 12).
	FastWindows int `json:"fast_windows,omitempty"`
	SlowWindows int `json:"slow_windows,omitempty"`
	// BurnThreshold is the burn rate both horizons must reach (default 2).
	BurnThreshold float64 `json:"burn_threshold,omitempty"`
	// ClearFraction scales BurnThreshold down to the all-clear level
	// (default 0.5); burns between the two levels hold the current state.
	ClearFraction float64 `json:"clear_fraction,omitempty"`
	// HoldWindows is how many consecutive burning evaluations promote
	// pending → firing (default 2); ClearWindows how many clear
	// evaluations demote firing → resolved (default 3).
	HoldWindows  int `json:"hold_windows,omitempty"`
	ClearWindows int `json:"clear_windows,omitempty"`
}

func (o Objective) withDefaults() Objective {
	if o.Quantile <= 0 || o.Quantile >= 1 {
		o.Quantile = 0.99
	}
	if o.FastWindows <= 0 {
		o.FastWindows = 3
	}
	if o.SlowWindows <= 0 {
		o.SlowWindows = 12
	}
	if o.SlowWindows < o.FastWindows {
		o.SlowWindows = o.FastWindows
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 2
	}
	if o.ClearFraction <= 0 || o.ClearFraction >= 1 {
		o.ClearFraction = 0.5
	}
	if o.HoldWindows <= 0 {
		o.HoldWindows = 2
	}
	if o.ClearWindows <= 0 {
		o.ClearWindows = 3
	}
	return o
}

// budget returns the objective's error budget as a fraction.
func (o Objective) budget() float64 {
	if o.MaxErrRate > 0 {
		return o.MaxErrRate
	}
	return 1 - o.Quantile
}

// String renders the objective's bound for human output.
func (o Objective) Bound() string {
	if o.MaxErrRate > 0 {
		return fmt.Sprintf("%s err-rate < %.2g%%", o.Class, o.MaxErrRate*100)
	}
	return fmt.Sprintf("p%.4g %s < %s", o.Quantile*100, o.Class, o.Threshold)
}

// DefaultObjectives is the out-of-the-box alerting policy the binaries
// install when none is configured.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "get-p99", Class: ClassGet, Quantile: 0.99, Threshold: 50 * time.Millisecond},
		{Name: "put-p99", Class: ClassPut, Quantile: 0.99, Threshold: 100 * time.Millisecond},
		{Name: "get-errors", Class: ClassGet, MaxErrRate: 0.01},
	}
}

// AlertState is the lifecycle position of one (objective, shard) alert.
type AlertState uint8

const (
	StateInactive AlertState = iota
	StatePending
	StateFiring
	StateResolved
)

func (s AlertState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	default:
		return "inactive"
	}
}

// Alert is the externally visible state of one (objective, shard) pair.
type Alert struct {
	Objective string     `json:"objective"`
	Bound     string     `json:"bound"`
	Shard     string     `json:"shard"`
	State     AlertState `json:"-"`
	StateName string     `json:"state"`
	// BurnFast and BurnSlow are the latest burn rates over the two
	// horizons (1.0 = spending budget exactly on schedule).
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	// SinceMs is when the alert entered its current state.
	SinceMs int64 `json:"since_ms"`
	// Fired counts pending→firing transitions over the alert's lifetime —
	// the flap detector tests assert on.
	Fired int64 `json:"fired"`
}

// SLO engine metrics: one state gauge per (objective, shard) — bounded by
// the objective list times live shards — and a transitions counter.
var sloTransitions = func(name, to string) *metrics.Counter {
	return metrics.Default.Counter("bespokv_slo_transitions_total", "objective", name, "to", to)
}

type alertTrack struct {
	obj       Objective
	shard     string
	state     AlertState
	since     time.Time
	hold      int
	clear     int
	lastStart int64 // newest window start already evaluated
	burnFast  float64
	burnSlow  float64
	fired     int64
	gauge     *metrics.Gauge
}

// SLOEngine evaluates objectives against merged per-shard window series
// and runs the alert state machine. It is driven by the aggregator; all
// methods are safe for concurrent use.
type SLOEngine struct {
	mu         sync.Mutex
	objectives []Objective
	tracks     map[string]*alertTrack // key = objective + "\x00" + shard
}

// NewSLOEngine returns an engine enforcing the given objectives (nil means
// no alerting; see DefaultObjectives for the stock policy).
func NewSLOEngine(objectives []Objective) *SLOEngine {
	e := &SLOEngine{tracks: map[string]*alertTrack{}}
	for _, o := range objectives {
		e.objectives = append(e.objectives, o.withDefaults())
	}
	return e
}

// burnOver computes the burn rate over the trailing n windows.
func burnOver(o Objective, windows []Window, n int) float64 {
	if n > len(windows) {
		n = len(windows)
	}
	var total, bad int64
	for _, w := range windows[len(windows)-n:] {
		if o.MaxErrRate > 0 {
			total += w.Ops[o.Class]
			bad += w.Errs[o.Class]
		} else {
			// Latency objectives use the sampled histogram population so
			// numerator and denominator come from the same sample set.
			total += w.Lat[o.Class].Count
			bad += w.Lat[o.Class].CountAbove(o.Threshold)
		}
	}
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / o.budget()
}

// Evaluate feeds one shard's merged window series (oldest first, sealed
// windows only) into the state machine. State only advances when a window
// newer than the last evaluated one appears, so re-reporting the same
// windows is idempotent and hold/clear counters tick in window time.
func (e *SLOEngine) Evaluate(shard string, windows []Window, now time.Time) {
	if len(e.objectives) == 0 || len(windows) == 0 {
		return
	}
	newest := windows[len(windows)-1].StartMs
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objectives {
		key := o.Name + "\x00" + shard
		t := e.tracks[key]
		if t == nil {
			t = &alertTrack{
				obj: o, shard: shard, since: now, lastStart: -1,
				gauge: metrics.Default.Gauge("bespokv_slo_alert_state", "objective", o.Name, "shard", shard),
			}
			e.tracks[key] = t
		}
		if newest <= t.lastStart {
			continue
		}
		t.lastStart = newest
		t.step(windows, now)
	}
}

func (t *alertTrack) step(windows []Window, now time.Time) {
	o := t.obj
	t.burnFast = burnOver(o, windows, o.FastWindows)
	t.burnSlow = burnOver(o, windows, o.SlowWindows)
	burning := t.burnFast >= o.BurnThreshold && t.burnSlow >= o.BurnThreshold
	clearLevel := o.BurnThreshold * o.ClearFraction
	cleared := t.burnFast < clearLevel && t.burnSlow < clearLevel

	switch t.state {
	case StateInactive, StateResolved:
		if burning {
			t.to(StatePending, now)
			t.hold = 1
			if t.hold >= o.HoldWindows {
				t.fire(now)
			}
		} else if t.state == StateResolved && cleared {
			t.clear++
			// A resolved alert quietly retires after it has stayed clear
			// as long as it took to resolve.
			if t.clear >= 2*o.ClearWindows {
				t.to(StateInactive, now)
			}
		}
	case StatePending:
		if burning {
			t.hold++
			if t.hold >= o.HoldWindows {
				t.fire(now)
			}
		} else if cleared {
			// Never actually fired: cancel rather than resolve.
			t.to(StateInactive, now)
		}
		// In the dead zone: hold at pending, counter unchanged.
	case StateFiring:
		if cleared {
			t.clear++
			if t.clear >= o.ClearWindows {
				t.to(StateResolved, now)
			}
		} else {
			t.clear = 0
		}
	}
}

func (t *alertTrack) fire(now time.Time) {
	t.to(StateFiring, now)
	t.fired++
}

func (t *alertTrack) to(s AlertState, now time.Time) {
	if t.state == s {
		return
	}
	t.state = s
	t.since = now
	t.hold = 0
	t.clear = 0
	t.gauge.Set(int64(s))
	sloTransitions(t.obj.Name, s.String()).Inc()
}

// Alerts returns every non-inactive track, firing first, then pending,
// then resolved, each group sorted by objective and shard.
func (e *SLOEngine) Alerts() []Alert {
	e.mu.Lock()
	out := make([]Alert, 0, len(e.tracks))
	for _, t := range e.tracks {
		if t.state == StateInactive {
			continue
		}
		out = append(out, Alert{
			Objective: t.obj.Name,
			Bound:     t.obj.Bound(),
			Shard:     t.shard,
			State:     t.state,
			StateName: t.state.String(),
			BurnFast:  t.burnFast,
			BurnSlow:  t.burnSlow,
			SinceMs:   t.since.UnixMilli(),
			Fired:     t.fired,
		})
	}
	e.mu.Unlock()
	rank := func(s AlertState) int {
		switch s {
		case StateFiring:
			return 0
		case StatePending:
			return 1
		default:
			return 2
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if rank(out[i].State) != rank(out[j].State) {
			return rank(out[i].State) < rank(out[j].State)
		}
		if out[i].Objective != out[j].Objective {
			return out[i].Objective < out[j].Objective
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// Objectives returns the engine's (defaulted) objective list.
func (e *SLOEngine) Objectives() []Objective {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Objective(nil), e.objectives...)
}
