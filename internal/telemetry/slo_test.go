package telemetry

import (
	"testing"
	"time"
)

// latWindow builds a sealed window with good ops at ~1ms and bad ops at
// ~100ms for ClassGet.
func latWindow(seq uint64, startMs int64, good, bad int64) Window {
	var h hist
	for i := int64(0); i < good; i++ {
		h.observe(time.Millisecond)
	}
	for i := int64(0); i < bad; i++ {
		h.observe(100 * time.Millisecond)
	}
	w := Window{Seq: seq, StartMs: startMs, DurMs: 100}
	w.Ops[ClassGet] = good + bad
	w.Lat[ClassGet] = deltaHist(h.capture(), histCapture{})
	return w
}

func errWindow(seq uint64, startMs int64, ops, errs int64) Window {
	w := Window{Seq: seq, StartMs: startMs, DurMs: 100}
	w.Ops[ClassGet] = ops
	w.Errs[ClassGet] = errs
	return w
}

func getObjective() Objective {
	return Objective{
		Name: "get-p99", Class: ClassGet, Quantile: 0.99,
		Threshold: 10 * time.Millisecond,
		FastWindows: 2, SlowWindows: 4, BurnThreshold: 2,
		HoldWindows: 2, ClearWindows: 2,
	}
}

// feed appends w and evaluates the full series, as the aggregator does.
type sloHarness struct {
	e       *SLOEngine
	windows []Window
	now     time.Time
}

func newSLOHarness(obj Objective) *sloHarness {
	return &sloHarness{e: NewSLOEngine([]Objective{obj}), now: time.UnixMilli(0)}
}

func (h *sloHarness) feed(w Window) {
	h.windows = append(h.windows, w)
	h.now = h.now.Add(100 * time.Millisecond)
	h.e.Evaluate("s0", h.windows, h.now)
}

func (h *sloHarness) state() AlertState {
	for _, a := range h.e.Alerts() {
		return a.State
	}
	return StateInactive
}

func TestSLOLifecyclePendingFiringResolved(t *testing.T) {
	h := newSLOHarness(getObjective())
	start := int64(0)
	seq := uint64(0)
	next := func(good, bad int64) Window {
		seq++
		start += 100
		return latWindow(seq, start, good, bad)
	}

	// Healthy baseline: everything at 1ms.
	for i := 0; i < 4; i++ {
		h.feed(next(100, 0))
		if got := h.state(); got != StateInactive {
			t.Fatalf("healthy baseline produced %v", got)
		}
	}
	// Regression: half the ops over threshold → burn = 0.5/0.01 = 50.
	h.feed(next(50, 50))
	if got := h.state(); got != StatePending {
		t.Fatalf("after 1 burning window: %v, want pending", got)
	}
	h.feed(next(50, 50))
	if got := h.state(); got != StateFiring {
		t.Fatalf("after HoldWindows burning windows: %v, want firing", got)
	}
	// Still burning: stays firing, no re-fire.
	h.feed(next(50, 50))
	if got := h.state(); got != StateFiring {
		t.Fatalf("sustained burn: %v", got)
	}
	// Recovery. Slow window (4) still contains bad history at first; the
	// clear counter must only start once both horizons are clear.
	for i := 0; i < 6; i++ {
		h.feed(next(100, 0))
	}
	if got := h.state(); got != StateResolved {
		t.Fatalf("after recovery: %v, want resolved", got)
	}
	alerts := h.e.Alerts()
	if len(alerts) != 1 || alerts[0].Fired != 1 {
		t.Fatalf("fired count = %+v, want exactly one firing transition", alerts)
	}
	// Retires to inactive after staying clear.
	for i := 0; i < 6; i++ {
		h.feed(next(100, 0))
	}
	if got := h.state(); got != StateInactive {
		t.Fatalf("resolved alert never retired: %v", got)
	}
}

func TestSLOPendingCancelsWithoutFiring(t *testing.T) {
	// HoldWindows > FastWindows so a one-window blip goes pending but
	// slides out of the fast horizon before it can fire.
	obj := getObjective()
	obj.FastWindows = 1
	obj.HoldWindows = 3
	h := newSLOHarness(obj)
	h.feed(latWindow(1, 100, 100, 0))
	h.feed(latWindow(2, 200, 50, 50)) // one bad window → pending
	if got := h.state(); got != StatePending {
		t.Fatalf("state = %v", got)
	}
	for i := 0; i < 5; i++ {
		h.feed(latWindow(uint64(3+i), int64(300+100*i), 100, 0))
	}
	if got := h.state(); got != StateInactive {
		t.Fatalf("blip should cancel pending without firing: %v", got)
	}
	if alerts := h.e.Alerts(); len(alerts) != 0 {
		t.Fatalf("cancelled pending still listed: %+v", alerts)
	}
}

func TestSLOHysteresisDeadZone(t *testing.T) {
	// Burn oscillating inside the dead zone (between clear level 1.0 and
	// threshold 2.0) must not flap a firing alert.
	obj := getObjective()
	h := newSLOHarness(obj)
	seq, start := uint64(0), int64(0)
	next := func(good, bad int64) Window {
		seq++
		start += 100
		return latWindow(seq, start, good, bad)
	}
	// Drive to firing.
	h.feed(next(50, 50))
	h.feed(next(50, 50))
	if h.state() != StateFiring {
		t.Fatalf("setup: %v", h.state())
	}
	// Dead zone: burn ≈ 1.5 (1.5% bad / 1% budget) — neither burning nor
	// clear. Hold firing through many evaluations.
	for i := 0; i < 10; i++ {
		h.feed(next(985, 15))
		if got := h.state(); got != StateFiring {
			t.Fatalf("dead-zone eval %d flapped to %v", i, got)
		}
	}
	if alerts := h.e.Alerts(); alerts[0].Fired != 1 {
		t.Fatalf("fired %d times, want 1", alerts[0].Fired)
	}
}

func TestSLOAvailabilityObjective(t *testing.T) {
	obj := Objective{
		Name: "get-errors", Class: ClassGet, MaxErrRate: 0.01,
		FastWindows: 2, SlowWindows: 2, BurnThreshold: 2,
		HoldWindows: 1, ClearWindows: 1,
	}
	h := newSLOHarness(obj)
	h.feed(errWindow(1, 100, 1000, 0))
	if h.state() != StateInactive {
		t.Fatalf("clean window: %v", h.state())
	}
	// 10% errors → burn 10.
	h.feed(errWindow(2, 200, 1000, 100))
	h.feed(errWindow(3, 300, 1000, 100))
	if h.state() != StateFiring {
		t.Fatalf("error storm: %v", h.state())
	}
}

func TestSLOEvaluateIdempotentPerWindow(t *testing.T) {
	// Re-evaluating the same window series (as every heartbeat re-report
	// does) must not advance hold/clear counters.
	obj := getObjective()
	e := NewSLOEngine([]Objective{obj})
	windows := []Window{latWindow(1, 100, 50, 50)}
	now := time.UnixMilli(1000)
	for i := 0; i < 5; i++ {
		e.Evaluate("s0", windows, now.Add(time.Duration(i)*time.Millisecond))
	}
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].State != StatePending {
		t.Fatalf("re-evaluating one window fired: %+v", alerts)
	}
}

func TestSLOEmptyWindowsNoBurn(t *testing.T) {
	// Zero-traffic windows have burn 0: no alert from silence.
	h := newSLOHarness(getObjective())
	for i := 0; i < 6; i++ {
		h.feed(Window{Seq: uint64(i + 1), StartMs: int64(100 * (i + 1)), DurMs: 100})
	}
	if got := h.state(); got != StateInactive {
		t.Fatalf("empty windows alerted: %v", got)
	}
}

func TestObjectiveDefaults(t *testing.T) {
	o := Objective{Name: "x", Class: ClassGet, Threshold: time.Millisecond}.withDefaults()
	if o.Quantile != 0.99 || o.FastWindows != 3 || o.SlowWindows != 12 ||
		o.BurnThreshold != 2 || o.HoldWindows != 2 || o.ClearWindows != 3 {
		t.Fatalf("defaults: %+v", o)
	}
	if b := o.budget(); b < 0.0099 || b > 0.0101 {
		t.Fatalf("budget = %v", b)
	}
	av := Objective{Name: "y", Class: ClassGet, MaxErrRate: 0.05}.withDefaults()
	if av.budget() != 0.05 {
		t.Fatalf("availability budget = %v", av.budget())
	}
}
