package telemetry

import (
	"sort"
	"sync"
)

// Sketch is a SpaceSaving heavy-hitter summary (Metwally et al.): at most
// cap monitored keys; an unmonitored key evicts the current minimum and
// inherits its count as over-estimation error. Guarantees: every key with
// true frequency > N/cap is monitored, and a reported count overestimates
// the true count by at most its Err field (≤ N/cap), where N is the total
// weight touched. Memory is O(cap) regardless of keyspace size.
//
// Touch is mutex-guarded but allocation-free in steady state: lookups use
// the compiler's map[string(bytes)] optimization and eviction reuses the
// evicted slot, so the only allocation is the key copy when a brand-new
// key is admitted.
type Sketch struct {
	mu      sync.Mutex
	cap     int
	total   int64
	entries []sketchEntry
	index   map[string]int // key -> position in entries
}

type sketchEntry struct {
	key   string
	count int64
	err   int64 // over-estimation carried from the evicted minimum
}

// HotKey is one reported heavy hitter. Count overestimates the true
// frequency by at most Err.
type HotKey struct {
	Key   string `json:"key"`
	Count int64  `json:"count"`
	Err   int64  `json:"err,omitempty"`
}

// NewSketch returns a sketch monitoring at most cap keys.
func NewSketch(cap int) *Sketch {
	if cap < 1 {
		cap = 1
	}
	return &Sketch{
		cap:     cap,
		entries: make([]sketchEntry, 0, cap),
		index:   make(map[string]int, cap),
	}
}

// Touch credits key with weight w (samplers pass their sampling period so
// heavy hitters keep their relative mass).
func (s *Sketch) Touch(key []byte, w int64) {
	if w <= 0 {
		return
	}
	s.mu.Lock()
	s.total += w
	if i, ok := s.index[string(key)]; ok { // no alloc: map lookup by []byte
		s.entries[i].count += w
		s.mu.Unlock()
		return
	}
	if len(s.entries) < s.cap {
		s.entries = append(s.entries, sketchEntry{key: string(key), count: w})
		s.index[string(key)] = len(s.entries) - 1
		s.mu.Unlock()
		return
	}
	// Evict the minimum; the newcomer inherits its count as error.
	min := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].count < s.entries[min].count {
			min = i
		}
	}
	e := &s.entries[min]
	delete(s.index, e.key)
	e.err = e.count
	e.count += w
	e.key = string(key)
	s.index[e.key] = min
	s.mu.Unlock()
}

// Total returns the total weight touched.
func (s *Sketch) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// TopK returns the k largest monitored keys, count-descending.
func (s *Sketch) TopK(k int) []HotKey {
	s.mu.Lock()
	out := make([]HotKey, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, HotKey{Key: e.key, Count: e.count, Err: e.err})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// MergeHotKeys combines top-K lists from several sketches (e.g. the
// replicas of one shard) by summing counts per key and re-ranking. The
// result keeps SpaceSaving's error semantics per contributor (Err fields
// sum), but keys that fell outside some contributor's top-K undercount.
func MergeHotKeys(k int, lists ...[]HotKey) []HotKey {
	merged := make(map[string]HotKey)
	for _, list := range lists {
		for _, hk := range list {
			m := merged[hk.Key]
			m.Key = hk.Key
			m.Count += hk.Count
			m.Err += hk.Err
			merged[hk.Key] = m
		}
	}
	out := make([]HotKey, 0, len(merged))
	for _, hk := range merged {
		out = append(out, hk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
