package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"bespokv/internal/metrics"
)

// Aggregator is the coordinator-side collector: controlets push
// NodeSnapshots over the TelemetryReport RPC (riding the heartbeat
// connection), the aggregator keeps the latest snapshot per node, and all
// cluster views are merged on demand from those snapshots. Because each
// snapshot carries its full recent-window ring, re-reports are idempotent
// and a restarted coordinator repopulates within one report interval.
//
// Merge semantics: windows from a shard's replicas are binned by aligned
// start time (floor(start/width)*width); a window whose boundaries straddle
// a bin contributes wholly to the bin containing its start, smearing at
// most one window width. Cross-replica client-op sums never double-count
// because recorders classify internal replication traffic as ClassOther
// and datalets record only direct-path reads.
type Aggregator struct {
	opts AggregatorOptions
	slo  *SLOEngine

	mu    sync.Mutex
	nodes map[string]*nodeRec
}

// AggregatorOptions configures the collector.
type AggregatorOptions struct {
	// StaleAfter marks a node stale when no report arrived within it
	// (default 3s — several heartbeat intervals at production defaults).
	StaleAfter time.Duration
	// Objectives is the SLO policy (nil disables alerting).
	Objectives []Objective
	// TopK bounds hot-key lists in cluster views (default 10).
	TopK int
	// RateWindows is how many trailing sealed bins rate figures average
	// over (default 5).
	RateWindows int
	// Now overrides the clock (tests).
	Now func() time.Time
}

type nodeRec struct {
	snap       NodeSnapshot
	lastReport time.Time
	restarts   int
}

var (
	aggReports = metrics.Default.Counter("bespokv_telemetry_reports_total")
	aggNodes   = metrics.Default.Gauge("bespokv_telemetry_nodes")
)

// NewAggregator returns a collector enforcing opts.Objectives.
func NewAggregator(opts AggregatorOptions) *Aggregator {
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = 3 * time.Second
	}
	if opts.TopK <= 0 {
		opts.TopK = 10
	}
	if opts.RateWindows <= 0 {
		opts.RateWindows = 5
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Aggregator{
		opts:  opts,
		slo:   NewSLOEngine(opts.Objectives),
		nodes: map[string]*nodeRec{},
	}
}

// SLO exposes the engine (for /alertz).
func (a *Aggregator) SLO() *SLOEngine { return a.slo }

// Report ingests node snapshots and advances SLO evaluation. A BootID
// change marks a restart: the node's history simply restarts (cumulative
// totals come from the new boot only — merged rates are window deltas, so
// they never go negative across the reset).
func (a *Aggregator) Report(snaps ...NodeSnapshot) {
	now := a.opts.Now()
	a.mu.Lock()
	for _, s := range snaps {
		if s.Node == "" {
			continue
		}
		key := s.Node + "/" + s.Role
		rec := a.nodes[key]
		if rec == nil {
			rec = &nodeRec{}
			a.nodes[key] = rec
		} else if rec.snap.BootID != 0 && rec.snap.BootID != s.BootID {
			rec.restarts++
		}
		rec.snap = s
		rec.lastReport = now
		aggReports.Inc()
	}
	aggNodes.Set(int64(len(a.nodes)))
	views := a.mergeShardsLocked(now)
	a.mu.Unlock()
	for shard, v := range views {
		a.slo.Evaluate(shard, v.windows, now)
	}
}

// shardMerge is the internal merged view of one shard.
type shardMerge struct {
	windows []Window // merged bins, oldest first, sealed only
	nodes   []NodeSnapshot
}

// mergeShardsLocked bins every known node's windows per shard. Bins whose
// end is too recent for every replica to have reported into them (within
// half a window width of now) are excluded so the SLO engine never judges
// a half-merged bin.
func (a *Aggregator) mergeShardsLocked(now time.Time) map[string]*shardMerge {
	out := map[string]*shardMerge{}
	for _, rec := range a.nodes {
		s := rec.snap
		if s.Shard == "" {
			continue
		}
		m := out[s.Shard]
		if m == nil {
			m = &shardMerge{}
			out[s.Shard] = m
		}
		m.nodes = append(m.nodes, s)
	}
	for _, m := range out {
		bins := map[int64]*Window{}
		var width int64
		for _, s := range m.nodes {
			for _, w := range s.Windows {
				if w.DurMs <= 0 {
					continue
				}
				if width == 0 || w.DurMs < width {
					width = w.DurMs
				}
				start := w.StartMs - w.StartMs%w.DurMs
				b := bins[start]
				if b == nil {
					b = &Window{StartMs: start, DurMs: w.DurMs}
					bins[start] = b
				}
				for c := 0; c < int(ClassCount); c++ {
					b.Ops[c] += w.Ops[c]
					b.Errs[c] += w.Errs[c]
					b.Lat[c].Merge(w.Lat[c])
				}
			}
		}
		if width == 0 {
			continue
		}
		starts := make([]int64, 0, len(bins))
		cutoff := now.UnixMilli() - width/2
		for start := range bins {
			if start+bins[start].DurMs <= cutoff {
				starts = append(starts, start)
			}
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		for i, start := range starts {
			w := *bins[start]
			w.Seq = uint64(i + 1)
			m.windows = append(m.windows, w)
		}
	}
	return out
}

// NodeView is one node's row in the cluster view.
type NodeView struct {
	Node     string `json:"node"`
	Shard    string `json:"shard,omitempty"`
	Role     string `json:"role,omitempty"`
	Mode     string `json:"mode,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
	AgeMs    int64  `json:"age_ms"`
	Stale    bool   `json:"stale,omitempty"`
	Restarts int    `json:"restarts,omitempty"`
	TotalOps int64  `json:"total_ops"`
}

// ShardView is one shard's merged row, the unit `bespokv-cli top` sorts by.
type ShardView struct {
	Shard string   `json:"shard"`
	Mode  string   `json:"mode,omitempty"`
	Nodes []string `json:"nodes"`
	// OpsPerSec, ReadFrac and ErrPerSec average over the trailing
	// RateWindows merged bins.
	OpsPerSec float64 `json:"ops_per_sec"`
	ReadFrac  float64 `json:"read_frac"`
	ErrPerSec float64 `json:"err_per_sec"`
	// ClassRates is per-class ops/sec over the same horizon.
	ClassRates [ClassCount]float64 `json:"class_rates"`
	// P50Ms / P99Ms are per-class latency quantiles (ms) over the horizon;
	// 0 means no samples.
	P50Ms   [ClassCount]float64 `json:"p50_ms"`
	P99Ms   [ClassCount]float64 `json:"p99_ms"`
	HotKeys []HotKey            `json:"hot_keys,omitempty"`
}

// ClusterSnapshot is the cluster-wide view served at /clusterz.
type ClusterSnapshot struct {
	AtMs   int64       `json:"at_ms"`
	Shards []ShardView `json:"shards"` // sorted by OpsPerSec descending
	Nodes  []NodeView  `json:"nodes"`
	Alerts []Alert     `json:"alerts,omitempty"`
}

// Cluster merges the latest node snapshots into the cluster-wide view.
func (a *Aggregator) Cluster() ClusterSnapshot {
	now := a.opts.Now()
	a.mu.Lock()
	views := a.mergeShardsLocked(now)
	// Node views are built under the lock: a concurrent Report overwrites
	// rec.snap/lastReport in place, so rec pointers must not escape it.
	nodeViews := make([]NodeView, 0, len(a.nodes))
	for _, rec := range a.nodes {
		var totalOps int64
		for _, n := range rec.snap.TotalOps {
			totalOps += n
		}
		age := now.Sub(rec.lastReport)
		nodeViews = append(nodeViews, NodeView{
			Node:     rec.snap.Node,
			Shard:    rec.snap.Shard,
			Role:     rec.snap.Role,
			Mode:     rec.snap.Mode,
			Epoch:    rec.snap.Epoch,
			AgeMs:    age.Milliseconds(),
			Stale:    age > a.opts.StaleAfter,
			Restarts: rec.restarts,
			TotalOps: totalOps,
		})
	}
	a.mu.Unlock()

	snap := ClusterSnapshot{AtMs: now.UnixMilli(), Alerts: a.slo.Alerts()}
	for shard, m := range views {
		sv := ShardView{Shard: shard}
		lists := make([][]HotKey, 0, len(m.nodes))
		for _, ns := range m.nodes {
			sv.Nodes = append(sv.Nodes, ns.Node)
			if ns.Mode != "" {
				sv.Mode = ns.Mode
			}
			lists = append(lists, ns.HotKeys)
		}
		sort.Strings(sv.Nodes)
		sv.HotKeys = MergeHotKeys(a.opts.TopK, lists...)

		n := a.opts.RateWindows
		if n > len(m.windows) {
			n = len(m.windows)
		}
		var durMs, reads, total, errs int64
		var lat [ClassCount]HistSnapshot
		var classOps [ClassCount]int64
		for _, w := range m.windows[len(m.windows)-n:] {
			durMs += w.DurMs
			for c := Class(0); c < ClassCount; c++ {
				classOps[c] += w.Ops[c]
				total += w.Ops[c]
				errs += w.Errs[c]
				if c.Read() {
					reads += w.Ops[c]
				}
				lat[c].Merge(w.Lat[c])
			}
		}
		if durMs > 0 {
			secs := float64(durMs) / 1000
			sv.OpsPerSec = float64(total) / secs
			sv.ErrPerSec = float64(errs) / secs
			for c := Class(0); c < ClassCount; c++ {
				sv.ClassRates[c] = float64(classOps[c]) / secs
			}
		}
		if total > 0 {
			sv.ReadFrac = float64(reads) / float64(total)
		}
		for c := Class(0); c < ClassCount; c++ {
			if lat[c].Count > 0 {
				sv.P50Ms[c] = float64(lat[c].Quantile(0.50)) / float64(time.Millisecond)
				sv.P99Ms[c] = float64(lat[c].Quantile(0.99)) / float64(time.Millisecond)
			}
		}
		snap.Shards = append(snap.Shards, sv)
	}
	sort.Slice(snap.Shards, func(i, j int) bool {
		if snap.Shards[i].OpsPerSec != snap.Shards[j].OpsPerSec {
			return snap.Shards[i].OpsPerSec > snap.Shards[j].OpsPerSec
		}
		return snap.Shards[i].Shard < snap.Shards[j].Shard
	})

	snap.Nodes = nodeViews
	sort.Slice(snap.Nodes, func(i, j int) bool {
		if snap.Nodes[i].Node != snap.Nodes[j].Node {
			return snap.Nodes[i].Node < snap.Nodes[j].Node
		}
		return snap.Nodes[i].Role < snap.Nodes[j].Role
	})
	return snap
}

// Text renders the snapshot for terminals — the same output `bespokv-cli
// top` prints and /clusterz?format=text serves.
func (s ClusterSnapshot) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster @ %s\n", time.UnixMilli(s.AtMs).Format("15:04:05.000"))

	b.WriteString("\nSHARDS (by load)\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tMODE\tOPS/S\tERR/S\tREAD%\tGET p50/p99 ms\tPUT p50/p99 ms\tNODES")
	for _, sv := range s.Shards {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.1f\t%.0f\t%.2f/%.2f\t%.2f/%.2f\t%s\n",
			sv.Shard, sv.Mode, sv.OpsPerSec, sv.ErrPerSec, sv.ReadFrac*100,
			sv.P50Ms[ClassGet], sv.P99Ms[ClassGet],
			sv.P50Ms[ClassPut], sv.P99Ms[ClassPut],
			strings.Join(sv.Nodes, ","))
	}
	tw.Flush()

	b.WriteString("\nHOT KEYS\n")
	tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tKEY\tCOUNT\t±ERR")
	for _, sv := range s.Shards {
		for i, hk := range sv.HotKeys {
			if i >= 5 {
				break
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n", sv.Shard, hk.Key, hk.Count, hk.Err)
		}
	}
	tw.Flush()

	b.WriteString("\nALERTS\n")
	if len(s.Alerts) == 0 {
		b.WriteString("  none\n")
	} else {
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "STATE\tOBJECTIVE\tSHARD\tBURN fast/slow\tSINCE")
		for _, al := range s.Alerts {
			fmt.Fprintf(tw, "%s\t%s (%s)\t%s\t%.1f/%.1f\t%s\n",
				strings.ToUpper(al.StateName), al.Objective, al.Bound, al.Shard,
				al.BurnFast, al.BurnSlow, time.UnixMilli(al.SinceMs).Format("15:04:05"))
		}
		tw.Flush()
	}

	b.WriteString("\nNODES\n")
	tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tROLE\tSHARD\tEPOCH\tAGE ms\tOPS\tRESTARTS\tSTATE")
	for _, nv := range s.Nodes {
		state := "live"
		if nv.Stale {
			state = "STALE"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			nv.Node, nv.Role, nv.Shard, nv.Epoch, nv.AgeMs, nv.TotalOps, nv.Restarts, state)
	}
	tw.Flush()
	return b.String()
}
