// Package telemetry is the cluster's workload-introspection plane: per-shard
// op rates, read/write mix, key/value size and latency distributions recorded
// on the zero-alloc hot path at controlets and datalets, windowed into
// fixed-interval delta snapshots; a bounded-memory hot-key sketch; an SLO
// engine with multi-window burn-rate alerting; and a coordinator-side
// aggregator that merges node snapshots into a cluster-wide view served as
// /clusterz and rendered by `bespokv-cli top`. It is the signal source the
// workload autopilot (ROADMAP item 5) will act on.
//
// Recording contract: Record and Touch are safe for concurrent use and
// allocation-free in steady state (Touch allocates only when the sketch
// admits a brand-new key, which is bounded by the sketch capacity and the
// eviction rate). Roll, Snapshot and everything downstream are control-path.
package telemetry

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/wire"
)

// Class partitions operations for workload accounting. Client-entry ops get
// their own class; internal replication traffic (chain forwards, async
// propagation, recovery streams) collapses into ClassOther so shard-level
// rates never double-count a client op and its replication fan-out.
type Class uint8

const (
	ClassGet Class = iota
	ClassPut
	ClassDel
	ClassScan
	ClassMGet
	ClassMPut
	ClassDirectGet
	ClassOther
	// ClassCount sizes per-class arrays.
	ClassCount
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassGet:
		return "get"
	case ClassPut:
		return "put"
	case ClassDel:
		return "del"
	case ClassScan:
		return "scan"
	case ClassMGet:
		return "mget"
	case ClassMPut:
		return "mput"
	case ClassDirectGet:
		return "direct-get"
	default:
		return "other"
	}
}

// Read reports whether the class is a read for read/write-mix accounting.
func (c Class) Read() bool {
	switch c {
	case ClassGet, ClassScan, ClassMGet, ClassDirectGet:
		return true
	}
	return false
}

// Write reports whether the class is a client write.
func (c Class) Write() bool {
	return c == ClassPut || c == ClassDel || c == ClassMPut
}

// ClassOf maps a wire op to its accounting class. Internal ops (chain,
// repl, handoff, epoch leases, exports) map to ClassOther.
func ClassOf(op wire.Op) Class {
	switch op {
	case wire.OpGet:
		return ClassGet
	case wire.OpPut:
		return ClassPut
	case wire.OpDel:
		return ClassDel
	case wire.OpScan:
		return ClassScan
	case wire.OpMGet:
		return ClassMGet
	case wire.OpMPut:
		return ClassMPut
	case wire.OpDirectGet:
		return ClassDirectGet
	default:
		return ClassOther
	}
}

// Latency histogram layout: logarithmic µs buckets, 25 exponents
// (1µs .. ~17s) × 4 sub-buckets, so quantile resolution is ~25% — tight
// enough for burn-rate math against bucket-aligned thresholds while keeping
// a window capture at 100 int64s.
const (
	latExps    = 25
	latSubs    = 4
	latBuckets = latExps * latSubs
)

func latBucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	exp := bits.Len64(uint64(us)) - 1
	if exp >= latExps {
		exp = latExps - 1
	}
	base := int64(1) << exp
	sub := int((us - base) * latSubs / base)
	if sub >= latSubs {
		sub = latSubs - 1
	}
	return exp*latSubs + sub
}

// latBucketLower returns the inclusive lower bound of bucket b.
func latBucketLower(b int) time.Duration {
	exp := b / latSubs
	sub := b % latSubs
	base := int64(1) << exp
	return time.Duration(base+base*int64(sub)/latSubs) * time.Microsecond
}

// latBucketMid returns the midpoint of bucket b, used for quantiles.
func latBucketMid(b int) time.Duration {
	exp := b / latSubs
	sub := b % latSubs
	base := int64(1) << exp
	us := base + base*int64(sub)/latSubs + base/(2*latSubs)
	return time.Duration(us) * time.Microsecond
}

// Size histogram layout: one bucket per power of two, 1B .. 16MB+.
const sizeBuckets = 25

func sizeBucketOf(n int) int {
	if n < 1 {
		n = 1
	}
	b := bits.Len64(uint64(n)) - 1
	if b >= sizeBuckets {
		b = sizeBuckets - 1
	}
	return b
}

// hist is the live (hot-path) latency histogram: lock-free atomic buckets.
type hist struct {
	buckets [latBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
}

func (h *hist) observe(d time.Duration) {
	h.buckets[latBucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// histCapture is a plain-int64 copy of a hist, used for window deltas.
type histCapture struct {
	buckets [latBuckets]int64
	count   int64
	sum     int64
	max     int64
}

func (h *hist) capture() histCapture {
	var c histCapture
	for i := range h.buckets {
		c.buckets[i] = h.buckets[i].Load()
	}
	c.count = h.count.Load()
	c.sum = h.sum.Load()
	c.max = h.max.Load()
	return c
}

// HistSnapshot is the wire form of a histogram (cumulative or window
// delta): sparse [bucket, count] pairs sorted by bucket index.
type HistSnapshot struct {
	Count   int64      `json:"count,omitempty"`
	SumNs   int64      `json:"sum_ns,omitempty"`
	MaxNs   int64      `json:"max_ns,omitempty"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// delta builds the sparse snapshot of cur - prev.
func deltaHist(cur, prev histCapture) HistSnapshot {
	s := HistSnapshot{
		Count: cur.count - prev.count,
		SumNs: cur.sum - prev.sum,
		MaxNs: cur.max, // max is cumulative; good enough for window display
	}
	for i := range cur.buckets {
		if d := cur.buckets[i] - prev.buckets[i]; d != 0 {
			s.Buckets = append(s.Buckets, [2]int64{int64(i), d})
		}
	}
	return s
}

// Merge adds o into h (bucket-wise).
func (h *HistSnapshot) Merge(o HistSnapshot) {
	h.Count += o.Count
	h.SumNs += o.SumNs
	if o.MaxNs > h.MaxNs {
		h.MaxNs = o.MaxNs
	}
	if len(o.Buckets) == 0 {
		return
	}
	merged := make(map[int64]int64, len(h.Buckets)+len(o.Buckets))
	for _, b := range h.Buckets {
		merged[b[0]] += b[1]
	}
	for _, b := range o.Buckets {
		merged[b[0]] += b[1]
	}
	h.Buckets = h.Buckets[:0]
	for i := int64(0); i < latBuckets; i++ {
		if n := merged[i]; n != 0 {
			h.Buckets = append(h.Buckets, [2]int64{i, n})
		}
	}
}

// Quantile returns the approximate q-quantile (q clamped to (0,1]).
func (h HistSnapshot) Quantile(q float64) time.Duration {
	total := int64(0)
	for _, b := range h.Buckets {
		total += b[1]
	}
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(h.MaxNs)
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b[1]
		if cum >= target {
			return latBucketMid(int(b[0]))
		}
	}
	return time.Duration(h.MaxNs)
}

// Mean returns the average of the captured observations.
func (h HistSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNs / h.Count)
}

// CountAbove returns how many observations fell in buckets whose lower
// bound is at or above d — the burn-rate "bad event" count. Resolution is
// one sub-bucket (~25%); choose SLO thresholds accordingly.
func (h HistSnapshot) CountAbove(d time.Duration) int64 {
	var n int64
	for _, b := range h.Buckets {
		if latBucketLower(int(b[0])) >= d {
			n += b[1]
		}
	}
	return n
}

// Window is one sealed fixed-interval slice of a node's workload: per-class
// op/error deltas and latency-histogram deltas against the previous window.
type Window struct {
	// Seq increases by one per sealed window within a boot; a restart
	// resets it (and changes the snapshot's BootID).
	Seq     uint64 `json:"seq"`
	StartMs int64  `json:"start_ms"`
	DurMs   int64  `json:"dur_ms"`
	// Ops and Errs are per-class deltas for this window.
	Ops  [ClassCount]int64 `json:"ops"`
	Errs [ClassCount]int64 `json:"errs"`
	// Lat carries per-class latency deltas. Latency is sampled on the hot
	// path (see metrics.SampleLatency), so Lat counts are a uniform subset
	// of Ops; rates use Ops, distributions use Lat.
	Lat [ClassCount]HistSnapshot `json:"lat"`
}

// Empty reports whether the window recorded no operations at all.
func (w Window) Empty() bool {
	for _, n := range w.Ops {
		if n != 0 {
			return false
		}
	}
	return true
}

// Info identifies the reporting process for a snapshot; the recorder itself
// is identity-unaware so one implementation serves controlets and datalets.
type Info struct {
	Node  string `json:"node"`
	Shard string `json:"shard,omitempty"`
	Role  string `json:"role,omitempty"`
	Mode  string `json:"mode,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// NodeSnapshot is one node's report to the aggregator: identity, cumulative
// totals, recent sealed windows (delta-encoded), and the hot-key top-K.
type NodeSnapshot struct {
	Info
	// BootID changes when the process restarts; the aggregator uses it to
	// detect counter resets so cumulative totals never go "backwards".
	BootID uint64 `json:"boot_id"`
	AtMs   int64  `json:"at_ms"`
	// IntervalMs is the window width this recorder seals at.
	IntervalMs int64 `json:"interval_ms"`
	// TotalOps and TotalErrs are cumulative since boot.
	TotalOps  [ClassCount]int64 `json:"total_ops"`
	TotalErrs [ClassCount]int64 `json:"total_errs"`
	// KeySizes and ValSizes are cumulative power-of-two byte-size counts
	// (bucket i covers [2^i, 2^(i+1)) bytes).
	KeySizes [sizeBuckets]int64 `json:"key_sizes"`
	ValSizes [sizeBuckets]int64 `json:"val_sizes"`
	// Windows are the most recent sealed windows, oldest first.
	Windows []Window `json:"windows,omitempty"`
	// HotKeys is the sketch's current top-K.
	HotKeys []HotKey `json:"hot_keys,omitempty"`
}

// maxWindows bounds the sealed-window ring (and therefore how much history
// one snapshot re-sends; resending is idempotent — the aggregator keeps only
// the latest snapshot per node and merges on demand).
const maxWindows = 16

var bootSeq atomic.Uint64

func newBootID() uint64 {
	return uint64(time.Now().UnixNano())<<8 | (bootSeq.Add(1) & 0xff)
}

// Options configures a Recorder.
type Options struct {
	// Interval is the window width (default 1s).
	Interval time.Duration
	// SketchCap bounds the hot-key sketch (default 64 entries).
	SketchCap int
	// SketchSample touches the sketch for 1-in-N recorded keys, with
	// weight N, to keep mutex pressure off the hot path (default 4;
	// tests use 1 for exact counts).
	SketchSample int
	// BootID overrides the generated boot identity (tests).
	BootID uint64
	// Start anchors the first window (default time.Now at construction).
	Start time.Time
}

// Recorder accumulates one process's workload stats. Record and Touch are
// the hot path; Roll and Snapshot are control-path.
type Recorder struct {
	interval time.Duration
	bootID   uint64
	sketch   *Sketch
	sampleN  uint32
	tick     atomic.Uint32

	ops  [ClassCount]atomic.Int64
	errs [ClassCount]atomic.Int64
	lat  [ClassCount]hist

	keySizes [sizeBuckets]atomic.Int64
	valSizes [sizeBuckets]atomic.Int64

	mu       sync.Mutex
	seq      uint64
	winStart time.Time
	prev     [ClassCount]histCapture
	prevOps  [ClassCount]int64
	prevErrs [ClassCount]int64
	windows  []Window
}

// NewRecorder returns a recorder sealing windows every opts.Interval.
func NewRecorder(opts Options) *Recorder {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.SketchCap <= 0 {
		opts.SketchCap = 64
	}
	if opts.SketchSample <= 0 {
		opts.SketchSample = 4
	}
	if opts.BootID == 0 {
		opts.BootID = newBootID()
	}
	if opts.Start.IsZero() {
		opts.Start = time.Now()
	}
	return &Recorder{
		interval: opts.Interval,
		bootID:   opts.BootID,
		sketch:   NewSketch(opts.SketchCap),
		sampleN:  uint32(opts.SketchSample),
		winStart: opts.Start,
	}
}

// Interval returns the window width.
func (r *Recorder) Interval() time.Duration { return r.interval }

// Record accounts one operation: class counters always; key/value sizes
// when the lengths are >= 0; latency when d >= 0 (callers pass -1 for
// unsampled ops, mirroring the metrics latency-sampling contract).
func (r *Recorder) Record(class Class, keyLen, valLen int, d time.Duration, isErr bool) {
	if class >= ClassCount {
		class = ClassOther
	}
	r.ops[class].Add(1)
	if isErr {
		r.errs[class].Add(1)
	}
	if keyLen >= 0 {
		r.keySizes[sizeBucketOf(keyLen)].Add(1)
	}
	if valLen >= 0 {
		r.valSizes[sizeBucketOf(valLen)].Add(1)
	}
	if d >= 0 {
		r.lat[class].observe(d)
	}
}

// RecordKV accounts one key/value pair's sizes without counting an op —
// multi-op frames call Record once for the frame and RecordKV per pair.
func (r *Recorder) RecordKV(keyLen, valLen int) {
	if keyLen >= 0 {
		r.keySizes[sizeBucketOf(keyLen)].Add(1)
	}
	if valLen >= 0 {
		r.valSizes[sizeBucketOf(valLen)].Add(1)
	}
}

// Touch feeds one key access into the hot-key sketch, sampled 1-in-N with
// weight N so heavy hitters keep their relative mass.
func (r *Recorder) Touch(key []byte) {
	n := r.sampleN
	if n > 1 && r.tick.Add(1)%n != 0 {
		return
	}
	r.sketch.Touch(key, int64(n))
}

// Roll seals every window whose interval has fully elapsed by now. Deltas
// are computed against the previous capture, so ops during an idle gap that
// skipped ahead land in the first window sealed after the gap.
func (r *Recorder) Roll(now time.Time) {
	r.mu.Lock()
	r.rollLocked(now)
	r.mu.Unlock()
}

func (r *Recorder) rollLocked(now time.Time) {
	// Fast-forward across long idle gaps: seal at most maxWindows windows
	// per roll, dropping the unobserved span (its deltas are zero anyway).
	if behind := now.Sub(r.winStart); behind > time.Duration(maxWindows+1)*r.interval {
		skip := (behind - time.Duration(maxWindows)*r.interval) / r.interval
		r.winStart = r.winStart.Add(skip * r.interval)
	}
	for !now.Before(r.winStart.Add(r.interval)) {
		w := Window{
			Seq:     r.seq + 1,
			StartMs: r.winStart.UnixMilli(),
			DurMs:   r.interval.Milliseconds(),
		}
		for c := 0; c < int(ClassCount); c++ {
			cur := r.lat[c].capture()
			w.Lat[c] = deltaHist(cur, r.prev[c])
			r.prev[c] = cur
			ops := r.ops[c].Load()
			errs := r.errs[c].Load()
			w.Ops[c] = ops - r.prevOps[c]
			w.Errs[c] = errs - r.prevErrs[c]
			r.prevOps[c] = ops
			r.prevErrs[c] = errs
		}
		r.seq++
		r.windows = append(r.windows, w)
		if len(r.windows) > maxWindows {
			r.windows = r.windows[len(r.windows)-maxWindows:]
		}
		r.winStart = r.winStart.Add(r.interval)
	}
}

// Snapshot rolls any elapsed windows and returns the node's report.
func (r *Recorder) Snapshot(now time.Time, info Info) NodeSnapshot {
	r.mu.Lock()
	r.rollLocked(now)
	snap := NodeSnapshot{
		Info:       info,
		BootID:     r.bootID,
		AtMs:       now.UnixMilli(),
		IntervalMs: r.interval.Milliseconds(),
		Windows:    append([]Window(nil), r.windows...),
	}
	r.mu.Unlock()
	for c := 0; c < int(ClassCount); c++ {
		snap.TotalOps[c] = r.ops[c].Load()
		snap.TotalErrs[c] = r.errs[c].Load()
	}
	for i := 0; i < sizeBuckets; i++ {
		snap.KeySizes[i] = r.keySizes[i].Load()
		snap.ValSizes[i] = r.valSizes[i].Load()
	}
	snap.HotKeys = r.sketch.TopK(16)
	return snap
}
