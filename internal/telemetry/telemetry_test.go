package telemetry

import (
	"fmt"
	"testing"
	"time"

	"bespokv/internal/wire"
)

func TestClassOf(t *testing.T) {
	cases := map[wire.Op]Class{
		wire.OpGet:       ClassGet,
		wire.OpPut:       ClassPut,
		wire.OpDel:       ClassDel,
		wire.OpScan:      ClassScan,
		wire.OpMGet:      ClassMGet,
		wire.OpMPut:      ClassMPut,
		wire.OpDirectGet: ClassDirectGet,
		wire.OpChainPut:  ClassOther,
		wire.OpReplPut:   ClassOther,
		wire.OpStats:     ClassOther,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
	if !ClassGet.Read() || ClassPut.Read() || !ClassPut.Write() || ClassGet.Write() {
		t.Fatal("read/write classification wrong")
	}
	if !ClassDirectGet.Read() {
		t.Fatal("direct-get must count as a read")
	}
}

func TestLatBuckets(t *testing.T) {
	for _, d := range []time.Duration{
		0, time.Microsecond, 3 * time.Microsecond, time.Millisecond,
		5 * time.Millisecond, time.Second, 20 * time.Second, time.Hour,
	} {
		b := latBucketOf(d)
		if b < 0 || b >= latBuckets {
			t.Fatalf("bucket %d out of range for %v", b, d)
		}
		lo := latBucketLower(b)
		if d >= time.Microsecond && d < 17*time.Second {
			if d < lo {
				t.Errorf("%v below its bucket lower bound %v", d, lo)
			}
		}
	}
	// Monotone lower bounds.
	for b := 1; b < latBuckets; b++ {
		if latBucketLower(b) < latBucketLower(b-1) {
			t.Fatalf("lower bounds not monotone at %d", b)
		}
	}
}

func TestHistSnapshotQuantileAndCountAbove(t *testing.T) {
	var h hist
	for i := 0; i < 90; i++ {
		h.observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(100 * time.Millisecond)
	}
	s := deltaHist(h.capture(), histCapture{})
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if q := s.Quantile(0.5); q < 500*time.Microsecond || q > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", q)
	}
	if q := s.Quantile(0.99); q < 50*time.Millisecond {
		t.Errorf("p99 = %v, want ~100ms", q)
	}
	if n := s.CountAbove(50 * time.Millisecond); n != 10 {
		t.Errorf("CountAbove(50ms) = %d, want 10", n)
	}
	if n := s.CountAbove(time.Microsecond); n != 100 {
		t.Errorf("CountAbove(1µs) = %d, want 100", n)
	}
	// Merge doubles every bucket.
	m := s
	m.Buckets = append([][2]int64(nil), s.Buckets...)
	m.Merge(s)
	if m.Count != 200 || m.CountAbove(50*time.Millisecond) != 20 {
		t.Errorf("merge: count=%d above=%d", m.Count, m.CountAbove(50*time.Millisecond))
	}
}

func TestRecorderWindows(t *testing.T) {
	start := time.UnixMilli(1_000_000)
	r := NewRecorder(Options{Interval: time.Second, SketchSample: 1, Start: start})

	r.Record(ClassGet, 8, 100, 2*time.Millisecond, false)
	r.Record(ClassGet, 8, 100, -1, false)
	r.Record(ClassPut, 8, 256, 5*time.Millisecond, true)

	// Nothing sealed before the interval elapses.
	snap := r.Snapshot(start.Add(500*time.Millisecond), Info{Node: "n1", Shard: "s0"})
	if len(snap.Windows) != 0 {
		t.Fatalf("windows sealed early: %d", len(snap.Windows))
	}
	if snap.TotalOps[ClassGet] != 2 || snap.TotalOps[ClassPut] != 1 || snap.TotalErrs[ClassPut] != 1 {
		t.Fatalf("totals wrong: %+v", snap.TotalOps)
	}

	// First window seals with the deltas.
	snap = r.Snapshot(start.Add(1100*time.Millisecond), Info{Node: "n1"})
	if len(snap.Windows) != 1 {
		t.Fatalf("want 1 window, got %d", len(snap.Windows))
	}
	w := snap.Windows[0]
	if w.Seq != 1 || w.StartMs != start.UnixMilli() || w.DurMs != 1000 {
		t.Fatalf("window meta: %+v", w)
	}
	if w.Ops[ClassGet] != 2 || w.Ops[ClassPut] != 1 || w.Errs[ClassPut] != 1 {
		t.Fatalf("window ops: %+v", w.Ops)
	}
	if w.Lat[ClassGet].Count != 1 { // only the sampled op carried latency
		t.Fatalf("lat count = %d", w.Lat[ClassGet].Count)
	}

	// An idle interval seals an empty window; deltas are all zero.
	snap = r.Snapshot(start.Add(2100*time.Millisecond), Info{Node: "n1"})
	if len(snap.Windows) != 2 {
		t.Fatalf("want 2 windows, got %d", len(snap.Windows))
	}
	if !snap.Windows[1].Empty() || snap.Windows[1].Seq != 2 {
		t.Fatalf("second window should be empty: %+v", snap.Windows[1])
	}

	// Ops in the third interval land in the third window only.
	r.Record(ClassGet, 8, 0, time.Millisecond, false)
	snap = r.Snapshot(start.Add(3100*time.Millisecond), Info{Node: "n1"})
	if got := snap.Windows[2].Ops[ClassGet]; got != 1 {
		t.Fatalf("third window get ops = %d", got)
	}
}

func TestRecorderIdleGapFastForward(t *testing.T) {
	start := time.UnixMilli(0)
	r := NewRecorder(Options{Interval: time.Second, Start: start})
	r.Record(ClassGet, 4, 4, time.Millisecond, false)
	// An hour of idleness must not seal 3600 windows.
	snap := r.Snapshot(start.Add(time.Hour), Info{Node: "n1"})
	if len(snap.Windows) > maxWindows {
		t.Fatalf("sealed %d windows across the gap", len(snap.Windows))
	}
	// The op before the gap is still accounted for in some sealed window.
	var total int64
	for _, w := range snap.Windows {
		total += w.Ops[ClassGet]
	}
	if total != 1 {
		t.Fatalf("op lost across the gap: %d", total)
	}
	if snap.TotalOps[ClassGet] != 1 {
		t.Fatalf("cumulative total wrong")
	}
}

func TestRecorderSeqAndBootID(t *testing.T) {
	start := time.UnixMilli(0)
	r1 := NewRecorder(Options{Interval: time.Second, Start: start})
	r2 := NewRecorder(Options{Interval: time.Second, Start: start})
	if r1.Snapshot(start, Info{}).BootID == r2.Snapshot(start, Info{}).BootID {
		t.Fatal("boot IDs must differ between recorder instances")
	}
	s := r1.Snapshot(start.Add(3500*time.Millisecond), Info{})
	for i, w := range s.Windows {
		if w.Seq != uint64(i+1) {
			t.Fatalf("seq not dense: %+v", s.Windows)
		}
	}
}

func TestRecordZeroAllocTelemetry(t *testing.T) {
	r := NewRecorder(Options{Interval: time.Hour, SketchSample: 1})
	key := []byte("warm-key")
	r.Touch(key) // admit the key so steady-state touches hit the map
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(ClassGet, 8, 128, 250*time.Microsecond, false)
	}); n != 0 {
		t.Fatalf("Record allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		r.Touch(key)
	}); n != 0 {
		t.Fatalf("Touch allocates %.1f/op on a warm key", n)
	}
}

func BenchmarkTelemetryRecord(b *testing.B) {
	r := NewRecorder(Options{Interval: time.Hour})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(ClassGet, 8, 128, 250*time.Microsecond, false)
		}
	})
}

func BenchmarkSketchTouch(b *testing.B) {
	r := NewRecorder(Options{Interval: time.Hour, SketchSample: 4})
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%02d", i))
		r.Touch(keys[i])
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r.Touch(keys[i&31])
			i++
		}
	})
}
