package telemetry

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestSketchExactWhenUnderCapacity(t *testing.T) {
	s := NewSketch(8)
	for i := 0; i < 5; i++ {
		s.Touch([]byte("a"), 1)
	}
	for i := 0; i < 3; i++ {
		s.Touch([]byte("b"), 1)
	}
	s.Touch([]byte("c"), 2) // weighted touch
	top := s.TopK(0)
	if len(top) != 3 {
		t.Fatalf("want 3 entries, got %d", len(top))
	}
	if top[0].Key != "a" || top[0].Count != 5 || top[0].Err != 0 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Key != "b" || top[1].Count != 3 {
		t.Fatalf("top[1] = %+v", top[1])
	}
	if top[2].Key != "c" || top[2].Count != 2 {
		t.Fatalf("top[2] = %+v", top[2])
	}
	if s.Total() != 10 {
		t.Fatalf("total = %d", s.Total())
	}
}

func TestSketchHeavyHitterGuarantee(t *testing.T) {
	// SpaceSaving guarantee: any key with true frequency > N/cap is
	// monitored, and reported counts overestimate by at most N/cap.
	const cap = 32
	s := NewSketch(cap)
	rng := rand.New(rand.NewSource(7))
	trueCount := map[string]int64{}
	var n int64
	touch := func(k string) {
		s.Touch([]byte(k), 1)
		trueCount[k]++
		n++
	}
	for i := 0; i < 20000; i++ {
		// 3 heavy keys get ~60% of traffic; the rest spreads over 2000.
		r := rng.Intn(100)
		switch {
		case r < 30:
			touch("hot-A")
		case r < 50:
			touch("hot-B")
		case r < 60:
			touch("hot-C")
		default:
			touch(fmt.Sprintf("cold-%04d", rng.Intn(2000)))
		}
	}
	bound := n / cap
	top := s.TopK(3)
	seen := map[string]HotKey{}
	for _, hk := range s.TopK(0) {
		seen[hk.Key] = hk
	}
	for _, hot := range []string{"hot-A", "hot-B", "hot-C"} {
		hk, ok := seen[hot]
		if !ok {
			t.Fatalf("heavy hitter %s evicted (true=%d bound=%d)", hot, trueCount[hot], bound)
		}
		if hk.Count < trueCount[hot] {
			t.Errorf("%s undercounted: %d < true %d", hot, hk.Count, trueCount[hot])
		}
		if hk.Count > trueCount[hot]+bound {
			t.Errorf("%s over error bound: %d > %d+%d", hot, hk.Count, trueCount[hot], bound)
		}
		if hk.Err > bound {
			t.Errorf("%s err %d exceeds bound %d", hot, hk.Err, bound)
		}
	}
	if top[0].Key != "hot-A" {
		t.Errorf("rank 1 = %s, want hot-A", top[0].Key)
	}
}

func TestSketchBoundedMemory(t *testing.T) {
	s := NewSketch(16)
	for i := 0; i < 10000; i++ {
		s.Touch([]byte(fmt.Sprintf("k%05d", i)), 1)
	}
	if got := len(s.TopK(0)); got != 16 {
		t.Fatalf("monitored %d keys, cap 16", got)
	}
	if len(s.index) != 16 {
		t.Fatalf("index holds %d keys", len(s.index))
	}
}

func TestMergeHotKeys(t *testing.T) {
	a := []HotKey{{Key: "x", Count: 10}, {Key: "y", Count: 5, Err: 1}}
	b := []HotKey{{Key: "y", Count: 7}, {Key: "z", Count: 6}}
	m := MergeHotKeys(2, a, b)
	if len(m) != 2 {
		t.Fatalf("len = %d", len(m))
	}
	if m[0].Key != "y" || m[0].Count != 12 || m[0].Err != 1 {
		t.Fatalf("m[0] = %+v", m[0])
	}
	if m[1].Key != "x" || m[1].Count != 10 {
		t.Fatalf("m[1] = %+v", m[1])
	}
}
