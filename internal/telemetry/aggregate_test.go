package telemetry

import (
	"strings"
	"testing"
	"time"
)

// testClock is a controllable Now for aggregator tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// nodeSnap builds a minimal snapshot for node/shard with the given sealed
// windows.
func nodeSnap(node, shard string, bootID uint64, windows ...Window) NodeSnapshot {
	s := NodeSnapshot{
		Info:       Info{Node: node, Shard: shard, Role: "controlet", Mode: "MS+SC"},
		BootID:     bootID,
		IntervalMs: 100,
		Windows:    windows,
	}
	for _, w := range windows {
		for c := 0; c < int(ClassCount); c++ {
			s.TotalOps[c] += w.Ops[c]
			s.TotalErrs[c] += w.Errs[c]
		}
	}
	return s
}

func getsWindow(seq uint64, startMs, gets int64) Window {
	w := Window{Seq: seq, StartMs: startMs, DurMs: 100}
	w.Ops[ClassGet] = gets
	return w
}

func TestAggregatorMergesReplicaWindows(t *testing.T) {
	clk := &testClock{t: time.UnixMilli(10_000)}
	a := NewAggregator(AggregatorOptions{Now: clk.now, StaleAfter: time.Second})

	// Two replicas of shard s0 with offset window starts that land in the
	// same aligned bins, plus a cold shard s1.
	a.Report(
		nodeSnap("n1", "s0", 1, getsWindow(1, 9_000, 300), getsWindow(2, 9_100, 300)),
		nodeSnap("n2", "s0", 2, getsWindow(1, 9_020, 100), getsWindow(2, 9_120, 100)),
		nodeSnap("n3", "s1", 3, getsWindow(1, 9_000, 10), getsWindow(2, 9_100, 10)),
	)
	snap := a.Cluster()
	if len(snap.Shards) != 2 {
		t.Fatalf("shards = %d", len(snap.Shards))
	}
	// Hot shard first.
	if snap.Shards[0].Shard != "s0" || snap.Shards[1].Shard != "s1" {
		t.Fatalf("not sorted by load: %s, %s", snap.Shards[0].Shard, snap.Shards[1].Shard)
	}
	// s0 merged: (300+100)*2 ops over 2 bins of 100ms → 4000 ops/s.
	if got := snap.Shards[0].OpsPerSec; got < 3900 || got > 4100 {
		t.Fatalf("s0 ops/s = %v", got)
	}
	if got := snap.Shards[0].ReadFrac; got != 1 {
		t.Fatalf("read frac = %v", got)
	}
	if len(snap.Shards[0].Nodes) != 2 {
		t.Fatalf("s0 nodes = %v", snap.Shards[0].Nodes)
	}
}

func TestAggregatorStaleNode(t *testing.T) {
	clk := &testClock{t: time.UnixMilli(0)}
	a := NewAggregator(AggregatorOptions{Now: clk.now, StaleAfter: 500 * time.Millisecond})
	a.Report(nodeSnap("n1", "s0", 1))
	a.Report(nodeSnap("n2", "s0", 2))
	clk.advance(300 * time.Millisecond)
	a.Report(nodeSnap("n2", "s0", 2)) // n2 keeps reporting, n1 goes quiet
	clk.advance(300 * time.Millisecond)
	snap := a.Cluster()
	byNode := map[string]NodeView{}
	for _, nv := range snap.Nodes {
		byNode[nv.Node] = nv
	}
	if !byNode["n1"].Stale {
		t.Fatalf("n1 should be stale: %+v", byNode["n1"])
	}
	if byNode["n2"].Stale {
		t.Fatalf("n2 should be live: %+v", byNode["n2"])
	}
	if !strings.Contains(snap.Text(), "STALE") {
		t.Fatal("text rendering does not flag the stale node")
	}
}

func TestAggregatorCounterResetOnRestart(t *testing.T) {
	clk := &testClock{t: time.UnixMilli(10_000)}
	a := NewAggregator(AggregatorOptions{Now: clk.now})

	a.Report(nodeSnap("n1", "s0", 111, getsWindow(5, 9_000, 500), getsWindow(6, 9_100, 500)))
	clk.advance(time.Second)
	// Restart: new boot ID, seq restarts at 1, cumulative totals drop.
	a.Report(nodeSnap("n1", "s0", 222, getsWindow(1, 10_500, 50)))
	snap := a.Cluster()
	var nv NodeView
	for _, n := range snap.Nodes {
		if n.Node == "n1" {
			nv = n
		}
	}
	if nv.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", nv.Restarts)
	}
	if nv.TotalOps != 50 {
		t.Fatalf("totals after reset = %d, want post-boot 50", nv.TotalOps)
	}
	// Rates come from window deltas only: never negative despite the drop.
	for _, sv := range snap.Shards {
		if sv.OpsPerSec < 0 || sv.ErrPerSec < 0 {
			t.Fatalf("negative rate after counter reset: %+v", sv)
		}
	}
}

func TestAggregatorExcludesHalfMergedBin(t *testing.T) {
	// A bin whose end is within half a window of now may still be missing
	// replica contributions and must not reach the SLO engine or rates.
	clk := &testClock{t: time.UnixMilli(10_050)}
	a := NewAggregator(AggregatorOptions{Now: clk.now, RateWindows: 1})
	a.Report(nodeSnap("n1", "s0", 1,
		getsWindow(1, 9_900, 100),  // sealed: end 10_000 <= 10_050-50
		getsWindow(2, 10_000, 900), // too fresh: end 10_100 > 10_000
	))
	snap := a.Cluster()
	if len(snap.Shards) != 1 {
		t.Fatalf("shards = %d", len(snap.Shards))
	}
	// Rate must reflect the sealed bin (1000 ops/s), not the fresh one.
	if got := snap.Shards[0].OpsPerSec; got < 900 || got > 1100 {
		t.Fatalf("ops/s = %v, want ~1000 from the sealed bin only", got)
	}
}

func TestAggregatorHotKeysMergedAcrossReplicas(t *testing.T) {
	clk := &testClock{t: time.UnixMilli(10_000)}
	a := NewAggregator(AggregatorOptions{Now: clk.now, TopK: 3})
	s1 := nodeSnap("n1", "s0", 1, getsWindow(1, 9_000, 10))
	s1.HotKeys = []HotKey{{Key: "k-hot", Count: 100}, {Key: "k-warm", Count: 20}}
	s2 := nodeSnap("n2", "s0", 2, getsWindow(1, 9_000, 10))
	s2.HotKeys = []HotKey{{Key: "k-hot", Count: 80}, {Key: "k-cool", Count: 10}}
	a.Report(s1, s2)
	snap := a.Cluster()
	hk := snap.Shards[0].HotKeys
	if len(hk) != 3 || hk[0].Key != "k-hot" || hk[0].Count != 180 {
		t.Fatalf("merged hot keys: %+v", hk)
	}
}

func TestAggregatorDrivesSLO(t *testing.T) {
	clk := &testClock{t: time.UnixMilli(1_000)}
	a := NewAggregator(AggregatorOptions{
		Now: clk.now,
		Objectives: []Objective{{
			Name: "get-p99", Class: ClassGet, Threshold: 10 * time.Millisecond,
			FastWindows: 2, SlowWindows: 2, BurnThreshold: 2,
			HoldWindows: 1, ClearWindows: 1,
		}},
	})
	// Two bad windows, well sealed in the past.
	a.Report(nodeSnap("n1", "s0", 1,
		latWindow(1, 500, 50, 50),
		latWindow(2, 600, 50, 50),
	))
	snap := a.Cluster()
	if len(snap.Alerts) != 1 || snap.Alerts[0].State != StateFiring {
		t.Fatalf("alerts = %+v, want firing", snap.Alerts)
	}
	if !strings.Contains(snap.Text(), "FIRING") {
		t.Fatal("text rendering missing the firing alert")
	}
}

func TestClusterSnapshotTextSmoke(t *testing.T) {
	var s ClusterSnapshot
	out := s.Text()
	for _, want := range []string{"SHARDS", "HOT KEYS", "ALERTS", "NODES", "none"} {
		if !strings.Contains(out, want) {
			t.Fatalf("empty snapshot text missing %q:\n%s", want, out)
		}
	}
}
