// Package backup dumps and restores a bespokv cluster's full contents —
// the operational tooling a production store needs around the paper's
// framework. Dump streams every shard's tables from one read replica per
// shard (Export), writing a self-describing, CRC-checked file; Restore
// replays a dump through the client API into any cluster (the target's
// sharding may differ — keys re-route).
package backup

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"bespokv/internal/client"
	"bespokv/internal/coordinator"
	"bespokv/internal/datalet"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

const (
	magic   = "BKVDUMP1"
	recPair = 1
	recEnd  = 2
)

// Stats summarizes a dump or restore.
type Stats struct {
	Tables int
	Pairs  int
	Bytes  int64
}

// Dump writes the cluster's contents to w. It consults the coordinator for
// the current map and exports each shard from its read tail's datalet.
func Dump(network transport.Network, coordinatorAddr string, w io.Writer) (Stats, error) {
	coord, err := coordinator.DialCoordinator(network, coordinatorAddr)
	if err != nil {
		return Stats{}, err
	}
	defer coord.Close()
	m, err := coord.GetMap()
	if err != nil {
		return Stats{}, err
	}
	return DumpMap(network, m, w)
}

// DumpMap dumps using an explicit cluster map (coordinator-less setups).
func DumpMap(network transport.Network, m *topology.Map, w io.Writer) (Stats, error) {
	var stats Stats
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return stats, err
	}
	count := func(n int) { stats.Bytes += int64(n) }
	count(len(magic))

	tablesSeen := map[string]bool{}
	for _, shard := range m.Shards {
		src := shard.ReadTail()
		codecName := src.DataletCodec
		if codecName == "" {
			codecName = "binary"
		}
		codec, err := wire.LookupCodec(codecName)
		if err != nil {
			return stats, err
		}
		cli, err := datalet.Dial(network, src.DataletAddr, codec)
		if err != nil {
			return stats, fmt.Errorf("backup: dial %s: %w", src.ID, err)
		}
		var resp wire.Response
		if err := cli.Do(&wire.Request{Op: wire.OpStats}, &resp); err != nil {
			cli.Close()
			return stats, err
		}
		var tables []string
		for _, p := range resp.Pairs {
			tables = append(tables, string(p.Key))
		}
		sort.Strings(tables)
		for _, table := range tables {
			if !tablesSeen[table] {
				tablesSeen[table] = true
				stats.Tables++
			}
			err := cli.Export(table, func(kv wire.KV) error {
				n, err := writePair(bw, table, kv)
				if err != nil {
					return err
				}
				count(n)
				stats.Pairs++
				return nil
			})
			if err != nil {
				cli.Close()
				return stats, fmt.Errorf("backup: export shard %s table %q: %w", shard.ID, table, err)
			}
		}
		cli.Close()
	}
	if err := writeEnd(bw, stats.Pairs); err != nil {
		return stats, err
	}
	return stats, bw.Flush()
}

func writePair(w *bufio.Writer, table string, kv wire.KV) (int, error) {
	body := make([]byte, 0, 16+len(table)+len(kv.Key)+len(kv.Value))
	body = append(body, recPair)
	body = binary.AppendUvarint(body, uint64(len(table)))
	body = append(body, table...)
	body = binary.AppendUvarint(body, uint64(len(kv.Key)))
	body = append(body, kv.Key...)
	body = binary.AppendUvarint(body, uint64(len(kv.Value)))
	body = append(body, kv.Value...)
	body = binary.AppendUvarint(body, kv.Version)
	return writeFrame(w, body)
}

func writeEnd(w *bufio.Writer, pairs int) error {
	body := make([]byte, 0, 12)
	body = append(body, recEnd)
	body = binary.AppendUvarint(body, uint64(pairs))
	_, err := writeFrame(w, body)
	return err
}

func writeFrame(w *bufio.Writer, body []byte) (int, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return len(body) + 8, nil
}

// Pair is one restored record handed to the sink.
type Pair struct {
	Table   string
	Key     []byte
	Value   []byte
	Version uint64
}

// Read parses a dump, invoking fn per pair, and verifies the trailer.
func Read(r io.Reader, fn func(Pair) error) (Stats, error) {
	var stats Stats
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return stats, err
	}
	if string(head) != magic {
		return stats, errors.New("backup: not a bespokv dump")
	}
	tablesSeen := map[string]bool{}
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return stats, fmt.Errorf("backup: truncated dump (missing trailer): %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return stats, err
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			return stats, errors.New("backup: corrupt record (CRC mismatch)")
		}
		if len(body) == 0 {
			return stats, errors.New("backup: empty record")
		}
		switch body[0] {
		case recEnd:
			declared, _ := binary.Uvarint(body[1:])
			if int(declared) != stats.Pairs {
				return stats, fmt.Errorf("backup: trailer declares %d pairs, read %d", declared, stats.Pairs)
			}
			return stats, nil
		case recPair:
			p, err := decodePair(body[1:])
			if err != nil {
				return stats, err
			}
			if !tablesSeen[p.Table] {
				tablesSeen[p.Table] = true
				stats.Tables++
			}
			stats.Pairs++
			if err := fn(p); err != nil {
				return stats, err
			}
		default:
			return stats, fmt.Errorf("backup: unknown record type %d", body[0])
		}
	}
}

func decodePair(b []byte) (Pair, error) {
	var p Pair
	take := func() ([]byte, error) {
		n, w := binary.Uvarint(b)
		if w <= 0 || n > uint64(len(b)-w) {
			return nil, errors.New("backup: corrupt pair")
		}
		out := b[w : w+int(n)]
		b = b[w+int(n):]
		return out, nil
	}
	table, err := take()
	if err != nil {
		return p, err
	}
	p.Table = string(table)
	if p.Key, err = take(); err != nil {
		return p, err
	}
	p.Key = append([]byte(nil), p.Key...)
	if p.Value, err = take(); err != nil {
		return p, err
	}
	p.Value = append([]byte(nil), p.Value...)
	ver, w := binary.Uvarint(b)
	if w <= 0 {
		return p, errors.New("backup: corrupt version")
	}
	p.Version = ver
	return p, nil
}

// Restore replays a dump into the cluster behind cli. Tables are created
// as encountered; pairs are written with fresh versions (a restore is a
// new write from the target cluster's point of view).
func Restore(cli *client.Client, r io.Reader) (Stats, error) {
	created := map[string]bool{"": true}
	return Read(r, func(p Pair) error {
		if !created[p.Table] {
			if err := cli.CreateTable(p.Table); err != nil {
				return err
			}
			created[p.Table] = true
		}
		return cli.Put(p.Table, p.Key, p.Value)
	})
}
