package backup

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bespokv/internal/cluster"
	"bespokv/internal/topology"
)

func startCluster(t *testing.T, opts cluster.Options) *cluster.Cluster {
	t.Helper()
	opts.Logf = t.Logf
	c, err := cluster.Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestDumpAndRestoreRoundtrip(t *testing.T) {
	src := startCluster(t, cluster.Options{
		Shards:          2,
		Replicas:        3,
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		DisableFailover: true,
	})
	cli, err := src.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.CreateTable("jobs"); err != nil {
		t.Fatal(err)
	}
	const n = 120
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := cli.Put("jobs", k, []byte("running")); err != nil {
				t.Fatal(err)
			}
		}
	}

	var dump bytes.Buffer
	stats, err := Dump(src.Net, src.Coord.Addr(), &dump)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != n+n/3 {
		t.Fatalf("dumped %d pairs, want %d", stats.Pairs, n+n/3)
	}
	if stats.Tables != 2 {
		t.Fatalf("dumped %d tables, want 2", stats.Tables)
	}

	// Restore into a DIFFERENT cluster shape (3 shards, other mode).
	dst := startCluster(t, cluster.Options{
		Shards:          3,
		Replicas:        2,
		Mode:            topology.Mode{Topology: topology.AA, Consistency: topology.Eventual},
		DisableFailover: true,
	})
	dcli, err := dst.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer dcli.Close()
	rstats, err := Restore(dcli, bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Pairs != stats.Pairs {
		t.Fatalf("restored %d pairs, want %d", rstats.Pairs, stats.Pairs)
	}
	// The destination runs AA+EC; reads converge eventually.
	poll := func(table string, k, want []byte) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			v, ok, err := dcli.Get(table, k)
			if err == nil && ok && bytes.Equal(v, want) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("restored Get(%s/%s) = (%q,%v,%v)", table, k, v, ok, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for i := 0; i < n; i += 11 {
		k := []byte(fmt.Sprintf("key-%04d", i))
		poll("", k, k)
	}
	poll("jobs", []byte("key-0003"), []byte("running"))
}

// TestRestoreTruncatedFinalRecord cuts a dump mid-way through its last
// pair record (trailer gone, final frame torn) and restores it: the restore
// must fail loudly — no silent partial apply — and report only the complete
// records it replayed before hitting the tear.
func TestRestoreTruncatedFinalRecord(t *testing.T) {
	src := startCluster(t, cluster.Options{Shards: 2, Replicas: 1, DisableFailover: true})
	cli, err := src.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 20
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("t-%03d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}
	var dump bytes.Buffer
	if _, err := Dump(src.Net, src.Coord.Addr(), &dump); err != nil {
		t.Fatal(err)
	}

	// The trailer frame is 8 bytes of header plus a 2-byte body (type +
	// 1-byte varint count for n < 128); cutting 3 bytes past it lands
	// inside the final pair record.
	raw := dump.Bytes()
	cut := raw[:len(raw)-10-3]

	dst := startCluster(t, cluster.Options{Shards: 3, Replicas: 1, DisableFailover: true})
	dcli, err := dst.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer dcli.Close()
	stats, err := Restore(dcli, bytes.NewReader(cut))
	if err == nil {
		t.Fatal("restore of a torn dump succeeded silently")
	}
	if stats.Pairs >= n {
		t.Fatalf("restore claims %d pairs applied from a dump torn before record %d", stats.Pairs, n)
	}
	t.Logf("torn restore applied %d/%d complete records, then failed: %v", stats.Pairs, n, err)
}

func TestReadRejectsCorruption(t *testing.T) {
	src := startCluster(t, cluster.Options{Shards: 1, Replicas: 1, DisableFailover: true})
	cli, err := src.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 10; i++ {
		cli.Put("", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	var dump bytes.Buffer
	if _, err := Dump(src.Net, src.Coord.Addr(), &dump); err != nil {
		t.Fatal(err)
	}

	// Truncated dump fails loudly.
	raw := dump.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5]), func(Pair) error { return nil }); err == nil {
		t.Fatal("truncated dump accepted")
	}
	// Bit flip in a record body fails the CRC.
	flipped := append([]byte(nil), raw...)
	flipped[len(magic)+12] ^= 0xff
	if _, err := Read(bytes.NewReader(flipped), func(Pair) error { return nil }); err == nil {
		t.Fatal("corrupt dump accepted")
	}
	// Wrong magic.
	if _, err := Read(bytes.NewReader([]byte("NOTADUMP")), func(Pair) error { return nil }); err == nil {
		t.Fatal("garbage accepted")
	}
}
