package rsm

import (
	"encoding/binary"
	"errors"
)

// Entry is one replicated log record. Data is the opaque state-machine
// command; an empty Data is the no-op a fresh leader appends to commit its
// term (never handed to the StateMachine).
type Entry struct {
	Term  uint64 `json:"t"`
	Index uint64 `json:"i"`
	Data  []byte `json:"d,omitempty"`
}

// Persistent records ride the WAL's CRC frames, tagged by a kind byte so
// one log carries entries, hard-state updates and suffix truncations in
// arrival order. Replay folds them back into (entries, term, votedFor).
const (
	recEntries   = 'E' // uvarint count, then count × entry
	recHardState = 'H' // uvarint term, uvarint len, votedFor bytes
	recTruncate  = 'T' // uvarint index: drop log entries at or beyond it
)

var errTruncated = errors.New("rsm: truncated record")

// appendEntry encodes one entry: uvarint term, uvarint index, uvarint
// data length, data.
func appendEntry(dst []byte, e Entry) []byte {
	dst = binary.AppendUvarint(dst, e.Term)
	dst = binary.AppendUvarint(dst, e.Index)
	dst = binary.AppendUvarint(dst, uint64(len(e.Data)))
	return append(dst, e.Data...)
}

// decodeEntry parses one entry from b, returning the remainder. The
// returned Data aliases b.
func decodeEntry(b []byte) (Entry, []byte, error) {
	var e Entry
	var n int
	if e.Term, n = binary.Uvarint(b); n <= 0 {
		return e, nil, errTruncated
	}
	b = b[n:]
	if e.Index, n = binary.Uvarint(b); n <= 0 {
		return e, nil, errTruncated
	}
	b = b[n:]
	dlen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < dlen {
		return e, nil, errTruncated
	}
	b = b[n:]
	if dlen > 0 {
		e.Data = b[:dlen:dlen]
	}
	return e, b[dlen:], nil
}

// EncodeEntries builds a recEntries WAL body for a batch.
func EncodeEntries(es []Entry) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, e := range es {
		size += 3*binary.MaxVarintLen64 + len(e.Data)
	}
	dst := make([]byte, 1, size)
	dst[0] = recEntries
	dst = binary.AppendUvarint(dst, uint64(len(es)))
	for _, e := range es {
		dst = appendEntry(dst, e)
	}
	return dst
}

// DecodeEntries parses a recEntries body (including the kind byte). Any
// truncation, trailing garbage, or count mismatch is an error.
func DecodeEntries(body []byte) ([]Entry, error) {
	if len(body) < 1 || body[0] != recEntries {
		return nil, errors.New("rsm: not an entries record")
	}
	b := body[1:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, errTruncated
	}
	b = b[n:]
	if count > uint64(len(b))+1 {
		// Each entry costs at least 3 bytes when empty — a count beyond
		// the body size is a corrupt or hostile header, not a real batch.
		return nil, errors.New("rsm: implausible entry count")
	}
	es := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e Entry
		var err error
		if e, b, err = decodeEntry(b); err != nil {
			return nil, err
		}
		es = append(es, e)
	}
	if len(b) != 0 {
		return nil, errors.New("rsm: trailing garbage in entries record")
	}
	return es, nil
}

// EncodeHardState builds a recHardState WAL body.
func EncodeHardState(term uint64, votedFor string) []byte {
	dst := make([]byte, 1, 1+2*binary.MaxVarintLen64+len(votedFor))
	dst[0] = recHardState
	dst = binary.AppendUvarint(dst, term)
	dst = binary.AppendUvarint(dst, uint64(len(votedFor)))
	return append(dst, votedFor...)
}

// DecodeHardState parses a recHardState body.
func DecodeHardState(body []byte) (term uint64, votedFor string, err error) {
	if len(body) < 1 || body[0] != recHardState {
		return 0, "", errors.New("rsm: not a hard-state record")
	}
	b := body[1:]
	var n int
	if term, n = binary.Uvarint(b); n <= 0 {
		return 0, "", errTruncated
	}
	b = b[n:]
	vlen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) != vlen {
		return 0, "", errTruncated
	}
	return term, string(b[n:]), nil
}

// EncodeTruncate builds a recTruncate WAL body: every log entry with
// index >= from is discarded (an AppendEntries conflict rollback).
func EncodeTruncate(from uint64) []byte {
	dst := make([]byte, 1, 1+binary.MaxVarintLen64)
	dst[0] = recTruncate
	return binary.AppendUvarint(dst, from)
}

// DecodeTruncate parses a recTruncate body.
func DecodeTruncate(body []byte) (uint64, error) {
	if len(body) < 1 || body[0] != recTruncate {
		return 0, errors.New("rsm: not a truncate record")
	}
	from, n := binary.Uvarint(body[1:])
	if n <= 0 || 1+n != len(body) {
		return 0, errTruncated
	}
	return from, nil
}

// SnapMeta identifies the log position a snapshot covers: the snapshot's
// state machine image includes every entry through Index (whose term is
// Term); the persistent log restarts after it.
type SnapMeta struct {
	Index uint64 `json:"index"`
	Term  uint64 `json:"term"`
}

// EncodeSnapMeta builds the snapshot meta frame.
func EncodeSnapMeta(m SnapMeta) []byte {
	dst := make([]byte, 0, 2*binary.MaxVarintLen64)
	dst = binary.AppendUvarint(dst, m.Index)
	return binary.AppendUvarint(dst, m.Term)
}

// DecodeSnapMeta parses a snapshot meta frame; trailing bytes are rejected
// so a torn or padded frame cannot silently alias a valid one.
func DecodeSnapMeta(body []byte) (SnapMeta, error) {
	var m SnapMeta
	idx, n := binary.Uvarint(body)
	if n <= 0 {
		return m, errTruncated
	}
	term, n2 := binary.Uvarint(body[n:])
	if n2 <= 0 || n+n2 != len(body) {
		return m, errTruncated
	}
	m.Index, m.Term = idx, term
	return m, nil
}
