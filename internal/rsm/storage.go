package rsm

import (
	"errors"
	"fmt"
	"os"

	"bespokv/internal/store/wal"
)

// snapName is the checkpoint file within the node's directory. The
// checkpoint is a complete durable image — state-machine snapshot, hard
// state, and the log tail above the snapshot index — so compaction can
// Reset the WAL without a window where a crash loses the un-snapshotted
// tail or the vote.
const snapName = "rsm.snap"

// storage is the node's durable state: a wal.Log of tagged records plus a
// checkpoint file, both through the pluggable wal.FS so faultfs crash and
// torn-write injection exercises the recovery paths. Not safe for
// concurrent use; the Node serialises access under its own mutex.
type storage struct {
	fs  wal.FS
	dir string
	log *wal.Log

	// Folded state after openStorage.
	term     uint64
	votedFor string
	snap     SnapMeta
	snapData []byte
	entries  []Entry // contiguous; entries[0].Index == snap.Index+1
}

// openStorage loads the checkpoint (if any), then folds the WAL on top of
// it. A corrupt checkpoint is fatal — unlike engine snapshots, the WAL was
// Reset when it was written, so there is no older state to fail open to.
func openStorage(fs wal.FS, dir string) (*storage, error) {
	if fs == nil {
		fs = wal.OSFS{}
	}
	st := &storage{fs: fs, dir: dir}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("rsm: mkdir %s: %w", dir, err)
	}
	var frames [][]byte
	err := wal.ReadSnapshotFile(fs, dir, snapName, func(body []byte) error {
		frames = append(frames, body)
		return nil
	})
	switch {
	case err == nil:
		if len(frames) != 4 {
			return nil, fmt.Errorf("rsm: checkpoint has %d frames: %w", len(frames), wal.ErrSnapshotCorrupt)
		}
		meta, err := DecodeSnapMeta(frames[0])
		if err != nil {
			return nil, fmt.Errorf("rsm: checkpoint meta: %w", err)
		}
		term, voted, err := DecodeHardState(frames[1])
		if err != nil {
			return nil, fmt.Errorf("rsm: checkpoint hard state: %w", err)
		}
		tail, err := DecodeEntries(frames[2])
		if err != nil {
			return nil, fmt.Errorf("rsm: checkpoint tail: %w", err)
		}
		st.snap = meta
		st.snapData = frames[3]
		st.term, st.votedFor = term, voted
		st.entries = tail
	case errors.Is(err, os.ErrNotExist):
		// Fresh node.
	default:
		return nil, err
	}
	l, err := wal.Open(wal.Options{Dir: dir, FS: fs})
	if err != nil {
		return nil, err
	}
	if err := l.Replay(st.fold); err != nil {
		l.Close()
		return nil, err
	}
	st.log = l
	return st, nil
}

// fold applies one WAL record to the in-memory state. Records are strictly
// chronological, so replaying the (possibly partially-Reset) WAL on top of
// a checkpoint converges on the newest state; the hard-state merge is
// monotonic as defense against a filesystem that drops a middle segment.
func (st *storage) fold(body []byte) error {
	if len(body) == 0 {
		return errors.New("rsm: empty wal record")
	}
	switch body[0] {
	case recHardState:
		t, v, err := DecodeHardState(body)
		if err != nil {
			return err
		}
		if t > st.term {
			st.term, st.votedFor = t, v
		} else if t == st.term && st.votedFor == "" {
			st.votedFor = v
		}
	case recTruncate:
		from, err := DecodeTruncate(body)
		if err != nil {
			return err
		}
		st.dropFrom(from)
	case recEntries:
		es, err := DecodeEntries(body)
		if err != nil {
			return err
		}
		for _, e := range es {
			if e.Index <= st.snap.Index {
				continue // already inside the checkpoint image
			}
			st.dropFrom(e.Index)
			if e.Index != st.lastIndex()+1 {
				return fmt.Errorf("rsm: log gap: entry %d after last %d", e.Index, st.lastIndex())
			}
			st.entries = append(st.entries, e)
		}
	default:
		return fmt.Errorf("rsm: unknown wal record kind %q", body[0])
	}
	return nil
}

// lastIndex is the highest log index present (snapshot base when empty).
func (st *storage) lastIndex() uint64 {
	return st.snap.Index + uint64(len(st.entries))
}

// termAt reports the term of index i; ok is false when i is compacted away
// (below the snapshot) or beyond the log.
func (st *storage) termAt(i uint64) (uint64, bool) {
	switch {
	case i == st.snap.Index:
		return st.snap.Term, true
	case i < st.snap.Index || i > st.lastIndex():
		return 0, false
	default:
		return st.entries[i-st.snap.Index-1].Term, true
	}
}

// entryAt returns the entry at index i, which must be in (snap, last].
func (st *storage) entryAt(i uint64) Entry {
	return st.entries[i-st.snap.Index-1]
}

// dropFrom discards in-memory entries with index >= from.
func (st *storage) dropFrom(from uint64) {
	if from <= st.snap.Index {
		from = st.snap.Index + 1
	}
	if from > st.lastIndex() {
		return
	}
	st.entries = st.entries[:from-st.snap.Index-1]
}

// append persists es (one fsynced record) and extends the in-memory log.
// es must be contiguous with the current tail.
func (st *storage) append(es []Entry) error {
	if len(es) == 0 {
		return nil
	}
	if _, err := st.log.Append(EncodeEntries(es)); err != nil {
		return err
	}
	st.entries = append(st.entries, es...)
	return nil
}

// truncateFrom persists a truncation marker and drops the suffix >= from.
func (st *storage) truncateFrom(from uint64) error {
	if _, err := st.log.Append(EncodeTruncate(from)); err != nil {
		return err
	}
	st.dropFrom(from)
	return nil
}

// saveHardState persists (term, votedFor) before it takes effect anywhere:
// a vote must survive a crash or the node could vote twice in one term.
func (st *storage) saveHardState(term uint64, votedFor string) error {
	if _, err := st.log.Append(EncodeHardState(term, votedFor)); err != nil {
		return err
	}
	st.term, st.votedFor = term, votedFor
	return nil
}

// checkpoint atomically writes the complete durable image (meta, SM data,
// hard state, log tail) and then Resets the WAL. Crash ordering: before
// the rename the old checkpoint + full WAL survive; after it the new
// checkpoint alone reconstructs everything, so a half-finished Reset only
// leaves redundant records that fold to the same state.
func (st *storage) checkpoint(meta SnapMeta, data []byte, tail []Entry) error {
	err := wal.WriteSnapshotFile(st.fs, st.dir, snapName, func(add func(body []byte) error) error {
		if err := add(EncodeSnapMeta(meta)); err != nil {
			return err
		}
		if err := add(EncodeHardState(st.term, st.votedFor)); err != nil {
			return err
		}
		if err := add(EncodeEntries(tail)); err != nil {
			return err
		}
		return add(data)
	})
	if err != nil {
		return err
	}
	if err := st.log.Reset(); err != nil {
		return err
	}
	st.snap = meta
	st.snapData = data
	st.entries = tail
	return nil
}

// compact checkpoints at meta.Index (which must be applied) keeping the
// tail above it, then drops the WAL.
func (st *storage) compact(meta SnapMeta, data []byte) error {
	var tail []Entry
	if n := st.lastIndex() - meta.Index; n > 0 {
		tail = append(make([]Entry, 0, n), st.entries[meta.Index-st.snap.Index:]...)
	}
	return st.checkpoint(meta, data, tail)
}

// install replaces all local state with a leader-shipped snapshot.
func (st *storage) install(meta SnapMeta, data []byte) error {
	return st.checkpoint(meta, data, nil)
}

func (st *storage) close() error {
	if st.log == nil {
		return nil
	}
	return st.log.Close()
}
