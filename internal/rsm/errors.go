package rsm

import (
	"errors"
	"strings"
)

// notLeaderPrefix is the leader-forwarding contract: rpc transports handler
// errors as bare strings, so clients on the far side of a Call recognise a
// redirect by this prefix and extract the hint after "leader=". Keep the
// format stable — coordinator, DLM, and sequencer clients all parse it.
const (
	notLeaderPrefix = "rsm: not leader"
	leaderHintMark  = "leader="
)

// NotLeaderError is returned by Propose (and by service front ends) on a
// non-leader member. LeaderAddr is a hint, possibly empty right after an
// election.
type NotLeaderError struct {
	LeaderID   string
	LeaderAddr string
}

func (e *NotLeaderError) Error() string {
	if e.LeaderAddr == "" {
		return notLeaderPrefix
	}
	return notLeaderPrefix + "; " + leaderHintMark + e.LeaderAddr
}

// IsNotLeader reports whether err is a leader redirect, including one that
// crossed an rpc boundary and arrived as a plain string error.
func IsNotLeader(err error) bool {
	if err == nil {
		return false
	}
	var nl *NotLeaderError
	if errors.As(err, &nl) {
		return true
	}
	return strings.Contains(err.Error(), notLeaderPrefix)
}

// LeaderHint extracts the redirect address from a not-leader error, or ""
// when the rejecting member did not know the leader.
func LeaderHint(err error) string {
	if err == nil {
		return ""
	}
	var nl *NotLeaderError
	if errors.As(err, &nl) {
		return nl.LeaderAddr
	}
	s := err.Error()
	i := strings.Index(s, leaderHintMark)
	if i < 0 {
		return ""
	}
	hint := s[i+len(leaderHintMark):]
	if j := strings.IndexAny(hint, " ;"); j >= 0 {
		hint = hint[:j]
	}
	return hint
}

var (
	// ErrStopped is returned by operations on a closed Node.
	ErrStopped = errors.New("rsm: node stopped")
	// ErrProposeTimeout means the command was appended but its commit was
	// not observed in time; it may still commit later, so callers must
	// treat the outcome as unknown (the same ambiguity any distributed
	// write has on timeout).
	ErrProposeTimeout = errors.New("rsm: propose timed out")
	// ErrLostLeadership means leadership changed before the proposed
	// command committed; like a timeout, the command may or may not
	// survive under the new leader.
	ErrLostLeadership = errors.New("rsm: leadership lost before commit")
)
