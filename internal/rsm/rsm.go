// Package rsm is a stdlib-only replicated state machine for the control
// plane: Raft-style leader election with randomized timeouts, log
// replication with commit-index advancement, and snapshot/compaction over
// the same CRC-framed wal.FS storage the datalets use (so faultfs crash
// and torn-write injection applies). The coordinator's shard map, the
// DLM's lease table, and the shared-log sequencer each run as a
// StateMachine on a 3-member (or any odd-sized) group; their RPC front
// ends forward through the leader and reject elsewhere with the
// NotLeaderError redirect contract, which clients follow by re-dialing.
//
// The profile is a control plane, not a data plane: proposals are rare
// (failovers, lease grants, offset blocks), so the implementation favors
// one mutex and synchronous fsyncs over pipelined persistence, and spends
// its complexity budget on the availability levers instead — check-quorum
// stepdown (a partitioned leader stops answering within ~2 election
// timeouts, so clients re-route), sticky-leader vote rejection (a healed
// flapping member cannot depose a live leader), and a no-op barrier entry
// on election (the new leader commits its predecessors' tail immediately).
package rsm

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/rpc"
	"bespokv/internal/store/wal"
	"bespokv/internal/transport"
)

// StateMachine is the deterministic core a service replicates. Apply is
// invoked exactly once per committed index, in index order, on every
// member (with Node internals locked — it must not call back into the
// Node); its return value is handed to the local Propose caller. Snapshot
// and Restore move the full state for compaction and follower catch-up,
// and must round-trip exactly: Restore(Snapshot()) followed by the same
// Applies must yield the same state on every member.
type StateMachine interface {
	Apply(index uint64, cmd []byte) any
	Snapshot() []byte
	Restore(data []byte)
}

// Config configures one member of a replication group.
type Config struct {
	// ID is this member's name; Peers[ID] must exist and is the address
	// the other members dial for this member's Mux.
	ID    string
	Peers map[string]string

	// Mux receives the RSM.* handlers; the owning service serves it (one
	// address carries both Raft and service traffic).
	Mux *rpc.Server
	// Network dials peers; nil means the registered "tcp" transport.
	Network transport.Network

	// Dir/FS back the persistent log and checkpoint. FS nil means OSFS.
	Dir string
	FS  wal.FS

	SM StateMachine

	// ElectionTimeout is the base election timeout; a member campaigns
	// after a uniformly random wait in [ET, 2ET) without leader contact.
	// Default 150ms. Heartbeat is the leader's append cadence, default
	// ET/5.
	ElectionTimeout time.Duration
	Heartbeat       time.Duration

	// SnapshotEvery compacts the log after this many applied entries
	// beyond the last checkpoint. Default 1024.
	SnapshotEvery uint64

	// OnLeader, when set, is notified (on its own goroutine) each time
	// this member gains or loses leadership — services use it to resume
	// interrupted work (e.g. a coordinator transition drain) on the new
	// leader.
	OnLeader func(term uint64, isLeader bool)

	// Logf receives election/replication events; nil discards them.
	Logf func(format string, args ...any)
}

type role int

const (
	follower role = iota
	candidate
	leader
)

func (r role) String() string {
	switch r {
	case leader:
		return "leader"
	case candidate:
		return "candidate"
	default:
		return "follower"
	}
}

// maxAppendEntries caps one AppendEntries batch; a lagging follower
// catches up over several round trips instead of one oversized frame.
const maxAppendEntries = 512

// Node is one member of a replication group.
type Node struct {
	cfg Config
	net transport.Network

	mu          sync.Mutex
	st          *storage
	state       role
	leaderID    string
	commitIndex uint64
	lastApplied uint64

	electionDeadline time.Time
	lastContact      time.Time // last append/snapshot from a current leader
	preVoteSeq       uint64    // invalidates in-flight pre-vote rounds

	// Leader bookkeeping, keyed by peer ID (never self).
	next     map[string]uint64
	match    map[string]uint64
	lastAck  map[string]time.Time
	inflight map[string]bool

	waiters map[uint64]waiter

	stopped bool
	stopCh  chan struct{}
	tickWG  sync.WaitGroup

	pmu   sync.Mutex
	peers map[string]*rpc.Client

	gIsLeader, gTerm, gCommit, gApplied *metrics.Gauge
}

type waiter struct {
	term uint64
	ch   chan waitResult
}

type waitResult struct {
	res  any
	lost bool
}

// Start opens (or recovers) the member's durable state, registers the
// RSM.* handlers on cfg.Mux, and begins ticking. The caller serves the
// Mux.
func Start(cfg Config) (*Node, error) {
	if cfg.ID == "" || cfg.Peers[cfg.ID] == "" {
		return nil, fmt.Errorf("rsm: Config.ID %q must appear in Peers", cfg.ID)
	}
	if cfg.SM == nil {
		return nil, fmt.Errorf("rsm: Config.SM required")
	}
	if cfg.Mux == nil {
		return nil, fmt.Errorf("rsm: Config.Mux required")
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.ElectionTimeout / 5
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 1024
	}
	net := cfg.Network
	if net == nil {
		var err error
		net, err = transport.Lookup("tcp")
		if err != nil {
			return nil, err
		}
	}
	st, err := openStorage(cfg.FS, cfg.Dir)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		net:       net,
		st:        st,
		next:      map[string]uint64{},
		match:     map[string]uint64{},
		lastAck:   map[string]time.Time{},
		inflight:  map[string]bool{},
		waiters:   map[uint64]waiter{},
		stopCh:    make(chan struct{}),
		peers:     map[string]*rpc.Client{},
		gIsLeader: metrics.Default.Gauge("bespokv_rsm_is_leader", "id", cfg.ID),
		gTerm:     metrics.Default.Gauge("bespokv_rsm_term", "id", cfg.ID),
		gCommit:   metrics.Default.Gauge("bespokv_rsm_commit_index", "id", cfg.ID),
		gApplied:  metrics.Default.Gauge("bespokv_rsm_applied_index", "id", cfg.ID),
	}
	if st.snapData != nil || st.snap.Index > 0 {
		cfg.SM.Restore(st.snapData)
	}
	n.commitIndex = st.snap.Index
	n.lastApplied = st.snap.Index
	n.gTerm.Set(int64(st.term))
	n.gCommit.Set(int64(n.commitIndex))
	n.gApplied.Set(int64(n.lastApplied))
	n.resetElectionTimerLocked()

	rpc.HandleFunc(cfg.Mux, "RSM.Vote", n.handleVote)
	rpc.HandleFunc(cfg.Mux, "RSM.Append", n.handleAppend)
	rpc.HandleFunc(cfg.Mux, "RSM.Snap", n.handleSnap)
	rpc.HandleFunc(cfg.Mux, "RSM.Status", func(struct{}) (Status, error) {
		return n.Status(), nil
	})

	n.tickWG.Add(1)
	go n.run()
	return n, nil
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Close stops the member: pending proposals fail, peer connections close,
// and the log is synced shut. The caller closes the Mux.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil
	}
	n.stopped = true
	// A closed member must not keep claiming leadership: callers poll
	// IsLeader across members to find the live leader after a kill.
	n.state = follower
	close(n.stopCh)
	for i, w := range n.waiters {
		delete(n.waiters, i)
		w.ch <- waitResult{lost: true}
	}
	n.mu.Unlock()
	n.tickWG.Wait()
	n.pmu.Lock()
	for id, c := range n.peers {
		delete(n.peers, id)
		c.Close()
	}
	n.pmu.Unlock()
	n.mu.Lock()
	err := n.st.close()
	n.mu.Unlock()
	for _, name := range []string{"bespokv_rsm_is_leader", "bespokv_rsm_term", "bespokv_rsm_commit_index", "bespokv_rsm_applied_index"} {
		metrics.Default.Unregister(name, "id", n.cfg.ID)
	}
	return err
}

// ---- timers ----

func (n *Node) resetElectionTimerLocked() {
	et := n.cfg.ElectionTimeout
	n.electionDeadline = time.Now().Add(et + rand.N(et))
}

func (n *Node) run() {
	defer n.tickWG.Done()
	t := time.NewTicker(n.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
		}
		n.tick()
	}
}

func (n *Node) tick() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	if n.state == leader {
		if !n.quorumAliveLocked() {
			// Check-quorum: without acks from a majority we may already
			// be deposed on the other side of a partition; stop serving
			// so clients find the real leader instead of a stale one.
			n.logf("rsm %s: lost quorum contact at term %d, stepping down", n.cfg.ID, n.st.term)
			n.stepDownLocked(n.st.term, "")
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		n.broadcast()
		return
	}
	if time.Now().After(n.electionDeadline) {
		n.campaignLocked() // unlocks internally
		return
	}
	n.mu.Unlock()
}

// quorumAliveLocked reports whether a majority (including self) has acked
// an append within the last two election timeouts.
func (n *Node) quorumAliveLocked() bool {
	cutoff := time.Now().Add(-2 * n.cfg.ElectionTimeout)
	alive := 1
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		if n.lastAck[id].After(cutoff) {
			alive++
		}
	}
	return alive >= n.quorum()
}

func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

// ---- role transitions ----

// stepDownLocked moves to follower. A higher term is persisted with the
// vote cleared; pending proposals fail with lost-leadership.
func (n *Node) stepDownLocked(term uint64, leaderID string) {
	wasLeader := n.state == leader
	oldTerm := n.st.term
	n.state = follower
	n.leaderID = leaderID
	if term > n.st.term {
		if err := n.st.saveHardState(term, ""); err != nil {
			n.logf("rsm %s: persist term %d: %v", n.cfg.ID, term, err)
		}
		n.gTerm.Set(int64(term))
	}
	n.resetElectionTimerLocked()
	if wasLeader {
		n.gIsLeader.Set(0)
		for i, w := range n.waiters {
			delete(n.waiters, i)
			w.ch <- waitResult{lost: true}
		}
		if fn := n.cfg.OnLeader; fn != nil {
			go fn(oldTerm, false)
		}
	}
}

// campaignLocked runs the pre-vote phase (Raft §9.6): probe peers for
// electability at term+1 WITHOUT bumping the persisted term. Without this,
// a starved or partitioned member that cannot win (stale log, no quorum)
// inflates its term on every failed campaign, and that term — leaking back
// through append replies — deposes a healthy leader each time the member's
// timer fires. The real election only starts once a majority says it would
// vote for us. Called with n.mu held; unlocks internally.
func (n *Node) campaignLocked() {
	if n.quorum() == 1 {
		n.electLocked() // single-member group: no one to pre-canvass
		return
	}
	n.resetElectionTimerLocked()
	n.preVoteSeq++
	seq := n.preVoteSeq
	cur := n.st.term
	start := time.Now()
	lli := n.st.lastIndex()
	llt, _ := n.st.termAt(lli)
	n.mu.Unlock()

	args := VoteArgs{Term: cur + 1, Candidate: n.cfg.ID,
		LastLogIndex: lli, LastLogTerm: llt, PreVote: true}
	grants := 1 // self; incremented under n.mu
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		go func(id string) {
			var rep VoteReply
			if err := n.callPeer(id, "RSM.Vote", args, &rep); err != nil {
				return
			}
			n.mu.Lock()
			if n.stopped {
				n.mu.Unlock()
				return
			}
			if rep.Term > n.st.term {
				n.stepDownLocked(rep.Term, "")
				n.mu.Unlock()
				return
			}
			// The round is void once anything moved: a newer round
			// started, the term advanced, or a leader reached us since
			// the round began (the remembered leaderID alone may be a
			// stale pointer at a dead member — not disqualifying).
			if n.preVoteSeq != seq || n.st.term != cur ||
				n.state == leader || n.lastContact.After(start) || !rep.Granted {
				n.mu.Unlock()
				return
			}
			grants++
			if grants >= n.quorum() {
				n.preVoteSeq++ // consume: late grants must not re-elect
				n.electLocked()
				return
			}
			n.mu.Unlock()
		}(id)
	}
}

// electLocked starts a real election at term+1; the lock is released
// before the vote fan-out. Called with n.mu held; unlocks internally.
func (n *Node) electLocked() {
	if err := n.st.saveHardState(n.st.term+1, n.cfg.ID); err != nil {
		n.logf("rsm %s: persist candidacy: %v", n.cfg.ID, err)
		n.mu.Unlock()
		return
	}
	n.state = candidate
	n.leaderID = ""
	n.resetElectionTimerLocked()
	term := n.st.term
	n.gTerm.Set(int64(term))
	lli := n.st.lastIndex()
	llt, _ := n.st.termAt(lli)
	n.logf("rsm %s: campaigning at term %d (last log %d/%d)", n.cfg.ID, term, lli, llt)
	votes := 1 // self
	if votes >= n.quorum() {
		n.becomeLeaderLocked()
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()

	args := VoteArgs{Term: term, Candidate: n.cfg.ID, LastLogIndex: lli, LastLogTerm: llt}
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		go func(id string) {
			var rep VoteReply
			if err := n.callPeer(id, "RSM.Vote", args, &rep); err != nil {
				return
			}
			n.mu.Lock()
			if n.stopped {
				n.mu.Unlock()
				return
			}
			if rep.Term > n.st.term {
				n.stepDownLocked(rep.Term, "")
				n.mu.Unlock()
				return
			}
			if n.state != candidate || n.st.term != term || !rep.Granted {
				n.mu.Unlock()
				return
			}
			votes++
			won := votes >= n.quorum()
			if won {
				n.becomeLeaderLocked()
			}
			n.mu.Unlock()
			if won {
				n.broadcast()
			}
		}(id)
	}
}

// becomeLeaderLocked initializes leader state and appends the term's no-op
// barrier entry, which both asserts leadership to followers and lets the
// commit index advance over any uncommitted tail from prior terms.
func (n *Node) becomeLeaderLocked() {
	n.state = leader
	n.leaderID = n.cfg.ID
	now := time.Now()
	li := n.st.lastIndex()
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		n.next[id] = li + 1
		n.match[id] = 0
		n.lastAck[id] = now
	}
	if err := n.st.append([]Entry{{Term: n.st.term, Index: li + 1}}); err != nil {
		n.logf("rsm %s: append no-op: %v", n.cfg.ID, err)
	}
	n.gIsLeader.Set(1)
	n.logf("rsm %s: elected leader at term %d", n.cfg.ID, n.st.term)
	n.maybeCommitLocked() // single-member groups commit immediately
	if fn := n.cfg.OnLeader; fn != nil {
		term := n.st.term
		go fn(term, true)
	}
}

// ---- client surface ----

// IsLeader reports whether this member currently believes it leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state == leader
}

// Leader returns the current leader's ID and address as far as this
// member knows (both empty mid-election).
func (n *Node) Leader() (id, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderID, n.cfg.Peers[n.leaderID]
}

// NotLeaderErr builds the redirect error for this member's current view.
func (n *Node) NotLeaderErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.notLeaderErrLocked()
}

func (n *Node) notLeaderErrLocked() error {
	hint := ""
	if n.leaderID != n.cfg.ID {
		hint = n.cfg.Peers[n.leaderID]
	}
	return &NotLeaderError{LeaderID: n.leaderID, LeaderAddr: hint}
}

// Propose replicates cmd and waits until it is applied locally, returning
// the StateMachine's result. On a non-leader it fails fast with the
// NotLeaderError redirect. ErrProposeTimeout and ErrLostLeadership leave
// the outcome unknown — the command may still commit.
func (n *Node) Propose(cmd []byte, timeout time.Duration) (any, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, ErrStopped
	}
	if n.state != leader {
		err := n.notLeaderErrLocked()
		n.mu.Unlock()
		return nil, err
	}
	idx := n.st.lastIndex() + 1
	term := n.st.term
	if err := n.st.append([]Entry{{Term: term, Index: idx, Data: cmd}}); err != nil {
		n.mu.Unlock()
		return nil, err
	}
	ch := make(chan waitResult, 1)
	n.waiters[idx] = waiter{term: term, ch: ch}
	n.maybeCommitLocked() // single-member groups need no round trip
	n.mu.Unlock()
	n.broadcast()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.lost {
			return nil, ErrLostLeadership
		}
		return r.res, nil
	case <-timer.C:
		n.mu.Lock()
		delete(n.waiters, idx)
		n.mu.Unlock()
		return nil, ErrProposeTimeout
	case <-n.stopCh:
		return nil, ErrStopped
	}
}

// Barrier proposes a no-op and waits for it to apply: on return, this
// member has applied every command committed before the call. A fresh
// leader uses it to know its state machine is current before answering
// reads.
func (n *Node) Barrier(timeout time.Duration) error {
	_, err := n.Propose(nil, timeout)
	return err
}

// MemberStatus is one member's view in Status.
type MemberStatus struct {
	ID         string `json:"id"`
	Addr       string `json:"addr"`
	Self       bool   `json:"self,omitempty"`
	Match      uint64 `json:"match,omitempty"`
	Next       uint64 `json:"next,omitempty"`
	AckAgeMS   int64  `json:"ack_age_ms,omitempty"`
	LagEntries uint64 `json:"lag,omitempty"`
}

// Status is the introspection snapshot served by RSM.Status, the
// bespokv-cli rsm verb, and /statusz.
type Status struct {
	ID            string         `json:"id"`
	State         string         `json:"state"`
	Term          uint64         `json:"term"`
	Leader        string         `json:"leader,omitempty"`
	LeaderAddr    string         `json:"leader_addr,omitempty"`
	CommitIndex   uint64         `json:"commit_index"`
	AppliedIndex  uint64         `json:"applied_index"`
	LastIndex     uint64         `json:"last_index"`
	SnapshotIndex uint64         `json:"snapshot_index"`
	Members       []MemberStatus `json:"members,omitempty"`
}

// Status reports this member's replication state; per-member lag is only
// meaningful on the leader.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Status{
		ID:            n.cfg.ID,
		State:         n.state.String(),
		Term:          n.st.term,
		Leader:        n.leaderID,
		LeaderAddr:    n.cfg.Peers[n.leaderID],
		CommitIndex:   n.commitIndex,
		AppliedIndex:  n.lastApplied,
		LastIndex:     n.st.lastIndex(),
		SnapshotIndex: n.st.snap.Index,
	}
	ids := make([]string, 0, len(n.cfg.Peers))
	for id := range n.cfg.Peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	now := time.Now()
	for _, id := range ids {
		m := MemberStatus{ID: id, Addr: n.cfg.Peers[id], Self: id == n.cfg.ID}
		if n.state == leader && !m.Self {
			m.Match = n.match[id]
			m.Next = n.next[id]
			if m.Match < s.LastIndex {
				m.LagEntries = s.LastIndex - m.Match
			}
			if ack := n.lastAck[id]; !ack.IsZero() {
				m.AckAgeMS = now.Sub(ack).Milliseconds()
			}
		}
		s.Members = append(s.Members, m)
	}
	return s
}

// ---- commit + apply ----

// maybeCommitLocked advances the commit index to the highest current-term
// index a majority has persisted, then applies.
func (n *Node) maybeCommitLocked() {
	if n.state != leader {
		return
	}
	for idx := n.st.lastIndex(); idx > n.commitIndex; idx-- {
		t, ok := n.st.termAt(idx)
		if !ok || t != n.st.term {
			// Entries from earlier terms are only committed indirectly,
			// once a current-term entry above them commits (Raft §5.4.2).
			break
		}
		count := 1
		for id, m := range n.match {
			_ = id
			if m >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commitIndex = idx
			n.applyLocked()
			break
		}
	}
}

// applyLocked feeds newly committed entries to the state machine in index
// order and wakes their proposers. This is the RSM hot path: it must stay
// allocation-free (gated by TestApplyZeroAlloc) so a burst of committed
// control-plane ops doesn't stall the leader in GC.
func (n *Node) applyLocked() {
	for n.lastApplied < n.commitIndex {
		i := n.lastApplied + 1
		e := n.st.entryAt(i)
		var res any
		if len(e.Data) > 0 {
			res = n.cfg.SM.Apply(i, e.Data)
		}
		n.lastApplied = i
		if w, ok := n.waiters[i]; ok {
			delete(n.waiters, i)
			if w.term == e.Term {
				w.ch <- waitResult{res: res}
			} else {
				w.ch <- waitResult{lost: true}
			}
		}
	}
	n.gCommit.Set(int64(n.commitIndex))
	n.gApplied.Set(int64(n.lastApplied))
	n.maybeCompactLocked()
}

// maybeCompactLocked checkpoints and drops the log once enough entries
// have applied since the last checkpoint.
func (n *Node) maybeCompactLocked() {
	if n.lastApplied-n.st.snap.Index < n.cfg.SnapshotEvery {
		return
	}
	t, _ := n.st.termAt(n.lastApplied)
	data := n.cfg.SM.Snapshot()
	if err := n.st.compact(SnapMeta{Index: n.lastApplied, Term: t}, data); err != nil {
		n.logf("rsm %s: compact at %d: %v", n.cfg.ID, n.lastApplied, err)
	}
}

// ---- replication (leader side) ----

// broadcast starts one replication pass to every peer that doesn't
// already have one in flight.
func (n *Node) broadcast() {
	n.mu.Lock()
	if n.state != leader || n.stopped {
		n.mu.Unlock()
		return
	}
	var start []string
	for id := range n.cfg.Peers {
		if id == n.cfg.ID || n.inflight[id] {
			continue
		}
		n.inflight[id] = true
		start = append(start, id)
	}
	n.mu.Unlock()
	for _, id := range start {
		go n.replicateTo(id)
	}
}

// replicateTo drives one peer until it is caught up or the exchange
// fails; the inflight flag guarantees a single driver per peer.
func (n *Node) replicateTo(id string) {
	for {
		n.mu.Lock()
		if n.state != leader || n.stopped {
			n.inflight[id] = false
			n.mu.Unlock()
			return
		}
		term := n.st.term
		if n.next[id] <= n.st.snap.Index {
			// The peer needs entries we compacted away: ship the
			// checkpoint image instead.
			args := SnapArgs{
				Term:   term,
				Leader: n.cfg.ID,
				Meta:   n.st.snap,
				Data:   n.st.snapData,
			}
			n.mu.Unlock()
			var rep SnapReply
			err := n.callPeer(id, "RSM.Snap", args, &rep)
			n.mu.Lock()
			if n.stopped || err != nil {
				n.inflight[id] = false
				n.mu.Unlock()
				return
			}
			n.lastAck[id] = time.Now()
			if rep.Term > n.st.term {
				n.stepDownLocked(rep.Term, "")
				n.inflight[id] = false
				n.mu.Unlock()
				return
			}
			if n.state == leader && n.st.term == term {
				if args.Meta.Index > n.match[id] {
					n.match[id] = args.Meta.Index
				}
				n.next[id] = args.Meta.Index + 1
			}
			n.mu.Unlock()
			continue
		}

		prev := n.next[id] - 1
		prevTerm, _ := n.st.termAt(prev)
		var ents []Entry
		if from := n.next[id]; from <= n.st.lastIndex() {
			count := n.st.lastIndex() - from + 1
			if count > maxAppendEntries {
				count = maxAppendEntries
			}
			// Copy under the lock: a concurrent truncate-then-append may
			// overwrite the backing array while this batch marshals.
			lo := from - n.st.snap.Index - 1
			ents = append(make([]Entry, 0, count), n.st.entries[lo:lo+count]...)
		}
		args := AppendArgs{
			Term:         term,
			Leader:       n.cfg.ID,
			PrevLogIndex: prev,
			PrevLogTerm:  prevTerm,
			Entries:      ents,
			LeaderCommit: n.commitIndex,
		}
		n.mu.Unlock()

		var rep AppendReply
		err := n.callPeer(id, "RSM.Append", args, &rep)
		n.mu.Lock()
		if n.stopped || err != nil {
			n.inflight[id] = false
			n.mu.Unlock()
			return
		}
		n.lastAck[id] = time.Now()
		if rep.Term > n.st.term {
			n.stepDownLocked(rep.Term, "")
			n.inflight[id] = false
			n.mu.Unlock()
			return
		}
		if n.state != leader || n.st.term != term {
			n.inflight[id] = false
			n.mu.Unlock()
			return
		}
		if rep.Success {
			if rep.MatchIndex > n.match[id] {
				n.match[id] = rep.MatchIndex
			}
			n.next[id] = n.match[id] + 1
			n.maybeCommitLocked()
			if n.next[id] > n.st.lastIndex() {
				n.inflight[id] = false
				n.mu.Unlock()
				return
			}
			n.mu.Unlock()
			continue // more tail to send
		}
		// Log mismatch: jump back to the follower's conflict hint.
		ni := rep.ConflictIndex
		if ni == 0 || ni >= n.next[id] {
			ni = n.next[id] - 1
		}
		if ni < 1 {
			ni = 1
		}
		n.next[id] = ni
		n.mu.Unlock()
	}
}

// ---- RPC handlers (follower side) ----

// VoteArgs asks for a vote in Term.
type VoteArgs struct {
	Term         uint64 `json:"term"`
	Candidate    string `json:"cand"`
	LastLogIndex uint64 `json:"lli"`
	LastLogTerm  uint64 `json:"llt"`
	// PreVote asks "would you vote for me at Term?" without the voter
	// adopting Term or recording a vote — the candidate only bumps its
	// term once a majority says yes.
	PreVote bool `json:"pre,omitempty"`
}

// VoteReply grants or rejects, carrying the voter's term.
type VoteReply struct {
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted,omitempty"`
}

// AppendArgs replicates log entries (empty for heartbeats).
type AppendArgs struct {
	Term         uint64  `json:"term"`
	Leader       string  `json:"leader"`
	PrevLogIndex uint64  `json:"pli"`
	PrevLogTerm  uint64  `json:"plt"`
	Entries      []Entry `json:"ents,omitempty"`
	LeaderCommit uint64  `json:"commit"`
}

// AppendReply acknowledges or reports a conflict hint.
type AppendReply struct {
	Term          uint64 `json:"term"`
	Success       bool   `json:"ok,omitempty"`
	MatchIndex    uint64 `json:"match,omitempty"`
	ConflictIndex uint64 `json:"conflict,omitempty"`
}

// SnapArgs installs a checkpoint image on a lagging follower.
type SnapArgs struct {
	Term   uint64   `json:"term"`
	Leader string   `json:"leader"`
	Meta   SnapMeta `json:"meta"`
	Data   []byte   `json:"data"`
}

// SnapReply carries the follower's term.
type SnapReply struct {
	Term uint64 `json:"term"`
}

func (n *Node) handleVote(a VoteArgs) (VoteReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rep := VoteReply{Term: n.st.term}
	if n.stopped || a.Term < n.st.term {
		return rep, nil
	}
	// Sticky leader: while we hear from a live leader, refuse to help
	// depose it — and don't adopt the bigger term either, or a flapping
	// partitioned member would still churn the group every heal (Raft
	// §4.2.3). A leader with live quorum contact is its own evidence.
	if n.state == leader && n.quorumAliveLocked() {
		return rep, nil
	}
	if n.state == follower && n.leaderID != "" &&
		time.Since(n.lastContact) < n.cfg.ElectionTimeout {
		return rep, nil
	}
	lli := n.st.lastIndex()
	llt, _ := n.st.termAt(lli)
	upToDate := a.LastLogTerm > llt || (a.LastLogTerm == llt && a.LastLogIndex >= lli)
	if a.PreVote {
		// No state change at all: no term adoption, no persisted vote, no
		// election-timer reset. Grant iff the real election could succeed.
		rep.Granted = a.Term > n.st.term && upToDate
		return rep, nil
	}
	if a.Term > n.st.term {
		n.stepDownLocked(a.Term, "")
		rep.Term = n.st.term
	}
	if upToDate && (n.st.votedFor == "" || n.st.votedFor == a.Candidate) {
		if err := n.st.saveHardState(n.st.term, a.Candidate); err != nil {
			n.logf("rsm %s: persist vote: %v", n.cfg.ID, err)
			return rep, nil // an unpersisted vote must not be granted
		}
		n.resetElectionTimerLocked()
		rep.Granted = true
	}
	return rep, nil
}

func (n *Node) handleAppend(a AppendArgs) (AppendReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rep := AppendReply{Term: n.st.term}
	if n.stopped || a.Term < n.st.term {
		return rep, nil
	}
	if a.Term > n.st.term || n.state != follower {
		n.stepDownLocked(a.Term, a.Leader)
	}
	n.leaderID = a.Leader
	n.lastContact = time.Now()
	n.resetElectionTimerLocked()
	rep.Term = n.st.term

	// Consistency check at the previous index. Anything at or below our
	// snapshot is committed and therefore matches by construction.
	if a.PrevLogIndex > n.st.snap.Index {
		li := n.st.lastIndex()
		if a.PrevLogIndex > li {
			rep.ConflictIndex = li + 1
			return rep, nil
		}
		t, _ := n.st.termAt(a.PrevLogIndex)
		if t != a.PrevLogTerm {
			// Hint the first index of the conflicting term so the leader
			// skips the whole run instead of probing one index at a time.
			ci := a.PrevLogIndex
			for ci > n.st.snap.Index+1 {
				pt, _ := n.st.termAt(ci - 1)
				if pt != t {
					break
				}
				ci--
			}
			rep.ConflictIndex = ci
			return rep, nil
		}
	}

	ents := a.Entries
	for len(ents) > 0 {
		e := ents[0]
		if e.Index <= n.st.snap.Index {
			ents = ents[1:]
			continue
		}
		if e.Index <= n.st.lastIndex() {
			if t, _ := n.st.termAt(e.Index); t == e.Term {
				ents = ents[1:]
				continue // already have it
			}
			if err := n.st.truncateFrom(e.Index); err != nil {
				return rep, err
			}
		}
		break
	}
	if len(ents) > 0 {
		if err := n.st.append(ents); err != nil {
			return rep, err
		}
	}
	lastNew := a.PrevLogIndex + uint64(len(a.Entries))
	if lastNew < n.st.snap.Index {
		lastNew = n.st.snap.Index
	}
	if a.LeaderCommit > n.commitIndex {
		nc := a.LeaderCommit
		if nc > lastNew {
			nc = lastNew // only indexes this exchange verified
		}
		if nc > n.commitIndex {
			n.commitIndex = nc
			n.applyLocked()
		}
	}
	rep.Success = true
	rep.MatchIndex = lastNew
	return rep, nil
}

func (n *Node) handleSnap(a SnapArgs) (SnapReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rep := SnapReply{Term: n.st.term}
	if n.stopped || a.Term < n.st.term {
		return rep, nil
	}
	if a.Term > n.st.term || n.state != follower {
		n.stepDownLocked(a.Term, a.Leader)
	}
	n.leaderID = a.Leader
	n.lastContact = time.Now()
	n.resetElectionTimerLocked()
	rep.Term = n.st.term
	if a.Meta.Index <= n.commitIndex {
		return rep, nil // stale image; our own log is further along
	}
	n.cfg.SM.Restore(a.Data)
	if err := n.st.install(a.Meta, a.Data); err != nil {
		return rep, err
	}
	n.commitIndex = a.Meta.Index
	n.lastApplied = a.Meta.Index
	n.gCommit.Set(int64(n.commitIndex))
	n.gApplied.Set(int64(n.lastApplied))
	n.logf("rsm %s: installed snapshot at %d/%d from %s", n.cfg.ID, a.Meta.Index, a.Meta.Term, a.Leader)
	return rep, nil
}

// ---- peer connections ----

// callPeer invokes method on a cached connection to id, re-dialing the
// next time after any failure. The call timeout is one election timeout:
// anything slower is as good as down for leadership purposes.
func (n *Node) callPeer(id, method string, args, reply any) error {
	n.pmu.Lock()
	c := n.peers[id]
	n.pmu.Unlock()
	if c == nil {
		nc, err := rpc.DialClient(n.net, n.cfg.Peers[id])
		if err != nil {
			return err
		}
		nc.CallTimeout = n.cfg.ElectionTimeout
		n.pmu.Lock()
		if n.stopped {
			n.pmu.Unlock()
			nc.Close()
			return ErrStopped
		}
		if cur := n.peers[id]; cur != nil {
			nc.Close()
			c = cur
		} else {
			n.peers[id] = nc
			c = nc
		}
		n.pmu.Unlock()
	}
	err := c.Call(method, args, reply)
	if err != nil {
		// RSM handlers never return application errors, so any failure is
		// connection-level: drop the cache and re-dial next time.
		n.pmu.Lock()
		if n.peers[id] == c {
			delete(n.peers, id)
		}
		n.pmu.Unlock()
		c.Close()
	}
	return err
}

// GroupConfig is the reusable member-and-storage half of Config: services
// that host an RSM group (coordinator, DLM, shared-log sequencer) embed it
// in their own Config as a `Replication *rsm.GroupConfig` field and call
// StartGroup with their service-specific state machine.
type GroupConfig struct {
	// ID names this member; Peers[ID] must be the address this service
	// listens on (RSM and service traffic share the mux).
	ID    string
	Peers map[string]string
	// Dir/FS back the member's replicated log and checkpoints; FS nil
	// means the OS filesystem.
	Dir string
	FS  wal.FS
	// ElectionTimeout/Heartbeat/SnapshotEvery tune the group (zero means
	// the package defaults).
	ElectionTimeout time.Duration
	Heartbeat       time.Duration
	SnapshotEvery   uint64
}

// StartGroup starts a member from a GroupConfig plus the service-side
// pieces (mux, network, state machine, hooks).
func StartGroup(g GroupConfig, mux *rpc.Server, network transport.Network, sm StateMachine,
	onLeader func(term uint64, isLeader bool), logf func(format string, args ...any)) (*Node, error) {
	return Start(Config{
		ID:              g.ID,
		Peers:           g.Peers,
		Mux:             mux,
		Network:         network,
		Dir:             g.Dir,
		FS:              g.FS,
		SM:              sm,
		ElectionTimeout: g.ElectionTimeout,
		Heartbeat:       g.Heartbeat,
		SnapshotEvery:   g.SnapshotEvery,
		OnLeader:        onLeader,
		Logf:            logf,
	})
}
