package rsm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/faultnet"
	"bespokv/internal/rpc"
	"bespokv/internal/store/faultfs"
	"bespokv/internal/transport"
)

// testSM is an order-sensitive list machine: any divergence in apply order
// or duplication across members shows up as unequal lists.
type testSM struct {
	mu   sync.Mutex
	vals []string
}

func (s *testSM) Apply(index uint64, cmd []byte) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals = append(s.vals, string(cmd))
	return len(s.vals)
}

func (s *testSM) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []byte(strings.Join(s.vals, "\n"))
}

func (s *testSM) Restore(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(data) == 0 {
		s.vals = nil
		return
	}
	s.vals = strings.Split(string(data), "\n")
}

func (s *testSM) list() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.vals...)
}

var rsmAddrSeq atomic.Uint64

type tnode struct {
	id   string
	mux  *rpc.Server
	node *Node
	sm   *testSM
	fs   *faultfs.FS
}

type tgroup struct {
	t     *testing.T
	et    time.Duration
	snapN uint64
	fab   *faultnet.Fabric
	peers map[string]string

	mu    sync.Mutex
	nodes map[string]*tnode
}

func newGroup(t *testing.T, members int, fab *faultnet.Fabric) *tgroup {
	t.Helper()
	g := &tgroup{
		t:     t,
		et:    80 * time.Millisecond,
		snapN: 1 << 20,
		fab:   fab,
		peers: map[string]string{},
		nodes: map[string]*tnode{},
	}
	base := rsmAddrSeq.Add(1)
	for i := 0; i < members; i++ {
		id := fmt.Sprintf("m%d", i)
		g.peers[id] = fmt.Sprintf("rsm-%d-%s", base, id)
	}
	for id := range g.peers {
		g.start(id, faultfs.New(int64(base)+int64(len(id))))
	}
	t.Cleanup(func() {
		g.mu.Lock()
		nodes := make([]*tnode, 0, len(g.nodes))
		for _, tn := range g.nodes {
			nodes = append(nodes, tn)
		}
		g.nodes = map[string]*tnode{}
		g.mu.Unlock()
		for _, tn := range nodes {
			tn.node.Close()
			tn.mux.Close()
		}
	})
	return g
}

func (g *tgroup) netFor(id string) transport.Network {
	if g.fab != nil {
		return g.fab.Host(id)
	}
	return transport.Inproc{}
}

func (g *tgroup) start(id string, fs *faultfs.FS) *tnode {
	g.t.Helper()
	netw := g.netFor(id)
	mux := rpc.NewServer()
	mux.Name = "rsm-" + id
	if _, err := mux.Serve(netw, g.peers[id]); err != nil {
		g.t.Fatalf("serve %s: %v", id, err)
	}
	sm := &testSM{}
	node, err := Start(Config{
		ID:              id,
		Peers:           g.peers,
		Mux:             mux,
		Network:         netw,
		Dir:             "rsm",
		FS:              fs,
		SM:              sm,
		ElectionTimeout: g.et,
		Heartbeat:       g.et / 5,
		SnapshotEvery:   g.snapN,
	})
	if err != nil {
		mux.Close()
		g.t.Fatalf("start %s: %v", id, err)
	}
	tn := &tnode{id: id, mux: mux, node: node, sm: sm, fs: fs}
	g.mu.Lock()
	g.nodes[id] = tn
	g.mu.Unlock()
	return tn
}

// stop kills a member: server torn down first (in-flight exchanges fail
// like a process kill), then the node releases its storage.
func (g *tgroup) stop(id string) *tnode {
	g.mu.Lock()
	tn := g.nodes[id]
	delete(g.nodes, id)
	g.mu.Unlock()
	if tn == nil {
		g.t.Fatalf("stop %s: not running", id)
	}
	tn.mux.Close()
	tn.node.Close()
	return tn
}

func (g *tgroup) live() []*tnode {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*tnode, 0, len(g.nodes))
	for _, tn := range g.nodes {
		out = append(out, tn)
	}
	return out
}

// waitLeader polls until some live member leads and its leadership is
// known to itself, returning it.
func (g *tgroup) waitLeader(timeout time.Duration) *tnode {
	g.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, tn := range g.live() {
			if tn.node.IsLeader() {
				return tn
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	g.t.Fatalf("no leader within %v", timeout)
	return nil
}

// waitVals polls until every live member's state machine holds exactly want.
func (g *tgroup) waitVals(want []string, timeout time.Duration) {
	g.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, tn := range g.live() {
			got := tn.sm.list()
			if len(got) != len(want) {
				ok = false
				break
			}
			for i := range want {
				if got[i] != want[i] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, tn := range g.live() {
		g.t.Logf("%s: %v", tn.id, tn.sm.list())
	}
	g.t.Fatalf("members did not converge on %d values within %v", len(want), timeout)
}

func (g *tgroup) propose(tn *tnode, cmd string) any {
	g.t.Helper()
	res, err := tn.node.Propose([]byte(cmd), 2*time.Second)
	if err != nil {
		g.t.Fatalf("propose %q on %s: %v", cmd, tn.id, err)
	}
	return res
}

func TestElectionAndPropose(t *testing.T) {
	g := newGroup(t, 3, nil)
	ld := g.waitLeader(2 * time.Second)
	var want []string
	for i := 0; i < 10; i++ {
		cmd := fmt.Sprintf("cmd-%d", i)
		res := g.propose(ld, cmd)
		if got, ok := res.(int); !ok || got != i+1 {
			t.Fatalf("propose %d: result = %v, want %d", i, res, i+1)
		}
		want = append(want, cmd)
	}
	g.waitVals(want, 2*time.Second)

	st := ld.node.Status()
	if st.State != "leader" || st.CommitIndex == 0 || st.AppliedIndex != st.CommitIndex {
		t.Fatalf("leader status off: %+v", st)
	}
	if len(st.Members) != 3 {
		t.Fatalf("status members = %d, want 3", len(st.Members))
	}
}

func TestSingleMemberGroup(t *testing.T) {
	g := newGroup(t, 1, nil)
	ld := g.waitLeader(2 * time.Second)
	g.propose(ld, "solo")
	g.waitVals([]string{"solo"}, time.Second)
}

func TestNotLeaderRedirect(t *testing.T) {
	g := newGroup(t, 3, nil)
	ld := g.waitLeader(2 * time.Second)
	g.propose(ld, "x") // commits leadership knowledge everywhere

	deadline := time.Now().Add(2 * time.Second)
	for {
		var follower *tnode
		for _, tn := range g.live() {
			if tn.id != ld.id {
				follower = tn
				break
			}
		}
		_, err := follower.node.Propose([]byte("y"), time.Second)
		if err == nil {
			t.Fatalf("follower %s accepted a proposal", follower.id)
		}
		if !IsNotLeader(err) {
			t.Fatalf("follower error = %v, want not-leader redirect", err)
		}
		if LeaderHint(err) == g.peers[ld.id] {
			break // hint points at the live leader
		}
		if time.Now().After(deadline) {
			t.Fatalf("redirect hint never converged: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLeaderKillReelection(t *testing.T) {
	g := newGroup(t, 3, nil)
	ld := g.waitLeader(2 * time.Second)
	var want []string
	for i := 0; i < 5; i++ {
		cmd := fmt.Sprintf("pre-%d", i)
		g.propose(ld, cmd)
		want = append(want, cmd)
	}

	start := time.Now()
	g.stop(ld.id)
	next := g.waitLeader(2 * time.Second)
	if next.id == ld.id {
		t.Fatalf("dead leader %s still leads", ld.id)
	}
	if elapsed := time.Since(start); elapsed > 10*g.et {
		t.Fatalf("re-election took %v, want < %v", elapsed, 10*g.et)
	}
	for i := 0; i < 5; i++ {
		cmd := fmt.Sprintf("post-%d", i)
		g.propose(next, cmd)
		want = append(want, cmd)
	}
	// Every pre-kill acked write must survive on the new leader, in order.
	g.waitVals(want, 2*time.Second)
}

func TestPartitionedLeaderStepsDown(t *testing.T) {
	fab := faultnet.New(transport.Inproc{}, 42)
	g := newGroup(t, 3, fab)
	ld := g.waitLeader(2 * time.Second)
	var want []string
	for i := 0; i < 3; i++ {
		cmd := fmt.Sprintf("pre-%d", i)
		g.propose(ld, cmd)
		want = append(want, cmd)
	}

	fab.Isolate(ld.id)

	// Check-quorum: the isolated leader must abdicate within a few
	// election timeouts rather than keep answering as a stale leader.
	deadline := time.Now().Add(8 * g.et)
	for ld.node.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatalf("isolated leader %s never stepped down", ld.id)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The majority side elects a replacement and keeps committing.
	var next *tnode
	electDeadline := time.Now().Add(2 * time.Second)
	for next == nil {
		for _, tn := range g.live() {
			if tn.id != ld.id && tn.node.IsLeader() {
				next = tn
				break
			}
		}
		if time.Now().After(electDeadline) {
			t.Fatalf("no majority-side leader after isolation")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		cmd := fmt.Sprintf("during-%d", i)
		g.propose(next, cmd)
		want = append(want, cmd)
	}

	fab.Heal()
	// The healed member rejoins as a follower and converges.
	g.waitVals(want, 4*time.Second)
	if ld.node.IsLeader() && !next.node.IsLeader() {
		// A post-heal re-election is legal; what is not legal is two
		// leaders in the same term.
		a, b := ld.node.Status(), next.node.Status()
		if a.Term == b.Term && a.State == "leader" && b.State == "leader" {
			t.Fatalf("split brain: %s and %s both lead term %d", ld.id, next.id, a.Term)
		}
	}
	final := g.waitLeader(2 * time.Second)
	cmd := "post-heal"
	g.propose(final, cmd)
	g.waitVals(append(want, cmd), 2*time.Second)
}

func TestCrashRestartRecovery(t *testing.T) {
	g := newGroup(t, 3, nil)
	ld := g.waitLeader(2 * time.Second)
	var want []string
	for i := 0; i < 7; i++ {
		cmd := fmt.Sprintf("cmd-%d", i)
		g.propose(ld, cmd)
		want = append(want, cmd)
	}
	g.waitVals(want, 2*time.Second)

	// Crash all three: freeze first so the graceful Close adds nothing
	// beyond what an ack already made durable, then revert each disk to
	// its durable image.
	stopped := map[string]*tnode{}
	for _, tn := range g.live() {
		tn.fs.Freeze()
	}
	for _, tn := range g.live() {
		stopped[tn.id] = tn
	}
	for id, tn := range stopped {
		g.stop(id)
		tn.fs.Crash()
	}
	for id, tn := range stopped {
		g.start(id, tn.fs)
	}

	ld2 := g.waitLeader(4 * time.Second)
	// Zero acked-write loss across the full-cluster crash.
	g.waitVals(want, 4*time.Second)
	g.propose(ld2, "after-restart")
	g.waitVals(append(want, "after-restart"), 2*time.Second)
}

func TestSnapshotCatchUp(t *testing.T) {
	g := newGroup(t, 3, nil)
	g.snapN = 8 // applies only to members started after this point
	ld := g.waitLeader(2 * time.Second)

	// Find a follower to lag behind, kill it, then push the leader far
	// enough ahead that compaction discards the follower's tail.
	var lag *tnode
	for _, tn := range g.live() {
		if tn.id != ld.id {
			lag = tn
			break
		}
	}
	lagFS := g.stop(lag.id).fs

	// Restart remaining members' group state? No — just drive the leader.
	var want []string
	for i := 0; i < 40; i++ {
		cmd := fmt.Sprintf("cmd-%d", i)
		g.propose(ld, cmd)
		want = append(want, cmd)
	}
	// Force compaction on the leader by restarting it with a small
	// SnapshotEvery is intrusive; instead assert catch-up works with the
	// leader's live log, then separately exercise the snapshot path via
	// an explicitly compacted leader below.
	g.start(lag.id, lagFS)
	g.waitVals(want, 4*time.Second)
}

// TestInstallSnapshot drives the leader→follower checkpoint path directly:
// a small SnapshotEvery makes the leader compact past a dead follower's
// position, so the only way back is RSM.Snap.
func TestInstallSnapshot(t *testing.T) {
	g := newGroup(t, 3, nil)
	g.snapN = 8
	// Restart all members so the tiny SnapshotEvery applies everywhere.
	stopped := map[string]*tnode{}
	for _, tn := range g.live() {
		stopped[tn.id] = tn
	}
	for id, tn := range stopped {
		g.stop(id)
		g.start(id, tn.fs)
	}
	ld := g.waitLeader(2 * time.Second)

	var lag *tnode
	for _, tn := range g.live() {
		if tn.id != ld.id {
			lag = tn
			break
		}
	}
	lagFS := g.stop(lag.id).fs

	var want []string
	for i := 0; i < 40; i++ {
		cmd := fmt.Sprintf("cmd-%d", i)
		g.propose(ld, cmd)
		want = append(want, cmd)
	}
	if st := ld.node.Status(); st.SnapshotIndex == 0 {
		t.Fatalf("leader never compacted: %+v", st)
	}

	tn := g.start(lag.id, lagFS)
	g.waitVals(want, 4*time.Second)
	if st := tn.node.Status(); st.SnapshotIndex == 0 {
		t.Fatalf("lagging follower caught up without a snapshot install: %+v", st)
	}
}

// TestPreVoteBlocksDisruption pins the pre-vote guarantee: a member that
// cannot win an election (isolated, stale log) must not inflate its term
// while cut off, so on heal it rejoins as a follower instead of deposing a
// healthy leader with the term it banked. Without pre-vote this scenario
// churned leadership on every heal — and, under CPU starvation, on every
// spurious election timeout.
func TestPreVoteBlocksDisruption(t *testing.T) {
	fab := faultnet.New(transport.Inproc{}, 7)
	g := newGroup(t, 3, fab)
	ld := g.waitLeader(2 * time.Second)
	g.propose(ld, "a")

	// Pick a follower and cut it off; the leader keeps committing, so the
	// isolated member's log goes stale.
	var iso *tnode
	for _, tn := range g.live() {
		if tn.id != ld.id {
			iso = tn
			break
		}
	}
	fab.Isolate(iso.id)
	want := []string{"a"}
	for i := 0; i < 3; i++ {
		cmd := fmt.Sprintf("during-%d", i)
		g.propose(ld, cmd)
		want = append(want, cmd)
	}
	termBefore := ld.node.Status().Term

	// Let the isolated member's election timer fire many times. Its
	// pre-vote rounds get no grants, so its persisted term must not move.
	time.Sleep(10 * g.et)
	if got := iso.node.Status().Term; got != termBefore {
		t.Fatalf("isolated member inflated its term to %d (group at %d)", got, termBefore)
	}

	fab.Heal()
	// The healed member converges without disturbing the leader: same
	// leader, same term, no re-election.
	g.waitVals(want, 4*time.Second)
	if !ld.node.IsLeader() {
		t.Fatalf("leader %s was deposed by a healed stale member", ld.id)
	}
	if got := ld.node.Status().Term; got != termBefore {
		t.Fatalf("heal churned the term: %d -> %d", termBefore, got)
	}
	g.propose(ld, "post")
	g.waitVals(append(want, "post"), 2*time.Second)
}
