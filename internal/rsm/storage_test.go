package rsm

import (
	"fmt"
	"testing"

	"bespokv/internal/store/wal"
)

func mkEntries(from, to uint64, term uint64) []Entry {
	var es []Entry
	for i := from; i <= to; i++ {
		es = append(es, Entry{Term: term, Index: i, Data: []byte(fmt.Sprintf("v%d", i))})
	}
	return es
}

func TestStorageRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	st, err := openStorage(fs, "rsm")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.saveHardState(3, "m1"); err != nil {
		t.Fatal(err)
	}
	if err := st.append(mkEntries(1, 10, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.truncateFrom(8); err != nil {
		t.Fatal(err)
	}
	if err := st.append(mkEntries(8, 9, 4)); err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	st2, err := openStorage(fs, "rsm")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.close()
	if st2.term != 3 || st2.votedFor != "m1" {
		t.Fatalf("hard state = (%d, %q), want (3, m1)", st2.term, st2.votedFor)
	}
	if st2.lastIndex() != 9 {
		t.Fatalf("lastIndex = %d, want 9", st2.lastIndex())
	}
	for i := uint64(1); i <= 7; i++ {
		if tm, ok := st2.termAt(i); !ok || tm != 3 {
			t.Fatalf("termAt(%d) = %d,%v want 3", i, tm, ok)
		}
	}
	for i := uint64(8); i <= 9; i++ {
		if tm, _ := st2.termAt(i); tm != 4 {
			t.Fatalf("termAt(%d) = %d, want 4 (truncation not replayed)", i, tm)
		}
	}
	if string(st2.entryAt(9).Data) != "v9" {
		t.Fatalf("entryAt(9) = %q", st2.entryAt(9).Data)
	}
}

func TestStorageCompactAndReopen(t *testing.T) {
	fs := wal.NewMemFS()
	st, err := openStorage(fs, "rsm")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.saveHardState(2, "m0"); err != nil {
		t.Fatal(err)
	}
	if err := st.append(mkEntries(1, 12, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.compact(SnapMeta{Index: 9, Term: 2}, []byte("image-9")); err != nil {
		t.Fatal(err)
	}
	if st.lastIndex() != 12 || st.snap.Index != 9 {
		t.Fatalf("post-compact last=%d snap=%d", st.lastIndex(), st.snap.Index)
	}
	// Entries keep flowing into the reset WAL.
	if err := st.append(mkEntries(13, 14, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	st2, err := openStorage(fs, "rsm")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.close()
	if st2.snap != (SnapMeta{Index: 9, Term: 2}) || string(st2.snapData) != "image-9" {
		t.Fatalf("snapshot = %+v %q", st2.snap, st2.snapData)
	}
	if st2.term != 2 || st2.votedFor != "m0" {
		t.Fatalf("hard state lost over compaction: (%d, %q)", st2.term, st2.votedFor)
	}
	if st2.lastIndex() != 14 {
		t.Fatalf("lastIndex = %d, want 14", st2.lastIndex())
	}
	if _, ok := st2.termAt(9); !ok {
		t.Fatal("snapshot boundary term unavailable")
	}
	if _, ok := st2.termAt(8); ok {
		t.Fatal("compacted index still resolvable")
	}
	if string(st2.entryAt(10).Data) != "v10" || string(st2.entryAt(14).Data) != "v14" {
		t.Fatal("tail entries lost over compaction")
	}
}

// TestStorageCheckpointCrashWindow simulates a crash between checkpoint
// write and WAL reset: both the new checkpoint and the full old WAL are
// present, and folding the stale WAL on top must converge to the same
// state, not regress the vote or duplicate entries.
func TestStorageCheckpointCrashWindow(t *testing.T) {
	fs := wal.NewMemFS()
	st, err := openStorage(fs, "rsm")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.saveHardState(5, "m2"); err != nil {
		t.Fatal(err)
	}
	if err := st.append(mkEntries(1, 6, 5)); err != nil {
		t.Fatal(err)
	}
	// Write the checkpoint exactly as compact would, but "crash" before
	// Reset: the WAL keeps every pre-checkpoint record.
	tail := append([]Entry(nil), st.entries[4:]...) // entries 5..6
	err = wal.WriteSnapshotFile(fs, "rsm", snapName, func(add func([]byte) error) error {
		if err := add(EncodeSnapMeta(SnapMeta{Index: 4, Term: 5})); err != nil {
			return err
		}
		if err := add(EncodeHardState(st.term, st.votedFor)); err != nil {
			return err
		}
		if err := add(EncodeEntries(tail)); err != nil {
			return err
		}
		return add([]byte("image-4"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	st2, err := openStorage(fs, "rsm")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.close()
	if st2.term != 5 || st2.votedFor != "m2" {
		t.Fatalf("hard state regressed: (%d, %q)", st2.term, st2.votedFor)
	}
	if st2.snap.Index != 4 || st2.lastIndex() != 6 {
		t.Fatalf("snap=%d last=%d, want 4/6", st2.snap.Index, st2.lastIndex())
	}
	if string(st2.entryAt(5).Data) != "v5" || string(st2.entryAt(6).Data) != "v6" {
		t.Fatal("tail wrong after crash-window recovery")
	}
}

func TestStorageCorruptCheckpointFatal(t *testing.T) {
	fs := wal.NewMemFS()
	st, err := openStorage(fs, "rsm")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.append(mkEntries(1, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.compact(SnapMeta{Index: 4, Term: 1}, []byte("img")); err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the checkpoint body.
	f, err := fs.OpenFile(wal.Join("rsm", snapName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 20); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := openStorage(fs, "rsm"); err == nil {
		t.Fatal("corrupt checkpoint opened silently")
	}
}
