package rsm

import (
	"testing"

	"bespokv/internal/metrics"
	"bespokv/internal/store/wal"
)

// nopSM returns a pre-built result so the interface value costs nothing.
type nopSM struct {
	res any
	n   int
}

func (s *nopSM) Apply(index uint64, cmd []byte) any { s.n++; return s.res }
func (s *nopSM) Snapshot() []byte                   { return nil }
func (s *nopSM) Restore(data []byte)                {}

// applyNode builds a bare Node with entries committed-but-unapplied, the
// shape applyLocked sees when a commit advances.
func applyNode(tb testing.TB, entries int) (*Node, *nopSM) {
	tb.Helper()
	st, err := openStorage(wal.NewMemFS(), "rsm")
	if err != nil {
		tb.Fatal(err)
	}
	sm := &nopSM{res: any(1)}
	n := &Node{
		cfg:       Config{ID: "alloc", SM: sm, SnapshotEvery: 1 << 62},
		st:        st,
		waiters:   map[uint64]waiter{},
		gIsLeader: metrics.Default.Gauge("bespokv_rsm_is_leader", "id", "alloc-test"),
		gTerm:     metrics.Default.Gauge("bespokv_rsm_term", "id", "alloc-test"),
		gCommit:   metrics.Default.Gauge("bespokv_rsm_commit_index", "id", "alloc-test"),
		gApplied:  metrics.Default.Gauge("bespokv_rsm_applied_index", "id", "alloc-test"),
	}
	es := make([]Entry, entries)
	payload := []byte("cmd")
	for i := range es {
		es[i] = Entry{Term: 1, Index: uint64(i + 1), Data: payload}
	}
	if err := st.append(es); err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { st.close() })
	return n, sm
}

// TestApplyZeroAlloc gates the RSM hot path: feeding committed entries to
// the state machine must not allocate, so a burst of control-plane ops
// can't put the leader into GC pressure at the worst moment.
func TestApplyZeroAlloc(t *testing.T) {
	const runs = 512
	n, sm := applyNode(t, runs+8)
	allocs := testing.AllocsPerRun(runs, func() {
		n.mu.Lock()
		n.commitIndex++
		n.applyLocked()
		n.mu.Unlock()
	})
	if allocs > 0 {
		t.Fatalf("applyLocked allocates %.1f/op, want 0", allocs)
	}
	if sm.n == 0 {
		t.Fatal("state machine never applied")
	}
}

func BenchmarkRSMApply(b *testing.B) {
	n, _ := applyNode(b, b.N+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.mu.Lock()
		n.commitIndex++
		n.applyLocked()
		n.mu.Unlock()
	}
}
