package rsm

import (
	"bytes"
	"testing"
)

// FuzzRSMEntry feeds arbitrary bytes to every RSM record decoder: none may
// panic, anything accepted must round-trip through its encoder, and a
// truncated re-encoding must always be rejected (a torn WAL frame or
// checkpoint body can never silently alias a shorter valid record).
func FuzzRSMEntry(f *testing.F) {
	f.Add(EncodeEntries([]Entry{{Term: 1, Index: 2, Data: []byte("cmd")}, {Term: 1, Index: 3}}))
	f.Add(EncodeEntries(nil))
	f.Add(EncodeHardState(7, "m1"))
	f.Add(EncodeHardState(0, ""))
	f.Add(EncodeTruncate(9))
	f.Add(EncodeSnapMeta(SnapMeta{Index: 3, Term: 2}))
	f.Add([]byte{'E', 0xff, 0xff, 0xff})
	f.Add([]byte{'H', 0x01})
	f.Add([]byte{'T'})
	full := EncodeEntries([]Entry{{Term: 9, Index: 100, Data: bytes.Repeat([]byte("x"), 40)}})
	f.Add(full[:len(full)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		if es, err := DecodeEntries(data); err == nil {
			enc := EncodeEntries(es)
			again, err := DecodeEntries(enc)
			if err != nil {
				t.Fatalf("re-encoded entries rejected: %v", err)
			}
			if len(again) != len(es) {
				t.Fatalf("entry count changed: %d vs %d", len(es), len(again))
			}
			for i := range es {
				if es[i].Term != again[i].Term || es[i].Index != again[i].Index || !bytes.Equal(es[i].Data, again[i].Data) {
					t.Fatalf("entry %d mutated: %+v vs %+v", i, es[i], again[i])
				}
			}
			for _, cut := range []int{len(enc) - 1, len(enc) / 2, 1} {
				if cut <= 0 || cut >= len(enc) {
					continue
				}
				if _, err := DecodeEntries(enc[:cut]); err == nil {
					t.Fatalf("truncated entries record (%d of %d bytes) accepted", cut, len(enc))
				}
			}
		}
		if term, voted, err := DecodeHardState(data); err == nil {
			enc := EncodeHardState(term, voted)
			t2, v2, err := DecodeHardState(enc)
			if err != nil || t2 != term || v2 != voted {
				t.Fatalf("hard state round-trip: (%d,%q) vs (%d,%q) err=%v", term, voted, t2, v2, err)
			}
			if _, _, err := DecodeHardState(enc[:len(enc)-1]); err == nil {
				t.Fatal("truncated hard state accepted")
			}
		}
		if from, err := DecodeTruncate(data); err == nil {
			enc := EncodeTruncate(from)
			f2, err := DecodeTruncate(enc)
			if err != nil || f2 != from {
				t.Fatalf("truncate round-trip: %d vs %d err=%v", from, f2, err)
			}
		}
		if m, err := DecodeSnapMeta(data); err == nil {
			enc := EncodeSnapMeta(m)
			m2, err := DecodeSnapMeta(enc)
			if err != nil || m2 != m {
				t.Fatalf("snap meta round-trip: %+v vs %+v err=%v", m, m2, err)
			}
			if _, err := DecodeSnapMeta(enc[:len(enc)-1]); err == nil {
				t.Fatal("truncated snap meta accepted")
			}
		}
	})
}
