package datalet

import (
	"sync"
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/wire"
)

// Per-op counters and latency histograms, resolved once at init so the
// data path never touches the registry's keyed lookup: recording an op is
// two atomic adds plus a histogram observe, all allocation-free.
var (
	srvOpCount [wire.OpMax + 1]*metrics.Counter
	srvOpLat   [wire.OpMax + 1]*metrics.Histogram

	// Pipelined-client metrics (see client.go): how requests reach the
	// wire. Average coalesced batch size = batched_requests / batches.
	cliBatches    = metrics.Default.Counter("bespokv_datalet_client_batches_total")
	cliBatchedReq = metrics.Default.Counter("bespokv_datalet_client_batched_requests_total")
	cliInline     = metrics.Default.Counter("bespokv_datalet_client_inline_total")

	// Overload control: data ops shed by admission control and ops
	// dropped because their propagated deadline was already spent.
	srvShedTotal       = metrics.Default.Counter("bespokv_overload_shed_total", "layer", "datalet")
	srvDeadlineExpired = metrics.Default.Counter("bespokv_deadline_expired_total", "layer", "datalet")
)

// Live-connection registry backing the pipeline gauges. Conn count,
// in-flight requests and queue depth are computed at scrape time by
// walking this set — per-request gauge atomics would charge every op for
// numbers only a scrape reads.
var (
	cliMu  sync.Mutex
	cliSet = map[*Client]struct{}{}
)

func registerClient(c *Client) {
	cliMu.Lock()
	cliSet[c] = struct{}{}
	cliMu.Unlock()
}

// unregisterClient must not be called with c.mu held: the queue-depth
// GaugeFunc takes cliMu then each client's mu, so the reverse order would
// deadlock against a concurrent scrape.
func unregisterClient(c *Client) {
	cliMu.Lock()
	delete(cliSet, c)
	cliMu.Unlock()
}

func init() {
	metrics.Default.GaugeFunc("bespokv_datalet_client_conns", func() float64 {
		cliMu.Lock()
		defer cliMu.Unlock()
		return float64(len(cliSet))
	})
	metrics.Default.GaugeFunc("bespokv_datalet_client_inflight", func() float64 {
		cliMu.Lock()
		defer cliMu.Unlock()
		var n int64
		for c := range cliSet {
			n += c.load.Load()
		}
		return float64(n)
	})
	metrics.Default.GaugeFunc("bespokv_datalet_client_queue_depth", func() float64 {
		cliMu.Lock()
		defer cliMu.Unlock()
		var n int
		for c := range cliSet {
			c.mu.Lock()
			n += len(c.sendQ)
			c.mu.Unlock()
		}
		return float64(n)
	})
}

func init() {
	for op := wire.OpNop; op <= wire.OpMax; op++ {
		srvOpCount[op] = metrics.Default.Counter("bespokv_datalet_ops_total", "op", op.String())
		srvOpLat[op] = metrics.Default.Histogram("bespokv_datalet_op_seconds", "op", op.String())
	}
}

func clampOp(op wire.Op) wire.Op {
	if op > wire.OpMax {
		return wire.OpNop
	}
	return op
}

// countServerOp is the unsampled path: op accounting without the clock.
func countServerOp(op wire.Op) { srvOpCount[clampOp(op)].Inc() }

func recordServerOp(op wire.Op, d time.Duration) {
	op = clampOp(op)
	srvOpCount[op].Inc()
	srvOpLat[op].Observe(d)
}

// Status reports the datalet's identity and per-table sizes for /statusz.
func (s *Server) Status() any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tables := make(map[string]int, len(s.tables))
	for name, e := range s.tables {
		tables[name] = e.Len()
	}
	var engineName string
	if e, ok := s.tables[""]; ok {
		engineName = e.Name()
	}
	return map[string]any{
		"role":        "datalet",
		"name":        s.cfg.Name,
		"engine":      engineName,
		"codec":       s.cfg.Codec.Name(),
		"tables":      tables,
		"connections": len(s.active),
		"uptime_sec":  int64(metrics.ProcessUptime().Seconds()),
		"overloadz": map[string]any{
			"gate":             s.gate.Snapshot(),
			"shed_total":       srvShedTotal.Value(),
			"deadline_expired": srvDeadlineExpired.Value(),
		},
	}
}
