// Asynchronous data-path client: the communication substrate the paper's
// controlet performance rests on (§IV, Fig. 9). A single connection carries
// many requests in flight — callers enqueue, a writer goroutine encodes the
// accumulated batch back-to-back and flushes once (write coalescing: one
// syscall covers a burst), and a reader goroutine matches responses to
// waiters in FIFO order, which every server in this repo guarantees per
// connection (see the comment on datalet.(*Server).serveConn; the text
// protocol depends on it by design).
package datalet

import (
	"bufio"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

const (
	// connBufSize sizes the per-connection read/write buffers. Large
	// enough to hold a deep burst of small KV requests per flush.
	connBufSize = 64 << 10
	// maxInflight bounds requests awaiting responses per connection;
	// senders beyond it block (backpressure) rather than queue unbounded.
	maxInflight = 1024
)

// ErrClientClosed is returned after the connection has failed or closed.
var ErrClientClosed = errors.New("datalet: client closed")

// ErrCallTimeout fails a connection whose pipeline stalled: requests were
// outstanding and no response arrived within the configured call timeout.
// A blackholed peer (network partition) manifests as exactly this.
var ErrCallTimeout = errors.New("datalet: call timed out")

// call is one in-flight request/response exchange.
type call struct {
	req  *wire.Request
	resp *wire.Response
	// stream, when non-nil, consumes successive responses (Export): it
	// reports done=true to complete the call with err. A streamAbort err
	// additionally fails the connection (required when the consumer bails
	// mid-stream — the remaining frames can no longer be parsed away).
	stream func(resp *wire.Response) (done bool, err error)
	errc   chan error // buffered(1); delivers exactly one completion
}

// streamAbort marks a stream callback error as connection-fatal.
type streamAbort struct{ err error }

func (a streamAbort) Error() string { return a.err.Error() }

// Client is a pipelined, multiplexed connection to one datalet (or to any
// server speaking the wire protocol — controlets reuse it for peer
// forwarding). Any number of goroutines may issue requests concurrently;
// they share the connection with many requests in flight. The blocking Do
// keeps the old lock-step signature; DoAsync exposes the pipeline to
// fan-out callers.
type Client struct {
	conn  transport.Conn
	codec wire.Codec
	bcd   wire.BufferedCodec // nil if codec cannot defer flushes
	br    *bufio.Reader      // owned by the reader goroutine
	bw    *bufio.Writer      // owned by the writer goroutine
	seq   uint64             // request ID source (writer only)

	// mu guards the two queues and the sticky error. Callers append to
	// sendQ; the writer moves calls to respQ as it encodes them; the
	// reader pops respQ as responses arrive. Critical sections are tiny —
	// encoding, flushing and decoding all happen outside the lock.
	mu    sync.Mutex
	sendQ []*call
	respQ []*call
	free  []*call // recycled calls (and their completion channels)
	err   error   // sticky transport error
	// Connection-ownership flags for the idle fast path: a lone Do on an
	// otherwise-idle connection runs lock-step inline (the caller encodes,
	// flushes, and decodes itself — no goroutine handoffs), which matters
	// because a connection with exactly one caller gets pipelining's
	// overhead but none of its overlap. Each flag marks a goroutine that
	// may touch bw/br outside mu.
	inlineActive bool // a fast-path Do owns both bw and br
	writerBusy   bool // writeLoop is encoding/flushing a batch (owns bw)
	readerBusy   bool // readLoop is decoding a popped batch (owns br)
	// lastBatch is the size of the writer's most recent batch — the
	// hysteresis for the fast path. Under concurrency the queues drain to
	// empty between rounds, so "idle right now" alone would route the
	// first caller of every round inline and serialize the rest behind
	// it; "and the last round was a lone caller" keeps a busy connection
	// pipelined. Lone-caller traffic drives it back to 1 within one op.
	lastBatch int
	sendReady sync.Cond // sendQ went non-empty, or failure (writer waits)
	respReady sync.Cond // respQ went non-empty, or failure (reader waits)
	sendSpace sync.Cond // sendQ below maxInflight, or failure (callers wait)
	respSpace sync.Cond // respQ below maxInflight, or failure (writer waits)

	load atomic.Int64 // queued + in-flight calls (pool load balancing)
	wg   sync.WaitGroup

	// Pipeline watchdog (SetCallTimeout). FIFO pipelining cannot time out
	// one call and keep the rest: responses match requests by order, so a
	// lost response desynchronizes everything behind it. The watchdog
	// therefore monitors *progress* — if calls are outstanding and no
	// response frame arrives for a full timeout, the connection is failed
	// with ErrCallTimeout and every waiter is released.
	timeout  atomic.Int64 // nanoseconds; 0 = no watchdog
	progress atomic.Int64 // response frames decoded (stall detector)
	dogOnce  sync.Once
	dead     chan struct{} // closed by the first fail()
}

// Dial connects a client to addr over the given network and codec.
func Dial(network transport.Network, addr string, codec wire.Codec) (*Client, error) {
	conn, err := network.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:  conn,
		codec: codec,
		br:    bufio.NewReaderSize(conn, connBufSize),
		bw:    bufio.NewWriterSize(conn, connBufSize),
		dead:  make(chan struct{}),
	}
	c.bcd, _ = codec.(wire.BufferedCodec)
	c.sendReady.L = &c.mu
	c.respReady.L = &c.mu
	c.sendSpace.L = &c.mu
	c.respSpace.L = &c.mu
	c.wg.Add(2)
	registerClient(c)
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// SetCallTimeout arms the pipeline watchdog: if requests are outstanding
// and no response arrives for d, the connection fails with ErrCallTimeout
// and every in-flight call completes with it. d <= 0 disarms. Without a
// timeout a partitioned (blackholed) peer hangs callers forever — and in
// the controlet, a hung chain forward holds the inflight read-lock, which
// wedges quiesce, drain and failover behind it.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.timeout.Store(int64(d))
	if d > 0 {
		c.dogOnce.Do(func() { go c.watchdog() })
	}
}

// watchdog fails the connection when the pipeline stops making progress.
func (c *Client) watchdog() {
	var last int64
	var stalled time.Time
	for {
		d := time.Duration(c.timeout.Load())
		poll := d / 4
		if d <= 0 {
			poll = 100 * time.Millisecond // disarmed; keep checking cheaply
		} else if poll < time.Millisecond {
			poll = time.Millisecond
		}
		select {
		case <-c.dead:
			return
		case <-time.After(poll):
		}
		if d <= 0 || c.load.Load() == 0 {
			stalled = time.Time{}
			continue
		}
		if p := c.progress.Load(); p != last {
			last, stalled = p, time.Time{}
			continue
		}
		if stalled.IsZero() {
			stalled = time.Now()
			continue
		}
		if time.Since(stalled) >= d {
			c.fail(fmt.Errorf("%w (no response in %v)", ErrCallTimeout, d))
			return
		}
	}
}

// Do sends req and decodes the reply into resp. The writer assigns req.ID;
// Do blocks until the response arrives or the connection fails. Safe for
// concurrent use; concurrent callers pipeline onto the shared connection.
func (c *Client) Do(req *wire.Request, resp *wire.Response) error {
	c.mu.Lock()
	if c.err == nil && c.lastBatch <= 1 && !c.inlineActive && !c.writerBusy &&
		!c.readerBusy && len(c.sendQ) == 0 && len(c.respQ) == 0 {
		// The connection is completely idle: take exclusive ownership
		// of both buffers and run the round trip lock-step, exactly as
		// the old synchronous client did. A lone caller gets none of
		// pipelining's overlap, so it shouldn't pay for its goroutine
		// handoffs either; under concurrency the queues are non-empty
		// and everyone takes the pipelined path below.
		c.inlineActive = true
		c.seq++
		req.ID = c.seq
		c.mu.Unlock()
		return c.doInline(req, resp)
	}
	c.mu.Unlock()
	cl, err := c.submit(nil, req, resp)
	if err != nil {
		return err
	}
	err = <-cl.errc
	// The receive above drained the completion channel, so the call can
	// be recycled for a future Do.
	c.mu.Lock()
	cl.req, cl.resp, cl.stream = nil, nil, nil
	c.free = append(c.free, cl)
	c.mu.Unlock()
	return err
}

// doInline completes a fast-path Do that owns the connection's buffers.
func (c *Client) doInline(req *wire.Request, resp *wire.Response) error {
	c.load.Add(1)
	cliInline.Inc()
	defer c.load.Add(-1)
	err := c.codec.WriteRequest(c.bw, req)
	if err == nil {
		resp.Reset()
		err = c.codec.ReadResponse(c.br, resp)
		c.progress.Add(1)
	}
	if err == nil && resp.ID != 0 && resp.ID != req.ID {
		err = fmt.Errorf("datalet: pipeline desync: response ID %d for request %d", resp.ID, req.ID)
	}
	if err != nil {
		c.fail(err)
		c.mu.Lock()
		c.inlineActive = false
		c.mu.Unlock()
		return c.Err()
	}
	resp.ID = req.ID
	c.mu.Lock()
	c.inlineActive = false
	kick := len(c.sendQ) > 0
	c.mu.Unlock()
	if kick {
		// Pipelined submissions queued up behind us; hand the writer
		// the connection.
		c.sendReady.Signal()
	}
	return nil
}

// DoAsync enqueues req and returns a channel that delivers the completion
// error (nil on success, after which resp holds the reply). Neither req nor
// resp may be touched until the channel delivers. Used by fan-out paths —
// chain forwarding, asynchronous propagation, quorum replication — to keep
// many peer ops in flight on one connection.
func (c *Client) DoAsync(req *wire.Request, resp *wire.Response) <-chan error {
	cl := &call{req: req, resp: resp, errc: make(chan error, 1)}
	if _, err := c.submit(cl, req, resp); err != nil {
		cl.errc <- err
	}
	return cl.errc
}

// submit enqueues a call for the writer. Passing cl == nil draws one from
// the freelist (the Do path, whose receive provably drains the completion
// channel before recycling); DoAsync and Export pass their own, since they
// hand the channel to the caller. A nil error means the pipeline owns the
// call and will complete errc exactly once; otherwise nothing was sent.
func (c *Client) submit(cl *call, req *wire.Request, resp *wire.Response) (*call, error) {
	c.mu.Lock()
	for c.err == nil && len(c.sendQ) >= maxInflight {
		c.sendSpace.Wait()
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if cl == nil {
		if n := len(c.free); n > 0 {
			cl = c.free[n-1]
			c.free[n-1] = nil
			c.free = c.free[:n-1]
		} else {
			cl = &call{errc: make(chan error, 1)}
		}
		cl.req = req
		cl.resp = resp
	}
	c.sendQ = append(c.sendQ, cl)
	if len(c.sendQ) == 1 {
		c.sendReady.Signal()
	}
	c.mu.Unlock()
	c.load.Add(1)
	return cl, nil
}

// writeLoop drains the submission queue in batches: everything that
// accumulated while the previous batch was being encoded and flushed forms
// the next batch, so coalescing deepens exactly as fast as the connection
// falls behind its callers — one flush (one syscall) per batch, one per
// request only when the pipe is idle anyway.
func (c *Client) writeLoop() {
	defer c.wg.Done()
	var batch []*call
	for {
		c.mu.Lock()
		c.writerBusy = false // previous batch fully flushed
		for c.err == nil && (c.inlineActive || len(c.sendQ) == 0 || len(c.respQ) >= maxInflight) {
			if c.inlineActive || len(c.sendQ) == 0 {
				// Also parks while a fast-path Do owns the buffers;
				// its completion signals sendReady.
				c.sendReady.Wait()
			} else {
				// The reader will drain respQ; all previous frames
				// are flushed (every iteration ends in a flush), so
				// responses are on their way.
				c.respSpace.Wait()
			}
		}
		if c.err != nil {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		// The first submitter of a completion burst wakes us into the
		// scheduler's preferential (runnext) slot, ahead of its sibling
		// callers — grabbing the queue now would yield a batch of one,
		// every time. Yield once: the rest of the burst runs, submits,
		// and the batch forms. Costs one scheduler pass when the pipe
		// really is idle.
		runtime.Gosched()
		c.mu.Lock()
		if c.err != nil || len(c.sendQ) == 0 {
			c.mu.Unlock()
			if c.err != nil {
				return
			}
			continue
		}
		// Take as much of sendQ as in-flight capacity allows. From here
		// until the flush lands, the writer owns bw.
		c.writerBusy = true
		n := maxInflight - len(c.respQ)
		if n > len(c.sendQ) {
			n = len(c.sendQ)
		}
		c.lastBatch = n
		cliBatches.Inc()
		cliBatchedReq.Add(int64(n))
		batch = append(batch[:0], c.sendQ[:n]...)
		rest := copy(c.sendQ, c.sendQ[n:])
		for i := rest; i < len(c.sendQ); i++ {
			c.sendQ[i] = nil
		}
		c.sendQ = c.sendQ[:rest]
		c.sendSpace.Broadcast()
		c.mu.Unlock()

		for _, cl := range batch {
			c.seq++
			cl.req.ID = c.seq
			if err := c.encode(cl.req); err != nil {
				// A partially encoded frame corrupts the stream for
				// everyone behind it; the connection cannot be saved.
				// fail() completes every queued call, including the
				// unencoded tail of this batch (fail drains the
				// queues, so first hand the whole batch to respQ).
				c.mu.Lock()
				c.respQ = append(c.respQ, batch...)
				c.mu.Unlock()
				c.fail(err)
				return
			}
		}
		// Expose the batch to the reader before flushing so it is
		// listening by the time the server can possibly answer.
		c.mu.Lock()
		if c.err != nil {
			c.respQ = append(c.respQ, batch...)
			c.mu.Unlock()
			c.fail(c.Err()) // re-enter to complete the batch
			return
		}
		wasEmpty := len(c.respQ) == 0
		c.respQ = append(c.respQ, batch...)
		if wasEmpty {
			c.respReady.Signal()
		}
		c.mu.Unlock()
		if err := c.bw.Flush(); err != nil {
			c.fail(err)
			return
		}
	}
}

// encode writes req into the send buffer, deferring the flush when the
// codec supports it.
func (c *Client) encode(req *wire.Request) error {
	if c.bcd != nil {
		return c.bcd.EncodeRequest(c.bw, req)
	}
	return c.codec.WriteRequest(c.bw, req)
}

// readLoop decodes responses and hands them to waiters in FIFO order. It
// drains the in-flight queue a batch at a time and withholds completions
// until the whole batch has decoded: releasing the callers in one burst
// makes their next submissions arrive together, which is what lets the
// writer form deep batches (and flush once) instead of finding one request
// at a time. Holding decoded completions while blocking on the next frame
// is safe — every call in respQ is behind an already-issued flush, so its
// response is on the way.
func (c *Client) readLoop() {
	defer c.wg.Done()
	var batch, doneOK []*call
	for {
		c.mu.Lock()
		c.readerBusy = false // previous batch fully decoded
		for len(c.respQ) == 0 {
			if c.err != nil {
				c.mu.Unlock()
				return
			}
			c.respReady.Wait()
		}
		// Swap out the whole in-flight queue in one critical section.
		// From here until the batch is decoded, the reader owns br.
		c.readerBusy = true
		batch, c.respQ = c.respQ, batch[:0]
		c.respSpace.Broadcast()
		c.mu.Unlock()

		doneOK = doneOK[:0]
		for i, cl := range batch {
			if cl.stream != nil {
				// A stream can run long; release finished callers
				// before servicing it.
				doneOK = c.completeOK(doneOK)
				if !c.readStream(cl) {
					c.completeSticky(batch[i+1:])
					return
				}
				continue
			}
			cl.resp.Reset()
			if err := c.codec.ReadResponse(c.br, cl.resp); err != nil {
				c.fail(err)
				c.completeOK(doneOK)
				c.complete(cl, c.Err())
				c.completeSticky(batch[i+1:])
				return
			}
			if err := c.checkID(cl); err != nil {
				c.fail(err)
				c.completeOK(doneOK)
				c.complete(cl, err)
				c.completeSticky(batch[i+1:])
				return
			}
			doneOK = append(doneOK, cl)
		}
		doneOK = c.completeOK(doneOK)
	}
}

// completeOK releases calls whose responses decoded successfully and
// returns the emptied (reusable) slice.
func (c *Client) completeOK(calls []*call) []*call {
	for i, cl := range calls {
		calls[i] = nil
		c.complete(cl, nil)
	}
	return calls[:0]
}

// completeSticky fails calls the reader had already claimed from respQ when
// the connection died; fail() cannot see them, so the reader must.
func (c *Client) completeSticky(calls []*call) {
	err := c.Err()
	for _, cl := range calls {
		c.complete(cl, err)
	}
}

// readStream consumes responses for a streaming call (Export) until the
// callback reports completion. It reports whether the reader should
// continue with the next call.
func (c *Client) readStream(cl *call) bool {
	for {
		cl.resp.Reset()
		if err := c.codec.ReadResponse(c.br, cl.resp); err != nil {
			c.fail(err)
			c.complete(cl, c.Err())
			return false
		}
		c.progress.Add(1) // stream frames count as pipeline progress
		if err := c.checkID(cl); err != nil {
			c.fail(err)
			c.complete(cl, err)
			return false
		}
		done, err := cl.stream(cl.resp)
		if abort, ok := err.(streamAbort); ok {
			// The consumer bailed mid-stream; the tail of the stream
			// would desynchronize every caller behind it.
			c.fail(abort.err)
			c.complete(cl, abort.err)
			return false
		}
		if done {
			c.complete(cl, err)
			return true
		}
	}
}

// checkID verifies FIFO integrity: a binary-codec response must echo the
// request ID it is being matched to. The text codec carries no IDs (it
// decodes resp.ID as 0) and relies on FIFO alone, as Redis pipelining does.
func (c *Client) checkID(cl *call) error {
	if cl.resp.ID != 0 && cl.resp.ID != cl.req.ID {
		return fmt.Errorf("datalet: pipeline desync: response ID %d for request %d", cl.resp.ID, cl.req.ID)
	}
	cl.resp.ID = cl.req.ID
	return nil
}

func (c *Client) complete(cl *call, err error) {
	c.progress.Add(1)
	c.load.Add(-1)
	cl.errc <- err
}

// fail marks the connection dead with a sticky error, closes it, and
// completes every call still queued or awaiting a response. Idempotent;
// the first error wins.
func (c *Client) fail(err error) {
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
		close(c.dead)
		_ = c.conn.Close()
	}
	failed := append(c.respQ, c.sendQ...)
	c.respQ = nil
	c.sendQ = nil
	c.mu.Unlock()
	if first {
		unregisterClient(c)
	}
	c.sendReady.Broadcast()
	c.respReady.Broadcast()
	c.sendSpace.Broadcast()
	c.respSpace.Broadcast()
	stickyErr := c.Err()
	for _, cl := range failed {
		c.complete(cl, stickyErr)
	}
}

// Err returns the sticky transport error, or nil while the connection is
// healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Load reports the number of requests queued or in flight, the signal
// Pool.Get balances on.
func (c *Client) Load() int { return int(c.load.Load()) }

// Export streams the table's pairs, calling fn for each. The stream shares
// the pipelined connection: responses for requests submitted after the
// export simply queue behind the stream's frames.
func (c *Client) Export(table string, fn func(kv wire.KV) error) error {
	var scratch wire.Response
	cl := &call{
		req:  &wire.Request{Op: wire.OpExport, Table: table},
		resp: &scratch,
		errc: make(chan error, 1),
	}
	cl.stream = func(resp *wire.Response) (bool, error) {
		if resp.Status != wire.StatusOK {
			if err := resp.ErrValue(); err != nil {
				return true, err
			}
			return true, fmt.Errorf("datalet: export %q: %s %s", table, resp.Status, resp.Err)
		}
		if len(resp.Pairs) == 0 {
			return true, nil // sentinel
		}
		for i := range resp.Pairs {
			if err := fn(resp.Pairs[i]); err != nil {
				return true, streamAbort{err}
			}
		}
		return false, nil
	}
	if _, err := c.submit(cl, cl.req, cl.resp); err != nil {
		return err
	}
	return <-cl.errc
}

// ErrDeltaUnavailable reports that the server cannot serve a complete
// delta from the requested watermark (engine without delta support, or
// compaction already discarded needed tombstones); the caller should fall
// back to a full Export.
var ErrDeltaUnavailable = errors.New("datalet: delta export unavailable")

// ExportSince streams every record with version newer than since, calling
// fn with tombstone=true for deletions. Returns ErrDeltaUnavailable when
// the server cannot serve a complete delta.
func (c *Client) ExportSince(table string, since uint64, fn func(kv wire.KV, tombstone bool) error) error {
	var scratch wire.Response
	cl := &call{
		req:  &wire.Request{Op: wire.OpExportDelta, Table: table, Version: since},
		resp: &scratch,
		errc: make(chan error, 1),
	}
	cl.stream = func(resp *wire.Response) (bool, error) {
		switch resp.Status {
		case wire.StatusOK, wire.StatusNotFound:
			if resp.Status == wire.StatusOK && len(resp.Pairs) == 0 {
				return true, nil // sentinel
			}
			if resp.Status == wire.StatusNotFound && len(resp.Pairs) == 0 {
				// "no such table" terminal response, not a tombstone batch.
				return true, fmt.Errorf("datalet: export delta %q: %s", table, resp.Err)
			}
			tombstone := resp.Status == wire.StatusNotFound
			for i := range resp.Pairs {
				if err := fn(resp.Pairs[i], tombstone); err != nil {
					return true, streamAbort{err}
				}
			}
			return false, nil
		case wire.StatusErr:
			if resp.Err == "delta export unavailable" {
				return true, ErrDeltaUnavailable
			}
			return true, resp.ErrValue()
		default:
			if err := resp.ErrValue(); err != nil {
				return true, err
			}
			return true, fmt.Errorf("datalet: export delta %q: %s %s", table, resp.Status, resp.Err)
		}
	}
	if _, err := c.submit(cl, cl.req, cl.resp); err != nil {
		return err
	}
	return <-cl.errc
}

// Ping round-trips an OpNop.
func (c *Client) Ping() error {
	var resp wire.Response
	if err := c.Do(&wire.Request{Op: wire.OpNop}, &resp); err != nil {
		return err
	}
	return resp.ErrValue()
}

// Close tears down the connection; in-flight calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	c.wg.Wait()
	return nil
}

// Pool is a fixed-size set of pipelined clients to one address. Get hands
// out the least-loaded connection, so a long stream (Export) or a burst on
// one connection steers new work to the others while idle pools still
// funnel everything onto one pipe, where coalescing is best.
type Pool struct {
	clients []*Client
}

// DialPool opens size connections to addr.
func DialPool(network transport.Network, addr string, codec wire.Codec, size int) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	p := &Pool{}
	for i := 0; i < size; i++ {
		c, err := Dial(network, addr, codec)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// SetCallTimeout arms the pipeline watchdog on every pooled connection.
func (p *Pool) SetCallTimeout(d time.Duration) {
	for _, c := range p.clients {
		c.SetCallTimeout(d)
	}
}

// Get returns the pooled client with the fewest requests in flight.
func (p *Pool) Get() *Client {
	best := p.clients[0]
	if len(p.clients) > 1 {
		bestLoad := best.Load()
		for _, c := range p.clients[1:] {
			if l := c.Load(); l < bestLoad {
				best, bestLoad = c, l
			}
		}
	}
	return best
}

// Do dispatches one request on the least-loaded pooled connection.
func (p *Pool) Do(req *wire.Request, resp *wire.Response) error {
	return p.Get().Do(req, resp)
}

// DoAsync dispatches one request asynchronously on the least-loaded pooled
// connection.
func (p *Pool) DoAsync(req *wire.Request, resp *wire.Response) <-chan error {
	return p.Get().DoAsync(req, resp)
}

// Close closes every pooled connection.
func (p *Pool) Close() error {
	for _, c := range p.clients {
		_ = c.Close()
	}
	return nil
}

// Stats reports the pool's connection count and summed outstanding load,
// surfaced by /statusz.
func (p *Pool) Stats() (conns, load int) {
	for _, c := range p.clients {
		conns++
		load += c.Load()
	}
	return
}
