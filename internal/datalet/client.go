package datalet

import (
	"bufio"
	"errors"
	"fmt"
	"sync"

	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// Client is a synchronous connection to one datalet (or to any server that
// speaks the wire protocol — controlets reuse it for peer forwarding). One
// request is outstanding at a time per Client; holders needing concurrency
// open several clients.
type Client struct {
	mu    sync.Mutex
	conn  transport.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	codec wire.Codec
	seq   uint64
	err   error // sticky transport error
}

// Dial connects a client to addr over the given network and codec.
func Dial(network transport.Network, addr string, codec wire.Codec) (*Client, error) {
	conn, err := network.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn:  conn,
		br:    bufio.NewReader(conn),
		bw:    bufio.NewWriter(conn),
		codec: codec,
	}, nil
}

// ErrClientClosed is returned after the connection has failed or closed.
var ErrClientClosed = errors.New("datalet: client closed")

// Do sends req and decodes the reply into resp. It assigns req.ID.
func (c *Client) Do(req *wire.Request, resp *wire.Response) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.seq++
	req.ID = c.seq
	if err := c.codec.WriteRequest(c.bw, req); err != nil {
		c.fail(err)
		return err
	}
	resp.Reset()
	if err := c.codec.ReadResponse(c.br, resp); err != nil {
		c.fail(err)
		return err
	}
	return nil
}

// Export streams the table's pairs, calling fn for each.
func (c *Client) Export(table string, fn func(kv wire.KV) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.seq++
	req := wire.Request{ID: c.seq, Op: wire.OpExport, Table: table}
	if err := c.codec.WriteRequest(c.bw, &req); err != nil {
		c.fail(err)
		return err
	}
	var resp wire.Response
	for {
		resp.Reset()
		if err := c.codec.ReadResponse(c.br, &resp); err != nil {
			c.fail(err)
			return err
		}
		if resp.Status != wire.StatusOK {
			if err := resp.ErrValue(); err != nil {
				return err
			}
			return fmt.Errorf("datalet: export %q: %s %s", table, resp.Status, resp.Err)
		}
		if len(resp.Pairs) == 0 {
			return nil // sentinel
		}
		for i := range resp.Pairs {
			if err := fn(resp.Pairs[i]); err != nil {
				// The stream must still be drained to keep the
				// connection usable; fail it instead.
				c.fail(err)
				return err
			}
		}
	}
}

// Ping round-trips an OpNop.
func (c *Client) Ping() error {
	var resp wire.Response
	if err := c.Do(&wire.Request{Op: wire.OpNop}, &resp); err != nil {
		return err
	}
	return resp.ErrValue()
}

func (c *Client) fail(err error) {
	if c.err == nil {
		c.err = err
		_ = c.conn.Close()
	}
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = ErrClientClosed
	}
	return c.conn.Close()
}

// Pool is a fixed-size set of clients to one address, handed out
// round-robin so callers get connection-level parallelism with FIFO
// ordering preserved per connection.
type Pool struct {
	clients []*Client
	mu      sync.Mutex
	next    int
}

// DialPool opens size connections to addr.
func DialPool(network transport.Network, addr string, codec wire.Codec, size int) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	p := &Pool{}
	for i := 0; i < size; i++ {
		c, err := Dial(network, addr, codec)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Get returns the next client round-robin.
func (p *Pool) Get() *Client {
	p.mu.Lock()
	c := p.clients[p.next%len(p.clients)]
	p.next++
	p.mu.Unlock()
	return c
}

// Do dispatches one request on the next pooled connection.
func (p *Pool) Do(req *wire.Request, resp *wire.Response) error {
	return p.Get().Do(req, resp)
}

// Close closes every pooled connection.
func (p *Pool) Close() error {
	for _, c := range p.clients {
		_ = c.Close()
	}
	return nil
}
