// Package datalet runs a single-node KV store behind a wire protocol — the
// paper's data plane. A datalet is completely unaware of any other datalet:
// it owns one storage engine per table and answers Put/Get/Del/Scan plus the
// Export stream used by standby recovery. Distribution (sharding,
// replication, consistency) lives entirely in the controlet layer.
package datalet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"sort"
	"strconv"
	"sync"
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/overload"
	"bespokv/internal/store"
	"bespokv/internal/telemetry"
	"bespokv/internal/trace"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// exportBatch is how many pairs one Export response frame carries.
const exportBatch = 256

// Config configures a datalet server.
type Config struct {
	// Name labels the datalet in logs and stats.
	Name string
	// Network and Addr select where to listen.
	Network transport.Network
	Addr    string
	// Codec selects the protocol parser (binary or text).
	Codec wire.Codec
	// NewEngine creates the storage engine backing one table. It is
	// called once for the default table at startup and once per
	// CreateTable.
	NewEngine func(table string) (store.Engine, error)
	// Logf receives diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
	// TelemetryInterval is the workload-stats window width (default 1s).
	// The datalet records only direct-path reads — everything else is
	// counted at the fronting controlet, so shard merges never
	// double-count — and serves its snapshot over OpTelemetry.
	TelemetryInterval time.Duration
	// MaxInflight caps concurrently executing data ops (admission
	// control); excess requests queue briefly and are shed with
	// StatusOverloaded once queue delay betrays overload. Epoch leases,
	// telemetry, stats and the recovery streams are never gated. Default
	// 1024; < 0 disables.
	MaxInflight int
	// ShedTarget is the CoDel queue-delay target for the shedder
	// (default 5ms).
	ShedTarget time.Duration
}

// Server is a running datalet.
type Server struct {
	cfg      Config
	listener transport.Listener

	mu     sync.RWMutex
	tables map[string]store.Engine
	active map[transport.Conn]struct{}
	closed bool

	// Epoch lease for direct client reads, granted and refreshed by the
	// fronting controlet via OpEpochSet (see handleEpochSet). The datalet
	// itself is distribution-unaware; the lease is the one piece of
	// cluster state it holds, and only to fence OpDirectGet.
	epochMu  sync.RWMutex
	epoch    uint64
	epochExp time.Time // zero = no expiry (static setups)
	epochSet bool      // an OpEpochSet has landed at least once

	// tele counts direct-path reads (the one op class that bypasses the
	// controlet) and answers OpTelemetry with its snapshot.
	tele *telemetry.Recorder

	// gate admits data ops (nil = admission control disabled); control
	// ops and recovery streams bypass it.
	gate *overload.Gate

	conns sync.WaitGroup
}

// Serve starts a datalet and returns once it is listening.
func Serve(cfg Config) (*Server, error) {
	if cfg.Network == nil || cfg.Codec == nil || cfg.NewEngine == nil {
		return nil, errors.New("datalet: Network, Codec and NewEngine are required")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 1024
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, err
	}
	def, err := cfg.NewEngine("")
	if err != nil {
		l.Close()
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		listener: l,
		tables:   map[string]store.Engine{"": def},
		active:   map[transport.Conn]struct{}{},
		tele:     telemetry.NewRecorder(telemetry.Options{Interval: cfg.TelemetryInterval}),
		gate:     overload.NewGate(overload.Config{MaxInflight: cfg.MaxInflight, Target: cfg.ShedTarget}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Engine returns the engine backing table (nil if absent); tests and the
// in-process harness use it for white-box checks.
func (s *Server) Engine(table string) store.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[table]
}

// Close stops the listener and closes every engine.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.active {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.conns.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.tables {
		_ = e.Close()
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.active[conn] = struct{}{}
		s.mu.Unlock()
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			defer func() {
				s.mu.Lock()
				delete(s.active, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn processes one connection's requests sequentially, which
// preserves FIFO response ordering (required by the text protocol and
// relied on by all clients). Responses are flush-coalesced: while more
// pipelined requests sit in the read buffer, responses are only encoded,
// and one flush covers the whole burst once the buffer drains.
func (s *Server) serveConn(conn transport.Conn) {
	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	bcd, _ := s.cfg.Codec.(wire.BufferedCodec)
	var req wire.Request
	var resp wire.Response
	for {
		req.Reset()
		if err := s.cfg.Codec.ReadRequest(br, &req); err != nil {
			if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
				s.cfg.Logf("datalet %s: read: %v", s.cfg.Name, err)
			}
			return
		}
		if req.Op == wire.OpExport {
			if err := s.streamExport(bw, &req); err != nil {
				return
			}
			continue
		}
		if req.Op == wire.OpExportDelta {
			if err := s.streamExportDelta(bw, &req); err != nil {
				return
			}
			continue
		}
		resp.Reset()
		resp.ID = req.ID
		req.ArmDeadline(time.Now())
		timed := req.TraceID != 0 || metrics.SampleLatency()
		var start time.Time
		if timed {
			start = time.Now()
		}
		s.handleAdmit(&req, &resp)
		dur := time.Duration(-1)
		if timed {
			dur = time.Since(start)
			recordServerOp(req.Op, dur)
			if req.TraceID != 0 {
				trace.Record(req.TraceID, s.cfg.Name, "datalet."+req.Op.String(), start, dur, resp.Err)
			}
		} else {
			countServerOp(req.Op)
		}
		if req.Op == wire.OpDirectGet {
			s.recordDirectGet(&req, &resp, dur)
		}
		if bcd != nil && br.Buffered() > 0 {
			if err := bcd.EncodeResponse(bw, &resp); err != nil {
				return
			}
			continue
		}
		if err := s.cfg.Codec.WriteResponse(bw, &resp); err != nil {
			return
		}
	}
}

// handleAdmit runs the overload checks in front of handle: control-lane
// ops (epoch leases, telemetry, stats, pings) always pass — they are what
// keeps the fronting controlet's liveness reporting truthful under load;
// everything else drops work whose propagated deadline already expired,
// and data-lane ops additionally pass the admission gate. The engine is
// the real queue here: when it saturates, slot waits grow, and the CoDel
// shedder converts the standing queue into fast StatusOverloaded answers
// instead of timeouts.
func (s *Server) handleAdmit(req *wire.Request, resp *wire.Response) {
	lane := overload.LaneOf(req.Op)
	if lane != overload.LaneControl && req.DeadlineExpired(time.Now()) {
		srvDeadlineExpired.Inc()
		resp.Status = wire.StatusOverloaded
		resp.Err = "datalet: deadline expired"
		return
	}
	if lane == overload.LaneData {
		release, ok := s.gate.Admit()
		if !ok {
			srvShedTotal.Inc()
			resp.Status = wire.StatusOverloaded
			resp.Err = "datalet: overloaded"
			return
		}
		defer release()
	}
	s.handle(req, resp)
}

func (s *Server) engineFor(table string) (store.Engine, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.tables[table]
	return e, ok
}

func (s *Server) handle(req *wire.Request, resp *wire.Response) {
	switch req.Op {
	case wire.OpNop:
		resp.Status = wire.StatusOK

	case wire.OpCreateTable:
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, exists := s.tables[req.Table]; exists {
			resp.Status = wire.StatusOK // idempotent
			return
		}
		e, err := s.cfg.NewEngine(req.Table)
		if err != nil {
			fail(resp, err)
			return
		}
		s.tables[req.Table] = e
		resp.Status = wire.StatusOK

	case wire.OpDeleteTable:
		s.mu.Lock()
		defer s.mu.Unlock()
		e, exists := s.tables[req.Table]
		if !exists || req.Table == "" {
			resp.Status = wire.StatusNotFound
			return
		}
		delete(s.tables, req.Table)
		_ = e.Close()
		resp.Status = wire.StatusOK

	case wire.OpPut:
		e, ok := s.engineFor(req.Table)
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Err = "no such table: " + req.Table
			return
		}
		ver, err := e.Put(req.Key, req.Value, req.Version)
		if err != nil {
			fail(resp, err)
			return
		}
		resp.Status = wire.StatusOK
		resp.Version = ver

	case wire.OpGet:
		e, ok := s.engineFor(req.Table)
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Err = "no such table: " + req.Table
			return
		}
		v, ver, found, err := e.Get(req.Key)
		if err != nil {
			fail(resp, err)
			return
		}
		if !found {
			resp.Status = wire.StatusNotFound
			return
		}
		resp.Status = wire.StatusOK
		resp.Value = append(resp.Value[:0], v...)
		resp.Version = ver

	case wire.OpDel:
		e, ok := s.engineFor(req.Table)
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Err = "no such table: " + req.Table
			return
		}
		existed, winner, err := e.Delete(req.Key, req.Version)
		if err != nil {
			fail(resp, err)
			return
		}
		resp.Version = winner
		if existed {
			resp.Status = wire.StatusOK
		} else {
			resp.Status = wire.StatusNotFound
		}

	case wire.OpScan:
		e, ok := s.engineFor(req.Table)
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Err = "no such table: " + req.Table
			return
		}
		kvs, err := e.Scan(req.Key, req.EndKey, int(req.Limit))
		if err != nil {
			fail(resp, err)
			return
		}
		resp.Status = wire.StatusOK
		for _, kv := range kvs {
			resp.Pairs = append(resp.Pairs, wire.KV{Key: kv.Key, Value: kv.Value, Version: kv.Version})
		}

	case wire.OpDelRange:
		e, ok := s.engineFor(req.Table)
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Err = "no such table: " + req.Table
			return
		}
		deleted, err := delRange(e, req.Key, req.EndKey)
		if err != nil {
			fail(resp, err)
			return
		}
		resp.Status = wire.StatusOK
		resp.Version = deleted

	case wire.OpEpochSet:
		s.handleEpochSet(req, resp)

	case wire.OpMGet:
		s.multiGet(req, resp)

	case wire.OpDirectGet:
		// Direct reads bypass the controlet, so the epoch fence moves
		// here: the request must carry exactly the lease epoch, and the
		// lease must be live. Anything else sends the client back through
		// its controlet to refresh.
		epoch, live, granted := s.leaseEpoch()
		if !granted {
			resp.Status = wire.StatusUnavailable
			resp.Err = "datalet: no epoch lease granted"
			return
		}
		if !live {
			resp.Status = wire.StatusUnavailable
			resp.Err = "datalet: epoch lease expired"
			return
		}
		if req.Epoch != epoch {
			resp.Status = wire.StatusWrongEpoch
			resp.Epoch = epoch
			return
		}
		s.multiGet(req, resp)

	case wire.OpMPut:
		s.multiPut(req, resp)

	case wire.OpTelemetry:
		// The fronting controlet pulls this each heartbeat and forwards it
		// to the coordinator; identity beyond the datalet name (shard,
		// mode, epoch) is the controlet's to fill in.
		snap := s.tele.Snapshot(time.Now(), telemetry.Info{Node: s.cfg.Name, Role: "datalet"})
		buf, err := json.Marshal(snap)
		if err != nil {
			fail(resp, err)
			return
		}
		resp.Status = wire.StatusOK
		resp.Value = append(resp.Value[:0], buf...)

	case wire.OpStats:
		s.mu.RLock()
		names := make([]string, 0, len(s.tables))
		for name := range s.tables {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			kv := wire.KV{
				Key:   []byte(name),
				Value: []byte(strconv.Itoa(s.tables[name].Len())),
			}
			// Per-table recovered watermark rides along in Version so a
			// restarted node's controlet can request an incremental
			// delta instead of a full export.
			if r, ok := s.tables[name].(store.Recovered); ok {
				kv.Version = r.RecoveredVersion()
			}
			resp.Pairs = append(resp.Pairs, kv)
		}
		var engineName string
		if e, ok := s.tables[""]; ok {
			engineName = e.Name()
		}
		s.mu.RUnlock()
		resp.Status = wire.StatusOK
		resp.Value = []byte(engineName)

	default:
		resp.Status = wire.StatusErr
		resp.Err = fmt.Sprintf("datalet: unsupported op %s", req.Op)
	}
}

// recordDirectGet accounts one direct-path read frame: one op of class
// direct-get (with latency when the op was timed), per-key sizes and
// hot-key sketch touches. WrongEpoch is a routing miss that self-heals via
// the controlet fallback, not an error; Unavailable and Err spend the
// availability budget.
func (s *Server) recordDirectGet(req *wire.Request, resp *wire.Response, dur time.Duration) {
	isErr := resp.Status == wire.StatusErr || resp.Status == wire.StatusUnavailable ||
		resp.Status == wire.StatusOverloaded
	if len(req.Pairs) > 0 {
		s.tele.Record(telemetry.ClassDirectGet, -1, -1, dur, isErr)
		for i := range req.Pairs {
			s.tele.RecordKV(len(req.Pairs[i].Key), -1)
			s.tele.Touch(req.Pairs[i].Key)
		}
		return
	}
	s.tele.Record(telemetry.ClassDirectGet, len(req.Key), len(resp.Value), dur, isErr)
	s.tele.Touch(req.Key)
}

// handleEpochSet installs (or refreshes) the controlet-granted epoch lease.
// Request.Epoch is the cluster-map epoch; Request.Version carries the TTL in
// nanoseconds, 0 meaning no expiry. Regressions are ignored so a lagging
// controlet push can never roll the fence backwards.
func (s *Server) handleEpochSet(req *wire.Request, resp *wire.Response) {
	s.epochMu.Lock()
	if !s.epochSet || req.Epoch >= s.epoch {
		s.epoch = req.Epoch
		s.epochSet = true
		if req.Version > 0 {
			s.epochExp = time.Now().Add(time.Duration(req.Version))
		} else {
			s.epochExp = time.Time{}
		}
	}
	s.epochMu.Unlock()
	resp.Status = wire.StatusOK
}

// leaseEpoch reports the current lease epoch, whether it is still live, and
// whether a lease was ever granted.
func (s *Server) leaseEpoch() (epoch uint64, live, granted bool) {
	s.epochMu.RLock()
	defer s.epochMu.RUnlock()
	if !s.epochSet {
		return 0, false, false
	}
	live = s.epochExp.IsZero() || time.Now().Before(s.epochExp)
	return s.epoch, live, true
}

// LeaseEpoch exposes the lease for tests and the in-process harness.
func (s *Server) LeaseEpoch() (epoch uint64, live bool) {
	epoch, live, _ = s.leaseEpoch()
	return epoch, live
}

// multiGet answers one frame of point reads in a single engine pass:
// response Pairs and Statuses are index-aligned with the request's Pairs.
func (s *Server) multiGet(req *wire.Request, resp *wire.Response) {
	e, ok := s.engineFor(req.Table)
	if !ok {
		resp.Status = wire.StatusNotFound
		resp.Err = "no such table: " + req.Table
		return
	}
	resp.Status = wire.StatusOK
	for i := range req.Pairs {
		v, ver, found, err := e.Get(req.Pairs[i].Key)
		switch {
		case err != nil:
			resp.Pairs = append(resp.Pairs, wire.KV{})
			resp.Statuses = append(resp.Statuses, wire.StatusErr)
		case !found:
			resp.Pairs = append(resp.Pairs, wire.KV{})
			resp.Statuses = append(resp.Statuses, wire.StatusNotFound)
		default:
			resp.Pairs = append(resp.Pairs, wire.KV{Value: append([]byte(nil), v...), Version: ver})
			resp.Statuses = append(resp.Statuses, wire.StatusOK)
		}
	}
}

// multiPut applies one frame of writes in a single engine pass. Each pair
// carries its controlet-assigned LWW version; the response returns the
// winning stored version per pair (so the caller can detect lost races) and
// a per-pair status.
func (s *Server) multiPut(req *wire.Request, resp *wire.Response) {
	e, ok := s.engineFor(req.Table)
	if !ok {
		resp.Status = wire.StatusNotFound
		resp.Err = "no such table: " + req.Table
		return
	}
	resp.Status = wire.StatusOK
	for i := range req.Pairs {
		ver, err := e.Put(req.Pairs[i].Key, req.Pairs[i].Value, req.Pairs[i].Version)
		if err != nil {
			resp.Pairs = append(resp.Pairs, wire.KV{})
			resp.Statuses = append(resp.Statuses, wire.StatusErr)
			continue
		}
		resp.Pairs = append(resp.Pairs, wire.KV{Version: ver})
		resp.Statuses = append(resp.Statuses, wire.StatusOK)
	}
}

// streamExport writes the requested table as a sequence of batched
// responses terminated by an empty-Pairs sentinel carrying the total count.
func (s *Server) streamExport(bw *bufio.Writer, req *wire.Request) error {
	e, ok := s.engineFor(req.Table)
	if !ok {
		resp := wire.Response{ID: req.ID, Status: wire.StatusNotFound, Err: "no such table: " + req.Table}
		return s.cfg.Codec.WriteResponse(bw, &resp)
	}
	// Batches are encoded without per-frame flushes when the codec allows
	// it; bufio flushes as its buffer fills and the sentinel flush below
	// pushes out the tail.
	writeBatch := s.cfg.Codec.WriteResponse
	if bcd, ok := s.cfg.Codec.(wire.BufferedCodec); ok {
		writeBatch = bcd.EncodeResponse
	}
	var batch wire.Response
	batch.ID = req.ID
	total := uint64(0)
	err := e.Snapshot(func(kv store.KV) error {
		batch.Pairs = append(batch.Pairs, wire.KV{
			Key:     store.CloneBytes(kv.Key),
			Value:   store.CloneBytes(kv.Value),
			Version: kv.Version,
		})
		total++
		if len(batch.Pairs) >= exportBatch {
			if err := writeBatch(bw, &batch); err != nil {
				return err
			}
			batch.Pairs = batch.Pairs[:0]
		}
		return nil
	})
	if err == nil && len(batch.Pairs) > 0 {
		err = writeBatch(bw, &batch)
	}
	if err != nil {
		resp := wire.Response{ID: req.ID, Status: wire.StatusErr, Err: err.Error()}
		return s.cfg.Codec.WriteResponse(bw, &resp)
	}
	final := wire.Response{ID: req.ID, Status: wire.StatusOK, Version: total}
	return s.cfg.Codec.WriteResponse(bw, &final)
}

// deltaUnavailable is the error marker a delta export answers when the
// engine cannot serve a complete delta from the requested watermark;
// clients recognize it and fall back to a full export.
const deltaUnavailable = "delta export unavailable"

// streamExportDelta writes every record newer than req.Version as batched
// responses — live pairs under StatusOK, tombstones under StatusNotFound —
// terminated by an empty StatusOK sentinel carrying the record count. An
// engine without delta support (or one whose compaction already discarded
// tombstones the delta would need) answers a StatusErr marker instead.
func (s *Server) streamExportDelta(bw *bufio.Writer, req *wire.Request) error {
	e, ok := s.engineFor(req.Table)
	if !ok {
		resp := wire.Response{ID: req.ID, Status: wire.StatusNotFound, Err: "no such table: " + req.Table}
		return s.cfg.Codec.WriteResponse(bw, &resp)
	}
	ds, ok := e.(store.DeltaSnapshotter)
	if !ok {
		resp := wire.Response{ID: req.ID, Status: wire.StatusErr, Err: deltaUnavailable}
		return s.cfg.Codec.WriteResponse(bw, &resp)
	}
	writeBatch := s.cfg.Codec.WriteResponse
	if bcd, ok := s.cfg.Codec.(wire.BufferedCodec); ok {
		writeBatch = bcd.EncodeResponse
	}
	// Live and tombstone records accumulate in separate batches keyed by
	// status; each flushes independently as it fills.
	var live, tomb wire.Response
	live.ID, live.Status = req.ID, wire.StatusOK
	tomb.ID, tomb.Status = req.ID, wire.StatusNotFound
	total := uint64(0)
	complete, err := ds.SnapshotSince(req.Version, func(kv store.KV, tombstone bool) error {
		batch := &live
		if tombstone {
			batch = &tomb
		}
		batch.Pairs = append(batch.Pairs, wire.KV{
			Key:     store.CloneBytes(kv.Key),
			Value:   store.CloneBytes(kv.Value),
			Version: kv.Version,
		})
		total++
		if len(batch.Pairs) >= exportBatch {
			if err := writeBatch(bw, batch); err != nil {
				return err
			}
			batch.Pairs = batch.Pairs[:0]
		}
		return nil
	})
	if err == nil && !complete {
		// Nothing has been streamed yet: SnapshotSince reports
		// incompleteness before emitting any record.
		resp := wire.Response{ID: req.ID, Status: wire.StatusErr, Err: deltaUnavailable}
		return s.cfg.Codec.WriteResponse(bw, &resp)
	}
	if err == nil && len(live.Pairs) > 0 {
		err = writeBatch(bw, &live)
	}
	if err == nil && len(tomb.Pairs) > 0 {
		err = writeBatch(bw, &tomb)
	}
	if err != nil {
		resp := wire.Response{ID: req.ID, Status: wire.StatusErr, Err: err.Error()}
		return s.cfg.Codec.WriteResponse(bw, &resp)
	}
	final := wire.Response{ID: req.ID, Status: wire.StatusOK, Version: total}
	return s.cfg.Codec.WriteResponse(bw, &final)
}

// delRangeChunk bounds how many keys one deletion round scans out.
const delRangeChunk = 512

// delRange tombstones every live key in [start, end) in bounded chunks, so
// an arbitrarily large range never materializes in memory at once. Each
// tombstone reuses the record's stored version: a racing newer write
// (strictly higher version) survives the sweep, which is what the
// migration GC wants under last-writer-wins.
func delRange(e store.Engine, start, end []byte) (uint64, error) {
	cursor := start
	var deleted uint64
	for {
		kvs, err := e.Scan(cursor, end, delRangeChunk)
		if err != nil {
			return deleted, err
		}
		for _, kv := range kvs {
			if _, _, err := e.Delete(kv.Key, kv.Version); err != nil {
				return deleted, err
			}
			deleted++
		}
		if len(kvs) < delRangeChunk {
			return deleted, nil
		}
		cursor = append(append([]byte(nil), kvs[len(kvs)-1].Key...), 0)
	}
}

func fail(resp *wire.Response, err error) {
	resp.Status = wire.StatusErr
	resp.Err = err.Error()
	if errors.Is(err, store.ErrUnordered) {
		resp.Err = "scan unsupported by this engine"
	}
}
