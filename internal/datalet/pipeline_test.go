package datalet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/store"
	"bespokv/internal/store/ht"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// tcpAddr returns "" for inproc (which invents addresses) and a loopback
// bind request for TCP.
func listenAddr(network string) string {
	if network == "tcp" {
		return "127.0.0.1:0"
	}
	return ""
}

// TestPipelineStress hammers one pipelined client from many goroutines over
// both transports and both codecs, checking that every response carries its
// own request's data — the FIFO-matching invariant the whole design rests
// on. Run under -race this also exercises the sender/reader locking.
func TestPipelineStress(t *testing.T) {
	const (
		goroutines = 32
		opsPerG    = 150
	)
	for _, tn := range []string{"inproc", "tcp"} {
		for _, cn := range []string{"binary", "text"} {
			tn, cn := tn, cn
			t.Run(tn+"/"+cn, func(t *testing.T) {
				t.Parallel()
				net, _ := transport.Lookup(tn)
				codec, _ := wire.LookupCodec(cn)
				srv, err := Serve(Config{
					Name:      "stress",
					Network:   net,
					Addr:      listenAddr(tn),
					Codec:     codec,
					NewEngine: func(string) (store.Engine, error) { return ht.New(), nil },
					Logf:      t.Logf,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				cli, err := Dial(net, srv.Addr(), codec)
				if err != nil {
					t.Fatal(err)
				}
				defer cli.Close()

				var wg sync.WaitGroup
				errCh := make(chan error, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						var resp wire.Response
						for i := 0; i < opsPerG; i++ {
							key := []byte(fmt.Sprintf("k-%d-%d", g, i))
							val := []byte(fmt.Sprintf("v-%d-%d", g, i))
							put := wire.Request{Op: wire.OpPut, Key: key, Value: val}
							if err := cli.Do(&put, &resp); err != nil {
								errCh <- err
								return
							}
							if resp.ID != put.ID {
								errCh <- fmt.Errorf("put response ID %d for request %d", resp.ID, put.ID)
								return
							}
							get := wire.Request{Op: wire.OpGet, Key: key}
							if err := cli.Do(&get, &resp); err != nil {
								errCh <- err
								return
							}
							if resp.ID != get.ID {
								errCh <- fmt.Errorf("get response ID %d for request %d", resp.ID, get.ID)
								return
							}
							// The crucial check: a cross-matched response
							// would hand us some other goroutine's value.
							if string(resp.Value) != string(val) {
								errCh <- fmt.Errorf("get %q returned %q, want %q", key, resp.Value, val)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				close(errCh)
				for err := range errCh {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestPipelineDoAsyncStress interleaves batches of DoAsync with blocking
// Dos on the same connection and checks every completion.
func TestPipelineDoAsyncStress(t *testing.T) {
	_, cli := newServer(t, "binary", nil)
	const (
		goroutines = 16
		batches    = 40
		width      = 8
	)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				reqs := make([]*wire.Request, width)
				resps := make([]*wire.Response, width)
				acks := make([]<-chan error, width)
				for i := 0; i < width; i++ {
					reqs[i] = &wire.Request{
						Op:    wire.OpPut,
						Key:   []byte(fmt.Sprintf("a-%d-%d-%d", g, b, i)),
						Value: []byte(fmt.Sprintf("v-%d-%d-%d", g, b, i)),
					}
					resps[i] = new(wire.Response)
					acks[i] = cli.DoAsync(reqs[i], resps[i])
				}
				for i := 0; i < width; i++ {
					if err := <-acks[i]; err != nil {
						errCh <- err
						return
					}
					if resps[i].ID != reqs[i].ID {
						errCh <- fmt.Errorf("async response ID %d for request %d", resps[i].ID, reqs[i].ID)
						return
					}
				}
				// A blocking read through the same pipe.
				var resp wire.Response
				get := wire.Request{Op: wire.OpGet, Key: reqs[width-1].Key}
				if err := cli.Do(&get, &resp); err != nil {
					errCh <- err
					return
				}
				if string(resp.Value) != string(reqs[width-1].Value) {
					errCh <- fmt.Errorf("async get returned %q, want %q", resp.Value, reqs[width-1].Value)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// slowEngine delays reads so in-flight requests reliably pile up.
type slowEngine struct {
	store.Engine
	delay time.Duration
}

func (s slowEngine) Get(key []byte) ([]byte, uint64, bool, error) {
	time.Sleep(s.delay)
	return s.Engine.Get(key)
}

// TestPipelineMidStreamFailure kills the server while dozens of Do and
// DoAsync calls are in flight: every one must complete with an error (no
// deadlock, no lost completion), and the client must stay failed.
func TestPipelineMidStreamFailure(t *testing.T) {
	for _, tn := range []string{"inproc", "tcp"} {
		tn := tn
		t.Run(tn, func(t *testing.T) {
			t.Parallel()
			net, _ := transport.Lookup(tn)
			codec, _ := wire.LookupCodec("binary")
			srv, err := Serve(Config{
				Name:    "failing",
				Network: net,
				Addr:    listenAddr(tn),
				Codec:   codec,
				NewEngine: func(string) (store.Engine, error) {
					return slowEngine{ht.New(), 2 * time.Millisecond}, nil
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			cli, err := Dial(net, srv.Addr(), codec)
			if err != nil {
				srv.Close()
				t.Fatal(err)
			}
			defer cli.Close()

			const callers = 32
			var started, failed atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < callers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var resp wire.Response
					for i := 0; ; i++ {
						req := wire.Request{Op: wire.OpGet, Key: []byte(fmt.Sprintf("k%d", g))}
						started.Add(1)
						var err error
						if i%2 == 0 {
							err = cli.Do(&req, &resp)
						} else {
							err = <-cli.DoAsync(&req, &resp)
						}
						if err != nil {
							failed.Add(1)
							return
						}
					}
				}(g)
			}
			// Let the pipeline fill, then yank the server.
			time.Sleep(20 * time.Millisecond)
			srv.Close()

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("in-flight calls deadlocked after server failure")
			}
			if failed.Load() != callers {
				t.Fatalf("%d/%d callers saw the failure", failed.Load(), callers)
			}
			// Sticky: the client stays dead and fails fast.
			var resp wire.Response
			start := time.Now()
			if err := cli.Do(&wire.Request{Op: wire.OpNop}, &resp); err == nil {
				t.Fatal("Do after connection failure must error")
			}
			if err := <-cli.DoAsync(&wire.Request{Op: wire.OpNop}, &resp); err == nil {
				t.Fatal("DoAsync after connection failure must error")
			}
			if time.Since(start) > time.Second {
				t.Fatal("failed client must reject immediately, not block")
			}
			t.Logf("transport %s: %d calls issued, %d callers failed", tn, started.Load(), failed.Load())
		})
	}
}

// TestPipelineClientClose closes the client with calls in flight; they all
// complete with ErrClientClosed and later calls fail with it too.
func TestPipelineClientClose(t *testing.T) {
	srv, err := func() (*Server, error) {
		net, _ := transport.Lookup("inproc")
		codec, _ := wire.LookupCodec("binary")
		return Serve(Config{
			Name:    "closing",
			Network: net,
			Codec:   codec,
			NewEngine: func(string) (store.Engine, error) {
				return slowEngine{ht.New(), 2 * time.Millisecond}, nil
			},
			Logf: func(string, ...any) {},
		})
	}()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	cli, err := Dial(net, srv.Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var resp wire.Response
			for {
				req := wire.Request{Op: wire.OpGet, Key: []byte{byte(g)}}
				if err := cli.Do(&req, &resp); err != nil {
					return
				}
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	var resp wire.Response
	if err := cli.Do(&wire.Request{Op: wire.OpNop}, &resp); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Do after Close: %v, want ErrClientClosed", err)
	}
}

// TestExportSharesPipeline runs an Export stream while other goroutines
// keep issuing point reads on the same connection; responses queue behind
// the stream but everything completes correctly.
func TestExportSharesPipeline(t *testing.T) {
	_, cli := newServer(t, "binary", nil)
	var resp wire.Response
	const n = 1000
	for i := 0; i < n; i++ {
		req := wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("e%04d", i)), Value: []byte("x")}
		if err := cli.Do(&req, &resp); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 9)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var r wire.Response
			for i := 0; i < 50; i++ {
				key := []byte(fmt.Sprintf("e%04d", (g*37+i)%n))
				req := wire.Request{Op: wire.OpGet, Key: key}
				if err := cli.Do(&req, &r); err != nil {
					errCh <- err
					return
				}
				if r.Status != wire.StatusOK {
					errCh <- fmt.Errorf("get %q: %s", key, r.Status)
					return
				}
			}
		}(g)
	}
	got := 0
	if err := cli.Export("", func(kv wire.KV) error {
		if !strings.HasPrefix(string(kv.Key), "e") {
			return fmt.Errorf("unexpected key %q", kv.Key)
		}
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("export saw %d pairs, want %d", got, n)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The connection must still be healthy after the stream.
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestExportConsumerAbort verifies the documented contract: a consumer
// error aborts the stream AND fails the connection (the remaining frames
// cannot be parsed away safely).
func TestExportConsumerAbort(t *testing.T) {
	_, cli := newServer(t, "binary", nil)
	var resp wire.Response
	for i := 0; i < 600; i++ {
		req := wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("a%04d", i)), Value: []byte("x")}
		if err := cli.Do(&req, &resp); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("consumer boom")
	err := cli.Export("", func(kv wire.KV) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Export: %v, want consumer error", err)
	}
	if cli.Err() == nil {
		t.Fatal("aborted export must fail the connection")
	}
}
